package repro_test

// The benchmark harness: one benchmark per paper figure (Figures 2-22),
// regenerating the corresponding experiment at reduced scale per
// iteration, plus ablation benchmarks for the design choices DESIGN.md
// calls out. Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-scale figure regeneration (paper-sized traces and rate ranges) is
// cmd/figures' job; these benchmarks track the cost of the experiment
// pipelines themselves.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dsp"
	"repro/internal/experiments"
	"repro/internal/lrd"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/sampling"
)

// benchFigure runs one experiment per iteration at small scale.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	runner := experiments.Registry()[id]
	if runner == nil {
		b.Fatalf("unknown figure %q", id)
	}
	// Warm the shared trace cache outside the timer.
	if _, err := runner(experiments.ScaleSmall); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner(experiments.ScaleSmall); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig02(b *testing.B) { benchFigure(b, "fig02") }
func BenchmarkFig03(b *testing.B) { benchFigure(b, "fig03") }
func BenchmarkFig04(b *testing.B) { benchFigure(b, "fig04") }
func BenchmarkFig05(b *testing.B) { benchFigure(b, "fig05") }
func BenchmarkFig06(b *testing.B) { benchFigure(b, "fig06") }
func BenchmarkFig07(b *testing.B) { benchFigure(b, "fig07") }
func BenchmarkFig08(b *testing.B) { benchFigure(b, "fig08") }
func BenchmarkFig09(b *testing.B) { benchFigure(b, "fig09") }
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchFigure(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchFigure(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchFigure(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchFigure(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchFigure(b, "fig15") }
func BenchmarkFig16(b *testing.B) { benchFigure(b, "fig16") }
func BenchmarkFig17(b *testing.B) { benchFigure(b, "fig17") }
func BenchmarkFig18(b *testing.B) { benchFigure(b, "fig18") }
func BenchmarkFig19(b *testing.B) { benchFigure(b, "fig19") }
func BenchmarkFig20(b *testing.B) { benchFigure(b, "fig20") }
func BenchmarkFig21(b *testing.B) { benchFigure(b, "fig21") }
func BenchmarkFig22(b *testing.B) { benchFigure(b, "fig22") }

// --- Ablation: FFT vs direct convolution in the SNC checker ------------

func sncInputs() (core.IntervalPMF, lrd.PowerLawACF, []int) {
	p, err := core.StratifiedPMF(8)
	if err != nil {
		panic(err)
	}
	taus := make([]int, 0, 12)
	for tau := 8; tau <= 96; tau += 8 {
		taus = append(taus, tau)
	}
	return p, lrd.PowerLawACF{Const: 1, Beta: 0.5}, taus
}

func BenchmarkSNCAblationFFT(b *testing.B) {
	p, acf, taus := sncInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CheckSNC(p, acf, taus); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSNCAblationDirect(b *testing.B) {
	p, acf, taus := sncInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CheckSNCDirect(p, acf, taus); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: BSS design modes (L tuned vs epsilon tuned) --------------

func bssAblationTrace(b *testing.B) ([]float64, float64) {
	b.Helper()
	rng := dist.NewRand(321)
	p := dist.Pareto{Alpha: 1.5, Xm: 1}
	f := make([]float64, 1<<18)
	for i := range f {
		f[i] = p.Sample(rng)
	}
	return f, stats.Mean(f)
}

func BenchmarkBSSDesignLTuned(b *testing.B) {
	f, mean := bssAblationTrace(b)
	design, err := core.NewBSSDesign(1.5)
	if err != nil {
		b.Fatal(err)
	}
	l, err := design.LUnbiased(1.0, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.BSS{Interval: 1000, L: int(l), Epsilon: 1.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samples, err := cfg.Sample(f)
		if err != nil {
			b.Fatal(err)
		}
		_ = core.Eta(core.MeanOf(samples), mean)
	}
}

func BenchmarkBSSDesignEpsTuned(b *testing.B) {
	f, mean := bssAblationTrace(b)
	design, err := core.NewBSSDesign(1.5)
	if err != nil {
		b.Fatal(err)
	}
	eps, err := design.EpsForTarget(10, 0.2, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.BSS{Interval: 1000, L: 10, Epsilon: eps}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samples, err := cfg.Sample(f)
		if err != nil {
			b.Fatal(err)
		}
		_ = core.Eta(core.MeanOf(samples), mean)
	}
}

// --- Ablation: exact vs instance-estimated average variance -------------

func BenchmarkAvgVarianceExact(b *testing.B) {
	f, mean := bssAblationTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExactSystematicVariance(f, 1000, mean); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAvgVarianceInstances(b *testing.B) {
	f, mean := bssAblationTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunInstances(f, mean, 40, core.SystematicInstances(1000)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Streaming engine vs batch adapter, per technique -------------------
//
// The batch path is Sample(f) — one call that internally drives the
// streaming engine over the whole series. The stream path offers ticks
// one by one the way a pipeline probe does, measuring the per-tick
// overhead of the StreamSampler interface. These are the perf baseline
// for the hot sampling path.

// samplerBenchSpecs names one spec per technique at a 1e-3-ish rate.
var samplerBenchSpecs = []struct{ name, spec string }{
	{"Systematic", "systematic:interval=1000"},
	{"Stratified", "stratified:interval=1000,seed=1"},
	{"SimpleRandom", "simple:rate=0.001,seed=1"},
	{"Bernoulli", "bernoulli:rate=0.001,seed=1"},
	{"BSS", "bss:interval=1000,L=10,eps=1.0"},
}

func samplerBenchTrace() []float64 {
	rng := dist.NewRand(77)
	p := dist.Pareto{Alpha: 1.5, Xm: 1}
	f := make([]float64, 1<<20)
	for i := range f {
		f[i] = p.Sample(rng)
	}
	return f
}

func BenchmarkSamplerBatch(b *testing.B) {
	f := samplerBenchTrace()
	for _, tc := range samplerBenchSpecs {
		b.Run(tc.name, func(b *testing.B) {
			s, err := core.Lookup(tc.spec)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Sample(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSamplerStream(b *testing.B) {
	f := samplerBenchTrace()
	for _, tc := range samplerBenchSpecs {
		b.Run(tc.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := core.LookupStream(tc.spec)
				if err != nil {
					b.Fatal(err)
				}
				kept := 0
				for j, v := range f {
					if _, ok := eng.Offer(j, v); ok {
						kept++
					}
				}
				if tail, err := eng.Finish(); err != nil {
					b.Fatal(err)
				} else {
					kept += len(tail)
				}
				if kept == 0 {
					b.Fatal("kept no samples")
				}
			}
		})
	}
}

// BenchmarkRegistryLookup tracks the spec-parse + build cost, which sits
// on the control path of every probe and experiment construction.
func BenchmarkRegistryLookup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Lookup("bss:rate=1e-3,L=10,eps=1.0"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Public sampling API ------------------------------------------------
//
// The public engine adds per-tick locking (for concurrent Snapshot) on
// top of the raw core StreamSampler; these benchmarks track that tax and
// the cost of live observation itself.

// BenchmarkPublicEngineStream is the public-API counterpart of
// BenchmarkSamplerStream: the per-tick cost a pipeline probe pays.
func BenchmarkPublicEngineStream(b *testing.B) {
	f := samplerBenchTrace()
	for _, tc := range samplerBenchSpecs {
		b.Run(tc.name, func(b *testing.B) {
			spec := sampling.MustParse(tc.spec)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := sampling.New(spec)
				if err != nil {
					b.Fatal(err)
				}
				for _, v := range f {
					eng.Offer(v)
				}
				if _, err := eng.Finish(); err != nil {
					b.Fatal(err)
				}
				if eng.Snapshot().Kept == 0 {
					b.Fatal("kept no samples")
				}
			}
		})
	}
}

// BenchmarkPublicEngineOfferBatch is the batch-ingest counterpart of
// BenchmarkPublicEngineStream: the same per-technique work fed in
// 512-tick batches, paying one engine-lock acquisition per batch
// instead of one per tick — the shape every hot ingest path (hub,
// sampled, sampleload) now drives.
func BenchmarkPublicEngineOfferBatch(b *testing.B) {
	f := samplerBenchTrace()
	const batch = 512
	for _, tc := range samplerBenchSpecs {
		b.Run(tc.name, func(b *testing.B) {
			spec := sampling.MustParse(tc.spec)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := sampling.New(spec)
				if err != nil {
					b.Fatal(err)
				}
				for off := 0; off < len(f); off += batch {
					eng.OfferBatch(f[off : off+batch])
				}
				if _, err := eng.Finish(); err != nil {
					b.Fatal(err)
				}
				if eng.Snapshot().Kept == 0 {
					b.Fatal("kept no samples")
				}
			}
		})
	}
}

// BenchmarkGroupOfferBatch measures the comparison-group fan-out: one
// 512-tick batch through all five techniques plus the shared input
// accumulator, per group-lock acquisition. Reported per input tick via
// b.N batches.
func BenchmarkGroupOfferBatch(b *testing.B) {
	specs := []sampling.Spec{}
	for _, tc := range samplerBenchSpecs {
		specs = append(specs, sampling.MustParse(tc.spec))
	}
	g, err := sampling.NewGroup(specs)
	if err != nil {
		b.Fatal(err)
	}
	f := samplerBenchTrace()[:512]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.OfferBatch(f)
	}
}

// BenchmarkPublicSnapshot measures one mid-stream observation of a warm
// engine — the operation a live dashboard performs per refresh.
func BenchmarkPublicSnapshot(b *testing.B) {
	f := samplerBenchTrace()
	eng, err := sampling.New(sampling.MustParse("bss:interval=1000,L=10,eps=1.0"))
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range f[:1<<16] {
		eng.Offer(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sum := eng.Snapshot(); sum.Seen == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkPublicNew tracks the typed parse + build control path of the
// public API, the counterpart of BenchmarkRegistryLookup.
func BenchmarkPublicNew(b *testing.B) {
	spec := sampling.MustParse("bss:rate=1e-3,L=10,eps=1.0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampling.New(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks -----------------------------------------

func BenchmarkTraceSynthesis(b *testing.B) {
	cfg := traffic.SynthConfig{
		Pairs: 50, Duration: 60, AlphaOn: 1.76,
		MeanOn: 0.5, MeanOff: 30, MeanRate: 5e5, RateAlpha: 1.6,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := traffic.SynthesizeTrace(cfg, dist.NewRand(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHurstEstimatorSuite(b *testing.B) {
	gen, err := lrd.NewFGN(0.8, 1<<14, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := gen.Generate(dist.NewRand(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := lrd.EstimateAll(x); len(got) < 5 {
			b.Fatalf("only %d estimators succeeded", len(got))
		}
	}
}

func BenchmarkFFTRoundTrip64k(b *testing.B) {
	x := make([]float64, 1<<16)
	for i := range x {
		x[i] = float64(i % 101)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := dsp.FFTReal(x)
		dsp.IFFT(spec)
	}
}
