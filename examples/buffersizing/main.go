// Buffer sizing: the downstream consumer of everything the paper builds.
// Estimate (mean, variance, Hurst) of a link from *sampled* measurements,
// dimension a router buffer with Norros' fBm formula, and compare against
// dimensioning from the full trace — showing why a sampling technique
// must preserve both the mean and the Hurst parameter.
//
//	go run ./examples/buffersizing
package main

import (
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/lrd"
	"repro/internal/queue"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/sampling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("buffersizing: ")

	// The link's true traffic: LRD with H ~ 0.8.
	cfg := traffic.OnOffConfig{
		Sources: 32, AlphaOn: 1.4, AlphaOff: 1.4,
		MeanOn: 10, MeanOff: 30, Rate: 1, Ticks: 1 << 18,
	}
	f, err := traffic.GenerateOnOff(cfg, dist.NewRand(77))
	if err != nil {
		log.Fatal(err)
	}
	const (
		headroom = 1.15 // service rate = 1.15 x mean
		target   = 1e-4 // acceptable overflow probability
	)
	trueMean := stats.Mean(f)
	c := headroom * trueMean

	// Ground truth: model fitted on the full trace.
	hFull, err := lrd.HurstWavelet(f, lrd.WaveletOptions{JMin: 4})
	if err != nil {
		log.Fatal(err)
	}
	full, err := queue.FitModel(f, clampH(hFull.H))
	if err != nil {
		log.Fatal(err)
	}
	bFull, err := full.BufferFor(c, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full trace:    mean %.3f, H %.3f -> buffer %.1f for P(overflow)=%g at c=%.3f\n",
		full.Mean, full.H, bFull, target, c)

	// The monitor's view: systematic sampling at rate 1e-2 (the sampled
	// process keeps H per Theorem 1; its mean may under-shoot).
	eng, err := sampling.New(sampling.MustParse("systematic:interval=100,offset=13"))
	if err != nil {
		log.Fatal(err)
	}
	samples, err := eng.Sample(f)
	if err != nil {
		log.Fatal(err)
	}
	g := sampling.SampledSeries(samples)
	hSampled, err := lrd.HurstWavelet(g, lrd.WaveletOptions{JMin: 3})
	if err != nil {
		log.Fatal(err)
	}
	sampled, err := queue.FitModel(g, clampH(hSampled.H))
	if err != nil {
		log.Fatal(err)
	}
	bSampled, err := sampled.BufferFor(c, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled (1%%):  mean %.3f, H %.3f -> buffer %.1f\n", sampled.Mean, sampled.H, bSampled)

	// What a wrong H would do: dimension with H = 0.5 (short-range
	// assumption) and with the sampled H.
	srd := sampled
	srd.H = 0.55
	bWrong, err := srd.BufferFor(c, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("if H were .55: buffer %.1f  (under-provisioned %.0fx)\n", bWrong, bFull/bWrong)

	// Validate by simulation: run the real traffic through each buffer.
	// (Norros is asymptotic, so absolute losses sit above the design
	// target; what matters is how fast loss grows as the buffer shrinks.)
	for _, tc := range []struct {
		name string
		b    float64
	}{{"Norros/full", bFull}, {"Norros/sampled", bSampled}, {"short-range", bWrong}} {
		res, err := queue.Simulate(f, c, tc.b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulated with %-14s buffer %8.1f: loss fraction %.2e\n",
			tc.name, tc.b, res.LossFraction)
	}
	fmt.Println("\nPreserving H in the sampled process (Theorem 1) is what makes")
	fmt.Println("monitor-driven buffer dimensioning land near the full-trace answer.")
}

// clampH keeps estimator noise inside Norros' valid range.
func clampH(h float64) float64 {
	if h <= 0.51 {
		return 0.51
	}
	if h >= 0.99 {
		return 0.99
	}
	return h
}
