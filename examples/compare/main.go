// Compare: the paper's side-by-side evaluation as one live object. A
// single self-similar trace is fanned through all five sampling
// techniques in a sampling.Group — every member sees the identical
// stream, the unsampled reference and the input-side Hurst estimator
// are shared — and the comparison snapshot scores each technique's
// fidelity: kept ratio, mean and variance bias against the raw input,
// and how far sampling moved the Hurst parameter.
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/lrd"
	"repro/sampling"
	"repro/sampling/estimate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("compare: ")

	// Exact fractional Gaussian noise at H = 0.85 — long-range dependent
	// by construction, so the Hurst drift column means something.
	const hurst = 0.85
	gen, err := lrd.NewFGN(hurst, 1<<17, 10, 2)
	if err != nil {
		log.Fatal(err)
	}
	f := gen.Generate(dist.NewRand(20050608))

	// One group, all five techniques at a ~1% rate, one shared input
	// estimator. Seeds ride in the specs: the group applies options
	// uniformly, and systematic/bss take no seed.
	specs := []sampling.Spec{
		sampling.MustParse("systematic:interval=100"),
		sampling.MustParse("stratified:interval=100,seed=1"),
		sampling.MustParse(fmt.Sprintf("simple:n=%d,seed=2", len(f)/100)),
		sampling.MustParse("bernoulli:rate=0.01,seed=3"),
		sampling.MustParse("bss:interval=100,L=10,eps=1.0"),
	}
	group, err := sampling.NewGroup(specs, sampling.WithEstimator(estimate.AggVar))
	if err != nil {
		log.Fatal(err)
	}

	// Stream it in batches, observing mid-run: snapshots never disturb
	// the members, and every member is seen at the same tick count.
	const batch = 4096
	for off := 0; off < len(f); off += batch {
		end := off + batch
		if end > len(f) {
			end = len(f)
		}
		group.OfferBatch(f[off:end])
		if off == len(f)/2/batch*batch {
			mid := group.Snapshot()
			fmt.Printf("mid-run at %d ticks: input mean %.4f, input H %.3f\n",
				mid.Seen, mid.Mean, mid.Hurst.H)
		}
	}
	if _, err := group.Finish(); err != nil {
		log.Fatal(err) // the offline draw finalizes here
	}

	cmp := group.Snapshot()
	fmt.Printf("\ninput: %d ticks, mean %.4f, variance %.4f, H %.3f (generated %.2f)\n",
		cmp.Seen, cmp.Mean, cmp.Variance, cmp.Hurst.H, hurst)
	fmt.Printf("\n%-34s %8s %11s %11s %9s\n", "technique", "kept", "mean-bias", "var-bias", "h-drift")
	for _, m := range cmp.Members {
		drift := "n/a"
		if hs := m.Summary.Hurst; hs != nil && hs.Kept.OK {
			drift = fmt.Sprintf("%+.3f", m.Fidelity.HurstDrift)
		}
		fmt.Printf("%-34s %8d %+11.4f %+11.4f %9s\n",
			m.Summary.Spec, m.Summary.Kept, m.Fidelity.MeanBias, m.Fidelity.VarianceBias, drift)
	}
	fmt.Println("\nEvery technique judged the same ticks; only the keep/drop rule differs.")
}
