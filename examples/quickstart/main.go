// Quickstart: generate a self-similar traffic trace, run the three
// classic techniques side by side in one comparison group (the v2
// public API: sampling.NewGroup fans the same ticks to every member and
// scores each against the unsampled input), then add BSS with its
// designed parameters — the paper's core story in ~80 lines. See
// examples/compare for the full five-technique comparison with live
// Hurst drift.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/lrd"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/sampling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// 1. Generate self-similar traffic: superposed heavy-tailed ON/OFF
	// sources with heterogeneous burst rates (H ~ 0.85, Pareto marginal).
	cfg := traffic.OnOffConfig{
		Sources: 12, AlphaOn: 1.3, AlphaOff: 1.5,
		MeanOn: 5, MeanOff: 300, Rate: 1, RateAlpha: 1.5,
		Ticks: 1 << 17,
	}
	f, err := traffic.GenerateOnOff(cfg, dist.NewRand(20050608))
	if err != nil {
		log.Fatal(err)
	}
	realMean := stats.Mean(f)
	fmt.Printf("trace: %d ticks, real mean %.4f, design H %.2f\n", len(f), realMean, cfg.Hurst())

	// 2. Confirm it is long-range dependent.
	if est, err := lrd.HurstWavelet(f, lrd.WaveletOptions{JMin: 4}); err == nil {
		fmt.Printf("wavelet Hurst estimate: %.3f (H > 0.5 means LRD)\n", est.H)
	}

	// 3. Sample at rate 1e-3 with every classic technique — side by side
	// in one comparison group, so all three judge the identical stream
	// and the fidelity scores come straight off the snapshot (the v2
	// surface; seeds ride in the specs because options apply group-wide).
	const interval = 1000
	n := len(f) / interval
	group, err := sampling.NewGroup([]sampling.Spec{
		sampling.MustParse(fmt.Sprintf("systematic:interval=%d", interval)),
		sampling.MustParse(fmt.Sprintf("stratified:interval=%d,seed=1", interval)),
		sampling.MustParse(fmt.Sprintf("simple:n=%d,seed=2", n)),
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := group.Sample(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-14s  %10s  %8s  %8s\n", "technique", "mean", "eta", "samples")
	for _, mem := range group.Snapshot().Members {
		fmt.Printf("%-14s  %10.4f  %8.4f  %8d\n",
			mem.Summary.Technique, mem.Summary.Mean, mem.Fidelity.MeanBias, mem.Summary.Kept)
	}

	// 4. BSS: design L for the typical bias via the paper's Eq. (23), then
	// sample with the adaptive threshold (epsilon = 1). The typical bias is
	// the median over systematic instances at spread offsets.
	design, err := sampling.NewBSSDesign(1.5) // marginal tail index
	if err != nil {
		log.Fatal(err)
	}
	st, err := sampling.RunInstances(f, realMean, 21, sampling.SystematicInstances(interval))
	if err != nil {
		log.Fatal(err)
	}
	medMean, err := stats.Median(st.Means)
	if err != nil {
		log.Fatal(err)
	}
	eta := sampling.Eta(medMean, realMean)
	if eta < 0.01 {
		eta = 0.01
	}
	lf, err := design.LUnbiased(1.0, eta)
	if err != nil {
		log.Fatal(err)
	}
	l := int(lf + 0.5)
	if l < 1 {
		l = 1
	}
	bss, err := sampling.New(sampling.MustParse(fmt.Sprintf("bss:interval=%d,L=%d,eps=1.0", interval, l)))
	if err != nil {
		log.Fatal(err)
	}
	samples, err := bss.Sample(f)
	if err != nil {
		log.Fatal(err)
	}
	m := sampling.MeanOf(samples)
	fmt.Printf("%-14s  %10.4f  %8.4f  %8d   (L=%d, overhead %.3f)\n",
		"bss", m, sampling.Eta(m, realMean), len(samples), l, sampling.Overhead(samples))
	fmt.Println("\nBSS recovers the mass that plain sampling misses in the bursts.")
}
