// Quickstart: generate a self-similar traffic trace, sample it with the
// three classic techniques and with BSS, and compare the mean estimates —
// the paper's core story in ~80 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lrd"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// 1. Generate self-similar traffic: superposed heavy-tailed ON/OFF
	// sources with heterogeneous burst rates (H ~ 0.85, Pareto marginal).
	cfg := traffic.OnOffConfig{
		Sources: 12, AlphaOn: 1.3, AlphaOff: 1.5,
		MeanOn: 5, MeanOff: 300, Rate: 1, RateAlpha: 1.5,
		Ticks: 1 << 17,
	}
	f, err := traffic.GenerateOnOff(cfg, dist.NewRand(20050608))
	if err != nil {
		log.Fatal(err)
	}
	realMean := stats.Mean(f)
	fmt.Printf("trace: %d ticks, real mean %.4f, design H %.2f\n", len(f), realMean, cfg.Hurst())

	// 2. Confirm it is long-range dependent.
	if est, err := lrd.HurstWavelet(f, lrd.WaveletOptions{JMin: 4}); err == nil {
		fmt.Printf("wavelet Hurst estimate: %.3f (H > 0.5 means LRD)\n", est.H)
	}

	// 3. Sample at rate 1e-3 with every technique.
	const interval = 1000
	n := len(f) / interval
	samplers := []core.Sampler{
		core.Systematic{Interval: interval},
		core.Stratified{Interval: interval, Rng: dist.NewRand(1)},
		core.SimpleRandom{N: n, Rng: dist.NewRand(2)},
	}
	fmt.Printf("\n%-14s  %10s  %8s  %8s\n", "technique", "mean", "eta", "samples")
	for _, s := range samplers {
		samples, err := s.Sample(f)
		if err != nil {
			log.Fatal(err)
		}
		m := core.MeanOf(samples)
		fmt.Printf("%-14s  %10.4f  %8.4f  %8d\n", s.Name(), m, core.Eta(m, realMean), len(samples))
	}

	// 4. BSS: design L for the typical bias via the paper's Eq. (23), then
	// sample with the adaptive threshold (epsilon = 1).
	design, err := core.NewBSSDesign(1.5) // marginal tail index
	if err != nil {
		log.Fatal(err)
	}
	st, err := core.RunInstances(f, realMean, 21, core.SystematicInstances(interval))
	if err != nil {
		log.Fatal(err)
	}
	medMean, err := stats.Median(st.Means)
	if err != nil {
		log.Fatal(err)
	}
	eta := core.Eta(medMean, realMean)
	if eta < 0.01 {
		eta = 0.01
	}
	lf, err := design.LUnbiased(1.0, eta)
	if err != nil {
		log.Fatal(err)
	}
	l := int(lf + 0.5)
	if l < 1 {
		l = 1
	}
	bss := core.BSS{Interval: interval, L: l, Epsilon: 1.0}
	samples, err := bss.Sample(f)
	if err != nil {
		log.Fatal(err)
	}
	m := core.MeanOf(samples)
	fmt.Printf("%-14s  %10.4f  %8.4f  %8d   (L=%d, overhead %.3f)\n",
		"bss", m, core.Eta(m, realMean), len(samples), bss.L, core.Overhead(samples))
	fmt.Println("\nBSS recovers the mass that plain sampling misses in the bursts.")
}
