// Usage accounting: estimate per-OD-flow traffic volumes from sampled
// data, the long-term charging use case (Duffield et al.) the paper cites.
// Compares plain systematic sampling against online-designed BSS on the
// flow that matters: a bursty heavy-tailed customer whose volume ordinary
// sampling under-bills.
//
//	go run ./examples/accounting
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/sampling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("accounting: ")

	// One billing period of per-customer traffic: customer A is smooth
	// (light-tailed), customer B is bursty (heavy-tailed durations and
	// burst rates). Both have similar true volume.
	const ticks = 1 << 18
	smoothCfg := traffic.OnOffConfig{
		Sources: 64, AlphaOn: 1.9, AlphaOff: 1.9,
		MeanOn: 50, MeanOff: 50, Rate: 0.2, Ticks: ticks,
	}
	burstyCfg := traffic.OnOffConfig{
		Sources: 12, AlphaOn: 1.3, AlphaOff: 1.5,
		MeanOn: 5, MeanOff: 300, Rate: 1, RateAlpha: 1.5, Ticks: ticks,
	}
	smooth, err := traffic.GenerateOnOff(smoothCfg, dist.NewRand(100))
	if err != nil {
		log.Fatal(err)
	}
	bursty, err := traffic.GenerateOnOff(burstyCfg, dist.NewRand(300))
	if err != nil {
		log.Fatal(err)
	}

	const rate = 1e-3
	interval := int(1 / rate)
	fmt.Printf("billing from a %.0e sampling rate (interval %d)\n\n", rate, interval)
	fmt.Printf("%-10s  %12s  %12s  %8s  %12s  %8s  %8s\n",
		"customer", "true volume", "sys billed", "sys err", "bss billed", "bss err", "overhead")

	// Billing runs once per deployment at an arbitrary phase, so we report
	// the *typical* (median-over-offsets) bill each method produces.
	for _, c := range []struct {
		name  string
		f     []float64
		alpha float64
	}{
		{"smooth", smooth, 1.9},
		{"bursty", bursty, 1.5},
	} {
		trueVol := stats.Sum(c.f)
		trueMean := trueVol / float64(len(c.f))
		ticksF := float64(len(c.f))

		// Systematic billing: typical sampled mean x duration.
		st, err := sampling.RunInstances(c.f, trueMean, 21, sampling.SystematicInstances(interval))
		if err != nil {
			log.Fatal(err)
		}
		sysMed, err := stats.Median(st.Means)
		if err != nil {
			log.Fatal(err)
		}
		sysVol := sysMed * ticksF

		// BSS billing with the online design: derive L for the measured
		// typical bias via the paper's Eq. (23), then bill the same way.
		design, err := sampling.NewBSSDesign(c.alpha)
		if err != nil {
			log.Fatal(err)
		}
		eta := sampling.Eta(sysMed, trueMean)
		if eta < 0.005 {
			eta = 0.005
		}
		lf, err := design.LUnbiased(1.0, eta)
		if err != nil {
			log.Fatal(err)
		}
		bssSpec := sampling.MustParse(fmt.Sprintf("bss:interval=%d,L=%d,eps=1.0", interval, int(lf)))
		bst, err := sampling.RunInstances(c.f, trueMean, 21, sampling.BSSInstances(bssSpec))
		if err != nil {
			log.Fatal(err)
		}
		bssMed, err := stats.Median(bst.Means)
		if err != nil {
			log.Fatal(err)
		}
		bssVol := bssMed * ticksF

		fmt.Printf("%-10s  %12.4g  %12.4g  %7.2f%%  %12.4g  %7.2f%%  %8.3f\n",
			c.name, trueVol, sysVol, 100*math.Abs(sysVol-trueVol)/trueVol,
			bssVol, 100*math.Abs(bssVol-trueVol)/trueVol, bst.AvgOverhead)
	}
	fmt.Println("\nOn smooth traffic both bills agree; on bursty traffic plain sampling")
	fmt.Println("typically under-bills and BSS closes most of the gap for a small overhead.")
}
