// Hotspot detection: run the concurrent router-monitor pipeline over a
// synthesized OD-flow packet trace with an injected DoS-like burst, and
// show a threshold alarm probe spotting it from sampled data — the
// short-term monitoring use case the paper's introduction motivates.
// While the monitor runs, a watcher goroutine snapshots the BSS probe
// mid-stream: the pipeline is a live monitor, not a batch job.
//
//	go run ./examples/hotspot
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"

	"repro/internal/dist"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hotspot: ")

	// Background traffic: 50 OD pairs for 120 seconds.
	// Constant per-burst rates keep the background tame so the alarm's
	// false-positive rate stays near zero for the demo.
	cfg := traffic.SynthConfig{
		Pairs: 50, Duration: 120, AlphaOn: 1.6,
		MeanOn: 0.5, MeanOff: 20, MeanRate: 2e5,
	}
	pkts, err := traffic.SynthesizeTrace(cfg, dist.NewRand(7))
	if err != nil {
		log.Fatal(err)
	}
	// Inject a hot spot: one pair floods for 5 seconds starting at t=60.
	for t := 60.0; t < 65; t += 0.0005 {
		pkts = append(pkts, traffic.Packet{
			Time: t, Src: 999, Dst: 1000,
			Size: 1500, // full-size flood packets
		})
	}
	sort.Slice(pkts, func(i, j int) bool { return pkts[i].Time < pkts[j].Time })

	const granularity = 0.05 // 50 ms bins
	f, err := traffic.BinBytes(pkts, granularity, cfg.Duration)
	if err != nil {
		log.Fatal(err)
	}
	baseline := stats.Mean(f)
	fmt.Printf("trace: %d packets, %d bins, mean rate %.3g bytes/s\n", len(pkts), len(f), baseline)

	// Probes: a systematic estimator, a BSS estimator, and an alarm that
	// fires when a 5-sample rolling mean of every 4th bin exceeds 3x the
	// long-run mean.
	sys, err := pipeline.NewSpecProbe("systematic", "systematic:interval=4")
	if err != nil {
		log.Fatal(err)
	}
	bss, err := pipeline.NewSpecProbe("bss", "bss:interval=4,L=2,eps=2.5")
	if err != nil {
		log.Fatal(err)
	}
	alarm, err := pipeline.NewThresholdAlarmProbe("alarm", 4, 5, 3*baseline)
	if err != nil {
		log.Fatal(err)
	}
	mon, err := pipeline.NewMonitor(sys, bss, alarm)
	if err != nil {
		log.Fatal(err)
	}

	// Live observation: snapshot the BSS probe as ticks flow. Snapshot
	// never finalizes the engine, so watching changes nothing downstream.
	ticks := make(chan pipeline.Tick, 256)
	watcher := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		seen := 0
		for range watcher {
			s := bss.Snapshot()
			if s.Seen >= seen+600 { // roughly every 30 s of trace time
				seen = s.Seen
				fmt.Printf("live: t~%4.0fs  bss kept %4d of %4d ticks, running mean %.3g\n",
					float64(s.Seen)*granularity, s.Kept, s.Seen, s.Mean)
			}
		}
	}()
	go func() {
		defer close(watcher)
		src := make(chan pipeline.Tick, 256)
		go func() {
			if _, err := pipeline.BinTicks(context.Background(), pkts, granularity, src); err != nil {
				log.Fatal(err)
			}
		}()
		for t := range src {
			ticks <- t
			select {
			case watcher <- struct{}{}:
			default:
			}
		}
		close(ticks)
	}()
	reports, err := mon.Run(context.Background(), ticks)
	if err != nil {
		log.Fatal(err)
	}
	watch.Wait()

	fmt.Printf("\n%-12s  %8s  %10s  %10s\n", "probe", "kept", "mean", "qualified")
	for _, r := range reports {
		fmt.Printf("%-12s  %8d  %10.3g  %10d\n", r.Name, r.Kept, r.Mean, r.Qualified)
	}

	alarms := alarm.Alarms()
	if len(alarms) == 0 {
		log.Fatal("the alarm probe missed the injected hot spot")
	}
	first := float64(alarms[0]) * granularity
	last := float64(alarms[len(alarms)-1]) * granularity
	fmt.Printf("\nhot spot injected at t=60..65s; alarm fired %d times between t=%.1fs and t=%.1fs\n",
		len(alarms), first, last)
}
