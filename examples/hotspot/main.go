// Hotspot detection: run the concurrent router-monitor pipeline over a
// synthesized OD-flow packet trace with an injected DoS-like burst, and
// show a threshold alarm probe spotting it from sampled data — the
// short-term monitoring use case the paper's introduction motivates.
//
//	go run ./examples/hotspot
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/dist"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hotspot: ")

	// Background traffic: 50 OD pairs for 120 seconds.
	// Constant per-burst rates keep the background tame so the alarm's
	// false-positive rate stays near zero for the demo.
	cfg := traffic.SynthConfig{
		Pairs: 50, Duration: 120, AlphaOn: 1.6,
		MeanOn: 0.5, MeanOff: 20, MeanRate: 2e5,
	}
	pkts, err := traffic.SynthesizeTrace(cfg, dist.NewRand(7))
	if err != nil {
		log.Fatal(err)
	}
	// Inject a hot spot: one pair floods for 5 seconds starting at t=60.
	rng := dist.NewRand(8)
	for t := 60.0; t < 65; t += 0.0005 {
		pkts = append(pkts, traffic.Packet{
			Time: t, Src: 999, Dst: 1000,
			Size: 1500, // full-size flood packets
		})
		_ = rng
	}
	sort.Slice(pkts, func(i, j int) bool { return pkts[i].Time < pkts[j].Time })

	const granularity = 0.05 // 50 ms bins
	f, err := traffic.BinBytes(pkts, granularity, cfg.Duration)
	if err != nil {
		log.Fatal(err)
	}
	baseline := stats.Mean(f)
	fmt.Printf("trace: %d packets, %d bins, mean rate %.3g bytes/s\n", len(pkts), len(f), baseline)

	// Probes: a systematic estimator, a BSS estimator, and an alarm that
	// fires when a 5-sample rolling mean of every 4th bin exceeds 3x the
	// long-run mean.
	sys, err := pipeline.NewSpecProbe("systematic", "systematic:interval=4")
	if err != nil {
		log.Fatal(err)
	}
	bss, err := pipeline.NewSpecProbe("bss", "bss:interval=4,L=2,eps=2.5")
	if err != nil {
		log.Fatal(err)
	}
	alarm, err := pipeline.NewThresholdAlarmProbe("alarm", 4, 5, 3*baseline)
	if err != nil {
		log.Fatal(err)
	}
	mon, err := pipeline.NewMonitor(sys, bss, alarm)
	if err != nil {
		log.Fatal(err)
	}

	ticks := make(chan pipeline.Tick, 256)
	go func() {
		if _, err := pipeline.BinTicks(context.Background(), pkts, granularity, ticks); err != nil {
			log.Fatal(err)
		}
	}()
	reports, err := mon.Run(context.Background(), ticks)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s  %8s  %10s  %10s\n", "probe", "kept", "mean", "qualified")
	for _, r := range reports {
		fmt.Printf("%-12s  %8d  %10.3g  %10d\n", r.Name, r.Kept, r.Mean, r.Qualified)
	}

	alarms := alarm.Alarms()
	if len(alarms) == 0 {
		log.Fatal("the alarm probe missed the injected hot spot")
	}
	first := float64(alarms[0]) * granularity
	last := float64(alarms[len(alarms)-1]) * granularity
	fmt.Printf("\nhot spot injected at t=60..65s; alarm fired %d times between t=%.1fs and t=%.1fs\n",
		len(alarms), first, last)
}
