// SNC check: apply Theorem 1's numerical test (the FFT method of Section
// III-D) to decide whether a custom sampling strategy preserves the Hurst
// parameter — including one that provably does NOT (gaps drawn from a
// heavy-tailed law), showing the checker has teeth.
//
//	go run ./examples/snccheck
package main

import (
	"fmt"
	"log"
	"math"

	"repro/sampling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snccheck: ")

	acf := sampling.PowerLawACF{Const: 1, Beta: 0.4} // H = 0.8 process
	taus := make([]int, 0, 12)
	for tau := 8; tau <= 96; tau += 8 {
		taus = append(taus, tau)
	}

	fmt.Printf("original process: R(tau) ~ tau^-%.1f (H = %.2f)\n\n", acf.Beta, acf.Hurst())
	fmt.Printf("%-24s  %8s  %8s  %s\n", "gap law", "betaHat", "|err|", "preserves H?")

	check := func(name string, p sampling.IntervalPMF) {
		res, err := sampling.CheckSNC(p, acf, taus)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-24s  %8.4f  %8.4f  %v\n",
			name, res.BetaHat, math.Abs(res.BetaHat-acf.Beta), res.Preserved(0.05))
	}

	// The three classic techniques, via their closed-form gap laws.
	sys, err := sampling.SystematicPMF(8)
	if err != nil {
		log.Fatal(err)
	}
	check("systematic (C=8)", sys)
	strat, err := sampling.StratifiedPMF(8)
	if err != nil {
		log.Fatal(err)
	}
	check("stratified (C=8)", strat)
	bern, err := sampling.BernoulliPMF(1.0/8, 1e-12)
	if err != nil {
		log.Fatal(err)
	}
	check("simple random (r=1/8)", bern)

	// A custom sampler with no closed-form gap law: estimate the law
	// empirically from its spec with GapPMF, then run the same check.
	empirical, err := sampling.GapPMF(sampling.MustParse("systematic:interval=8"), 100000)
	if err != nil {
		log.Fatal(err)
	}
	check("empirical (GapPMF)", empirical)

	// A heavy-tailed but finite-mean gap law (index 1.5) still passes: by
	// the renewal theorem the cumulative displacement grows linearly, so
	// the decay exponent survives. This is the deeper content of Theorem 1.
	check("heavy gaps (alpha=1.5)", heavyGapPMF(1.5, 1<<12))

	// A pathological strategy: gaps with an infinite-mean law (index 0.7).
	// Displacements grow superlinearly (~tau^(1/0.7)), stretching the
	// thinned correlation to ~tau^(-beta/0.7) — the SNC fails and the
	// sampled process reports the wrong Hurst parameter.
	check("infinite-mean gaps (0.7)", heavyGapPMF(0.7, 1<<16))

	fmt.Println("\nFinite-mean gap laws preserve H; infinite-mean gap laws do not.")
}

// heavyGapPMF builds Pr(T = k) proportional to k^-(alpha+1) on 1..maxGap.
func heavyGapPMF(alpha float64, maxGap int) sampling.IntervalPMF {
	p := make([]float64, maxGap+1)
	var sum float64
	for k := 1; k <= maxGap; k++ {
		p[k] = math.Pow(float64(k), -(alpha + 1))
		sum += p[k]
	}
	for k := 1; k <= maxGap; k++ {
		p[k] /= sum
	}
	return sampling.IntervalPMF{P: p}
}
