package sampling

import (
	"fmt"
	"time"

	"repro/sampling/estimate"
)

// Option configures an Engine at construction; see New.
type Option func(*config) error

type config struct {
	seed      *uint64
	budget    int
	clock     func() time.Time
	estimator estimate.Method
}

// WithSeed sets the random seed of a randomized technique, overriding
// any seed parameter already in the spec. Using it with a technique that
// takes no seed (e.g. systematic) is a *ParamError, so a typo'd option
// fails loudly instead of silently doing nothing.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = &seed
		return nil
	}
}

// WithBudget caps the number of samples the engine keeps at n >= 1.
// Once the budget is exhausted the engine keeps consuming ticks (so the
// technique's internal state stays faithful to the stream) but emits no
// further samples — a hard memory/IO bound for long-running monitors.
func WithBudget(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("sampling: budget %d must be >= 1", n)
		}
		c.budget = n
		return nil
	}
}

// WithEstimator attaches an online Hurst estimator of the named method
// ("aggvar", "wavelet" or "rs") to the engine: one instance consumes
// every offered tick (the observed parent process) and a second
// consumes the kept sample values, so Snapshot reports the H the
// sampler saw next to the H it preserved — the paper's preservation
// question, live. The tick path stays allocation-free; unknown method
// names wrap ErrUnknownEstimator.
func WithEstimator(method estimate.Method) Option {
	return func(c *config) error {
		// Validate eagerly so a typo fails at New, not first Snapshot.
		if _, err := estimate.New(method); err != nil {
			return fmt.Errorf("sampling: %w", err)
		}
		c.estimator = method
		return nil
	}
}

// WithClock substitutes the time source used to stamp snapshots
// (Summary.At, Summary.Uptime). The default is time.Now; tests inject a
// fake clock for deterministic summaries.
func WithClock(now func() time.Time) Option {
	return func(c *config) error {
		if now == nil {
			return fmt.Errorf("sampling: WithClock needs a non-nil time source")
		}
		c.clock = now
		return nil
	}
}
