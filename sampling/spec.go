package sampling

import (
	"sort"
	"strings"

	"repro/internal/core"
)

// Spec is the typed description of a sampler: a registered technique
// name plus its key=value parameters. The zero value is invalid; build
// specs with Parse, MustParse, or a literal:
//
//	Spec{Technique: "systematic", Params: map[string]string{"interval": "1000"}}
//
// A Spec is a value: With returns modified copies and String renders the
// canonical spec string, so specs round-trip losslessly between the
// typed and string forms.
type Spec struct {
	Technique string
	Params    map[string]string
}

// Parse parses a spec string like "bss:rate=1e-3,L=10,eps=1.0" into a
// typed Spec. It validates only the syntax, not the technique name or
// parameter values — New performs those checks, so a Spec can be parsed
// and inspected before the technique is registered. Syntax errors wrap
// ErrBadSpec.
func Parse(s string) (Spec, error) {
	name, p, err := core.ParseSpec(s)
	if err != nil {
		return Spec{}, err
	}
	return Spec{Technique: name, Params: p.Map()}, nil
}

// MustParse is Parse for statically known specs; it panics on error.
func MustParse(s string) Spec {
	spec, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// String renders the canonical spec string: the technique name, then the
// parameters in sorted key order. Parse(s.String()) yields a Spec equal
// to s whenever the values are free of the separator characters
// ':' ',' '=' — always the case for specs that came from Parse; that is
// the round-trip property the spec tests assert. New never goes through
// the string form (it hands the parameter map to the technique's factory
// directly), so a literal Spec with unusual values still builds and
// fails, if it fails, with a *ParamError naming the right key.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Technique
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Technique)
	sep := byte(':')
	for _, k := range keys {
		b.WriteByte(sep)
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Params[k])
		sep = ','
	}
	return b.String()
}

// With returns a copy of the spec with one parameter set (or replaced).
// The receiver is not modified.
func (s Spec) With(key, value string) Spec {
	out := Spec{Technique: s.Technique, Params: make(map[string]string, len(s.Params)+1)}
	for k, v := range s.Params {
		out.Params[k] = v
	}
	out.Params[key] = value
	return out
}

// Param returns the raw value of a parameter and whether it is present.
func (s Spec) Param(key string) (string, bool) {
	v, ok := s.Params[key]
	return v, ok
}

// Equal reports whether two specs describe the same sampler: identical
// technique and parameters. A nil and an empty parameter map compare
// equal.
func (s Spec) Equal(o Spec) bool {
	if s.Technique != o.Technique || len(s.Params) != len(o.Params) {
		return false
	}
	for k, v := range s.Params {
		if ov, ok := o.Params[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// Techniques returns the sorted names of every registered sampling
// technique.
func Techniques() []string { return core.Names() }
