package sampling

import (
	"strconv"

	"repro/internal/core"
)

// InstanceStats aggregates repeated sampling experiments ("instances" in
// the paper's terminology: different systematic offsets, or different
// random draws at the same rate).
type InstanceStats = core.InstanceStats

// RunInstances executes n independent sampling instances described by
// the specs the factory yields and reduces them against the known real
// mean. The factory receives the instance number (0..n-1) and typically
// varies the systematic offset or the random seed; see
// SystematicInstances and friends for the standard variations.
func RunInstances(f []float64, realMean float64, n int, factory func(instance int) (Spec, error)) (InstanceStats, error) {
	return core.RunInstances(f, realMean, n, func(i int) (core.Sampler, error) {
		spec, err := factory(i)
		if err != nil {
			return nil, err
		}
		return core.Build(spec.Technique, spec.Params)
	})
}

// SystematicInstances yields systematic specs whose offsets are spread
// evenly across the sampling interval — the paper's notion of distinct
// systematic instances ("different starting sampling points").
func SystematicInstances(interval int) func(int) (Spec, error) {
	return func(i int) (Spec, error) {
		return Spec{Technique: "systematic", Params: map[string]string{
			"interval": strconv.Itoa(interval),
			"offset":   strconv.Itoa(core.SpreadOffset(i, interval)),
		}}, nil
	}
}

// StratifiedInstances yields stratified specs with one derived seed per
// instance.
func StratifiedInstances(interval int, baseSeed uint64) func(int) (Spec, error) {
	return func(i int) (Spec, error) {
		return Spec{Technique: "stratified", Params: map[string]string{
			"interval": strconv.Itoa(interval),
			"seed":     strconv.FormatUint(instanceSeed(baseSeed, i), 10),
		}}, nil
	}
}

// SimpleRandomInstances yields n-sample simple random specs with one
// derived seed per instance.
func SimpleRandomInstances(n int, baseSeed uint64) func(int) (Spec, error) {
	return func(i int) (Spec, error) {
		return Spec{Technique: "simple-random", Params: map[string]string{
			"n":    strconv.Itoa(n),
			"seed": strconv.FormatUint(instanceSeed(baseSeed, i), 10),
		}}, nil
	}
}

// BSSInstances spreads the offset of a base BSS spec across its sampling
// interval, holding every other parameter fixed. The base spec must
// carry interval=N or rate=R.
func BSSInstances(base Spec) func(int) (Spec, error) {
	return func(i int) (Spec, error) {
		interval, err := specInterval(base)
		if err != nil {
			return Spec{}, err
		}
		return base.With("offset", strconv.Itoa(core.SpreadOffset(i, interval))), nil
	}
}

// instanceSeed mirrors the per-instance seed derivation the internal
// instance factories use, so spec-built instances reproduce them exactly.
func instanceSeed(baseSeed uint64, i int) uint64 {
	return baseSeed + uint64(i)*0x9e3779b9
}

// specInterval resolves a spec's base sampling interval from its
// interval or rate parameter.
func specInterval(s Spec) (int, error) {
	if v, ok := s.Param("interval"); ok {
		iv, err := strconv.Atoi(v)
		if err != nil {
			return 0, &ParamError{Technique: s.Technique, Param: "interval", Value: v, Reason: "not an integer"}
		}
		return iv, nil
	}
	if v, ok := s.Param("rate"); ok {
		r, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, &ParamError{Technique: s.Technique, Param: "rate", Value: v, Reason: "not a number"}
		}
		iv, err := core.IntervalForRate(r)
		if err != nil {
			return 0, &ParamError{Technique: s.Technique, Param: "rate", Value: v, Reason: "outside (0,1]"}
		}
		return iv, nil
	}
	return 0, &ParamError{Technique: s.Technique, Param: "interval", Reason: "spec needs interval=N or rate=R"}
}
