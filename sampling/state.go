package sampling

import (
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/binenc"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/sampling/estimate"
)

// Engine and group state serialization — the bottom layer of the
// durability subsystem (sampling/persist holds the checkpoint-file
// container, sampling/hub the hub-wide forms).
//
// The framing mirrors sampling/wire's discipline: a little-endian magic
// word, a version byte, the payload, and a CRC-32 (IEEE) trailer over
// everything before it. Inside the payload, integers are little-endian
// fixed-width, floats raw IEEE-754 bits, strings and nested blobs
// u32-length-prefixed (internal/binenc).
//
// Engine state blob, version 1:
//
//	offset  size  field
//	0       4     magic "Eng1" (0x31676e45 little-endian)
//	4       1     version (1)
//	5       ...   spec string (canonical form, seed included)
//	              budget i64, start unix-nanos i64
//	              seen i64, kept i64, qualified i64
//	              kept-value accumulator (n i64, mean/m2/sum/min/max f64)
//	              finished bool, finish error string ("" = none)
//	              kernel state blob (technique-tagged, opaque)
//	              input estimator:  present bool [, method string, blob]
//	              kept estimator:   present bool [, method string, blob]
//	end-4   4     CRC-32 (IEEE) over every preceding byte
//
// The invariant the whole layer is built for: RestoreEngine on a
// MarshalState blob yields an engine that emits the byte-identical
// kept-sample sequence — and Hurst estimates — the original engine
// would have produced had it never stopped. The RNG position travels
// inside the kernel blob, so the random draw sequence continues
// exactly.

const (
	engineStateMagic uint32 = 0x31676e45 // "Eng1" little-endian
	groupStateMagic  uint32 = 0x31707247 // "Grp1" little-endian
	stateVersion     uint8  = 1
)

var (
	// ErrBadState is wrapped by RestoreEngine/RestoreGroup for blobs
	// that are structurally unusable: too short, wrong magic, corrupt
	// payload. Branch with errors.Is.
	ErrBadState = errors.New("sampling: malformed state blob")
	// ErrStateVersion is wrapped for well-framed blobs whose version
	// this build does not speak.
	ErrStateVersion = errors.New("sampling: unsupported state version")
	// ErrStateChecksum is wrapped when the CRC-32 trailer does not match
	// the payload — truncation or bit rot, not a format error.
	ErrStateChecksum = errors.New("sampling: state checksum mismatch")
)

// sealState appends the CRC-32 trailer over the assembled payload.
func sealState(payload []byte) []byte {
	return binenc.AppendU32(payload, crc32.ChecksumIEEE(payload))
}

// openState validates framing (length, magic, version, CRC) and returns
// a reader positioned at the first payload field.
func openState(data []byte, magic uint32, kind string) (*binenc.Reader, error) {
	const overhead = 4 + 1 + 4 // magic + version + crc
	if len(data) < overhead {
		return nil, fmt.Errorf("sampling: %s state blob of %d bytes is shorter than its framing: %w", kind, len(data), ErrBadState)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	r := binenc.NewReader(data)
	if got := r.U32(); got != magic {
		return nil, fmt.Errorf("sampling: %s state magic %#08x, want %#08x: %w", kind, got, magic, ErrBadState)
	}
	if got := r.U8(); got != stateVersion {
		return nil, fmt.Errorf("sampling: %s state version %d, this build speaks %d: %w", kind, got, stateVersion, ErrStateVersion)
	}
	if got, want := binenc.NewReader(trailer).U32(), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("sampling: %s state CRC %#08x, computed %#08x: %w", kind, got, want, ErrStateChecksum)
	}
	// Re-wrap so the payload reader cannot run into the CRC trailer.
	r = binenc.NewReader(body[4+1:])
	return r, nil
}

// restoreConfig validates the option set a Restore* call may carry:
// only the clock is injectable — seed, budget and estimator are part of
// the serialized state, and overriding them would break the
// byte-identical-continuation invariant.
func restoreConfig(opts []Option) (config, error) {
	cfg := config{clock: time.Now}
	for _, opt := range opts {
		if opt == nil {
			return config{}, fmt.Errorf("sampling: nil option")
		}
		if err := opt(&cfg); err != nil {
			return config{}, err
		}
	}
	if cfg.seed != nil || cfg.budget != 0 || cfg.estimator != "" {
		return config{}, fmt.Errorf("sampling: restore accepts only WithClock; seed, budget and estimator are carried by the state blob")
	}
	return cfg, nil
}

// MarshalState captures the engine's complete state — spec, counters,
// accumulator, technique kernel (including its RNG position) and any
// estimator ladders — as a versioned, CRC-checked blob. It never
// finalizes anything: the engine keeps running, and the blob describes
// the exact tick boundary the next OfferBatch would continue from.
// Concurrent OfferBatch calls serialize against it, so a blob always
// sits on a batch boundary.
func (e *Engine) MarshalState() ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.impl.(core.StatefulSampler)
	if !ok {
		return nil, fmt.Errorf("sampling: technique %q does not expose kernel state", e.impl.Name())
	}
	kernel, err := st.AppendState(nil)
	if err != nil {
		return nil, fmt.Errorf("sampling: capture %q kernel state: %w", e.impl.Name(), err)
	}
	b := binenc.AppendU32(nil, engineStateMagic)
	b = binenc.AppendU8(b, stateVersion)
	b = binenc.AppendString(b, e.specString)
	b = binenc.AppendI64(b, int64(e.budget))
	b = binenc.AppendI64(b, e.start.UnixNano())
	b = binenc.AppendI64(b, int64(e.seen))
	b = binenc.AppendI64(b, int64(e.kept))
	b = binenc.AppendI64(b, int64(e.qualified))
	accState := e.acc.State()
	b = binenc.AppendI64(b, int64(accState.N))
	b = binenc.AppendF64(b, accState.Mean)
	b = binenc.AppendF64(b, accState.M2)
	b = binenc.AppendF64(b, accState.Sum)
	b = binenc.AppendF64(b, accState.Min)
	b = binenc.AppendF64(b, accState.Max)
	b = binenc.AppendBool(b, e.finished)
	b = binenc.AppendString(b, errString(e.finishErr))
	b = binenc.AppendBytes(b, kernel)
	if b, err = appendEstimator(b, e.estIn); err != nil {
		return nil, err
	}
	if b, err = appendEstimator(b, e.estKept); err != nil {
		return nil, err
	}
	return sealState(b), nil
}

// RestoreEngine rebuilds an engine from a MarshalState blob. The only
// accepted option is WithClock (the clock is runtime wiring, not
// state); the spec, seed, budget and estimators all come from the blob.
// The restored engine continues exactly where the captured one stood:
// same counters, same kernel state, same RNG position, same estimator
// ladders — and therefore the byte-identical kept-sample sequence on
// any continuation of the stream.
func RestoreEngine(data []byte, opts ...Option) (*Engine, error) {
	cfg, err := restoreConfig(opts)
	if err != nil {
		return nil, err
	}
	r, err := openState(data, engineStateMagic, "engine")
	if err != nil {
		return nil, err
	}
	return restoreEngine(r, cfg.clock)
}

// restoreEngine decodes the payload fields shared by the standalone and
// group-member forms.
func restoreEngine(r *binenc.Reader, clock func() time.Time) (*Engine, error) {
	specString := r.String()
	budget := int(r.I64())
	startNanos := r.I64()
	seen, kept, qualified := int(r.I64()), int(r.I64()), int(r.I64())
	accState := readAccState(r)
	finished := r.Bool()
	finishMsg := r.String()
	kernel := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("sampling: engine state payload: %w (%w)", err, ErrBadState)
	}
	spec, err := Parse(specString)
	if err != nil {
		return nil, fmt.Errorf("sampling: engine state spec %q: %w", specString, err)
	}
	impl, err := core.BuildStream(spec.Technique, spec.Params)
	if err != nil {
		return nil, fmt.Errorf("sampling: rebuild %q from state: %w", specString, err)
	}
	st, ok := impl.(core.StatefulSampler)
	if !ok {
		return nil, fmt.Errorf("sampling: technique %q does not expose kernel state", impl.Name())
	}
	if err := st.RestoreState(kernel); err != nil {
		return nil, fmt.Errorf("sampling: restore %q kernel state: %w", impl.Name(), err)
	}
	if seen < 0 || kept < 0 || qualified < 0 || budget < 0 {
		return nil, fmt.Errorf("sampling: engine state counters negative (seen=%d kept=%d qualified=%d budget=%d): %w",
			seen, kept, qualified, budget, ErrBadState)
	}
	e := &Engine{
		spec:       spec,
		specString: specString,
		impl:       impl,
		clock:      clock,
		start:      time.Unix(0, startNanos),
		budget:     budget,
		seen:       seen,
		kept:       kept,
		qualified:  qualified,
		finished:   finished,
	}
	e.acc.SetState(accState)
	if finishMsg != "" {
		// The original error's type is gone; its message survives as an
		// opaque error so Summary.Err stays informative after a restart.
		e.finishErr = errors.New(finishMsg)
	}
	e.batch, _ = impl.(core.BatchStreamer)
	if e.estIn, err = readEstimator(r); err != nil {
		return nil, err
	}
	if e.estKept, err = readEstimator(r); err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("sampling: engine state payload: %w (%w)", err, ErrBadState)
	}
	return e, nil
}

// MarshalState captures the group's complete state: the shared
// input-side reference (accumulator and estimator) plus every member
// engine's full state blob, framed and CRC-checked as a whole.
func (g *Group) MarshalState() ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := binenc.AppendU32(nil, groupStateMagic)
	b = binenc.AppendU8(b, stateVersion)
	b = binenc.AppendString(b, string(g.method))
	b = binenc.AppendI64(b, int64(g.seen))
	b = binenc.AppendI64(b, g.start.UnixNano())
	accState := g.inputAcc.State()
	b = binenc.AppendI64(b, int64(accState.N))
	b = binenc.AppendF64(b, accState.Mean)
	b = binenc.AppendF64(b, accState.M2)
	b = binenc.AppendF64(b, accState.Sum)
	b = binenc.AppendF64(b, accState.Min)
	b = binenc.AppendF64(b, accState.Max)
	b = binenc.AppendBool(b, g.finished)
	b = binenc.AppendString(b, errString(g.finishErr))
	var err error
	if b, err = appendEstimator(b, g.estIn); err != nil {
		return nil, err
	}
	b = binenc.AppendU32(b, uint32(len(g.members)))
	for i, eng := range g.members {
		blob, err := eng.MarshalState()
		if err != nil {
			return nil, fmt.Errorf("sampling: group member %d (%s): %w", i, eng.specString, err)
		}
		b = binenc.AppendBytes(b, blob)
	}
	return sealState(b), nil
}

// RestoreGroup rebuilds a comparison group from a MarshalState blob.
// Like RestoreEngine it accepts only WithClock; member engines restore
// from their embedded blobs, each with its own CRC.
func RestoreGroup(data []byte, opts ...Option) (*Group, error) {
	cfg, err := restoreConfig(opts)
	if err != nil {
		return nil, err
	}
	r, err := openState(data, groupStateMagic, "group")
	if err != nil {
		return nil, err
	}
	method := estimate.Method(r.String())
	seen := int(r.I64())
	startNanos := r.I64()
	accState := readAccState(r)
	finished := r.Bool()
	finishMsg := r.String()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("sampling: group state payload: %w (%w)", err, ErrBadState)
	}
	g := &Group{
		clock:    cfg.clock,
		start:    time.Unix(0, startNanos),
		method:   method,
		seen:     seen,
		finished: finished,
	}
	g.inputAcc.SetState(accState)
	if finishMsg != "" {
		g.finishErr = errors.New(finishMsg)
	}
	if g.estIn, err = readEstimator(r); err != nil {
		return nil, err
	}
	if method != "" && g.estIn == nil {
		return nil, fmt.Errorf("sampling: group state method %q carries no input estimator state: %w", method, ErrBadState)
	}
	n := int(r.U32())
	if r.Err() == nil && r.Remaining() < 4*n {
		return nil, fmt.Errorf("sampling: group state declares %d members beyond the blob: %w", n, ErrBadState)
	}
	for i := 0; i < n; i++ {
		blob := r.Bytes()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("sampling: group state member %d: %w (%w)", i, err, ErrBadState)
		}
		eng, err := RestoreEngine(blob, WithClock(cfg.clock))
		if err != nil {
			return nil, fmt.Errorf("sampling: group state member %d: %w", i, err)
		}
		g.members = append(g.members, eng)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("sampling: group state payload: %w (%w)", err, ErrBadState)
	}
	return g, nil
}

// appendEstimator writes an optional estimator: absent as a single
// false byte, present as true + method + state blob.
func appendEstimator(dst []byte, est estimate.Estimator) ([]byte, error) {
	if est == nil {
		return binenc.AppendBool(dst, false), nil
	}
	st, ok := est.(estimate.Stateful)
	if !ok {
		return nil, fmt.Errorf("sampling: estimator %q does not expose state", est.Method())
	}
	dst = binenc.AppendBool(dst, true)
	dst = binenc.AppendString(dst, string(est.Method()))
	dst = binenc.AppendBytes(dst, st.AppendState(nil))
	return dst, nil
}

// readEstimator reads the optional-estimator form written by
// appendEstimator, rebuilding the estimator and restoring its ladder.
func readEstimator(r *binenc.Reader) (estimate.Estimator, error) {
	if !r.Bool() {
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("sampling: estimator state: %w (%w)", err, ErrBadState)
		}
		return nil, nil
	}
	method := estimate.Method(r.String())
	blob := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("sampling: estimator state: %w (%w)", err, ErrBadState)
	}
	est, err := estimate.New(method)
	if err != nil {
		return nil, fmt.Errorf("sampling: estimator state: %w", err)
	}
	st, ok := est.(estimate.Stateful)
	if !ok {
		return nil, fmt.Errorf("sampling: estimator %q does not expose state", method)
	}
	if err := st.RestoreState(blob); err != nil {
		return nil, fmt.Errorf("sampling: restore %q estimator state: %w", method, err)
	}
	return est, nil
}

// readAccState reads the six accumulator fields.
func readAccState(r *binenc.Reader) (s stats.AccumulatorState) {
	s.N = int(r.I64())
	s.Mean = r.F64()
	s.M2 = r.F64()
	s.Sum = r.F64()
	s.Min = r.F64()
	s.Max = r.F64()
	return s
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
