// Package wire is the binary tick-batch frame codec of the sampling
// service — the wire format that closes the gap between HTTP ingest
// and in-process OfferBatch. JSON and whitespace text pay a parse per
// tick; a tick-batch frame is decoded straight into the []float64
// handed to the engine, with no per-tick branching beyond a finiteness
// check and no allocations once the decoder's buffers are warm.
//
// # Frame layout
//
// One frame carries one batch of ticks for one stream, little-endian
// throughout:
//
//	offset  size      field
//	0       4         magic 0x6b636954 (the bytes "Tick")
//	4       1         version (currently 1)
//	5       1         idLen — length of the stream id in bytes
//	6       4         count — ticks in the payload (uint32)
//	10      idLen     stream id (UTF-8; may be empty when the URL names the stream)
//	10+idLen count*8  payload: count IEEE-754 float64 ticks
//	...     4         CRC-32 (IEEE) over everything above
//
// The count field is the frame-declared batch size: a decoder checks
// it against its cap before reading (or allocating for) the payload,
// so a malformed or hostile length prefix cannot balloon memory. The
// trailing CRC covers header, id and payload; a flipped bit anywhere
// is an ErrChecksum, not a corrupted stream.
//
// Frames are self-delimiting, so a connection can carry any number of
// them back to back — the sampled daemon accepts a body of frames on
// POST /v1/streams/{id}/ticks (Content-Type application/x-tickbatch)
// and a long-lived stream of them on POST /v1/session, where each
// frame's embedded id routes it.
//
// # Reuse
//
// Encoder and Decoder both own their buffers and reuse them across
// frames; the ticks slice returned by Decoder.ReadFrame is valid only
// until the next call. Both are single-goroutine objects — pool them
// (sync.Pool plus Reset) rather than sharing one across connections.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// ContentType is the MIME type announcing a body of tick-batch frames.
const ContentType = "application/x-tickbatch"

const (
	// Magic opens every frame: the bytes "Tick" read as a little-endian
	// uint32.
	Magic = 0x6b636954
	// Version is the current frame version; decoders reject others.
	Version = 1
	// MaxIDLen caps the embedded stream id (the idLen field is a byte).
	MaxIDLen = 255
	// DefaultMaxTicks is the decoder's frame-declared batch cap when the
	// caller does not set one: 2^21 ticks, a 16 MiB payload.
	DefaultMaxTicks = 1 << 21

	headerSize  = 10
	trailerSize = 4
)

// The typed failure modes of frame decoding; branch with errors.Is.
// ErrFrameTooLarge is the retryable one — split the batch — and maps to
// HTTP 413 in the sampled daemon; the rest are corruption (400).
var (
	// ErrBadMagic is wrapped when a frame does not open with Magic.
	ErrBadMagic = errors.New("bad frame magic")
	// ErrBadVersion is wrapped when the frame version is unknown.
	ErrBadVersion = errors.New("unsupported frame version")
	// ErrFrameTooLarge is wrapped when the declared count exceeds the
	// decoder's cap.
	ErrFrameTooLarge = errors.New("frame exceeds tick cap")
	// ErrChecksum is wrapped when the trailing CRC does not match.
	ErrChecksum = errors.New("frame checksum mismatch")
	// ErrTruncated is wrapped when the input ends mid-frame.
	ErrTruncated = errors.New("truncated frame")
	// ErrNonFinite is wrapped when the payload carries NaN or ±Inf —
	// one such tick would poison a stream's running moments for life,
	// exactly as on the JSON and text wires.
	ErrNonFinite = errors.New("non-finite tick value")
	// ErrIDTooLong is returned by encoders for stream ids over MaxIDLen.
	ErrIDTooLong = errors.New("stream id too long")
)

// AppendFrame appends one encoded frame to dst and returns the extended
// slice — the allocation-free primitive under Encoder. The id may be
// empty when the transport names the stream (the single-stream POST
// path); ids longer than MaxIDLen fail with ErrIDTooLong.
//
//samplelint:hotpath
func AppendFrame(dst []byte, id string, ticks []float64) ([]byte, error) {
	if len(id) > MaxIDLen {
		return dst, fmt.Errorf("wire: id %q is %d bytes: %w", id, len(id), ErrIDTooLong)
	}
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, Magic)
	dst = append(dst, Version, byte(len(id)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ticks)))
	dst = append(dst, id...)
	for _, v := range ticks {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc), nil
}

// Encoder writes frames to one destination, reusing a single staging
// buffer across calls. Not safe for concurrent use; give each
// connection its own.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder builds an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Reset points the encoder at a new destination, keeping its buffer —
// the pooling hook.
func (e *Encoder) Reset(w io.Writer) { e.w = w }

// Encode writes one frame. The ticks slice is not retained.
//
//samplelint:hotpath
func (e *Encoder) Encode(id string, ticks []float64) error {
	buf, err := AppendFrame(e.buf[:0], id, ticks)
	e.buf = buf
	if err != nil {
		return err
	}
	_, err = e.w.Write(buf)
	return err
}

// Decoder reads frames from one source, reusing its frame and tick
// buffers across calls — after the first few frames the read path
// allocates nothing. Not safe for concurrent use; pool decoders and
// Reset them per connection.
type Decoder struct {
	r        io.Reader
	maxTicks int
	hdr      [headerSize]byte
	body     []byte    // id + payload + crc staging
	ticks    []float64 // decoded payload, reused across frames
	lastID   string    // interned copy of the previous frame's id
	lastIDB  []byte
	frameLen int64
}

// NewDecoder builds a decoder over r. maxTicks caps the frame-declared
// batch size (ticks per frame); zero or negative means DefaultMaxTicks.
func NewDecoder(r io.Reader, maxTicks int) *Decoder {
	if maxTicks <= 0 {
		maxTicks = DefaultMaxTicks
	}
	return &Decoder{r: r, maxTicks: maxTicks}
}

// Reset points the decoder at a new source, keeping its buffers and
// cap — the pooling hook.
func (d *Decoder) Reset(r io.Reader) {
	d.r = r
	d.frameLen = 0
}

// FrameBytes reports the encoded size of the last frame ReadFrame
// returned — what a server adds to its ingest-bytes counter.
func (d *Decoder) FrameBytes() int64 { return d.frameLen }

// ReadFrame decodes the next frame: the embedded stream id (empty when
// the frame carries none) and the tick payload. The ticks slice is
// owned by the decoder and valid only until the next call — hand it to
// OfferBatch, which does not retain it, and move on. A clean end of
// input at a frame boundary is io.EOF; an end mid-frame is
// ErrTruncated.
//
//samplelint:hotpath
func (d *Decoder) ReadFrame() (id string, ticks []float64, err error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if err == io.EOF {
			return "", nil, io.EOF
		}
		return "", nil, fmt.Errorf("wire: header: %w (%w)", err, ErrTruncated)
	}
	if m := binary.LittleEndian.Uint32(d.hdr[0:4]); m != Magic {
		return "", nil, fmt.Errorf("wire: magic %#x: %w", m, ErrBadMagic)
	}
	if v := d.hdr[4]; v != Version {
		return "", nil, fmt.Errorf("wire: version %d (want %d): %w", v, Version, ErrBadVersion)
	}
	idLen := int(d.hdr[5])
	count := int(binary.LittleEndian.Uint32(d.hdr[6:10]))
	// The declared count gates every allocation below: an adversarial
	// length prefix is refused before a byte of payload is read.
	if count > d.maxTicks {
		return "", nil, fmt.Errorf("wire: frame declares %d ticks (cap %d): %w", count, d.maxTicks, ErrFrameTooLarge)
	}
	n := idLen + count*8 + trailerSize
	if cap(d.body) < n {
		d.body = make([]byte, n)
	}
	body := d.body[:n]
	if _, err := io.ReadFull(d.r, body); err != nil {
		return "", nil, fmt.Errorf("wire: body: %w (%w)", err, ErrTruncated)
	}
	crc := crc32.ChecksumIEEE(d.hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, body[:n-trailerSize])
	if want := binary.LittleEndian.Uint32(body[n-trailerSize:]); crc != want {
		return "", nil, fmt.Errorf("wire: got crc %#x, frame says %#x: %w", crc, want, ErrChecksum)
	}
	if cap(d.ticks) < count {
		d.ticks = make([]float64, count)
	}
	ticks = d.ticks[:count]
	payload := body[idLen : idLen+count*8]
	for i := range ticks {
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return "", nil, fmt.Errorf("wire: tick %d is %v: %w", i, v, ErrNonFinite)
		}
		ticks[i] = v
	}
	// Sessions repeat one hot stream's id frame after frame; interning
	// against the previous id keeps the steady state allocation-free.
	idb := body[:idLen]
	if string(d.lastIDB) != string(idb) { // comparison does not allocate
		d.lastID = string(idb)
		d.lastIDB = append(d.lastIDB[:0], idb...)
	}
	d.frameLen = int64(headerSize + n)
	return d.lastID, ticks, nil
}
