package wire_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/sampling/wire"
)

// AppendFrame renders one self-delimiting tick-batch frame; frames
// concatenate, so one body (or one long-lived session request) can
// carry any number of them back to back.
func ExampleAppendFrame() {
	var body []byte
	body, err := wire.AppendFrame(body, "link0", []float64{12.5, 980.1, 3.2})
	if err != nil {
		panic(err)
	}
	body, err = wire.AppendFrame(body, "link1", []float64{7, 8})
	if err != nil {
		panic(err)
	}
	// 10-byte header + id + 8 bytes per tick + 4-byte CRC, per frame.
	fmt.Printf("2 frames in %d bytes, content type %s\n", len(body), wire.ContentType)
	// Output:
	// 2 frames in 78 bytes, content type application/x-tickbatch
}

// A Decoder reads frames back in order until io.EOF, verifying magic,
// version and CRC and screening ticks for NaN/Inf. The returned tick
// slice aliases an internal buffer valid until the next ReadFrame —
// hand it straight to OfferBatch, don't retain it.
func ExampleDecoder() {
	var body []byte
	body, _ = wire.AppendFrame(body, "link0", []float64{12.5, 980.1, 3.2})
	body, _ = wire.AppendFrame(body, "link1", []float64{7, 8})

	dec := wire.NewDecoder(bytes.NewReader(body), 0) // 0: default tick cap
	for {
		id, ticks, err := dec.ReadFrame()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d ticks, first %g\n", id, len(ticks), ticks[0])
	}
	// Output:
	// link0: 3 ticks, first 12.5
	// link1: 2 ticks, first 7
}
