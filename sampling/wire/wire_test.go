package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"strings"
	"testing"
)

// frame builds one valid encoded frame, via the API under test's own
// primitive so layout changes only need updating in one place.
func frame(t testing.TB, id string, ticks []float64) []byte {
	t.Helper()
	buf, err := AppendFrame(nil, id, ticks)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestRoundTrip(t *testing.T) {
	batches := []struct {
		id    string
		ticks []float64
	}{
		{"link0", []float64{1, 2.5, -3, 1e-300, 1e300}},
		{"", []float64{42}},
		{"link0", nil}, // empty batch, same id as the first
		{strings.Repeat("x", MaxIDLen), []float64{0, math.SmallestNonzeroFloat64}},
	}
	var wireBytes bytes.Buffer
	enc := NewEncoder(&wireBytes)
	for _, b := range batches {
		if err := enc.Encode(b.id, b.ticks); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&wireBytes, 0)
	for i, b := range batches {
		id, ticks, err := dec.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if id != b.id {
			t.Errorf("frame %d: id %q, want %q", i, id, b.id)
		}
		if len(ticks) != len(b.ticks) {
			t.Fatalf("frame %d: %d ticks, want %d", i, len(ticks), len(b.ticks))
		}
		for j := range ticks {
			if math.Float64bits(ticks[j]) != math.Float64bits(b.ticks[j]) {
				t.Errorf("frame %d tick %d: %g, want %g", i, j, ticks[j], b.ticks[j])
			}
		}
		if want := int64(headerSize + len(b.id) + 8*len(b.ticks) + trailerSize); dec.FrameBytes() != want {
			t.Errorf("frame %d: FrameBytes %d, want %d", i, dec.FrameBytes(), want)
		}
	}
	if _, _, err := dec.ReadFrame(); err != io.EOF {
		t.Errorf("after last frame: %v, want io.EOF", err)
	}
}

func TestEncodeRejectsLongID(t *testing.T) {
	if _, err := AppendFrame(nil, strings.Repeat("x", MaxIDLen+1), nil); !errors.Is(err, ErrIDTooLong) {
		t.Errorf("got %v, want ErrIDTooLong", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := frame(t, "s", []float64{1, 2, 3})

	corrupt := func(mutate func([]byte)) []byte {
		b := append([]byte(nil), valid...)
		mutate(b)
		return b
	}
	huge := frame(t, "s", make([]float64, 100))

	cases := []struct {
		name     string
		input    []byte
		maxTicks int
		want     error
	}{
		{"bad magic", corrupt(func(b []byte) { b[0] ^= 0xff }), 0, ErrBadMagic},
		{"bad version", corrupt(func(b []byte) {
			b[4] = 99
			binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
		}), 0, ErrBadVersion},
		{"oversized count", huge, 99, ErrFrameTooLarge},
		{"flipped payload bit", corrupt(func(b []byte) { b[12] ^= 0x01 }), 0, ErrChecksum},
		{"flipped crc bit", corrupt(func(b []byte) { b[len(b)-1] ^= 0x01 }), 0, ErrChecksum},
		{"truncated header", valid[:headerSize-2], 0, ErrTruncated},
		{"truncated body", valid[:len(valid)-3], 0, ErrTruncated},
		{"nan tick", func() []byte {
			b, err := AppendFrame(nil, "s", []float64{1, math.NaN()})
			if err != nil {
				t.Fatal(err)
			}
			return b
		}(), 0, ErrNonFinite},
		{"inf tick", func() []byte {
			b, err := AppendFrame(nil, "s", []float64{math.Inf(-1)})
			if err != nil {
				t.Fatal(err)
			}
			return b
		}(), 0, ErrNonFinite},
	}
	for _, tc := range cases {
		_, _, err := NewDecoder(bytes.NewReader(tc.input), tc.maxTicks).ReadFrame()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// The count cap must refuse the frame before reading the payload:
	// a declared count far beyond the actual bytes fails as too-large,
	// not by attempting a giant read.
	lying := corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[6:10], 1<<31-1) })
	if _, _, err := NewDecoder(bytes.NewReader(lying), 1<<20).ReadFrame(); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("length-prefix lie: got %v, want ErrFrameTooLarge", err)
	}
}

// TestDecoderReset: a pooled decoder reused across connections keeps
// its buffers but reads the new source cleanly.
func TestDecoderReset(t *testing.T) {
	dec := NewDecoder(bytes.NewReader(frame(t, "a", []float64{1, 2})), 0)
	if _, _, err := dec.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	dec.Reset(bytes.NewReader(frame(t, "b", []float64{3})))
	id, ticks, err := dec.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if id != "b" || len(ticks) != 1 || ticks[0] != 3 {
		t.Errorf("after Reset: id=%q ticks=%v", id, ticks)
	}
}

// TestDecodeZeroAlloc is the acceptance gate for the decode hot path:
// once the decoder's buffers are warm, ReadFrame allocates nothing per
// frame — the frame staging buffer, the ticks slice and the interned
// stream id are all reused.
func TestDecodeZeroAlloc(t *testing.T) {
	payload := frame(t, "hot-stream", make([]float64, 512))
	var stream bytes.Buffer
	dec := NewDecoder(&stream, 0)
	warm := func() {
		stream.Write(payload)
		if _, _, err := dec.ReadFrame(); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	if allocs := testing.AllocsPerRun(100, warm); allocs != 0 {
		t.Errorf("warm ReadFrame allocates %.1f times per frame, want 0", allocs)
	}
}

// BenchmarkDecodeFrame times the pure decode step — the per-frame cost
// the binary ingest handler pays on top of OfferBatch.
func BenchmarkDecodeFrame(b *testing.B) {
	ticks := make([]float64, 512)
	for i := range ticks {
		ticks[i] = float64(i) * 1.5
	}
	payload := frame(b, "hot-stream", ticks)
	var stream bytes.Buffer
	dec := NewDecoder(&stream, 0)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Write(payload)
		if _, _, err := dec.ReadFrame(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeFrame is the client-side counterpart.
func BenchmarkEncodeFrame(b *testing.B) {
	ticks := make([]float64, 512)
	for i := range ticks {
		ticks[i] = float64(i) * 1.5
	}
	enc := NewEncoder(io.Discard)
	b.SetBytes(int64(headerSize + 10 + 8*len(ticks) + trailerSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode("hot-stream", ticks); err != nil {
			b.Fatal(err)
		}
	}
}
