package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"testing"
)

// fuzzHeader builds an arbitrary (magic, version, idLen, count) header
// with a consistent CRC where possible — the seeds must get the fuzzer
// past the checksum so it spends its budget on the validation paths
// behind it.
func fuzzHeader(magic uint32, version, idLen byte, count uint32) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	hdr[4] = version
	hdr[5] = idLen
	binary.LittleEndian.PutUint32(hdr[6:10], count)
	return hdr[:]
}

// sealed appends the IEEE CRC of everything so far — a structurally
// valid frame ending for whatever precedes it.
func sealed(b []byte) []byte {
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// FuzzDecodeFrame asserts the decoder's contract on adversarial input:
// it must never panic or allocate beyond its tick cap, and any frame it
// accepts must re-encode to the identical bytes — corruption is
// rejected loudly, never mangled into a plausible batch.
func FuzzDecodeFrame(f *testing.F) {
	valid, err := AppendFrame(nil, "link0", []float64{1, 2.5, -3, 1e300})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:headerSize-1])    // truncated mid-header
	f.Add(valid[:len(valid)-2])    // truncated mid-CRC
	f.Add(append(valid, valid...)) // two frames back to back

	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0xff // CRC mismatch
	f.Add(corrupt)

	f.Add(sealed(fuzzHeader(0xdeadbeef, Version, 0, 0)))     // wrong magic, valid CRC
	f.Add(sealed(fuzzHeader(Magic, 99, 0, 0)))               // wrong version, valid CRC
	f.Add(sealed(fuzzHeader(Magic, Version, 0, 0xffffffff))) // length-prefix overflow, valid CRC
	f.Add(fuzzHeader(Magic, Version, 0, 1<<20))              // huge count, no body at all
	f.Add(sealed(fuzzHeader(Magic, Version, 5, 0)))          // declares an id it does not carry

	nan := sealed(append(fuzzHeader(Magic, Version, 0, 1),
		binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.NaN()))...))
	f.Add(nan) // NaN payload, valid CRC

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data), 1<<16)
		for {
			id, ticks, err := dec.ReadFrame()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // rejected loudly: exactly the contract for corruption
			}
			for i, v := range ticks {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("accepted non-finite tick %d: %v", i, v)
				}
			}
			out, err := AppendFrame(nil, id, ticks)
			if err != nil {
				t.Fatalf("accepted frame failed to re-encode: %v", err)
			}
			id2, ticks2, err := NewDecoder(bytes.NewReader(out), 1<<16).ReadFrame()
			if err != nil {
				t.Fatalf("re-encoded frame failed to decode: %v", err)
			}
			if id2 != id || len(ticks2) != len(ticks) {
				t.Fatalf("round trip changed shape: id %q->%q, len %d->%d", id, id2, len(ticks), len(ticks2))
			}
			for i := range ticks {
				if math.Float64bits(ticks2[i]) != math.Float64bits(ticks[i]) {
					t.Fatalf("tick %d changed in round trip: %g -> %g", i, ticks[i], ticks2[i])
				}
			}
		}
	})
}
