package sampling

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/sampling/estimate"
)

// Sample is one selected observation of the parent process.
type Sample = core.Sample

// Engine is a live instance of a sampling technique: ticks of the
// observed process go in through Offer, selected samples come out, and
// Snapshot exposes the running estimate at any moment without disturbing
// the stream. An engine consumes exactly one stream; build a fresh one
// per run.
//
// All methods are safe for concurrent use. The intended split is one
// goroutine driving Offer/Finish (ticks must arrive in order) while any
// number of observers call Snapshot.
type Engine struct {
	mu         sync.Mutex
	spec       Spec
	specString string
	impl       core.StreamSampler
	batch      core.BatchStreamer // impl's skip-based batch fast path; nil when it has none
	bbuf       []Sample           // per-batch scratch reused across OfferBatch calls
	clock      func() time.Time
	start      time.Time
	budget     int

	seen      int // ticks offered so far; doubles as the next tick index
	kept      int
	qualified int
	acc       stats.Accumulator // over kept sample values

	// Optional online Hurst estimators (WithEstimator): estIn consumes
	// every offered tick, estKept the kept sample values, so a snapshot
	// can report pre- vs post-sampling H side by side.
	estIn   estimate.Estimator
	estKept estimate.Estimator

	finished  bool
	finishErr error
}

// New builds an engine from a typed spec. The spec's technique must be
// registered and every parameter must be accepted: unknown names wrap
// ErrUnknownTechnique and rejected parameters surface as a *ParamError,
// so callers can branch on the failure mode.
func New(spec Spec, opts ...Option) (*Engine, error) {
	cfg := config{clock: time.Now}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("sampling: nil option")
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.seed != nil {
		spec = spec.With("seed", strconv.FormatUint(*cfg.seed, 10))
	}
	// The typed build path: parameters go to the technique's factory as
	// the map they already are, never round-tripped through the string
	// syntax (which would re-tokenize values containing ',' or '=').
	impl, err := core.BuildStream(spec.Technique, spec.Params)
	if err != nil {
		return nil, err
	}
	now := cfg.clock()
	e := &Engine{
		spec:       spec,
		specString: spec.String(),
		impl:       impl,
		clock:      cfg.clock,
		start:      now,
		budget:     cfg.budget,
	}
	// Techniques with a skip-based batch kernel are dispatched to it by
	// OfferBatch; the two forms are state-machine equivalent, so the
	// choice is invisible to callers.
	e.batch, _ = impl.(core.BatchStreamer)
	if cfg.estimator != "" {
		// Already validated by WithEstimator; the two instances keep the
		// input and kept-sample streams strictly separate.
		if e.estIn, err = estimate.New(cfg.estimator); err != nil {
			return nil, err
		}
		if e.estKept, err = estimate.New(cfg.estimator); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Technique returns the engine's technique name.
func (e *Engine) Technique() string { return e.impl.Name() }

// Spec returns a copy of the engine's spec, including any parameters
// injected by options (e.g. WithSeed).
func (e *Engine) Spec() Spec {
	out := Spec{Technique: e.spec.Technique, Params: make(map[string]string, len(e.spec.Params))}
	for k, v := range e.spec.Params {
		out.Params[k] = v
	}
	return out
}

// Offer presents the next tick of the observed process, in stream order,
// and returns the sample this tick finalized, if any — possibly carrying
// an earlier index when the technique defers its decision (stratified
// picks, BSS probes). After Finish, Offer is a no-op returning false.
//
// Offer is the single-tick convenience form of OfferBatch: it pays one
// mutex acquisition per tick, so ingest loops that already hold their
// ticks in a slice should call OfferBatch instead (the hub, the sampled
// daemon and sampleload all do).
func (e *Engine) Offer(value float64) (Sample, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.finished {
		return Sample{}, false
	}
	return e.offerOne(value)
}

// OfferBatch presents a batch of ticks in stream order and returns how
// many samples the batch finalized. It is the ingest hot path: the
// engine mutex is acquired once for the whole batch and, when the
// technique implements core.BatchStreamer, the whole batch is handed to
// its skip-based kernel in one call — the kernel jumps from kept tick
// to kept tick, so the per-tick cost is gone entirely for systematic,
// stratified, Bernoulli and simple random sampling. Techniques without
// a batch kernel (BSS) fall back to the per-tick loop under the same
// single lock acquisition. Both paths are state-machine equivalent:
// batches of any shape produce exactly the samples the per-tick Offer
// form would (asserted in TestOfferBatchMatchesOffer).
//
// The batch is atomic with respect to Finish and Snapshot — an
// observer sees either none or all of it. After Finish, OfferBatch is
// a no-op returning 0.
//
//samplelint:hotpath
func (e *Engine) OfferBatch(values []float64) (kept int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.finished {
		return 0
	}
	if e.batch == nil {
		for _, v := range values {
			if _, ok := e.offerOne(v); ok {
				kept++
			}
		}
		return kept
	}
	// Fast path. The input-side estimator still consumes every tick —
	// it estimates the unsampled process — but its Tick is O(1) and
	// allocation-free, so the loop stays cheap; the technique itself
	// sees the batch once.
	if e.estIn != nil {
		for _, v := range values {
			e.estIn.Tick(v)
		}
	}
	e.bbuf = e.batch.OfferBatch(e.seen, values, e.bbuf[:0])
	e.seen += len(values)
	for _, s := range e.bbuf {
		if e.budget > 0 && e.kept >= e.budget {
			break
		}
		e.record(s)
		kept++
	}
	return kept
}

// offerOne advances the stream by one tick. Callers hold e.mu and have
// checked e.finished.
//
//samplelint:hotpath
func (e *Engine) offerOne(value float64) (Sample, bool) {
	idx := e.seen
	e.seen++
	if e.estIn != nil {
		e.estIn.Tick(value)
	}
	smp, ok := e.impl.Offer(idx, value)
	if !ok {
		return Sample{}, false
	}
	if e.budget > 0 && e.kept >= e.budget {
		return Sample{}, false
	}
	e.record(smp)
	return smp, true
}

//samplelint:hotpath
func (e *Engine) record(s Sample) {
	e.kept++
	e.acc.Add(s.Value)
	if e.estKept != nil {
		e.estKept.Tick(s.Value)
	}
	if s.Qualified {
		e.qualified++
	}
}

// Finish declares the end of the stream and returns the samples that
// could only be decided with the whole stream seen (e.g. a simple random
// draw), or the engine's deferred error. Finish is idempotent: the first
// call finalizes and returns the tail; later calls return (nil, err)
// with the same error. It does not invalidate Snapshot, which keeps
// reporting the final state.
func (e *Engine) Finish() ([]Sample, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.finished {
		return nil, e.finishErr
	}
	e.finished = true
	tail, err := e.impl.Finish()
	if err != nil {
		e.finishErr = err
		return nil, err
	}
	if e.budget > 0 {
		room := e.budget - e.kept
		if room < 0 {
			room = 0
		}
		if len(tail) > room {
			tail = tail[:room]
		}
	}
	for _, s := range tail {
		e.record(s)
	}
	return tail, nil
}

// Finished reports whether Finish has been called — the cheap form of
// Snapshot().Finished for callers that only need the lifecycle state.
func (e *Engine) Finished() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.finished
}

// Snapshot returns the engine's running summary: kept/seen counts, the
// mean of the kept values and its 95% confidence interval. It never
// finalizes anything and is safe to call concurrently while ticks flow;
// counters are monotonically non-decreasing across snapshots.
func (e *Engine) Snapshot() Summary {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.clock()
	s := Summary{
		Technique: e.impl.Name(),
		Spec:      e.specString,
		Seen:      e.seen,
		Kept:      e.kept,
		Qualified: e.qualified,
		Budget:    e.budget,
		Mean:      e.acc.Mean(),
		Variance:  e.acc.SampleVariance(),
		Finished:  e.finished,
		Err:       e.finishErr,
		At:        now,
		Uptime:    now.Sub(e.start),
	}
	s.CILow, s.CIHigh = ci95(&e.acc)
	if e.estIn != nil {
		s.Hurst = newHurstSummary(e.estIn.Estimate(), e.estKept.Estimate())
	}
	return s
}

// keptEstimate returns the live kept-side Hurst estimate, zero when the
// engine carries no kept-side estimator. Group.Snapshot pairs it with
// the group's shared input-side estimate; a standalone engine reports
// both sides through Snapshot().Hurst instead.
func (e *Engine) keptEstimate() estimate.Estimate {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.estKept == nil {
		return estimate.Estimate{}
	}
	return e.estKept.Estimate()
}

// ci95 computes the normal-approximation 95% confidence interval for the
// mean of the accumulated values; NaNs below two observations.
func ci95(acc *stats.Accumulator) (lo, hi float64) {
	n := acc.N()
	if n < 2 {
		return math.NaN(), math.NaN()
	}
	half := 1.96 * math.Sqrt(acc.SampleVariance()/float64(n))
	m := acc.Mean()
	return m - half, m + half
}

// Sample runs the engine over a complete series and returns every
// selected observation in index order — the paper's batch formulation
// f -> []Sample, driven through the same streaming state machine so
// batch and tick-by-tick use produce identical output. It must be the
// engine's only use: Sample offers every element and then finalizes.
func (e *Engine) Sample(f []float64) ([]Sample, error) {
	if len(f) == 0 {
		return nil, fmt.Errorf("sampling: cannot sample an empty series")
	}
	out := make([]Sample, 0, 16)
	for _, v := range f {
		if s, ok := e.Offer(v); ok {
			out = append(out, s)
		}
	}
	tail, err := e.Finish()
	if err != nil {
		return nil, err
	}
	return append(out, tail...), nil
}
