// Package cluster places named sampling streams onto a set of serving
// nodes and moves their exact engine state when the set changes — the
// placement and handoff layer under sampled's router mode.
//
// Placement is consistent hashing with virtual nodes: each member
// contributes replicas points on a 64-bit FNV-1a ring, and a stream id
// is owned by the first point at or after its own hash. Adding or
// removing one member therefore remaps only the ids that fall into
// the vanished (or newly claimed) arcs — about 1/N of the keyspace —
// instead of reshuffling everything, which is exactly what keeps a
// checkpoint-transfer handoff affordable on membership change.
//
// Rings are immutable values: With and Without derive new rings, and
// Moves diffs two rings over a set of ids to produce the handoff work
// list. The package holds no clock and draws no randomness — placement
// is a pure function of membership and id, so any two routers with the
// same member list agree on every stream's owner without coordination.
package cluster

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per member when NewRing is
// given no explicit figure. 128 points per member keeps the expected
// load imbalance across members in the few-percent range without
// making ring construction noticeable.
const DefaultReplicas = 128

// point is one virtual node: a position on the hash circle and the
// member that owns the arc ending there.
type point struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring over a member set.
type Ring struct {
	replicas int
	members  []string // sorted, unique
	points   []point  // sorted by hash
}

// hash64 positions a string on the circle: 64-bit FNV-1a finished with
// a splitmix64-style avalanche. Raw FNV-1a is NOT enough here — a
// trailing-byte difference is diffused by only one multiply, so
// sequential ids ("flow-00", "flow-01", ...) land within ~1e13 of each
// other on a 2^64 circle whose arcs average ~1e17 wide, which puts an
// entire id family inside one arc and therefore on one member. The
// finalizer avalanches every input bit across the word, restoring the
// uniform placement consistent hashing is built on. Placement is still
// a pure function of the string, stable across processes.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// NewRing builds a ring over the given members (duplicates collapse;
// order is irrelevant) with the given virtual-node count per member
// (<= 0 means DefaultReplicas). An empty member list is a valid ring
// that owns nothing.
func NewRing(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := slices.Clone(members)
	sort.Strings(uniq)
	uniq = slices.Compact(uniq)
	r := &Ring{replicas: replicas, members: uniq}
	r.points = make([]point, 0, len(uniq)*replicas)
	for _, m := range uniq {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{hash64(m + "#" + strconv.Itoa(v)), m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare but possible) break by member
		// so placement stays deterministic across processes.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Lookup returns the member owning id, or "" on an empty ring.
func (r *Ring) Lookup(id string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the last point, the first point owns the arc
	}
	return r.points[i].member
}

// Members returns the sorted member list (a copy).
func (r *Ring) Members() []string { return slices.Clone(r.members) }

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool {
	_, ok := slices.BinarySearch(r.members, member)
	return ok
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// With derives a ring with member added (a no-op copy if present).
func (r *Ring) With(member string) *Ring {
	return NewRing(append(r.Members(), member), r.replicas)
}

// Without derives a ring with member removed (a no-op copy if absent).
func (r *Ring) Without(member string) *Ring {
	ms := r.Members()
	ms = slices.DeleteFunc(ms, func(m string) bool { return m == member })
	return NewRing(ms, r.replicas)
}

// String renders the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d members, %d replicas)", len(r.members), r.replicas)
}

// Move is one unit of handoff work: stream ID must leave From and
// arrive at To for placement under the new ring to be correct. From is
// "" when the id had no owner before (the old ring was empty).
type Move struct {
	ID   string
	From string
	To   string
}

// Moves diffs stream ownership between two rings over the given ids:
// every id whose owner changed becomes one Move. Ids the new ring
// cannot place (cur is empty) are skipped — there is nowhere to move
// them to.
func Moves(old, cur *Ring, ids []string) []Move {
	var out []Move
	for _, id := range ids {
		from, to := old.Lookup(id), cur.Lookup(id)
		if to == "" || from == to {
			continue
		}
		out = append(out, Move{ID: id, From: from, To: to})
	}
	return out
}
