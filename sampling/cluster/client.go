package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// maxStateBytes caps how much of a state response the client will
// buffer: engine blobs are typically kilobytes (a whole-stream simple
// random buffer is the worst case), so 64 MiB is generous while still
// refusing to slurp an unbounded body from a confused peer.
const maxStateBytes = 64 << 20

// ErrPeer is wrapped by every non-2xx peer response, carrying the
// status and the peer's error body; branch with errors.Is.
var ErrPeer = errors.New("peer error")

// StateClient drives the per-stream state resource
// (GET/PUT/DELETE {base}/v1/streams/{id}/state and the /v1/groups
// mirror) on sampled peers — the transport half of a checkpoint-
// transfer handoff. The zero value uses http.DefaultClient; inject a
// Client with timeouts for production use. Methods take the peer base
// URL explicitly, so one StateClient serves a whole cluster.
type StateClient struct {
	Client *http.Client
}

func (c *StateClient) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// stateURL builds {base}/v1/{kind}/{id}/state with the id path-escaped.
func stateURL(base, kind, id string) string {
	return base + "/v1/" + kind + "/" + url.PathEscape(id) + "/state"
}

// do runs one request and returns the body on 2xx; any other status
// becomes an ErrPeer carrying the peer's (truncated) error body.
func (c *StateClient) do(req *http.Request) ([]byte, error) {
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, io.LimitReader(resp.Body, maxStateBytes)); err != nil {
		return nil, fmt.Errorf("cluster: reading %s %s: %w", req.Method, req.URL, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := buf.String()
		if len(msg) > 256 {
			msg = msg[:256]
		}
		return nil, fmt.Errorf("cluster: %s %s: status %d: %s: %w", req.Method, req.URL, resp.StatusCode, msg, ErrPeer)
	}
	return buf.Bytes(), nil
}

// FetchStreamState exports a stream's engine state from a peer without
// disturbing it.
func (c *StateClient) FetchStreamState(ctx context.Context, base, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, stateURL(base, "streams", id), nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

// PutStreamState installs an exported engine-state blob as a new
// stream on a peer.
func (c *StateClient) PutStreamState(ctx context.Context, base, id string, state []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, stateURL(base, "streams", id), bytes.NewReader(state))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	_, err = c.do(req)
	return err
}

// DetachStream removes a stream from a peer without finalizing it and
// returns its final engine state — the atomic source half of a
// handoff: after it returns, no tick can land on the old owner.
func (c *StateClient) DetachStream(ctx context.Context, base, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, stateURL(base, "streams", id), nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

// TransferStream moves a stream between peers: detach from the source
// (atomically capturing its final state), install on the target. If
// the install fails, the state is put back on the source so the
// stream is never lost; a failed restore of the restore is reported
// joined with the original error and means the blob exists only in
// this process.
func (c *StateClient) TransferStream(ctx context.Context, from, to, id string) error {
	state, err := c.DetachStream(ctx, from, id)
	if err != nil {
		return fmt.Errorf("cluster: transferring stream %q: detach: %w", id, err)
	}
	if err := c.PutStreamState(ctx, to, id, state); err != nil {
		err = fmt.Errorf("cluster: transferring stream %q to %s: %w", id, to, err)
		if backErr := c.PutStreamState(ctx, from, id, state); backErr != nil {
			return errors.Join(err, fmt.Errorf("cluster: returning stream %q to %s: %w", id, from, backErr))
		}
		return err
	}
	return nil
}

// FetchGroupState is FetchStreamState for the group namespace.
func (c *StateClient) FetchGroupState(ctx context.Context, base, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, stateURL(base, "groups", id), nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

// PutGroupState is PutStreamState for the group namespace.
func (c *StateClient) PutGroupState(ctx context.Context, base, id string, state []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, stateURL(base, "groups", id), bytes.NewReader(state))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	_, err = c.do(req)
	return err
}

// DetachGroup is DetachStream for the group namespace.
func (c *StateClient) DetachGroup(ctx context.Context, base, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, stateURL(base, "groups", id), nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

// TransferGroup is TransferStream for the group namespace.
func (c *StateClient) TransferGroup(ctx context.Context, from, to, id string) error {
	state, err := c.DetachGroup(ctx, from, id)
	if err != nil {
		return fmt.Errorf("cluster: transferring group %q: detach: %w", id, err)
	}
	if err := c.PutGroupState(ctx, to, id, state); err != nil {
		err = fmt.Errorf("cluster: transferring group %q to %s: %w", id, to, err)
		if backErr := c.PutGroupState(ctx, from, id, state); backErr != nil {
			return errors.Join(err, fmt.Errorf("cluster: returning group %q to %s: %w", id, from, backErr))
		}
		return err
	}
	return nil
}

// ListStreams returns a peer's live stream ids (GET /v1/streams).
func (c *StateClient) ListStreams(ctx context.Context, base string) ([]string, error) {
	return c.list(ctx, base, "/v1/streams", "streams")
}

// ListGroups returns a peer's live group ids (GET /v1/groups).
func (c *StateClient) ListGroups(ctx context.Context, base string) ([]string, error) {
	return c.list(ctx, base, "/v1/groups", "groups")
}

func (c *StateClient) list(ctx context.Context, base, path, key string) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, fmt.Errorf("cluster: parsing %s list: %w", key, err)
	}
	var ids []string
	if raw, ok := doc[key]; ok {
		if err := json.Unmarshal(raw, &ids); err != nil {
			return nil, fmt.Errorf("cluster: parsing %s list: %w", key, err)
		}
	}
	return ids, nil
}

// Healthy probes a peer's liveness endpoint (GET /healthz); any error
// or non-2xx status reads as unhealthy.
func (c *StateClient) Healthy(ctx context.Context, base string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return false
	}
	_, err = c.do(req)
	return err == nil
}

// Ready probes a peer's readiness endpoint (GET /readyz): healthy and
// past restore, not draining.
func (c *StateClient) Ready(ctx context.Context, base string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return false
	}
	_, err = c.do(req)
	return err == nil
}
