package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// statePeer is a minimal in-memory stand-in for sampled's state
// resource: blobs by id, with the same status conventions (404 on a
// miss, 409 on a duplicate PUT). It lets the client tests exercise
// the full transfer protocol without booting the daemon.
type statePeer struct {
	mu     sync.Mutex
	blobs  map[string][]byte
	failAt string // method+path that returns 500, for rollback tests
}

func newStatePeer() *statePeer { return &statePeer{blobs: map[string][]byte{}} }

func (p *statePeer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	mux.HandleFunc("GET /v1/streams", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		defer p.mu.Unlock()
		ids := make([]string, 0, len(p.blobs))
		for id := range p.blobs {
			ids = append(ids, id)
		}
		fmt.Fprintf(w, `{"streams": %s, "count": %d}`, jsonStrings(ids), len(ids))
	})
	mux.HandleFunc("/v1/streams/{id}/state", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if p.failAt == r.Method+" "+r.URL.Path {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		p.mu.Lock()
		defer p.mu.Unlock()
		switch r.Method {
		case http.MethodGet:
			blob, ok := p.blobs[id]
			if !ok {
				http.Error(w, "not found", http.StatusNotFound)
				return
			}
			w.Write(blob)
		case http.MethodDelete:
			blob, ok := p.blobs[id]
			if !ok {
				http.Error(w, "not found", http.StatusNotFound)
				return
			}
			delete(p.blobs, id)
			w.Write(blob)
		case http.MethodPut:
			if _, dup := p.blobs[id]; dup {
				http.Error(w, "exists", http.StatusConflict)
				return
			}
			blob, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			p.blobs[id] = blob
			w.WriteHeader(http.StatusCreated)
		default:
			http.Error(w, "method", http.StatusMethodNotAllowed)
		}
	})
	return mux
}

func jsonStrings(ids []string) string {
	out := "["
	for i, id := range ids {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%q", id)
	}
	return out + "]"
}

// TestTransferStream: the happy path moves the blob and empties the
// source; the target failure path rolls the blob back onto the source.
func TestTransferStream(t *testing.T) {
	src, dst := newStatePeer(), newStatePeer()
	srcSrv := httptest.NewServer(src.handler())
	defer srcSrv.Close()
	dstSrv := httptest.NewServer(dst.handler())
	defer dstSrv.Close()
	ctx := context.Background()
	c := &StateClient{Client: srcSrv.Client()}

	src.blobs["flow"] = []byte("engine-state-bytes")
	if err := c.TransferStream(ctx, srcSrv.URL, dstSrv.URL, "flow"); err != nil {
		t.Fatal(err)
	}
	if _, still := src.blobs["flow"]; still {
		t.Fatal("source still holds the stream after transfer")
	}
	if string(dst.blobs["flow"]) != "engine-state-bytes" {
		t.Fatalf("target holds %q", dst.blobs["flow"])
	}

	// Rollback: the target refuses, the source must get the blob back.
	src.blobs["flow2"] = []byte("more-state")
	dst.failAt = "PUT /v1/streams/flow2/state"
	if err := c.TransferStream(ctx, srcSrv.URL, dstSrv.URL, "flow2"); !errors.Is(err, ErrPeer) {
		t.Fatalf("transfer into a failing target: %v, want ErrPeer", err)
	}
	if string(src.blobs["flow2"]) != "more-state" {
		t.Fatal("failed transfer lost the stream — rollback did not restore the source")
	}
	if _, leaked := dst.blobs["flow2"]; leaked {
		t.Fatal("failed transfer left state on the target")
	}
}

// TestStateClientStatuses: peer error statuses surface as ErrPeer with
// the status visible in the message; ids with path metacharacters
// survive the round trip.
func TestStateClientStatuses(t *testing.T) {
	peer := newStatePeer()
	srv := httptest.NewServer(peer.handler())
	defer srv.Close()
	ctx := context.Background()
	c := &StateClient{Client: srv.Client()}

	if _, err := c.FetchStreamState(ctx, srv.URL, "ghost"); !errors.Is(err, ErrPeer) {
		t.Fatalf("fetch of a missing stream: %v, want ErrPeer", err)
	}
	weird := "flow/with spaces#and?marks"
	if err := c.PutStreamState(ctx, srv.URL, weird, []byte("x")); err != nil {
		t.Fatal(err)
	}
	blob, err := c.FetchStreamState(ctx, srv.URL, weird)
	if err != nil || string(blob) != "x" {
		t.Fatalf("escaped id round trip: %q, %v", blob, err)
	}
	if err := c.PutStreamState(ctx, srv.URL, weird, []byte("x")); !errors.Is(err, ErrPeer) {
		t.Fatalf("duplicate put: %v, want ErrPeer", err)
	}

	ids, err := c.ListStreams(ctx, srv.URL)
	if err != nil || len(ids) != 1 || ids[0] != weird {
		t.Fatalf("list = %v, %v", ids, err)
	}
	if !c.Healthy(ctx, srv.URL) {
		t.Fatal("live peer reads unhealthy")
	}
	if c.Healthy(ctx, "http://127.0.0.1:1") {
		t.Fatal("unreachable peer reads healthy")
	}
}
