package cluster

import (
	"fmt"
	"testing"
)

func ringIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("stream-%04d", i)
	}
	return ids
}

// TestRingDeterministic: two rings built from the same members (in any
// order, with duplicates) place every id identically — the property
// that lets independent routers agree without coordination.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 0)
	b := NewRing([]string{"n3", "n1", "n2", "n1"}, 0)
	for _, id := range ringIDs(2000) {
		if a.Lookup(id) != b.Lookup(id) {
			t.Fatalf("rings disagree on %s: %s vs %s", id, a.Lookup(id), b.Lookup(id))
		}
	}
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("member counts %d/%d, want 3 (duplicates must collapse)", a.Len(), b.Len())
	}
}

// TestRingBalance: with default replicas, no member of a 4-node ring
// owns a grossly disproportionate share of 10k ids. The bound is
// loose (2x fair share) — this is a sanity check on the hash spread,
// not a statistical assertion.
func TestRingBalance(t *testing.T) {
	members := []string{"node-a", "node-b", "node-c", "node-d"}
	r := NewRing(members, 0)
	counts := map[string]int{}
	ids := ringIDs(10000)
	for _, id := range ids {
		counts[r.Lookup(id)]++
	}
	fair := len(ids) / len(members)
	for _, m := range members {
		if counts[m] == 0 {
			t.Fatalf("member %s owns nothing", m)
		}
		if counts[m] > 2*fair {
			t.Fatalf("member %s owns %d of %d ids (fair share %d) — hash spread is broken", m, counts[m], len(ids), fair)
		}
	}
}

// TestRingMinimalDisruption: removing one of four members remaps only
// the departed member's ids; every id owned by a surviving member
// stays put. That containment is what makes membership-change handoff
// proportional to 1/N instead of a full reshuffle.
func TestRingMinimalDisruption(t *testing.T) {
	old := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	cur := old.Without("n3")
	moved := 0
	for _, id := range ringIDs(10000) {
		from, to := old.Lookup(id), cur.Lookup(id)
		if from != "n3" && from != to {
			t.Fatalf("id %s moved %s -> %s although its owner survived", id, from, to)
		}
		if from == "n3" {
			if to == "n3" {
				t.Fatalf("id %s still owned by the removed member", id)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned nothing — balance test should have caught this")
	}
	// Adding the member back restores the original placement exactly.
	back := cur.With("n3")
	for _, id := range ringIDs(1000) {
		if back.Lookup(id) != old.Lookup(id) {
			t.Fatalf("id %s placed differently after remove+add round trip", id)
		}
	}
}

// TestRingEmpty: the empty ring owns nothing and Moves skips ids it
// cannot place.
func TestRingEmpty(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Lookup("x"); got != "" {
		t.Fatalf("empty ring owns %q", got)
	}
	one := NewRing([]string{"n1"}, 0)
	if mv := Moves(one, empty, []string{"a", "b"}); len(mv) != 0 {
		t.Fatalf("moves into an empty ring: %v", mv)
	}
	if mv := Moves(empty, one, []string{"a"}); len(mv) != 1 || mv[0] != (Move{ID: "a", From: "", To: "n1"}) {
		t.Fatalf("moves from an empty ring: %v", mv)
	}
}

// TestMoves: diffing two rings yields exactly the ids whose owner
// changed, with correct endpoints.
func TestMoves(t *testing.T) {
	old := NewRing([]string{"n1", "n2", "n3"}, 0)
	cur := old.Without("n2")
	ids := ringIDs(5000)
	moves := Moves(old, cur, ids)
	if len(moves) == 0 {
		t.Fatal("no moves after removing a member that owned ids")
	}
	seen := map[string]bool{}
	for _, mv := range moves {
		if mv.From != "n2" {
			t.Fatalf("move %+v leaves a surviving member", mv)
		}
		if mv.To != cur.Lookup(mv.ID) {
			t.Fatalf("move %+v does not land on the new owner %s", mv, cur.Lookup(mv.ID))
		}
		seen[mv.ID] = true
	}
	for _, id := range ids {
		if old.Lookup(id) == "n2" && !seen[id] {
			t.Fatalf("id %s owned by the removed member has no move", id)
		}
	}
}

// TestRingHas covers the membership probe both ways.
func TestRingHas(t *testing.T) {
	r := NewRing([]string{"n1", "n2"}, 0)
	if !r.Has("n1") || r.Has("n9") {
		t.Fatalf("Has misreports membership: n1=%v n9=%v", r.Has("n1"), r.Has("n9"))
	}
}

// TestRingSequentialIDsSpread is the regression test for the raw-FNV
// placement bug: ids from one sequential family ("flow-00"...) hash so
// close together under unfinalized FNV-1a that they all share one arc,
// putting an entire workload on one member. With the avalanche
// finalizer every member must pick up a share of a sequential family.
func TestRingSequentialIDsSpread(t *testing.T) {
	r := NewRing([]string{"http://10.0.0.1:8080", "http://10.0.0.2:8080"}, 0)
	counts := map[string]int{}
	for i := 0; i < 32; i++ {
		counts[r.Lookup(fmt.Sprintf("flow-%02d", i))]++
	}
	for _, m := range r.Members() {
		if counts[m] == 0 {
			t.Fatalf("member %s owns none of 32 sequential ids: %v", m, counts)
		}
	}
}
