package sampling

import (
	"repro/internal/core"
	"repro/internal/lrd"
)

// The Theorem 1 surface: deciding whether a sampling strategy preserves
// the Hurst parameter from the law of its inter-sample gaps.

// IntervalPMF is the probability law of the gaps between successive
// samples, the input to the SNC checker.
type IntervalPMF = core.IntervalPMF

// SNCResult is the outcome of the Sufficient-and-Necessary Condition
// check; Preserved(tol) answers the headline question.
type SNCResult = core.SNCResult

// PowerLawACF is the asymptotic autocorrelation R(tau) ~ Const*tau^-Beta
// of a long-range-dependent process (H = 1 - Beta/2).
type PowerLawACF = lrd.PowerLawACF

// CheckSNC applies Theorem 1's numerical test: it thins the process ACF
// through the gap law and fits the decay exponent of the sampled
// process, using the FFT method of Section III-D.
func CheckSNC(p IntervalPMF, acf PowerLawACF, taus []int) (SNCResult, error) {
	return core.CheckSNC(p, acf, taus)
}

// SystematicPMF is the (degenerate) gap law of systematic sampling with
// interval c.
func SystematicPMF(c int) (IntervalPMF, error) { return core.SystematicPMF(c) }

// StratifiedPMF is the closed-form gap law of stratified sampling with
// stratum length c.
func StratifiedPMF(c int) (IntervalPMF, error) { return core.StratifiedPMF(c) }

// BernoulliPMF is the geometric gap law of rate-r Bernoulli (simple
// random, Eq. 13) sampling, truncated where the tail mass drops below tol.
func BernoulliPMF(r, tol float64) (IntervalPMF, error) { return core.BernoulliPMF(r, tol) }

// GapPMF estimates a technique's gap law empirically by sampling an
// index series of the given length — the route for strategies with no
// closed-form law.
func GapPMF(spec Spec, seriesLen int) (IntervalPMF, error) {
	s, err := core.Build(spec.Technique, spec.Params)
	if err != nil {
		return IntervalPMF{}, err
	}
	return core.GapPMF(s, seriesLen)
}
