package sampling

import (
	"errors"
	"strings"
	"testing"
)

func TestParseSyntaxErrorsWrapErrBadSpec(t *testing.T) {
	for _, bad := range []string{"", ":", "bss:rate", "bss:rate=", "bss:=3", "bss:a=1,a=2"} {
		_, err := Parse(bad)
		if err == nil {
			t.Errorf("Parse(%q): expected error", bad)
			continue
		}
		if !errors.Is(err, ErrBadSpec) {
			t.Errorf("Parse(%q) error %v does not wrap ErrBadSpec", bad, err)
		}
	}
}

func TestNewUnknownTechnique(t *testing.T) {
	_, err := New(MustParse("warp-drive:rate=0.5"))
	if err == nil {
		t.Fatal("expected error for unregistered technique")
	}
	if !errors.Is(err, ErrUnknownTechnique) {
		t.Errorf("error %v does not wrap ErrUnknownTechnique", err)
	}
	// The message should still list what is registered.
	if !strings.Contains(err.Error(), "bss") {
		t.Errorf("unknown-technique error should list registered names, got %v", err)
	}
}

func TestNewParamErrors(t *testing.T) {
	cases := []struct {
		spec      string
		wantParam string
	}{
		{"systematic:interval=ten", "interval"},        // non-numeric value
		{"systematic:interval=10,bogus=1", "bogus"},    // unconsumed key
		{"systematic", "interval"},                     // missing interval/rate
		{"systematic:rate=3", "rate"},                  // rate out of range
		{"bernoulli:rate=0.5,seed=-1", "seed"},         // negative unsigned
		{"bss:interval=10,L=zero,eps=1", "L"},          // non-integer L
		{"simple:n=50,seed=3,interval=10", "interval"}, // key the technique lacks
	}
	for _, tc := range cases {
		_, err := New(MustParse(tc.spec))
		if err == nil {
			t.Errorf("New(%q): expected error", tc.spec)
			continue
		}
		var pe *ParamError
		if !errors.As(err, &pe) {
			t.Errorf("New(%q) error %v is not a *ParamError", tc.spec, err)
			continue
		}
		if !strings.Contains(pe.Param, tc.wantParam) {
			t.Errorf("New(%q) ParamError.Param = %q, want mention of %q", tc.spec, pe.Param, tc.wantParam)
		}
		if pe.Technique == "" {
			t.Errorf("New(%q) ParamError.Technique is empty", tc.spec)
		}
	}
}

// TestNewSkipsStringRoundTrip pins the typed build path: a literal Spec
// whose value contains spec-syntax separators must not be re-tokenized
// into a bogus ErrBadSpec; it reaches the factory verbatim and fails as
// a *ParamError naming the right key.
func TestNewSkipsStringRoundTrip(t *testing.T) {
	_, err := New(Spec{Technique: "systematic", Params: map[string]string{"interval": "1,000"}})
	if err == nil {
		t.Fatal("expected error for non-integer interval")
	}
	if errors.Is(err, ErrBadSpec) {
		t.Errorf("typed construction leaked through the string parser: %v", err)
	}
	var pe *ParamError
	if !errors.As(err, &pe) || pe.Param != "interval" || pe.Value != "1,000" {
		t.Errorf("want *ParamError for interval=\"1,000\", got %v", err)
	}
}

func TestRunInstancesTypedErrors(t *testing.T) {
	f := []float64{1, 2, 3, 4}
	_, err := RunInstances(f, 2.5, 3, BSSInstances(MustParse("bss:rate=2,L=10")))
	if err == nil {
		t.Fatal("expected error for rate outside (0,1]")
	}
	var pe *ParamError
	if !errors.As(err, &pe) || pe.Param != "rate" {
		t.Errorf("want *ParamError about rate, got %v", err)
	}
	_, err = RunInstances(f, 2.5, 3, BSSInstances(MustParse("bss:L=10")))
	if err == nil {
		t.Fatal("expected error for missing interval/rate")
	}
	if !errors.As(err, &pe) || pe.Param != "interval" {
		t.Errorf("want *ParamError about interval, got %v", err)
	}
}

func TestWithSeedOnSeedlessTechniqueIsParamError(t *testing.T) {
	_, err := New(MustParse("systematic:interval=10"), WithSeed(7))
	if err == nil {
		t.Fatal("expected error: systematic takes no seed")
	}
	var pe *ParamError
	if !errors.As(err, &pe) || !strings.Contains(pe.Param, "seed") {
		t.Errorf("want *ParamError about seed, got %v", err)
	}
}

func TestOptionValidation(t *testing.T) {
	spec := MustParse("systematic:interval=10")
	if _, err := New(spec, WithBudget(0)); err == nil {
		t.Error("expected error for budget 0")
	}
	if _, err := New(spec, WithClock(nil)); err == nil {
		t.Error("expected error for nil clock")
	}
	if _, err := New(spec, nil); err == nil {
		t.Error("expected error for nil option")
	}
}

func TestParamErrorMessage(t *testing.T) {
	e := &ParamError{Technique: "bss", Param: "L", Value: "zero", Reason: "not an integer"}
	msg := e.Error()
	for _, want := range []string{"bss", "L", "zero", "not an integer"} {
		if !strings.Contains(msg, want) {
			t.Errorf("ParamError message %q missing %q", msg, want)
		}
	}
}
