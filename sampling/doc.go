// Package sampling is the public, versioned API of the traffic
// sampling library: typed sampler specs, functional options, live
// streaming engines with batch-first ingest and non-destructive
// snapshots, comparison groups with per-technique fidelity scoring
// (the v2 surface), and the paper's evaluation metrics. internal/core
// holds the implementation this package wraps; everything a consumer
// needs is exported here.
//
// # Specs
//
// A sampler is described by a Spec — a technique name plus key=value
// parameters — parsed once from the compact string syntax and
// round-trippable through Spec.String:
//
//	spec, err := sampling.Parse("bss:rate=1e-3,L=10,eps=1.0")
//	spec.String() // "bss:L=10,eps=1.0,rate=1e-3" (canonical key order)
//
// Failures are typed: errors.Is(err, sampling.ErrUnknownTechnique) for
// unregistered names, errors.Is(err, sampling.ErrBadSpec) for syntax
// errors, and errors.As(err, &pe) with pe a *sampling.ParamError for
// rejected parameters.
//
// # Engines
//
// New builds a live streaming engine from a spec, configured with
// functional options:
//
//	eng, err := sampling.New(spec, sampling.WithSeed(7), sampling.WithBudget(10_000))
//	for _, v := range ticks {
//	    if s, kept := eng.Offer(v); kept {
//	        // s.Index, s.Value, s.Qualified
//	    }
//	}
//	tail, err := eng.Finish() // samples only decidable at end of stream
//
// The engine is safe for concurrent observation: Snapshot returns the
// running kept/seen counts, mean and 95% confidence interval at any
// point mid-stream, from any goroutine, without finalizing anything —
// the primitive that turns a batch sampler into a live monitor:
//
//	go func() {
//	    for range time.Tick(time.Second) {
//	        sum := eng.Snapshot()
//	        log.Printf("%s: kept %d/%d mean %.3g CI [%.3g, %.3g]",
//	            sum.Technique, sum.Kept, sum.Seen, sum.Mean, sum.CILow, sum.CIHigh)
//	    }
//	}()
//
// The batch form of the paper's figures, Engine.Sample, drives the same
// engine over a whole series, so streaming and batch output are
// identical by construction.
//
// Ingest is batch-first: Engine.OfferBatch feeds a slice of ticks
// under one lock acquisition and returns how many samples the batch
// finalized. For every technique except BSS it dispatches to a
// skip-based batch kernel (internal/core's BatchStreamer) that jumps
// from kept tick to kept tick instead of visiting each element, so
// batch ingest costs O(samples kept), not O(ticks seen) — with output
// identical to the per-tick form under the same seed. Offer is the
// single-tick convenience form — correct, but paying one lock per
// tick — so hot loops (the hub, the sampled daemon, sampleload) stay
// on the batch form:
//
//	kept := eng.OfferBatch(ticks) // atomic w.r.t. Snapshot and Finish
//
// Across processes the batch has a binary wire form: the sampling/wire
// subpackage frames a stream id plus a []float64 payload as a
// length-prefixed, CRC-checked tick-batch frame
// (application/x-tickbatch) that decodes with zero allocations
// straight into the slice OfferBatch consumes — the encoding the
// sampled daemon accepts on its ingest endpoints and streams over
// persistent sessions.
//
// # Comparison groups (v2)
//
// The paper's core experiment — competing techniques judged on the
// same self-similar input — is a first-class object. NewGroup builds
// one engine per spec, all fed the identical stream; the group itself
// keeps the unsampled reference (a shared accumulator and, with
// WithEstimator, a single shared input-side Hurst estimator, so the
// input work is paid once per tick, not once per member):
//
//	g, err := sampling.NewGroup([]sampling.Spec{
//	    sampling.MustParse("systematic:interval=100"),
//	    sampling.MustParse("bss:interval=100,L=10,eps=1.0"),
//	}, sampling.WithEstimator(estimate.AggVar))
//	g.OfferBatch(ticks)
//	cmp := g.Snapshot() // a Comparison
//
// A Comparison carries the input reference (Seen, Mean, Variance, the
// shared Hurst point) plus one TechniqueReport per member: its Summary
// (Hurst input side filled from the shared estimator) and a Fidelity
// block — kept ratio, mean and variance bias in the paper's eta
// convention (positive = under-estimation), and the kept-minus-input
// Hurst drift. Every member is observed at the same tick count, and a
// member's kept samples are byte-identical to a standalone Engine fed
// the same stream. Group.Sample is the batch form: one call, one
// []Sample per technique.
//
// On the wire a Comparison follows Summary's null-for-NaN convention
// (served by the sampled daemon under /v1/groups/{id}):
//
//	{"seen":100000,"mean":50000.5,"variance":8.3e8,"method":"aggvar",
//	 "hurst":{"h":0.79,"beta":0.42,"levels":13,"ticks":100000,"ok":true},
//	 "members":[{"summary":{"technique":"systematic",...},
//	             "fidelity":{"kept_ratio":0.01,"mean_bias":0.0004,
//	                         "variance_bias":-0.002,"hurst_drift":null}}],
//	 "finished":false,"at":"...","uptime_ns":123}
//
// # Online Hurst estimation
//
// WithEstimator attaches the sampling/estimate subsystem to an engine:
// two incremental Hurst estimators of the named method ("aggvar",
// "wavelet" or "rs"; unknown names wrap ErrUnknownEstimator), one over
// every offered tick and one over the kept sample values. Snapshot then
// carries a Summary.Hurst block — the paper's preservation question as
// a live reading:
//
//	eng, err := sampling.New(spec, sampling.WithEstimator(estimate.AggVar))
//	...
//	if hs := eng.Snapshot().Hurst; hs != nil && hs.Input.OK {
//	    log.Printf("input H %.3f, kept H %.3f, drift %+.3f", hs.Input.H, hs.Kept.H, hs.Drift)
//	}
//
// Estimator ticks are allocation-free and O(log n) worst case, so the
// option is safe on the ingest hot path; the regression itself runs
// only when a snapshot is taken. On the wire the block appears under
// "hurst" with undetermined values as null, e.g.
//
//	"hurst": {"method": "aggvar",
//	          "input": {"h": 0.79, "beta": 0.42, "levels": 11, "ticks": 262144, "ok": true},
//	          "kept":  {"h": null, "beta": null, "levels": 0, "ticks": 131, "ok": false},
//	          "drift": null}
//
// # Beyond the engine
//
// The rest of the paper's toolkit is exported alongside: the evaluation
// metrics (MeanOf, Eta, Overhead, Efficiency), repeated-instance
// evaluation (RunInstances with spec factories), the BSS parameter
// design (NewBSSDesign), and the Theorem 1 Hurst-preservation checker
// (CheckSNC, GapPMF).
package sampling
