// Package sampling is the public, versioned API (v1) of the traffic
// sampling library: typed sampler specs, functional options, live
// streaming engines with non-destructive snapshots, and the paper's
// evaluation metrics. internal/core holds the implementation this
// package wraps; everything a consumer needs is exported here.
//
// # Specs
//
// A sampler is described by a Spec — a technique name plus key=value
// parameters — parsed once from the compact string syntax and
// round-trippable through Spec.String:
//
//	spec, err := sampling.Parse("bss:rate=1e-3,L=10,eps=1.0")
//	spec.String() // "bss:L=10,eps=1.0,rate=1e-3" (canonical key order)
//
// Failures are typed: errors.Is(err, sampling.ErrUnknownTechnique) for
// unregistered names, errors.Is(err, sampling.ErrBadSpec) for syntax
// errors, and errors.As(err, &pe) with pe a *sampling.ParamError for
// rejected parameters.
//
// # Engines
//
// New builds a live streaming engine from a spec, configured with
// functional options:
//
//	eng, err := sampling.New(spec, sampling.WithSeed(7), sampling.WithBudget(10_000))
//	for _, v := range ticks {
//	    if s, kept := eng.Offer(v); kept {
//	        // s.Index, s.Value, s.Qualified
//	    }
//	}
//	tail, err := eng.Finish() // samples only decidable at end of stream
//
// The engine is safe for concurrent observation: Snapshot returns the
// running kept/seen counts, mean and 95% confidence interval at any
// point mid-stream, from any goroutine, without finalizing anything —
// the primitive that turns a batch sampler into a live monitor:
//
//	go func() {
//	    for range time.Tick(time.Second) {
//	        sum := eng.Snapshot()
//	        log.Printf("%s: kept %d/%d mean %.3g CI [%.3g, %.3g]",
//	            sum.Technique, sum.Kept, sum.Seen, sum.Mean, sum.CILow, sum.CIHigh)
//	    }
//	}()
//
// The batch form of the paper's figures, Engine.Sample, drives the same
// engine over a whole series, so streaming and batch output are
// identical by construction.
//
// # Online Hurst estimation
//
// WithEstimator attaches the sampling/estimate subsystem to an engine:
// two incremental Hurst estimators of the named method ("aggvar",
// "wavelet" or "rs"; unknown names wrap ErrUnknownEstimator), one over
// every offered tick and one over the kept sample values. Snapshot then
// carries a Summary.Hurst block — the paper's preservation question as
// a live reading:
//
//	eng, err := sampling.New(spec, sampling.WithEstimator(estimate.AggVar))
//	...
//	if hs := eng.Snapshot().Hurst; hs != nil && hs.Input.OK {
//	    log.Printf("input H %.3f, kept H %.3f, drift %+.3f", hs.Input.H, hs.Kept.H, hs.Drift)
//	}
//
// Estimator ticks are allocation-free and O(log n) worst case, so the
// option is safe on the ingest hot path; the regression itself runs
// only when a snapshot is taken. On the wire the block appears under
// "hurst" with undetermined values as null, e.g.
//
//	"hurst": {"method": "aggvar",
//	          "input": {"h": 0.79, "beta": 0.42, "levels": 11, "ticks": 262144, "ok": true},
//	          "kept":  {"h": null, "beta": null, "levels": 0, "ticks": 131, "ok": false},
//	          "drift": null}
//
// # Beyond the engine
//
// The rest of the paper's toolkit is exported alongside: the evaluation
// metrics (MeanOf, Eta, Overhead, Efficiency), repeated-instance
// evaluation (RunInstances with spec factories), the BSS parameter
// design (NewBSSDesign), and the Theorem 1 Hurst-preservation checker
// (CheckSNC, GapPMF).
package sampling
