package sampling_test

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/lrd"
	"repro/sampling"
	"repro/sampling/estimate"
)

// fiveSpecs is one spec per registered technique, seeds inline so the
// same spec builds the same engine standalone and inside a group.
func fiveSpecs(t *testing.T) []sampling.Spec {
	t.Helper()
	specs := []sampling.Spec{
		sampling.MustParse("systematic:interval=50,offset=7"),
		sampling.MustParse("stratified:interval=50,seed=11"),
		sampling.MustParse("simple:n=100,seed=5"),
		sampling.MustParse("bernoulli:rate=0.02,seed=13"),
		sampling.MustParse("bss:interval=50,L=5,eps=1.0"),
	}
	// The registry lists six names but "simple" aliases "simple-random";
	// these five specs cover every distinct technique.
	distinct := make(map[string]bool)
	for _, spec := range specs {
		eng, err := sampling.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		distinct[eng.Technique()] = true
	}
	if len(distinct) != 5 {
		t.Fatalf("fiveSpecs covers %d distinct techniques, want 5", len(distinct))
	}
	return specs
}

func groupSeries(seed uint64, n int) []float64 {
	rng := dist.NewRand(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.ExpFloat64() * 10
	}
	return out
}

// TestGroupMatchesStandaloneEngines is the group's core contract (and
// the PR's acceptance criterion): over all five registered techniques,
// a group member's kept samples are byte-identical to a standalone
// engine built from the same spec and fed the same stream — through
// both the batch form (Group.Sample) and the streaming form
// (OfferBatch in ragged batches, then Finish).
func TestGroupMatchesStandaloneEngines(t *testing.T) {
	specs := fiveSpecs(t)
	series := groupSeries(99, 5000)

	reference := make([][]sampling.Sample, len(specs))
	for i, spec := range specs {
		eng, err := sampling.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		if reference[i], err = eng.Sample(series); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("batch", func(t *testing.T) {
		g, err := sampling.NewGroup(specs)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := g.Sample(series)
		if err != nil {
			t.Fatal(err)
		}
		for i := range specs {
			assertSameSamples(t, specs[i].String(), outs[i], reference[i])
		}
	})

	t.Run("streaming", func(t *testing.T) {
		// The tick-path reference: standalone engines fed one tick at a
		// time, so this subtest is also a batch-vs-tick equivalence check.
		refSums := make([]sampling.Summary, len(specs))
		refTails := make([][]sampling.Sample, len(specs))
		for i, spec := range specs {
			eng, err := sampling.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range series {
				eng.Offer(v)
			}
			if refTails[i], err = eng.Finish(); err != nil {
				t.Fatal(err)
			}
			refSums[i] = eng.Snapshot()
		}
		g, err := sampling.NewGroup(specs)
		if err != nil {
			t.Fatal(err)
		}
		var kept int
		for off := 0; off < len(series); {
			end := off + 37 // deliberately not a divisor of the length
			if end > len(series) {
				end = len(series)
			}
			kept += g.OfferBatch(series[off:end])
			off = end
		}
		tails, err := g.Finish()
		if err != nil {
			t.Fatal(err)
		}
		cmp := g.Snapshot()
		if cmp.Seen != len(series) || !cmp.Finished {
			t.Fatalf("comparison after finish: seen=%d finished=%v", cmp.Seen, cmp.Finished)
		}
		for i := range specs {
			sum, want := cmp.Members[i].Summary, refSums[i]
			if sum.Kept != want.Kept || sum.Seen != want.Seen || sum.Qualified != want.Qualified ||
				!sameOrBothNaN(sum.Mean, want.Mean) || !sameOrBothNaN(sum.Variance, want.Variance) {
				t.Errorf("%s diverged from tick-by-tick engine:\n got kept=%d seen=%d qual=%d mean=%g var=%g\nwant kept=%d seen=%d qual=%d mean=%g var=%g",
					specs[i], sum.Kept, sum.Seen, sum.Qualified, sum.Mean, sum.Variance,
					want.Kept, want.Seen, want.Qualified, want.Mean, want.Variance)
			}
			assertSameSamples(t, specs[i].String()+" tail", tails[i], refTails[i])
			kept -= sum.Kept - len(tails[i])
		}
		if kept != 0 {
			t.Errorf("OfferBatch kept-count total disagrees with member summaries by %d", kept)
		}
	})
}

func assertSameSamples(t *testing.T, label string, got, want []sampling.Sample) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d samples, want %d", label, len(got), len(want))
		return
	}
	for j := range got {
		if got[j] != want[j] {
			t.Errorf("%s: sample %d = %+v, want %+v", label, j, got[j], want[j])
			return
		}
	}
}

func sameOrBothNaN(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

// TestGroupSharedEstimator: with WithEstimator the group runs one
// input-side estimator shared by all members — every member's Hurst
// block reports the identical input point — and per-member kept-side
// estimates feed the fidelity drift.
func TestGroupSharedEstimator(t *testing.T) {
	gen, err := lrd.NewFGN(0.8, 1<<13, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	series := gen.Generate(dist.NewRand(7))
	specs := []sampling.Spec{
		sampling.MustParse("systematic:interval=8"),
		sampling.MustParse("systematic:interval=16"),
		sampling.MustParse("bernoulli:rate=0.1,seed=3"),
	}
	g, err := sampling.NewGroup(specs, sampling.WithEstimator(estimate.AggVar))
	if err != nil {
		t.Fatal(err)
	}
	g.OfferBatch(series)
	cmp := g.Snapshot()
	if cmp.Method != estimate.AggVar {
		t.Fatalf("comparison method = %q, want aggvar", cmp.Method)
	}
	if cmp.Hurst == nil || !cmp.Hurst.OK {
		t.Fatalf("shared input estimate unresolved: %+v", cmp.Hurst)
	}
	if cmp.Hurst.H < 0.5 || cmp.Hurst.H > 1.0 {
		t.Errorf("input H = %g, want LRD range for H=0.8 fGn", cmp.Hurst.H)
	}
	// The input-side reference against a standalone engine's own
	// estimator over the same stream: identical ticks, identical ladder,
	// identical estimate.
	ref, err := sampling.New(specs[0], sampling.WithEstimator(estimate.AggVar))
	if err != nil {
		t.Fatal(err)
	}
	ref.OfferBatch(series)
	if want := ref.Snapshot().Hurst.Input; *cmp.Hurst != want {
		t.Errorf("shared input point %+v differs from standalone input point %+v", *cmp.Hurst, want)
	}
	for i, m := range cmp.Members {
		hs := m.Summary.Hurst
		if hs == nil {
			t.Fatalf("member %d has no Hurst block", i)
		}
		if hs.Input != *cmp.Hurst {
			t.Errorf("member %d input point %+v differs from the shared one %+v", i, hs.Input, *cmp.Hurst)
		}
		if hs.Kept.OK && !sameOrBothNaN(m.Fidelity.HurstDrift, hs.Kept.H-hs.Input.H) {
			t.Errorf("member %d drift %g, want kept-input %g", i, m.Fidelity.HurstDrift, hs.Kept.H-hs.Input.H)
		}
	}
}

// TestGroupFidelity pins the fidelity arithmetic against the input
// accumulator on a tiny deterministic stream.
func TestGroupFidelity(t *testing.T) {
	g, err := sampling.NewGroup([]sampling.Spec{sampling.MustParse("systematic:interval=2")})
	if err != nil {
		t.Fatal(err)
	}
	// systematic:interval=2 keeps ticks 0, 2, 4, ... -> values 1, 3, 5.
	g.OfferBatch([]float64{1, 2, 3, 4, 5, 6})
	cmp := g.Snapshot()
	if cmp.Seen != 6 || cmp.Mean != 3.5 {
		t.Fatalf("input reference: seen=%d mean=%g, want 6 / 3.5", cmp.Seen, cmp.Mean)
	}
	f := cmp.Members[0].Fidelity
	if f.KeptRatio != 0.5 {
		t.Errorf("KeptRatio = %g, want 0.5", f.KeptRatio)
	}
	if want := 1 - 3.0/3.5; math.Abs(f.MeanBias-want) > 1e-15 {
		t.Errorf("MeanBias = %g, want %g", f.MeanBias, want)
	}
	if want := 1 - 4.0/3.5; math.Abs(f.VarianceBias-want) > 1e-15 {
		t.Errorf("VarianceBias = %g, want %g (kept var 4 over input var 3.5)", f.VarianceBias, want)
	}
	if !math.IsNaN(f.HurstDrift) {
		t.Errorf("HurstDrift without an estimator = %g, want NaN", f.HurstDrift)
	}
	if cmp.Hurst != nil || cmp.Method != "" {
		t.Errorf("estimator-less comparison carries a Hurst point: %+v %q", cmp.Hurst, cmp.Method)
	}
}

// TestGroupErrors: construction and lifecycle failure modes.
func TestGroupErrors(t *testing.T) {
	if _, err := sampling.NewGroup(nil); err == nil {
		t.Error("empty group built without error")
	}
	_, err := sampling.NewGroup([]sampling.Spec{
		sampling.MustParse("systematic:interval=10"),
		sampling.MustParse("no-such-technique"),
	})
	if err == nil || !strings.Contains(err.Error(), "member 1") {
		t.Errorf("bad member error does not name the member: %v", err)
	}
	// A failing member finish (5-sample draw over a 3-tick stream) joins
	// into the group error but still finalizes the rest.
	g, err := sampling.NewGroup([]sampling.Spec{
		sampling.MustParse("simple:n=5,seed=1"),
		sampling.MustParse("systematic:interval=2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.OfferBatch([]float64{1, 2, 3})
	if _, err := g.Finish(); err == nil {
		t.Error("short simple draw finished without error")
	}
	cmp := g.Snapshot()
	if cmp.Members[0].Summary.Err == nil {
		t.Error("failing member's summary lost its error")
	}
	if cmp.Members[1].Summary.Err != nil || !cmp.Members[1].Summary.Finished {
		t.Errorf("healthy member not finalized cleanly: %+v", cmp.Members[1].Summary)
	}
	// Idempotent finish, dead offers.
	if _, err2 := g.Finish(); err2 == nil {
		t.Error("second Finish lost the error")
	}
	if kept := g.OfferBatch([]float64{9}); kept != 0 {
		t.Errorf("post-finish OfferBatch kept %d", kept)
	}
	if cmp := g.Snapshot(); cmp.Seen != 3 {
		t.Errorf("post-finish offer advanced seen to %d", cmp.Seen)
	}
}

// TestGroupConcurrentSnapshot hammers Snapshot while one writer streams
// batches: every observed comparison must be internally consistent —
// each member observed at exactly the comparison's input tick count.
func TestGroupConcurrentSnapshot(t *testing.T) {
	specs := fiveSpecs(t)
	g, err := sampling.NewGroup(specs, sampling.WithEstimator(estimate.AggVar))
	if err != nil {
		t.Fatal(err)
	}
	series := groupSeries(3, 20000)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				cmp := g.Snapshot()
				for i, m := range cmp.Members {
					if m.Summary.Seen != cmp.Seen {
						t.Errorf("member %d observed at %d ticks inside a %d-tick comparison",
							i, m.Summary.Seen, cmp.Seen)
						return
					}
				}
			}
		}()
	}
	for off := 0; off < len(series); off += 512 {
		end := off + 512
		if end > len(series) {
			end = len(series)
		}
		g.OfferBatch(series[off:end])
	}
	close(done)
	wg.Wait()
	if _, err := g.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupClockAndSpecs: the group clock stamps the comparison and
// Specs reflects option-injected parameters.
func TestGroupClockAndSpecs(t *testing.T) {
	at := time.Date(2026, 7, 27, 9, 0, 0, 0, time.UTC)
	g, err := sampling.NewGroup(
		[]sampling.Spec{sampling.MustParse("bernoulli:rate=0.5")},
		sampling.WithSeed(21), sampling.WithBudget(4),
		sampling.WithClock(func() time.Time { return at }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if specs := g.Specs(); specs[0].Params["seed"] != "21" {
		t.Errorf("WithSeed not visible in Specs(): %v", specs[0])
	}
	g.OfferBatch(groupSeries(1, 100))
	cmp := g.Snapshot()
	if !cmp.At.Equal(at) || cmp.Uptime != 0 {
		t.Errorf("clock not honored: at=%v uptime=%v", cmp.At, cmp.Uptime)
	}
	if sum := cmp.Members[0].Summary; sum.Kept != 4 || sum.Budget != 4 {
		t.Errorf("WithBudget not applied to members: kept=%d budget=%d", sum.Kept, sum.Budget)
	}
}

// TestGroupEmptySpecsTyped: the spec-less group error is typed so
// services can map it to a client error without duplicating the check.
func TestGroupEmptySpecsTyped(t *testing.T) {
	_, err := sampling.NewGroup(nil)
	if !errors.Is(err, sampling.ErrBadSpec) {
		t.Errorf("empty-group error = %v, want ErrBadSpec in the chain", err)
	}
}
