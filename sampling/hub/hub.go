// Package hub multiplexes many named sampling streams over live
// engines — the concurrency layer between the single-stream
// sampling.Engine and a measurement service watching thousands of
// traffic streams at once. Alongside plain streams it hosts comparison
// groups (sampling.Group): one input stream fanned out to several
// techniques, snapshot as a sampling.Comparison. Groups live in their
// own id namespace (CreateGroup/OfferGroupBatch/GroupSnapshot/
// FinishGroup) with the same lifecycle, eviction and typed errors as
// streams.
//
// A Hub is lock-striped: stream ids hash onto a fixed set of shards,
// each with its own mutex and stream table, so operations on unrelated
// streams never contend on a shared lock. The engines themselves are
// concurrent-safe, which keeps the shard locks to map lookups only: the
// hot path (OfferBatch) holds a shard read lock just long enough to
// resolve the id.
//
// Ticks within one stream must arrive in order, so each stream should
// have a single writer, exactly as with a bare Engine; any number of
// goroutines may snapshot concurrently. Streams that stop receiving
// ticks are reaped by Sweep once they exceed the hub's idle TTL.
package hub

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/sampling"
)

// The typed failure modes of stream lookup and creation; branch with
// errors.Is. Engine construction failures keep their own types
// (sampling.ErrUnknownTechnique, *sampling.ParamError).
var (
	// ErrStreamExists is wrapped by Create when the id is already live.
	ErrStreamExists = errors.New("stream already exists")
	// ErrStreamNotFound is wrapped by operations on unknown (or already
	// finished, or evicted) stream ids.
	ErrStreamNotFound = errors.New("stream not found")
	// ErrInvalidID is wrapped by Create when the stream id is unusable
	// (empty) — a caller mistake, not a lookup miss.
	ErrInvalidID = errors.New("invalid stream id")
)

// stream is one live engine plus the bookkeeping the hub needs around
// it. lastActive is atomic so the ingest path can stamp it and Sweep can
// read it without taking any lock.
type stream struct {
	engine     *sampling.Engine
	lastActive atomic.Int64 // unix nanoseconds of the last Create/OfferBatch
}

// groupStream is one live comparison group, the group-id namespace's
// counterpart of stream.
type groupStream struct {
	group      *sampling.Group
	lastActive atomic.Int64 // unix nanoseconds of the last CreateGroup/OfferGroupBatch
}

// shard is one stripe of the hub: mutex-guarded stream and group tables
// plus cumulative tick/kept counters. The counters are atomics and
// survive stream removal, so aggregate Stats stays cheap and monotonic.
// Stream and group counters are separate — a group tick fans out to N
// engines, so folding the two together would make neither rate
// meaningful.
type shard struct {
	mu         sync.RWMutex
	streams    map[string]*stream
	groups     map[string]*groupStream
	ticks      atomic.Int64
	kept       atomic.Int64
	groupTicks atomic.Int64
	groupKept  atomic.Int64
}

// Hub manages a set of named sampling streams across lock-striped
// shards. The zero value is not usable; build hubs with New.
type Hub struct {
	shards        []shard
	mask          uint64
	clock         func() time.Time
	ttl           time.Duration
	evictHook     func(Eviction)
	start         time.Time
	created       atomic.Int64
	evicted       atomic.Int64
	groupsCreated atomic.Int64
	groupsEvicted atomic.Int64
}

// Option configures a Hub at construction; see New.
type Option func(*Hub)

// WithShards sets the number of lock stripes, rounded up to a power of
// two and clamped to [1, 65536]. The default of 64 keeps contention
// negligible for thousands of streams; raise it only if profiles show
// shard-lock waits.
func WithShards(n int) Option {
	return func(h *Hub) {
		if n > 1<<16 {
			n = 1 << 16
		}
		p := 1
		for p < n {
			p <<= 1
		}
		h.shards = make([]shard, p)
	}
}

// WithIdleTTL sets the idle threshold used by Sweep: streams that have
// not received ticks (or been created) for longer than ttl are evicted.
// Zero, the default, disables eviction. Snapshots do not count as
// activity — a stream kept alive only by its observers is dead.
func WithIdleTTL(ttl time.Duration) Option {
	return func(h *Hub) { h.ttl = ttl }
}

// WithClock substitutes the hub's time source (activity stamps, Stats
// uptime). The default is time.Now; tests inject fake clocks to drive
// eviction deterministically. Engines created by the hub share it.
func WithClock(now func() time.Time) Option {
	return func(h *Hub) { h.clock = now }
}

// New builds an empty hub.
func New(opts ...Option) *Hub {
	h := &Hub{clock: time.Now}
	WithShards(64)(h)
	for _, opt := range opts {
		opt(h)
	}
	for i := range h.shards {
		h.shards[i].streams = make(map[string]*stream)
		h.shards[i].groups = make(map[string]*groupStream)
	}
	h.mask = uint64(len(h.shards) - 1)
	h.start = h.clock()
	return h
}

// shardOf hashes a stream id onto its stripe (FNV-1a).
func (h *Hub) shardOf(id string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	hash := uint64(offset64)
	for i := 0; i < len(id); i++ {
		hash ^= uint64(id[i])
		hash *= prime64
	}
	return &h.shards[hash&h.mask]
}

// get resolves a live stream (and its shard, so hot paths hash the id
// exactly once) or fails with ErrStreamNotFound.
func (h *Hub) get(id string) (*shard, *stream, error) {
	sh := h.shardOf(id)
	sh.mu.RLock()
	st := sh.streams[id]
	sh.mu.RUnlock()
	if st == nil {
		return nil, nil, fmt.Errorf("hub: stream %q: %w", id, ErrStreamNotFound)
	}
	return sh, st, nil
}

// Create builds a fresh engine from the spec (plus engine options, e.g.
// sampling.WithSeed or WithBudget) and registers it under id. The id
// must be non-empty and not yet live; engine construction failures pass
// through with their types intact (sampling.ErrUnknownTechnique,
// *sampling.ParamError), so a service can map them to client errors.
func (h *Hub) Create(id string, spec sampling.Spec, opts ...sampling.Option) error {
	if id == "" {
		return fmt.Errorf("hub: empty stream id: %w", ErrInvalidID)
	}
	// The engine's snapshots must tick on the hub's clock so fake-clock
	// tests see consistent time everywhere. Copy before appending: the
	// caller's slice may have spare capacity we must not write into.
	all := make([]sampling.Option, 0, len(opts)+1)
	all = append(append(all, opts...), sampling.WithClock(h.clock))
	eng, err := sampling.New(spec, all...)
	if err != nil {
		return err
	}
	st := &stream{engine: eng}
	st.lastActive.Store(h.clock().UnixNano())
	sh := h.shardOf(id)
	sh.mu.Lock()
	if _, dup := sh.streams[id]; dup {
		sh.mu.Unlock()
		return fmt.Errorf("hub: stream %q: %w", id, ErrStreamExists)
	}
	sh.streams[id] = st
	sh.mu.Unlock()
	h.created.Add(1)
	return nil
}

// OfferBatch feeds a batch of ticks to a stream in order and returns
// how many samples the batch finalized. It is the hot path: the shard
// lock covers only the id lookup, and the whole batch runs under one
// acquisition of the engine's lock (Engine.OfferBatch), never one per
// tick. Ticks within one stream must come from a single goroutine
// (batches from concurrent writers would interleave unpredictably);
// batches for different streams run fully in parallel.
//
//samplelint:hotpath
func (h *Hub) OfferBatch(id string, values []float64) (kept int, err error) {
	sh, st, err := h.get(id)
	if err != nil {
		return 0, err
	}
	kept = st.engine.OfferBatch(values)
	// A concurrent Finish (or Sweep eviction) around the batch turns
	// Engine.OfferBatch into a silent no-op; without this check the
	// batch would report success and count ticks no engine saw. The
	// batch itself is atomic under the engine lock, so Finish can no
	// longer land mid-batch.
	if st.engine.Finished() {
		return kept, fmt.Errorf("hub: stream %q: finished while offering: %w", id, ErrStreamNotFound)
	}
	st.lastActive.Store(h.clock().UnixNano())
	sh.ticks.Add(int64(len(values)))
	sh.kept.Add(int64(kept))
	return kept, nil
}

// Snapshot returns the stream's live summary without disturbing it.
func (h *Hub) Snapshot(id string) (sampling.Summary, error) {
	_, st, err := h.get(id)
	if err != nil {
		return sampling.Summary{}, err
	}
	return st.engine.Snapshot(), nil
}

// Finish ends a stream: the engine is finalized, the samples only
// decidable at end of stream (e.g. a simple random draw) are returned
// together with the final summary, and the id is released for reuse. A
// failed finalization (an engine deferred error) still removes the
// stream and reports the error in both the return and the summary.
func (h *Hub) Finish(id string) ([]sampling.Sample, sampling.Summary, error) {
	sh := h.shardOf(id)
	sh.mu.Lock()
	st := sh.streams[id]
	delete(sh.streams, id)
	sh.mu.Unlock()
	if st == nil {
		return nil, sampling.Summary{}, fmt.Errorf("hub: stream %q: %w", id, ErrStreamNotFound)
	}
	tail, err := st.engine.Finish()
	sh.kept.Add(int64(len(tail)))
	return tail, st.engine.Snapshot(), err
}

// getGroup resolves a live group (and its shard) or fails with
// ErrStreamNotFound. Groups live in their own id namespace: a group and
// a stream may share an id without colliding.
func (h *Hub) getGroup(id string) (*shard, *groupStream, error) {
	sh := h.shardOf(id)
	sh.mu.RLock()
	gs := sh.groups[id]
	sh.mu.RUnlock()
	if gs == nil {
		return nil, nil, fmt.Errorf("hub: group %q: %w", id, ErrStreamNotFound)
	}
	return sh, gs, nil
}

// CreateGroup builds a comparison group from the specs (one member
// engine per spec; options as in sampling.NewGroup, so WithEstimator
// attaches the shared input-side estimator) and registers it under id
// in the group namespace. Failure modes mirror Create: ErrInvalidID,
// ErrStreamExists for a live group id, and engine construction errors
// with their types intact.
func (h *Hub) CreateGroup(id string, specs []sampling.Spec, opts ...sampling.Option) error {
	if id == "" {
		return fmt.Errorf("hub: empty group id: %w", ErrInvalidID)
	}
	all := make([]sampling.Option, 0, len(opts)+1)
	all = append(append(all, opts...), sampling.WithClock(h.clock))
	grp, err := sampling.NewGroup(specs, all...)
	if err != nil {
		return err
	}
	gs := &groupStream{group: grp}
	gs.lastActive.Store(h.clock().UnixNano())
	sh := h.shardOf(id)
	sh.mu.Lock()
	if _, dup := sh.groups[id]; dup {
		sh.mu.Unlock()
		return fmt.Errorf("hub: group %q: %w", id, ErrStreamExists)
	}
	sh.groups[id] = gs
	sh.mu.Unlock()
	h.groupsCreated.Add(1)
	return nil
}

// OfferGroupBatch feeds a batch of ticks to every member of a group in
// order and returns how many samples the batch finalized across all
// members. The ingest contract matches OfferBatch: one writer per
// group, any number of concurrent observers, batches for different
// groups fully parallel. The group's tick counter counts input ticks,
// not input x members.
//
//samplelint:hotpath
func (h *Hub) OfferGroupBatch(id string, values []float64) (kept int, err error) {
	sh, gs, err := h.getGroup(id)
	if err != nil {
		return 0, err
	}
	kept = gs.group.OfferBatch(values)
	// Same race check as OfferBatch: a concurrent FinishGroup or Sweep
	// eviction turns the offer into a silent no-op.
	if gs.group.Finished() {
		return kept, fmt.Errorf("hub: group %q: finished while offering: %w", id, ErrStreamNotFound)
	}
	gs.lastActive.Store(h.clock().UnixNano())
	sh.groupTicks.Add(int64(len(values)))
	sh.groupKept.Add(int64(kept))
	return kept, nil
}

// GroupSnapshot returns the group's live comparison without disturbing
// it.
func (h *Hub) GroupSnapshot(id string) (sampling.Comparison, error) {
	_, gs, err := h.getGroup(id)
	if err != nil {
		return sampling.Comparison{}, err
	}
	return gs.group.Snapshot(), nil
}

// FinishGroup ends a group: every member is finalized, the per-member
// end-of-stream tails are returned together with the final comparison,
// and the id is released for reuse. Member finalization errors do not
// block removal; they come back joined and stay visible in the member
// summaries.
func (h *Hub) FinishGroup(id string) ([][]sampling.Sample, sampling.Comparison, error) {
	sh := h.shardOf(id)
	sh.mu.Lock()
	gs := sh.groups[id]
	delete(sh.groups, id)
	sh.mu.Unlock()
	if gs == nil {
		return nil, sampling.Comparison{}, fmt.Errorf("hub: group %q: %w", id, ErrStreamNotFound)
	}
	tails, err := gs.group.Finish()
	var n int64
	for _, tail := range tails {
		n += int64(len(tail))
	}
	sh.groupKept.Add(n)
	return tails, gs.group.Snapshot(), err
}

// ListGroups returns the ids of every live group, sorted.
func (h *Hub) ListGroups() []string {
	var out []string
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.RLock()
		for id := range sh.groups {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// List returns the ids of every live stream, sorted.
func (h *Hub) List() []string {
	var out []string
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.RLock()
		for id := range sh.streams {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live streams.
func (h *Hub) Len() int {
	n := 0
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.RLock()
		n += len(sh.streams)
		sh.mu.RUnlock()
	}
	return n
}

// Sweep evicts every stream and group idle for longer than the hub's
// TTL and returns how many it removed. Evicted engines are finalized
// (their end-of-stream samples are dropped — nobody is listening). With
// no TTL configured Sweep is a no-op; a service calls it on a timer.
func (h *Hub) Sweep() int {
	if h.ttl <= 0 {
		return 0
	}
	cutoff := h.clock().Add(-h.ttl).UnixNano()
	type deadStream struct {
		id string
		st *stream
	}
	type deadGroup struct {
		id string
		gs *groupStream
	}
	var dead []deadStream
	var deadGroups []deadGroup
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for id, st := range sh.streams {
			if st.lastActive.Load() < cutoff {
				delete(sh.streams, id)
				dead = append(dead, deadStream{id, st})
			}
		}
		for id, gs := range sh.groups {
			if gs.lastActive.Load() < cutoff {
				delete(sh.groups, id)
				deadGroups = append(deadGroups, deadGroup{id, gs})
			}
		}
		sh.mu.Unlock()
	}
	// The evict hook, then finalization, both outside the shard locks:
	// Finish can do O(stream) work (simple random sampling drains its
	// buffer) and must not stall unrelated streams of the same shard.
	// The hook runs first — it is the last chance to capture the
	// engine's state before Finish closes it.
	for _, d := range dead {
		if h.evictHook != nil {
			h.evictHook(Eviction{ID: d.id, Engine: d.st.engine})
		}
		d.st.engine.Finish()
	}
	for _, d := range deadGroups {
		if h.evictHook != nil {
			h.evictHook(Eviction{ID: d.id, Group: d.gs.group})
		}
		d.gs.group.Finish()
	}
	h.evicted.Add(int64(len(dead)))
	h.groupsEvicted.Add(int64(len(deadGroups)))
	return len(dead) + len(deadGroups)
}

// Stats is the hub's aggregate state, shaped for metrics scraping:
// cumulative monotonic counters (Ticks, Kept, Created, Evicted) plus
// the current stream count and a lifetime average ingest rate.
type Stats struct {
	Streams     int           // live streams right now
	Created     int64         // streams ever created
	Evicted     int64         // streams removed by Sweep
	Ticks       int64         // ticks offered over the hub's lifetime
	Kept        int64         // samples kept over the hub's lifetime
	Uptime      time.Duration // since New
	TicksPerSec float64       // Ticks / Uptime — lifetime average

	// The comparison-group counterparts. GroupTicks counts input ticks
	// (each of which fans out to every member engine of its group);
	// GroupKept counts samples kept across all members.
	Groups        int   // live comparison groups right now
	GroupsCreated int64 // groups ever created
	GroupsEvicted int64 // groups removed by Sweep
	GroupTicks    int64 // ticks offered to groups over the hub's lifetime
	GroupKept     int64 // samples kept by group members over the hub's lifetime
}

// HurstStats aggregates the live long-range-dependence estimates over
// every stream built with sampling.WithEstimator: how many streams are
// estimating, how many have resolved on each side, and the mean input
// H, kept H and drift over the resolved streams. Means are NaN while
// their count is zero.
type HurstStats struct {
	Estimating int     // live streams carrying an estimator
	InputN     int     // streams whose input-side estimate has resolved
	KeptN      int     // streams whose kept-side estimate has resolved
	DriftN     int     // streams where both sides (hence drift) resolved
	MeanInputH float64 // mean pre-sampling H over InputN streams
	MeanKeptH  float64 // mean post-sampling H over KeptN streams
	MeanDrift  float64 // mean (kept - input) H over DriftN streams
}

// Hurst walks every live stream and folds its Hurst block into the
// aggregate. Cost is O(streams) — one engine snapshot each, taken
// outside the shard locks — so scrape it at dashboard frequency, not
// per request.
func (h *Hub) Hurst() HurstStats {
	st := HurstStats{MeanInputH: math.NaN(), MeanKeptH: math.NaN(), MeanDrift: math.NaN()}
	var sumIn, sumKept, sumDrift float64
	var engines []*sampling.Engine
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.RLock()
		engines = engines[:0]
		for _, s := range sh.streams {
			engines = append(engines, s.engine)
		}
		sh.mu.RUnlock()
		for _, eng := range engines {
			hs := eng.Snapshot().Hurst
			if hs == nil {
				continue
			}
			st.Estimating++
			if hs.Input.OK {
				st.InputN++
				sumIn += hs.Input.H
			}
			if hs.Kept.OK {
				st.KeptN++
				sumKept += hs.Kept.H
			}
			if !math.IsNaN(hs.Drift) {
				st.DriftN++
				sumDrift += hs.Drift
			}
		}
	}
	if st.InputN > 0 {
		st.MeanInputH = sumIn / float64(st.InputN)
	}
	if st.KeptN > 0 {
		st.MeanKeptH = sumKept / float64(st.KeptN)
	}
	if st.DriftN > 0 {
		st.MeanDrift = sumDrift / float64(st.DriftN)
	}
	return st
}

// Stats aggregates over the shards. Cost is O(shards), independent of
// the number of streams, so it is safe to scrape at high frequency.
func (h *Hub) Stats() Stats {
	s := Stats{
		Created:       h.created.Load(),
		Evicted:       h.evicted.Load(),
		GroupsCreated: h.groupsCreated.Load(),
		GroupsEvicted: h.groupsEvicted.Load(),
		Uptime:        h.clock().Sub(h.start),
	}
	for i := range h.shards {
		sh := &h.shards[i]
		s.Ticks += sh.ticks.Load()
		s.Kept += sh.kept.Load()
		s.GroupTicks += sh.groupTicks.Load()
		s.GroupKept += sh.groupKept.Load()
		sh.mu.RLock()
		s.Streams += len(sh.streams)
		s.Groups += len(sh.groups)
		sh.mu.RUnlock()
	}
	if sec := s.Uptime.Seconds(); sec > 0 {
		s.TicksPerSec = float64(s.Ticks) / sec
	}
	return s
}
