package hub_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/sampling"
	"repro/sampling/hub"
	"repro/sampling/persist"
)

// handoffTrace is a deterministic series for the state tests, distinct
// from the hammer helpers so failures here never depend on them.
func handoffTrace(n int) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = 1 + math.Sin(float64(i)/5)*math.Cos(float64(i)/89) + float64(i%11)/11
	}
	return f
}

// TestEvictHook: Sweep hands every evicted stream and group to the
// hook before finalizing, with the engine still live enough to
// checkpoint.
func TestEvictHook(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	var evicted []hub.Eviction
	var blobs int
	h := hub.New(
		hub.WithClock(clk.Now),
		hub.WithIdleTTL(time.Minute),
		hub.WithEvictHook(func(ev hub.Eviction) {
			evicted = append(evicted, ev)
			switch {
			case ev.Engine != nil:
				if blob, err := ev.Engine.MarshalState(); err != nil || len(blob) == 0 {
					t.Errorf("evicted engine %s would not checkpoint: %v", ev.ID, err)
				} else {
					blobs++
				}
			case ev.Group != nil:
				if blob, err := ev.Group.MarshalState(); err != nil || len(blob) == 0 {
					t.Errorf("evicted group %s would not checkpoint: %v", ev.ID, err)
				} else {
					blobs++
				}
			default:
				t.Errorf("eviction %s carries neither engine nor group", ev.ID)
			}
		}),
	)
	if err := h.Create("idle", sampling.MustParse("systematic:interval=4")); err != nil {
		t.Fatal(err)
	}
	if err := h.CreateGroup("idle-g", []sampling.Spec{sampling.MustParse("systematic:interval=4")}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.OfferBatch("idle", handoffTrace(64)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	if err := h.Create("fresh", sampling.MustParse("systematic:interval=4")); err != nil {
		t.Fatal(err)
	}
	if n := h.Sweep(); n != 2 {
		t.Fatalf("Sweep evicted %d, want 2", n)
	}
	if len(evicted) != 2 || blobs != 2 {
		t.Fatalf("hook saw %d evictions (%d checkpointable), want 2", len(evicted), blobs)
	}
	for _, ev := range evicted {
		if ev.ID != "idle" && ev.ID != "idle-g" {
			t.Fatalf("hook saw eviction of %q — that stream was active", ev.ID)
		}
	}
}

// TestDetachRestoreHandoff moves a stream between hubs mid-flight and
// holds it against a never-moved control: same kept counts, same
// summary, tick for tick — the invariant the cluster router's
// checkpoint-transfer handoff depends on.
func TestDetachRestoreHandoff(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	src := hub.New(hub.WithClock(clk.Now))
	dst := hub.New(hub.WithClock(clk.Now))
	control := hub.New(hub.WithClock(clk.Now))

	const spec = "bernoulli:rate=0.1,seed=42"
	for _, h := range []*hub.Hub{src, control} {
		if err := h.Create("flow", sampling.MustParse(spec), sampling.WithEstimator("aggvar")); err != nil {
			t.Fatal(err)
		}
	}
	f := handoffTrace(6000)
	cut := 2500
	if _, err := src.OfferBatch("flow", f[:cut]); err != nil {
		t.Fatal(err)
	}
	if _, err := control.OfferBatch("flow", f[:cut]); err != nil {
		t.Fatal(err)
	}

	blob, err := src.Detach("flow")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Snapshot("flow"); !errors.Is(err, hub.ErrStreamNotFound) {
		t.Fatalf("detached stream still resolves on the source: %v", err)
	}
	if err := dst.RestoreStream("flow", blob); err != nil {
		t.Fatal(err)
	}

	ka, err := dst.OfferBatch("flow", f[cut:])
	if err != nil {
		t.Fatal(err)
	}
	kb, err := control.OfferBatch("flow", f[cut:])
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("handed-off stream kept %d over the suffix, control kept %d", ka, kb)
	}
	sa, _ := dst.Snapshot("flow")
	sb, _ := control.Snapshot("flow")
	if sa.Seen != sb.Seen || sa.Kept != sb.Kept || sa.Qualified != sb.Qualified {
		t.Fatalf("handed-off summary %+v diverges from control %+v", sa, sb)
	}

	// The group namespace has the same protocol.
	specs := []sampling.Spec{sampling.MustParse("systematic:interval=8"), sampling.MustParse(spec)}
	if err := src.CreateGroup("gflow", specs); err != nil {
		t.Fatal(err)
	}
	if _, err := src.OfferGroupBatch("gflow", f[:cut]); err != nil {
		t.Fatal(err)
	}
	gblob, err := src.DetachGroup("gflow")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreGroupState("gflow", gblob); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.OfferGroupBatch("gflow", f[cut:]); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreRejectsCollisionsAtomically: restoring a checkpoint into
// a hub that already serves one of its ids must fail without
// inserting any of the checkpoint's other streams.
func TestRestoreRejectsCollisionsAtomically(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	src := hub.New(hub.WithClock(clk.Now))
	for _, id := range []string{"a", "b", "c"} {
		if err := src.Create(id, sampling.MustParse("systematic:interval=4")); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	dst := hub.New(hub.WithClock(clk.Now))
	if err := dst.Create("b", sampling.MustParse("systematic:interval=4")); err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(ck); !errors.Is(err, hub.ErrStreamExists) {
		t.Fatalf("Restore over a live id: %v, want ErrStreamExists", err)
	}
	if got := dst.List(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("failed Restore left streams behind: %v", got)
	}

	// A corrupt record must also leave the hub untouched.
	ck.Streams[1].State[len(ck.Streams[1].State)/2] ^= 0x40
	fresh := hub.New(hub.WithClock(clk.Now))
	if err := fresh.Restore(ck); err == nil {
		t.Fatal("Restore accepted a corrupt engine blob")
	}
	if got := fresh.List(); len(got) != 0 {
		t.Fatalf("failed Restore left streams behind: %v", got)
	}
}

// TestRestoredHubSurvivesFirstSweep: downtime is not idleness — a hub
// restored from an old checkpoint must not evict everything on its
// first Sweep, even when the checkpointed activity stamps are far
// past the TTL.
func TestRestoredHubSurvivesFirstSweep(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	src := hub.New(hub.WithClock(clk.Now))
	if err := src.Create("old", sampling.MustParse("systematic:interval=4")); err != nil {
		t.Fatal(err)
	}
	ck, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	clk.Advance(24 * time.Hour) // long outage
	dst := hub.New(hub.WithClock(clk.Now), hub.WithIdleTTL(time.Minute))
	if err := dst.Restore(ck); err != nil {
		t.Fatal(err)
	}
	if n := dst.Sweep(); n != 0 {
		t.Fatalf("first Sweep after restore evicted %d streams", n)
	}
	if rec := ck.Streams[0]; rec.LastActiveUnixNano != time.Unix(1000, 0).UnixNano() {
		t.Fatalf("checkpoint lost the original activity stamp: %d", rec.LastActiveUnixNano)
	}
}

// TestCheckpointTotalsCarry: a restored hub's Stats include the
// previous incarnation's cumulative counters, and keep counting from
// there.
func TestCheckpointTotalsCarry(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	src := hub.New(hub.WithClock(clk.Now), hub.WithIdleTTL(time.Minute))
	if err := src.Create("gone", sampling.MustParse("systematic:interval=4")); err != nil {
		t.Fatal(err)
	}
	if _, err := src.OfferBatch("gone", handoffTrace(100)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	src.Sweep() // "gone" evicted: Created 1, Evicted 1, Ticks 100 survive only via totals
	if err := src.Create("live", sampling.MustParse("systematic:interval=4")); err != nil {
		t.Fatal(err)
	}
	if _, err := src.OfferBatch("live", handoffTrace(50)); err != nil {
		t.Fatal(err)
	}
	ck, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var rt persist.Totals
	rt = ck.Totals
	if rt.Created != 2 || rt.Evicted != 1 || rt.Ticks != 150 {
		t.Fatalf("checkpoint totals %+v, want Created 2, Evicted 1, Ticks 150", rt)
	}

	dst := hub.New(hub.WithClock(clk.Now))
	if err := dst.Restore(ck); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.OfferBatch("live", handoffTrace(25)); err != nil {
		t.Fatal(err)
	}
	s := dst.Stats()
	if s.Created != 2 || s.Evicted != 1 || s.Ticks != 175 {
		t.Fatalf("restored stats %+v, want Created 2, Evicted 1, Ticks 175", s)
	}
	if s.Streams != 1 {
		t.Fatalf("restored hub serves %d streams, want 1", s.Streams)
	}
}
