package hub_test

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/lrd"
	"repro/sampling"
	"repro/sampling/estimate"
	"repro/sampling/hub"
)

// testSpec returns the spec for the idx-th hammer stream, rotating over
// all five registered techniques with per-stream seeds where the
// technique is randomized.
func testSpec(idx int) sampling.Spec {
	switch idx % 5 {
	case 0:
		return sampling.MustParse("systematic:interval=7,offset=3")
	case 1:
		return sampling.MustParse(fmt.Sprintf("stratified:interval=5,seed=%d", 100+idx))
	case 2:
		return sampling.MustParse("simple:n=20")
	case 3:
		return sampling.MustParse(fmt.Sprintf("bernoulli:rate=0.2,seed=%d", 100+idx))
	default:
		return sampling.MustParse("bss:interval=10,L=3,eps=0.5")
	}
}

// testSeries returns the deterministic tick series of the idx-th hammer
// stream: heavy-ish exponential variates so BSS thresholds trigger.
func testSeries(idx, n int) []float64 {
	rng := dist.NewRand(uint64(1000 + idx))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.ExpFloat64()
	}
	return out
}

// sameFloat treats two NaNs as equal — a snapshot mean is legitimately
// NaN before the first kept sample (e.g. simple random pre-finish).
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

// TestHubHammer drives one hub from 64 goroutines across 1000 streams
// and asserts every per-stream snapshot is identical to a
// single-threaded engine run with the same spec, seed and series —
// stream isolation under concurrency, the hub's core contract.
func TestHubHammer(t *testing.T) {
	const (
		nStreams = 1000
		nWorkers = 64
		nTicks   = 600
		batch    = 37 // deliberately not a divisor of nTicks
	)
	h := hub.New()
	for i := 0; i < nStreams; i++ {
		if err := h.Create(fmt.Sprintf("stream-%04d", i), testSpec(i)); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, nWorkers)
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each stream has exactly one writer (ticks must stay in
			// order), but a worker interleaves batches across all its
			// streams so shards see concurrent mixed traffic.
			var mine []int
			for i := w; i < nStreams; i += nWorkers {
				mine = append(mine, i)
			}
			series := make(map[int][]float64, len(mine))
			for _, i := range mine {
				series[i] = testSeries(i, nTicks)
			}
			for off := 0; off < nTicks; off += batch {
				for _, i := range mine {
					end := off + batch
					if end > nTicks {
						end = nTicks
					}
					if _, err := h.OfferBatch(fmt.Sprintf("stream-%04d", i), series[i][off:end]); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i := 0; i < nStreams; i++ {
		got, err := h.Snapshot(fmt.Sprintf("stream-%04d", i))
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		ref, err := sampling.New(testSpec(i))
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range testSeries(i, nTicks) {
			ref.Offer(v)
		}
		want := ref.Snapshot()
		if got.Seen != want.Seen || got.Kept != want.Kept || got.Qualified != want.Qualified ||
			!sameFloat(got.Mean, want.Mean) || !sameFloat(got.Variance, want.Variance) {
			t.Errorf("stream %d (%s) diverged from single-threaded run:\n got seen=%d kept=%d qual=%d mean=%g var=%g\nwant seen=%d kept=%d qual=%d mean=%g var=%g",
				i, testSpec(i), got.Seen, got.Kept, got.Qualified, got.Mean, got.Variance,
				want.Seen, want.Kept, want.Qualified, want.Mean, want.Variance)
		}
	}

	st := h.Stats()
	if st.Streams != nStreams || st.Created != nStreams {
		t.Errorf("stats: %d live / %d created, want %d / %d", st.Streams, st.Created, nStreams, nStreams)
	}
	if want := int64(nStreams * nTicks); st.Ticks != want {
		t.Errorf("stats: %d ticks, want %d", st.Ticks, want)
	}
}

func TestHubCreateErrors(t *testing.T) {
	h := hub.New()
	spec := sampling.MustParse("systematic:interval=10")
	if err := h.Create("a", spec); err != nil {
		t.Fatal(err)
	}
	if err := h.Create("a", spec); !errors.Is(err, hub.ErrStreamExists) {
		t.Errorf("duplicate create: got %v, want ErrStreamExists", err)
	}
	if err := h.Create("", spec); !errors.Is(err, hub.ErrInvalidID) {
		t.Errorf("empty id: got %v, want ErrInvalidID", err)
	}
	if err := h.Create("b", sampling.MustParse("no-such-technique")); !errors.Is(err, sampling.ErrUnknownTechnique) {
		t.Errorf("unknown technique: got %v, want ErrUnknownTechnique", err)
	}
	var pe *sampling.ParamError
	if err := h.Create("c", sampling.MustParse("systematic:interval=10,bogus=1")); !errors.As(err, &pe) {
		t.Errorf("rejected param: got %v, want *ParamError", err)
	}
	if h.Len() != 1 {
		t.Errorf("failed creates leaked streams: %d live", h.Len())
	}
}

func TestHubUnknownStream(t *testing.T) {
	h := hub.New()
	if _, err := h.OfferBatch("ghost", []float64{1}); !errors.Is(err, hub.ErrStreamNotFound) {
		t.Errorf("offer: got %v", err)
	}
	if _, err := h.Snapshot("ghost"); !errors.Is(err, hub.ErrStreamNotFound) {
		t.Errorf("snapshot: got %v", err)
	}
	if _, _, err := h.Finish("ghost"); !errors.Is(err, hub.ErrStreamNotFound) {
		t.Errorf("finish: got %v", err)
	}
}

// TestHubFinish checks that Finish returns the end-of-stream tail (the
// whole draw, for offline simple random sampling), reports it in the
// final summary, and releases the id for reuse.
func TestHubFinish(t *testing.T) {
	h := hub.New()
	if err := h.Create("s", sampling.MustParse("simple:n=5,seed=9")); err != nil {
		t.Fatal(err)
	}
	series := testSeries(0, 100)
	if _, err := h.OfferBatch("s", series); err != nil {
		t.Fatal(err)
	}
	tail, sum, err := h.Finish("s")
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 5 {
		t.Errorf("tail has %d samples, want 5", len(tail))
	}
	if !sum.Finished || sum.Kept != 5 || sum.Seen != 100 {
		t.Errorf("final summary: %+v", sum)
	}
	if _, _, err := h.Finish("s"); !errors.Is(err, hub.ErrStreamNotFound) {
		t.Errorf("second finish: got %v, want ErrStreamNotFound", err)
	}
	if err := h.Create("s", sampling.MustParse("systematic:interval=2")); err != nil {
		t.Errorf("id not released after finish: %v", err)
	}
	if st := h.Stats(); st.Kept != 5 {
		t.Errorf("finish tail not counted: %d kept", st.Kept)
	}
}

// TestHubOfferRacingFinish pits a finishing stream against its writer:
// once Finish wins, OfferBatch must fail with ErrStreamNotFound rather
// than report success for ticks no engine saw.
func TestHubOfferRacingFinish(t *testing.T) {
	h := hub.New()
	if err := h.Create("s", sampling.MustParse("systematic:interval=2")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		var last error
		for i := 0; i < 100000; i++ {
			if _, err := h.OfferBatch("s", []float64{1, 2, 3}); err != nil {
				last = err
				break
			}
		}
		done <- last
	}()
	if _, _, err := h.Finish("s"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil && !errors.Is(err, hub.ErrStreamNotFound) {
		t.Errorf("offer racing finish: got %v, want ErrStreamNotFound (or the writer finished first)", err)
	}
}

// fakeClock is a mutable time source shared by a hub and its test.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestHubSweep(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	h := hub.New(hub.WithIdleTTL(time.Minute), hub.WithClock(clk.Now))
	spec := sampling.MustParse("systematic:interval=2")
	for _, id := range []string{"idle", "busy"} {
		if err := h.Create(id, spec); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(45 * time.Second)
	if _, err := h.OfferBatch("busy", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Snapshots are not activity: observing "idle" must not keep it alive.
	if _, err := h.Snapshot("idle"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(30 * time.Second)
	if n := h.Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d streams, want 1", n)
	}
	if _, err := h.Snapshot("idle"); !errors.Is(err, hub.ErrStreamNotFound) {
		t.Errorf("idle stream survived sweep: %v", err)
	}
	if _, err := h.Snapshot("busy"); err != nil {
		t.Errorf("busy stream evicted: %v", err)
	}
	if st := h.Stats(); st.Evicted != 1 || st.Streams != 1 {
		t.Errorf("stats after sweep: %+v", st)
	}
}

func TestHubSweepWithoutTTL(t *testing.T) {
	h := hub.New()
	if err := h.Create("s", sampling.MustParse("systematic:interval=2")); err != nil {
		t.Fatal(err)
	}
	if n := h.Sweep(); n != 0 {
		t.Errorf("TTL-less sweep evicted %d streams", n)
	}
}

func TestHubList(t *testing.T) {
	h := hub.New()
	ids := []string{"zeta", "alpha", "mid"}
	for _, id := range ids {
		if err := h.Create(id, sampling.MustParse("systematic:interval=2")); err != nil {
			t.Fatal(err)
		}
	}
	got := h.List()
	want := append([]string(nil), ids...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("List returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List returned %v, want %v", got, want)
		}
	}
}

func TestHubStatsRate(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	h := hub.New(hub.WithClock(clk.Now))
	if err := h.Create("s", sampling.MustParse("systematic:interval=2")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.OfferBatch("s", make([]float64, 500)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if st := h.Stats(); st.TicksPerSec != 250 {
		t.Errorf("TicksPerSec = %g, want 250", st.TicksPerSec)
	}
}

// BenchmarkHubOfferParallel measures aggregate ingest throughput with
// every worker driving its own stream — the hot path of a sharded
// multi-stream service. The custom ticks/s metric is the number the
// roadmap cares about.
func BenchmarkHubOfferParallel(b *testing.B) {
	const batch = 512
	h := hub.New()
	series := testSeries(0, batch)
	var nextID int64
	var mu sync.Mutex
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		nextID++
		id := fmt.Sprintf("bench-%d", nextID)
		mu.Unlock()
		if err := h.Create(id, sampling.MustParse("systematic:interval=100")); err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			if _, err := h.OfferBatch(id, series); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)*batch/sec, "ticks/s")
	}
}

// TestHubHurstAggregate: streams created with estimators roll up into
// Hub.Hurst, streams without estimators do not, and the means track the
// per-stream blocks.
func TestHubHurstAggregate(t *testing.T) {
	h := hub.New()
	gen, err := lrd.NewFGN(0.8, 1<<13, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	series := gen.Generate(dist.NewRand(42))
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("est-%d", i)
		if err := h.Create(id, sampling.MustParse("systematic:interval=8"),
			sampling.WithEstimator(estimate.AggVar)); err != nil {
			t.Fatal(err)
		}
		if _, err := h.OfferBatch(id, series); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Create("plain", sampling.MustParse("systematic:interval=8")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.OfferBatch("plain", series); err != nil {
		t.Fatal(err)
	}
	st := h.Hurst()
	if st.Estimating != 3 {
		t.Errorf("Estimating = %d, want 3 (plain stream must not count)", st.Estimating)
	}
	if st.InputN != 3 || st.KeptN != 3 || st.DriftN != 3 {
		t.Fatalf("resolved counts = (%d, %d, %d), want all 3", st.InputN, st.KeptN, st.DriftN)
	}
	// All three streams saw the same series, so the mean equals the
	// per-stream value.
	sum, err := h.Snapshot("est-0")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.MeanInputH-sum.Hurst.Input.H) > 1e-12 ||
		math.Abs(st.MeanKeptH-sum.Hurst.Kept.H) > 1e-12 ||
		math.Abs(st.MeanDrift-sum.Hurst.Drift) > 1e-12 {
		t.Errorf("aggregate %+v disagrees with per-stream block %+v", st, *sum.Hurst)
	}
	if math.Abs(st.MeanInputH-0.8) > 0.15 {
		t.Errorf("MeanInputH = %g, want ~0.8", st.MeanInputH)
	}
}

// TestHubHurstEmpty: with no estimating streams the counts are zero and
// the means are NaN, never a division artifact.
func TestHubHurstEmpty(t *testing.T) {
	h := hub.New()
	if err := h.Create("plain", sampling.MustParse("systematic:interval=8")); err != nil {
		t.Fatal(err)
	}
	st := h.Hurst()
	if st.Estimating != 0 || st.InputN != 0 || st.KeptN != 0 || st.DriftN != 0 {
		t.Errorf("zero-state counts wrong: %+v", st)
	}
	if !math.IsNaN(st.MeanInputH) || !math.IsNaN(st.MeanKeptH) || !math.IsNaN(st.MeanDrift) {
		t.Errorf("zero-state means should be NaN: %+v", st)
	}
}

// TestHubBatchVsTickEquivalence: the hub's batch ingest (now one
// engine-lock acquisition per batch) must leave a stream in exactly the
// state a tick-by-tick standalone engine reaches — identical kept
// samples, observed through the end-of-stream tail and the full
// snapshot counters/moments — for every registered technique.
func TestHubBatchVsTickEquivalence(t *testing.T) {
	const nTicks = 2000
	h := hub.New()
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("eq-%d", i)
		if err := h.Create(id, testSpec(i)); err != nil {
			t.Fatal(err)
		}
		series := testSeries(i, nTicks)
		var kept int
		for off := 0; off < nTicks; {
			end := off + 97 // deliberately not a divisor of nTicks
			if end > nTicks {
				end = nTicks
			}
			n, err := h.OfferBatch(id, series[off:end])
			if err != nil {
				t.Fatal(err)
			}
			kept += n
			off = end
		}
		ref, err := sampling.New(testSpec(i))
		if err != nil {
			t.Fatal(err)
		}
		refKept := 0
		for _, v := range series {
			if _, ok := ref.Offer(v); ok {
				refKept++
			}
		}
		if kept != refKept {
			t.Errorf("stream %d (%s): hub batches kept %d, tick engine kept %d", i, testSpec(i), kept, refKept)
		}
		tail, sum, err := h.Finish(id)
		if err != nil {
			t.Fatal(err)
		}
		refTail, err := ref.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if len(tail) != len(refTail) {
			t.Fatalf("stream %d: tail %d vs %d samples", i, len(tail), len(refTail))
		}
		for j := range tail {
			if tail[j] != refTail[j] {
				t.Errorf("stream %d: tail sample %d = %+v, want %+v", i, j, tail[j], refTail[j])
				break
			}
		}
		want := ref.Snapshot()
		if sum.Seen != want.Seen || sum.Kept != want.Kept || sum.Qualified != want.Qualified ||
			!sameFloat(sum.Mean, want.Mean) || !sameFloat(sum.Variance, want.Variance) {
			t.Errorf("stream %d (%s) diverged from tick engine:\n got seen=%d kept=%d mean=%g var=%g\nwant seen=%d kept=%d mean=%g var=%g",
				i, testSpec(i), sum.Seen, sum.Kept, sum.Mean, sum.Variance,
				want.Seen, want.Kept, want.Mean, want.Variance)
		}
	}
}

// groupSpecs is the five-technique member list the group tests share.
func groupSpecs() []sampling.Spec {
	return []sampling.Spec{
		sampling.MustParse("systematic:interval=7,offset=3"),
		sampling.MustParse("stratified:interval=5,seed=101"),
		sampling.MustParse("simple:n=20,seed=4"),
		sampling.MustParse("bernoulli:rate=0.2,seed=102"),
		sampling.MustParse("bss:interval=10,L=3,eps=0.5"),
	}
}

// TestHubGroupLifecycle drives a comparison group through the hub:
// create, batch ingest, snapshot (members all observed at the group's
// tick count, each identical to a standalone engine), finish with
// tails, id release, and the group stat counters.
func TestHubGroupLifecycle(t *testing.T) {
	h := hub.New()
	specs := groupSpecs()
	if err := h.CreateGroup("g", specs); err != nil {
		t.Fatal(err)
	}
	if err := h.CreateGroup("g", specs); !errors.Is(err, hub.ErrStreamExists) {
		t.Errorf("duplicate group create: got %v, want ErrStreamExists", err)
	}
	if err := h.CreateGroup("", specs); !errors.Is(err, hub.ErrInvalidID) {
		t.Errorf("empty group id: got %v, want ErrInvalidID", err)
	}
	if err := h.CreateGroup("bad", []sampling.Spec{sampling.MustParse("warp-drive")}); !errors.Is(err, sampling.ErrUnknownTechnique) {
		t.Errorf("bad member: got %v, want ErrUnknownTechnique", err)
	}
	if err := h.CreateGroup("empty", nil); err == nil {
		t.Error("spec-less group created without error")
	}

	series := testSeries(0, 600)
	kept, err := h.OfferGroupBatch("g", series)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := h.GroupSnapshot("g")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Seen != 600 || len(cmp.Members) != len(specs) {
		t.Fatalf("comparison: seen=%d members=%d", cmp.Seen, len(cmp.Members))
	}
	for i, m := range cmp.Members {
		if m.Summary.Seen != cmp.Seen {
			t.Errorf("member %d observed at %d ticks inside a %d-tick comparison", i, m.Summary.Seen, cmp.Seen)
		}
		ref, err := sampling.New(specs[i])
		if err != nil {
			t.Fatal(err)
		}
		ref.OfferBatch(series)
		if want := ref.Snapshot(); m.Summary.Kept != want.Kept || !sameFloat(m.Summary.Mean, want.Mean) {
			t.Errorf("member %d (%s): kept=%d mean=%g, standalone kept=%d mean=%g",
				i, specs[i], m.Summary.Kept, m.Summary.Mean, want.Kept, want.Mean)
		}
	}

	tails, fin, err := h.FinishGroup("g")
	if err != nil {
		t.Fatal(err)
	}
	if len(tails) != len(specs) || !fin.Finished {
		t.Fatalf("finish: %d tails, finished=%v", len(tails), fin.Finished)
	}
	if len(tails[2]) != 20 {
		t.Errorf("simple member tail has %d samples, want its full n=20 draw", len(tails[2]))
	}
	if _, _, err := h.FinishGroup("g"); !errors.Is(err, hub.ErrStreamNotFound) {
		t.Errorf("second group finish: got %v, want ErrStreamNotFound", err)
	}
	if err := h.CreateGroup("g", specs); err != nil {
		t.Errorf("group id not released after finish: %v", err)
	}

	st := h.Stats()
	if st.Groups != 1 || st.GroupsCreated != 2 {
		t.Errorf("group stats: %d live / %d created, want 1 / 2", st.Groups, st.GroupsCreated)
	}
	if st.GroupTicks != 600 {
		t.Errorf("group ticks = %d, want 600 (input ticks, not x members)", st.GroupTicks)
	}
	if want := int64(kept + len(tails[2])); st.GroupKept != want {
		t.Errorf("group kept = %d, want %d", st.GroupKept, want)
	}
	if st.Ticks != 0 || st.Streams != 0 {
		t.Errorf("group traffic leaked into stream counters: %+v", st)
	}
}

// TestHubGroupNamespace: groups and streams are separate id spaces —
// the same id can name one of each, and group ops never see streams.
func TestHubGroupNamespace(t *testing.T) {
	h := hub.New()
	if err := h.Create("x", sampling.MustParse("systematic:interval=2")); err != nil {
		t.Fatal(err)
	}
	if err := h.CreateGroup("x", groupSpecs()); err != nil {
		t.Errorf("group id colliding with stream id: %v", err)
	}
	if _, err := h.GroupSnapshot("ghost"); !errors.Is(err, hub.ErrStreamNotFound) {
		t.Errorf("snapshot of ghost group: got %v", err)
	}
	if _, err := h.OfferGroupBatch("ghost", []float64{1}); !errors.Is(err, hub.ErrStreamNotFound) {
		t.Errorf("offer to ghost group: got %v", err)
	}
	if _, err := h.Snapshot("ghost"); !errors.Is(err, hub.ErrStreamNotFound) {
		t.Errorf("stream snapshot must not see groups: got %v", err)
	}
	got := h.ListGroups()
	if len(got) != 1 || got[0] != "x" {
		t.Errorf("ListGroups = %v, want [x]", got)
	}
	if ids := h.List(); len(ids) != 1 || ids[0] != "x" {
		t.Errorf("List = %v, want [x]", ids)
	}
}

// TestHubGroupSweep: idle groups are evicted on the same TTL as
// streams, and group activity stamps keep busy groups alive.
func TestHubGroupSweep(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	h := hub.New(hub.WithIdleTTL(time.Minute), hub.WithClock(clk.Now))
	for _, id := range []string{"idle", "busy"} {
		if err := h.CreateGroup(id, groupSpecs()); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(45 * time.Second)
	if _, err := h.OfferGroupBatch("busy", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(30 * time.Second)
	if n := h.Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d, want 1", n)
	}
	if _, err := h.GroupSnapshot("idle"); !errors.Is(err, hub.ErrStreamNotFound) {
		t.Errorf("idle group survived sweep: %v", err)
	}
	if _, err := h.GroupSnapshot("busy"); err != nil {
		t.Errorf("busy group evicted: %v", err)
	}
	if st := h.Stats(); st.GroupsEvicted != 1 || st.Groups != 1 {
		t.Errorf("stats after sweep: %+v", st)
	}
}

// TestHubGroupOfferRacingFinish mirrors the stream race: once
// FinishGroup wins, OfferGroupBatch must fail with ErrStreamNotFound
// rather than report success for ticks no engine saw.
func TestHubGroupOfferRacingFinish(t *testing.T) {
	h := hub.New()
	if err := h.CreateGroup("g", groupSpecs()[:2]); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		var last error
		for i := 0; i < 100000; i++ {
			if _, err := h.OfferGroupBatch("g", []float64{1, 2, 3}); err != nil {
				last = err
				break
			}
		}
		done <- last
	}()
	if _, _, err := h.FinishGroup("g"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil && !errors.Is(err, hub.ErrStreamNotFound) {
		t.Errorf("group offer racing finish: got %v, want ErrStreamNotFound (or the writer finished first)", err)
	}
}
