package hub

// Durable state: a hub can cut a whole-process checkpoint of every
// live stream and group (plus its cumulative counters) and later
// rebuild itself from one, and individual streams can be exported,
// imported and detached as opaque state blobs — the primitives under
// sampled's -checkpoint-dir lifecycle and the cluster router's
// stream handoff.

import (
	"fmt"
	"slices"
	"strings"

	"repro/sampling"
	"repro/sampling/persist"
)

// Eviction describes one stream or group Sweep is about to finalize,
// handed to the hub's evict hook before Finish runs. Exactly one of
// Engine and Group is non-nil. The hook runs outside all shard locks;
// the engine is still live, so MarshalState captures its final state.
type Eviction struct {
	ID     string
	Engine *sampling.Engine // the evicted stream's engine, nil for groups
	Group  *sampling.Group  // the evicted comparison group, nil for streams
}

// WithEvictHook installs a callback Sweep invokes for every stream
// and group it evicts, after removal from the tables but before the
// engine is finalized — the window where a checkpointing service can
// persist a final snapshot of an idle stream that will never tick
// again. The hook runs synchronously on the Sweep caller's goroutine,
// outside all shard locks; a slow hook slows Sweep, never ingest.
func WithEvictHook(fn func(Eviction)) Option {
	return func(h *Hub) { h.evictHook = fn }
}

// Checkpoint cuts a consistent-enough snapshot of the whole hub into
// a persist container: every live stream and group's exact engine
// state plus the cumulative counters. The shard locks are held only
// to copy out id/engine pairs; the engine marshaling — the O(state)
// part — runs outside them, taking each engine's own lock briefly, so
// ingest on other streams never stalls behind a checkpoint. Streams
// that tick while the checkpoint is being cut land in it at whatever
// tick boundary their marshal observed — each stream's blob is
// internally exact, which is the invariant restore needs.
//
// The caller's hub clock stamps TakenAt; records come out sorted by
// id (List order), so identical hub state yields identical bytes.
func (h *Hub) Checkpoint() (*persist.Checkpoint, error) {
	ck := &persist.Checkpoint{TakenAtUnixNano: h.clock().UnixNano()}

	type liveStream struct {
		id string
		st *stream
	}
	type liveGroup struct {
		id string
		gs *groupStream
	}
	var streams []liveStream
	var groups []liveGroup
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.RLock()
		for id, st := range sh.streams {
			streams = append(streams, liveStream{id, st})
		}
		for id, gs := range sh.groups {
			groups = append(groups, liveGroup{id, gs})
		}
		sh.mu.RUnlock()
	}
	slices.SortFunc(streams, func(a, b liveStream) int { return strings.Compare(a.id, b.id) })
	slices.SortFunc(groups, func(a, b liveGroup) int { return strings.Compare(a.id, b.id) })

	for _, ls := range streams {
		blob, err := ls.st.engine.MarshalState()
		if err != nil {
			return nil, fmt.Errorf("hub: checkpointing stream %q: %w", ls.id, err)
		}
		ck.Streams = append(ck.Streams, persist.StreamRecord{
			ID:                 ls.id,
			LastActiveUnixNano: ls.st.lastActive.Load(),
			State:              blob,
		})
	}
	for _, lg := range groups {
		blob, err := lg.gs.group.MarshalState()
		if err != nil {
			return nil, fmt.Errorf("hub: checkpointing group %q: %w", lg.id, err)
		}
		ck.Groups = append(ck.Groups, persist.GroupRecord{
			ID:                 lg.id,
			LastActiveUnixNano: lg.gs.lastActive.Load(),
			State:              blob,
		})
	}

	// Counters are read after the tables: a stream created mid-cut may
	// be counted without appearing (harmless — Created is cumulative,
	// not a table length), but never the reverse.
	ck.Totals = persist.Totals{
		Created:       h.created.Load(),
		Evicted:       h.evicted.Load(),
		GroupsCreated: h.groupsCreated.Load(),
		GroupsEvicted: h.groupsEvicted.Load(),
	}
	for i := range h.shards {
		sh := &h.shards[i]
		ck.Totals.Ticks += sh.ticks.Load()
		ck.Totals.Kept += sh.kept.Load()
		ck.Totals.GroupTicks += sh.groupTicks.Load()
		ck.Totals.GroupKept += sh.groupKept.Load()
	}
	return ck, nil
}

// Restore rebuilds the hub's contents from a checkpoint: every record
// becomes a live engine with exactly the state it was checkpointed
// with, and the container's totals are folded into the hub's
// cumulative counters (so Stats spans the previous incarnation).
// Restore is all-or-nothing up front: every blob is decoded into an
// engine before any id is registered, so a corrupt record leaves the
// hub untouched. Restored streams are stamped active now, on the
// hub's clock — process downtime is not idleness, and a freshly
// restored hub must not mass-evict on its first Sweep. Restore is
// meant for an empty hub (boot); a colliding live id fails with
// ErrStreamExists after the decode pass, with nothing inserted.
func (h *Hub) Restore(ck *persist.Checkpoint) error {
	engines := make([]*sampling.Engine, len(ck.Streams))
	for i, rec := range ck.Streams {
		if rec.ID == "" {
			return fmt.Errorf("hub: checkpoint stream record %d: empty id: %w", i, ErrInvalidID)
		}
		eng, err := sampling.RestoreEngine(rec.State, sampling.WithClock(h.clock))
		if err != nil {
			return fmt.Errorf("hub: restoring stream %q: %w", rec.ID, err)
		}
		engines[i] = eng
	}
	grps := make([]*sampling.Group, len(ck.Groups))
	for i, rec := range ck.Groups {
		if rec.ID == "" {
			return fmt.Errorf("hub: checkpoint group record %d: empty id: %w", i, ErrInvalidID)
		}
		grp, err := sampling.RestoreGroup(rec.State, sampling.WithClock(h.clock))
		if err != nil {
			return fmt.Errorf("hub: restoring group %q: %w", rec.ID, err)
		}
		grps[i] = grp
	}
	// Collision check before insertion keeps the operation atomic with
	// a single writer (the boot path); concurrent creators racing a
	// Restore would still be caught by the per-shard dup check below.
	for _, rec := range ck.Streams {
		if _, st, _ := h.get(rec.ID); st != nil {
			return fmt.Errorf("hub: restoring stream %q: %w", rec.ID, ErrStreamExists)
		}
	}
	for _, rec := range ck.Groups {
		if _, gs, _ := h.getGroup(rec.ID); gs != nil {
			return fmt.Errorf("hub: restoring group %q: %w", rec.ID, ErrStreamExists)
		}
	}
	now := h.clock().UnixNano()
	for i, rec := range ck.Streams {
		st := &stream{engine: engines[i]}
		st.lastActive.Store(now)
		sh := h.shardOf(rec.ID)
		sh.mu.Lock()
		if _, dup := sh.streams[rec.ID]; dup {
			sh.mu.Unlock()
			return fmt.Errorf("hub: restoring stream %q: %w", rec.ID, ErrStreamExists)
		}
		sh.streams[rec.ID] = st
		sh.mu.Unlock()
	}
	for i, rec := range ck.Groups {
		gs := &groupStream{group: grps[i]}
		gs.lastActive.Store(now)
		sh := h.shardOf(rec.ID)
		sh.mu.Lock()
		if _, dup := sh.groups[rec.ID]; dup {
			sh.mu.Unlock()
			return fmt.Errorf("hub: restoring group %q: %w", rec.ID, ErrStreamExists)
		}
		sh.groups[rec.ID] = gs
		sh.mu.Unlock()
	}
	// The checkpoint's totals fold into this incarnation's counters.
	// Tick/kept counters are striped; shard 0 absorbs the carried
	// totals — Stats only ever sums them.
	h.created.Add(ck.Totals.Created)
	h.evicted.Add(ck.Totals.Evicted)
	h.groupsCreated.Add(ck.Totals.GroupsCreated)
	h.groupsEvicted.Add(ck.Totals.GroupsEvicted)
	h.shards[0].ticks.Add(ck.Totals.Ticks)
	h.shards[0].kept.Add(ck.Totals.Kept)
	h.shards[0].groupTicks.Add(ck.Totals.GroupTicks)
	h.shards[0].groupKept.Add(ck.Totals.GroupKept)
	return nil
}

// StreamState exports one live stream's exact engine state as a
// framed blob (Engine.MarshalState) without disturbing it — one half
// of the cluster handoff protocol.
func (h *Hub) StreamState(id string) ([]byte, error) {
	_, st, err := h.get(id)
	if err != nil {
		return nil, err
	}
	return st.engine.MarshalState()
}

// RestoreStream registers a new stream under id from an exported
// state blob — the other half of the handoff protocol. The id must
// not be live; the blob must be a valid engine state. A handed-off
// stream counts as created on this hub.
func (h *Hub) RestoreStream(id string, state []byte) error {
	if id == "" {
		return fmt.Errorf("hub: empty stream id: %w", ErrInvalidID)
	}
	eng, err := sampling.RestoreEngine(state, sampling.WithClock(h.clock))
	if err != nil {
		return err
	}
	st := &stream{engine: eng}
	st.lastActive.Store(h.clock().UnixNano())
	sh := h.shardOf(id)
	sh.mu.Lock()
	if _, dup := sh.streams[id]; dup {
		sh.mu.Unlock()
		return fmt.Errorf("hub: stream %q: %w", id, ErrStreamExists)
	}
	sh.streams[id] = st
	sh.mu.Unlock()
	h.created.Add(1)
	return nil
}

// GroupState exports one live comparison group's exact state
// (Group.MarshalState) without disturbing it.
func (h *Hub) GroupState(id string) ([]byte, error) {
	_, gs, err := h.getGroup(id)
	if err != nil {
		return nil, err
	}
	return gs.group.MarshalState()
}

// RestoreGroupState registers a new comparison group under id from an
// exported state blob, mirroring RestoreStream.
func (h *Hub) RestoreGroupState(id string, state []byte) error {
	if id == "" {
		return fmt.Errorf("hub: empty group id: %w", ErrInvalidID)
	}
	grp, err := sampling.RestoreGroup(state, sampling.WithClock(h.clock))
	if err != nil {
		return err
	}
	gs := &groupStream{group: grp}
	gs.lastActive.Store(h.clock().UnixNano())
	sh := h.shardOf(id)
	sh.mu.Lock()
	if _, dup := sh.groups[id]; dup {
		sh.mu.Unlock()
		return fmt.Errorf("hub: group %q: %w", id, ErrStreamExists)
	}
	sh.groups[id] = gs
	sh.mu.Unlock()
	h.groupsCreated.Add(1)
	return nil
}

// Detach exports a stream's state and removes it from the hub without
// finalizing the engine — the source side of a completed handoff: the
// stream lives on elsewhere, so running Finish here (draining the
// reservoir, closing the estimators) would be wrong. The state blob
// and the removal are atomic under the shard lock, so no tick can
// slip in between export and removal.
func (h *Hub) Detach(id string) ([]byte, error) {
	sh := h.shardOf(id)
	sh.mu.Lock()
	st := sh.streams[id]
	if st == nil {
		sh.mu.Unlock()
		return nil, fmt.Errorf("hub: stream %q: %w", id, ErrStreamNotFound)
	}
	blob, err := st.engine.MarshalState()
	if err != nil {
		sh.mu.Unlock()
		return nil, fmt.Errorf("hub: detaching stream %q: %w", id, err)
	}
	delete(sh.streams, id)
	sh.mu.Unlock()
	return blob, nil
}

// DetachGroup is Detach for the group namespace.
func (h *Hub) DetachGroup(id string) ([]byte, error) {
	sh := h.shardOf(id)
	sh.mu.Lock()
	gs := sh.groups[id]
	if gs == nil {
		sh.mu.Unlock()
		return nil, fmt.Errorf("hub: group %q: %w", id, ErrStreamNotFound)
	}
	blob, err := gs.group.MarshalState()
	if err != nil {
		sh.mu.Unlock()
		return nil, fmt.Errorf("hub: detaching group %q: %w", id, err)
	}
	delete(sh.groups, id)
	sh.mu.Unlock()
	return blob, nil
}
