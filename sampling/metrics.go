package sampling

import "repro/internal/core"

// MeanOf returns the plain average of the sampled values — the estimator
// of the process mean the whole paper is about. NaN for no samples.
func MeanOf(samples []Sample) float64 { return core.MeanOf(samples) }

// CountKinds returns how many base and qualified (BSS extra) samples the
// slice holds.
func CountKinds(samples []Sample) (base, qualified int) { return core.CountKinds(samples) }

// Eta returns the paper's relative mean bias eta = 1 - sampledMean/realMean
// (Eq. 21). Positive eta means under-estimation.
func Eta(sampledMean, realMean float64) float64 { return core.Eta(sampledMean, realMean) }

// Overhead is the paper's BSS cost metric: qualified samples divided by
// base (systematic) samples. NaN when there are no base samples.
func Overhead(samples []Sample) float64 { return core.Overhead(samples) }

// Efficiency is the paper's Section VI metric e = (1 - |eta|) / log10(Nt),
// rewarding accuracy per order of magnitude of samples taken.
func Efficiency(eta float64, totalSamples int) float64 { return core.Efficiency(eta, totalSamples) }

// SampledSeries extracts the sample values in time order — the "sampled
// process" g(t) whose Hurst parameter the paper's Sections III and VI
// estimate.
func SampledSeries(samples []Sample) []float64 { return core.SampledSeries(samples) }

// IntervalForRate maps a sampling rate r in (0,1] to the base
// interval: 1/r rounded to the nearest integer — halves round up (away
// from zero), so r = 0.4 gives interval 3, not 2 — and never below 1,
// so any r above 2/3 keeps every tick. It is the conversion rule
// shared by the spec registry and the CLIs; the achieved rate is
// 1/interval, which differs from r whenever 1/r is not an integer.
// Rates outside (0,1] (including NaN) are an error.
func IntervalForRate(rate float64) (int, error) { return core.IntervalForRate(rate) }
