// Package persist defines the durable checkpoint container for a
// whole serving process: every live stream and comparison group of a
// hub, each as an opaque engine-state blob (sampling.MarshalState
// framing, self-checksummed), plus the hub's cumulative counters and
// the instant the snapshot was taken. The container is what sampled
// writes to -checkpoint-dir on a timer and on shutdown, and what the
// cluster router ships between nodes when stream ownership moves.
//
// The framing mirrors sampling/wire and the engine-state codec: a
// little-endian magic, a version byte, the payload, and a CRC-32
// (IEEE) trailer over everything before it. Corruption, truncation
// and version skew surface as typed errors before any record is
// interpreted; the per-engine blobs inside carry their own framing
// and are re-validated when they are restored into engines.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "Ckp1" (0x31706b43 little-endian)
//	4       1     version (currently 1)
//	5       8     taken-at (int64 unix nanoseconds, caller-supplied)
//	13      64    totals (8 x int64: ticks, kept, group ticks, group
//	              kept, created, evicted, groups created, groups
//	              evicted)
//	...           u32 stream count, then per stream: u32-length-
//	              prefixed id, int64 last-active unix nanoseconds,
//	              u32-length-prefixed engine-state blob
//	...           u32 group count, then per group: the same triple
//	              with a group-state blob
//	end-4   4     CRC-32 (IEEE) of bytes [0, end-4)
//
// The package holds no clock and no filesystem state beyond the two
// explicit file helpers: timestamps come in from the caller, so
// checkpoint bytes are a pure function of hub state and the supplied
// instant.
package persist

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/binenc"
)

const (
	checkpointMagic uint32 = 0x31706b43 // "Ckp1" little-endian
	// Version is the current checkpoint container version.
	Version = 1
)

// The typed failure modes of Decode; branch with errors.Is.
var (
	// ErrBadCheckpoint is wrapped by Decode for blobs that are
	// structurally unusable: too short, wrong magic, truncated or
	// malformed records.
	ErrBadCheckpoint = errors.New("bad checkpoint")
	// ErrCheckpointVersion is wrapped when the container version is not
	// one this build reads.
	ErrCheckpointVersion = errors.New("unsupported checkpoint version")
	// ErrCheckpointChecksum is wrapped when the CRC trailer does not
	// match the content — bit rot or a torn write.
	ErrCheckpointChecksum = errors.New("checkpoint checksum mismatch")
)

// Totals carries the hub's cumulative counters through a restart, so
// a restored process reports lifetime tick/kept/eviction totals that
// include everything the previous incarnation served.
type Totals struct {
	Ticks         int64
	Kept          int64
	GroupTicks    int64
	GroupKept     int64
	Created       int64
	Evicted       int64
	GroupsCreated int64
	GroupsEvicted int64
}

// StreamRecord is one checkpointed stream: its hub id, its last
// activity stamp (informational — a restoring hub re-stamps activity
// at restore time so downtime does not count as idleness), and the
// opaque engine-state blob from Engine.MarshalState.
type StreamRecord struct {
	ID                 string
	LastActiveUnixNano int64
	State              []byte
}

// GroupRecord is the comparison-group counterpart of StreamRecord;
// State comes from Group.MarshalState.
type GroupRecord struct {
	ID                 string
	LastActiveUnixNano int64
	State              []byte
}

// Checkpoint is one whole-process snapshot, ready to encode to a
// single file or HTTP body.
type Checkpoint struct {
	// TakenAtUnixNano is the instant the snapshot was cut, supplied by
	// the caller's clock (the package itself never reads time).
	TakenAtUnixNano int64
	Totals          Totals
	Streams         []StreamRecord
	Groups          []GroupRecord
}

// Encode serializes the checkpoint into the framed, checksummed v1
// container.
func (c *Checkpoint) Encode() []byte {
	b := binenc.AppendU32(nil, checkpointMagic)
	b = binenc.AppendU8(b, Version)
	b = binenc.AppendI64(b, c.TakenAtUnixNano)
	b = binenc.AppendI64(b, c.Totals.Ticks)
	b = binenc.AppendI64(b, c.Totals.Kept)
	b = binenc.AppendI64(b, c.Totals.GroupTicks)
	b = binenc.AppendI64(b, c.Totals.GroupKept)
	b = binenc.AppendI64(b, c.Totals.Created)
	b = binenc.AppendI64(b, c.Totals.Evicted)
	b = binenc.AppendI64(b, c.Totals.GroupsCreated)
	b = binenc.AppendI64(b, c.Totals.GroupsEvicted)
	b = binenc.AppendU32(b, uint32(len(c.Streams)))
	for i := range c.Streams {
		b = binenc.AppendString(b, c.Streams[i].ID)
		b = binenc.AppendI64(b, c.Streams[i].LastActiveUnixNano)
		b = binenc.AppendBytes(b, c.Streams[i].State)
	}
	b = binenc.AppendU32(b, uint32(len(c.Groups)))
	for i := range c.Groups {
		b = binenc.AppendString(b, c.Groups[i].ID)
		b = binenc.AppendI64(b, c.Groups[i].LastActiveUnixNano)
		b = binenc.AppendBytes(b, c.Groups[i].State)
	}
	return binenc.AppendU32(b, crc32.ChecksumIEEE(b))
}

// minRecordSize bounds how small one encoded stream/group record can
// be (empty id, empty state): two length prefixes plus the activity
// stamp. Declared counts are checked against it before any allocation
// so a corrupt count cannot demand absurd memory.
const minRecordSize = 4 + 8 + 4

// Decode parses and validates a v1 container. Framing problems come
// back as ErrBadCheckpoint / ErrCheckpointVersion /
// ErrCheckpointChecksum; the engine blobs inside are not interpreted
// here (hub.Restore does that, engine by engine). Record byte slices
// are copies — the returned checkpoint does not alias data.
func Decode(data []byte) (*Checkpoint, error) {
	const overhead = 4 + 1 + 4 // magic + version + crc
	if len(data) < overhead {
		return nil, fmt.Errorf("persist: %d-byte blob is smaller than the container framing: %w", len(data), ErrBadCheckpoint)
	}
	r := binenc.NewReader(data)
	if got := r.U32(); got != checkpointMagic {
		return nil, fmt.Errorf("persist: magic %#08x, want %#08x: %w", got, checkpointMagic, ErrBadCheckpoint)
	}
	if v := r.U8(); v != Version {
		return nil, fmt.Errorf("persist: container version %d, want %d: %w", v, Version, ErrCheckpointVersion)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	want := binenc.NewReader(trailer).U32()
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("persist: crc %#08x, want %#08x: %w", got, want, ErrCheckpointChecksum)
	}
	r = binenc.NewReader(body[4+1:])
	ck := &Checkpoint{TakenAtUnixNano: r.I64()}
	ck.Totals.Ticks = r.I64()
	ck.Totals.Kept = r.I64()
	ck.Totals.GroupTicks = r.I64()
	ck.Totals.GroupKept = r.I64()
	ck.Totals.Created = r.I64()
	ck.Totals.Evicted = r.I64()
	ck.Totals.GroupsCreated = r.I64()
	ck.Totals.GroupsEvicted = r.I64()
	var err error
	if ck.Streams, err = readRecords(r, "stream"); err != nil {
		return nil, err
	}
	groups, err := readRecords(r, "group")
	if err != nil {
		return nil, err
	}
	for _, g := range groups {
		ck.Groups = append(ck.Groups, GroupRecord(g))
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("persist: %v: %w", err, ErrBadCheckpoint)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("persist: %d trailing bytes after the last record: %w", r.Remaining(), ErrBadCheckpoint)
	}
	return ck, nil
}

// readRecords reads one u32-counted record section, holding the
// declared count against the bytes actually present before any
// allocation.
func readRecords(r *binenc.Reader, kind string) ([]StreamRecord, error) {
	n := int(r.U32())
	if r.Err() == nil && n*minRecordSize > r.Remaining() {
		return nil, fmt.Errorf("persist: %s count %d exceeds the %d bytes remaining: %w", kind, n, r.Remaining(), ErrBadCheckpoint)
	}
	if r.Err() != nil || n == 0 {
		return nil, nil
	}
	out := make([]StreamRecord, 0, n)
	for i := 0; i < n; i++ {
		rec := StreamRecord{
			ID:                 r.String(),
			LastActiveUnixNano: r.I64(),
		}
		rec.State = append([]byte(nil), r.Bytes()...)
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("persist: %s record %d: %v: %w", kind, i, err, ErrBadCheckpoint)
		}
		out = append(out, rec)
	}
	return out, nil
}

// WriteFile encodes the checkpoint and writes it to path atomically:
// the bytes land in a temp file in the same directory, are synced,
// and replace path in a single rename, so a reader (or a crash) never
// observes a half-written checkpoint.
func WriteFile(path string, c *Checkpoint) error {
	data := c.Encode()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: creating temp checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: publishing checkpoint: %w", err)
	}
	return nil
}

// ReadFile reads and decodes a checkpoint written by WriteFile.
func ReadFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: reading checkpoint: %w", err)
	}
	return Decode(data)
}
