package persist_test

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/binenc"
	"repro/sampling"
	"repro/sampling/hub"
	"repro/sampling/persist"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/checkpoint_v1.golden from the current output")

// fixedClock pins every timestamp a checkpoint can absorb, so the
// container bytes are a pure function of the offered ticks.
func fixedClock() time.Time { return time.Unix(1700000000, 0).UTC() }

// persistTrace is a deterministic mildly bursty series (no RNG, so the
// test is self-seeding).
func persistTrace(n int) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = 1 + math.Sin(float64(i)/7)*math.Cos(float64(i)/101) + float64(i%13)/13
	}
	return f
}

// persistSpecs covers all five techniques plus a budgeted engine.
var persistSpecs = []string{
	"systematic:interval=16,offset=3",
	"stratified:interval=16,seed=11",
	"simple:n=32,seed=11",
	"simple:rate=0.01,seed=11",
	"bernoulli:rate=0.05,seed=11",
	"bss:interval=32,L=3,eps=0.8",
}

// buildHub assembles a deterministic hub: one stream per spec (the
// first carrying an estimator), plus one comparison group, all fed the
// same trace.
func buildHub(t testing.TB, ticks int) *hub.Hub {
	t.Helper()
	h := hub.New(hub.WithClock(fixedClock))
	f := persistTrace(ticks)
	for i, spec := range persistSpecs {
		id := fmt.Sprintf("s%02d", i)
		var opts []sampling.Option
		if i == 0 {
			opts = append(opts, sampling.WithEstimator("aggvar"))
		}
		if err := h.Create(id, sampling.MustParse(spec), opts...); err != nil {
			t.Fatalf("create %s: %v", spec, err)
		}
		if _, err := h.OfferBatch(id, f); err != nil {
			t.Fatalf("offer %s: %v", spec, err)
		}
	}
	specs := []sampling.Spec{
		sampling.MustParse("systematic:interval=16"),
		sampling.MustParse("bernoulli:rate=0.05,seed=3"),
	}
	if err := h.CreateGroup("g00", specs, sampling.WithEstimator("wavelet")); err != nil {
		t.Fatalf("create group: %v", err)
	}
	if _, err := h.OfferGroupBatch("g00", f); err != nil {
		t.Fatalf("offer group: %v", err)
	}
	return h
}

// TestCheckpointFileRoundTrip drives the full durability path:
// checkpoint a live hub, write the container atomically, read it back,
// restore into a fresh hub, and require that the restored hub carries
// the same streams, counters and — after feeding both hubs the same
// suffix — the same kept counts and summaries.
func TestCheckpointFileRoundTrip(t *testing.T) {
	const cut, total = 4096, 8192
	live := buildHub(t, cut)
	ck, err := live.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "hub.ckpt")
	if err := persist.WriteFile(path, ck); err != nil {
		t.Fatal(err)
	}
	read, err := persist.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if read.TakenAtUnixNano != fixedClock().UnixNano() {
		t.Fatalf("TakenAt = %d, want the hub clock's instant", read.TakenAtUnixNano)
	}

	restored := hub.New(hub.WithClock(fixedClock))
	if err := restored.Restore(read); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.List(), live.List(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("restored streams %v, want %v", got, want)
	}
	if got, want := restored.ListGroups(), live.ListGroups(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("restored groups %v, want %v", got, want)
	}
	ls, rs := live.Stats(), restored.Stats()
	if ls.Ticks != rs.Ticks || ls.Kept != rs.Kept || ls.Created != rs.Created ||
		ls.GroupTicks != rs.GroupTicks || ls.GroupKept != rs.GroupKept || ls.GroupsCreated != rs.GroupsCreated {
		t.Fatalf("restored stats %+v diverge from live %+v", rs, ls)
	}

	suffix := persistTrace(total)[cut:]
	for _, id := range live.List() {
		ka, err := live.OfferBatch(id, suffix)
		if err != nil {
			t.Fatal(err)
		}
		kb, err := restored.OfferBatch(id, suffix)
		if err != nil {
			t.Fatal(err)
		}
		if ka != kb {
			t.Fatalf("stream %s: live kept %d after restart, restored kept %d", id, ka, kb)
		}
		sa, _ := live.Snapshot(id)
		sb, _ := restored.Snapshot(id)
		if sa.Seen != sb.Seen || sa.Kept != sb.Kept || sa.Qualified != sb.Qualified {
			t.Fatalf("stream %s: summaries diverge: %+v vs %+v", id, sa, sb)
		}
	}
	ga, err := live.OfferGroupBatch("g00", suffix)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := restored.OfferGroupBatch("g00", suffix)
	if err != nil {
		t.Fatal(err)
	}
	if ga != gb {
		t.Fatalf("group kept %d vs %d after restore", ga, gb)
	}
}

// TestCheckpointGolden pins the v1 container byte layout to a
// committed golden file: a fixed hub must checkpoint to the identical
// bytes, build after build. A diff means the state codec changed — if
// intended, bump the version story, regenerate with
//
//	go test ./sampling/persist -run TestCheckpointGolden -update
//
// and call the layout change out in the commit message; if not, it is
// a wire regression that would strand existing checkpoint files.
func TestCheckpointGolden(t *testing.T) {
	h := buildHub(t, 2048)
	ck, err := h.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	data := ck.Encode()
	path := filepath.Join("testdata", "checkpoint_v1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(data))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to generate): %v", err)
	}
	if !bytes.Equal(data, want) {
		i := 0
		for i < len(data) && i < len(want) && data[i] == want[i] {
			i++
		}
		t.Fatalf("checkpoint bytes drifted from the committed v1 layout at offset %d (got %d bytes, want %d): regenerate with -update ONLY if the layout change is intentional", i, len(data), len(want))
	}
	// The golden file must still restore — layout stability is only
	// useful if old files stay loadable.
	ck2, err := persist.Decode(want)
	if err != nil {
		t.Fatalf("golden no longer decodes: %v", err)
	}
	fresh := hub.New(hub.WithClock(fixedClock))
	if err := fresh.Restore(ck2); err != nil {
		t.Fatalf("golden no longer restores: %v", err)
	}
}

// TestDecodeRejectsCorruption holds Decode's typed errors against the
// classic failure modes: truncation, foreign bytes, version skew, bit
// rot, and a hostile record count.
func TestDecodeRejectsCorruption(t *testing.T) {
	h := buildHub(t, 512)
	ck, err := h.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	valid := ck.Encode()

	if _, err := persist.Decode(valid[:5]); !errors.Is(err, persist.ErrBadCheckpoint) {
		t.Fatalf("truncated: %v, want ErrBadCheckpoint", err)
	}
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xFF
	if _, err := persist.Decode(bad); !errors.Is(err, persist.ErrBadCheckpoint) {
		t.Fatalf("bad magic: %v, want ErrBadCheckpoint", err)
	}
	bad = append([]byte(nil), valid...)
	bad[4] = 99
	if _, err := persist.Decode(bad); !errors.Is(err, persist.ErrCheckpointVersion) {
		t.Fatalf("version 99: %v, want ErrCheckpointVersion", err)
	}
	bad = append([]byte(nil), valid...)
	bad[len(bad)/2] ^= 0x10
	if _, err := persist.Decode(bad); !errors.Is(err, persist.ErrCheckpointChecksum) {
		t.Fatalf("flipped bit: %v, want ErrCheckpointChecksum", err)
	}
	if _, err := persist.Decode(hostileCount()); !errors.Is(err, persist.ErrBadCheckpoint) {
		t.Fatalf("hostile count: %v, want ErrBadCheckpoint", err)
	}
	// Trailing garbage after the last record, CRC recomputed so only
	// the length check can catch it.
	empty := (&persist.Checkpoint{}).Encode()
	junk := append(empty[:len(empty)-4], 1, 2, 3)
	junk = binenc.AppendU32(junk, crc32.ChecksumIEEE(junk))
	if _, err := persist.Decode(junk); !errors.Is(err, persist.ErrBadCheckpoint) {
		t.Fatalf("trailing bytes: %v, want ErrBadCheckpoint", err)
	}
}

// hostileCount hand-assembles a correctly framed container whose
// stream count demands far more records than the bytes that follow —
// the allocation-bomb shape Decode must reject before reserving
// memory.
func hostileCount() []byte {
	b := (&persist.Checkpoint{}).Encode()
	b = b[:len(b)-4-8] // drop both zero counts and the CRC
	b = binenc.AppendU32(b, 1<<30)
	b = binenc.AppendU32(b, 0)
	return binenc.AppendU32(b, crc32.ChecksumIEEE(b))
}

// TestWriteFileAtomic: the published file always decodes, and the
// temp file never outlives a successful write.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hub.ckpt")
	for i := 0; i < 3; i++ {
		ck := &persist.Checkpoint{TakenAtUnixNano: int64(i)}
		if err := persist.WriteFile(path, ck); err != nil {
			t.Fatal(err)
		}
		got, err := persist.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.TakenAtUnixNano != int64(i) {
			t.Fatalf("read TakenAt %d after write %d — stale file survived the rename", got.TakenAtUnixNano, i)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after writes, want only the checkpoint (temp files leaked)", len(entries))
	}
}

// FuzzRestoreState throws mutated containers at the full restore path:
// Decode, then every embedded engine/group blob through the sampling
// codec. Nothing may panic and nothing may over-allocate; errors are
// the expected outcome for mutated bytes.
func FuzzRestoreState(f *testing.F) {
	h := buildHub(f, 256)
	ck, err := h.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	valid := ck.Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add((&persist.Checkpoint{}).Encode())
	if len(ck.Streams) > 0 {
		f.Add(ck.Streams[0].State) // an engine blob where a container belongs
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := persist.Decode(data)
		if err != nil {
			return
		}
		for _, rec := range ck.Streams {
			if _, err := sampling.RestoreEngine(rec.State); err != nil {
				continue
			}
		}
		for _, rec := range ck.Groups {
			if _, err := sampling.RestoreGroup(rec.State); err != nil {
				continue
			}
		}
	})
}

// BenchmarkCheckpoint measures cutting and encoding a whole-hub
// snapshot — the work the -checkpoint-interval timer pays while
// ingest keeps running.
func BenchmarkCheckpoint(b *testing.B) {
	h := benchHub(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ck, err := h.Checkpoint()
		if err != nil {
			b.Fatal(err)
		}
		if len(ck.Encode()) == 0 {
			b.Fatal("empty checkpoint")
		}
	}
}

// BenchmarkRestoreState measures the boot path: decode a container
// and rebuild every engine in a fresh hub.
func BenchmarkRestoreState(b *testing.B) {
	h := benchHub(b)
	ck, err := h.Checkpoint()
	if err != nil {
		b.Fatal(err)
	}
	data := ck.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ck, err := persist.Decode(data)
		if err != nil {
			b.Fatal(err)
		}
		fresh := hub.New(hub.WithClock(fixedClock))
		if err := fresh.Restore(ck); err != nil {
			b.Fatal(err)
		}
	}
}

// benchHub is the benchmark corpus: 64 streams rotating over the five
// techniques, 2048 ticks each.
func benchHub(b *testing.B) *hub.Hub {
	b.Helper()
	h := hub.New(hub.WithClock(fixedClock))
	f := persistTrace(2048)
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("bench-%03d", i)
		spec := sampling.MustParse(persistSpecs[i%len(persistSpecs)])
		if err := h.Create(id, spec); err != nil {
			b.Fatal(err)
		}
		if _, err := h.OfferBatch(id, f); err != nil {
			b.Fatal(err)
		}
	}
	return h
}
