package sampling

import "repro/internal/core"

// BSSDesign is the paper's BSS parameter theory (Section V): the
// relationships between the tail index alpha, the threshold multiplier
// epsilon, the extra-sample count L, the bias ratio xi and the overhead,
// with solvers for each direction (LUnbiased, EpsForTarget,
// OptimalDesign, DesignForRate, ...).
type BSSDesign = core.BSSDesign

// NewBSSDesign validates the traffic tail index alpha and returns the
// design calculator for it.
func NewBSSDesign(alpha float64) (BSSDesign, error) { return core.NewBSSDesign(alpha) }

// EtaFromRate is the paper's eta(r) convergence law (Eq. 35): the
// typical systematic-sampling bias at rate r for tail index alpha and
// fitted constant cs.
func EtaFromRate(rate, alpha, cs float64) float64 { return core.EtaFromRate(rate, alpha, cs) }
