package sampling

import (
	"testing"
)

// specCases holds representative spec strings per registered technique.
// TestRoundTripCoversEveryTechnique fails when a newly registered
// technique has no entry here, keeping the property test honest.
var specCases = map[string][]string{
	"systematic": {
		"systematic:interval=1000",
		"systematic:interval=1000,offset=13",
		"systematic:rate=1e-3",
	},
	"stratified": {
		"stratified:interval=100,seed=7",
		"stratified:rate=0.01",
	},
	"simple": {
		"simple:n=50,seed=3",
		"simple:rate=0.01",
	},
	"simple-random": {
		"simple-random:n=50,seed=3",
		"simple-random:rate=1e-2,seed=9",
	},
	"bernoulli": {
		"bernoulli:rate=0.05,seed=4",
	},
	"bss": {
		"bss:rate=1e-3,L=10,eps=1.0",
		"bss:interval=1000,offset=3,L=5,eps=1.2,pre=20",
		"bss:interval=100,L=5,ath=2.5,placement=chase",
	},
}

// TestSpecRoundTrip is the round-trip property: for every registered
// technique and representative parameter set, Parse(s).String()
// re-parses to an equal Spec, and String() is a canonical fixed point.
func TestSpecRoundTrip(t *testing.T) {
	for technique, specs := range specCases {
		for _, s := range specs {
			spec, err := Parse(s)
			if err != nil {
				t.Fatalf("Parse(%q): %v", s, err)
			}
			if spec.Technique != technique {
				t.Errorf("Parse(%q).Technique = %q, want %q", s, spec.Technique, technique)
			}
			canonical := spec.String()
			back, err := Parse(canonical)
			if err != nil {
				t.Fatalf("Parse(%q) of canonical form: %v", canonical, err)
			}
			if !back.Equal(spec) {
				t.Errorf("round trip of %q: got %+v, want %+v", s, back, spec)
			}
			if again := back.String(); again != canonical {
				t.Errorf("String not canonical for %q: %q then %q", s, canonical, again)
			}
			// The canonical form must build the same engine the original does.
			if _, err := New(back); err != nil {
				t.Errorf("New(Parse(%q)): %v", canonical, err)
			}
		}
	}
}

func TestRoundTripCoversEveryTechnique(t *testing.T) {
	for _, name := range Techniques() {
		if len(specCases[name]) == 0 {
			t.Errorf("registered technique %q has no round-trip spec case; add one to specCases", name)
		}
	}
}

func TestSpecStringBareName(t *testing.T) {
	for _, s := range []string{"systematic", "systematic:"} {
		spec, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := spec.String(); got != "systematic" {
			t.Errorf("Parse(%q).String() = %q, want bare name", s, got)
		}
	}
}

func TestSpecWithDoesNotMutate(t *testing.T) {
	base := MustParse("systematic:interval=10")
	mod := base.With("offset", "3")
	if _, ok := base.Param("offset"); ok {
		t.Error("With mutated the receiver")
	}
	if v, ok := mod.Param("offset"); !ok || v != "3" {
		t.Errorf("With did not set the parameter: %+v", mod)
	}
	if base.Equal(mod) {
		t.Error("modified spec compares equal to the base")
	}
}

func TestSpecEqualNilVsEmptyParams(t *testing.T) {
	a := Spec{Technique: "systematic"}
	b := Spec{Technique: "systematic", Params: map[string]string{}}
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("nil and empty parameter maps should compare equal")
	}
}
