package sampling

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	cases := []Spec{
		MustParse("systematic:interval=1000,offset=13"),
		MustParse("bss:rate=1e-3,L=10,eps=1.0"),
		MustParse("bernoulli:rate=0.01,seed=7"),
		{Technique: "systematic"},
		{Technique: "custom", Params: map[string]string{"odd value": "a=b,c"}},
	}
	for _, want := range cases {
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("marshal %v: %v", want, err)
		}
		var got Spec
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !got.Equal(want) {
			t.Errorf("round trip changed the spec: %v -> %s -> %v", want, data, got)
		}
	}
}

func TestSpecJSONOmitsEmptyParams(t *testing.T) {
	data, err := json.Marshal(Spec{Technique: "systematic"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "params") {
		t.Errorf("empty params serialized: %s", data)
	}
}

func TestSpecJSONAcceptsStringForm(t *testing.T) {
	var got Spec
	if err := json.Unmarshal([]byte(`"bss:rate=1e-3,L=10"`), &got); err != nil {
		t.Fatal(err)
	}
	want := MustParse("bss:rate=1e-3,L=10")
	if !got.Equal(want) {
		t.Errorf("string form parsed to %v, want %v", got, want)
	}
	if err := json.Unmarshal([]byte(`":broken"`), &got); err == nil {
		t.Error("bad spec string unmarshaled without error")
	}
}

func TestSpecJSONRejectsMissingTechnique(t *testing.T) {
	var got Spec
	if err := json.Unmarshal([]byte(`{"params":{"rate":"0.1"}}`), &got); err == nil {
		t.Error("spec object without technique unmarshaled without error")
	}
}

func TestSpecJSONRejectsUnknownFields(t *testing.T) {
	var got Spec
	// A typo'd "parms" key must fail loudly, not silently drop every
	// parameter.
	if err := json.Unmarshal([]byte(`{"technique":"systematic","parms":{"interval":"10"}}`), &got); err == nil {
		t.Error("spec object with unknown field unmarshaled without error")
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	at := time.Date(2026, 7, 27, 12, 0, 0, 123456789, time.UTC)
	eng, err := New(MustParse("systematic:interval=2"), WithClock(func() time.Time { return at }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Sample([]float64{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	want := eng.Snapshot()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	if got.Technique != want.Technique || got.Spec != want.Spec ||
		got.Seen != want.Seen || got.Kept != want.Kept ||
		got.Qualified != want.Qualified || got.Budget != want.Budget ||
		got.Mean != want.Mean || got.Variance != want.Variance ||
		got.CILow != want.CILow || got.CIHigh != want.CIHigh ||
		got.Finished != want.Finished || got.Uptime != want.Uptime ||
		!got.At.Equal(want.At) {
		t.Errorf("round trip changed the summary:\n got %+v\nwant %+v", got, want)
	}
}

func TestSummaryJSONNaNBecomesNull(t *testing.T) {
	s := Summary{Technique: "systematic", Mean: math.NaN(), Variance: math.NaN(),
		CILow: math.NaN(), CIHigh: math.NaN(), At: time.Unix(0, 0).UTC()}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("NaN summary failed to marshal: %v", err)
	}
	for _, key := range []string{`"mean":null`, `"variance":null`, `"ci_low":null`, `"ci_high":null`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("missing %s in %s", key, data)
		}
	}
	var got Summary
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.Mean) || !math.IsNaN(got.Variance) || !math.IsNaN(got.CILow) || !math.IsNaN(got.CIHigh) {
		t.Errorf("null moments did not come back as NaN: %+v", got)
	}
}

func TestSummaryJSONError(t *testing.T) {
	eng, err := New(MustParse("simple:n=5"))
	if err != nil {
		t.Fatal(err)
	}
	// A 3-tick stream cannot yield 5 simple random samples: Finish errors
	// and the snapshot carries the deferred error.
	eng.Offer(1)
	eng.Offer(2)
	eng.Offer(3)
	if _, err := eng.Finish(); err == nil {
		t.Fatal("expected a finish error")
	}
	want := eng.Snapshot()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Err == nil || got.Err.Error() != want.Err.Error() {
		t.Errorf("error round trip: got %v, want %v", got.Err, want.Err)
	}
	if !got.Finished {
		t.Error("finished flag lost in round trip")
	}
}

// comparisonFixture builds a deterministic finished comparison with an
// estimator attached, the richest document the group wire form carries.
func comparisonFixture(t *testing.T) Comparison {
	t.Helper()
	at := time.Date(2026, 7, 27, 12, 0, 0, 123456789, time.UTC)
	g, err := NewGroup(
		[]Spec{MustParse("systematic:interval=2"), MustParse("bernoulli:rate=0.5,seed=9")},
		WithClock(func() time.Time { return at }),
		WithEstimator("aggvar"),
	)
	if err != nil {
		t.Fatal(err)
	}
	series := make([]float64, 256)
	for i := range series {
		series[i] = float64(i%17) + 0.25
	}
	g.OfferBatch(series)
	if _, err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	return g.Snapshot()
}

func sameComparisonNumbers(a, b Fidelity) bool {
	same := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return math.IsNaN(x) && math.IsNaN(y)
		}
		return x == y
	}
	return same(a.KeptRatio, b.KeptRatio) && same(a.MeanBias, b.MeanBias) &&
		same(a.VarianceBias, b.VarianceBias) && same(a.HurstDrift, b.HurstDrift)
}

func TestComparisonJSONRoundTrip(t *testing.T) {
	want := comparisonFixture(t)
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Comparison
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	if got.Seen != want.Seen || got.Mean != want.Mean || got.Variance != want.Variance ||
		got.Method != want.Method || got.Finished != want.Finished ||
		got.Uptime != want.Uptime || !got.At.Equal(want.At) {
		t.Errorf("round trip changed the comparison header:\n got %+v\nwant %+v", got, want)
	}
	if got.Hurst == nil || *got.Hurst != *want.Hurst {
		t.Errorf("round trip changed the input Hurst point: got %+v want %+v", got.Hurst, want.Hurst)
	}
	if len(got.Members) != len(want.Members) {
		t.Fatalf("round trip changed the member count: %d vs %d", len(got.Members), len(want.Members))
	}
	for i := range want.Members {
		gm, wm := got.Members[i], want.Members[i]
		if gm.Summary.Technique != wm.Summary.Technique || gm.Summary.Kept != wm.Summary.Kept ||
			gm.Summary.Mean != wm.Summary.Mean || gm.Summary.Hurst == nil {
			t.Errorf("member %d summary changed:\n got %+v\nwant %+v", i, gm.Summary, wm.Summary)
		}
		if !sameComparisonNumbers(gm.Fidelity, wm.Fidelity) {
			t.Errorf("member %d fidelity changed:\n got %+v\nwant %+v", i, gm.Fidelity, wm.Fidelity)
		}
	}
}

// TestComparisonJSONNaNBecomesNull: a freshly created group has every
// moment and score in its NaN state; the wire form must carry null,
// never a bare NaN the encoder would reject.
func TestComparisonJSONNaNBecomesNull(t *testing.T) {
	g, err := NewGroup([]Spec{MustParse("systematic:interval=2")},
		WithClock(func() time.Time { return time.Unix(0, 0).UTC() }))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(g.Snapshot())
	if err != nil {
		t.Fatalf("zero-state comparison failed to marshal: %v", err)
	}
	for _, key := range []string{`"mean":null`, `"variance":null`,
		`"kept_ratio":null`, `"mean_bias":null`, `"variance_bias":null`, `"hurst_drift":null`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("missing %s in %s", key, data)
		}
	}
	var got Comparison
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.Mean) || !math.IsNaN(got.Members[0].Fidelity.KeptRatio) ||
		!math.IsNaN(got.Members[0].Fidelity.HurstDrift) {
		t.Errorf("null scores did not come back as NaN: %+v", got)
	}
	if got.Hurst != nil {
		t.Errorf("estimator-less comparison grew a Hurst point: %+v", got.Hurst)
	}
}

func TestComparisonJSONRejectsUnknownFields(t *testing.T) {
	data, err := json.Marshal(comparisonFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	// A typo'd top-level key must fail loudly, not silently decode to
	// the zero comparison.
	bad := strings.Replace(string(data), `"seen":`, `"sene":`, 1)
	var got Comparison
	if err := json.Unmarshal([]byte(bad), &got); err == nil {
		t.Error("comparison with unknown field unmarshaled without error")
	}
}
