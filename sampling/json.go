package sampling

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/sampling/estimate"
)

// specJSON is the wire form of a Spec: the technique name plus its raw
// key=value parameters, exactly the typed structure (never the spec-string
// syntax, which would re-tokenize values containing ',' or '=').
type specJSON struct {
	Technique string            `json:"technique"`
	Params    map[string]string `json:"params,omitempty"`
}

// MarshalJSON renders the spec as {"technique": ..., "params": {...}}.
// An empty parameter map is omitted, so Parse("systematic:interval=10")
// and its round-trip through JSON stay byte-stable.
func (s Spec) MarshalJSON() ([]byte, error) {
	return json.Marshal(specJSON{Technique: s.Technique, Params: s.Params})
}

// UnmarshalJSON accepts both wire forms of a spec: the canonical object
// {"technique": "bss", "params": {"rate": "1e-3"}} and, for convenience,
// a plain string "bss:rate=1e-3" in the spec syntax (parsed with Parse,
// so string-form errors wrap ErrBadSpec). The technique name must be
// non-empty; parameter values are not validated here — New is the
// validation point, exactly as with Parse.
func (s *Spec) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var str string
		if err := json.Unmarshal(data, &str); err != nil {
			return fmt.Errorf("sampling: spec string: %w", err)
		}
		spec, err := Parse(str)
		if err != nil {
			return err
		}
		*s = spec
		return nil
	}
	var w specJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	// Typos fail loudly, exactly as unknown spec parameters do: a
	// misspelled "params" key must not silently drop every parameter.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("sampling: spec object: %w", err)
	}
	if w.Technique == "" {
		return fmt.Errorf("sampling: spec object has no technique: %w", ErrBadSpec)
	}
	*s = Spec{Technique: w.Technique, Params: w.Params}
	return nil
}

// summaryJSON is the wire form of a Summary. The running moments are
// pointers so the NaN states a live engine legitimately passes through
// (mean before the first sample, variance and CI below two) become JSON
// null instead of poisoning the document — encoding/json rejects NaN.
type summaryJSON struct {
	Technique string        `json:"technique"`
	Spec      string        `json:"spec"`
	Seen      int           `json:"seen"`
	Kept      int           `json:"kept"`
	Qualified int           `json:"qualified"`
	Budget    int           `json:"budget"`
	Mean      *float64      `json:"mean"`
	Variance  *float64      `json:"variance"`
	CILow     *float64      `json:"ci_low"`
	CIHigh    *float64      `json:"ci_high"`
	Finished  bool          `json:"finished"`
	Err       string        `json:"error,omitempty"`
	Hurst     *HurstSummary `json:"hurst,omitempty"`
	At        string        `json:"at"`
	UptimeNS  int64         `json:"uptime_ns"`
}

// jsonNumber maps a possibly-NaN float to its wire form: nil for NaN
// (serialized as null), the value otherwise. Infinities have no JSON
// encoding either and no Summary field can legitimately produce one, but
// they are mapped to null rather than failing the whole document.
func jsonNumber(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// MarshalJSON renders the summary with NaN moments as null, the deferred
// engine error as its message string, and At in RFC 3339 with nanosecond
// precision. This is the document the sampled daemon serves from
// GET /v1/streams/{id}/snapshot.
func (s Summary) MarshalJSON() ([]byte, error) {
	w := summaryJSON{
		Technique: s.Technique,
		Spec:      s.Spec,
		Seen:      s.Seen,
		Kept:      s.Kept,
		Qualified: s.Qualified,
		Budget:    s.Budget,
		Mean:      jsonNumber(s.Mean),
		Variance:  jsonNumber(s.Variance),
		CILow:     jsonNumber(s.CILow),
		CIHigh:    jsonNumber(s.CIHigh),
		Finished:  s.Finished,
		Hurst:     s.Hurst,
		At:        s.At.Format(time.RFC3339Nano),
		UptimeNS:  int64(s.Uptime),
	}
	if s.Err != nil {
		w.Err = s.Err.Error()
	}
	return json.Marshal(w)
}

// hurstPointJSON is the wire form of one HurstPoint: h and beta are
// pointers so the NaN of a not-yet-determined estimate becomes JSON
// null, matching the summary's moment fields.
type hurstPointJSON struct {
	H      *float64 `json:"h"`
	Beta   *float64 `json:"beta"`
	Levels int      `json:"levels"`
	Ticks  int64    `json:"ticks"`
	OK     bool     `json:"ok"`
}

// hurstJSON is the wire form of a HurstSummary — the document served
// whole by GET /v1/streams/{id}/hurst and nested under "hurst" in a
// snapshot.
type hurstJSON struct {
	Method string         `json:"method"`
	Input  hurstPointJSON `json:"input"`
	Kept   hurstPointJSON `json:"kept"`
	Drift  *float64       `json:"drift"`
}

// MarshalJSON renders the Hurst block with undetermined estimates (and
// the drift before both sides resolve) as null, never NaN.
func (h HurstSummary) MarshalJSON() ([]byte, error) {
	return json.Marshal(hurstJSON{
		Method: string(h.Method),
		Input:  hurstPointWire(h.Input),
		Kept:   hurstPointWire(h.Kept),
		Drift:  jsonNumber(h.Drift),
	})
}

// UnmarshalJSON is the inverse of MarshalJSON: nulls come back as NaN.
func (h *HurstSummary) UnmarshalJSON(data []byte) error {
	var w hurstJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("sampling: hurst summary: %w", err)
	}
	*h = HurstSummary{
		Method: estimate.Method(w.Method),
		Input:  hurstPointBack(w.Input),
		Kept:   hurstPointBack(w.Kept),
		Drift:  backNumber(w.Drift),
	}
	return nil
}

// backNumber is the inverse of jsonNumber: nil (wire null) becomes NaN.
func backNumber(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// fidelityJSON is the wire form of a Fidelity: every score is a pointer
// so its legitimate NaN states (nothing kept yet, unresolved Hurst)
// become JSON null, matching the summary's moment fields.
type fidelityJSON struct {
	KeptRatio    *float64 `json:"kept_ratio"`
	MeanBias     *float64 `json:"mean_bias"`
	VarianceBias *float64 `json:"variance_bias"`
	HurstDrift   *float64 `json:"hurst_drift"`
}

// techniqueReportJSON is the wire form of one member of a comparison.
type techniqueReportJSON struct {
	Summary  Summary      `json:"summary"`
	Fidelity fidelityJSON `json:"fidelity"`
}

// comparisonJSON is the wire form of a Comparison — the document the
// sampled daemon serves from GET /v1/groups/{id}. Input moments and the
// shared Hurst point follow the null-for-NaN convention of Summary.
type comparisonJSON struct {
	Seen     int                   `json:"seen"`
	Mean     *float64              `json:"mean"`
	Variance *float64              `json:"variance"`
	Method   string                `json:"method,omitempty"`
	Hurst    *hurstPointJSON       `json:"hurst,omitempty"`
	Members  []techniqueReportJSON `json:"members"`
	Finished bool                  `json:"finished"`
	At       string                `json:"at"`
	UptimeNS int64                 `json:"uptime_ns"`
}

// MarshalJSON renders the comparison with NaN scores and moments as
// null and At in RFC 3339 with nanosecond precision.
func (c Comparison) MarshalJSON() ([]byte, error) {
	w := comparisonJSON{
		Seen:     c.Seen,
		Mean:     jsonNumber(c.Mean),
		Variance: jsonNumber(c.Variance),
		Method:   string(c.Method),
		Members:  make([]techniqueReportJSON, len(c.Members)),
		Finished: c.Finished,
		At:       c.At.Format(time.RFC3339Nano),
		UptimeNS: int64(c.Uptime),
	}
	if c.Hurst != nil {
		p := hurstPointWire(*c.Hurst)
		w.Hurst = &p
	}
	for i, m := range c.Members {
		w.Members[i] = techniqueReportJSON{
			Summary: m.Summary,
			Fidelity: fidelityJSON{
				KeptRatio:    jsonNumber(m.Fidelity.KeptRatio),
				MeanBias:     jsonNumber(m.Fidelity.MeanBias),
				VarianceBias: jsonNumber(m.Fidelity.VarianceBias),
				HurstDrift:   jsonNumber(m.Fidelity.HurstDrift),
			},
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON is the inverse of MarshalJSON: nulls come back as NaN.
// Unknown top-level fields are rejected, exactly as the sampled daemon
// rejects them in requests — a misspelled key in a hand-built document
// must fail loudly, not silently read as the zero comparison.
func (c *Comparison) UnmarshalJSON(data []byte) error {
	var w comparisonJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("sampling: comparison: %w", err)
	}
	out := Comparison{
		Seen:     w.Seen,
		Mean:     backNumber(w.Mean),
		Variance: backNumber(w.Variance),
		Method:   estimate.Method(w.Method),
		Members:  make([]TechniqueReport, len(w.Members)),
		Finished: w.Finished,
		Uptime:   time.Duration(w.UptimeNS),
	}
	if w.Hurst != nil {
		p := hurstPointBack(*w.Hurst)
		out.Hurst = &p
	}
	for i, m := range w.Members {
		out.Members[i] = TechniqueReport{
			Summary: m.Summary,
			Fidelity: Fidelity{
				KeptRatio:    backNumber(m.Fidelity.KeptRatio),
				MeanBias:     backNumber(m.Fidelity.MeanBias),
				VarianceBias: backNumber(m.Fidelity.VarianceBias),
				HurstDrift:   backNumber(m.Fidelity.HurstDrift),
			},
		}
	}
	if w.At != "" {
		at, err := time.Parse(time.RFC3339Nano, w.At)
		if err != nil {
			return fmt.Errorf("sampling: comparison timestamp: %w", err)
		}
		out.At = at
	}
	*c = out
	return nil
}

// hurstPointWire / hurstPointBack map a HurstPoint to and from its wire
// form, shared by the Hurst summary block and the comparison's input
// point.
func hurstPointWire(p HurstPoint) hurstPointJSON {
	return hurstPointJSON{H: jsonNumber(p.H), Beta: jsonNumber(p.Beta),
		Levels: p.Levels, Ticks: p.Ticks, OK: p.OK}
}

func hurstPointBack(p hurstPointJSON) HurstPoint {
	return HurstPoint{H: backNumber(p.H), Beta: backNumber(p.Beta),
		Levels: p.Levels, Ticks: p.Ticks, OK: p.OK}
}

// UnmarshalJSON is the inverse of MarshalJSON: null moments come back as
// NaN and a non-empty error string comes back as a plain error with the
// same message (the concrete error type does not survive the wire, only
// its text — compare messages, not errors.Is, across a round trip).
func (s *Summary) UnmarshalJSON(data []byte) error {
	var w summaryJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("sampling: summary: %w", err)
	}
	back := backNumber
	out := Summary{
		Technique: w.Technique,
		Spec:      w.Spec,
		Seen:      w.Seen,
		Kept:      w.Kept,
		Qualified: w.Qualified,
		Budget:    w.Budget,
		Mean:      back(w.Mean),
		Variance:  back(w.Variance),
		CILow:     back(w.CILow),
		CIHigh:    back(w.CIHigh),
		Finished:  w.Finished,
		Hurst:     w.Hurst,
		Uptime:    time.Duration(w.UptimeNS),
	}
	if w.Err != "" {
		out.Err = errors.New(w.Err)
	}
	if w.At != "" {
		at, err := time.Parse(time.RFC3339Nano, w.At)
		if err != nil {
			return fmt.Errorf("sampling: summary timestamp: %w", err)
		}
		out.At = at
	}
	*s = out
	return nil
}
