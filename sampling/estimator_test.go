package sampling

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/lrd"
	"repro/sampling/estimate"
)

func fgnTrace(t testing.TB, h float64, n int, seed uint64) []float64 {
	t.Helper()
	gen, err := lrd.NewFGN(h, n, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	return gen.Generate(dist.NewRand(seed))
}

func TestWithEstimatorRejectsUnknownMethod(t *testing.T) {
	_, err := New(MustParse("systematic:interval=10"), WithEstimator("nope"))
	if !errors.Is(err, ErrUnknownEstimator) {
		t.Errorf("error = %v, want ErrUnknownEstimator", err)
	}
}

func TestSnapshotWithoutEstimatorHasNoHurst(t *testing.T) {
	eng, err := New(MustParse("systematic:interval=10"))
	if err != nil {
		t.Fatal(err)
	}
	if sum := eng.Snapshot(); sum.Hurst != nil {
		t.Errorf("Hurst = %+v, want nil without WithEstimator", sum.Hurst)
	}
}

// The live preservation readout: an engine with an estimator reports
// the input stream's H, and once enough samples are kept, the kept
// side and the drift resolve too.
func TestEngineReportsHurstPreservation(t *testing.T) {
	const h = 0.8
	f := fgnTrace(t, h, 1<<16, 11)
	eng, err := New(MustParse("systematic:interval=16"), WithEstimator(estimate.AggVar))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f {
		eng.Offer(v)
	}
	sum := eng.Snapshot()
	if sum.Hurst == nil {
		t.Fatal("Hurst block missing")
	}
	hs := sum.Hurst
	if hs.Method != estimate.AggVar {
		t.Errorf("method = %q, want aggvar", hs.Method)
	}
	if !hs.Input.OK || math.Abs(hs.Input.H-h) > 0.15 {
		t.Errorf("input H = %v (ok=%v), want ~%g", hs.Input.H, hs.Input.OK, h)
	}
	if !hs.Kept.OK {
		t.Fatalf("kept side did not resolve after %d kept samples", sum.Kept)
	}
	// Systematic sampling of fGn preserves self-similarity (the paper's
	// Theorem 1 setting): the kept series' H stays in the LRD range.
	if hs.Kept.H < 0.5 || hs.Kept.H > 1.1 {
		t.Errorf("kept H = %v, outside the plausible LRD range", hs.Kept.H)
	}
	if math.IsNaN(hs.Drift) || math.Abs(hs.Drift-(hs.Kept.H-hs.Input.H)) > 1e-12 {
		t.Errorf("drift = %v, want Kept.H - Input.H = %v", hs.Drift, hs.Kept.H-hs.Input.H)
	}
	if hs.Input.Ticks != int64(sum.Seen) || hs.Kept.Ticks != int64(sum.Kept) {
		t.Errorf("estimator tick counts (%d, %d) disagree with summary (%d, %d)",
			hs.Input.Ticks, hs.Kept.Ticks, sum.Seen, sum.Kept)
	}
}

// Early in a stream the Hurst block must report "not yet" as NaN/false,
// and its JSON form must use null, never NaN.
func TestHurstSummaryBeforeWarmupAndJSON(t *testing.T) {
	eng, err := New(MustParse("systematic:interval=2"), WithEstimator(estimate.Wavelet))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		eng.Offer(float64(i))
	}
	sum := eng.Snapshot()
	if sum.Hurst == nil {
		t.Fatal("Hurst block missing")
	}
	if sum.Hurst.Input.OK || !math.IsNaN(sum.Hurst.Input.H) || !math.IsNaN(sum.Hurst.Drift) {
		t.Errorf("warmup block should be undetermined, got %+v", sum.Hurst)
	}
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "NaN") {
		t.Fatalf("NaN leaked into wire form: %s", data)
	}
	if !strings.Contains(string(data), `"hurst":{"method":"wavelet"`) {
		t.Errorf("hurst block missing from wire form: %s", data)
	}
	if !strings.Contains(string(data), `"drift":null`) {
		t.Errorf("undetermined drift should be null: %s", data)
	}
}

func TestSummaryJSONHurstRoundTrip(t *testing.T) {
	f := fgnTrace(t, 0.75, 1<<14, 13)
	eng, err := New(MustParse("systematic:interval=8"), WithEstimator(estimate.AggVar))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f {
		eng.Offer(v)
	}
	want := eng.Snapshot()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	if got.Hurst == nil {
		t.Fatal("Hurst block lost in round trip")
	}
	if *got.Hurst != *want.Hurst {
		t.Errorf("round trip changed the Hurst block:\n got %+v\nwant %+v", *got.Hurst, *want.Hurst)
	}
	// A summary without the block stays without it.
	plain, err := New(MustParse("systematic:interval=8"))
	if err != nil {
		t.Fatal(err)
	}
	data, err = json.Marshal(plain.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "hurst") {
		t.Errorf("estimator-less summary grew a hurst key: %s", data)
	}
}

// The estimator must not change what the engine samples: same spec,
// same input, same kept output with and without WithEstimator.
func TestEstimatorDoesNotPerturbSampling(t *testing.T) {
	f := heavyTrace(1 << 12)
	plain, err := New(MustParse("stratified:interval=16,seed=3"))
	if err != nil {
		t.Fatal(err)
	}
	est, err := New(MustParse("stratified:interval=16,seed=3"), WithEstimator(estimate.RS))
	if err != nil {
		t.Fatal(err)
	}
	a, err := plain.Sample(f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := est.Sample(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("kept %d vs %d samples", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
