package sampling

import (
	"math"
	"time"

	"repro/sampling/estimate"
)

// Summary is a point-in-time view of a live engine, returned by
// Engine.Snapshot. All counters are monotonically non-decreasing across
// successive snapshots of the same engine.
type Summary struct {
	Technique string // technique name, e.g. "bss"
	Spec      string // canonical spec string the engine was built from

	Seen      int // ticks offered so far
	Kept      int // samples kept so far (base + qualified)
	Qualified int // BSS qualified samples kept so far
	Budget    int // kept-sample cap from WithBudget; 0 = unlimited

	Mean     float64 // running mean of the kept sample values (NaN before the first)
	Variance float64 // running unbiased variance of the kept values (NaN below 2)
	CILow    float64 // lower end of the 95% confidence interval for Mean (NaN below 2)
	CIHigh   float64 // upper end of the 95% confidence interval for Mean (NaN below 2)

	Finished bool  // Finish has been called
	Err      error // deferred engine error recorded by Finish, if any

	// Hurst carries the live long-range-dependence estimates when the
	// engine was built with WithEstimator; nil otherwise.
	Hurst *HurstSummary

	At     time.Time     // when the snapshot was taken (per the engine's clock)
	Uptime time.Duration // time since the engine was built
}

// Exhausted reports whether a kept-sample budget is set and used up.
func (s Summary) Exhausted() bool { return s.Budget > 0 && s.Kept >= s.Budget }

// HurstPoint is one side of the preservation comparison: the online H
// estimate of a single stream (the engine's input or its kept samples).
type HurstPoint struct {
	H      float64 // estimated Hurst parameter; NaN until determined
	Beta   float64 // implied ACF decay exponent 2 - 2H; NaN with H
	Levels int     // regression points behind the estimate
	Ticks  int64   // ticks the estimator had consumed
	OK     bool    // the stream was long enough to regress
}

// HurstSummary is the live form of the paper's central question — does
// the technique preserve self-similarity? — for one engine: the Hurst
// parameter of the stream it observes next to the Hurst parameter of
// the samples it kept, plus the drift between them.
type HurstSummary struct {
	Method estimate.Method // estimation method, e.g. "aggvar"
	Input  HurstPoint      // H of every offered tick (pre-sampling)
	Kept   HurstPoint      // H of the kept sample values (post-sampling)
	Drift  float64         // Kept.H - Input.H; NaN until both sides are OK
}

// newHurstSummary assembles the block from the two estimator readings.
func newHurstSummary(in, kept estimate.Estimate) *HurstSummary {
	point := func(e estimate.Estimate) HurstPoint {
		return HurstPoint{H: e.H, Beta: e.Beta, Levels: e.Levels, Ticks: e.Ticks, OK: e.OK}
	}
	h := &HurstSummary{Method: in.Method, Input: point(in), Kept: point(kept), Drift: math.NaN()}
	if in.OK && kept.OK {
		h.Drift = kept.H - in.H
	}
	return h
}
