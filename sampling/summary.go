package sampling

import "time"

// Summary is a point-in-time view of a live engine, returned by
// Engine.Snapshot. All counters are monotonically non-decreasing across
// successive snapshots of the same engine.
type Summary struct {
	Technique string // technique name, e.g. "bss"
	Spec      string // canonical spec string the engine was built from

	Seen      int // ticks offered so far
	Kept      int // samples kept so far (base + qualified)
	Qualified int // BSS qualified samples kept so far
	Budget    int // kept-sample cap from WithBudget; 0 = unlimited

	Mean     float64 // running mean of the kept sample values (NaN before the first)
	Variance float64 // running unbiased variance of the kept values (NaN below 2)
	CILow    float64 // lower end of the 95% confidence interval for Mean (NaN below 2)
	CIHigh   float64 // upper end of the 95% confidence interval for Mean (NaN below 2)

	Finished bool  // Finish has been called
	Err      error // deferred engine error recorded by Finish, if any

	At     time.Time     // when the snapshot was taken (per the engine's clock)
	Uptime time.Duration // time since the engine was built
}

// Exhausted reports whether a kept-sample budget is set and used up.
func (s Summary) Exhausted() bool { return s.Budget > 0 && s.Kept >= s.Budget }
