package sampling

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/sampling/estimate"
)

// Group fans one input stream out to several sampling engines, one per
// spec, so competing techniques can be compared side by side on exactly
// the same traffic — the paper's central experiment as a live object.
// Every offered tick reaches every member engine in the same order, and
// the group keeps the unsampled reference itself: a single shared
// accumulator over the raw input (its mean and variance are what each
// technique is trying to preserve) plus, with WithEstimator, a single
// shared input-side Hurst estimator, so the input-side work is paid
// once per tick rather than once per member.
//
// Snapshot returns a Comparison: the input-side reference next to each
// member's Summary and its Fidelity score against that reference.
//
// All methods are safe for concurrent use under the same contract as
// Engine: one goroutine drives OfferBatch/Finish (ticks must arrive in
// order) while any number of observers call Snapshot. Each member is
// fed through the engine it would be as a standalone — a member's kept
// samples are identical to those of a bare Engine built from the same
// spec over the same stream.
type Group struct {
	mu      sync.Mutex
	clock   func() time.Time
	start   time.Time
	method  estimate.Method
	members []*Engine

	seen     int               // ticks offered to the group so far
	inputAcc stats.Accumulator // over every offered tick — the unsampled reference
	estIn    estimate.Estimator

	finished  bool
	finishErr error
}

// NewGroup builds a comparison group: one member engine per spec, all
// consuming the same input stream. At least one spec is required; a
// failing member build fails the whole group with the member's index
// and spec in the error, the underlying types intact.
//
// Options apply group-wide: WithSeed and WithBudget are handed to every
// member (so a mixed group of seeded and seedless techniques should
// carry seeds in the specs instead of the option), WithClock times the
// whole comparison, and WithEstimator attaches the shared input-side
// estimator plus one kept-side estimator per member — N+1 instances
// where N separate engines would run 2N.
func NewGroup(specs []Spec, opts ...Option) (*Group, error) {
	if len(specs) == 0 {
		// Typed so services can map it to a client error (the sampled
		// daemon's statusFor turns ErrBadSpec into a 400).
		return nil, fmt.Errorf("sampling: a group needs at least one spec: %w", ErrBadSpec)
	}
	cfg := config{clock: time.Now}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("sampling: nil option")
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	g := &Group{clock: cfg.clock, method: cfg.estimator, start: cfg.clock()}
	if cfg.estimator != "" {
		est, err := estimate.New(cfg.estimator)
		if err != nil {
			return nil, err
		}
		g.estIn = est
	}
	for i, spec := range specs {
		// Members rebuild their options from the parsed config rather
		// than replaying opts: the estimator must not be duplicated into
		// every engine (the group owns the input side) and the clock must
		// be the group's.
		mopts := []Option{WithClock(cfg.clock)}
		if cfg.seed != nil {
			mopts = append(mopts, WithSeed(*cfg.seed))
		}
		if cfg.budget > 0 {
			mopts = append(mopts, WithBudget(cfg.budget))
		}
		eng, err := New(spec, mopts...)
		if err != nil {
			return nil, fmt.Errorf("sampling: group member %d (%s): %w", i, spec, err)
		}
		if cfg.estimator != "" {
			// Validated above; the member tracks only its kept side — the
			// input side is the group's shared estimator.
			eng.estKept, _ = estimate.New(cfg.estimator)
		}
		g.members = append(g.members, eng)
	}
	return g, nil
}

// Len returns the number of member engines.
func (g *Group) Len() int { return len(g.members) }

// Specs returns a copy of each member's spec, in member order,
// including parameters injected by options (e.g. WithSeed).
func (g *Group) Specs() []Spec {
	out := make([]Spec, len(g.members))
	for i, eng := range g.members {
		out[i] = eng.Spec()
	}
	return out
}

// OfferBatch presents a batch of ticks, in stream order, to every
// member and returns how many samples the batch finalized across all of
// them. The input-side accumulator and estimator consume each tick
// exactly once regardless of the member count. After Finish, OfferBatch
// is a no-op returning 0.
//
//samplelint:hotpath
func (g *Group) OfferBatch(values []float64) (kept int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.finished {
		return 0
	}
	g.seen += len(values)
	for _, v := range values {
		g.inputAcc.Add(v)
		if g.estIn != nil {
			g.estIn.Tick(v)
		}
	}
	for _, eng := range g.members {
		kept += eng.OfferBatch(values)
	}
	return kept
}

// Offer is the single-tick convenience form of OfferBatch.
func (g *Group) Offer(value float64) (kept int) {
	return g.OfferBatch([]float64{value})
}

// Finish declares the end of the stream to every member and returns the
// per-member end-of-stream tails, in member order. Member finalization
// errors are joined (and each also stays visible in its member's
// Summary.Err); every member is finalized even when an earlier one
// fails. Finish is idempotent: later calls return (nil, err) with the
// same error. It does not invalidate Snapshot.
func (g *Group) Finish() ([][]Sample, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.finished {
		return nil, g.finishErr
	}
	g.finished = true
	tails := make([][]Sample, len(g.members))
	var errs []error
	for i, eng := range g.members {
		tail, err := eng.Finish()
		tails[i] = tail
		if err != nil {
			errs = append(errs, fmt.Errorf("member %d (%s): %w", i, eng.specString, err))
		}
	}
	g.finishErr = errors.Join(errs...)
	return tails, g.finishErr
}

// Finished reports whether Finish has been called.
func (g *Group) Finished() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.finished
}

// Snapshot returns the group's running Comparison without disturbing
// the stream: the unsampled input reference (count, moments and, with
// an estimator, the shared input-side Hurst point) plus each member's
// Summary and Fidelity. Because the group lock serializes snapshots
// against batches, every member is observed at the same input tick
// count — the property that makes the per-technique numbers comparable.
func (g *Group) Snapshot() Comparison {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.clock()
	c := Comparison{
		Seen:     g.seen,
		Mean:     g.inputAcc.Mean(),
		Variance: g.inputAcc.SampleVariance(),
		Method:   g.method,
		Members:  make([]TechniqueReport, len(g.members)),
		Finished: g.finished,
		At:       now,
		Uptime:   now.Sub(g.start),
	}
	var in estimate.Estimate
	if g.estIn != nil {
		in = g.estIn.Estimate()
		p := hurstPointOf(in)
		c.Hurst = &p
	}
	for i, eng := range g.members {
		sum := eng.Snapshot()
		if g.estIn != nil {
			// The member's input side is the group's shared estimator;
			// its own engine only tracked the kept side.
			sum.Hurst = newHurstSummary(in, eng.keptEstimate())
		}
		c.Members[i] = TechniqueReport{Summary: sum, Fidelity: newFidelity(&c, sum)}
	}
	return c
}

// Sample runs the whole group over a complete series and returns every
// member's selected observations, in member then index order — the
// paper's batch comparison, f -> one []Sample per technique, driven
// through the same engines so batch and tick-by-tick kept samples are
// identical. Like Engine.Sample it must be the group's only use: it
// offers every element and then finalizes. Member finalization errors
// are joined; the returned slices are valid for the members that
// finished cleanly.
func (g *Group) Sample(f []float64) ([][]Sample, error) {
	if len(f) == 0 {
		return nil, fmt.Errorf("sampling: cannot sample an empty series")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.finished {
		return nil, fmt.Errorf("sampling: group already finished")
	}
	g.seen += len(f)
	for _, v := range f {
		g.inputAcc.Add(v)
		if g.estIn != nil {
			g.estIn.Tick(v)
		}
	}
	g.finished = true
	outs := make([][]Sample, len(g.members))
	var errs []error
	for i, eng := range g.members {
		out, err := eng.Sample(f)
		outs[i] = out
		if err != nil {
			errs = append(errs, fmt.Errorf("member %d (%s): %w", i, eng.specString, err))
		}
	}
	g.finishErr = errors.Join(errs...)
	return outs, g.finishErr
}

// Fidelity scores how faithfully one technique's kept samples track the
// unsampled input stream it was offered — the group's per-technique
// verdict. All fields are NaN until both sides carry enough data.
type Fidelity struct {
	KeptRatio    float64 // kept samples / input ticks — the achieved sampling rate
	MeanBias     float64 // eta = 1 - keptMean/inputMean (Eq. 21 against the live input)
	VarianceBias float64 // 1 - keptVariance/inputVariance, same convention as MeanBias
	HurstDrift   float64 // kept H - input H; NaN until both sides resolve (needs WithEstimator)
}

// newFidelity scores one member summary against the comparison's input
// reference. Eta's convention everywhere: positive bias means the
// technique under-estimates.
func newFidelity(c *Comparison, sum Summary) Fidelity {
	f := Fidelity{
		KeptRatio:    math.NaN(),
		MeanBias:     Eta(sum.Mean, c.Mean),
		VarianceBias: Eta(sum.Variance, c.Variance),
		HurstDrift:   math.NaN(),
	}
	if c.Seen > 0 {
		f.KeptRatio = float64(sum.Kept) / float64(c.Seen)
	}
	if sum.Hurst != nil {
		f.HurstDrift = sum.Hurst.Drift
	}
	return f
}

// TechniqueReport is one member's slot in a Comparison: its live
// Summary (with the Hurst block's input side filled from the group's
// shared estimator) plus its Fidelity against the unsampled input.
type TechniqueReport struct {
	Summary  Summary
	Fidelity Fidelity
}

// Comparison is a point-in-time view of a live Group, returned by
// Group.Snapshot: the unsampled input reference every member is judged
// against, then one TechniqueReport per member in member order. All
// counters are monotonically non-decreasing across successive
// snapshots, and every member is observed at the same Seen.
type Comparison struct {
	Seen     int     // ticks offered to the group so far
	Mean     float64 // running mean of the unsampled input (NaN before the first tick)
	Variance float64 // running unbiased variance of the unsampled input (NaN below 2)

	// Method and Hurst carry the shared input-side estimate when the
	// group was built with WithEstimator; "" and nil otherwise.
	Method estimate.Method
	Hurst  *HurstPoint

	Members []TechniqueReport

	Finished bool          // Finish (or Sample) has been called
	At       time.Time     // when the snapshot was taken (per the group's clock)
	Uptime   time.Duration // time since the group was built
}

// hurstPointOf maps one estimator reading onto the summary point form.
func hurstPointOf(e estimate.Estimate) HurstPoint {
	return HurstPoint{H: e.H, Beta: e.Beta, Levels: e.Levels, Ticks: e.Ticks, OK: e.OK}
}
