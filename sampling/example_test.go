package sampling_test

import (
	"fmt"

	"repro/sampling"
	"repro/sampling/estimate"
)

// exampleTrace is a deterministic series for the examples: a small
// linear-congruential generator, so the output blocks below are stable
// without depending on any package's RNG stream.
func exampleTrace(n int) []float64 {
	f := make([]float64, n)
	x := uint32(1)
	for i := range f {
		x = x*1664525 + 1013904223
		f[i] = float64(x%1000) / 1000
	}
	return f
}

// Parse turns the compact spec syntax into a typed Spec; String renders
// the canonical form (sorted keys), and failures are typed.
func ExampleParse() {
	spec, err := sampling.Parse("bss:rate=1e-3,L=10,eps=1.0")
	if err != nil {
		panic(err)
	}
	fmt.Println(spec.Technique)
	fmt.Println(spec.String())
	// Output:
	// bss
	// bss:L=10,eps=1.0,rate=1e-3
}

// A fresh engine consumes one stream tick by tick; Finish returns the
// samples only decidable at end of stream.
func ExampleNew() {
	eng, err := sampling.New(sampling.MustParse("systematic:interval=4,offset=1"))
	if err != nil {
		panic(err)
	}
	for _, v := range []float64{10, 11, 12, 13, 14, 15, 16, 17, 18} {
		if s, kept := eng.Offer(v); kept {
			fmt.Printf("kept index %d value %g\n", s.Index, s.Value)
		}
	}
	tail, err := eng.Finish()
	if err != nil {
		panic(err)
	}
	fmt.Printf("tail %d samples, snapshot kept %d of %d\n",
		len(tail), eng.Snapshot().Kept, eng.Snapshot().Seen)
	// Output:
	// kept index 1 value 11
	// kept index 5 value 15
	// tail 0 samples, snapshot kept 2 of 9
}

// OfferBatch is the ingest hot path: one lock acquisition per batch,
// and the whole batch handed to the technique's skip-based kernel. Any
// batching yields exactly the per-tick sample sequence.
func ExampleEngine_OfferBatch() {
	f := exampleTrace(10_000)
	batched, _ := sampling.New(sampling.MustParse("bernoulli:rate=0.01"), sampling.WithSeed(7))
	perTick, _ := sampling.New(sampling.MustParse("bernoulli:rate=0.01"), sampling.WithSeed(7))

	var kept int
	for off := 0; off < len(f); off += 512 {
		end := min(off+512, len(f))
		kept += batched.OfferBatch(f[off:end])
	}
	for _, v := range f {
		perTick.Offer(v)
	}
	fmt.Printf("batched kept %d, per-tick kept %d\n", kept, perTick.Snapshot().Kept)
	fmt.Println("same:", kept == perTick.Snapshot().Kept)
	// Output:
	// batched kept 99, per-tick kept 99
	// same: true
}

// A Group fans one stream out to several techniques and scores what
// each one changed relative to the unsampled input.
func ExampleNewGroup() {
	group, err := sampling.NewGroup([]sampling.Spec{
		sampling.MustParse("systematic:interval=100"),
		sampling.MustParse("systematic:interval=50"),
	})
	if err != nil {
		panic(err)
	}
	group.OfferBatch(exampleTrace(100_000))
	cmp := group.Snapshot()
	fmt.Printf("input seen %d\n", cmp.Seen)
	for _, m := range cmp.Members {
		fmt.Printf("%s kept ratio %.3f\n", m.Summary.Spec, m.Fidelity.KeptRatio)
	}
	// Output:
	// input seen 100000
	// systematic:interval=100 kept ratio 0.010
	// systematic:interval=50 kept ratio 0.020
}

// WithEstimator attaches online Hurst estimators over both the input
// stream and the kept samples — the paper's preservation question as a
// live reading. Estimates stay undetermined (OK false, NaN values)
// until enough stream has arrived to regress.
func ExampleWithEstimator() {
	eng, err := sampling.New(sampling.MustParse("systematic:interval=10"),
		sampling.WithEstimator(estimate.AggVar))
	if err != nil {
		panic(err)
	}
	eng.OfferBatch(exampleTrace(1 << 16))
	hs := eng.Snapshot().Hurst
	fmt.Printf("method %s, input ticks %d resolved %t, kept ticks %d resolved %t\n",
		hs.Method, hs.Input.Ticks, hs.Input.OK, hs.Kept.Ticks, hs.Kept.OK)
	// Output:
	// method aggvar, input ticks 65536 resolved true, kept ticks 6554 resolved true
}
