package estimate

// Stateful is an Estimator whose exact internal state can be captured
// and restored: AppendState on a live estimator followed by
// RestoreState on a fresh estimator of the same method yields an
// estimator that reports the identical estimates — and continues the
// identical ladder recursion — the original would have. Every estimator
// built by New implements it; the sampling engine codec relies on that
// to carry Hurst ladders through checkpoints.
type Stateful interface {
	Estimator
	// AppendState appends the estimator's state to dst and returns the
	// extended slice.
	AppendState(dst []byte) []byte
	// RestoreState overwrites the estimator's state from a blob
	// produced by AppendState on an estimator of the same method.
	RestoreState(data []byte) error
}

// AppendState implements Stateful.
func (a *aggVar) AppendState(dst []byte) []byte { return a.core.AppendState(dst) }

// RestoreState implements Stateful.
func (a *aggVar) RestoreState(data []byte) error { return a.core.RestoreState(data) }

// AppendState implements Stateful.
func (w *wavelet) AppendState(dst []byte) []byte { return w.core.AppendState(dst) }

// RestoreState implements Stateful.
func (w *wavelet) RestoreState(data []byte) error { return w.core.RestoreState(data) }

// AppendState implements Stateful.
func (r *rs) AppendState(dst []byte) []byte { return r.core.AppendState(dst) }

// RestoreState implements Stateful.
func (r *rs) RestoreState(data []byte) error { return r.core.RestoreState(data) }

// Interface compliance checks: every built-in estimator exposes state.
var (
	_ Stateful = (*aggVar)(nil)
	_ Stateful = (*wavelet)(nil)
	_ Stateful = (*rs)(nil)
)
