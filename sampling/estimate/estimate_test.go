package estimate_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/lrd"
	"repro/sampling/estimate"
)

func fgnSeries(t testing.TB, h float64, n int, seed uint64) []float64 {
	t.Helper()
	gen, err := lrd.NewFGN(h, n, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return gen.Generate(dist.NewRand(seed))
}

func feed(e estimate.Estimator, x []float64) {
	for _, v := range x {
		e.Tick(v)
	}
}

func TestNewKnownAndUnknownMethods(t *testing.T) {
	for _, m := range estimate.Methods() {
		e, err := estimate.New(m)
		if err != nil {
			t.Fatalf("New(%q): %v", m, err)
		}
		if e.Method() != m {
			t.Errorf("New(%q).Method() = %q", m, e.Method())
		}
	}
	if _, err := estimate.New("nope"); !errors.Is(err, estimate.ErrUnknownMethod) {
		t.Errorf("New(nope) error = %v, want ErrUnknownMethod", err)
	}
}

// The acceptance property: on synthetic fGn of known H, the streaming
// AggVar and wavelet estimates land within 0.05 of the batch estimators
// run on the very same series.
func TestStreamingAgreesWithBatchOnFGN(t *testing.T) {
	const n = 1 << 15
	for _, h := range []float64{0.6, 0.75, 0.9} {
		x := fgnSeries(t, h, n, uint64(h*1e4))

		agg, _ := estimate.New(estimate.AggVar)
		feed(agg, x)
		got := agg.Estimate()
		if !got.OK {
			t.Fatalf("H=%g: aggvar produced no estimate", h)
		}
		batch, err := lrd.HurstAggVar(x, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(got.H - batch.H); d > 0.05 {
			t.Errorf("H=%g aggvar: streaming %.4f vs batch %.4f (|d|=%.4f)", h, got.H, batch.H, d)
		}

		wav, _ := estimate.New(estimate.Wavelet)
		feed(wav, x)
		got = wav.Estimate()
		if !got.OK {
			t.Fatalf("H=%g: wavelet produced no estimate", h)
		}
		wbatch, err := lrd.HurstWavelet(x, lrd.WaveletOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(got.H - wbatch.H); d > 0.05 {
			t.Errorf("H=%g wavelet: streaming %.4f vs batch %.4f (|d|=%.4f)", h, got.H, wbatch.H, d)
		}
	}
}

// Each streaming method must also recover the true H of exact fGn
// within the batch estimators' own tolerances.
func TestStreamingRecoversKnownH(t *testing.T) {
	const n = 1 << 15
	for _, h := range []float64{0.6, 0.75, 0.9} {
		x := fgnSeries(t, h, n, uint64(h*3e4))
		for _, m := range estimate.Methods() {
			e, err := estimate.New(m)
			if err != nil {
				t.Fatal(err)
			}
			feed(e, x)
			got := e.Estimate()
			if !got.OK {
				t.Errorf("H=%g %s: no estimate after %d ticks", h, m, n)
				continue
			}
			if math.Abs(got.H-h) > 0.15 {
				t.Errorf("H=%g %s: estimated %.3f", h, m, got.H)
			}
			if math.Abs(got.Beta-(2-2*got.H)) > 1e-9 {
				t.Errorf("%s: Beta %.4f inconsistent with H %.4f", m, got.Beta, got.H)
			}
			if got.Ticks != int64(n) {
				t.Errorf("%s: Ticks = %d, want %d", m, got.Ticks, n)
			}
		}
	}
}

// Before enough stream has arrived the estimators report "no estimate
// yet" (NaN H, OK false) rather than an error or a garbage number.
func TestEstimateBeforeWarmup(t *testing.T) {
	for _, m := range estimate.Methods() {
		e, err := estimate.New(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			e.Tick(float64(i))
		}
		got := e.Estimate()
		if got.OK || !math.IsNaN(got.H) || !math.IsNaN(got.Beta) {
			t.Errorf("%s after 10 ticks: OK=%v H=%v, want not-yet", m, got.OK, got.H)
		}
		if got.Ticks != 10 {
			t.Errorf("%s: Ticks = %d, want 10", m, got.Ticks)
		}
	}
}

// Constructor options reach the cores: a narrow RS window forgets the
// past, a raised jMin drops the finest octaves from the regression.
func TestConstructorOptions(t *testing.T) {
	e := estimate.NewRS(512)
	feed(e, fgnSeries(t, 0.75, 1024, 5))
	if got := e.Estimate(); !got.OK {
		t.Error("RS(512) after 1024 ticks should estimate")
	}
	x := fgnSeries(t, 0.8, 1<<14, 6)
	lo := estimate.NewWavelet(1)
	hi := estimate.NewWavelet(5)
	feed(lo, x)
	feed(hi, x)
	a, b := lo.Estimate(), hi.Estimate()
	if !a.OK || !b.OK {
		t.Fatal("both wavelet variants should estimate on 16k ticks")
	}
	if a.Levels <= b.Levels {
		t.Errorf("jMin=1 used %d levels, jMin=5 used %d; want strictly more", a.Levels, b.Levels)
	}
	if got := estimate.NewAggVar(4); got.Method() != estimate.AggVar {
		t.Error("NewAggVar method mismatch")
	}
}

// The acceptance criterion's allocation bound, asserted directly: the
// estimator tick path performs zero allocations.
func TestTickPathDoesNotAllocate(t *testing.T) {
	for _, m := range estimate.Methods() {
		e, err := estimate.New(m)
		if err != nil {
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(2000, func() { e.Tick(2.5) }); allocs != 0 {
			t.Errorf("%s: %.1f allocs per Tick, want 0", m, allocs)
		}
	}
}

// FuzzEstimatorTick is the CI fuzz smoke for the tick path: arbitrary
// (including pathological) tick values must never panic an estimator or
// make Estimate misbehave structurally.
func FuzzEstimatorTick(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, uint8(200))
	f.Add(0.0, 0.0, 0.0, uint8(255))
	f.Add(math.MaxFloat64, -math.MaxFloat64, 1e-300, uint8(130))
	f.Add(math.Inf(1), math.NaN(), -1.5, uint8(3))
	f.Fuzz(func(t *testing.T, a, b, c float64, n uint8) {
		ests := make([]estimate.Estimator, 0, 3)
		for _, m := range estimate.Methods() {
			e, err := estimate.New(m)
			if err != nil {
				t.Fatal(err)
			}
			ests = append(ests, e)
		}
		vals := [3]float64{a, b, c}
		for i := 0; i < int(n); i++ {
			for _, e := range ests {
				e.Tick(vals[i%3])
			}
		}
		for _, e := range ests {
			got := e.Estimate()
			if got.Ticks != int64(n) {
				t.Fatalf("%s: Ticks = %d, want %d", e.Method(), got.Ticks, n)
			}
			if got.OK && math.IsNaN(got.H) {
				t.Fatalf("%s: OK estimate with NaN H", e.Method())
			}
		}
	})
}

// BenchmarkEstimatorTick is the hot-path benchmark the CI regression
// gate watches: one tick through each estimator, allocation-counted.
func BenchmarkEstimatorTick(b *testing.B) {
	x := fgnSeries(b, 0.8, 1<<16, 9)
	for _, m := range estimate.Methods() {
		b.Run(string(m), func(b *testing.B) {
			e, err := estimate.New(m)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Tick(x[i&(1<<16-1)])
			}
		})
	}
}
