// Package estimate is the online long-range-dependence estimation
// subsystem of the sampling service: incremental Hurst-parameter
// estimators that consume a stream tick by tick in O(log n) memory with
// no allocations on the tick path, and produce an estimate on demand at
// any moment mid-stream.
//
// Three methods are available, mirroring the batch estimators of the
// reproduction (internal/lrd) and validated against them:
//
//   - AggVar: streaming aggregated variance over a dyadic ladder of
//     block sums — on a complete series it agrees exactly with the
//     batch estimator, because both share one ladder/regression core.
//   - Wavelet: streaming Abry-Veitch via a pairwise Haar cascade over
//     the same ladder discipline, feeding the debiased logscale-diagram
//     regression.
//   - RS: rescaled-range analysis over a sliding window of recent
//     ticks — the assumption-light fallback that forgets old history.
//
// Estimators are not safe for concurrent use on their own; the
// sampling.Engine (via sampling.WithEstimator) drives them under its
// stream lock, which is where a service should attach them.
package estimate

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lrd"
)

// Method names an estimation algorithm.
type Method string

// The registered estimation methods.
const (
	AggVar  Method = "aggvar"
	Wavelet Method = "wavelet"
	RS      Method = "rs"
)

// ErrUnknownMethod is wrapped by New for method names that do not name
// an estimator; branch with errors.Is.
var ErrUnknownMethod = errors.New("unknown estimator method")

// Methods returns the registered method names in display order.
func Methods() []Method { return []Method{AggVar, Wavelet, RS} }

// Estimate is one point-in-time Hurst estimate of a live stream.
type Estimate struct {
	Method Method
	H      float64 // estimated Hurst parameter; NaN until determined
	Beta   float64 // implied ACF decay exponent 2 - 2H; NaN with H
	Levels int     // regression points (aggregation levels / octaves / block sizes)
	Ticks  int64   // ticks consumed when the estimate was taken
	OK     bool    // the stream was long enough to regress
}

// Estimator consumes a stream and produces Hurst estimates on demand.
// Tick must be allocation-free and O(log n) worst case; Estimate may
// allocate (it runs a small regression) and belongs on the observation
// path, not the ingest path.
type Estimator interface {
	Method() Method
	Tick(v float64)
	Ticks() int64
	Estimate() Estimate
}

// New builds an estimator for the named method with its defaults:
// aggvar and wavelet are unbounded ladders, rs uses a 4096-tick window.
// Unknown names wrap ErrUnknownMethod.
func New(method Method) (Estimator, error) {
	switch method {
	case AggVar:
		return &aggVar{}, nil
	case Wavelet:
		return &wavelet{}, nil
	case RS:
		return NewRS(0), nil
	}
	return nil, fmt.Errorf("estimate: %q: %w", string(method), ErrUnknownMethod)
}

// NewAggVar builds a streaming aggregated-variance estimator. minM is
// the smallest aggregation level entering the regression; <= 0 means 1.
func NewAggVar(minM int) Estimator {
	return &aggVar{core: lrd.StreamAggVar{MinM: minM}}
}

// NewWavelet builds a streaming Haar/Abry-Veitch estimator. jMin is the
// first octave entering the regression; <= 0 means 3.
func NewWavelet(jMin int) Estimator {
	return &wavelet{core: lrd.StreamWavelet{JMin: jMin}}
}

// NewRS builds a windowed rescaled-range estimator over the last window
// ticks; <= 0 means 4096.
func NewRS(window int) Estimator {
	return &rs{core: lrd.NewStreamRS(window)}
}

// finish maps a batch-core result onto the wire-friendly Estimate: an
// estimator that has not seen enough stream yet reports NaN/false, not
// an error — "no estimate yet" is a normal state of a live stream.
func finish(method Method, ticks int64, e lrd.HurstEstimate, err error) Estimate {
	// A fit that degenerates to a non-finite slope (identical or
	// overflowed inputs) is also "no estimate", never an OK NaN.
	if err != nil || math.IsNaN(e.H) || math.IsInf(e.H, 0) {
		return Estimate{Method: method, H: math.NaN(), Beta: math.NaN(), Ticks: ticks}
	}
	return Estimate{Method: method, H: e.H, Beta: e.Beta, Levels: e.Fit.N, Ticks: ticks, OK: true}
}

type aggVar struct{ core lrd.StreamAggVar }

func (a *aggVar) Method() Method { return AggVar }

//samplelint:hotpath
func (a *aggVar) Tick(v float64) { a.core.Tick(v) }
func (a *aggVar) Ticks() int64   { return a.core.N() }
func (a *aggVar) Estimate() Estimate {
	e, err := a.core.Estimate()
	return finish(AggVar, a.core.N(), e, err)
}

type wavelet struct{ core lrd.StreamWavelet }

func (w *wavelet) Method() Method { return Wavelet }

//samplelint:hotpath
func (w *wavelet) Tick(v float64) { w.core.Tick(v) }
func (w *wavelet) Ticks() int64   { return w.core.N() }
func (w *wavelet) Estimate() Estimate {
	e, err := w.core.Estimate()
	return finish(Wavelet, w.core.N(), e, err)
}

type rs struct{ core *lrd.StreamRS }

func (r *rs) Method() Method { return RS }

//samplelint:hotpath
func (r *rs) Tick(v float64) { r.core.Tick(v) }
func (r *rs) Ticks() int64   { return r.core.N() }
func (r *rs) Estimate() Estimate {
	e, err := r.core.Estimate()
	return finish(RS, r.core.N(), e, err)
}
