package sampling

import (
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
)

// heavyTrace builds a deterministic heavy-tailed series, the workload
// class the paper studies.
func heavyTrace(n int) []float64 {
	rng := dist.NewRand(77)
	p := dist.Pareto{Alpha: 1.5, Xm: 1}
	f := make([]float64, n)
	for i := range f {
		f[i] = p.Sample(rng)
	}
	return f
}

var equalitySpecs = []string{
	"systematic:interval=16,offset=3",
	"stratified:interval=16,seed=21",
	"simple:rate=0.05,seed=22",
	"bernoulli:rate=0.05,seed=23",
	"bss:interval=16,L=4,eps=1.1",
}

// TestEngineMatchesCoreBatch is the public half of the stream-vs-batch
// invariant: Engine.Sample must produce byte-identical output to the
// pre-redesign batch path (the internal core batch adapter) for every
// technique.
func TestEngineMatchesCoreBatch(t *testing.T) {
	f := heavyTrace(1 << 13)
	for _, spec := range equalitySpecs {
		eng, err := New(MustParse(spec))
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		got, err := eng.Sample(f)
		if err != nil {
			t.Fatalf("Engine.Sample(%q): %v", spec, err)
		}
		batch, err := core.Lookup(spec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := batch.Sample(f)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: engine output differs from the batch path (%d vs %d samples)", spec, len(got), len(want))
		}
	}
}

// TestSnapshotDoesNotDisturbTheStream interleaves snapshots with ticks
// and asserts the final output is identical to an unobserved run — the
// non-destructive observation guarantee.
func TestSnapshotDoesNotDisturbTheStream(t *testing.T) {
	f := heavyTrace(1 << 12)
	for _, spec := range equalitySpecs {
		quiet, err := New(MustParse(spec))
		if err != nil {
			t.Fatal(err)
		}
		want, err := quiet.Sample(f)
		if err != nil {
			t.Fatal(err)
		}

		observed, err := New(MustParse(spec))
		if err != nil {
			t.Fatal(err)
		}
		var got []Sample
		for i, v := range f {
			if s, ok := observed.Offer(v); ok {
				got = append(got, s)
			}
			if i%37 == 0 {
				observed.Snapshot()
			}
		}
		observed.Snapshot()
		tail, err := observed.Finish()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tail...)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: snapshots disturbed the stream (%d vs %d samples)", spec, len(got), len(want))
		}
	}
}

// TestSnapshotConcurrentWithTicks drives Offer from one goroutine and
// Snapshot from another (run under -race), checking that successive
// snapshots are monotonically consistent.
func TestSnapshotConcurrentWithTicks(t *testing.T) {
	f := heavyTrace(1 << 15)
	eng, err := New(MustParse("bss:interval=16,L=4,eps=1.1"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, v := range f {
			eng.Offer(v)
		}
	}()
	var prev Summary
	for {
		sum := eng.Snapshot()
		if sum.Seen < prev.Seen || sum.Kept < prev.Kept || sum.Qualified < prev.Qualified {
			t.Errorf("snapshot went backwards: %+v after %+v", sum, prev)
		}
		if sum.Kept > sum.Seen {
			t.Errorf("kept %d exceeds seen %d", sum.Kept, sum.Seen)
		}
		prev = sum
		select {
		case <-done:
			if _, err := eng.Finish(); err != nil {
				t.Fatal(err)
			}
			final := eng.Snapshot()
			if final.Seen != len(f) {
				t.Errorf("final seen %d, want %d", final.Seen, len(f))
			}
			if !final.Finished {
				t.Error("final snapshot not marked finished")
			}
			return
		default:
		}
	}
}

func TestFinishIdempotentAndOfferAfterFinish(t *testing.T) {
	f := heavyTrace(1 << 10)
	eng, err := New(MustParse("simple:n=20,seed=5"))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f {
		eng.Offer(v)
	}
	tail, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 20 {
		t.Fatalf("tail %d samples, want 20", len(tail))
	}
	again, err := eng.Finish()
	if err != nil || len(again) != 0 {
		t.Errorf("second Finish = (%d samples, %v), want (0, nil)", len(again), err)
	}
	if _, ok := eng.Offer(1.0); ok {
		t.Error("Offer after Finish emitted a sample")
	}
	sum := eng.Snapshot()
	if sum.Seen != len(f) || sum.Kept != 20 || !sum.Finished {
		t.Errorf("post-finish snapshot %+v inconsistent", sum)
	}
}

func TestBudgetCapsKeptSamples(t *testing.T) {
	f := heavyTrace(1 << 12)
	// Streaming technique: budget caps mid-stream emission.
	eng, err := New(MustParse("bernoulli:rate=0.5,seed=9"), WithBudget(10))
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, v := range f {
		if _, ok := eng.Offer(v); ok {
			kept++
		}
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	sum := eng.Snapshot()
	if kept != 10 || sum.Kept != 10 {
		t.Errorf("kept %d (snapshot %d), want exactly the budget 10", kept, sum.Kept)
	}
	if !sum.Exhausted() {
		t.Error("summary should report the budget exhausted")
	}
	if sum.Seen != len(f) {
		t.Errorf("budget must not stop the engine from consuming: seen %d, want %d", sum.Seen, len(f))
	}

	// Offline technique: budget truncates the Finish tail.
	off, err := New(MustParse("simple:n=50,seed=5"), WithBudget(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f {
		off.Offer(v)
	}
	tail, err := off.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 10 {
		t.Errorf("tail %d samples, want the budget 10", len(tail))
	}
}

func TestWithSeedMatchesSpecSeed(t *testing.T) {
	f := heavyTrace(1 << 11)
	viaOpt, err := New(MustParse("stratified:interval=16"), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := New(MustParse("stratified:interval=16,seed=21"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := viaOpt.Sample(f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := viaSpec.Sample(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("WithSeed(21) output differs from seed=21 in the spec")
	}
	if v, _ := viaOpt.Spec().Param("seed"); v != "21" {
		t.Errorf("engine spec seed = %q, want the injected 21", v)
	}
}

func TestWithClockStampsSummaries(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	eng, err := New(MustParse("systematic:interval=4"), WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(5 * time.Second)
	sum := eng.Snapshot()
	if !sum.At.Equal(time.Unix(1005, 0)) {
		t.Errorf("Summary.At = %v, want the fake clock's time", sum.At)
	}
	if sum.Uptime != 5*time.Second {
		t.Errorf("Summary.Uptime = %v, want 5s", sum.Uptime)
	}
}

func TestSummaryStatistics(t *testing.T) {
	eng, err := New(MustParse("systematic:interval=1"))
	if err != nil {
		t.Fatal(err)
	}
	empty := eng.Snapshot()
	if !math.IsNaN(empty.Mean) || !math.IsNaN(empty.CILow) {
		t.Errorf("empty-engine summary should be NaN, got mean %g CI %g", empty.Mean, empty.CILow)
	}
	for _, v := range []float64{2, 4, 6, 8} {
		eng.Offer(v)
	}
	sum := eng.Snapshot()
	if sum.Mean != 5 {
		t.Errorf("mean %g, want 5", sum.Mean)
	}
	if !(sum.CILow < 5 && 5 < sum.CIHigh) {
		t.Errorf("95%% CI [%g, %g] should bracket the mean", sum.CILow, sum.CIHigh)
	}
	if sum.Variance <= 0 {
		t.Errorf("variance %g, want positive", sum.Variance)
	}
}

func TestEngineSampleEmptySeries(t *testing.T) {
	eng, err := New(MustParse("systematic:interval=4"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Sample(nil); err == nil {
		t.Error("expected error for empty series")
	}
}

// TestManyConcurrentObservers hammers Snapshot from several goroutines
// while ticks flow — the live-monitor pattern — and relies on -race for
// the safety half of the claim.
func TestManyConcurrentObservers(t *testing.T) {
	f := heavyTrace(1 << 14)
	eng, err := New(MustParse("stratified:interval=8,seed=3"))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					eng.Snapshot()
				}
			}
		}()
	}
	for _, v := range f {
		eng.Offer(v)
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if got := eng.Snapshot().Seen; got != len(f) {
		t.Errorf("seen %d, want %d", got, len(f))
	}
}

func TestEngineFinished(t *testing.T) {
	eng, err := New(MustParse("systematic:interval=2"))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Finished() {
		t.Error("fresh engine reports finished")
	}
	eng.Offer(1)
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	if !eng.Finished() {
		t.Error("finished engine reports live")
	}
}

// TestOfferBatchMatchesOffer is the batch-ingest half of the
// equivalence story: for every technique, OfferBatch over ragged chunks
// must leave the engine in exactly the state tick-by-tick Offer does —
// same counters, same moments, same end-of-stream tail — and its kept
// counts must sum to the snapshot's. OfferBatch is what the hub, the
// daemon and the load generator drive, so this is the wire path's
// correctness anchor.
func TestOfferBatchMatchesOffer(t *testing.T) {
	f := heavyTrace(1 << 13)
	for _, spec := range equalitySpecs {
		batched, err := New(MustParse(spec))
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		ticked, err := New(MustParse(spec))
		if err != nil {
			t.Fatal(err)
		}
		kept := 0
		for off := 0; off < len(f); {
			end := off + 129 // deliberately not a divisor of the length
			if end > len(f) {
				end = len(f)
			}
			kept += batched.OfferBatch(f[off:end])
			off = end
		}
		tickKept := 0
		for _, v := range f {
			if _, ok := ticked.Offer(v); ok {
				tickKept++
			}
		}
		if kept != tickKept {
			t.Errorf("%s: OfferBatch kept %d, Offer kept %d", spec, kept, tickKept)
		}
		batchTail, err := batched.Finish()
		if err != nil {
			t.Fatal(err)
		}
		tickTail, err := ticked.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batchTail, tickTail) {
			t.Errorf("%s: batch tail differs from tick tail (%d vs %d samples)", spec, len(batchTail), len(tickTail))
		}
		got, want := batched.Snapshot(), ticked.Snapshot()
		if got.Seen != want.Seen || got.Kept != want.Kept || got.Qualified != want.Qualified ||
			got.Mean != want.Mean || got.Variance != want.Variance {
			t.Errorf("%s: batch snapshot diverged:\n got %+v\nwant %+v", spec, got, want)
		}
		if got.Kept != kept+len(batchTail) {
			t.Errorf("%s: kept counts don't add up: snapshot %d, offers %d + tail %d",
				spec, got.Kept, kept, len(batchTail))
		}
	}
}

// TestOfferBatchAfterFinish: a finished engine ignores batches without
// advancing any counter.
func TestOfferBatchAfterFinish(t *testing.T) {
	eng, err := New(MustParse("systematic:interval=2"))
	if err != nil {
		t.Fatal(err)
	}
	if kept := eng.OfferBatch([]float64{1, 2, 3, 4}); kept != 2 {
		t.Fatalf("kept %d of the warmup batch, want 2", kept)
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	if kept := eng.OfferBatch([]float64{5, 6}); kept != 0 {
		t.Errorf("post-finish OfferBatch kept %d", kept)
	}
	if sum := eng.Snapshot(); sum.Seen != 4 {
		t.Errorf("post-finish OfferBatch advanced seen to %d", sum.Seen)
	}
}
