package sampling

import (
	"repro/internal/core"
	"repro/sampling/estimate"
)

// The typed failure modes of Parse and New. They alias the internal
// registry's errors so a *ParamError produced deep inside a factory
// satisfies errors.As against the public type.
var (
	// ErrUnknownTechnique is wrapped by errors from New when the spec
	// names no registered technique.
	ErrUnknownTechnique = core.ErrUnknownTechnique
	// ErrBadSpec is wrapped by errors from Parse when the spec string
	// does not follow the "name:key=val,key=val" syntax.
	ErrBadSpec = core.ErrBadSpec
	// ErrUnknownEstimator is wrapped by errors from New when
	// WithEstimator names no registered estimation method.
	ErrUnknownEstimator = estimate.ErrUnknownMethod
)

// ParamError reports a spec parameter the technique rejected: a value
// that does not parse, a missing required parameter, or a key the
// technique does not accept. Extract it from New's error with errors.As.
type ParamError = core.ParamError
