package sampling

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

// stateTrace is a deterministic heavy-ish trace: seeded uniform noise
// with a slow burst modulation, long enough to exercise reservoir
// replacements, BSS triggers and several estimator ladder levels.
func stateTrace(n int, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	f := make([]float64, n)
	for i := range f {
		burst := 1 + 3*math.Pow(math.Sin(float64(i)/500), 2)
		f[i] = rng.Float64() * burst
	}
	return f
}

// restoreSpecs covers all five techniques, both simple-random regimes
// and a budgeted variant — the matrix the restore-determinism
// acceptance criterion names.
var restoreSpecs = []struct {
	name   string
	spec   string
	budget int
}{
	{name: "systematic", spec: "systematic:interval=37,offset=5"},
	{name: "stratified", spec: "stratified:interval=41,seed=11"},
	{name: "simple-random-n", spec: "simple:n=64,seed=7"},
	{name: "simple-random-rate", spec: "simple:rate=0.02,seed=9"},
	{name: "bernoulli", spec: "bernoulli:rate=0.03,seed=13"},
	{name: "bss", spec: "bss:interval=50,L=4,eps=1.0,pre=5"},
	{name: "bernoulli-budgeted", spec: "bernoulli:rate=0.05,seed=3", budget: 40},
}

// offerChunks drives values through OfferBatch in deliberately awkward
// chunk sizes (1, 7, 64, 395, ...) and returns total kept.
func offerChunks(e *Engine, values []float64) int {
	sizes := []int{1, 7, 64, 395, 13, 256}
	kept, i, s := 0, 0, 0
	for i < len(values) {
		n := sizes[s%len(sizes)]
		s++
		if i+n > len(values) {
			n = len(values) - i
		}
		kept += e.OfferBatch(values[i : i+n])
		i += n
	}
	return kept
}

// TestRestoreDeterminism is the subsystem's core invariant: an engine
// checkpointed mid-stream and restored must emit the byte-identical
// kept-sample sequence — and Hurst points — of one that never stopped,
// for every technique. The uninterrupted engine and the restored one
// consume the identical suffix; equality is asserted tick by tick on
// emitted samples, on snapshots, on Finish tails, and finally on the
// complete marshaled end states.
func TestRestoreDeterminism(t *testing.T) {
	trace := stateTrace(20000, 42)
	cut := 11213 // off any stratum/interval boundary
	clock := func() time.Time { return time.Unix(1700000000, 0) }

	for _, tc := range restoreSpecs {
		t.Run(tc.name, func(t *testing.T) {
			opts := []Option{WithEstimator("aggvar"), WithClock(clock)}
			if tc.budget > 0 {
				opts = append(opts, WithBudget(tc.budget))
			}
			live, err := New(MustParse(tc.spec), opts...)
			if err != nil {
				t.Fatal(err)
			}
			offerChunks(live, trace[:cut])

			blob, err := live.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreEngine(blob, WithClock(clock))
			if err != nil {
				t.Fatal(err)
			}

			// The suffix goes through per-tick Offer on both engines so the
			// emitted kept-sample sequences can be compared sample by sample.
			for i, v := range trace[cut:] {
				sa, oka := live.Offer(v)
				sb, okb := restored.Offer(v)
				if oka != okb || sa != sb {
					t.Fatalf("tick %d: live emitted (%+v,%v), restored (%+v,%v)", cut+i, sa, oka, sb, okb)
				}
			}

			la, lb := live.Snapshot(), restored.Snapshot()
			// NaN-tolerant comparison: identical structs format identically,
			// including NaN fields, where == would report NaN != NaN.
			flatA, flatB := la, lb
			flatA.Hurst, flatB.Hurst = nil, nil
			if got, want := fmt.Sprintf("%+v", flatA), fmt.Sprintf("%+v", flatB); got != want {
				t.Fatalf("snapshots diverge:\nlive     %s\nrestored %s", want, got)
			}
			if (la.Hurst == nil) != (lb.Hurst == nil) {
				t.Fatalf("hurst presence diverges")
			}
			if la.Hurst != nil {
				if got, want := fmt.Sprintf("%+v", *lb.Hurst), fmt.Sprintf("%+v", *la.Hurst); got != want {
					t.Fatalf("hurst points diverge:\nlive     %s\nrestored %s", want, got)
				}
			}

			tailA, errA := live.Finish()
			tailB, errB := restored.Finish()
			if (errA == nil) != (errB == nil) {
				t.Fatalf("finish errors diverge: %v vs %v", errA, errB)
			}
			if len(tailA) != len(tailB) {
				t.Fatalf("finish tails diverge: %d vs %d samples", len(tailA), len(tailB))
			}
			for i := range tailA {
				if tailA[i] != tailB[i] {
					t.Fatalf("finish tail sample %d diverges: %+v vs %+v", i, tailA[i], tailB[i])
				}
			}

			// Strongest form: the complete end states serialize to the same
			// bytes, so every internal field (RNG position included) matches.
			endA, err := live.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			endB, err := restored.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(endA, endB) {
				t.Fatalf("end states diverge (%d vs %d bytes)", len(endA), len(endB))
			}
		})
	}
}

// TestRestoreDeterminismAcrossBatchShapes: the restored engine may see
// the suffix in completely different batch shapes and still match —
// state capture happens on batch boundaries, and batch shape is
// invisible to the kernels.
func TestRestoreDeterminismAcrossBatchShapes(t *testing.T) {
	trace := stateTrace(12000, 7)
	cut := 7321
	for _, spec := range []string{"stratified:interval=29,seed=5", "bernoulli:rate=0.04,seed=8"} {
		live, err := New(MustParse(spec))
		if err != nil {
			t.Fatal(err)
		}
		offerChunks(live, trace[:cut])
		blob, err := live.MarshalState()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := RestoreEngine(blob)
		if err != nil {
			t.Fatal(err)
		}
		keptLive := live.OfferBatch(trace[cut:]) // one giant batch
		keptRestored := 0
		for _, v := range trace[cut:] { // vs. tick by tick
			if _, ok := restored.Offer(v); ok {
				keptRestored++
			}
		}
		if keptLive != keptRestored {
			t.Fatalf("%s: kept %d via one batch, %d restored tick-by-tick", spec, keptLive, keptRestored)
		}
		endA, _ := live.MarshalState()
		endB, _ := restored.MarshalState()
		if !bytes.Equal(endA, endB) {
			t.Fatalf("%s: end states diverge", spec)
		}
	}
}

// TestRestoreEngineRejectsCorruption: the typed failure modes of the
// framing — truncation, bad magic, alien version, checksum damage.
func TestRestoreEngineRejectsCorruption(t *testing.T) {
	eng, err := New(MustParse("bernoulli:rate=0.1,seed=2"))
	if err != nil {
		t.Fatal(err)
	}
	eng.OfferBatch(stateTrace(500, 1))
	blob, err := eng.MarshalState()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := RestoreEngine(blob[:4]); !errors.Is(err, ErrBadState) {
		t.Errorf("truncated blob: %v, want ErrBadState", err)
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, err := RestoreEngine(bad); !errors.Is(err, ErrBadState) {
		t.Errorf("bad magic: %v, want ErrBadState", err)
	}
	bad = append([]byte(nil), blob...)
	bad[4] = 99
	if _, err := RestoreEngine(bad); !errors.Is(err, ErrStateVersion) {
		t.Errorf("alien version: %v, want ErrStateVersion", err)
	}
	bad = append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0x01
	if _, err := RestoreEngine(bad); !errors.Is(err, ErrStateChecksum) {
		t.Errorf("flipped payload bit: %v, want ErrStateChecksum", err)
	}
	// A group blob must not restore as an engine.
	g, err := NewGroup([]Spec{MustParse("systematic:interval=10")})
	if err != nil {
		t.Fatal(err)
	}
	gblob, err := g.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreEngine(gblob); !errors.Is(err, ErrBadState) {
		t.Errorf("group blob as engine: %v, want ErrBadState", err)
	}
}

// TestRestoreRejectsStateOptions: seed, budget and estimator belong to
// the blob; only the clock is injectable at restore time.
func TestRestoreRejectsStateOptions(t *testing.T) {
	eng, err := New(MustParse("systematic:interval=5"))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := eng.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreEngine(blob, WithSeed(9)); err == nil {
		t.Error("WithSeed accepted on restore")
	}
	if _, err := RestoreEngine(blob, WithBudget(10)); err == nil {
		t.Error("WithBudget accepted on restore")
	}
	if _, err := RestoreEngine(blob, WithEstimator("aggvar")); err == nil {
		t.Error("WithEstimator accepted on restore")
	}
	if _, err := RestoreEngine(blob, WithClock(func() time.Time { return time.Unix(0, 0) })); err != nil {
		t.Errorf("WithClock rejected on restore: %v", err)
	}
}

// TestGroupRestoreDeterminism: a group checkpointed mid-stream restores
// with its shared input reference and every member's state intact, and
// continues identically.
func TestGroupRestoreDeterminism(t *testing.T) {
	trace := stateTrace(15000, 21)
	cut := 9973
	specs := []Spec{
		MustParse("systematic:interval=40"),
		MustParse("stratified:interval=40,seed=4"),
		MustParse("bernoulli:rate=0.025,seed=6"),
		MustParse("bss:interval=40,L=3,eps=1.2"),
	}
	clock := func() time.Time { return time.Unix(1700000000, 0) }
	live, err := NewGroup(specs, WithEstimator("wavelet"), WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	live.OfferBatch(trace[:cut])

	blob, err := live.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreGroup(blob, WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != live.Len() {
		t.Fatalf("restored %d members, want %d", restored.Len(), live.Len())
	}

	ka := live.OfferBatch(trace[cut:])
	kb := restored.OfferBatch(trace[cut:])
	if ka != kb {
		t.Fatalf("suffix kept %d live, %d restored", ka, kb)
	}
	ca, cb := live.Snapshot(), restored.Snapshot()
	if ca.Seen != cb.Seen || fmt.Sprintf("%v/%v", ca.Mean, ca.Variance) != fmt.Sprintf("%v/%v", cb.Mean, cb.Variance) {
		t.Fatalf("group references diverge:\nlive     %+v\nrestored %+v", ca, cb)
	}
	if (ca.Hurst == nil) != (cb.Hurst == nil) ||
		(ca.Hurst != nil && fmt.Sprintf("%+v", *ca.Hurst) != fmt.Sprintf("%+v", *cb.Hurst)) {
		t.Fatalf("group hurst diverges")
	}
	for i := range ca.Members {
		sa, sb := ca.Members[i].Summary, cb.Members[i].Summary
		if sa.Seen != sb.Seen || sa.Kept != sb.Kept || fmt.Sprintf("%v", sa.Mean) != fmt.Sprintf("%v", sb.Mean) {
			t.Fatalf("member %d diverges:\nlive     %+v\nrestored %+v", i, sa, sb)
		}
	}
	endA, err := live.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	endB, err := restored.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(endA, endB) {
		t.Fatalf("group end states diverge (%d vs %d bytes)", len(endA), len(endB))
	}
}

// TestRestoreFinishedEngine: a finished engine round-trips with its
// lifecycle state and error message intact.
func TestRestoreFinishedEngine(t *testing.T) {
	eng, err := New(MustParse("simple:n=10,seed=5"))
	if err != nil {
		t.Fatal(err)
	}
	// Finish with fewer ticks than n so Finish returns a typed error.
	eng.OfferBatch(stateTrace(5, 3))
	if _, err := eng.Finish(); err == nil {
		t.Fatal("expected a finish error (n > population)")
	}
	blob, err := eng.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Finished() {
		t.Error("restored engine lost its finished state")
	}
	snap := restored.Snapshot()
	if snap.Err == nil || snap.Err.Error() != eng.Snapshot().Err.Error() {
		t.Errorf("finish error message lost: %v", snap.Err)
	}
	if kept := restored.OfferBatch([]float64{1, 2, 3}); kept != 0 {
		t.Errorf("finished restored engine kept %d samples", kept)
	}
}
