package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one flight-recorder entry: a request served, an error
// returned, an ingest milestone. Fields beyond At and Kind are
// optional and omitted from the JSON form when zero.
type Event struct {
	At     time.Time     `json:"at"`
	Kind   string        `json:"kind"`
	Route  string        `json:"route,omitempty"`
	ID     string        `json:"id,omitempty"` // stream or group id
	Wire   string        `json:"wire,omitempty"`
	Status int           `json:"status,omitempty"`
	Dur    time.Duration `json:"duration_ns,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// Recorder is a fixed-size ring of recent events in the style of
// x/net/trace: the last N things the serving path did, kept cheaply
// enough to stay on under load. Record claims a slot with one atomic
// add and copies the event under that slot's own mutex — writers
// contend only when the ring wraps onto the same slot, never on a
// global lock.
type Recorder struct {
	slots []eventSlot
	mask  uint64
	next  atomic.Uint64 // events ever recorded; slot index is (n-1)&mask
}

type eventSlot struct {
	mu  sync.Mutex
	seq uint64 // 1-based recording sequence; 0 means never written
	ev  Event
}

// NewRecorder builds a recorder holding the most recent size events
// (rounded up to a power of two, minimum 16).
func NewRecorder(size int) *Recorder {
	n := 16
	for n < size {
		n <<= 1
	}
	return &Recorder{slots: make([]eventSlot, n), mask: uint64(n - 1)}
}

// Record appends one event, overwriting the oldest once the ring is
// full.
func (r *Recorder) Record(ev Event) {
	seq := r.next.Add(1)
	s := &r.slots[(seq-1)&r.mask]
	s.mu.Lock()
	s.seq = seq
	s.ev = ev
	s.mu.Unlock()
}

// Total returns how many events have ever been recorded (including
// those the ring has since overwritten).
func (r *Recorder) Total() uint64 { return r.next.Load() }

// Events returns a snapshot of the ring, newest first. Concurrent
// Records may land mid-snapshot; each slot is read consistently under
// its own lock.
func (r *Recorder) Events() []Event {
	type numbered struct {
		seq uint64
		ev  Event
	}
	snap := make([]numbered, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.seq != 0 {
			snap = append(snap, numbered{s.seq, s.ev})
		}
		s.mu.Unlock()
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i].seq > snap[j].seq })
	out := make([]Event, len(snap))
	for i, n := range snap {
		out[i] = n.ev
	}
	return out
}

// ServeHTTP renders the ring as JSON, newest event first — the
// GET /debug/events document:
//
//	{"total": 1234, "capacity": 256, "events": [{"at": ..., "kind": "request", ...}, ...]}
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Total    uint64  `json:"total"`
		Capacity int     `json:"capacity"`
		Events   []Event `json:"events"`
	}{Total: r.Total(), Capacity: len(r.slots), Events: r.Events()})
}
