package obs

import (
	"io"
	"math"
	"strconv"
)

// WriteText renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, each as
// a HELP line, a TYPE line, then its series — histogram children as
// cumulative le-labeled buckets ending in le="+Inf", plus _sum and
// _count. Scrapes are serialized; OnScrape hooks run first.
func (r *Registry) WriteText(w io.Writer) (int, error) {
	r.scrapeMu.Lock()
	defer r.scrapeMu.Unlock()
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, f := range hooks {
		f()
	}
	b := make([]byte, 0, 4096)
	for _, fam := range r.sortedFamilies() {
		b = fam.appendText(b)
	}
	return w.Write(b)
}

func (f *family) appendText(b []byte) []byte {
	b = append(b, "# HELP "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = appendEscapedHelp(b, f.help)
	b = append(b, "\n# TYPE "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = append(b, f.typ...)
	b = append(b, '\n')
	for _, c := range f.snapshotChildren() {
		switch {
		case c.hist != nil:
			b = f.appendHistogram(b, c)
		case c.fn != nil:
			b = f.appendSeries(b, c, "", "", "")
			b = appendValue(b, c.fn())
			b = append(b, '\n')
		case c.counter != nil:
			b = f.appendSeries(b, c, "", "", "")
			b = strconv.AppendUint(b, c.counter.Value(), 10)
			b = append(b, '\n')
		case c.gauge != nil:
			b = f.appendSeries(b, c, "", "", "")
			b = appendValue(b, c.gauge.Value())
			b = append(b, '\n')
		}
	}
	return b
}

func (f *family) appendHistogram(b []byte, c *child) []byte {
	cum, total, sum := c.hist.snapshot()
	for i, bound := range c.hist.bounds {
		b = f.appendSeries(b, c, "_bucket", "le", formatBound(bound))
		b = strconv.AppendUint(b, cum[i], 10)
		b = append(b, '\n')
	}
	b = f.appendSeries(b, c, "_bucket", "le", "+Inf")
	b = strconv.AppendUint(b, total, 10)
	b = append(b, '\n')
	b = f.appendSeries(b, c, "_sum", "", "")
	b = appendValue(b, sum)
	b = append(b, '\n')
	b = f.appendSeries(b, c, "_count", "", "")
	b = strconv.AppendUint(b, total, 10)
	b = append(b, '\n')
	return b
}

// appendSeries writes `name{label="value",...} ` (with the trailing
// space, value appended by the caller), including the extra label —
// the histogram's le — when given.
func (f *family) appendSeries(b []byte, c *child, suffix, extraLabel, extraValue string) []byte {
	b = append(b, f.name...)
	b = append(b, suffix...)
	if len(f.labels) > 0 || extraLabel != "" {
		b = append(b, '{')
		for i, l := range f.labels {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, l...)
			b = append(b, '=', '"')
			b = appendEscapedLabel(b, c.labelValues[i])
			b = append(b, '"')
		}
		if extraLabel != "" {
			if len(f.labels) > 0 {
				b = append(b, ',')
			}
			b = append(b, extraLabel...)
			b = append(b, '=', '"')
			b = append(b, extraValue...)
			b = append(b, '"')
		}
		b = append(b, '}')
	}
	return append(b, ' ')
}

// appendValue formats a sample value: NaN/±Inf spelled out, integral
// values in plain decimal (matching the %d the hand-rolled exposition
// used, so a counter never flips to scientific notation), everything
// else in shortest-round-trip form.
func appendValue(b []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(b, "NaN"...)
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.AppendFloat(b, v, 'f', -1, 64)
	default:
		return strconv.AppendFloat(b, v, 'g', -1, 64)
	}
}

// formatBound renders a bucket upper bound for the le label.
func formatBound(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// appendEscapedHelp escapes a HELP string: backslash and newline.
func appendEscapedHelp(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// appendEscapedLabel escapes a label value: backslash, quote, newline.
func appendEscapedLabel(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return b
}
