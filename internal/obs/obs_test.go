package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// --- a minimal Prometheus text-format parser ---
//
// Enough of the 0.0.4 grammar to verify our own writer: HELP/TYPE
// comment handling, label unescaping, sample values. Structure errors
// (samples before TYPE, TYPE before HELP, samples of a foreign family)
// fail the test immediately.

type parsedSample struct {
	name   string
	labels map[string]string
	value  float64
}

type parsedFamily struct {
	name, help, typ string
	samples         []parsedSample
}

// sampleFamily strips a histogram suffix off a sample name.
func sampleFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func parseExposition(t *testing.T, text string) []parsedFamily {
	t.Helper()
	var fams []parsedFamily
	cur := -1 // index into fams
	sawType := false
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			fams = append(fams, parsedFamily{name: name, help: unescapeHelp(help)})
			cur = len(fams) - 1
			sawType = false
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, _ := strings.Cut(rest, " ")
			if cur < 0 || fams[cur].name != name {
				t.Fatalf("line %d: TYPE %s without a preceding HELP %s", ln+1, name, name)
			}
			if sawType {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			fams[cur].typ = typ
			sawType = true
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			s := parseSample(t, ln+1, line)
			if cur < 0 || sampleFamily(s.name) != fams[cur].name {
				t.Fatalf("line %d: sample %s outside its family block (current %q)", ln+1, s.name, fams[cur].name)
			}
			if !sawType {
				t.Fatalf("line %d: sample %s before its TYPE line", ln+1, s.name)
			}
			fams[cur].samples = append(fams[cur].samples, s)
		}
	}
	return fams
}

func parseSample(t *testing.T, ln int, line string) parsedSample {
	t.Helper()
	s := parsedSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.name = line[:i]
		rest = line[i+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				t.Fatalf("line %d: malformed label in %q", ln, line)
			}
			label := rest[:eq]
			val, tail, err := unquoteLabel(rest[eq+2:])
			if err != nil {
				t.Fatalf("line %d: %v in %q", ln, err, line)
			}
			s.labels[label] = val
			rest = tail
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if !strings.HasPrefix(rest, "} ") {
				t.Fatalf("line %d: expected \"} \" after labels in %q", ln, line)
			}
			rest = rest[2:]
			break
		}
	} else {
		var ok bool
		s.name, rest, ok = strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: no value in %q", ln, line)
		}
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", ln, rest, err)
	}
	s.value = v
	return s
}

// unquoteLabel consumes an escaped label value up to its closing quote
// and returns the decoded value plus the remainder after the quote.
func unquoteLabel(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

func scrape(t *testing.T, r *Registry) []parsedFamily {
	t.Helper()
	var buf bytes.Buffer
	if _, err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return parseExposition(t, buf.String())
}

func findFamily(t *testing.T, fams []parsedFamily, name string) parsedFamily {
	t.Helper()
	for _, f := range fams {
		if f.name == name {
			return f
		}
	}
	t.Fatalf("family %s not in exposition", name)
	return parsedFamily{}
}

// --- exposition writer ---

func TestWriteTextOrderingAndTypes(t *testing.T) {
	r := NewRegistry()
	// Registered deliberately out of name order.
	r.NewGauge("zz_last", "Last by name.").Set(3)
	r.NewCounter("aa_first_total", "First by name.").Add(7)
	r.NewHistogram("mm_mid_seconds", "Middle.", []float64{1, 2})
	fams := parseExposition(t, func() string {
		var buf bytes.Buffer
		r.WriteText(&buf)
		return buf.String()
	}())
	var names []string
	for _, f := range fams {
		names = append(names, f.name)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("families not sorted by name: %v", names)
	}
	if got := findFamily(t, fams, "aa_first_total"); got.typ != "counter" || got.help != "First by name." || got.samples[0].value != 7 {
		t.Fatalf("counter family mangled: %+v", got)
	}
	if got := findFamily(t, fams, "zz_last"); got.typ != "gauge" || got.samples[0].value != 3 {
		t.Fatalf("gauge family mangled: %+v", got)
	}
	if got := findFamily(t, fams, "mm_mid_seconds"); got.typ != "histogram" {
		t.Fatalf("histogram family mangled: %+v", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	tricky := "a\\b\"c\nd"
	r.NewCounterVec("esc_total", "Help with \\ backslash\nand newline.", "k").With(tricky).Add(1)
	fam := findFamily(t, scrape(t, r), "esc_total")
	if fam.help != "Help with \\ backslash\nand newline." {
		t.Fatalf("help round-trip failed: %q", fam.help)
	}
	if got := fam.samples[0].labels["k"]; got != tricky {
		t.Fatalf("label round-trip failed: %q != %q", got, tricky)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogramVec("lat_seconds", "Latency.", []float64{0.1, 1, 10}, "route").With("a")
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	fam := findFamily(t, scrape(t, r), "lat_seconds")
	var buckets []parsedSample
	var sum, count *parsedSample
	for i := range fam.samples {
		s := fam.samples[i]
		switch s.name {
		case "lat_seconds_bucket":
			buckets = append(buckets, s)
		case "lat_seconds_sum":
			sum = &fam.samples[i]
		case "lat_seconds_count":
			count = &fam.samples[i]
		}
	}
	wantBuckets := map[string]float64{"0.1": 1, "1": 3, "10": 4, "+Inf": 5}
	if len(buckets) != len(wantBuckets) {
		t.Fatalf("got %d bucket lines, want %d", len(buckets), len(wantBuckets))
	}
	prev := -1.0
	for _, b := range buckets {
		le := b.labels["le"]
		if b.labels["route"] != "a" {
			t.Fatalf("bucket lost its route label: %+v", b)
		}
		if want := wantBuckets[le]; b.value != want {
			t.Fatalf("bucket le=%s = %v, want %v", le, b.value, want)
		}
		if b.value < prev {
			t.Fatalf("cumulative buckets not monotone at le=%s: %v < %v", le, b.value, prev)
		}
		prev = b.value
	}
	if buckets[len(buckets)-1].labels["le"] != "+Inf" {
		t.Fatalf("last bucket is le=%s, want +Inf", buckets[len(buckets)-1].labels["le"])
	}
	if count == nil || count.value != 5 {
		t.Fatalf("_count = %+v, want 5", count)
	}
	if buckets[len(buckets)-1].value != count.value {
		t.Fatalf("+Inf bucket %v != _count %v", buckets[len(buckets)-1].value, count.value)
	}
	if sum == nil || math.Abs(sum.value-56.05) > 1e-9 {
		t.Fatalf("_sum = %+v, want 56.05", sum)
	}
}

func TestValueFormatting(t *testing.T) {
	r := NewRegistry()
	r.NewGaugeFunc("fmt_nan", "NaN gauge.", func() float64 { return math.NaN() })
	r.NewGaugeFunc("fmt_big", "Large integral gauge.", func() float64 { return 12345678901234 })
	r.NewGaugeFunc("fmt_neg_inf", "Negative infinity.", func() float64 { return math.Inf(-1) })
	var buf bytes.Buffer
	r.WriteText(&buf)
	text := buf.String()
	for _, want := range []string{"fmt_nan NaN\n", "fmt_big 12345678901234\n", "fmt_neg_inf -Inf\n"} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q:\n%s", want, text)
		}
	}
}

func TestOnScrapeRunsBeforeFuncs(t *testing.T) {
	r := NewRegistry()
	var v float64
	r.OnScrape(func() { v = 42 })
	r.NewGaugeFunc("hooked", "Hook-fed gauge.", func() float64 { return v })
	fam := findFamily(t, scrape(t, r), "hooked")
	if fam.samples[0].value != 42 {
		t.Fatalf("hook did not run before func read: %v", fam.samples[0].value)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.NewCounter("dup_total", "x")
	mustPanic("duplicate", func() { r.NewGauge("dup_total", "y") })
	mustPanic("bad name", func() { r.NewCounter("has space", "x") })
	mustPanic("bad label", func() { r.NewCounterVec("v_total", "x", "l=l") })
	mustPanic("bad bounds", func() { r.NewHistogram("h_seconds", "x", []float64{1, 1}) })
	mustPanic("label arity", func() { r.NewCounterVec("arity_total", "x", "a", "b").With("only-one") })
}

// --- hot-path allocation and quantiles ---

func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("alloc_total", "x")
	g := r.NewGauge("alloc_gauge", "x")
	h := r.NewHistogram("alloc_seconds", "x", DurationBuckets())
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op", n)
	}
	v := 0.0001
	if n := testing.AllocsPerRun(1000, func() { h.Observe(v); v *= 1.01 }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
}

func TestQuantile(t *testing.T) {
	h := NewBareHistogram([]float64{1, 2, 4, 8})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatalf("empty histogram quantile should be NaN")
	}
	// 100 observations uniform in (0, 4]: 25 per finite bucket 1,2,4
	// and 25 in (2,4]... use a simple spread instead.
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%8) + 0.5) // values .5..7.5 uniformly
	}
	if q := h.Quantile(0.5); q < 1 || q > 5 {
		t.Fatalf("p50 = %v, want within [1, 5]", q)
	}
	if q := h.Quantile(1); q != 8 {
		t.Fatalf("p100 = %v, want upper bound 8", q)
	}
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Fatalf("out-of-range q must be NaN")
	}
	// Observations beyond every bound clamp to the highest finite bound.
	h2 := NewBareHistogram([]float64{1})
	h2.Observe(100)
	if q := h2.Quantile(0.99); q != 1 {
		t.Fatalf("+Inf-bucket quantile = %v, want clamp to 1", q)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 4, 10)
	if len(b) != 10 || b[0] != 1e-6 {
		t.Fatalf("bad buckets %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not increasing at %d: %v", i, b)
		}
	}
}

// --- flight recorder ---

func TestRecorderWrapAndOrder(t *testing.T) {
	rec := NewRecorder(16)
	for i := 0; i < 40; i++ {
		rec.Record(Event{Kind: "request", ID: fmt.Sprintf("e%d", i)})
	}
	if rec.Total() != 40 {
		t.Fatalf("Total = %d, want 40", rec.Total())
	}
	evs := rec.Events()
	if len(evs) != 16 {
		t.Fatalf("ring holds %d, want 16", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("e%d", 39-i); ev.ID != want {
			t.Fatalf("event %d = %s, want %s (newest first)", i, ev.ID, want)
		}
	}
}

func TestRecorderServeHTTP(t *testing.T) {
	rec := NewRecorder(16)
	rec.Record(Event{Kind: "error", Route: "GET /x", Status: 500, Detail: "boom"})
	rr := httptest.NewRecorder()
	rec.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/events", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var doc struct {
		Total    uint64  `json:"total"`
		Capacity int     `json:"capacity"`
		Events   []Event `json:"events"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if doc.Total != 1 || doc.Capacity != 16 || len(doc.Events) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	if e := doc.Events[0]; e.Kind != "error" || e.Status != 500 || e.Detail != "boom" {
		t.Fatalf("event = %+v", e)
	}
}

// --- HTTP observer ---

func TestHTTPObserverWrap(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(16)
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	o := NewHTTPObserver(reg, "t", []string{"GET /v1/streams/{id}", "other"}, rec, logger)
	now := time.Unix(100, 0)
	o.SetClock(func() time.Time {
		now = now.Add(50 * time.Millisecond)
		return now
	})
	mux := http.NewServeMux()
	mux.Handle("GET /v1/streams/{id}", o.Wrap("GET /v1/streams/{id}", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("id") == "missing" {
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error":"no such stream"}`))
			return
		}
		w.Write([]byte("ok"))
	})))

	for _, path := range []string{"/v1/streams/s1", "/v1/streams/s2", "/v1/streams/missing"} {
		rr := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, path, strings.NewReader("body"))
		mux.ServeHTTP(rr, req)
	}

	fams := scrape(t, reg)
	dur := findFamily(t, fams, "t_http_request_duration_seconds")
	var count, sum float64
	for _, s := range dur.samples {
		if s.name == "t_http_request_duration_seconds_count" && s.labels["route"] == "GET /v1/streams/{id}" {
			count = s.value
		}
		if s.name == "t_http_request_duration_seconds_sum" && s.labels["route"] == "GET /v1/streams/{id}" {
			sum = s.value
		}
	}
	if count != 3 {
		t.Fatalf("duration count = %v, want 3", count)
	}
	if math.Abs(sum-0.150) > 1e-9 {
		t.Fatalf("duration sum = %v, want 0.150 (3 x 50ms pinned clock)", sum)
	}
	reqs := findFamily(t, fams, "t_http_requests_total")
	classes := map[string]float64{}
	for _, s := range reqs.samples {
		if s.value > 0 {
			classes[s.labels["class"]] = s.value
		}
	}
	if classes["2xx"] != 2 || classes["4xx"] != 1 {
		t.Fatalf("status classes = %v, want 2xx:2 4xx:1", classes)
	}
	size := findFamily(t, fams, "t_http_request_bytes")
	for _, s := range size.samples {
		if s.name == "t_http_request_bytes_count" && s.labels["route"] == "GET /v1/streams/{id}" && s.value != 3 {
			t.Fatalf("size count = %v, want 3", s.value)
		}
	}

	evs := rec.Events()
	if len(evs) != 3 {
		t.Fatalf("recorder holds %d events, want 3", len(evs))
	}
	if evs[0].Kind != "error" || evs[0].Status != 404 || evs[0].ID != "missing" ||
		!strings.Contains(evs[0].Detail, "no such stream") {
		t.Fatalf("newest event = %+v, want the 404 with its body as detail", evs[0])
	}
	if evs[1].Kind != "request" || evs[1].ID != "s2" || evs[1].Dur != 50*time.Millisecond {
		t.Fatalf("event = %+v", evs[1])
	}

	logs := logBuf.String()
	if strings.Count(logs, `"route":"GET /v1/streams/{id}"`) != 3 {
		t.Fatalf("want 3 request log lines, got:\n%s", logs)
	}
	if !strings.Contains(logs, `"level":"WARN"`) || !strings.Contains(logs, `"id":"missing"`) {
		t.Fatalf("404 should log at WARN with its id:\n%s", logs)
	}
}

func TestHTTPObserverUnknownRoutePanics(t *testing.T) {
	reg := NewRegistry()
	o := NewHTTPObserver(reg, "t", []string{"a"}, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatalf("Wrap of an unregistered route must panic")
		}
	}()
	o.Wrap("b", http.NotFoundHandler())
}

// --- logging and build info ---

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept", "k", 1)
	if strings.Contains(buf.String(), "dropped") {
		t.Fatalf("info leaked past warn level: %s", buf.String())
	}
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("not JSON: %v: %s", err, buf.String())
	}
	if line["msg"] != "kept" || line["k"] != 1.0 {
		t.Fatalf("line = %v", line)
	}
	if _, err := NewLogger(&buf, "yaml", "info"); err == nil {
		t.Fatalf("bad format must error")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Fatalf("bad level must error")
	}
}

func TestBuildInfo(t *testing.T) {
	v, gv := BuildInfo()
	if v == "" || gv == "" {
		t.Fatalf("BuildInfo() = %q, %q", v, gv)
	}
	if !strings.HasPrefix(gv, "go") && !strings.HasPrefix(gv, "devel") {
		t.Fatalf("go version = %q", gv)
	}
}

// --- runtime metrics ---

func TestRegisterRuntime(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r, "t")
	fams := scrape(t, r)
	if g := findFamily(t, fams, "t_goroutines"); g.samples[0].value < 1 {
		t.Fatalf("goroutines = %v, want >= 1", g.samples[0].value)
	}
	if h := findFamily(t, fams, "t_heap_objects_bytes"); h.samples[0].value <= 0 {
		t.Fatalf("heap bytes = %v, want > 0", h.samples[0].value)
	}
	gc := findFamily(t, fams, "t_gc_pause_seconds_total")
	if gc.typ != "counter" || gc.samples[0].value < 0 || math.IsNaN(gc.samples[0].value) {
		t.Fatalf("gc pause total = %+v", gc)
	}
}
