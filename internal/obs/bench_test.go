package obs

import "testing"

// The instrument hot paths sit on the daemon's per-request and
// per-frame serving paths; these benchmarks are gated in CI against
// bench_baseline.json.

func BenchmarkObsCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.NewCounter("bench_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsObserve(b *testing.B) {
	r := NewRegistry()
	h := r.NewHistogram("bench_seconds", "x", DurationBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}
