package obs

import (
	"math"
	"runtime/metrics"
)

// RegisterRuntime registers process-health series derived from
// runtime/metrics under the given prefix:
//
//	<prefix>_goroutines              gauge    live goroutines
//	<prefix>_heap_objects_bytes     gauge    bytes of live heap objects
//	<prefix>_gc_pause_seconds_total counter  cumulative GC stop-the-world pause
//
// The samples are read once per scrape via an OnScrape hook; the GC
// pause total is reconstructed from the runtime's pause histogram by
// bucket-midpoint sum, so it is an estimate (runtime/metrics exposes
// no exact scalar), monotone because the bucket counts only grow.
func RegisterRuntime(r *Registry, prefix string) {
	goroutines := r.NewGauge(prefix+"_goroutines", "Live goroutines.")
	heap := r.NewGauge(prefix+"_heap_objects_bytes", "Bytes of live heap objects.")
	var gcPause float64
	r.NewCounterFunc(prefix+"_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause seconds (bucket-midpoint estimate from the runtime pause histogram).",
		func() float64 { return gcPause })
	samples := []metrics.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/pauses:seconds"},
	}
	r.OnScrape(func() {
		metrics.Read(samples)
		if samples[0].Value.Kind() == metrics.KindUint64 {
			goroutines.Set(float64(samples[0].Value.Uint64()))
		}
		if samples[1].Value.Kind() == metrics.KindUint64 {
			heap.Set(float64(samples[1].Value.Uint64()))
		}
		if samples[2].Value.Kind() == metrics.KindFloat64Histogram {
			gcPause = histogramMidpointSum(samples[2].Value.Float64Histogram())
		}
	})
}

// histogramMidpointSum estimates the value total of a runtime
// Float64Histogram as the count-weighted sum of bucket midpoints,
// substituting the finite edge for a ±Inf boundary.
func histogramMidpointSum(h *metrics.Float64Histogram) float64 {
	var total float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = hi
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		total += float64(n) * (lo + hi) / 2
	}
	return total
}
