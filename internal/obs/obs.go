package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration is startup-time work (duplicate
// or malformed registrations panic — they are programmer errors, not
// runtime conditions); the metric handles it returns are safe for
// concurrent use on hot paths.
type Registry struct {
	mu       sync.Mutex // guards families and hooks
	families map[string]*family

	// hooks run at the top of every WriteText, serialized by scrapeMu:
	// the place to refresh func-backed metrics from one shared snapshot
	// instead of once per series.
	hooks    []func()
	scrapeMu sync.Mutex
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnScrape registers f to run at the start of every WriteText, before
// any func-backed metric is read. Hooks run under the scrape lock, so
// values they write are safe to read from NewGaugeFunc/NewCounterFunc
// closures without further synchronization.
func (r *Registry) OnScrape(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, f)
}

// family is one exposition block: HELP, TYPE, then every child's
// series lines.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge" or "histogram"
	labels []string
	bounds []float64 // histogram families only

	mu       sync.Mutex // guards children (With may race with a scrape)
	children []*child
	byKey    map[string]*child
}

// child is one series (or one histogram series set) of a family: a
// concrete metric plus the label values that address it.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	fn          func() float64 // func-backed counter/gauge
}

// register creates a family, panicking on duplicates and malformed
// names — registration is startup code, and a typo must not surface as
// a silently missing series.
func (r *Registry) register(name, help, typ string, labels []string, bounds []float64) *family {
	if name == "" || strings.ContainsAny(name, " \n\t{}\"") {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if l == "" || strings.ContainsAny(l, " \n\t{}\"=") {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l, name))
		}
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %s bucket bounds not strictly increasing", name))
		}
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, bounds: bounds,
		byKey: make(map[string]*child)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %s registered twice", name))
	}
	r.families[name] = f
	return f
}

// addChild mints (or returns) the child addressed by values.
func (f *family) addChild(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s takes %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.byKey[key]; ok {
		return c
	}
	c := &child{labelValues: append([]string(nil), values...)}
	switch f.typ {
	case "counter":
		c.counter = &Counter{}
	case "gauge":
		c.gauge = &Gauge{}
	case "histogram":
		c.hist = NewBareHistogram(f.bounds)
	}
	f.byKey[key] = c
	f.children = append(f.children, c)
	return c
}

// snapshotChildren copies the child list for rendering.
func (f *family) snapshotChildren() []*child {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*child(nil), f.children...)
}

// sortedFamilies returns the families in name order — the exposition
// is deterministic so scrape diffs are meaningful.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(name, help, "counter", nil, nil).addChild(nil).counter
}

// NewCounterFunc registers a counter whose value is read from fn at
// scrape time — the mirror for a cumulative total owned elsewhere
// (e.g. the hub's shard counters). fn runs under the scrape lock.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", nil, nil).addChild(nil).fn = fn
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(name, help, "gauge", nil, nil).addChild(nil).gauge
}

// NewGaugeFunc registers a gauge read from fn at scrape time. fn runs
// under the scrape lock.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", nil, nil).addChild(nil).fn = fn
}

// NewHistogram registers an unlabeled histogram over the given bucket
// upper bounds (ascending; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, "histogram", nil, buckets).addChild(nil).hist
}

// CounterVec is a labeled counter family; mint children once at
// startup with With and hold the returned handles on the hot path.
type CounterVec struct{ fam *family }

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, "counter", labels, nil)}
}

// With returns the child counter for the given label values, creating
// it on first use. Allocates; call at registration time, not per
// request.
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.addChild(values).counter
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ fam *family }

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, "gauge", labels, nil)}
}

// With returns the child gauge for the given label values, creating it
// on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.fam.addChild(values).gauge
}

// HistogramVec is a labeled histogram family; every child shares the
// family's bucket bounds.
type HistogramVec struct{ fam *family }

// NewHistogramVec registers a labeled histogram family over the given
// bucket upper bounds.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, "histogram", labels, buckets)}
}

// With returns the child histogram for the given label values,
// creating it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.fam.addChild(values).hist
}

// Counter is a monotonically increasing count. The zero value is
// ready to use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
//
//samplelint:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//samplelint:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value reads 0.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
//
//samplelint:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets and tracks their
// sum. Observe is one atomic bucket increment plus a CAS float add —
// zero allocations — so it can sit on the per-request and per-frame
// serving paths.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-added
}

// NewBareHistogram builds an unregistered histogram over the given
// bucket upper bounds (ascending; +Inf is implicit) — the client-side
// form load generators use to track request latency without standing
// up a registry. The bounds slice is copied.
func NewBareHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic("obs: histogram bucket bounds not strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
//
//samplelint:hotpath
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket ladders are short (tens of bounds) and the
	// scan is branch-predictable; a binary search buys nothing here.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nb) {
			return
		}
	}
}

// snapshot returns cumulative per-bucket counts (ending with the +Inf
// bucket), the total observation count and the value sum. Reads race
// benignly with concurrent Observes — a scrape sees some consistent
// recent past, which is all a monitoring surface needs.
func (h *Histogram) snapshot() (cum []uint64, total uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	for i := range h.counts {
		total += h.counts[i].Load()
		cum[i] = total
	}
	return cum, total, math.Float64frombits(h.sum.Load())
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of observed values so far.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts by linear interpolation inside the target bucket — the same
// estimate Prometheus's histogram_quantile computes. Observations in
// the +Inf bucket clamp to the highest finite bound. Returns NaN on an
// empty histogram or q outside [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	cum, total, _ := h.snapshot()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	i := 0
	for i < len(cum)-1 && float64(cum[i]) < rank {
		i++
	}
	if i >= len(h.bounds) {
		// The +Inf bucket has no upper edge to interpolate toward.
		if len(h.bounds) == 0 {
			return math.NaN()
		}
		return h.bounds[len(h.bounds)-1]
	}
	hi := h.bounds[i]
	lo := 0.0
	prev := uint64(0)
	if i > 0 {
		lo = h.bounds[i-1]
		prev = cum[i-1]
	} else if hi <= 0 {
		lo = hi
	}
	n := cum[i] - prev
	if n == 0 {
		return hi
	}
	return lo + (hi-lo)*(rank-float64(prev))/float64(n)
}

// ExpBuckets returns n exponentially spaced bucket upper bounds
// starting at start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets returns the default request-latency ladder: 500µs to
// 10s, the range a loopback microservice and a loaded WAN hop both
// land in.
func DurationBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}
