// Package obs is the serving path's observability layer: a stdlib-only
// metrics registry with a Prometheus text exposition, structured
// logging built on log/slog, an HTTP middleware that histograms every
// route, and a fixed-size flight recorder of recent request and error
// events for post-hoc forensics.
//
// The paper's argument is measurement under self-similar load, and the
// same discipline applies to the service that does the measuring: the
// hot-path instruments (Counter.Add, Gauge.Set, Histogram.Observe) are
// single atomic operations, zero allocations per call, cheap enough to
// sit on the ingest path at millions of ticks per second. Everything
// expensive — rendering, sorting, label joins — happens at scrape time
// in WriteText.
//
// Four pieces:
//
//   - Registry: pre-registered Counter/Gauge/Histogram families, with
//     labeled children minted once at startup (CounterVec.With and
//     friends) so the hot path holds a direct pointer and never
//     formats a label. Func-backed variants (NewGaugeFunc,
//     NewCounterFunc) mirror values owned elsewhere — the hub's shard
//     counters — and OnScrape hooks let one snapshot feed many series.
//   - Exposition: WriteText renders the Prometheus text format —
//     sorted families, HELP before TYPE before samples, escaped label
//     values, cumulative histogram buckets ending in le="+Inf".
//   - Recorder: a fixed-size, lock-cheap ring of recent Events
//     (requests, errors, ingest milestones) in the style of
//     x/net/trace, served as JSON — the "what just happened" surface a
//     lifetime counter cannot provide.
//   - HTTPObserver: per-route duration/size histograms plus a
//     status-class counter, wired around each handler at mux
//     registration time, feeding the recorder and a request-scoped
//     slog line.
//
// The package takes its clock by injection (the default is the
// time.Now reference, never a buried call), so the samplelint
// detsource analyzer holds it to the same determinism discipline as
// the sampling core.
package obs
