package obs

import (
	"log/slog"
	"net/http"
	"time"
)

// HTTPObserver instruments a mux's routes: a per-route request
// duration histogram, a per-route request size histogram, a
// route×status-class counter, a flight-recorder event per request and
// a request-scoped slog line. Children are pre-registered for every
// route at construction, so the per-request path is map lookups and
// atomic observes — no label formatting.
//
// Wrap is applied per handler at mux registration time (not as an
// outer middleware) so the route label is the static pattern and
// r.PathValue is live inside the observation.
type HTTPObserver struct {
	clock    func() time.Time
	logger   *slog.Logger
	recorder *Recorder
	routes   map[string]*routeInstruments
}

// routeInstruments is one route's pre-registered children.
type routeInstruments struct {
	dur     *Histogram
	size    *Histogram
	classes [6]*Counter // by status/100: classes[2] is 2xx; 0 and 1 unused
}

// statusClasses are the pre-registered status-class label values.
var statusClasses = [6]string{"", "1xx", "2xx", "3xx", "4xx", "5xx"}

// NewHTTPObserver registers the HTTP families under prefix (e.g.
// "sampled" gives sampled_http_request_duration_seconds) and
// pre-registers children for every given route label. recorder and
// logger are optional; the clock defaults to time.Now and is
// overridable with SetClock for tests.
func NewHTTPObserver(reg *Registry, prefix string, routes []string, rec *Recorder, logger *slog.Logger) *HTTPObserver {
	dur := reg.NewHistogramVec(prefix+"_http_request_duration_seconds",
		"Request wall time by route, from first byte read to handler return.",
		DurationBuckets(), "route")
	size := reg.NewHistogramVec(prefix+"_http_request_bytes",
		"Declared request body size by route (requests with unknown length are not observed).",
		ExpBuckets(64, 4, 10), "route")
	reqs := reg.NewCounterVec(prefix+"_http_requests_total",
		"Requests served, by route and status class.", "route", "class")
	o := &HTTPObserver{
		clock:    time.Now,
		logger:   logger,
		recorder: rec,
		routes:   make(map[string]*routeInstruments, len(routes)),
	}
	for _, route := range routes {
		ri := &routeInstruments{dur: dur.With(route), size: size.With(route)}
		for class := 1; class < len(ri.classes); class++ {
			ri.classes[class] = reqs.With(route, statusClasses[class])
		}
		o.routes[route] = ri
	}
	return o
}

// SetClock overrides the observer's clock (tests pin durations with
// it).
func (o *HTTPObserver) SetClock(fn func() time.Time) { o.clock = fn }

// Wrap instruments one handler under the given route label, which
// must be one of the routes the observer was built with.
func (o *HTTPObserver) Wrap(route string, next http.Handler) http.Handler {
	ri, ok := o.routes[route]
	if !ok {
		panic("obs: route " + route + " was not pre-registered with NewHTTPObserver")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := o.clock()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		dur := o.clock().Sub(start)
		ri.dur.Observe(dur.Seconds())
		if r.ContentLength >= 0 {
			ri.size.Observe(float64(r.ContentLength))
		}
		status := sw.statusCode()
		if class := status / 100; class >= 1 && class < len(ri.classes) {
			ri.classes[class].Inc()
		}
		id := r.PathValue("id")
		if o.recorder != nil {
			kind := "request"
			if status >= 400 {
				kind = "error"
			}
			o.recorder.Record(Event{
				At: start, Kind: kind, Route: route, ID: id,
				Status: status, Dur: dur, Detail: sw.detail(),
			})
		}
		if o.logger != nil {
			level := slog.LevelDebug
			switch {
			case status >= 500:
				level = slog.LevelError
			case status >= 400:
				level = slog.LevelWarn
			}
			o.logger.Log(r.Context(), level, "http",
				"route", route, "id", id, "status", status,
				"dur", dur, "bytes", sw.written)
		}
	})
}

// statusWriter captures the response status and size, and keeps the
// first bytes of an error body as flight-recorder detail.
type statusWriter struct {
	http.ResponseWriter
	code    int
	written int64
	errBody []byte
}

const errDetailCap = 200

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	if w.code >= 400 && len(w.errBody) < errDetailCap {
		take := errDetailCap - len(w.errBody)
		if take > len(p) {
			take = len(p)
		}
		w.errBody = append(w.errBody, p[:take]...)
	}
	n, err := w.ResponseWriter.Write(p)
	w.written += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming responses (the
// session wire's long-lived POSTs) keep working under instrumentation.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) statusCode() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

func (w *statusWriter) detail() string { return string(w.errBody) }
