package obs

import (
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"runtime/debug"
	"strings"
)

// NewLogger builds a slog.Logger writing to w in the given format
// ("text" or "json") at the given minimum level ("debug", "info",
// "warn" or "error") — the backing for the daemons' -log-format and
// -log-level flags.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (text or json)", format)
	}
}

// ParseLevel maps a level name onto its slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (debug, info, warn or error)", s)
	}
}

// BuildInfo reports the binary's version — the module version when
// stamped, otherwise the VCS revision, otherwise "unknown" — and the
// Go toolchain that built it, from runtime/debug.ReadBuildInfo. The
// values feed the -version flag and the *_build_info metric.
func BuildInfo() (version, goVersion string) {
	version, goVersion = "unknown", runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, goVersion
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		version = v
	}
	var rev string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if version == "unknown" && rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		version = rev
		if dirty {
			version += "-dirty"
		}
	}
	return version, goVersion
}
