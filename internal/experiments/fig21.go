package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lrd"
	"repro/internal/traffic"
)

// Fig21Result reproduces Figure 21: the beta (and hence Hurst parameter)
// of the BSS-sampled process matches the original across the LRD range,
// estimated with the wavelet (Abry-Veitch) tool the paper cites.
type Fig21Result struct {
	Betas        []float64 // design beta of the generated traffic
	OriginalHats []float64 // wavelet estimate on the original series
	SampledHats  []float64 // wavelet estimate on the BSS-sampled series
	Interval     int
}

// Fig21 generates ON/OFF traffic per beta (alpha_on = beta + 1), samples
// it with BSS and compares wavelet beta estimates.
func Fig21(s Scale) (*Fig21Result, error) {
	ticks := 1 << 17
	interval := 8
	if s == ScaleFull {
		ticks = 1 << 20
		interval = 16
	}
	res := &Fig21Result{Interval: interval}
	for beta := 0.2; beta < 0.85; beta += 0.2 {
		alpha := beta + 1 // the paper's on/off shape rule
		cfg := traffic.OnOffConfig{
			Sources: 32, AlphaOn: alpha, AlphaOff: alpha,
			MeanOn: 10, MeanOff: 30, Rate: 1, Ticks: ticks,
		}
		f, err := traffic.GenerateOnOff(cfg, dist.NewRand(uint64(9000+int(beta*100))))
		if err != nil {
			return nil, fmt.Errorf("experiments: fig21 beta=%.1f: %w", beta, err)
		}
		orig, err := lrd.HurstWavelet(f, lrd.WaveletOptions{JMin: 4})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig21 original estimate: %w", err)
		}
		bss := core.BSS{Interval: interval, L: 4, Epsilon: 1.0}
		samples, err := bss.Sample(f)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig21 sampling: %w", err)
		}
		g := core.SampledSeries(samples)
		sampled, err := lrd.HurstWavelet(g, lrd.WaveletOptions{JMin: 2})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig21 sampled estimate: %w", err)
		}
		res.Betas = append(res.Betas, beta)
		res.OriginalHats = append(res.OriginalHats, clampBeta(orig.Beta))
		res.SampledHats = append(res.SampledHats, clampBeta(sampled.Beta))
	}
	return res, nil
}

// clampBeta keeps estimator noise inside the meaningful (0, 1) band for
// reporting.
func clampBeta(b float64) float64 {
	return math.Max(0.01, math.Min(b, 1.2))
}

// Render implements Renderer.
func (r *Fig21Result) Render() string {
	t := newTable(fmt.Sprintf("Figure 21: wavelet beta of BSS-sampled process (C=%d) vs original", r.Interval),
		"design beta", "beta (original)", "beta (BSS-sampled)", "difference")
	for i := range r.Betas {
		t.addRow(fnum(r.Betas[i]), fnum(r.OriginalHats[i]), fnum(r.SampledHats[i]),
			fnum(math.Abs(r.OriginalHats[i]-r.SampledHats[i])))
	}
	return t.String()
}
