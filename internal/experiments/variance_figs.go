package experiments

import (
	"fmt"

	"repro/internal/core"
)

// VarianceRow is one sampling rate's average variance per technique,
// computed exactly (see core.ExactSystematicVariance and friends): on
// heavy-tailed traffic, instance-sampled estimates of E(V) are dominated
// by whether the instances happened to catch the few giant values, so the
// paper's orderings only show cleanly in the exact expectation.
type VarianceRow struct {
	Rate       float64
	Systematic float64
	Stratified float64
	Simple     float64
	BSS        float64 // only filled by Figure 22
	LUsed      int     // BSS extra-sample count (Figure 22)
}

// Fig05Result reproduces Figure 5: the average variance E(V) of the three
// classic techniques versus sampling rate on both workloads.
type Fig05Result struct {
	Synthetic []VarianceRow
	Real      []VarianceRow
}

// varianceSweep computes exact E(V) per rate. When design is non-nil a
// BSS column with the online per-rate design (epsilon = 1, L from Eq. 23
// with the trace's Cs) is included.
func varianceSweep(f []float64, mean float64, rates []float64, design *core.BSSDesign, cs float64) ([]VarianceRow, error) {
	rows := make([]VarianceRow, 0, len(rates))
	for _, rate := range rates {
		interval := int(1/rate + 0.5)
		if interval < 1 {
			interval = 1
		}
		n := len(f) / interval
		if n < 2 {
			continue
		}
		row := VarianceRow{Rate: rate}
		var err error
		row.Systematic, err = core.ExactSystematicVariance(f, interval, mean)
		if err != nil {
			return nil, fmt.Errorf("systematic at rate %g: %w", rate, err)
		}
		row.Stratified, err = core.ExactStratifiedVariance(f, interval, mean)
		if err != nil {
			return nil, fmt.Errorf("stratified at rate %g: %w", rate, err)
		}
		row.Simple, err = core.ExactSimpleRandomVariance(f, n, mean)
		if err != nil {
			return nil, fmt.Errorf("simple random at rate %g: %w", rate, err)
		}
		if design != nil {
			l, _, err := design.DesignForRate(rate, 1.0, cs, 50)
			if err != nil {
				l = 0
			}
			if l > interval-1 {
				l = interval - 1
			}
			row.LUsed = l
			row.BSS, err = core.ExactBSSVariance(f, core.BSS{Interval: interval, L: l, Epsilon: 1.0}, mean)
			if err != nil {
				return nil, fmt.Errorf("BSS at rate %g: %w", rate, err)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig05 runs the exact variance sweep on both traces.
func Fig05(s Scale) (*Fig05Result, error) {
	res := &Fig05Result{}
	syn, synInfo, err := SyntheticTrace(s)
	if err != nil {
		return nil, err
	}
	res.Synthetic, err = varianceSweep(syn, synInfo.Mean, ratesFor(len(syn), minSamplesFor(s)), nil, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig05 synthetic: %w", err)
	}
	real, realInfo, err := RealTrace(s)
	if err != nil {
		return nil, err
	}
	res.Real, err = varianceSweep(real, realInfo.Mean, ratesFor(len(real), minSamplesFor(s)), nil, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig05 real: %w", err)
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig05Result) Render() string {
	out := ""
	for i, panel := range []struct {
		name string
		rows []VarianceRow
	}{{"synthetic", r.Synthetic}, {"real", r.Real}} {
		t := newTable(fmt.Sprintf("Figure 5(%c): exact average variance E(V) vs rate, %s trace; expect sys <= strat <= simple",
			'a'+i, panel.name),
			"rate", "systematic", "stratified", "simple-random")
		for _, row := range panel.rows {
			t.addRow(fnum(row.Rate), fnum(row.Systematic), fnum(row.Stratified), fnum(row.Simple))
		}
		out += t.String() + "\n"
	}
	return out
}

// Fig22Result reproduces Figure 22: the average variance of BSS against
// plain systematic sampling — they nearly coincide, since BSS's base
// schedule is systematic and the designed extra-sample load is light.
type Fig22Result struct {
	Synthetic []VarianceRow
	Real      []VarianceRow
}

// Fig22 runs the exact BSS-vs-systematic variance sweep on both traces.
func Fig22(s Scale) (*Fig22Result, error) {
	res := &Fig22Result{}
	syn, synInfo, err := SyntheticTrace(s)
	if err != nil {
		return nil, err
	}
	synDesign, err := core.NewBSSDesign(synInfo.MarginAlpha)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig22: %w", err)
	}
	res.Synthetic, err = varianceSweep(syn, synInfo.Mean, ratesFor(len(syn), minSamplesFor(s)), &synDesign, synInfo.Cs)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig22 synthetic: %w", err)
	}
	real, realInfo, err := RealTrace(s)
	if err != nil {
		return nil, err
	}
	realDesign, err := core.NewBSSDesign(realInfo.MarginAlpha)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig22: %w", err)
	}
	res.Real, err = varianceSweep(real, realInfo.Mean, ratesFor(len(real), minSamplesFor(s)), &realDesign, realInfo.Cs)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig22 real: %w", err)
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig22Result) Render() string {
	out := ""
	for i, panel := range []struct {
		name string
		rows []VarianceRow
	}{{"synthetic", r.Synthetic}, {"real", r.Real}} {
		t := newTable(fmt.Sprintf("Figure 22(%c): exact average variance, BSS vs systematic, %s trace", 'a'+i, panel.name),
			"rate", "systematic", "bss", "L")
		for _, row := range panel.rows {
			t.addRow(fnum(row.Rate), fnum(row.Systematic), fnum(row.BSS), fmt.Sprintf("%d", row.LUsed))
		}
		out += t.String() + "\n"
	}
	return out
}
