// Package experiments reproduces every evaluation artefact of the paper —
// Figures 2 through 22 — as typed, renderable experiment results. Each
// FigNN function runs the corresponding workload at a chosen Scale and
// returns the same rows/series the paper plots; cmd/figures regenerates
// them at full scale and bench_test.go exercises each one.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Scale selects the experiment size.
type Scale int

const (
	// ScaleSmall runs quickly (tests, benchmarks) on reduced traces.
	ScaleSmall Scale = iota
	// ScaleFull reproduces the paper's trace sizes and rate ranges.
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == ScaleFull {
		return "full"
	}
	return "small"
}

// Renderer is any experiment result that can print itself as the rows of
// the corresponding paper figure.
type Renderer interface {
	Render() string
}

// Runner executes one figure's experiment.
type Runner func(Scale) (Renderer, error)

// registry maps figure identifiers ("fig02" ... "fig22") to their
// runners. It is built once at package init and never mutated; Lookup
// reads it directly and Registry hands out per-call copies.
var registry = map[string]Runner{
	"fig02": func(s Scale) (Renderer, error) { return Fig02(s) },
	"fig03": func(s Scale) (Renderer, error) { return Fig03(s) },
	"fig04": func(s Scale) (Renderer, error) { return Fig04(s) },
	"fig05": func(s Scale) (Renderer, error) { return Fig05(s) },
	"fig06": func(s Scale) (Renderer, error) { return Fig06(s) },
	"fig07": func(s Scale) (Renderer, error) { return Fig07(s) },
	"fig08": func(s Scale) (Renderer, error) { return Fig08(s) },
	"fig09": func(s Scale) (Renderer, error) { return Fig09(s) },
	"fig10": func(s Scale) (Renderer, error) { return Fig10(s) },
	"fig11": func(s Scale) (Renderer, error) { return Fig11(s) },
	"fig12": func(s Scale) (Renderer, error) { return Fig12(s) },
	"fig13": func(s Scale) (Renderer, error) { return Fig13(s) },
	"fig14": func(s Scale) (Renderer, error) { return Fig14(s) },
	"fig15": func(s Scale) (Renderer, error) { return Fig15(s) },
	"fig16": func(s Scale) (Renderer, error) { return Fig16(s) },
	"fig17": func(s Scale) (Renderer, error) { return Fig17(s) },
	"fig18": func(s Scale) (Renderer, error) { return Fig18(s) },
	"fig19": func(s Scale) (Renderer, error) { return Fig19(s) },
	"fig20": func(s Scale) (Renderer, error) { return Fig20(s) },
	"fig21": func(s Scale) (Renderer, error) { return Fig21(s) },
	"fig22": func(s Scale) (Renderer, error) { return Fig22(s) },
}

// figureIDs is the sorted key list, computed once.
var figureIDs = func() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}()

// Lookup returns the runner for a figure identifier.
func Lookup(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// Registry returns a fresh copy of the figure registry, rebuilt on every
// call, so callers can iterate or mutate their copy freely without
// corrupting the shared map the parallel figure runner reads. Use Lookup
// for single-figure access when the copy is not needed.
func Registry() map[string]Runner {
	out := make(map[string]Runner, len(registry))
	for id, r := range registry {
		out[id] = r
	}
	return out
}

// Names returns the sorted figure identifiers.
func Names() []string { return append([]string(nil), figureIDs...) }

// table is a small text-table builder used by every Render method.
type table struct {
	title  string
	header []string
	rows   [][]string
}

func newTable(title string, header ...string) *table {
	return &table{title: title, header: header}
}

func (t *table) addRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) addRowf(format string, args ...any) {
	t.rows = append(t.rows, strings.Split(fmt.Sprintf(format, args...), "\t"))
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.title)
	b.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// fnum renders a float compactly for tables.
func fnum(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e5 || v < 1e-3 && v > -1e-3 || v <= -1e5:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
