package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lrd"
	"repro/internal/stats"
)

// Fig02Result reproduces Figure 2: the autocorrelation of the
// simple-random-sampled process computed analytically from Eq. (10)/(11),
// (a) the log-log points and fitted line for beta = 0.1, and (b) the
// recovered beta-hat across the LRD range.
type Fig02Result struct {
	Rho      float64   // per-element selection probability
	Log2Tau  []float64 // panel (a) abscissae
	Log2Rg   []float64 // panel (a) ordinates
	FitA     stats.LineFit
	BetaA    float64   // the true beta of panel (a)
	Betas    []float64 // panel (b) sweep
	BetaHats []float64
}

// Fig02 evaluates Eq. (10) over the paper's tau range (log2 tau in
// [6.5, 9]) and fits the decay exponent.
func Fig02(s Scale) (*Fig02Result, error) {
	res := &Fig02Result{Rho: 0.5, BetaA: 0.1}
	maxTau := 512
	if s == ScaleSmall {
		maxTau = 256
	}
	taus := make([]int, 0, 24)
	for tau := 90; tau <= maxTau; tau += (maxTau - 90) / 16 {
		taus = append(taus, tau)
	}
	// Panel (a): beta = 0.1, const chosen like the paper's (intercept ~7).
	acfA := lrd.PowerLawACF{Const: 150, Beta: res.BetaA}
	for _, tau := range taus {
		rg, err := core.NegBinomialRg(acfA, res.Rho, tau)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig02 panel a: %w", err)
		}
		res.Log2Tau = append(res.Log2Tau, math.Log2(float64(tau)))
		res.Log2Rg = append(res.Log2Rg, math.Log2(rg))
	}
	fit, err := stats.FitLine(res.Log2Tau, res.Log2Rg)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig02 fit: %w", err)
	}
	res.FitA = fit
	// Panel (b): sweep beta.
	for beta := 0.1; beta < 0.85; beta += 0.1 {
		acf := lrd.PowerLawACF{Const: 150, Beta: beta}
		var lx, ly []float64
		for _, tau := range taus {
			rg, err := core.NegBinomialRg(acf, res.Rho, tau)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig02 beta=%.1f: %w", beta, err)
			}
			lx = append(lx, math.Log(float64(tau)))
			ly = append(ly, math.Log(rg))
		}
		f, err := stats.FitLine(lx, ly)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig02 beta=%.1f fit: %w", beta, err)
		}
		res.Betas = append(res.Betas, beta)
		res.BetaHats = append(res.BetaHats, -f.Slope)
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig02Result) Render() string {
	ta := newTable(
		fmt.Sprintf("Figure 2(a): simple random sampling, Eq.(10), beta=%.1f, rho=%.2f; fitted slope %.3f (paper: -0.08), intercept %.2f",
			r.BetaA, r.Rho, r.FitA.Slope, r.FitA.Intercept),
		"log2(tau)", "log2(Rg)", "fit")
	for i := range r.Log2Tau {
		ta.addRow(fnum(r.Log2Tau[i]), fnum(r.Log2Rg[i]), fnum(r.FitA.Eval(r.Log2Tau[i])))
	}
	tb := newTable("Figure 2(b): estimated beta vs real beta (simple random, analytic)",
		"beta", "betaHat", "abs err")
	for i := range r.Betas {
		tb.addRow(fnum(r.Betas[i]), fnum(r.BetaHats[i]), fnum(math.Abs(r.Betas[i]-r.BetaHats[i])))
	}
	return ta.String() + "\n" + tb.String()
}

// Fig03Result reproduces Figure 3: the numerical SNC check (Theorem 1 via
// the FFT method S1-S3) applied to stratified random and simple random
// sampling across the beta range.
type Fig03Result struct {
	Betas          []float64
	StratifiedHats []float64
	BernoulliHats  []float64
	Interval       int
}

// Fig03 runs CheckSNC for both gap laws at every beta.
func Fig03(s Scale) (*Fig03Result, error) {
	res := &Fig03Result{Interval: 8}
	maxTau := 96
	if s == ScaleFull {
		maxTau = 160
	}
	taus := make([]int, 0, 20)
	for tau := 8; tau <= maxTau; tau += 8 {
		taus = append(taus, tau)
	}
	strat, err := core.StratifiedPMF(res.Interval)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig03: %w", err)
	}
	bern, err := core.BernoulliPMF(1/float64(res.Interval), 1e-12)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig03: %w", err)
	}
	for beta := 0.1; beta < 0.85; beta += 0.1 {
		acf := lrd.PowerLawACF{Const: 1, Beta: beta}
		rs, err := core.CheckSNC(strat, acf, taus)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig03 stratified beta=%.1f: %w", beta, err)
		}
		rb, err := core.CheckSNC(bern, acf, taus)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig03 bernoulli beta=%.1f: %w", beta, err)
		}
		res.Betas = append(res.Betas, beta)
		res.StratifiedHats = append(res.StratifiedHats, rs.BetaHat)
		res.BernoulliHats = append(res.BernoulliHats, rb.BetaHat)
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig03Result) Render() string {
	t := newTable(fmt.Sprintf("Figure 3: SNC (Theorem 1, FFT method) estimated beta, C=%d", r.Interval),
		"beta", "stratified betaHat", "simple-random betaHat")
	for i := range r.Betas {
		t.addRow(fnum(r.Betas[i]), fnum(r.StratifiedHats[i]), fnum(r.BernoulliHats[i]))
	}
	return t.String()
}

// Fig04Result reproduces Figure 4: the convexity delta_tau of the LRD
// autocorrelation for several beta, the hypothesis of Theorem 2.
type Fig04Result struct {
	Taus           []int
	Betas          []float64
	Deltas         [][]float64 // [beta][tau]
	AllNonnegative bool
}

// Fig04 computes delta_tau on the exact fGn ACF.
func Fig04(s Scale) (*Fig04Result, error) {
	maxTau := 100
	if s == ScaleFull {
		maxTau = 200
	}
	res := &Fig04Result{Betas: []float64{0.1, 0.3, 0.5, 0.7, 0.9}, AllNonnegative: true}
	for tau := 1; tau <= maxTau; tau = tau*3/2 + 1 {
		res.Taus = append(res.Taus, tau)
	}
	for _, beta := range res.Betas {
		acf, err := lrd.NewFGNACF(lrd.HFromBeta(beta))
		if err != nil {
			return nil, fmt.Errorf("experiments: fig04 beta=%.1f: %w", beta, err)
		}
		row := make([]float64, len(res.Taus))
		for i, tau := range res.Taus {
			row[i] = acf.Delta(tau)
			if row[i] < 0 {
				res.AllNonnegative = false
			}
		}
		res.Deltas = append(res.Deltas, row)
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig04Result) Render() string {
	t := newTable(fmt.Sprintf("Figure 4: delta_tau = R(tau+1)+R(tau-1)-2R(tau) (all nonnegative: %v)", r.AllNonnegative),
		append([]string{"tau"}, func() []string {
			hs := make([]string, len(r.Betas))
			for i, b := range r.Betas {
				hs[i] = fmt.Sprintf("beta=%.1f", b)
			}
			return hs
		}()...)...)
	for i, tau := range r.Taus {
		cells := make([]string, 0, len(r.Betas)+1)
		cells = append(cells, fmt.Sprintf("%d", tau))
		for j := range r.Betas {
			cells = append(cells, fnum(r.Deltas[j][i]))
		}
		t.addRow(cells...)
	}
	return t.String()
}
