package experiments

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/traffic"
)

// TailPanel is one trace's CCDF tail fit.
type TailPanel struct {
	Trace   string
	Epsilon float64 // threshold multiplier (burst figures only)
	Alpha   float64 // fitted Pareto shape
	R2      float64 // log-log fit quality
	Points  int     // observations behind the fit
	CCDFX   []float64
	CCDFY   []float64
}

// Fig07Result reproduces Figure 7: the CCDF of the 1-burst period B (time
// continuously above a_th = eps * mean) is heavy-tailed on both traces.
type Fig07Result struct {
	Panels []TailPanel
	// EpsSweep verifies the paper's claim that alpha moves only mildly
	// (1.2..1.8) as eps varies from 0.3 to 1.5.
	EpsSweep    []float64
	AlphaPerEps [][2]float64 // {synthetic alpha, real alpha} per eps
}

// burstTail measures and fits the on-period tail of one trace.
func burstTail(f []float64, mean, eps float64, name string) (TailPanel, error) {
	b := traffic.OnPeriods(f, eps*mean)
	if len(b) < 30 {
		return TailPanel{}, fmt.Errorf("experiments: only %d bursts above %.3g on %s trace", len(b), eps*mean, name)
	}
	fit, err := dist.FitParetoTail(b, 0.5)
	if err != nil {
		return TailPanel{}, fmt.Errorf("experiments: burst tail fit (%s): %w", name, err)
	}
	panel := TailPanel{Trace: name, Epsilon: eps, Alpha: fit.Alpha, R2: fit.Fit.R2, Points: len(b)}
	panel.CCDFX, panel.CCDFY = ccdfSample(b, 12)
	return panel, nil
}

// ccdfSample returns up to k log-spaced points of the empirical CCDF.
func ccdfSample(sample []float64, k int) (xs, ys []float64) {
	sorted := traffic.SortedCopy(sample)
	n := len(sorted)
	for i := 0; i < k; i++ {
		idx := i * (n - 1) / (k - 1)
		v := sorted[idx]
		// P(X > v): fraction strictly above.
		above := 0
		for j := n - 1; j >= 0 && sorted[j] > v; j-- {
			above++
		}
		if above == 0 {
			continue
		}
		xs = append(xs, v)
		ys = append(ys, float64(above)/float64(n))
	}
	return xs, ys
}

// Fig07 fits the burst-length tails at eps = 0.5 and sweeps eps.
func Fig07(s Scale) (*Fig07Result, error) {
	syn, synInfo, err := SyntheticTrace(s)
	if err != nil {
		return nil, err
	}
	real, realInfo, err := RealTrace(s)
	if err != nil {
		return nil, err
	}
	res := &Fig07Result{}
	p, err := burstTail(syn, synInfo.Mean, 0.5, "synthetic")
	if err != nil {
		return nil, err
	}
	res.Panels = append(res.Panels, p)
	p, err = burstTail(real, realInfo.Mean, 0.5, "real")
	if err != nil {
		return nil, err
	}
	res.Panels = append(res.Panels, p)
	for _, eps := range []float64{0.3, 0.7, 1.1, 1.5} {
		ps, err1 := burstTail(syn, synInfo.Mean, eps, "synthetic")
		pr, err2 := burstTail(real, realInfo.Mean, eps, "real")
		if err1 != nil || err2 != nil {
			continue // high thresholds can run out of bursts at small scale
		}
		res.EpsSweep = append(res.EpsSweep, eps)
		res.AlphaPerEps = append(res.AlphaPerEps, [2]float64{ps.Alpha, pr.Alpha})
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig07Result) Render() string {
	out := ""
	for i, p := range r.Panels {
		t := newTable(fmt.Sprintf("Figure 7(%c): CCDF of 1-burst period B, %s trace, eps=%.1f; fitted Pareto alpha=%.2f (paper: 1.3 syn / 1.65 real), R2=%.3f, %d bursts",
			'a'+i, p.Trace, p.Epsilon, p.Alpha, p.R2, p.Points),
			"burst length", "CCDF")
		for j := range p.CCDFX {
			t.addRow(fnum(p.CCDFX[j]), fnum(p.CCDFY[j]))
		}
		out += t.String() + "\n"
	}
	if len(r.EpsSweep) > 0 {
		t := newTable("Figure 7 (sweep): burst tail alpha vs eps (paper: mild variation, 1.2-1.8)",
			"eps", "alpha synthetic", "alpha real")
		for i, eps := range r.EpsSweep {
			t.addRow(fnum(eps), fnum(r.AlphaPerEps[i][0]), fnum(r.AlphaPerEps[i][1]))
		}
		out += t.String()
	}
	return out
}

// Fig08Result reproduces Figure 8: the marginal CCDF of f(t) itself fits a
// Pareto on both traces (alpha = 1.5 synthetic, 1.71 real).
type Fig08Result struct {
	Panels []TailPanel
}

// Fig08 fits the marginal tails.
func Fig08(s Scale) (*Fig08Result, error) {
	res := &Fig08Result{}
	for _, tc := range []struct {
		name string
		get  func(Scale) ([]float64, TraceInfo, error)
	}{{"synthetic", SyntheticTrace}, {"real", RealTrace}} {
		f, info, err := tc.get(s)
		if err != nil {
			return nil, err
		}
		positive := make([]float64, 0, len(f))
		for _, v := range f {
			if v > 0 {
				positive = append(positive, v)
			}
		}
		fit, err := dist.FitParetoTail(positive, 0.3)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig08 (%s): %w", tc.name, err)
		}
		panel := TailPanel{Trace: tc.name, Alpha: fit.Alpha, R2: fit.Fit.R2, Points: len(positive)}
		panel.CCDFX, panel.CCDFY = ccdfSample(positive, 12)
		_ = info
		res.Panels = append(res.Panels, panel)
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig08Result) Render() string {
	out := ""
	for i, p := range r.Panels {
		t := newTable(fmt.Sprintf("Figure 8(%c): CCDF of f(t), %s trace; fitted Pareto alpha=%.2f (paper: 1.5 syn / 1.71 real), R2=%.3f",
			'a'+i, p.Trace, p.Alpha, p.R2),
			"f(t)", "CCDF")
		for j := range p.CCDFX {
			t.addRow(fnum(p.CCDFX[j]), fnum(p.CCDFY[j]))
		}
		out += t.String() + "\n"
	}
	return out
}
