package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// theoryAlpha and theoryEta parameterize the analytic surfaces of Figures
// 9-11/14/15 (synthetic-trace regime; eta is the representative base bias,
// see DESIGN.md "Derivation notes").
const (
	theoryAlpha = 1.5
	theoryEta   = 0.15
)

// Fig09Result reproduces Figure 9: the surface L(eta, eps) of Eq. (23).
type Fig09Result struct {
	Etas  []float64
	Epses []float64
	L     [][]float64 // [eta][eps]; NaN where infeasible (eps below floor)
	Alpha float64
}

// Fig09 evaluates Eq. (23) over a grid.
func Fig09(s Scale) (*Fig09Result, error) {
	d, err := core.NewBSSDesign(theoryAlpha)
	if err != nil {
		return nil, err
	}
	res := &Fig09Result{Alpha: theoryAlpha}
	steps := 5
	if s == ScaleFull {
		steps = 9
	}
	for i := 0; i < steps; i++ {
		res.Etas = append(res.Etas, 0.1+0.4*float64(i)/float64(steps-1))
	}
	for e := 0.4; e <= 2.01; e += 0.2 {
		res.Epses = append(res.Epses, e)
	}
	for _, eta := range res.Etas {
		row := make([]float64, len(res.Epses))
		for j, eps := range res.Epses {
			l, err := d.LUnbiased(eps, eta)
			if err != nil {
				row[j] = math.NaN()
				continue
			}
			row[j] = l
		}
		res.L = append(res.L, row)
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig09Result) Render() string {
	hdr := []string{"eta\\eps"}
	for _, e := range r.Epses {
		hdr = append(hdr, fnum(e))
	}
	t := newTable(fmt.Sprintf("Figure 9: L(eta, eps) from Eq.(23), alpha=%.2f (L rises with eta; explodes toward the eps floor %.2f)",
		r.Alpha, (r.Alpha-1)/r.Alpha), hdr...)
	for i, eta := range r.Etas {
		cells := []string{fnum(eta)}
		for _, v := range r.L[i] {
			cells = append(cells, fnum(v))
		}
		t.addRow(cells...)
	}
	return t.String()
}

// Fig10Result reproduces Figure 10: the bias-ratio surface xi(L, eps) and
// its intersection with the plane xi = 1.
type Fig10Result struct {
	Ls    []float64
	Epses []float64
	Xi    [][]float64 // [L][eps]
	Alpha float64
	Eta   float64
}

// Fig10 evaluates the xi surface.
func Fig10(s Scale) (*Fig10Result, error) {
	d, err := core.NewBSSDesign(theoryAlpha)
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{Alpha: theoryAlpha, Eta: theoryEta}
	// L starts at 2: below L*max_c[c^-2a(c-1)] = eta the xi=1 plane is
	// never reached (for eta=0.15, alpha=1.5 that threshold is L ~ 1.01).
	for l := 2.0; l <= 10; l++ {
		res.Ls = append(res.Ls, l)
	}
	step := 0.25
	if s == ScaleFull {
		step = 0.125
	}
	for e := 0.25; e <= 3.01; e += step {
		res.Epses = append(res.Epses, e)
	}
	for _, l := range res.Ls {
		row := make([]float64, len(res.Epses))
		for j, eps := range res.Epses {
			row[j] = d.BiasRatio(l, eps, theoryEta)
		}
		res.Xi = append(res.Xi, row)
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig10Result) Render() string {
	hdr := []string{"L\\eps"}
	for _, e := range r.Epses {
		hdr = append(hdr, fnum(e))
	}
	t := newTable(fmt.Sprintf("Figure 10: xi(L, eps), alpha=%.2f, eta=%.2f (xi=1 plane crossed twice per L)", r.Alpha, r.Eta), hdr...)
	for i, l := range r.Ls {
		cells := []string{fnum(l)}
		for _, v := range r.Xi[i] {
			cells = append(cells, fnum(v))
		}
		t.addRow(cells...)
	}
	return t.String()
}

// Fig11Result reproduces Figure 11: the slice xi(eps) at L = 5 with its
// two xi = 1 roots.
type Fig11Result struct {
	Epses []float64
	Xi    []float64
	Eps1  float64 // lower root (~ (alpha-1)/alpha, infeasible)
	Eps2  float64 // upper root (the economical one)
	Floor float64
}

// Fig11 slices the surface at L = 5.
func Fig11(s Scale) (*Fig11Result, error) {
	d, err := core.NewBSSDesign(theoryAlpha)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{Floor: d.EpsilonFloor()}
	step := 0.1
	if s == ScaleFull {
		step = 0.05
	}
	for e := 0.05; e <= 3.01; e += step {
		res.Epses = append(res.Epses, e)
		res.Xi = append(res.Xi, d.BiasRatio(5, e, theoryEta))
	}
	res.Eps1, res.Eps2, err = d.EpsRoots(5, theoryEta, 1)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig11 roots: %w", err)
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig11Result) Render() string {
	t := newTable(fmt.Sprintf("Figure 11: xi(eps) at L=5; roots eps1=%.3f (~floor %.3f, infeasible) and eps2=%.3f",
		r.Eps1, r.Floor, r.Eps2),
		"eps", "xi")
	for i := range r.Epses {
		t.addRow(fnum(r.Epses[i]), fnum(r.Xi[i]))
	}
	return t.String()
}

// Fig14Result reproduces Figure 14: contour lines of xi in the (L, eps)
// plane — for each level and L, the economical eps achieving it.
type Fig14Result struct {
	Levels []float64
	Ls     []float64
	Eps    [][]float64 // [level][L]; NaN where the level is unreachable
}

// Fig14 extracts contours by solving for eps at each (level, L).
func Fig14(s Scale) (*Fig14Result, error) {
	d, err := core.NewBSSDesign(theoryAlpha)
	if err != nil {
		return nil, err
	}
	// Levels spanning the reachable xi range (the paper labels 1.17-5.7 on
	// its own garbled surface; our reconstructed surface peaks lower, see
	// DESIGN.md).
	res := &Fig14Result{Levels: []float64{1.02, 1.05, 1.1, 1.15, 1.2}}
	for l := 1.0; l <= 10; l++ {
		res.Ls = append(res.Ls, l)
	}
	for _, level := range res.Levels {
		row := make([]float64, len(res.Ls))
		for j, l := range res.Ls {
			eps, err := d.EpsForTarget(l, theoryEta, level)
			if err != nil {
				row[j] = math.NaN()
				continue
			}
			row[j] = eps
		}
		res.Eps = append(res.Eps, row)
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig14Result) Render() string {
	hdr := []string{"xi-level\\L"}
	for _, l := range r.Ls {
		hdr = append(hdr, fnum(l))
	}
	t := newTable(fmt.Sprintf("Figure 14: contours of xi (upper-branch eps per L), alpha=%.2f, eta=%.2f", theoryAlpha, theoryEta), hdr...)
	for i, level := range r.Levels {
		cells := []string{fnum(level)}
		for _, v := range r.Eps[i] {
			cells = append(cells, fnum(v))
		}
		t.addRow(cells...)
	}
	return t.String()
}

// Fig15Result reproduces Figure 15: the qualified-sample cost surface
// L'/N = L * c^-2alpha.
type Fig15Result struct {
	Ls    []float64
	Epses []float64
	Cost  [][]float64
}

// Fig15 evaluates the overhead surface.
func Fig15(s Scale) (*Fig15Result, error) {
	d, err := core.NewBSSDesign(theoryAlpha)
	if err != nil {
		return nil, err
	}
	res := &Fig15Result{}
	for l := 1.0; l <= 10; l += 1.5 {
		res.Ls = append(res.Ls, l)
	}
	step := 0.25
	if s == ScaleFull {
		step = 0.125
	}
	for e := 0.25; e <= 3.01; e += step {
		res.Epses = append(res.Epses, e)
	}
	for _, l := range res.Ls {
		row := make([]float64, len(res.Epses))
		for j, eps := range res.Epses {
			row[j] = d.QualifiedFraction(l, eps)
		}
		res.Cost = append(res.Cost, row)
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig15Result) Render() string {
	hdr := []string{"L\\eps"}
	for _, e := range r.Epses {
		hdr = append(hdr, fnum(e))
	}
	t := newTable("Figure 15: qualified-sample cost L'/N (avoid small eps / large L)", hdr...)
	for i, l := range r.Ls {
		cells := []string{fnum(l)}
		for _, v := range r.Cost[i] {
			cells = append(cells, fnum(v))
		}
		t.addRow(cells...)
	}
	return t.String()
}
