package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ids := Names()
	if len(ids) != 21 {
		t.Fatalf("registry has %d figures, want 21 (fig02..fig22)", len(ids))
	}
	if ids[0] != "fig02" || ids[len(ids)-1] != "fig22" {
		t.Errorf("unexpected id range: %s .. %s", ids[0], ids[len(ids)-1])
	}
	reg := Registry()
	for _, id := range ids {
		if reg[id] == nil {
			t.Errorf("nil runner for %s", id)
		}
	}
}

func TestRegistryReturnsIndependentCopies(t *testing.T) {
	a := Registry()
	delete(a, "fig02")
	a["made-up"] = nil
	b := Registry()
	if b["fig02"] == nil {
		t.Error("mutating one Registry() copy leaked into the next")
	}
	if _, ok := b["made-up"]; ok {
		t.Error("added key leaked into the shared registry")
	}
}

func TestScaleString(t *testing.T) {
	if ScaleSmall.String() != "small" || ScaleFull.String() != "full" {
		t.Error("Scale.String broken")
	}
}

func TestTraces(t *testing.T) {
	syn, synInfo, err := SyntheticTrace(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(syn) != synInfo.Len || synInfo.Len == 0 {
		t.Fatalf("synthetic length mismatch: %d vs %d", len(syn), synInfo.Len)
	}
	// Rank-transformed toward the paper's 5.68 kB/s mean; the realized
	// mean deviates by the finite-sample fluctuation of the Pareto top
	// order statistics.
	if math.Abs(synInfo.Mean-5.68)/5.68 > 0.05 {
		t.Errorf("synthetic mean %g, want within 5%% of 5.68", synInfo.Mean)
	}
	if synInfo.Cs <= 0 {
		t.Errorf("synthetic Cs = %g, want positive", synInfo.Cs)
	}
	real, realInfo, err := RealTrace(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(real) == 0 {
		t.Fatal("empty real trace")
	}
	// Target mean rate 1.21e4 bytes/s within a loose band (binning and
	// truncation shift it slightly).
	if realInfo.Mean < 0.5*1.21e4 || realInfo.Mean > 2*1.21e4 {
		t.Errorf("real mean %g, want ~1.21e4", realInfo.Mean)
	}
	// Caching returns identical slices.
	syn2, _, err := SyntheticTrace(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if &syn[0] != &syn2[0] {
		t.Error("synthetic trace not cached")
	}
}

func TestRatesFor(t *testing.T) {
	rates := ratesFor(1<<20, 10)
	if len(rates) != 5 {
		t.Errorf("full-size trace should allow all 5 rates, got %v", rates)
	}
	rates = ratesFor(1000, 10)
	for _, r := range rates {
		if r*1000 < 10 {
			t.Errorf("rate %g leaves fewer than 10 samples", r)
		}
	}
}

func TestFig02(t *testing.T) {
	r, err := Fig02(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	// Panel (a): fitted slope near -beta with truncation bias (paper
	// observes -0.08 for beta = 0.1).
	if r.FitA.Slope < -0.16 || r.FitA.Slope > -0.03 {
		t.Errorf("panel (a) slope = %g, want ~-0.1", r.FitA.Slope)
	}
	// Panel (b): betaHat tracks beta across the range.
	for i := range r.Betas {
		if math.Abs(r.Betas[i]-r.BetaHats[i]) > 0.06 {
			t.Errorf("beta=%g: betaHat=%g", r.Betas[i], r.BetaHats[i])
		}
	}
	if !strings.Contains(r.Render(), "Figure 2(a)") {
		t.Error("render missing title")
	}
}

func TestFig03(t *testing.T) {
	r, err := Fig03(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Betas {
		if math.Abs(r.Betas[i]-r.StratifiedHats[i]) > 0.06 {
			t.Errorf("stratified beta=%g: hat=%g", r.Betas[i], r.StratifiedHats[i])
		}
		if math.Abs(r.Betas[i]-r.BernoulliHats[i]) > 0.06 {
			t.Errorf("bernoulli beta=%g: hat=%g", r.Betas[i], r.BernoulliHats[i])
		}
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig04(t *testing.T) {
	r, err := Fig04(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllNonnegative {
		t.Error("delta_tau went negative — Theorem 2's hypothesis must hold")
	}
	for j := range r.Betas {
		for i := 1; i < len(r.Taus); i++ {
			if r.Deltas[j][i] > r.Deltas[j][i-1]+1e-12 {
				t.Errorf("beta=%g: delta not decreasing at tau=%d", r.Betas[j], r.Taus[i])
			}
		}
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig05Theorem2Ordering(t *testing.T) {
	r, err := Fig05(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Synthetic) == 0 || len(r.Real) == 0 {
		t.Fatal("empty sweeps")
	}
	for _, rows := range [][]VarianceRow{r.Synthetic, r.Real} {
		for _, row := range rows {
			// Exact Theorem 2 ordering (small slack for local ACF
			// non-convexity on a single realization).
			if row.Systematic > row.Stratified*1.05 {
				t.Errorf("rate %g: E(Vsy)=%g > E(Vrs)=%g", row.Rate, row.Systematic, row.Stratified)
			}
			if row.Stratified > row.Simple*1.05 {
				t.Errorf("rate %g: E(Vrs)=%g > E(Vran)=%g", row.Rate, row.Stratified, row.Simple)
			}
			if row.Systematic > row.Simple*1.02 {
				t.Errorf("rate %g: E(Vsy)=%g > E(Vran)=%g", row.Rate, row.Systematic, row.Simple)
			}
		}
	}
	if !strings.Contains(r.Render(), "Figure 5(a)") || !strings.Contains(r.Render(), "Figure 5(b)") {
		t.Error("render missing panels")
	}
}

func TestFig06Underestimation(t *testing.T) {
	r, err := Fig06(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	// At the lowest rate the *typical* (median-instance) sampled mean
	// should sit below the real mean; the grand mean is unbiased in
	// expectation, so a single lucky giant-burst catch can lift it.
	low := r.Synthetic[0]
	if low.SystematicMed >= r.SynMean {
		t.Errorf("synthetic lowest-rate median systematic mean %g not below real %g", low.SystematicMed, r.SynMean)
	}
	lowR := r.Real[0]
	if lowR.SystematicMed >= r.RealMean {
		t.Errorf("real lowest-rate median systematic mean %g not below real %g", lowR.SystematicMed, r.RealMean)
	}
	// And the under-estimation should shrink as the rate grows.
	last := r.Synthetic[len(r.Synthetic)-1]
	if math.Abs(last.SystematicMed-r.SynMean) > math.Abs(low.SystematicMed-r.SynMean)+1e-9 {
		t.Errorf("bias did not shrink with rate: %g -> %g (real %g)", low.SystematicMed, last.SystematicMed, r.SynMean)
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig07BurstsHeavyTailed(t *testing.T) {
	r, err := Fig07(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Panels) != 2 {
		t.Fatalf("want 2 panels, got %d", len(r.Panels))
	}
	for _, p := range r.Panels {
		if p.Alpha < 0.5 || p.Alpha > 3.5 {
			t.Errorf("%s: burst tail alpha %g outside the heavy regime", p.Trace, p.Alpha)
		}
		if p.R2 < 0.7 {
			t.Errorf("%s: poor log-log fit R2=%g", p.Trace, p.R2)
		}
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig08MarginalsPareto(t *testing.T) {
	r, err := Fig08(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Panels {
		if p.Alpha < 1.0 || p.Alpha > 2.6 {
			t.Errorf("%s: marginal alpha %g, want near the design (1.5/1.71)", p.Trace, p.Alpha)
		}
		if p.R2 < 0.9 {
			t.Errorf("%s: poor marginal fit R2=%g", p.Trace, p.R2)
		}
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig09Monotone(t *testing.T) {
	r, err := Fig09(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	// L grows with eta at fixed eps.
	for j := range r.Epses {
		for i := 1; i < len(r.Etas); i++ {
			if !(r.L[i][j] > r.L[i-1][j]) {
				t.Errorf("L not increasing in eta at eps=%g", r.Epses[j])
			}
		}
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig10XiCrossesOne(t *testing.T) {
	r, err := Fig10(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range r.Ls {
		minV, maxV := math.Inf(1), math.Inf(-1)
		for _, v := range r.Xi[i] {
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
		if !(minV < 1 && maxV > 1) {
			t.Errorf("L=%g: xi range [%g, %g] does not cross 1", l, minV, maxV)
		}
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig11Roots(t *testing.T) {
	r, err := Fig11(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.Eps1 < r.Eps2) {
		t.Fatalf("roots out of order: %g, %g", r.Eps1, r.Eps2)
	}
	if math.Abs(r.Eps1-r.Floor) > 0.2 {
		t.Errorf("eps1=%g should sit near the floor %g", r.Eps1, r.Floor)
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig12Fig13Run(t *testing.T) {
	for name, fn := range map[string]func(Scale) (*Fig12Result, error){"fig12": Fig12, "fig13": Fig13} {
		r, err := fn(ScaleSmall)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Rows) == 0 {
			t.Fatalf("%s: no rows", name)
		}
		for _, row := range r.Rows {
			if math.IsNaN(row.BSS) || math.IsNaN(row.BSS2) || math.IsNaN(row.BSSMed) {
				t.Errorf("%s rate %g: missing BSS series", name, row.Rate)
			}
			// Unbiased BSS lifts the estimate (or leaves it) relative to
			// plain systematic — qualified samples are never negative.
			if row.BSSMed < row.SystematicMed*0.98 {
				t.Errorf("%s rate %g: BSS median %g fell below systematic %g", name, row.Rate, row.BSSMed, row.SystematicMed)
			}
		}
		if r.Render() == "" {
			t.Error("empty render")
		}
	}
}

func TestFig14ContoursMonotoneInL(t *testing.T) {
	r, err := Fig14(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	for i, level := range r.Levels {
		for j := 1; j < len(r.Ls); j++ {
			a, b := r.Eps[i][j-1], r.Eps[i][j]
			if math.IsNaN(a) || math.IsNaN(b) {
				continue
			}
			if b < a {
				t.Errorf("level %g: contour eps decreasing at L=%g (%g -> %g)", level, r.Ls[j], a, b)
			}
		}
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig15CostMonotone(t *testing.T) {
	r, err := Fig15(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Ls {
		for j := 1; j < len(r.Epses); j++ {
			if r.Cost[i][j] > r.Cost[i][j-1]+1e-12 {
				t.Errorf("L=%g: cost rising with eps at %g", r.Ls[i], r.Epses[j])
			}
		}
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig16Fig17BiasedBSSImproves(t *testing.T) {
	for name, fn := range map[string]func(Scale) (*Fig16Result, error){"fig16": Fig16, "fig17": Fig17} {
		r, err := fn(ScaleSmall)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.RowsModeA) == 0 || len(r.RowsModeB) == 0 {
			t.Fatalf("%s: missing rows", name)
		}
		// At the lowest rate (largest bias), designed BSS should land at
		// least as close to the real mean as plain systematic (mode B),
		// comparing typical (median) instances.
		low := r.RowsModeB[0]
		sysErr := math.Abs(low.SystematicMed - r.Mean)
		bssErr := math.Abs(low.BSSMed - r.Mean)
		if bssErr > sysErr*1.1 {
			t.Errorf("%s: lowest-rate BSS median error %g vs systematic %g", name, bssErr, sysErr)
		}
		if r.Render() == "" {
			t.Error("empty render")
		}
	}
}

func TestFig18Fig19OnlineBSS(t *testing.T) {
	for name, fn := range map[string]func(Scale) (*Fig18Result, error){"fig18": Fig18, "fig19": Fig19} {
		r, err := fn(ScaleSmall)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Rows) == 0 {
			t.Fatalf("%s: no rows", name)
		}
		low := r.Rows[0]
		sysErr := math.Abs(low.SystematicMed - r.Mean)
		bssErr := math.Abs(low.BSSMed - r.Mean)
		if bssErr > sysErr*1.15 {
			t.Errorf("%s: lowest-rate online BSS median error %g vs systematic %g", name, bssErr, sysErr)
		}
		for _, row := range r.Rows {
			if !math.IsNaN(row.Overhead) && row.Overhead > 1.5 {
				t.Errorf("%s rate %g: overhead %g implausibly high", name, row.Rate, row.Overhead)
			}
		}
		if r.Render() == "" {
			t.Error("empty render")
		}
	}
}

func TestFig20EfficiencyGain(t *testing.T) {
	r, err := Fig20(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	// The gain concentrates at low rates where the bias is large; at high
	// rates both techniques are near-unbiased and efficiency ties. Demand
	// a clear win at the lowest rate and no meaningful overall loss.
	low := r.Rows[0]
	if low.BSS <= low.Systematic {
		t.Errorf("lowest-rate efficiency: BSS %g <= systematic %g", low.BSS, low.Systematic)
	}
	if r.AvgBSS < r.AvgSystematic*0.95 {
		t.Errorf("BSS average efficiency %g well below systematic %g", r.AvgBSS, r.AvgSystematic)
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig21HurstPreserved(t *testing.T) {
	r, err := Fig21(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Betas) == 0 {
		t.Fatal("no rows")
	}
	for i := range r.Betas {
		if d := math.Abs(r.OriginalHats[i] - r.SampledHats[i]); d > 0.3 {
			t.Errorf("beta=%g: original %g vs sampled %g (diff %g)", r.Betas[i], r.OriginalHats[i], r.SampledHats[i], d)
		}
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig22BSSVarianceClose(t *testing.T) {
	r, err := Fig22(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range [][]VarianceRow{r.Synthetic, r.Real} {
		for _, row := range rows {
			if row.BSS > row.Systematic*5+1e-12 {
				t.Errorf("rate %g: BSS variance %g far above systematic %g", row.Rate, row.BSS, row.Systematic)
			}
		}
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}
