package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stats"
)

// MeanRow is one sampling rate's mean estimates across techniques.
// Grand means over instances are unbiased but dominated by whether an
// instance caught one of the rare giant bursts, so the *median* instance —
// what a single deployed monitor typically reports — is the statistic the
// figures print. Both are retained.
type MeanRow struct {
	Rate          float64
	Systematic    float64 // grand mean over instances
	SystematicMed float64 // median instance mean
	Simple        float64
	SimpleMed     float64
	BSS           float64 // NaN when the figure has no BSS series
	BSSMed        float64
	BSS2          float64 // second parameter set (Figures 12/13)
	BSS2Med       float64
	Overhead      float64 // BSS qualified/base ratio (Figures 18/19)
	EtaUsed       float64 // the eta the BSS design assumed
	LUsed         int
	EpsUsed       float64
}

// meanSweepConfig drives meanSweep.
type meanSweepConfig struct {
	instances int
	// bssFor returns up to two BSS configurations for the given rate and
	// measured systematic eta; nil disables that series.
	bssFor func(rate float64, interval int, sysEta float64) (*core.BSS, *core.BSS, MeanRow)
}

// meanSweep measures grand-mean estimates per rate for systematic, simple
// random and optional BSS configurations.
func meanSweep(f []float64, mean float64, rates []float64, cfg meanSweepConfig) ([]MeanRow, error) {
	rows := make([]MeanRow, 0, len(rates))
	for ri, rate := range rates {
		interval := int(1/rate + 0.5)
		if interval < 1 {
			interval = 1
		}
		n := len(f) / interval
		if n < 2 {
			continue
		}
		sy, err := core.RunInstances(f, mean, cfg.instances, core.SystematicInstances(interval))
		if err != nil {
			return nil, fmt.Errorf("systematic at rate %g: %w", rate, err)
		}
		ran, err := core.RunInstances(f, mean, cfg.instances, core.SimpleRandomInstances(n, uint64(5000+ri)))
		if err != nil {
			return nil, fmt.Errorf("simple random at rate %g: %w", rate, err)
		}
		row := MeanRow{Rate: rate, Systematic: sy.GrandMean, Simple: ran.GrandMean,
			BSS: math.NaN(), BSSMed: math.NaN(), BSS2: math.NaN(), BSS2Med: math.NaN(), Overhead: math.NaN()}
		row.SystematicMed, _ = stats.Median(sy.Means)
		row.SimpleMed, _ = stats.Median(ran.Means)
		if cfg.bssFor != nil {
			// The design sees the *typical* (median) systematic bias, which
			// is what an operator estimating eta online would face.
			medEta := core.Eta(row.SystematicMed, mean)
			b1, b2, meta := cfg.bssFor(rate, interval, medEta)
			row.EtaUsed, row.LUsed, row.EpsUsed = meta.EtaUsed, meta.LUsed, meta.EpsUsed
			if b1 != nil {
				st, err := core.RunInstances(f, mean, cfg.instances, core.BSSInstances(*b1))
				if err != nil {
					return nil, fmt.Errorf("BSS at rate %g: %w", rate, err)
				}
				row.BSS = st.GrandMean
				row.BSSMed, _ = stats.Median(st.Means)
				row.Overhead = st.AvgOverhead
			}
			if b2 != nil {
				st, err := core.RunInstances(f, mean, cfg.instances, core.BSSInstances(*b2))
				if err != nil {
					return nil, fmt.Errorf("BSS(2) at rate %g: %w", rate, err)
				}
				row.BSS2 = st.GrandMean
				row.BSS2Med, _ = stats.Median(st.Means)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig06Result reproduces Figure 6: sampled mean vs real mean across rates
// on both workloads — the under-estimation phenomenon.
type Fig06Result struct {
	Synthetic []MeanRow
	Real      []MeanRow
	SynMean   float64
	RealMean  float64
	Instances int
}

// Fig06 runs the mean sweep without BSS.
func Fig06(s Scale) (*Fig06Result, error) {
	res := &Fig06Result{Instances: instancesFor(s)}
	syn, synInfo, err := SyntheticTrace(s)
	if err != nil {
		return nil, err
	}
	res.SynMean = synInfo.Mean
	res.Synthetic, err = meanSweep(syn, synInfo.Mean, ratesFor(len(syn), minSamplesFor(s)), meanSweepConfig{instances: res.Instances})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig06 synthetic: %w", err)
	}
	real, realInfo, err := RealTrace(s)
	if err != nil {
		return nil, err
	}
	res.RealMean = realInfo.Mean
	res.Real, err = meanSweep(real, realInfo.Mean, ratesFor(len(real), minSamplesFor(s)), meanSweepConfig{instances: res.Instances})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig06 real: %w", err)
	}
	return res, nil
}

// Render implements Renderer.
func (r *Fig06Result) Render() string {
	out := ""
	for i, panel := range []struct {
		name string
		rows []MeanRow
		mean float64
	}{{"synthetic", r.Synthetic, r.SynMean}, {"real", r.Real, r.RealMean}} {
		t := newTable(fmt.Sprintf("Figure 6(%c): typical (median-instance) sampled vs real mean, %s trace (real mean %s)", 'a'+i, panel.name, fnum(panel.mean)),
			"rate", "systematic", "simple", "real mean")
		for _, row := range panel.rows {
			t.addRow(fnum(row.Rate), fnum(row.SystematicMed), fnum(row.SimpleMed), fnum(panel.mean))
		}
		out += t.String() + "\n"
	}
	return out
}

// staticBSSFigure is shared by Figures 12 and 13: two fixed "unbiased"
// (L, epsilon) parameter pairs compared against systematic and simple
// random sampling.
func staticBSSFigure(s Scale, useReal bool, pairs [2][2]float64) (*Fig12Result, error) {
	var f []float64
	var info TraceInfo
	var err error
	if useReal {
		f, info, err = RealTrace(s)
	} else {
		f, info, err = SyntheticTrace(s)
	}
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{Mean: info.Mean, Pairs: pairs, Trace: info.Name, Instances: instancesFor(s)}
	res.Rows, err = meanSweep(f, info.Mean, ratesFor(len(f), minSamplesFor(s)), meanSweepConfig{
		instances: res.Instances,
		bssFor: func(rate float64, interval int, sysEta float64) (*core.BSS, *core.BSS, MeanRow) {
			b1 := &core.BSS{Interval: interval, L: int(pairs[0][0]), Epsilon: pairs[0][1]}
			b2 := &core.BSS{Interval: interval, L: int(pairs[1][0]), Epsilon: pairs[1][1]}
			return b1, b2, MeanRow{LUsed: int(pairs[0][0]), EpsUsed: pairs[0][1]}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: unbiased BSS sweep (%s): %w", info.Name, err)
	}
	return res, nil
}

// Fig12Result reproduces Figure 12 (and 13 via trace choice): the
// "unbiased BSS" settings against the classic samplers.
type Fig12Result struct {
	Trace     string
	Mean      float64
	Pairs     [2][2]float64 // {L, epsilon} x2
	Rows      []MeanRow
	Instances int
}

// Fig12 uses the paper's synthetic unbiased pairs (L=10, eps=2.55),
// (L=8, eps=2.28).
func Fig12(s Scale) (*Fig12Result, error) {
	return staticBSSFigure(s, false, [2][2]float64{{10, 2.55}, {8, 2.28}})
}

// Fig13 uses the paper's real-trace unbiased pairs (L=10, eps=1.809),
// (L=8, eps=1.68).
func Fig13(s Scale) (*Fig12Result, error) {
	return staticBSSFigure(s, true, [2][2]float64{{10, 1.809}, {8, 1.68}})
}

// Render implements Renderer.
func (r *Fig12Result) Render() string {
	t := newTable(fmt.Sprintf("Figures 12/13 (unbiased BSS, median instances), %s trace, real mean %s; pairs (L=%g,eps=%g) and (L=%g,eps=%g)",
		r.Trace, fnum(r.Mean), r.Pairs[0][0], r.Pairs[0][1], r.Pairs[1][0], r.Pairs[1][1]),
		"rate", "systematic", "simple", "bss(pair1)", "bss(pair2)", "real")
	for _, row := range r.Rows {
		t.addRow(fnum(row.Rate), fnum(row.SystematicMed), fnum(row.SimpleMed), fnum(row.BSSMed), fnum(row.BSS2Med), fnum(r.Mean))
	}
	return t.String()
}

// Fig16Result reproduces Figures 16/17: biased BSS with per-rate design
// from the ground-truth eta (known because we hold the full trace), in the
// two modes the paper plots: L fixed (epsilon solved) and epsilon fixed
// (L solved).
type Fig16Result struct {
	Trace     string
	Mean      float64
	FixedL    int
	RowsModeA []MeanRow // L fixed, epsilon tuned
	RowsModeB []MeanRow // epsilon = 1, L tuned
	Instances int
}

// biasedBSSFigure is shared by Figures 16 and 17.
func biasedBSSFigure(s Scale, useReal bool, fixedL int) (*Fig16Result, error) {
	var f []float64
	var info TraceInfo
	var err error
	if useReal {
		f, info, err = RealTrace(s)
	} else {
		f, info, err = SyntheticTrace(s)
	}
	if err != nil {
		return nil, err
	}
	design, err := core.NewBSSDesign(info.MarginAlpha)
	if err != nil {
		return nil, fmt.Errorf("experiments: biased BSS design: %w", err)
	}
	res := &Fig16Result{Trace: info.Name, Mean: info.Mean, FixedL: fixedL, Instances: instancesFor(s)}
	rates := ratesFor(len(f), minSamplesFor(s))
	// Mode A: L fixed, epsilon tuned per rate from the measured eta.
	res.RowsModeA, err = meanSweep(f, info.Mean, rates, meanSweepConfig{
		instances: res.Instances,
		bssFor: func(rate float64, interval int, sysEta float64) (*core.BSS, *core.BSS, MeanRow) {
			eta := clampEta(sysEta)
			eps, err := design.EpsForTarget(float64(fixedL), eta, 1)
			if err != nil {
				// Target unreachable at this L: fall back to a high
				// threshold, which degenerates toward plain systematic.
				eps = 3 * design.EpsilonFloor()
			}
			return &core.BSS{Interval: interval, L: fixedL, Epsilon: eps},
				nil, MeanRow{EtaUsed: eta, LUsed: fixedL, EpsUsed: eps}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig16 mode A (%s): %w", info.Name, err)
	}
	// Mode B: epsilon = 1, L tuned per rate (Eq. 23).
	res.RowsModeB, err = meanSweep(f, info.Mean, rates, meanSweepConfig{
		instances: res.Instances,
		bssFor: func(rate float64, interval int, sysEta float64) (*core.BSS, *core.BSS, MeanRow) {
			eta := clampEta(sysEta)
			lf, err := design.LUnbiased(1.0, eta)
			l := 0
			if err == nil {
				l = int(lf + 0.5)
			}
			if l > interval-1 {
				l = interval - 1
			}
			return &core.BSS{Interval: interval, L: l, Epsilon: 1.0},
				nil, MeanRow{EtaUsed: eta, LUsed: l, EpsUsed: 1.0}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig16 mode B (%s): %w", info.Name, err)
	}
	return res, nil
}

// clampEta keeps a measured eta inside the design formulas' domain.
func clampEta(eta float64) float64 {
	if math.IsNaN(eta) || eta < 0.001 {
		return 0.001
	}
	if eta > 0.95 {
		return 0.95
	}
	return eta
}

// Fig16 is the synthetic-trace biased-BSS figure (paper: L=10 fixed, and
// eps=1 fixed).
func Fig16(s Scale) (*Fig16Result, error) { return biasedBSSFigure(s, false, 10) }

// Fig17 is the real-trace biased-BSS figure (paper: L=30 fixed, and eps=1
// fixed).
func Fig17(s Scale) (*Fig16Result, error) { return biasedBSSFigure(s, true, 30) }

// Render implements Renderer.
func (r *Fig16Result) Render() string {
	out := ""
	for i, panel := range []struct {
		name string
		rows []MeanRow
	}{{fmt.Sprintf("L=%d fixed, eps tuned", r.FixedL), r.RowsModeA}, {"eps=1 fixed, L tuned", r.RowsModeB}} {
		t := newTable(fmt.Sprintf("Figures 16/17(%c): biased BSS (%s), median instances, %s trace, real mean %s", 'a'+i, panel.name, r.Trace, fnum(r.Mean)),
			"rate", "systematic", "simple", "bss", "real", "eta used", "L", "eps")
		for _, row := range panel.rows {
			t.addRow(fnum(row.Rate), fnum(row.SystematicMed), fnum(row.SimpleMed), fnum(row.BSSMed),
				fnum(r.Mean), fnum(row.EtaUsed), fmt.Sprintf("%d", row.LUsed), fnum(row.EpsUsed))
		}
		out += t.String() + "\n"
	}
	return out
}
