package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stats"
)

// Fig18Result reproduces Figures 18/19: fully-online BSS — epsilon preset
// to 1, eta estimated from the sampling rate alone via Eq. (35) with the
// trace-calibrated Cs, L solved from Eq. (23), threshold adapted from the
// running mean — reporting the sampled mean (panel a) and the overhead
// (panel b).
type Fig18Result struct {
	Trace     string
	Mean      float64
	Cs        float64
	Rows      []MeanRow
	Instances int
}

// onlineBSSFigure is shared by Figures 18 and 19.
func onlineBSSFigure(s Scale, useReal bool) (*Fig18Result, error) {
	var f []float64
	var info TraceInfo
	var err error
	if useReal {
		f, info, err = RealTrace(s)
	} else {
		f, info, err = SyntheticTrace(s)
	}
	if err != nil {
		return nil, err
	}
	design, err := core.NewBSSDesign(info.MarginAlpha)
	if err != nil {
		return nil, fmt.Errorf("experiments: online BSS design: %w", err)
	}
	res := &Fig18Result{Trace: info.Name, Mean: info.Mean, Cs: info.Cs, Instances: instancesFor(s)}
	res.Rows, err = meanSweep(f, info.Mean, ratesFor(len(f), minSamplesFor(s)), meanSweepConfig{
		instances: res.Instances,
		bssFor: func(rate float64, interval int, sysEta float64) (*core.BSS, *core.BSS, MeanRow) {
			l, eta, err := design.DesignForRate(rate, 1.0, info.Cs, 50)
			if err != nil {
				l, eta = 0, 0
			}
			if l > interval-1 {
				l = interval - 1
			}
			return &core.BSS{Interval: interval, L: l, Epsilon: 1.0},
				nil, MeanRow{EtaUsed: eta, LUsed: l, EpsUsed: 1.0}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: online BSS sweep (%s): %w", info.Name, err)
	}
	return res, nil
}

// Fig18 is the synthetic-trace online-BSS figure.
func Fig18(s Scale) (*Fig18Result, error) { return onlineBSSFigure(s, false) }

// Fig19 is the real-trace online-BSS figure.
func Fig19(s Scale) (*Fig18Result, error) { return onlineBSSFigure(s, true) }

// Render implements Renderer.
func (r *Fig18Result) Render() string {
	t := newTable(fmt.Sprintf("Figures 18/19(a): online BSS (eps=1, eta from Eq.35 with Cs=%s), median instances, %s trace, real mean %s",
		fnum(r.Cs), r.Trace, fnum(r.Mean)),
		"rate", "systematic", "simple", "bss", "real", "eta(r)", "L")
	for _, row := range r.Rows {
		t.addRow(fnum(row.Rate), fnum(row.SystematicMed), fnum(row.SimpleMed), fnum(row.BSSMed),
			fnum(r.Mean), fnum(row.EtaUsed), fmt.Sprintf("%d", row.LUsed))
	}
	t2 := newTable(fmt.Sprintf("Figures 18/19(b): BSS sampling overhead (qualified/base), %s trace", r.Trace),
		"rate", "overhead")
	for _, row := range r.Rows {
		t2.addRow(fnum(row.Rate), fnum(row.Overhead))
	}
	return t.String() + "\n" + t2.String()
}

// EfficiencyRow is one rate's efficiency per technique.
type EfficiencyRow struct {
	Rate       float64
	Systematic float64
	Simple     float64
	BSS        float64
}

// Fig20Result reproduces Figure 20: the efficiency e = (1-eta)/log10(Nt)
// of the three techniques on the synthetic trace, plus the averages the
// paper headlines (BSS 0.37 vs systematic 0.26 vs simple random 0.30,
// i.e. +42% and +23%).
type Fig20Result struct {
	Rows          []EfficiencyRow
	AvgSystematic float64
	AvgSimple     float64
	AvgBSS        float64
	GainVsSys     float64 // relative efficiency gain of BSS over systematic
	GainVsSimple  float64
	Instances     int
}

// Fig20 measures efficiency across rates with the online BSS design.
func Fig20(s Scale) (*Fig20Result, error) {
	f, info, err := SyntheticTrace(s)
	if err != nil {
		return nil, err
	}
	design, err := core.NewBSSDesign(info.MarginAlpha)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig20: %w", err)
	}
	res := &Fig20Result{Instances: instancesFor(s)}
	for ri, rate := range ratesFor(len(f), minSamplesFor(s)) {
		interval := int(1/rate + 0.5)
		n := len(f) / interval
		if n < 2 {
			continue
		}
		sy, err := core.RunInstances(f, info.Mean, res.Instances, core.SystematicInstances(interval))
		if err != nil {
			return nil, fmt.Errorf("experiments: fig20 systematic: %w", err)
		}
		ran, err := core.RunInstances(f, info.Mean, res.Instances, core.SimpleRandomInstances(n, uint64(7000+ri)))
		if err != nil {
			return nil, fmt.Errorf("experiments: fig20 simple: %w", err)
		}
		l, _, err := design.DesignForRate(rate, 1.0, info.Cs, 50)
		if err != nil {
			l = 0
		}
		if l > interval-1 {
			l = interval - 1
		}
		bss, err := core.RunInstances(f, info.Mean, res.Instances, core.BSSInstances(core.BSS{Interval: interval, L: l, Epsilon: 1.0}))
		if err != nil {
			return nil, fmt.Errorf("experiments: fig20 bss: %w", err)
		}
		// Efficiency of the *typical* deployment: eta from the median
		// instance, Nt from the average kept-sample count.
		medEta := func(st core.InstanceStats) float64 {
			m, err := stats.Median(st.Means)
			if err != nil {
				return math.NaN()
			}
			return core.Eta(m, info.Mean)
		}
		row := EfficiencyRow{
			Rate:       rate,
			Systematic: core.Efficiency(medEta(sy), int(sy.AvgSamples+0.5)),
			Simple:     core.Efficiency(medEta(ran), int(ran.AvgSamples+0.5)),
			BSS:        core.Efficiency(medEta(bss), int(bss.AvgSamples+0.5)),
		}
		if math.IsNaN(row.Systematic) || math.IsNaN(row.Simple) || math.IsNaN(row.BSS) {
			continue
		}
		res.Rows = append(res.Rows, row)
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("experiments: fig20 produced no usable rates")
	}
	for _, row := range res.Rows {
		res.AvgSystematic += row.Systematic / float64(len(res.Rows))
		res.AvgSimple += row.Simple / float64(len(res.Rows))
		res.AvgBSS += row.BSS / float64(len(res.Rows))
	}
	res.GainVsSys = res.AvgBSS/res.AvgSystematic - 1
	res.GainVsSimple = res.AvgBSS/res.AvgSimple - 1
	return res, nil
}

// Render implements Renderer.
func (r *Fig20Result) Render() string {
	t := newTable(fmt.Sprintf(
		"Figure 20: efficiency e=(1-|eta|)/log10(Nt); averages bss=%.3f sys=%.3f simple=%.3f; BSS gain vs sys %.0f%% (paper 42%%), vs simple %.0f%% (paper 23%%)",
		r.AvgBSS, r.AvgSystematic, r.AvgSimple, r.GainVsSys*100, r.GainVsSimple*100),
		"rate", "systematic", "simple", "bss")
	for _, row := range r.Rows {
		t.addRow(fnum(row.Rate), fnum(row.Systematic), fnum(row.Simple), fnum(row.BSS))
	}
	return t.String()
}
