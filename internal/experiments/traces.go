package experiments

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// TraceInfo describes one of the two evaluation workloads.
type TraceInfo struct {
	Name        string
	Mean        float64 // exact mean of the series (the "real mean")
	MarginAlpha float64 // design tail index of the marginal f(t)
	HurstDesign float64 // target Hurst parameter
	Cs          float64 // calibrated constant of the eta(r) law (Eq. 35)
	Len         int
}

// syntheticSeed and realSeed pin the workloads; every figure sees the same
// traces the way the paper reuses its two trace sets.
const (
	syntheticSeed = 20050608
	realSeed      = 20000308 // the Bell Labs trace was captured 2000-03-08
)

// syntheticConfig mirrors the paper's ns-2 workload: superposed Pareto
// ON/OFF sources (alpha = 1.3 for Figures 18/20, H = 0.85 regime) with
// heavy-tailed per-burst rates so the marginal matches Figure 8(a)
// (alpha ~ 1.5), rescaled to the paper's 5.68 kB/s mean.
func syntheticConfig(ticks int) traffic.OnOffConfig {
	return traffic.OnOffConfig{
		Sources:   12,
		AlphaOn:   1.3,
		AlphaOff:  1.5,
		MeanOn:    5,
		MeanOff:   300,
		Rate:      1,
		RateAlpha: 1.5,
		Ticks:     ticks,
	}
}

// realConfig mirrors the Bell Labs trace substitute: hundreds of OD pairs,
// Pareto burst durations (alpha = 1.76 -> H ~ 0.62), heterogeneous burst
// rates (marginal alpha ~ 1.71, Figure 8(b)), aggregate 1.21e4 bytes/s.
func realConfig(duration float64) traffic.SynthConfig {
	return traffic.SynthConfig{
		Pairs:     200,
		Duration:  duration,
		AlphaOn:   1.76,
		MeanOn:    0.5,
		MeanOff:   120,
		MeanRate:  5e5,
		RateAlpha: 1.6,
	}
}

// realGranularity is the binning step for the packet trace (seconds).
const realGranularity = 0.02

type cachedTrace struct {
	once sync.Once
	f    []float64
	info TraceInfo
	err  error
}

var traceCache = struct {
	mu sync.Mutex
	m  map[string]*cachedTrace
}{m: make(map[string]*cachedTrace)}

func cached(key string, build func() ([]float64, TraceInfo, error)) ([]float64, TraceInfo, error) {
	traceCache.mu.Lock()
	entry, ok := traceCache.m[key]
	if !ok {
		entry = &cachedTrace{}
		traceCache.m[key] = entry
	}
	traceCache.mu.Unlock()
	entry.once.Do(func() {
		entry.f, entry.info, entry.err = build()
	})
	return entry.f, entry.info, entry.err
}

// SyntheticTrace returns the cached synthetic ON/OFF workload at the given
// scale, scaled to the paper's 5.68 kB/s mean.
func SyntheticTrace(s Scale) ([]float64, TraceInfo, error) {
	ticks := 1 << 17
	if s == ScaleFull {
		ticks = 1 << 20
	}
	return cached(fmt.Sprintf("synthetic-%s", s), func() ([]float64, TraceInfo, error) {
		cfg := syntheticConfig(ticks)
		f, err := traffic.GenerateOnOff(cfg, dist.NewRand(syntheticSeed))
		if err != nil {
			return nil, TraceInfo{}, fmt.Errorf("experiments: synthetic trace: %w", err)
		}
		const alpha = 1.5
		if err := applyBaseLoad(f, 5.68, alpha); err != nil {
			return nil, TraceInfo{}, fmt.Errorf("experiments: synthetic trace: %w", err)
		}
		info := TraceInfo{
			Name:        "synthetic",
			Mean:        stats.Mean(f),
			MarginAlpha: alpha,
			HurstDesign: cfg.Hurst(),
			Len:         len(f),
		}
		info.Cs = calibrateCs(f, info.Mean, info.MarginAlpha)
		return f, info, nil
	})
}

// RealTrace returns the cached Bell-Labs-substitute workload: an OD-flow
// packet trace binned at 10 ms into a bytes/second process.
func RealTrace(s Scale) ([]float64, TraceInfo, error) {
	duration := 600.0
	if s == ScaleFull {
		duration = 2400 // the Bell Labs capture is ~40 minutes
	}
	return cached(fmt.Sprintf("real-%s", s), func() ([]float64, TraceInfo, error) {
		cfg := realConfig(duration)
		pkts, err := traffic.SynthesizeTrace(cfg, dist.NewRand(realSeed))
		if err != nil {
			return nil, TraceInfo{}, fmt.Errorf("experiments: real-like trace: %w", err)
		}
		f, err := traffic.BinBytes(pkts, realGranularity, duration)
		if err != nil {
			return nil, TraceInfo{}, fmt.Errorf("experiments: binning real-like trace: %w", err)
		}
		const alpha = 1.71
		if err := applyBaseLoad(f, 1.21e4, alpha); err != nil {
			return nil, TraceInfo{}, fmt.Errorf("experiments: real-like trace: %w", err)
		}
		info := TraceInfo{
			Name:        "real",
			Mean:        stats.Mean(f),
			MarginAlpha: alpha,
			HurstDesign: cfg.Hurst(),
			Len:         len(f),
		}
		info.Cs = calibrateCs(f, info.Mean, info.MarginAlpha)
		return f, info, nil
	})
}

// calibrateCs measures the Cs constant of the eta(r) law (Eq. 35) from the
// trace itself: the median systematic-sampling bias at a reference rate
// (measured over the same spread-offset instance schedule the experiments
// use), divided by r^(1/alpha-1). The paper quotes Cs in (0.2, 0.35), but
// that range is inconsistent with eta <= 1 at its own rates; per-trace
// calibration reproduces the law's role (predicting eta from r) without
// the numerical contradiction. See EXPERIMENTS.md.
func calibrateCs(f []float64, mean, alpha float64) float64 {
	const refRate = 1e-3
	interval := int(1 / refRate)
	if interval >= len(f)/10 {
		interval = len(f) / 100
		if interval < 2 {
			return 0.02
		}
	}
	st, err := core.RunInstances(f, mean, calibInstances, core.SystematicInstances(interval))
	if err != nil {
		return 0.02
	}
	med, err := stats.Median(st.Means)
	if err != nil {
		return 0.02
	}
	eta := core.Eta(med, mean)
	if eta <= 0.005 {
		eta = 0.005
	}
	cs := eta / math.Pow(1/float64(interval), 1/alpha-1)
	if cs < 1e-4 {
		cs = 1e-4
	}
	return cs
}

// applyBaseLoad rank-transforms the bursty series onto an exactly
// Pareto(alpha, ell) marginal with ell = targetMean*(alpha-1)/alpha: the
// k-th smallest bin is assigned the ((k+0.5)/n)-quantile of the Pareto
// law. The monotone transform preserves the temporal burst structure
// (which bins are large, and for how long) while making the marginal
// match the paper's model — its own Figure 8 shows near-perfect Pareto
// marginals, and Section V's design formulas assume
// Pr(X > a_th) = (ell/a_th)^alpha exactly. Without this, the
// threshold-to-trigger-probability mapping of the BSS design is
// systematically miscalibrated on mixture marginals with mass near zero.
func applyBaseLoad(f []float64, targetMean, alpha float64) error {
	if stats.Mean(f) <= 0 {
		return fmt.Errorf("degenerate trace (mean %g)", stats.Mean(f))
	}
	ell := targetMean * (alpha - 1) / alpha
	p, err := dist.NewPareto(alpha, ell)
	if err != nil {
		return err
	}
	idx := make([]int, len(f))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return f[idx[a]] < f[idx[b]] })
	n := float64(len(f))
	for rank, i := range idx {
		f[i] = p.Quantile((float64(rank) + 0.5) / n)
	}
	return nil
}

// calibInstances matches the small-scale experiment instance count so the
// Cs calibration and the sweeps see the same instance statistics.
const calibInstances = 21

// ratesFor returns the canonical sampling-rate sweep restricted to rates
// that leave at least minSamples base samples on a trace of length n.
func ratesFor(n, minSamples int) []float64 {
	all := []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
	out := make([]float64, 0, len(all))
	for _, r := range all {
		if r*float64(n) >= float64(minSamples) {
			out = append(out, r)
		}
	}
	return out
}

// minSamplesFor returns the minimum base-sample count a rate must leave:
// full scale follows the paper down to ~10 samples; small scale drops the
// statistically hopeless rates.
func minSamplesFor(s Scale) int {
	if s == ScaleFull {
		return 10
	}
	return 30
}

// instancesFor returns the instance count per scale.
func instancesFor(s Scale) int {
	if s == ScaleFull {
		return 41
	}
	return calibInstances
}
