// Package queue provides the queueing-analysis substrate that motivates
// the paper's insistence on preserving the Hurst parameter: buffer
// dimensioning for LRD input is governed by H (Norros' formula for
// fractional-Brownian input gives Weibull-tailed queue occupancy,
// P(Q > b) ~ exp(-gamma * b^(2-2H)), versus exponential for short-range
// input). The package offers a discrete-time fluid queue simulator fed by
// any rate series, occupancy/loss statistics, and the Norros effective-
// bandwidth bound — so a monitoring pipeline can turn a *sampled* trace's
// estimated (mean, variance, H) into a buffer size and be checked against
// simulation on the full trace.
package queue

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Result summarizes one finite-buffer fluid-queue simulation.
type Result struct {
	ServiceRate  float64
	Buffer       float64 // capacity; +Inf for infinite
	MeanOccupied float64
	MaxOccupied  float64
	LossFraction float64 // lost work / offered work
	Occupancy    []float64
}

// Simulate runs a discrete-time fluid queue: each tick, arrivals[t] work
// arrives, service drains up to serviceRate, and work beyond the buffer
// capacity is lost. A nonpositive buffer means infinite. The returned
// occupancy series has one entry per tick (after service).
func Simulate(arrivals []float64, serviceRate, buffer float64) (Result, error) {
	if len(arrivals) == 0 {
		return Result{}, fmt.Errorf("queue: empty arrival series")
	}
	if !(serviceRate > 0) {
		return Result{}, fmt.Errorf("queue: service rate %g must be positive", serviceRate)
	}
	infinite := buffer <= 0
	res := Result{ServiceRate: serviceRate, Buffer: buffer, Occupancy: make([]float64, len(arrivals))}
	if infinite {
		res.Buffer = math.Inf(1)
	}
	var q, offered, lost float64
	for t, a := range arrivals {
		if a < 0 {
			return Result{}, fmt.Errorf("queue: negative arrival %g at tick %d", a, t)
		}
		offered += a
		q += a
		if !infinite && q > buffer {
			lost += q - buffer
			q = buffer
		}
		q -= serviceRate
		if q < 0 {
			q = 0
		}
		res.Occupancy[t] = q
		res.MeanOccupied += q
		if q > res.MaxOccupied {
			res.MaxOccupied = q
		}
	}
	res.MeanOccupied /= float64(len(arrivals))
	if offered > 0 {
		res.LossFraction = lost / offered
	}
	return res, nil
}

// OverflowProb returns the empirical P(Q > b) of an occupancy series for
// each requested level.
func OverflowProb(occupancy []float64, levels []float64) ([]float64, error) {
	if len(occupancy) == 0 {
		return nil, fmt.Errorf("queue: empty occupancy series")
	}
	out := make([]float64, len(levels))
	for i, b := range levels {
		cnt := 0
		for _, q := range occupancy {
			if q > b {
				cnt++
			}
		}
		out[i] = float64(cnt) / float64(len(occupancy))
	}
	return out, nil
}

// NorrosModel carries the three traffic parameters buffer dimensioning
// for fBm-like input needs — exactly the quantities the paper's samplers
// estimate (mean rate, variance scale, Hurst parameter).
type NorrosModel struct {
	Mean     float64 // mean arrival rate m
	Variance float64 // per-tick variance sigma^2 (a = sigma^2/m is the index of dispersion)
	H        float64 // Hurst parameter in (1/2, 1)
}

// Validate checks the parameters.
func (n NorrosModel) Validate() error {
	switch {
	case !(n.Mean > 0):
		return fmt.Errorf("queue: Norros mean %g must be positive", n.Mean)
	case !(n.Variance > 0):
		return fmt.Errorf("queue: Norros variance %g must be positive", n.Variance)
	case n.H <= 0.5 || n.H >= 1:
		return fmt.Errorf("queue: Norros H %g outside (1/2,1)", n.H)
	}
	return nil
}

// OverflowBound returns Norros' lower-tail approximation for a fluid queue
// with fBm input at service rate c > m:
//
//	P(Q > b) ~ exp( -(c-m)^(2H) b^(2-2H) / (2 kappa(H)^2 a m) ),
//
// with kappa(H) = H^H (1-H)^(1-H) and a = Variance/Mean. The Weibull tail
// exponent 2-2H is the whole point: mis-estimating H mis-sizes buffers by
// orders of magnitude.
func (n NorrosModel) OverflowBound(c, b float64) (float64, error) {
	if err := n.Validate(); err != nil {
		return 0, err
	}
	if c <= n.Mean {
		return 1, nil // unstable queue: overflow is certain in the limit
	}
	if b <= 0 {
		return 1, nil
	}
	kappa := math.Pow(n.H, n.H) * math.Pow(1-n.H, 1-n.H)
	a := n.Variance / n.Mean
	exponent := math.Pow(c-n.Mean, 2*n.H) * math.Pow(b, 2-2*n.H) / (2 * kappa * kappa * a * n.Mean)
	return math.Exp(-exponent), nil
}

// BufferFor inverts OverflowBound: the buffer b such that the bound equals
// the target overflow probability.
func (n NorrosModel) BufferFor(c, target float64) (float64, error) {
	if err := n.Validate(); err != nil {
		return 0, err
	}
	if c <= n.Mean {
		return 0, fmt.Errorf("queue: service rate %g does not exceed the mean %g", c, n.Mean)
	}
	if !(target > 0) || target >= 1 {
		return 0, fmt.Errorf("queue: target overflow probability %g outside (0,1)", target)
	}
	kappa := math.Pow(n.H, n.H) * math.Pow(1-n.H, 1-n.H)
	a := n.Variance / n.Mean
	// exp(-(c-m)^2H b^(2-2H) / K) = target  =>  b = (K ln(1/target) / (c-m)^2H)^(1/(2-2H)).
	k := 2 * kappa * kappa * a * n.Mean
	num := k * math.Log(1/target)
	den := math.Pow(c-n.Mean, 2*n.H)
	return math.Pow(num/den, 1/(2-2*n.H)), nil
}

// FitModel estimates a NorrosModel from a rate series (typically a
// *sampled* reconstruction: the sampled mean and variance plus a Hurst
// estimate), so downstream dimensioning can run on monitor output.
func FitModel(f []float64, h float64) (NorrosModel, error) {
	if len(f) < 2 {
		return NorrosModel{}, fmt.Errorf("queue: series of length %d too short", len(f))
	}
	m := NorrosModel{Mean: stats.Mean(f), Variance: stats.Variance(f), H: h}
	if err := m.Validate(); err != nil {
		return NorrosModel{}, err
	}
	return m, nil
}
