package queue

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/lrd"
)

func TestSimulateBasics(t *testing.T) {
	// Constant arrivals below the service rate: the queue stays empty.
	arr := make([]float64, 100)
	for i := range arr {
		arr[i] = 1
	}
	res, err := Simulate(arr, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxOccupied != 0 || res.LossFraction != 0 {
		t.Errorf("underloaded queue: max %g, loss %g", res.MaxOccupied, res.LossFraction)
	}
	if !math.IsInf(res.Buffer, 1) {
		t.Error("buffer <= 0 should mean infinite")
	}
	// Overloaded queue grows linearly.
	res, err = Simulate(arr, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MaxOccupied-50) > 1e-9 {
		t.Errorf("overloaded backlog = %g, want 50", res.MaxOccupied)
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(nil, 1, 0); err == nil {
		t.Error("expected error for empty arrivals")
	}
	if _, err := Simulate([]float64{1}, 0, 0); err == nil {
		t.Error("expected error for zero service rate")
	}
	if _, err := Simulate([]float64{-1}, 1, 0); err == nil {
		t.Error("expected error for negative arrival")
	}
}

func TestSimulateFiniteBufferLoss(t *testing.T) {
	// A burst of 10 into a buffer of 3 drained at 1/tick: losses occur.
	arr := []float64{10, 0, 0, 0}
	res, err := Simulate(arr, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.LossFraction <= 0.5 {
		t.Errorf("loss fraction = %g, want > 0.5 (7/10 lost)", res.LossFraction)
	}
	if res.MaxOccupied > 3 {
		t.Errorf("occupancy %g exceeded the buffer", res.MaxOccupied)
	}
}

func TestSimulateWorkConservation(t *testing.T) {
	// Infinite buffer: served + backlog == offered (work conservation).
	prop := func(seed uint64) bool {
		rng := dist.NewRand(seed)
		arr := make([]float64, 200)
		var offered float64
		for i := range arr {
			arr[i] = rng.Float64() * 3
			offered += arr[i]
		}
		const c = 1.5
		res, err := Simulate(arr, c, 0)
		if err != nil {
			return false
		}
		// Served work = offered - final backlog; served <= c per tick.
		final := res.Occupancy[len(res.Occupancy)-1]
		served := offered - final
		return served <= c*float64(len(arr))+1e-9 && final >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOverflowProb(t *testing.T) {
	occ := []float64{0, 1, 2, 3, 4}
	got, err := OverflowProb(occ, []float64{0.5, 2.5, 10})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.8, 0.4, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("level %d: %g, want %g", i, got[i], want[i])
		}
	}
	if _, err := OverflowProb(nil, []float64{1}); err == nil {
		t.Error("expected error for empty occupancy")
	}
}

func TestNorrosValidation(t *testing.T) {
	bad := []NorrosModel{
		{Mean: 0, Variance: 1, H: 0.8},
		{Mean: 1, Variance: 0, H: 0.8},
		{Mean: 1, Variance: 1, H: 0.5},
		{Mean: 1, Variance: 1, H: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNorrosBoundShape(t *testing.T) {
	m := NorrosModel{Mean: 1, Variance: 1, H: 0.8}
	// Decreasing in buffer, decreasing in service rate.
	p1, err := m.OverflowBound(1.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.OverflowBound(1.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !(p2 < p1) {
		t.Errorf("bound should fall with buffer: %g vs %g", p1, p2)
	}
	p3, err := m.OverflowBound(2.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !(p3 < p1) {
		t.Errorf("bound should fall with service rate: %g vs %g", p1, p3)
	}
	// Unstable and degenerate cases return 1.
	if p, _ := m.OverflowBound(0.9, 10); p != 1 {
		t.Errorf("unstable queue bound = %g, want 1", p)
	}
	if p, _ := m.OverflowBound(1.5, 0); p != 1 {
		t.Errorf("b = 0 bound = %g, want 1", p)
	}
	// Higher H decays slower at large buffers (the paper's point).
	hi := NorrosModel{Mean: 1, Variance: 1, H: 0.9}
	lo := NorrosModel{Mean: 1, Variance: 1, H: 0.55}
	pHi, _ := hi.OverflowBound(1.5, 1000)
	pLo, _ := lo.OverflowBound(1.5, 1000)
	if !(pHi > pLo) {
		t.Errorf("H=0.9 bound %g should exceed H=0.55 bound %g at large buffers", pHi, pLo)
	}
}

func TestBufferForInvertsBound(t *testing.T) {
	m := NorrosModel{Mean: 2, Variance: 3, H: 0.75}
	const c, target = 3.0, 1e-4
	b, err := m.BufferFor(c, target)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.OverflowBound(c, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-target)/target > 1e-6 {
		t.Errorf("round trip: bound(bufferFor) = %g, want %g", p, target)
	}
	if _, err := m.BufferFor(1, target); err == nil {
		t.Error("expected error for service <= mean")
	}
	if _, err := m.BufferFor(c, 0); err == nil {
		t.Error("expected error for target = 0")
	}
	if _, err := m.BufferFor(c, 1.5); err == nil {
		t.Error("expected error for target >= 1")
	}
}

func TestHigherHurstNeedsBiggerBuffers(t *testing.T) {
	// The reason the paper cares about H preservation: dimensioning.
	for _, target := range []float64{1e-3, 1e-6} {
		lo := NorrosModel{Mean: 1, Variance: 1, H: 0.6}
		hi := NorrosModel{Mean: 1, Variance: 1, H: 0.9}
		bLo, err := lo.BufferFor(1.5, target)
		if err != nil {
			t.Fatal(err)
		}
		bHi, err := hi.BufferFor(1.5, target)
		if err != nil {
			t.Fatal(err)
		}
		if !(bHi > 2*bLo) {
			t.Errorf("target %g: H=0.9 buffer %g should far exceed H=0.6 buffer %g", target, bHi, bLo)
		}
	}
}

func TestNorrosAgainstSimulationOnFGN(t *testing.T) {
	// The bound should upper-bound (roughly track) the simulated overflow
	// on genuine fGn traffic within an order of magnitude at moderate
	// buffers.
	const h = 0.75
	gen, err := lrd.NewFGN(h, 1<<17, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	arr := gen.Generate(dist.NewRand(31))
	for i, v := range arr {
		if v < 0 {
			arr[i] = 0
		}
	}
	model, err := FitModel(arr, h)
	if err != nil {
		t.Fatal(err)
	}
	const c = 11.0 // 10% headroom over the mean
	res, err := Simulate(arr, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	levels := []float64{5, 10, 20}
	emp, err := OverflowProb(res.Occupancy, levels)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range levels {
		bound, err := model.OverflowBound(c, b)
		if err != nil {
			t.Fatal(err)
		}
		if emp[i] == 0 {
			continue
		}
		ratio := bound / emp[i]
		if ratio < 0.05 || ratio > 100 {
			t.Errorf("buffer %g: bound %g vs simulated %g (ratio %g)", b, bound, emp[i], ratio)
		}
	}
}

func TestFitModelErrors(t *testing.T) {
	if _, err := FitModel([]float64{1}, 0.8); err == nil {
		t.Error("expected error for short series")
	}
	if _, err := FitModel([]float64{1, 1}, 0.8); err == nil {
		t.Error("expected error for zero-variance series")
	}
	if _, err := FitModel([]float64{1, 2, 3}, 0.4); err == nil {
		t.Error("expected error for H outside (1/2,1)")
	}
}

func BenchmarkSimulate1M(b *testing.B) {
	rng := dist.NewRand(1)
	arr := make([]float64, 1<<20)
	for i := range arr {
		arr[i] = rng.Float64() * 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(arr, 1.1, 100); err != nil {
			b.Fatal(err)
		}
	}
}
