package traffic

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/lrd"
	"repro/internal/stats"
)

func defaultOnOff(ticks int) OnOffConfig {
	return OnOffConfig{
		Sources:  32,
		AlphaOn:  1.4,
		AlphaOff: 1.4,
		MeanOn:   10,
		MeanOff:  30,
		Rate:     1,
		Ticks:    ticks,
	}
}

func TestOnOffValidation(t *testing.T) {
	base := defaultOnOff(100)
	mutations := []func(*OnOffConfig){
		func(c *OnOffConfig) { c.Sources = 0 },
		func(c *OnOffConfig) { c.AlphaOn = 1 },
		func(c *OnOffConfig) { c.AlphaOn = 2.5 },
		func(c *OnOffConfig) { c.AlphaOff = 0.5 },
		func(c *OnOffConfig) { c.MeanOn = 0 },
		func(c *OnOffConfig) { c.MeanOff = -1 },
		func(c *OnOffConfig) { c.Rate = 0 },
		func(c *OnOffConfig) { c.Ticks = 0 },
		func(c *OnOffConfig) { c.Warmup = -1 },
	}
	for i, mut := range mutations {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("base config should validate: %v", err)
	}
}

func TestOnOffHurstFormula(t *testing.T) {
	c := defaultOnOff(10)
	c.AlphaOn, c.AlphaOff = 1.4, 1.8
	if got := c.Hurst(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Hurst = %g, want 0.8 (driven by the heavier tail)", got)
	}
	s := defaultSynth()
	if got := s.Hurst(); math.Abs(got-(3-s.AlphaOn)/2) > 1e-12 {
		t.Errorf("SynthConfig.Hurst = %g", got)
	}
}

func TestOnOffMeanMatchesTheory(t *testing.T) {
	cfg := defaultOnOff(1 << 16)
	x, err := GenerateOnOff(cfg, dist.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != cfg.Ticks {
		t.Fatalf("length %d, want %d", len(x), cfg.Ticks)
	}
	want := cfg.TheoreticalMean()
	got := stats.Mean(x)
	if math.Abs(got-want)/want > 0.25 {
		t.Errorf("aggregate mean %g vs theoretical %g (heavy tails allow slack, but not this much)", got, want)
	}
	// Values are bounded by Sources*Rate and nonnegative.
	lo, hi := stats.MinMax(x)
	if lo < 0 || hi > float64(cfg.Sources)*cfg.Rate+1e-9 {
		t.Errorf("values outside [0, %g]: min=%g max=%g", float64(cfg.Sources)*cfg.Rate, lo, hi)
	}
}

func TestOnOffIsLRD(t *testing.T) {
	cfg := defaultOnOff(1 << 17)
	cfg.AlphaOn, cfg.AlphaOff = 1.4, 1.4 // H = 0.8
	x, err := GenerateOnOff(cfg, dist.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	est, err := lrd.HurstWavelet(x, lrd.WaveletOptions{JMin: 4})
	if err != nil {
		t.Fatal(err)
	}
	if est.H < 0.65 || est.H > 0.98 {
		t.Errorf("wavelet H = %.3f, want clearly LRD (~0.8)", est.H)
	}
}

func TestOnOffDeterministicGivenSeed(t *testing.T) {
	cfg := defaultOnOff(2048)
	a, err := GenerateOnOff(cfg, dist.NewRand(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateOnOff(cfg, dist.NewRand(99))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different series at %d", i)
		}
	}
}

func TestMGInfinity(t *testing.T) {
	cfg := MGInfinityConfig{ArrivalRate: 2, Alpha: 1.5, MeanHold: 5, Ticks: 1 << 14}
	x, err := GenerateMGInfinity(cfg, dist.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	// Stationary mean of M/G/inf is lambda * E[hold] = 10.
	if m := stats.Mean(x); math.Abs(m-10)/10 > 0.3 {
		t.Errorf("mean sessions %g, want ~10", m)
	}
	bad := cfg
	bad.Alpha = 2.5
	if _, err := GenerateMGInfinity(bad, dist.NewRand(3)); err == nil {
		t.Error("expected validation error for alpha outside (1,2)")
	}
	bad = cfg
	bad.ArrivalRate = 0
	if _, err := GenerateMGInfinity(bad, dist.NewRand(3)); err == nil {
		t.Error("expected validation error for zero arrival rate")
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := dist.NewRand(17)
	for _, mean := range []float64{0.5, 4, 50} {
		var acc stats.Accumulator
		for i := 0; i < 40000; i++ {
			acc.Add(float64(poisson(rng, mean)))
		}
		if math.Abs(acc.Mean()-mean)/mean > 0.05 {
			t.Errorf("mean=%g: empirical %g", mean, acc.Mean())
		}
		if math.Abs(acc.Variance()-mean)/mean > 0.12 {
			t.Errorf("mean=%g: variance %g, want ~mean", mean, acc.Variance())
		}
	}
	if poisson(rng, 0) != 0 {
		t.Error("poisson(0) should be 0")
	}
}

func defaultSynth() SynthConfig {
	return SynthConfig{
		Pairs:     50,
		Duration:  120,
		AlphaOn:   1.76,
		MeanOn:    0.5,
		MeanOff:   5,
		MeanRate:  1e5,
		RateAlpha: 1.71,
	}
}

func TestSynthValidation(t *testing.T) {
	base := defaultSynth()
	mutations := []func(*SynthConfig){
		func(c *SynthConfig) { c.Pairs = 0 },
		func(c *SynthConfig) { c.Duration = 0 },
		func(c *SynthConfig) { c.AlphaOn = 1 },
		func(c *SynthConfig) { c.AlphaOn = 2 },
		func(c *SynthConfig) { c.MeanOn = 0 },
		func(c *SynthConfig) { c.MeanOff = -1 },
		func(c *SynthConfig) { c.MeanRate = 0 },
		func(c *SynthConfig) { c.RateAlpha = 3 },
	}
	for i, mut := range mutations {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestSynthesizeTraceBasics(t *testing.T) {
	cfg := defaultSynth()
	pkts, err := SynthesizeTrace(cfg, dist.NewRand(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 1000 {
		t.Fatalf("only %d packets generated", len(pkts))
	}
	if !sort.SliceIsSorted(pkts, func(i, j int) bool { return pkts[i].Time < pkts[j].Time }) {
		t.Error("trace not time-sorted")
	}
	for i, p := range pkts {
		if p.Time < 0 || p.Time > cfg.Duration {
			t.Fatalf("packet %d at time %g outside [0, %g]", i, p.Time, cfg.Duration)
		}
		if p.Size == 0 {
			t.Fatalf("packet %d has zero size", i)
		}
	}
	st := Stats(pkts)
	if st.HostPairs == 0 || st.HostPairs > cfg.Pairs {
		t.Errorf("host pairs = %d, want in (0, %d]", st.HostPairs, cfg.Pairs)
	}
	if st.MeanPktLen < 40 || st.MeanPktLen > 1500 {
		t.Errorf("mean packet length %g outside [40, 1500]", st.MeanPktLen)
	}
}

func TestSynthesizeTargetRate(t *testing.T) {
	cfg := defaultSynth()
	cfg.TargetMeanRate = 1.21e4
	pkts, err := SynthesizeTrace(cfg, dist.NewRand(43))
	if err != nil {
		t.Fatal(err)
	}
	st := Stats(pkts)
	if math.Abs(st.MeanRate-1.21e4)/1.21e4 > 0.1 {
		t.Errorf("mean rate %g, want ~1.21e4", st.MeanRate)
	}
}

func TestStatsEmpty(t *testing.T) {
	st := Stats(nil)
	if st.Packets != 0 || st.Bytes != 0 || st.MeanRate != 0 {
		t.Errorf("empty stats = %+v, want zero value", st)
	}
}

func TestFilterOD(t *testing.T) {
	pkts := []Packet{
		{Time: 0, Src: 0, Dst: 1, Size: 100},
		{Time: 1, Src: 2, Dst: 3, Size: 100},
		{Time: 2, Src: 0, Dst: 1, Size: 50},
	}
	od := FilterOD(pkts, 0, 1)
	if len(od) != 2 || od[1].Size != 50 {
		t.Errorf("FilterOD = %v", od)
	}
}

func TestBinBytesConservation(t *testing.T) {
	// The binned series times granularity must conserve total bytes.
	prop := func(seed uint64) bool {
		rng := dist.NewRand(seed)
		pkts := make([]Packet, 500)
		var total float64
		for i := range pkts {
			pkts[i] = Packet{Time: rng.Float64() * 10, Size: uint32(rng.IntN(1500) + 1)}
			total += float64(pkts[i].Size)
		}
		sort.Slice(pkts, func(i, j int) bool { return pkts[i].Time < pkts[j].Time })
		f, err := BinBytes(pkts, 0.1, 10.5)
		if err != nil {
			return false
		}
		var binned float64
		for _, v := range f {
			binned += v * 0.1
		}
		return math.Abs(binned-total) < 1e-6*total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBinBytesErrors(t *testing.T) {
	if _, err := BinBytes(nil, 0.1, 1); err == nil {
		t.Error("expected error for empty trace")
	}
	if _, err := BinBytes([]Packet{{Time: 0, Size: 1}}, 0, 1); err == nil {
		t.Error("expected error for zero granularity")
	}
	if _, err := BinBytes([]Packet{{Time: 0, Size: 1}}, 10, 5); err == nil {
		t.Error("expected error for duration < granularity")
	}
}

func TestBinCount(t *testing.T) {
	pkts := []Packet{
		{Time: 0.05, Size: 10}, {Time: 0.15, Size: 10}, {Time: 0.16, Size: 10}, {Time: 0.95, Size: 10},
	}
	f, err := BinCount(pkts, 0.1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 10 {
		t.Fatalf("bins = %d, want 10", len(f))
	}
	if f[0] != 1 || f[1] != 2 || f[9] != 1 {
		t.Errorf("counts = %v", f)
	}
	if _, err := BinCount(nil, 0.1, 1); err == nil {
		t.Error("expected error for empty trace")
	}
	if _, err := BinCount(pkts, -1, 1); err == nil {
		t.Error("expected error for negative granularity")
	}
}

func TestOnPeriods(t *testing.T) {
	f := []float64{0, 5, 6, 0, 0, 7, 0, 8, 8, 8}
	got := OnPeriods(f, 4)
	want := []float64{2, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("OnPeriods = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("OnPeriods[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if got := OnPeriods([]float64{1, 1}, 5); len(got) != 0 {
		t.Errorf("no runs expected, got %v", got)
	}
}

func TestOnPeriodsHeavyTailedForOnOff(t *testing.T) {
	// Section V-B's observation: the 1-burst periods of a self-similar
	// process are heavy tailed. Generate ON/OFF traffic and verify the
	// fitted tail index is in the heavy regime (< 3 by a wide margin).
	cfg := defaultOnOff(1 << 16)
	cfg.AlphaOn, cfg.AlphaOff = 1.3, 1.3
	x, err := GenerateOnOff(cfg, dist.NewRand(11))
	if err != nil {
		t.Fatal(err)
	}
	mean := stats.Mean(x)
	b := OnPeriods(x, 0.5*mean)
	if len(b) < 100 {
		t.Fatalf("only %d bursts found", len(b))
	}
	fit, err := dist.FitParetoTail(b, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha > 3 || fit.Alpha < 0.5 {
		t.Errorf("burst tail index %g, want heavy-tailed (roughly 1-3)", fit.Alpha)
	}
}

func TestSortedCopy(t *testing.T) {
	x := []float64{3, 1, 2}
	s := SortedCopy(x)
	if !sort.Float64sAreSorted(s) {
		t.Error("copy not sorted")
	}
	if x[0] != 3 {
		t.Error("input mutated")
	}
}

func BenchmarkGenerateOnOff64k(b *testing.B) {
	cfg := defaultOnOff(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateOnOff(cfg, dist.NewRand(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthesizeTrace(b *testing.B) {
	cfg := defaultSynth()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SynthesizeTrace(cfg, dist.NewRand(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
