// Package traffic implements the traffic-model substrate of the
// reproduction: the superposed heavy-tailed ON/OFF aggregate the paper
// generates with ns-2, an M/G/infinity generator, an OD-flow packet-trace
// synthesizer standing in for the proprietary Bell Labs traces, and the
// binning that turns packet traces into the rate process f(t) the sampling
// techniques operate on.
package traffic

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/dist"
)

// OnOffConfig describes a superposition of N ON/OFF sources with
// heavy-tailed (Pareto) sojourn times. With ON/OFF tail index
// 1 < alpha < 2 the aggregate is asymptotically self-similar with
// H = (3 - alpha)/2 (Willinger et al.), which is exactly how the paper
// produces its "synthetic traces with Hurst parameter 0.80" in ns-2.
type OnOffConfig struct {
	Sources  int     // number of superposed sources (e.g. 64)
	AlphaOn  float64 // Pareto shape of ON periods, in (1, 2)
	AlphaOff float64 // Pareto shape of OFF periods, in (1, 2)
	MeanOn   float64 // mean ON duration in ticks (> 0)
	MeanOff  float64 // mean OFF duration in ticks (> 0)
	Rate     float64 // mean emission per source per tick while ON (> 0)
	Ticks    int     // length of the generated series
	Warmup   int     // ticks simulated and discarded before recording (default Ticks/8)

	// RateAlpha, when nonzero, draws an independent Pareto(RateAlpha)
	// emission rate (mean Rate) for every ON burst instead of the constant
	// Rate. This models heterogeneous source bandwidths and gives the
	// aggregate the heavy-tailed *marginal* observed on real links (the
	// paper's Figure 8, where f(t) itself fits a Pareto with alpha 1.5
	// synthetic / 1.71 real) — the property that makes the mean hard to
	// sample. Must lie in (1, 2] when set.
	RateAlpha float64
}

// Validate checks the configuration.
func (c OnOffConfig) Validate() error {
	switch {
	case c.Sources < 1:
		return fmt.Errorf("traffic: Sources=%d must be >= 1", c.Sources)
	case !(c.AlphaOn > 1) || c.AlphaOn >= 2:
		return fmt.Errorf("traffic: AlphaOn=%g must lie in (1,2)", c.AlphaOn)
	case !(c.AlphaOff > 1) || c.AlphaOff >= 2:
		return fmt.Errorf("traffic: AlphaOff=%g must lie in (1,2)", c.AlphaOff)
	case !(c.MeanOn > 0) || !(c.MeanOff > 0):
		return fmt.Errorf("traffic: mean ON/OFF durations must be positive (got %g, %g)", c.MeanOn, c.MeanOff)
	case !(c.Rate > 0):
		return fmt.Errorf("traffic: Rate=%g must be positive", c.Rate)
	case c.Ticks < 1:
		return fmt.Errorf("traffic: Ticks=%d must be >= 1", c.Ticks)
	case c.Warmup < 0:
		return fmt.Errorf("traffic: Warmup=%d must be >= 0", c.Warmup)
	case c.RateAlpha != 0 && (!(c.RateAlpha > 1) || c.RateAlpha > 2):
		return fmt.Errorf("traffic: RateAlpha=%g must be 0 or in (1,2]", c.RateAlpha)
	}
	return nil
}

// Hurst returns the asymptotic Hurst parameter (3 - min(alphaOn, alphaOff))/2
// of the aggregate.
func (c OnOffConfig) Hurst() float64 {
	a := c.AlphaOn
	if c.AlphaOff < a {
		a = c.AlphaOff
	}
	return (3 - a) / 2
}

// TheoreticalMean returns the expected per-tick aggregate emission,
// Sources * Rate * MeanOn / (MeanOn + MeanOff).
func (c OnOffConfig) TheoreticalMean() float64 {
	return float64(c.Sources) * c.Rate * c.MeanOn / (c.MeanOn + c.MeanOff)
}

// GenerateOnOff simulates the superposition and returns the aggregate
// per-tick series f(t), t = 0..Ticks-1.
func GenerateOnOff(cfg OnOffConfig, rng *rand.Rand) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	warmup := cfg.Warmup
	if warmup == 0 {
		warmup = cfg.Ticks / 8
	}
	onDist, err := dist.NewPareto(cfg.AlphaOn, cfg.MeanOn*(cfg.AlphaOn-1)/cfg.AlphaOn)
	if err != nil {
		return nil, fmt.Errorf("traffic: ON distribution: %w", err)
	}
	offDist, err := dist.NewPareto(cfg.AlphaOff, cfg.MeanOff*(cfg.AlphaOff-1)/cfg.AlphaOff)
	if err != nil {
		return nil, fmt.Errorf("traffic: OFF distribution: %w", err)
	}
	var rateDist dist.Pareto
	if cfg.RateAlpha != 0 {
		rateDist, err = dist.NewPareto(cfg.RateAlpha, cfg.Rate*(cfg.RateAlpha-1)/cfg.RateAlpha)
		if err != nil {
			return nil, fmt.Errorf("traffic: burst-rate distribution: %w", err)
		}
	}
	burstRate := func() float64 {
		if cfg.RateAlpha == 0 {
			return cfg.Rate
		}
		return rateDist.Sample(rng)
	}
	total := warmup + cfg.Ticks
	out := make([]float64, cfg.Ticks)
	for s := 0; s < cfg.Sources; s++ {
		// Random initial phase: start each source in a random state a
		// random way through its sojourn to avoid synchronized starts.
		on := rng.Float64() < cfg.MeanOn/(cfg.MeanOn+cfg.MeanOff)
		var remaining float64
		if on {
			remaining = onDist.Sample(rng) * rng.Float64()
		} else {
			remaining = offDist.Sample(rng) * rng.Float64()
		}
		rate := burstRate()
		for t := 0; t < total; {
			steps := int(math.Ceil(remaining))
			if steps < 1 {
				steps = 1
			}
			if t+steps > total {
				steps = total - t
			}
			if on {
				for i := t; i < t+steps; i++ {
					if i >= warmup {
						out[i-warmup] += rate
					}
				}
			}
			t += steps
			on = !on
			if on {
				remaining = onDist.Sample(rng)
				rate = burstRate()
			} else {
				remaining = offDist.Sample(rng)
			}
		}
	}
	return out, nil
}

// MGInfinityConfig describes an M/G/infinity input process: sessions arrive
// as a Poisson process and each contributes one unit of load for a
// heavy-tailed (Pareto) holding time. Session counts sampled per tick form
// an LRD series with H = (3 - alpha)/2, an alternative construction used in
// ablation studies.
type MGInfinityConfig struct {
	ArrivalRate float64 // sessions per tick (> 0)
	Alpha       float64 // Pareto shape of holding times, in (1, 2)
	MeanHold    float64 // mean holding time in ticks (> 0)
	Ticks       int
	Warmup      int
}

// Validate checks the configuration.
func (c MGInfinityConfig) Validate() error {
	switch {
	case !(c.ArrivalRate > 0):
		return fmt.Errorf("traffic: ArrivalRate=%g must be positive", c.ArrivalRate)
	case !(c.Alpha > 1) || c.Alpha >= 2:
		return fmt.Errorf("traffic: Alpha=%g must lie in (1,2)", c.Alpha)
	case !(c.MeanHold > 0):
		return fmt.Errorf("traffic: MeanHold=%g must be positive", c.MeanHold)
	case c.Ticks < 1:
		return fmt.Errorf("traffic: Ticks=%d must be >= 1", c.Ticks)
	case c.Warmup < 0:
		return fmt.Errorf("traffic: Warmup=%d must be >= 0", c.Warmup)
	}
	return nil
}

// GenerateMGInfinity simulates the process and returns the per-tick number
// of sessions in the system.
func GenerateMGInfinity(cfg MGInfinityConfig, rng *rand.Rand) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	warmup := cfg.Warmup
	if warmup == 0 {
		warmup = cfg.Ticks / 8
	}
	hold, err := dist.NewPareto(cfg.Alpha, cfg.MeanHold*(cfg.Alpha-1)/cfg.Alpha)
	if err != nil {
		return nil, fmt.Errorf("traffic: holding distribution: %w", err)
	}
	total := warmup + cfg.Ticks
	// Difference array: +1 at arrival, -1 after departure.
	diff := make([]float64, total+1)
	for t := 0; t < total; t++ {
		n := poisson(rng, cfg.ArrivalRate)
		for i := 0; i < n; i++ {
			d := int(math.Ceil(hold.Sample(rng)))
			if d < 1 {
				d = 1
			}
			diff[t]++
			if t+d < len(diff) {
				diff[t+d]--
			}
		}
	}
	out := make([]float64, cfg.Ticks)
	var active float64
	for t := 0; t < total; t++ {
		active += diff[t]
		if t >= warmup {
			out[t-warmup] = active
		}
	}
	return out, nil
}

// poisson draws a Poisson variate (Knuth for small means, normal
// approximation above 30 where Knuth's loop grows costly).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
