package traffic

import (
	"fmt"
	"sort"
)

// BinBytes converts a time-sorted packet trace into the rate process f(t):
// bytes per second measured over consecutive bins of width granularity
// seconds. This is "the traffic process measured at some fixed time
// granularity" of the paper's Section II; dividing by the granularity
// expresses every bin in bytes/second so means are rate-comparable across
// granularities (the units of the paper's Figures 6, 13, 17, 19).
func BinBytes(pkts []Packet, granularity, duration float64) ([]float64, error) {
	if granularity <= 0 {
		return nil, fmt.Errorf("traffic: granularity %g must be positive", granularity)
	}
	if len(pkts) == 0 {
		return nil, fmt.Errorf("traffic: cannot bin an empty trace")
	}
	if duration <= 0 {
		duration = pkts[len(pkts)-1].Time + granularity
	}
	n := int(duration / granularity)
	if n < 1 {
		return nil, fmt.Errorf("traffic: duration %g shorter than one bin (%g)", duration, granularity)
	}
	out := make([]float64, n)
	for _, p := range pkts {
		idx := int(p.Time / granularity)
		if idx < 0 || idx >= n {
			continue
		}
		out[idx] += float64(p.Size)
	}
	inv := 1 / granularity
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// BinCount returns packets-per-bin counts (not rate-normalized), for
// workloads where the measured attribute is packet arrivals.
func BinCount(pkts []Packet, granularity, duration float64) ([]float64, error) {
	if granularity <= 0 {
		return nil, fmt.Errorf("traffic: granularity %g must be positive", granularity)
	}
	if len(pkts) == 0 {
		return nil, fmt.Errorf("traffic: cannot bin an empty trace")
	}
	if duration <= 0 {
		duration = pkts[len(pkts)-1].Time + granularity
	}
	n := int(duration / granularity)
	if n < 1 {
		return nil, fmt.Errorf("traffic: duration %g shorter than one bin (%g)", duration, granularity)
	}
	out := make([]float64, n)
	for _, p := range pkts {
		idx := int(p.Time / granularity)
		if idx >= 0 && idx < n {
			out[idx]++
		}
	}
	return out, nil
}

// OnPeriods returns the lengths (in ticks) of the maximal runs where
// f(t) > threshold — the "1-burst periods" B of the paper's Section V-B,
// whose heavy-tailedness justifies BSS. Runs touching either boundary are
// included (their censoring only shortens the empirical tail).
func OnPeriods(f []float64, threshold float64) []float64 {
	out := make([]float64, 0, 64)
	run := 0
	for _, v := range f {
		if v > threshold {
			run++
			continue
		}
		if run > 0 {
			out = append(out, float64(run))
			run = 0
		}
	}
	if run > 0 {
		out = append(out, float64(run))
	}
	return out
}

// SortedCopy returns an ascending copy of x (test/diagnostic helper shared
// by the experiments).
func SortedCopy(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	sort.Float64s(out)
	return out
}
