package traffic

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/dist"
)

// Packet is one record of a packet-level trace, the unit the Bell Labs
// tcpdump traces provide.
type Packet struct {
	Time float64 // seconds since trace start
	Src  uint16  // origin host id
	Dst  uint16  // destination host id
	Size uint32  // bytes on the wire
}

// TraceStats summarizes a packet trace.
type TraceStats struct {
	Packets    int
	Bytes      uint64
	Duration   float64 // seconds, last timestamp
	MeanRate   float64 // bytes per second
	HostPairs  int
	MeanPktLen float64
}

// Stats computes summary statistics for a packet trace.
func Stats(pkts []Packet) TraceStats {
	var st TraceStats
	st.Packets = len(pkts)
	if len(pkts) == 0 {
		return st
	}
	pairs := make(map[uint32]struct{})
	for _, p := range pkts {
		st.Bytes += uint64(p.Size)
		pairs[uint32(p.Src)<<16|uint32(p.Dst)] = struct{}{}
		if p.Time > st.Duration {
			st.Duration = p.Time
		}
	}
	st.HostPairs = len(pairs)
	if st.Duration > 0 {
		st.MeanRate = float64(st.Bytes) / st.Duration
	}
	st.MeanPktLen = float64(st.Bytes) / float64(st.Packets)
	return st
}

// SynthConfig drives the OD-flow packet-trace synthesizer that substitutes
// for the proprietary Bell Labs traces: hundreds of origin-destination
// pairs, each an ON/OFF flow with Pareto-tailed burst durations (inducing
// the self-similarity of the aggregate, H = (3 - AlphaOn)/2) and
// Pareto-tailed per-burst transfer rates (inducing the heavy-tailed rate
// marginal the paper fits in Figure 8(b)). During a burst, packets with
// the classic trimodal Internet size mix are emitted at exponential gaps
// matching the burst's byte rate.
type SynthConfig struct {
	Pairs          int     // OD host pairs (e.g. 200)
	Duration       float64 // trace length in seconds (e.g. 2400 = 40 min)
	AlphaOn        float64 // Pareto shape of burst durations, in (1, 2)
	MeanOn         float64 // mean burst duration in seconds
	MeanOff        float64 // mean idle time between bursts in seconds
	MeanRate       float64 // mean bytes/second while bursting
	RateAlpha      float64 // 0 = constant rate, else Pareto shape in (1, 2]
	TargetMeanRate float64 // if > 0, rescale so aggregate bytes/s matches
}

// Validate checks the configuration.
func (c SynthConfig) Validate() error {
	switch {
	case c.Pairs < 1:
		return fmt.Errorf("traffic: Pairs=%d must be >= 1", c.Pairs)
	case !(c.Duration > 0):
		return fmt.Errorf("traffic: Duration=%g must be positive", c.Duration)
	case !(c.AlphaOn > 1) || c.AlphaOn >= 2:
		return fmt.Errorf("traffic: AlphaOn=%g must lie in (1,2)", c.AlphaOn)
	case !(c.MeanOn > 0):
		return fmt.Errorf("traffic: MeanOn=%g must be positive", c.MeanOn)
	case !(c.MeanOff > 0):
		return fmt.Errorf("traffic: MeanOff=%g must be positive", c.MeanOff)
	case !(c.MeanRate > 0):
		return fmt.Errorf("traffic: MeanRate=%g must be positive", c.MeanRate)
	case c.RateAlpha != 0 && (!(c.RateAlpha > 1) || c.RateAlpha > 2):
		return fmt.Errorf("traffic: RateAlpha=%g must be 0 or in (1,2]", c.RateAlpha)
	}
	return nil
}

// Hurst returns the asymptotic Hurst parameter (3 - AlphaOn)/2 induced by
// the heavy-tailed burst durations.
func (c SynthConfig) Hurst() float64 { return (3 - c.AlphaOn) / 2 }

// packetSizes is the classic trimodal Internet packet-length mix.
var packetSizes = [...]uint32{40, 576, 1500}
var packetSizeCum = [...]float64{0.4, 0.65, 1.0}

// samplePacketSize draws a packet length from the trimodal mix.
func samplePacketSize(rng *rand.Rand) uint32 {
	u := rng.Float64()
	for i, c := range packetSizeCum {
		if u <= c {
			return packetSizes[i]
		}
	}
	return packetSizes[len(packetSizes)-1]
}

// SynthesizeTrace generates a time-sorted packet trace under cfg.
func SynthesizeTrace(cfg SynthConfig, rng *rand.Rand) ([]Packet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	onDist, err := dist.NewPareto(cfg.AlphaOn, cfg.MeanOn*(cfg.AlphaOn-1)/cfg.AlphaOn)
	if err != nil {
		return nil, fmt.Errorf("traffic: burst duration distribution: %w", err)
	}
	var rateDist dist.Pareto
	if cfg.RateAlpha != 0 {
		rateDist, err = dist.NewPareto(cfg.RateAlpha, cfg.MeanRate*(cfg.RateAlpha-1)/cfg.RateAlpha)
		if err != nil {
			return nil, fmt.Errorf("traffic: burst rate distribution: %w", err)
		}
	}
	burstRate := func() float64 {
		if cfg.RateAlpha == 0 {
			return cfg.MeanRate
		}
		return rateDist.Sample(rng)
	}
	// Mean packet length of the trimodal mix, used to convert a byte rate
	// into a packet rate.
	var meanPkt float64
	prev := 0.0
	for i, c := range packetSizeCum {
		meanPkt += float64(packetSizes[i]) * (c - prev)
		prev = c
	}
	duty := cfg.MeanOn / (cfg.MeanOn + cfg.MeanOff)
	estPackets := int(float64(cfg.Pairs)*duty*cfg.Duration*cfg.MeanRate/meanPkt) + 16
	pkts := make([]Packet, 0, estPackets)
	for pair := 0; pair < cfg.Pairs; pair++ {
		src := uint16(pair * 2)
		dst := uint16(pair*2 + 1)
		// Random initial phase, like the ON/OFF aggregate generator.
		t := -rng.Float64() * (cfg.MeanOn + cfg.MeanOff)
		for t < cfg.Duration {
			// OFF period.
			t += rng.ExpFloat64() * cfg.MeanOff
			// ON burst: Pareto duration, Pareto byte rate.
			dur := onDist.Sample(rng)
			rate := burstRate()
			end := t + dur
			pktGap := meanPkt / rate // mean seconds between packets
			for pt := t + rng.ExpFloat64()*pktGap; pt < end && pt < cfg.Duration; pt += rng.ExpFloat64() * pktGap {
				if pt >= 0 {
					pkts = append(pkts, Packet{Time: pt, Src: src, Dst: dst, Size: samplePacketSize(rng)})
				}
			}
			t = end
		}
	}
	sort.Slice(pkts, func(i, j int) bool { return pkts[i].Time < pkts[j].Time })
	if cfg.TargetMeanRate > 0 && len(pkts) > 0 {
		st := Stats(pkts)
		if st.MeanRate > 0 {
			scale := cfg.TargetMeanRate / st.MeanRate
			for i := range pkts {
				s := float64(pkts[i].Size) * scale
				if s < 1 {
					s = 1
				}
				pkts[i].Size = uint32(s + 0.5)
			}
		}
	}
	if len(pkts) == 0 {
		return nil, fmt.Errorf("traffic: synthesis produced no packets (duration %g too short?)", cfg.Duration)
	}
	return pkts, nil
}

// FilterOD returns only the packets of one origin-destination flow, the
// "specified OD flows" use case the paper motivates sampling with.
func FilterOD(pkts []Packet, src, dst uint16) []Packet {
	out := make([]Packet, 0, len(pkts)/8)
	for _, p := range pkts {
		if p.Src == src && p.Dst == dst {
			out = append(out, p)
		}
	}
	return out
}
