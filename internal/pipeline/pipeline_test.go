package pipeline

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func testPackets(t *testing.T) []traffic.Packet {
	t.Helper()
	cfg := traffic.SynthConfig{
		Pairs: 20, Duration: 60, AlphaOn: 1.5,
		MeanOn: 0.5, MeanOff: 5, MeanRate: 1e5, RateAlpha: 1.5,
	}
	pkts, err := traffic.SynthesizeTrace(cfg, dist.NewRand(77))
	if err != nil {
		t.Fatal(err)
	}
	return pkts
}

func TestBinTicksMatchesBatchBinning(t *testing.T) {
	pkts := testPackets(t)
	want, err := traffic.BinBytes(pkts, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Tick, 64)
	var got []float64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for tk := range ch {
			got = append(got, tk.Value)
		}
	}()
	n, err := BinTicks(context.Background(), pkts, 0.1, ch)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if n != len(got) {
		t.Fatalf("emitted %d, received %d", n, len(got))
	}
	if len(got) > len(want) || len(got) < len(want)-1 {
		t.Fatalf("stream bins %d vs batch %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("bin %d: stream %g vs batch %g", i, got[i], want[i])
		}
	}
}

func TestBinTicksErrors(t *testing.T) {
	ch := make(chan Tick, 1)
	if _, err := BinTicks(context.Background(), nil, 0.1, ch); err == nil {
		t.Error("expected error for empty stream")
	}
	ch2 := make(chan Tick, 1)
	if _, err := BinTicks(context.Background(), testPackets(t), 0, ch2); err == nil {
		t.Error("expected error for zero granularity")
	}
}

func TestBinTicksCancellation(t *testing.T) {
	pkts := testPackets(t)
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan Tick) // unbuffered: the binner will block
	errCh := make(chan error, 1)
	go func() {
		_, err := BinTicks(ctx, pkts, 0.001, ch)
		errCh <- err
	}()
	<-ch // let it start
	cancel()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("expected context error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("binner did not stop after cancellation")
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(); err == nil {
		t.Error("expected error for no probes")
	}
	p1, _ := NewSystematicProbe("a", 10)
	p2, _ := NewSystematicProbe("a", 20)
	if _, err := NewMonitor(p1, p2); err == nil {
		t.Error("expected error for duplicate names")
	}
	if _, err := NewMonitor(nil); err == nil {
		t.Error("expected error for nil probe")
	}
}

func TestMonitorEndToEnd(t *testing.T) {
	pkts := testPackets(t)
	f, err := traffic.BinBytes(pkts, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	realMean := stats.Mean(f)

	sys, err := NewSystematicProbe("", 10)
	if err != nil {
		t.Fatal(err)
	}
	bss, err := NewBSSProbe("", core.BSS{Interval: 10, L: 3, Epsilon: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	alarm, err := NewThresholdAlarmProbe("", 5, 4, realMean*3)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(sys, bss, alarm)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Tick, 128)
	go func() {
		if _, err := BinTicks(context.Background(), pkts, 0.1, ch); err != nil {
			t.Error(err)
		}
	}()
	reports, err := mon.Run(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(reports))
	}
	for _, r := range reports {
		if r.Seen != len(f) && r.Seen != len(f)-1 {
			t.Errorf("%s saw %d ticks, want ~%d", r.Name, r.Seen, len(f))
		}
	}
	// The systematic probe's estimate should be in the right ballpark.
	if math.Abs(reports[0].Mean-realMean)/realMean > 0.5 {
		t.Errorf("systematic probe mean %g vs real %g", reports[0].Mean, realMean)
	}
	if reports[0].Kept == 0 || reports[1].Kept == 0 {
		t.Error("probes kept no samples")
	}
}

func TestMonitorCancelledContext(t *testing.T) {
	sys, _ := NewSystematicProbe("", 1)
	mon, err := NewMonitor(sys)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ch := make(chan Tick)
	if _, err := mon.Run(ctx, ch); err == nil {
		t.Error("expected context error")
	}
}

func TestProbeValidation(t *testing.T) {
	if _, err := NewSystematicProbe("x", 0); err == nil {
		t.Error("expected error for interval 0")
	}
	if _, err := NewBSSProbe("x", core.BSS{Interval: 0, L: 1, Epsilon: 1}); err == nil {
		t.Error("expected error for bad BSS config")
	}
	if _, err := NewThresholdAlarmProbe("x", 0, 5, 1); err == nil {
		t.Error("expected error for interval 0")
	}
	if _, err := NewThresholdAlarmProbe("x", 5, 0, 1); err == nil {
		t.Error("expected error for window 0")
	}
}

func TestThresholdAlarmFires(t *testing.T) {
	alarm, err := NewThresholdAlarmProbe("", 1, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Quiet, then a sustained burst.
	vals := []float64{1, 1, 1, 1, 50, 60, 70, 80, 1, 1}
	for i, v := range vals {
		alarm.Offer(Tick{Index: i, Value: v})
	}
	alarms := alarm.Alarms()
	if len(alarms) == 0 {
		t.Fatal("alarm never fired during the burst")
	}
	for _, idx := range alarms {
		if idx < 4 {
			t.Errorf("alarm fired at %d, before the burst", idx)
		}
	}
	r := alarm.Report()
	if r.Kept != len(vals) {
		t.Errorf("kept %d, want %d", r.Kept, len(vals))
	}
}

func TestSystematicProbeMatchesBatchSampler(t *testing.T) {
	f := make([]float64, 1000)
	rng := dist.NewRand(3)
	for i := range f {
		f[i] = rng.Float64()
	}
	probe, err := NewSystematicProbe("", 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f {
		probe.Offer(Tick{Index: i, Value: v})
	}
	batch, err := (core.Systematic{Interval: 7}).Sample(f)
	if err != nil {
		t.Fatal(err)
	}
	r := probe.Report()
	if r.Kept != len(batch) {
		t.Fatalf("probe kept %d, batch %d", r.Kept, len(batch))
	}
	if math.Abs(r.Mean-core.MeanOf(batch)) > 1e-12 {
		t.Errorf("probe mean %g vs batch %g", r.Mean, core.MeanOf(batch))
	}
}
