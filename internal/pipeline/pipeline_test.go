package pipeline

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/lrd"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/sampling"
)

func testPackets(t *testing.T) []traffic.Packet {
	t.Helper()
	cfg := traffic.SynthConfig{
		Pairs: 20, Duration: 60, AlphaOn: 1.5,
		MeanOn: 0.5, MeanOff: 5, MeanRate: 1e5, RateAlpha: 1.5,
	}
	pkts, err := traffic.SynthesizeTrace(cfg, dist.NewRand(77))
	if err != nil {
		t.Fatal(err)
	}
	return pkts
}

func specProbe(t *testing.T, name, spec string) *SamplerProbe {
	t.Helper()
	p, err := NewSpecProbe(name, spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBinTicksMatchesBatchBinning(t *testing.T) {
	pkts := testPackets(t)
	want, err := traffic.BinBytes(pkts, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Tick, 64)
	var got []float64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for tk := range ch {
			got = append(got, tk.Value)
		}
	}()
	n, err := BinTicks(context.Background(), pkts, 0.1, ch)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if n != len(got) {
		t.Fatalf("emitted %d, received %d", n, len(got))
	}
	if len(got) > len(want) || len(got) < len(want)-1 {
		t.Fatalf("stream bins %d vs batch %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("bin %d: stream %g vs batch %g", i, got[i], want[i])
		}
	}
}

func TestBinTicksErrors(t *testing.T) {
	ch := make(chan Tick, 1)
	if _, err := BinTicks(context.Background(), nil, 0.1, ch); err == nil {
		t.Error("expected error for empty stream")
	}
	ch2 := make(chan Tick, 1)
	if _, err := BinTicks(context.Background(), testPackets(t), 0, ch2); err == nil {
		t.Error("expected error for zero granularity")
	}
}

func TestBinTicksCancellation(t *testing.T) {
	pkts := testPackets(t)
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan Tick) // unbuffered: the binner will block
	errCh := make(chan error, 1)
	go func() {
		_, err := BinTicks(ctx, pkts, 0.001, ch)
		errCh <- err
	}()
	<-ch // let it start
	cancel()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("expected context error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("binner did not stop after cancellation")
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(); err == nil {
		t.Error("expected error for no probes")
	}
	p1 := specProbe(t, "a", "systematic:interval=10")
	p2 := specProbe(t, "a", "systematic:interval=20")
	if _, err := NewMonitor(p1, p2); err == nil {
		t.Error("expected error for duplicate names")
	}
	if _, err := NewMonitor(nil); err == nil {
		t.Error("expected error for nil probe")
	}
}

func TestMonitorEndToEnd(t *testing.T) {
	pkts := testPackets(t)
	f, err := traffic.BinBytes(pkts, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	realMean := stats.Mean(f)

	sys := specProbe(t, "", "systematic:interval=10")
	bss := specProbe(t, "", "bss:interval=10,L=3,eps=1.2")
	alarm, err := NewThresholdAlarmProbe("", 5, 4, realMean*3)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(sys, bss, alarm)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Tick, 128)
	go func() {
		if _, err := BinTicks(context.Background(), pkts, 0.1, ch); err != nil {
			t.Error(err)
		}
	}()
	reports, err := mon.Run(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(reports))
	}
	for _, r := range reports {
		if r.Seen != len(f) && r.Seen != len(f)-1 {
			t.Errorf("%s saw %d ticks, want ~%d", r.Name, r.Seen, len(f))
		}
		if r.Err != nil {
			t.Errorf("%s: %v", r.Name, r.Err)
		}
	}
	// The systematic probe's estimate should be in the right ballpark.
	if math.Abs(reports[0].Mean-realMean)/realMean > 0.5 {
		t.Errorf("systematic probe mean %g vs real %g", reports[0].Mean, realMean)
	}
	if reports[0].Kept == 0 || reports[1].Kept == 0 {
		t.Error("probes kept no samples")
	}
}

func TestMonitorCancelledContext(t *testing.T) {
	sys := specProbe(t, "", "systematic:interval=1")
	mon, err := NewMonitor(sys)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ch := make(chan Tick)
	if _, err := mon.Run(ctx, ch); err == nil {
		t.Error("expected context error")
	}
}

func TestProbeValidation(t *testing.T) {
	if _, err := NewSpecProbe("x", "systematic:interval=0"); err == nil {
		t.Error("expected error for interval 0")
	}
	if _, err := NewSpecProbe("x", "bss:interval=0,L=1,eps=1"); err == nil {
		t.Error("expected error for bad BSS config")
	}
	if _, err := NewSpecProbe("x", "no-such-sampler"); err == nil {
		t.Error("expected error for unregistered technique")
	}
	if _, err := NewSamplerProbe("x", nil); err == nil {
		t.Error("expected error for nil engine")
	}
	if _, err := NewThresholdAlarmProbe("x", 0, 5, 1); err == nil {
		t.Error("expected error for interval 0")
	}
	if _, err := NewThresholdAlarmProbe("x", 5, 0, 1); err == nil {
		t.Error("expected error for window 0")
	}
}

func TestProbeDefaultNameComesFromEngine(t *testing.T) {
	p := specProbe(t, "", "stratified:interval=5,seed=1")
	if p.Name() != "stratified" {
		t.Errorf("default probe name = %q, want the engine's", p.Name())
	}
}

func TestThresholdAlarmFires(t *testing.T) {
	alarm, err := NewThresholdAlarmProbe("", 1, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Quiet, then a sustained burst.
	vals := []float64{1, 1, 1, 1, 50, 60, 70, 80, 1, 1}
	for i, v := range vals {
		alarm.Offer(Tick{Index: i, Value: v})
	}
	alarms := alarm.Alarms()
	if len(alarms) == 0 {
		t.Fatal("alarm never fired during the burst")
	}
	for _, idx := range alarms {
		if idx < 4 {
			t.Errorf("alarm fired at %d, before the burst", idx)
		}
	}
	r := alarm.Report()
	if r.Kept != len(vals) {
		t.Errorf("kept %d, want %d", r.Kept, len(vals))
	}
}

// fgnTrace is a deterministic fractional-Gaussian-noise series: the
// self-similar workload of the paper's Section II, shifted to a positive
// mean so BSS thresholds behave.
func fgnTrace(t *testing.T, n int) []float64 {
	t.Helper()
	gen, err := lrd.NewFGN(0.8, n, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	return gen.Generate(dist.NewRand(515))
}

// TestProbesMatchBatchOnFGN is the pipeline half of the refactor's
// invariant: for every technique, a probe fed through the concurrent
// monitor reports exactly the estimate the batch adapter computes from
// the same fGn trace and the same spec.
func TestProbesMatchBatchOnFGN(t *testing.T) {
	f := fgnTrace(t, 1<<13)
	specs := []string{
		"systematic:interval=16,offset=3",
		"stratified:interval=16,seed=21",
		"simple:rate=0.05,seed=22",
		"bernoulli:rate=0.05,seed=23",
		"bss:interval=16,L=4,eps=1.1",
	}
	probes := make([]Probe, len(specs))
	for i, spec := range specs {
		probes[i] = specProbe(t, spec, spec) // spec doubles as the unique name
	}
	mon, err := NewMonitor(probes...)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Tick, 256)
	go func() {
		for i, v := range f {
			ch <- Tick{Index: i, Value: v}
		}
		close(ch)
	}()
	reports, err := mon.Run(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		eng, err := sampling.New(sampling.MustParse(spec))
		if err != nil {
			t.Fatal(err)
		}
		batch, err := eng.Sample(f)
		if err != nil {
			t.Fatal(err)
		}
		r := reports[i]
		if r.Err != nil {
			t.Fatalf("%s: %v", spec, r.Err)
		}
		if !r.Finished {
			t.Errorf("%s: final report not marked finished", spec)
		}
		if r.Seen != len(f) {
			t.Errorf("%s: saw %d ticks, want %d", spec, r.Seen, len(f))
		}
		if r.Kept != len(batch) {
			t.Errorf("%s: probe kept %d, batch kept %d", spec, r.Kept, len(batch))
		}
		_, qualified := sampling.CountKinds(batch)
		if r.Qualified != qualified {
			t.Errorf("%s: probe qualified %d, batch %d", spec, r.Qualified, qualified)
		}
		if math.Abs(r.Mean-sampling.MeanOf(batch)) > 1e-9 {
			t.Errorf("%s: probe mean %g vs batch %g", spec, r.Mean, sampling.MeanOf(batch))
		}
	}
}

// TestBinTicksLeadingGap covers the leading-gap case: when the first
// packet lands in bin > 0, every earlier bin must still be emitted as a
// zero-rate tick with consecutive indices from 0.
func TestBinTicksLeadingGap(t *testing.T) {
	pkts := []traffic.Packet{
		{Time: 0.35, Size: 100}, // first packet in bin 3 at granularity 0.1
		{Time: 0.47, Size: 200},
	}
	ch := make(chan Tick, 16)
	var got []Tick
	done := make(chan struct{})
	go func() {
		defer close(done)
		for tk := range ch {
			got = append(got, tk)
		}
	}()
	n, err := BinTicks(context.Background(), pkts, 0.1, ch)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || len(got) != 5 {
		t.Fatalf("emitted %d ticks (received %d), want 5 (bins 0..4)", n, len(got))
	}
	for i, tk := range got {
		if tk.Index != i {
			t.Errorf("tick %d has index %d, want consecutive from 0", i, tk.Index)
		}
	}
	for i := 0; i < 3; i++ {
		if got[i].Value != 0 {
			t.Errorf("leading-gap bin %d has rate %g, want 0", i, got[i].Value)
		}
	}
	if math.Abs(got[3].Value-100/0.1) > 1e-9 || math.Abs(got[4].Value-200/0.1) > 1e-9 {
		t.Errorf("packet bins = %g, %g; want 1000, 2000", got[3].Value, got[4].Value)
	}
}

// TestReportDoesNotFinalize is the redesign's core behavioral change: a
// mid-stream Report observes without ending the engine, so an offline
// technique (simple random) can keep deferring its draw.
func TestReportDoesNotFinalize(t *testing.T) {
	p := specProbe(t, "", "simple:n=10,seed=3")
	for i := 0; i < 100; i++ {
		p.Offer(Tick{Index: i, Value: float64(i)})
	}
	mid := p.Report()
	if mid.Finished {
		t.Fatal("mid-stream Report finalized the engine")
	}
	if mid.Kept != 0 {
		t.Errorf("simple random kept %d mid-stream, want 0 (draw deferred to Finish)", mid.Kept)
	}
	if mid.Seen != 100 {
		t.Errorf("mid-stream report saw %d, want 100", mid.Seen)
	}
	// The stream continues after the observation...
	for i := 100; i < 200; i++ {
		p.Offer(Tick{Index: i, Value: float64(i)})
	}
	p.Finish()
	final := p.Report()
	if !final.Finished || final.Kept != 10 || final.Seen != 200 {
		t.Errorf("final report %+v, want finished with 10 kept of 200 seen", final)
	}
	// ...and Finish is idempotent.
	p.Finish()
	if again := p.Report(); again.Kept != final.Kept || again.Seen != final.Seen {
		t.Errorf("report changed across repeated Finish: %+v vs %+v", again, final)
	}
}

// TestSnapshotWhileMonitorRuns observes a probe concurrently with the
// monitor's fan-out (run under -race) and checks snapshots stay
// monotonically consistent mid-stream.
func TestSnapshotWhileMonitorRuns(t *testing.T) {
	f := fgnTrace(t, 1<<13)
	probe := specProbe(t, "", "bss:interval=16,L=4,eps=1.1")
	mon, err := NewMonitor(probe)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Tick, 64)
	go func() {
		for i, v := range f {
			ch <- Tick{Index: i, Value: v}
		}
		close(ch)
	}()
	watched := make(chan struct{})
	go func() {
		defer close(watched)
		var prev ProbeReport
		for i := 0; i < 1000; i++ {
			s := probe.Snapshot()
			if s.Seen < prev.Seen || s.Kept < prev.Kept {
				t.Errorf("snapshot went backwards: %+v after %+v", s, prev)
				return
			}
			prev = s
		}
	}()
	reports, err := mon.Run(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	<-watched
	if reports[0].Seen != len(f) {
		t.Errorf("final report saw %d, want %d", reports[0].Seen, len(f))
	}
}
