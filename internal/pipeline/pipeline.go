// Package pipeline wires the substrates into a router-style monitoring
// system: a packet source feeds a binner that emits the rate process
// f(t) tick by tick, and a set of streaming sampling probes consume the
// ticks concurrently. It demonstrates how the paper's samplers deploy in
// an online measurement pipeline with bounded memory, explicit
// backpressure (blocking channels) and context-based shutdown.
//
// The package holds no per-technique sampling code: every probe wraps a
// live engine from the public sampling package, built from a spec string
// like "bss:rate=1e-3,L=10,eps=1.0" (see SamplerProbe and NewSpecProbe).
//
// Probes are live monitors, not batch runs: Snapshot returns the running
// estimate at any moment, from any goroutine, without finalizing the
// engine. Finish (called by Monitor.Run when the tick stream ends)
// flushes end-of-stream samples; Report never finalizes anything.
package pipeline

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/traffic"
	"repro/sampling"
)

// Tick is one bin of the rate process.
type Tick struct {
	Index int
	Value float64 // rate in bytes/second over the bin
}

// Probe consumes ticks and accumulates an estimate. Offer and Finish
// must be driven from a single goroutine (the one the pipeline assigns);
// Snapshot and Report are safe to call concurrently from any goroutine.
type Probe interface {
	// Name identifies the probe in reports.
	Name() string
	// Offer presents one tick.
	Offer(t Tick)
	// Snapshot returns the probe's running estimate without finalizing
	// anything — callable mid-stream, concurrently with Offer.
	Snapshot() ProbeReport
	// Finish declares the end of the tick stream, flushing samples only
	// decidable then (e.g. a simple-random draw). Idempotent.
	Finish()
	// Report returns the probe's current estimate summary. Unlike the
	// pre-v1 API it never finalizes the engine: before Finish it equals
	// Snapshot, after Finish it is the final report.
	Report() ProbeReport
}

// ProbeReport summarizes what a probe has measured so far.
type ProbeReport struct {
	Name      string
	Kept      int     // samples retained
	Seen      int     // ticks observed
	Mean      float64 // estimated mean of f(t) (0 when nothing kept)
	CILow     float64 // 95% confidence interval for Mean (NaN below 2 samples)
	CIHigh    float64
	Qualified int   // BSS qualified samples (0 for classic probes)
	Finished  bool  // the probe's engine has been finalized
	Err       error // deferred engine error (e.g. simple random over a too-short stream)
}

// BinTicks converts a time-sorted packet stream into ticks of the given
// granularity, sending them to out until the packets are exhausted or ctx
// is cancelled. It closes out when done and returns the number of ticks
// emitted. Bins before the first packet (and any interior gaps) are
// emitted as zero-rate ticks, so downstream indices always start at 0
// and advance by one.
func BinTicks(ctx context.Context, pkts []traffic.Packet, granularity float64, out chan<- Tick) (int, error) {
	defer close(out)
	if granularity <= 0 {
		return 0, fmt.Errorf("pipeline: granularity %g must be positive", granularity)
	}
	if len(pkts) == 0 {
		return 0, fmt.Errorf("pipeline: empty packet stream")
	}
	emitted := 0
	var acc float64
	cur := 0
	flush := func(binIdx int) error {
		select {
		case out <- Tick{Index: binIdx, Value: acc / granularity}:
			emitted++
			acc = 0
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for _, p := range pkts {
		bin := int(p.Time / granularity)
		for cur < bin {
			if err := flush(cur); err != nil {
				return emitted, err
			}
			cur++
		}
		acc += float64(p.Size)
	}
	if err := flush(cur); err != nil {
		return emitted, err
	}
	return emitted, nil
}

// Monitor fans one tick stream out to every probe and waits for
// completion. Each probe runs on its own goroutine with a private buffered
// feed; Monitor returns when the input channel closes or ctx is cancelled.
type Monitor struct {
	probes []Probe
}

// NewMonitor validates and assembles a monitor over the given probes.
func NewMonitor(probes ...Probe) (*Monitor, error) {
	if len(probes) == 0 {
		return nil, fmt.Errorf("pipeline: monitor needs at least one probe")
	}
	seen := make(map[string]bool, len(probes))
	for _, p := range probes {
		if p == nil {
			return nil, fmt.Errorf("pipeline: nil probe")
		}
		if seen[p.Name()] {
			return nil, fmt.Errorf("pipeline: duplicate probe name %q", p.Name())
		}
		seen[p.Name()] = true
	}
	return &Monitor{probes: probes}, nil
}

// Probes returns the monitored probes in report order, for live
// observation (Snapshot) while Run is in flight.
func (m *Monitor) Probes() []Probe {
	out := make([]Probe, len(m.probes))
	copy(out, m.probes)
	return out
}

// Run consumes ticks from in until it closes (or ctx cancels), feeding
// every probe, then finalizes each probe and returns the final reports
// in probe order.
func (m *Monitor) Run(ctx context.Context, in <-chan Tick) ([]ProbeReport, error) {
	feeds := make([]chan Tick, len(m.probes))
	var wg sync.WaitGroup
	for i, p := range m.probes {
		feeds[i] = make(chan Tick, 256)
		wg.Add(1)
		go func(p Probe, feed <-chan Tick) {
			defer wg.Done()
			for t := range feed {
				p.Offer(t)
			}
			p.Finish()
		}(p, feeds[i])
	}
	var runErr error
fanout:
	for {
		select {
		case t, ok := <-in:
			if !ok {
				break fanout
			}
			for _, feed := range feeds {
				select {
				case feed <- t:
				case <-ctx.Done():
					runErr = ctx.Err()
					break fanout
				}
			}
		case <-ctx.Done():
			runErr = ctx.Err()
			break fanout
		}
	}
	for _, feed := range feeds {
		close(feed)
	}
	wg.Wait()
	reports := make([]ProbeReport, len(m.probes))
	for i, p := range m.probes {
		reports[i] = p.Report()
	}
	return reports, runErr
}

// SamplerProbe adapts a live sampling.Engine into a pipeline probe. It is
// the only sampling probe in the package: which technique runs is decided
// by the engine (or spec) it wraps, not by probe code.
type SamplerProbe struct {
	name string
	eng  *sampling.Engine
}

// NewSamplerProbe wraps an already-built engine.
func NewSamplerProbe(name string, eng *sampling.Engine) (*SamplerProbe, error) {
	if eng == nil {
		return nil, fmt.Errorf("pipeline: nil sampling engine")
	}
	if name == "" {
		name = eng.Technique()
	}
	return &SamplerProbe{name: name, eng: eng}, nil
}

// NewSpecProbe builds the probe's engine from a sampler spec string such
// as "systematic:interval=10" or "bss:rate=1e-3,L=10", optionally
// configured with engine options (sampling.WithSeed, WithBudget, ...).
//
// One caveat for long-running monitors: simple random sampling is
// inherently offline, so a "simple"/"simple-random" engine buffers every
// tick until Finish — O(stream) memory, unlike the O(1) techniques.
func NewSpecProbe(name, spec string, opts ...sampling.Option) (*SamplerProbe, error) {
	parsed, err := sampling.Parse(spec)
	if err != nil {
		return nil, fmt.Errorf("pipeline: building probe from spec %q: %w", spec, err)
	}
	eng, err := sampling.New(parsed, opts...)
	if err != nil {
		return nil, fmt.Errorf("pipeline: building probe from spec %q: %w", spec, err)
	}
	return NewSamplerProbe(name, eng)
}

// Name implements Probe.
func (p *SamplerProbe) Name() string { return p.name }

// Engine exposes the probe's live engine for direct observation.
func (p *SamplerProbe) Engine() *sampling.Engine { return p.eng }

// Offer implements Probe. Tick values are offered in arrival order; the
// engine assigns consecutive indices, matching BinTicks' gap-free bins.
func (p *SamplerProbe) Offer(t Tick) { p.eng.Offer(t.Value) }

// Snapshot implements Probe.
func (p *SamplerProbe) Snapshot() ProbeReport {
	return reportFrom(p.name, p.eng.Snapshot())
}

// Finish implements Probe.
func (p *SamplerProbe) Finish() { p.eng.Finish() }

// Report implements Probe. It never finalizes the engine — Monitor.Run
// (or an explicit Finish) does that when the stream ends — so calling it
// mid-stream is a harmless observation.
func (p *SamplerProbe) Report() ProbeReport { return p.Snapshot() }

// reportFrom converts an engine summary into a probe report, preserving
// the report convention that Mean is 0 (not NaN) when nothing was kept.
func reportFrom(name string, s sampling.Summary) ProbeReport {
	r := ProbeReport{
		Name:      name,
		Kept:      s.Kept,
		Seen:      s.Seen,
		CILow:     s.CILow,
		CIHigh:    s.CIHigh,
		Qualified: s.Qualified,
		Finished:  s.Finished,
		Err:       s.Err,
	}
	if s.Kept > 0 {
		r.Mean = s.Mean
	}
	return r
}

// ThresholdAlarmProbe raises a flag when the running short-window mean
// exceeds level — the hot-spot / DoS detection use case the paper's
// introduction motivates. Tick selection is delegated to a systematic
// sampling engine so the alarm's cost stays bounded.
type ThresholdAlarmProbe struct {
	name string
	eng  *sampling.Engine

	mu     sync.Mutex
	level  float64
	window []float64
	alarms []int // tick indices where the alarm fired
}

// NewThresholdAlarmProbe builds an alarm probe sampling every interval
// ticks with a rolling window of the given size.
func NewThresholdAlarmProbe(name string, interval, window int, level float64) (*ThresholdAlarmProbe, error) {
	if interval < 1 || window < 1 {
		return nil, fmt.Errorf("pipeline: alarm probe needs interval >= 1 and window >= 1 (got %d, %d)", interval, window)
	}
	eng, err := sampling.New(sampling.Spec{
		Technique: "systematic",
		Params:    map[string]string{"interval": strconv.Itoa(interval)},
	})
	if err != nil {
		return nil, fmt.Errorf("pipeline: alarm probe selector: %w", err)
	}
	if name == "" {
		name = "alarm"
	}
	return &ThresholdAlarmProbe{name: name, eng: eng, level: level, window: make([]float64, 0, window)}, nil
}

// Name implements Probe.
func (p *ThresholdAlarmProbe) Name() string { return p.name }

// Offer implements Probe.
func (p *ThresholdAlarmProbe) Offer(t Tick) {
	smp, ok := p.eng.Offer(t.Value)
	if !ok {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.window) == cap(p.window) {
		copy(p.window, p.window[1:])
		p.window = p.window[:len(p.window)-1]
	}
	p.window = append(p.window, smp.Value)
	if len(p.window) == cap(p.window) {
		var s float64
		for _, v := range p.window {
			s += v
		}
		if s/float64(len(p.window)) > p.level {
			p.alarms = append(p.alarms, t.Index)
		}
	}
}

// Alarms returns the tick indices at which the rolling mean exceeded the
// level. Safe to call while ticks flow.
func (p *ThresholdAlarmProbe) Alarms() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.alarms))
	copy(out, p.alarms)
	return out
}

// Snapshot implements Probe.
func (p *ThresholdAlarmProbe) Snapshot() ProbeReport {
	return reportFrom(p.name, p.eng.Snapshot())
}

// Finish implements Probe.
func (p *ThresholdAlarmProbe) Finish() { p.eng.Finish() }

// Report implements Probe; like Snapshot it never finalizes the selector.
func (p *ThresholdAlarmProbe) Report() ProbeReport { return p.Snapshot() }

// Interface compliance checks.
var (
	_ Probe = (*SamplerProbe)(nil)
	_ Probe = (*ThresholdAlarmProbe)(nil)
)
