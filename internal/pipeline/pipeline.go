// Package pipeline wires the substrates into a router-style monitoring
// system: a packet source feeds a binner that emits the rate process
// f(t) tick by tick, and a set of streaming sampling probes consume the
// ticks concurrently. It demonstrates how the paper's samplers deploy in
// an online measurement pipeline with bounded memory, explicit
// backpressure (blocking channels) and context-based shutdown.
//
// The package holds no per-technique sampling code: every probe wraps a
// core.StreamSampler, built directly or from a registry spec string like
// "bss:rate=1e-3,L=10,eps=1.0" (see SamplerProbe and NewSpecProbe).
package pipeline

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/traffic"
)

// Tick is one bin of the rate process.
type Tick struct {
	Index int
	Value float64 // rate in bytes/second over the bin
}

// Probe consumes ticks and accumulates an estimate. Implementations must
// be safe for use from the single goroutine the pipeline assigns them.
type Probe interface {
	// Name identifies the probe in reports.
	Name() string
	// Offer presents one tick.
	Offer(t Tick)
	// Report returns the probe's current estimate summary.
	Report() ProbeReport
}

// ProbeReport summarizes what a probe has measured.
type ProbeReport struct {
	Name      string
	Kept      int     // samples retained
	Seen      int     // ticks observed
	Mean      float64 // estimated mean of f(t)
	Qualified int     // BSS qualified samples (0 for classic probes)
	Err       error   // deferred engine error (e.g. simple random over a too-short stream)
}

// BinTicks converts a time-sorted packet stream into ticks of the given
// granularity, sending them to out until the packets are exhausted or ctx
// is cancelled. It closes out when done and returns the number of ticks
// emitted.
func BinTicks(ctx context.Context, pkts []traffic.Packet, granularity float64, out chan<- Tick) (int, error) {
	defer close(out)
	if granularity <= 0 {
		return 0, fmt.Errorf("pipeline: granularity %g must be positive", granularity)
	}
	if len(pkts) == 0 {
		return 0, fmt.Errorf("pipeline: empty packet stream")
	}
	emitted := 0
	idx := 0
	var acc float64
	cur := 0
	flush := func(binIdx int) error {
		select {
		case out <- Tick{Index: binIdx, Value: acc / granularity}:
			emitted++
			acc = 0
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for _, p := range pkts {
		bin := int(p.Time / granularity)
		for cur < bin {
			if err := flush(cur); err != nil {
				return emitted, err
			}
			cur++
		}
		acc += float64(p.Size)
		idx++
	}
	if err := flush(cur); err != nil {
		return emitted, err
	}
	return emitted, nil
}

// Monitor fans one tick stream out to every probe and waits for
// completion. Each probe runs on its own goroutine with a private buffered
// feed; Monitor returns when the input channel closes or ctx is cancelled.
type Monitor struct {
	probes []Probe
}

// NewMonitor validates and assembles a monitor over the given probes.
func NewMonitor(probes ...Probe) (*Monitor, error) {
	if len(probes) == 0 {
		return nil, fmt.Errorf("pipeline: monitor needs at least one probe")
	}
	seen := make(map[string]bool, len(probes))
	for _, p := range probes {
		if p == nil {
			return nil, fmt.Errorf("pipeline: nil probe")
		}
		if seen[p.Name()] {
			return nil, fmt.Errorf("pipeline: duplicate probe name %q", p.Name())
		}
		seen[p.Name()] = true
	}
	return &Monitor{probes: probes}, nil
}

// Run consumes ticks from in until it closes (or ctx cancels), feeding
// every probe, and returns the final reports in probe order.
func (m *Monitor) Run(ctx context.Context, in <-chan Tick) ([]ProbeReport, error) {
	feeds := make([]chan Tick, len(m.probes))
	var wg sync.WaitGroup
	for i, p := range m.probes {
		feeds[i] = make(chan Tick, 256)
		wg.Add(1)
		go func(p Probe, feed <-chan Tick) {
			defer wg.Done()
			for t := range feed {
				p.Offer(t)
			}
		}(p, feeds[i])
	}
	var runErr error
fanout:
	for {
		select {
		case t, ok := <-in:
			if !ok {
				break fanout
			}
			for _, feed := range feeds {
				select {
				case feed <- t:
				case <-ctx.Done():
					runErr = ctx.Err()
					break fanout
				}
			}
		case <-ctx.Done():
			runErr = ctx.Err()
			break fanout
		}
	}
	for _, feed := range feeds {
		close(feed)
	}
	wg.Wait()
	reports := make([]ProbeReport, len(m.probes))
	for i, p := range m.probes {
		reports[i] = p.Report()
	}
	return reports, runErr
}

// SamplerProbe adapts any core.StreamSampler into a pipeline probe,
// tracking the kept/qualified counts and running mean the reports need.
// It is the only sampling probe in the package: which technique runs is
// decided by the engine (or spec) it wraps, not by probe code.
type SamplerProbe struct {
	name      string
	eng       core.StreamSampler
	seen      int
	kept      int
	qualified int
	sum       float64
	finished  bool
	finishErr error
}

// NewSamplerProbe wraps an already-built streaming engine.
func NewSamplerProbe(name string, eng core.StreamSampler) (*SamplerProbe, error) {
	if eng == nil {
		return nil, fmt.Errorf("pipeline: nil sampling engine")
	}
	if name == "" {
		name = eng.Name()
	}
	return &SamplerProbe{name: name, eng: eng}, nil
}

// NewSpecProbe builds the probe's engine from a sampler registry spec
// string such as "systematic:interval=10" or "bss:rate=1e-3,L=10".
//
// One caveat for long-running monitors: simple random sampling is
// inherently offline, so a "simple"/"simple-random" engine buffers every
// tick until Report — O(stream) memory, unlike the O(1) techniques.
func NewSpecProbe(name, spec string) (*SamplerProbe, error) {
	eng, err := core.LookupStream(spec)
	if err != nil {
		return nil, fmt.Errorf("pipeline: building probe from spec %q: %w", spec, err)
	}
	return NewSamplerProbe(name, eng)
}

// Name implements Probe.
func (p *SamplerProbe) Name() string { return p.name }

// Offer implements Probe.
func (p *SamplerProbe) Offer(t Tick) {
	p.seen++
	if smp, ok := p.eng.Offer(t.Index, t.Value); ok {
		p.record(smp)
	}
}

func (p *SamplerProbe) record(s core.Sample) {
	p.kept++
	p.sum += s.Value
	if s.Qualified {
		p.qualified++
	}
}

// Report implements Probe. The first call finalizes the engine, flushing
// samples only decidable at end of stream (e.g. a simple-random draw).
func (p *SamplerProbe) Report() ProbeReport {
	if !p.finished {
		p.finished = true
		tail, err := p.eng.Finish()
		p.finishErr = err
		for _, s := range tail {
			p.record(s)
		}
	}
	r := ProbeReport{Name: p.name, Kept: p.kept, Seen: p.seen, Qualified: p.qualified, Err: p.finishErr}
	if p.kept > 0 {
		r.Mean = p.sum / float64(p.kept)
	}
	return r
}

// ThresholdAlarmProbe raises a flag when the running short-window mean
// exceeds level — the hot-spot / DoS detection use case the paper's
// introduction motivates. Tick selection is delegated to a systematic
// StreamSampler so the alarm's cost stays bounded.
type ThresholdAlarmProbe struct {
	name     string
	selector core.StreamSampler
	level    float64
	window   []float64
	seen     int
	alarms   []int // tick indices where the alarm fired
	sum      float64
	kept     int
}

// NewThresholdAlarmProbe builds an alarm probe sampling every interval
// ticks with a rolling window of the given size.
func NewThresholdAlarmProbe(name string, interval, window int, level float64) (*ThresholdAlarmProbe, error) {
	if interval < 1 || window < 1 {
		return nil, fmt.Errorf("pipeline: alarm probe needs interval >= 1 and window >= 1 (got %d, %d)", interval, window)
	}
	selector, err := (core.Systematic{Interval: interval}).Stream()
	if err != nil {
		return nil, fmt.Errorf("pipeline: alarm probe selector: %w", err)
	}
	if name == "" {
		name = "alarm"
	}
	return &ThresholdAlarmProbe{name: name, selector: selector, level: level, window: make([]float64, 0, window)}, nil
}

// Name implements Probe.
func (p *ThresholdAlarmProbe) Name() string { return p.name }

// Offer implements Probe.
func (p *ThresholdAlarmProbe) Offer(t Tick) {
	p.seen++
	smp, ok := p.selector.Offer(t.Index, t.Value)
	if !ok {
		return
	}
	p.kept++
	p.sum += smp.Value
	if len(p.window) == cap(p.window) {
		copy(p.window, p.window[1:])
		p.window = p.window[:len(p.window)-1]
	}
	p.window = append(p.window, smp.Value)
	if len(p.window) == cap(p.window) {
		var s float64
		for _, v := range p.window {
			s += v
		}
		if s/float64(len(p.window)) > p.level {
			p.alarms = append(p.alarms, t.Index)
		}
	}
}

// Alarms returns the tick indices at which the rolling mean exceeded the
// level.
func (p *ThresholdAlarmProbe) Alarms() []int {
	out := make([]int, len(p.alarms))
	copy(out, p.alarms)
	return out
}

// Report implements Probe.
func (p *ThresholdAlarmProbe) Report() ProbeReport {
	r := ProbeReport{Name: p.name, Kept: p.kept, Seen: p.seen}
	if p.kept > 0 {
		r.Mean = p.sum / float64(p.kept)
	}
	return r
}

// Interface compliance checks.
var (
	_ Probe = (*SamplerProbe)(nil)
	_ Probe = (*ThresholdAlarmProbe)(nil)
)
