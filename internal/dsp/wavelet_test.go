package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWaveletFilterProperties(t *testing.T) {
	// Orthonormal wavelet filters satisfy sum(h) = sqrt(2), sum(g) = 0 and
	// sum(h^2) = 1.
	for _, w := range []Wavelet{Haar(), Daubechies4(), Daubechies6(), Daubechies8()} {
		var sumH, sumG, sumH2 float64
		for i := range w.h {
			sumH += w.h[i]
			sumG += w.g[i]
			sumH2 += w.h[i] * w.h[i]
		}
		if math.Abs(sumH-math.Sqrt2) > 1e-10 {
			t.Errorf("%s: sum(h) = %g, want sqrt(2)", w.Name(), sumH)
		}
		if math.Abs(sumG) > 1e-10 {
			t.Errorf("%s: sum(g) = %g, want 0", w.Name(), sumG)
		}
		if math.Abs(sumH2-1) > 1e-10 {
			t.Errorf("%s: sum(h^2) = %g, want 1", w.Name(), sumH2)
		}
	}
}

func TestWaveletVanishingMoments(t *testing.T) {
	cases := []struct {
		w    Wavelet
		want int
	}{
		{Haar(), 1}, {Daubechies4(), 2}, {Daubechies6(), 3}, {Daubechies8(), 4},
	}
	for _, c := range cases {
		if got := c.w.VanishingMoments(); got != c.want {
			t.Errorf("%s: vanishing moments = %d, want %d", c.w.Name(), got, c.want)
		}
	}
}

func TestWaveletPerfectReconstruction(t *testing.T) {
	rng := newRand(20)
	for _, w := range []Wavelet{Haar(), Daubechies4(), Daubechies6(), Daubechies8()} {
		x := make([]float64, 256)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		dec, err := w.Decompose(x, 0)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		rec, err := w.Reconstruct(dec)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if len(rec) != len(x) {
			t.Fatalf("%s: reconstruction length %d, want %d", w.Name(), len(rec), len(x))
		}
		if d := maxAbsDiffF(rec, x); d > 1e-9 {
			t.Errorf("%s: perfect reconstruction violated, max diff %g", w.Name(), d)
		}
	}
}

func TestWaveletEnergyConservation(t *testing.T) {
	// Orthonormality: total energy of coefficients equals energy of input.
	prop := func(seed uint64) bool {
		rng := newRand(seed)
		x := make([]float64, 128)
		var ex float64
		for i := range x {
			x[i] = rng.NormFloat64()
			ex += x[i] * x[i]
		}
		dec, err := Daubechies4().Decompose(x, 0)
		if err != nil {
			return false
		}
		var ec float64
		for _, d := range dec.Details {
			for _, v := range d {
				ec += v * v
			}
		}
		for _, v := range dec.Approx {
			ec += v * v
		}
		return math.Abs(ex-ec) < 1e-8*(1+ex)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWaveletHaarKnown(t *testing.T) {
	// One Haar level of [1,1,2,2]: approx = [sqrt(2), 2*sqrt(2)], details = 0.
	dec, err := Haar().Decompose([]float64{1, 1, 2, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Details) != 1 {
		t.Fatalf("levels = %d, want 1", len(dec.Details))
	}
	wantA := []float64{math.Sqrt2, 2 * math.Sqrt2}
	if maxAbsDiffF(dec.Approx, wantA) > 1e-12 {
		t.Errorf("approx = %v, want %v", dec.Approx, wantA)
	}
	if maxAbsDiffF(dec.Details[0], []float64{0, 0}) > 1e-12 {
		t.Errorf("details = %v, want zeros", dec.Details[0])
	}
}

func TestWaveletDecomposeDepth(t *testing.T) {
	x := make([]float64, 1024)
	for i := range x {
		x[i] = float64(i % 7)
	}
	dec, err := Haar().Decompose(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 1024 = 2^10; Haar halves until below 2*len(h) = 4.
	if len(dec.Details) < 8 {
		t.Errorf("depth = %d, want >= 8", len(dec.Details))
	}
	for j := 1; j < len(dec.Details); j++ {
		if len(dec.Details[j]) != len(dec.Details[j-1])/2 {
			t.Errorf("octave %d has %d coefficients, want %d", j, len(dec.Details[j]), len(dec.Details[j-1])/2)
		}
	}
}

func TestWaveletDecomposeErrors(t *testing.T) {
	if _, err := Daubechies8().Decompose([]float64{1, 2, 3}, 0); err == nil {
		t.Error("expected error for too-short series")
	}
	if _, err := Haar().Reconstruct(Decomposition{}); err == nil {
		t.Error("expected error reconstructing empty decomposition")
	}
}

func TestOctaveEnergies(t *testing.T) {
	dec, err := Haar().Decompose([]float64{1, -1, 1, -1, 1, -1, 1, -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	mu, counts := dec.OctaveEnergies()
	if len(mu) != len(dec.Details) || len(counts) != len(dec.Details) {
		t.Fatalf("lengths mismatch: %d energies, %d counts, %d octaves", len(mu), len(counts), len(dec.Details))
	}
	// All energy of the alternating signal sits in the first octave.
	if mu[0] < 1.9 {
		t.Errorf("first octave energy = %g, want ~2", mu[0])
	}
	for j := 1; j < len(mu); j++ {
		if mu[j] > 1e-12 {
			t.Errorf("octave %d energy = %g, want 0", j+1, mu[j])
		}
	}
}

func BenchmarkWaveletDecompose64k(b *testing.B) {
	rng := newRand(7)
	x := make([]float64, 1<<16)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	w := Daubechies4()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Decompose(x, 0); err != nil {
			b.Fatal(err)
		}
	}
}
