package dsp

import (
	"fmt"
	"math"
)

// Wavelet is an orthonormal wavelet defined by its scaling (low-pass)
// filter h; the detail (high-pass) filter g is derived by the quadrature
// mirror relation g[n] = (-1)^n h[L-1-n].
type Wavelet struct {
	name string
	h    []float64 // scaling filter, sum = sqrt(2)
	g    []float64 // wavelet filter
}

// Name returns the conventional name of the wavelet family member.
func (w Wavelet) Name() string { return w.name }

// VanishingMoments returns the number of vanishing moments (filter length/2
// for the Daubechies family; 1 for Haar).
func (w Wavelet) VanishingMoments() int { return len(w.h) / 2 }

func newWavelet(name string, h []float64) Wavelet {
	l := len(h)
	g := make([]float64, l)
	for n := 0; n < l; n++ {
		g[n] = h[l-1-n]
		if n%2 == 1 {
			g[n] = -g[n]
		}
	}
	return Wavelet{name: name, h: h, g: g}
}

// Haar returns the Haar wavelet (Daubechies-1).
func Haar() Wavelet {
	s := 1 / math.Sqrt2
	return newWavelet("haar", []float64{s, s})
}

// Daubechies4 returns the Daubechies wavelet with 2 vanishing moments
// (4-tap filter, often written db2 or D4).
func Daubechies4() Wavelet {
	return newWavelet("db4", []float64{
		0.48296291314469025,
		0.83651630373746899,
		0.22414386804185735,
		-0.12940952255092145,
	})
}

// Daubechies6 returns the Daubechies wavelet with 3 vanishing moments
// (6-tap filter, db3/D6).
func Daubechies6() Wavelet {
	return newWavelet("db6", []float64{
		0.33267055295095688,
		0.80689150931333875,
		0.45987750211933132,
		-0.13501102001039084,
		-0.08544127388224149,
		0.03522629188210562,
	})
}

// Daubechies8 returns the Daubechies wavelet with 4 vanishing moments
// (8-tap filter, db4/D8).
func Daubechies8() Wavelet {
	return newWavelet("db8", []float64{
		0.23037781330885523,
		0.71484657055254153,
		0.63088076792959036,
		-0.02798376941698385,
		-0.18703481171888114,
		0.03084138183598697,
		0.03288301166698295,
		-0.01059740178499728,
	})
}

// Decomposition holds a multiresolution pyramid: Details[j] are the wavelet
// coefficients at octave j+1 (scale 2^(j+1)), and Approx is the remaining
// coarse approximation.
type Decomposition struct {
	Wavelet Wavelet
	Details [][]float64
	Approx  []float64
}

// Decompose runs the pyramid (Mallat) algorithm with periodic boundary
// handling for up to maxLevels octaves, stopping early when the
// approximation becomes shorter than the filter. maxLevels <= 0 means "as
// deep as possible".
func (w Wavelet) Decompose(x []float64, maxLevels int) (Decomposition, error) {
	if len(x) < 2*len(w.h) {
		return Decomposition{}, fmt.Errorf("dsp: series of length %d too short for %s decomposition", len(x), w.name)
	}
	if maxLevels <= 0 {
		maxLevels = 64
	}
	approx := make([]float64, len(x))
	copy(approx, x)
	dec := Decomposition{Wavelet: w}
	for level := 0; level < maxLevels; level++ {
		if len(approx) < 2*len(w.h) || len(approx)%2 != 0 {
			break
		}
		nextA, detail := w.analyzeStep(approx)
		dec.Details = append(dec.Details, detail)
		approx = nextA
	}
	dec.Approx = approx
	if len(dec.Details) == 0 {
		return Decomposition{}, fmt.Errorf("dsp: could not compute any wavelet octave for length %d", len(x))
	}
	return dec, nil
}

// analyzeStep performs one level of periodic filtering + downsampling.
func (w Wavelet) analyzeStep(a []float64) (approx, detail []float64) {
	n := len(a)
	half := n / 2
	approx = make([]float64, half)
	detail = make([]float64, half)
	for k := 0; k < half; k++ {
		var sa, sd float64
		base := 2 * k
		for i, hv := range w.h {
			idx := base + i
			if idx >= n {
				idx -= n
			}
			v := a[idx]
			sa += hv * v
			sd += w.g[i] * v
		}
		approx[k] = sa
		detail[k] = sd
	}
	return approx, detail
}

// Reconstruct inverts a Decomposition exactly (up to rounding), verifying
// the transform is orthonormal. It exists chiefly for testing and for
// downstream users who denoise.
func (w Wavelet) Reconstruct(dec Decomposition) ([]float64, error) {
	if len(dec.Details) == 0 {
		return nil, fmt.Errorf("dsp: cannot reconstruct empty decomposition")
	}
	approx := make([]float64, len(dec.Approx))
	copy(approx, dec.Approx)
	for level := len(dec.Details) - 1; level >= 0; level-- {
		detail := dec.Details[level]
		if len(detail) != len(approx) {
			return nil, fmt.Errorf("dsp: decomposition level %d has %d coefficients, expected %d", level, len(detail), len(approx))
		}
		approx = w.synthesizeStep(approx, detail)
	}
	return approx, nil
}

// synthesizeStep is the adjoint of analyzeStep (upsample + filter + sum).
func (w Wavelet) synthesizeStep(approx, detail []float64) []float64 {
	half := len(approx)
	n := 2 * half
	out := make([]float64, n)
	for k := 0; k < half; k++ {
		av, dv := approx[k], detail[k]
		base := 2 * k
		for i := range w.h {
			idx := base + i
			if idx >= n {
				idx -= n
			}
			out[idx] += w.h[i]*av + w.g[i]*dv
		}
	}
	return out
}

// OctaveEnergies returns mu_j = mean of squared detail coefficients per
// octave j (1-based scale 2^j), together with the number of coefficients in
// each octave. These are the inputs of the Abry-Veitch logscale diagram.
func (d Decomposition) OctaveEnergies() (mu []float64, counts []int) {
	mu = make([]float64, len(d.Details))
	counts = make([]int, len(d.Details))
	for j, det := range d.Details {
		var s float64
		for _, v := range det {
			s += v * v
		}
		counts[j] = len(det)
		if len(det) > 0 {
			mu[j] = s / float64(len(det))
		}
	}
	return mu, counts
}
