// Package dsp provides the signal-processing substrate used throughout the
// reproduction: fast Fourier transforms (radix-2 and Bluestein for arbitrary
// lengths), linear convolution, periodograms, and an orthonormal discrete
// wavelet transform. Everything is implemented from scratch on the standard
// library so the repository has no external numeric dependencies.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// FFT returns the discrete Fourier transform of x:
//
//	X[k] = sum_{j=0}^{n-1} x[j] * exp(-2*pi*i*j*k/n)
//
// The input is not modified. Any length is accepted: powers of two use the
// iterative radix-2 algorithm, other lengths fall back to Bluestein's
// chirp-z transform (still O(n log n)).
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT returns the inverse discrete Fourier transform of X, normalized by
// 1/n so that IFFT(FFT(x)) == x up to rounding error.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	return out
}

// FFTReal transforms a real-valued signal, returning the full complex
// spectrum of length len(x).
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	fftInPlace(c, false)
	return c
}

// fftInPlace dispatches between the radix-2 and Bluestein implementations
// and applies 1/n scaling for the inverse transform.
func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if IsPow2(n) {
		fftPow2(x, inverse)
	} else {
		bluestein(x, inverse)
	}
	if inverse {
		scale := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= scale
		}
	}
}

// fftPow2 is the iterative radix-2 Cooley-Tukey transform (no scaling).
func fftPow2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution (chirp-z).
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	m := NextPow2(2*n - 1)
	// chirp[k] = exp(sign * i * pi * k^2 / n)
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k may overflow for huge n; reduce mod 2n first (exp is 2n-periodic
		// in k^2/n terms of half-turns).
		kk := (int64(k) * int64(k)) % int64(2*n)
		angle := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = cmplx.Exp(complex(0, angle))
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	fftPow2(a, false)
	fftPow2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftPow2(a, true)
	invM := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * invM * chirp[k]
	}
}

// DFTNaive is the O(n^2) reference transform, retained for tests and for
// documenting the algebraic definition the fast paths must match.
func DFTNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// CheckLengths validates that two series have equal nonzero length; several
// public helpers share this guard.
func CheckLengths(a, b []float64) error {
	if len(a) == 0 || len(b) == 0 {
		return fmt.Errorf("dsp: empty input (len(a)=%d, len(b)=%d)", len(a), len(b))
	}
	if len(a) != len(b) {
		return fmt.Errorf("dsp: length mismatch (%d vs %d)", len(a), len(b))
	}
	return nil
}
