package dsp

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func newRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxAbsDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {17, 32}, {1024, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := NextPow2(c.in); got != c.want {
			t.Errorf("NextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1 << 20} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false, want true", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 12, 1<<20 + 1} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true, want false", n)
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := newRand(1)
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 33, 60, 64, 100, 128} {
		x := randComplex(rng, n)
		fast := FFT(x)
		slow := DFTNaive(x)
		if d := maxAbsDiff(fast, slow); d > 1e-8*float64(n) {
			t.Errorf("n=%d: FFT deviates from naive DFT by %g", n, d)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := newRand(2)
	for _, n := range []int{1, 2, 3, 8, 15, 16, 33, 64, 129, 256, 1000} {
		x := randComplex(rng, n)
		y := IFFT(FFT(x))
		if d := maxAbsDiff(x, y); d > 1e-9*float64(n) {
			t.Errorf("n=%d: IFFT(FFT(x)) deviates by %g", n, d)
		}
	}
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of a constant is an impulse at frequency zero.
	x := []complex128{1, 1, 1, 1}
	got := FFT(x)
	want := []complex128{4, 0, 0, 0}
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Errorf("FFT(const) = %v, want %v", got, want)
	}
	// FFT of an impulse is flat.
	x = []complex128{1, 0, 0, 0}
	got = FFT(x)
	want = []complex128{1, 1, 1, 1}
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Errorf("FFT(delta) = %v, want %v", got, want)
	}
}

func TestFFTParseval(t *testing.T) {
	// Parseval: sum |x|^2 == (1/n) sum |X|^2.
	prop := func(seed uint64, sz uint8) bool {
		n := int(sz%200) + 1
		rng := newRand(seed)
		x := randComplex(rng, n)
		X := FFT(x)
		var ex, eX float64
		for i := range x {
			ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			eX += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		return math.Abs(ex-eX/float64(n)) <= 1e-7*(1+ex)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFFTLinearity(t *testing.T) {
	prop := func(seed uint64, sz uint8) bool {
		n := int(sz%128) + 2
		rng := newRand(seed)
		x := randComplex(rng, n)
		y := randComplex(rng, n)
		alpha := complex(rng.NormFloat64(), rng.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = x[i] + alpha*y[i]
		}
		lhs := FFT(sum)
		fx, fy := FFT(x), FFT(y)
		for i := range lhs {
			if cmplx.Abs(lhs[i]-(fx[i]+alpha*fy[i])) > 1e-7*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	rng := newRand(3)
	x := randComplex(rng, 37)
	orig := make([]complex128, len(x))
	copy(orig, x)
	FFT(x)
	IFFT(x)
	if d := maxAbsDiff(x, orig); d != 0 {
		t.Errorf("FFT/IFFT mutated their input (max diff %g)", d)
	}
}

func TestFFTRealMatchesComplex(t *testing.T) {
	rng := newRand(4)
	x := make([]float64, 96)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	if d := maxAbsDiff(FFTReal(x), FFT(c)); d > 1e-10 {
		t.Errorf("FFTReal deviates from complex FFT by %g", d)
	}
}

func TestCheckLengths(t *testing.T) {
	if err := CheckLengths([]float64{1}, []float64{2}); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	if err := CheckLengths(nil, []float64{1}); err == nil {
		t.Error("expected error for empty first argument")
	}
	if err := CheckLengths([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
}
