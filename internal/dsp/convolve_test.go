package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func maxAbsDiffF(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestConvolveKnown(t *testing.T) {
	got := Convolve([]float64{1, 2, 3}, []float64{0, 1, 0.5})
	want := []float64{0, 1, 2.5, 4, 1.5}
	if len(got) != len(want) || maxAbsDiffF(got, want) > 1e-12 {
		t.Errorf("Convolve = %v, want %v", got, want)
	}
}

func TestConvolveEmpty(t *testing.T) {
	if got := Convolve(nil, []float64{1}); got != nil {
		t.Errorf("Convolve(nil, x) = %v, want nil", got)
	}
	if got := Convolve([]float64{1}, nil); got != nil {
		t.Errorf("Convolve(x, nil) = %v, want nil", got)
	}
}

func TestConvolveFFTMatchesDirect(t *testing.T) {
	rng := newRand(10)
	// Sizes straddling the FFT/direct threshold.
	for _, sz := range [][2]int{{3, 5}, {64, 64}, {100, 200}, {333, 77}} {
		a := make([]float64, sz[0])
		b := make([]float64, sz[1])
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		fast := Convolve(a, b)
		slow := convolveDirect(a, b)
		if d := maxAbsDiffF(fast, slow); d > 1e-8 {
			t.Errorf("sizes %v: FFT convolution deviates from direct by %g", sz, d)
		}
	}
}

func TestConvolveCommutative(t *testing.T) {
	prop := func(seed uint64, la, lb uint8) bool {
		na, nb := int(la%60)+1, int(lb%60)+1
		rng := newRand(seed)
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = rng.Float64()
		}
		for i := range b {
			b[i] = rng.Float64()
		}
		return maxAbsDiffF(Convolve(a, b), Convolve(b, a)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSelfConvolvePowerErrors(t *testing.T) {
	if _, err := SelfConvolvePower(nil, 2); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := SelfConvolvePower([]float64{1}, 0); err == nil {
		t.Error("expected error for k < 1")
	}
	if _, err := SelfConvolvePowerDirect(nil, 2); err == nil {
		t.Error("expected error for empty input (direct)")
	}
	if _, err := SelfConvolvePowerDirect([]float64{1}, 0); err == nil {
		t.Error("expected error for k < 1 (direct)")
	}
}

func TestSelfConvolvePowerIdentity(t *testing.T) {
	p := []float64{0.25, 0.5, 0.25}
	got, err := SelfConvolvePower(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsDiffF(got, p) > 1e-14 {
		t.Errorf("k=1 power = %v, want %v", got, p)
	}
}

func TestSelfConvolvePowerMatchesDirect(t *testing.T) {
	p := []float64{0.1, 0.3, 0.4, 0.2}
	for _, k := range []int{1, 2, 3, 5, 8} {
		fast, err := SelfConvolvePower(p, k)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := SelfConvolvePowerDirect(p, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast) != len(slow) {
			t.Fatalf("k=%d: length %d vs %d", k, len(fast), len(slow))
		}
		if d := maxAbsDiffF(fast, slow); d > 1e-9 {
			t.Errorf("k=%d: FFT power deviates from direct by %g", k, d)
		}
	}
}

func TestSelfConvolvePowerIsPMF(t *testing.T) {
	// Convolving a pmf with itself must stay a pmf: nonnegative, sums to 1,
	// and the mean scales linearly with k.
	prop := func(seed uint64, kk uint8) bool {
		k := int(kk%12) + 1
		rng := newRand(seed)
		p := make([]float64, 8)
		var s float64
		for i := range p {
			p[i] = rng.Float64()
			s += p[i]
		}
		for i := range p {
			p[i] /= s
		}
		q, err := SelfConvolvePower(p, k)
		if err != nil {
			return false
		}
		var qs, meanP, meanQ float64
		for i, v := range q {
			if v < -1e-9 {
				return false
			}
			qs += v
			meanQ += float64(i) * v
		}
		for i, v := range p {
			meanP += float64(i) * v
		}
		return math.Abs(qs-1) < 1e-8 && math.Abs(meanQ-float64(k)*meanP) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPeriodogramSinusoid(t *testing.T) {
	// A pure sinusoid at Fourier frequency k0 concentrates its energy there.
	n := 1024
	k0 := 37
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(k0) * float64(i) / float64(n))
	}
	freqs, power, err := Periodogram(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(freqs) != n/2 || len(power) != n/2 {
		t.Fatalf("periodogram length = %d, want %d", len(power), n/2)
	}
	best := 0
	for i := range power {
		if power[i] > power[best] {
			best = i
		}
	}
	if best != k0-1 {
		t.Errorf("peak at index %d (freq %g), want index %d", best, freqs[best], k0-1)
	}
	var rest float64
	for i, v := range power {
		if i != best {
			rest += v
		}
	}
	if rest > power[best]*1e-6 {
		t.Errorf("energy leakage: off-peak mass %g vs peak %g", rest, power[best])
	}
}

func TestPeriodogramTooShort(t *testing.T) {
	if _, _, err := Periodogram([]float64{1, 2}); err == nil {
		t.Error("expected error for short series")
	}
}

func BenchmarkFFTPow2_4096(b *testing.B) {
	rng := newRand(42)
	x := randComplex(rng, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein_4095(b *testing.B) {
	rng := newRand(42)
	x := randComplex(rng, 4095)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkSelfConvolvePowerFFT(b *testing.B) {
	p := make([]float64, 256)
	for i := range p {
		p[i] = 1.0 / 256
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelfConvolvePower(p, 64); err != nil {
			b.Fatal(err)
		}
	}
}
