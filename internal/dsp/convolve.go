package dsp

import "fmt"

// Convolve returns the full linear convolution of a and b, a sequence of
// length len(a)+len(b)-1. It uses the FFT for large inputs and the direct
// O(n*m) algorithm for small ones, where the direct form is faster.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	if len(a)*len(b) <= 4096 {
		return convolveDirect(a, b)
	}
	n := NextPow2(outLen)
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	fftPow2(fa, false)
	fftPow2(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	fftPow2(fa, true)
	out := make([]float64, outLen)
	inv := 1 / float64(n)
	for i := range out {
		out[i] = real(fa[i]) * inv
	}
	return out
}

func convolveDirect(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// SelfConvolvePower returns the k-fold linear self-convolution of p (that
// is, p * p * ... * p, k times). For a probability mass function p this is
// the distribution of the sum of k i.i.d. variables. The result has length
// k*(len(p)-1)+1. It is computed with a single FFT as IFFT(FFT(p)^k),
// zero-padded so no circular aliasing occurs.
//
// An error is returned for k < 1 or empty p.
func SelfConvolvePower(p []float64, k int) ([]float64, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("dsp: SelfConvolvePower on empty sequence")
	}
	if k < 1 {
		return nil, fmt.Errorf("dsp: SelfConvolvePower power k=%d < 1", k)
	}
	outLen := k*(len(p)-1) + 1
	if k == 1 {
		out := make([]float64, len(p))
		copy(out, p)
		return out, nil
	}
	n := NextPow2(outLen)
	f := make([]complex128, n)
	for i, v := range p {
		f[i] = complex(v, 0)
	}
	fftPow2(f, false)
	for i := range f {
		f[i] = cpow(f[i], k)
	}
	fftPow2(f, true)
	out := make([]float64, outLen)
	inv := 1 / float64(n)
	for i := range out {
		v := real(f[i]) * inv
		// Numerical noise can push tiny probabilities slightly negative.
		if v < 0 && v > -1e-12 {
			v = 0
		}
		out[i] = v
	}
	return out, nil
}

// SelfConvolvePowerDirect is the reference O(k * n^2) implementation of
// SelfConvolvePower, used by tests and by the SNC ablation benchmark.
func SelfConvolvePowerDirect(p []float64, k int) ([]float64, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("dsp: SelfConvolvePowerDirect on empty sequence")
	}
	if k < 1 {
		return nil, fmt.Errorf("dsp: SelfConvolvePowerDirect power k=%d < 1", k)
	}
	out := make([]float64, len(p))
	copy(out, p)
	for i := 1; i < k; i++ {
		out = convolveDirect(out, p)
	}
	return out, nil
}

// cpow raises a complex number to a nonnegative integer power by repeated
// squaring; it avoids cmplx.Pow's branch-cut issues at the origin.
func cpow(z complex128, k int) complex128 {
	result := complex(1, 0)
	for k > 0 {
		if k&1 == 1 {
			result *= z
		}
		z *= z
		k >>= 1
	}
	return result
}
