package dsp

import (
	"fmt"
	"math"
)

// Periodogram returns the one-sided periodogram of x at the Fourier
// frequencies lambda_k = 2*pi*k/n for k = 1 .. floor(n/2):
//
//	I(lambda_k) = |sum_j x[j] exp(-i*j*lambda_k)|^2 / (2*pi*n)
//
// The zero frequency (the mean) is excluded. The returned slices hold the
// frequencies and the corresponding ordinates.
func Periodogram(x []float64) (freqs, power []float64, err error) {
	n := len(x)
	if n < 4 {
		return nil, nil, fmt.Errorf("dsp: periodogram needs at least 4 points, got %d", n)
	}
	// Remove the sample mean so leakage from frequency zero does not bias
	// the low-frequency ordinates the Hurst estimator regresses on.
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	c := make([]complex128, n)
	for i, v := range x {
		c[i] = complex(v-mean, 0)
	}
	fftInPlace(c, false)
	half := n / 2
	freqs = make([]float64, half)
	power = make([]float64, half)
	norm := 1 / (2 * math.Pi * float64(n))
	for k := 1; k <= half; k++ {
		re, im := real(c[k]), imag(c[k])
		freqs[k-1] = 2 * math.Pi * float64(k) / float64(n)
		power[k-1] = (re*re + im*im) * norm
	}
	return freqs, power, nil
}
