package noreadall

import (
	"io"
	slurp "io"
	"strings"
)

func flaggedDirect(r io.Reader) ([]byte, error) {
	return io.ReadAll(r) // want `io\.ReadAll`
}

// The seeded regression for the retired string guard: it keyed on the
// selector's literal text being "io", so an aliased import smuggled
// the slurp straight past it. The analyzer resolves the object.
func flaggedAliased(r io.Reader) ([]byte, error) {
	return slurp.ReadAll(r) // want `io\.ReadAll`
}

func flaggedReference() func(io.Reader) ([]byte, error) {
	return io.ReadAll // want `io\.ReadAll`
}

type fakeIO struct{}

func (fakeIO) ReadAll(s string) string { return s }

// The old guard's false-positive shape, inverted: a local value named
// io with its own ReadAll method is not the io package's ReadAll and
// must pass.
func allowedUnrelated() string {
	io := fakeIO{}
	return io.ReadAll("x")
}

func allowedIncremental(r io.Reader) (int, error) {
	var total int
	var buf [512]byte
	for {
		n, err := r.Read(buf[:])
		total += n
		if err != nil {
			if strings.Contains(err.Error(), "EOF") {
				return total, nil
			}
			return total, err
		}
	}
}
