package nanwire

import "encoding/json"

// BadPoint is the flagged shape: a live estimate is NaN before it
// resolves, and encoding/json refuses NaN outright.
type BadPoint struct { // want `BadPoint.*MarshalJSON`
	H      float64 `json:"h"`
	Levels int     `json:"levels"`
}

// PointerPoint uses the sanctioned *float64 wire form: nil already
// encodes as null.
type PointerPoint struct {
	H *float64 `json:"h"`
}

// WrappedPoint owns its wire form through MarshalJSON — the
// null-for-NaN path — so the plain float64 field is fine.
type WrappedPoint struct {
	H float64 `json:"h"`
}

func (w WrappedPoint) MarshalJSON() ([]byte, error) {
	v := w.H
	return json.Marshal(struct {
		H *float64 `json:"h"`
	}{&v})
}

// unexportedPoint is out of scope: unexported wire structs are the
// implementation of the convention, not its surface.
type unexportedPoint struct {
	H float64 `json:"h"`
}

// SkippedField is never marshalled, so NaN cannot reach the wire.
type SkippedField struct {
	H float64 `json:"-"`
}

// UntaggedField declares no wire name; the convention gates declared
// wire fields.
type UntaggedField struct {
	H float64
}

// IntFields cannot be NaN.
type IntFields struct {
	Levels int   `json:"levels"`
	Ticks  int64 `json:"ticks"`
}

var _ = unexportedPoint{}
