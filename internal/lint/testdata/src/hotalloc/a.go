package hotalloc

import (
	"fmt"
	"strconv"
)

//samplelint:hotpath
func flaggedSprintf(id string, v float64) string {
	return fmt.Sprintf("%s=%f", id, v) // want `fmt\.Sprintf`
}

//samplelint:hotpath
func flaggedConcat(id string, n int) string {
	return id + strconv.Itoa(n) // want `string concatenation`
}

//samplelint:hotpath
func flaggedConcatAssign(id string, suffix string) string {
	id += suffix // want `string concatenation`
	return id
}

//samplelint:hotpath
func flaggedBoxingArg(sink func(any), v float64) {
	sink(v) // want `boxes a float64`
}

//samplelint:hotpath
func flaggedBoxingConversion(v float64) any {
	return any(v) // want `boxes a float64`
}

//samplelint:hotpath
func flaggedBoxingAssign(v float64) any {
	var out any
	out = v // want `boxes a float64`
	return out
}

//samplelint:hotpath
func flaggedUncappedAppend(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `uncapped append`
	}
	return out
}

//samplelint:hotpath
func allowedCappedAppend(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// Appending into a parameter is the strconv.Append*-style idiom: the
// caller owns the buffer and its capacity planning.
//
//samplelint:hotpath
func allowedParamAppend(dst []byte, b byte) []byte {
	return append(dst, b)
}

// A reslice like buf[:0] is the pooled-buffer reuse idiom.
//
//samplelint:hotpath
func allowedReuseAppend(e *encoder, payload []byte) {
	e.buf = append(e.buf[:0], payload...)
}

type encoder struct{ buf []byte }

// Constant folding happens at compile time; only runtime
// concatenation allocates.
//
//samplelint:hotpath
func allowedConstConcat() string {
	const prefix = "tick" + "batch"
	return prefix
}

// fmt.Errorf is exempt: error construction is the cold path, even
// when the operands include a float64.
//
//samplelint:hotpath
func allowedErrorf(v float64) error {
	return fmt.Errorf("non-finite tick %v", v)
}

// Integers box too, but the check targets the tick type; an int
// argument to an interface parameter stays legal.
//
//samplelint:hotpath
func allowedIntBoxing(sink func(any), n int) {
	sink(n)
}

// Un-annotated functions are out of scope entirely.
func allowedColdPath(id string, v float64) string {
	var out []byte
	out = append(out, id...)
	return fmt.Sprintf("%s=%f", string(out), v)
}
