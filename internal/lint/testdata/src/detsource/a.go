package detsource

import (
	"math/rand/v2"
	"time"
)

type engine struct {
	rng   *rand.Rand
	clock func() time.Time
}

// Constructors are the seeded path and referencing time.Now without
// calling it is the default-clock idiom — both stay legal.
func newEngine(seed uint64) *engine {
	return &engine{
		rng:   rand.New(rand.NewPCG(seed, seed)),
		clock: time.Now,
	}
}

func (e *engine) flaggedDraw() float64 {
	return rand.Float64() // want `global math/rand/v2\.Float64`
}

func (e *engine) flaggedShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand/v2\.Shuffle`
}

func (e *engine) flaggedReference() func() float64 {
	return rand.ExpFloat64 // want `global math/rand/v2\.ExpFloat64`
}

func (e *engine) flaggedNow() time.Time {
	return time.Now() // want `calls time\.Now`
}

func (e *engine) allowedSeededDraw() float64 {
	return e.rng.Float64()
}

func (e *engine) allowedInjectedClock() time.Time {
	return e.clock()
}
