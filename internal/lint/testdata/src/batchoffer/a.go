package batchoffer

import "repro/sampling"

// queue is the seeded regression for the retired string guard: an
// unrelated type with a method spelled Offer. The old name-match test
// flagged any `.Offer(` call, so this shape was a false positive; the
// type-resolved analyzer must let it pass.
type queue struct{ items []float64 }

func (q *queue) Offer(v float64) { q.items = append(q.items, v) }

func allowedUnrelatedOffer(q *queue) {
	q.Offer(1)
}

func flaggedEngineOffer(e *sampling.Engine, vals []float64) {
	for _, v := range vals {
		e.Offer(v) // want `\(\*sampling\.Engine\)\.Offer`
	}
}

// A method value escapes the per-tick cost through a wrapper; the
// reference itself is flagged, not just direct calls.
func flaggedMethodValue(e *sampling.Engine) func(float64) (sampling.Sample, bool) {
	return e.Offer // want `\(\*sampling\.Engine\)\.Offer`
}

func flaggedMethodExpression() func(*sampling.Engine, float64) (sampling.Sample, bool) {
	return (*sampling.Engine).Offer // want `\(\*sampling\.Engine\)\.Offer`
}

func flaggedGroupOffer(g *sampling.Group, v float64) int {
	return g.Offer(v) // want `\(\*sampling\.Group\)\.Offer`
}

func allowedBatch(e *sampling.Engine, g *sampling.Group, vals []float64) int {
	return e.OfferBatch(vals) + g.OfferBatch(vals)
}
