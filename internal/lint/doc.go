// Package lint holds the samplelint analyzers: type-resolved static
// checks for the invariants the serving path's throughput depends on
// but the compiler cannot see. They replace the retired name-match
// AST test (hotpath_test.go), which flagged any method spelled .Offer
// and keyed io.ReadAll detection on the literal import name, so an
// aliased import could smuggle a slurp past it.
//
// The suite:
//
//   - batchoffer: the ingest layers (hub, sampled, sampleload) must
//     stay on Engine.OfferBatch / Group.OfferBatch — one lock
//     acquisition per batch, never one per tick. Resolved against the
//     (*sampling.Engine).Offer and (*sampling.Group).Offer method
//     objects, so unrelated Offer methods pass and method-value
//     escapes (f := e.Offer) are caught.
//
//   - noreadall: the serving side of the wire (sampling/wire,
//     cmd/sampled) must not reference io.ReadAll — bodies decode
//     incrementally through pooled buffers under MaxBytesReader
//     bounds, and a session stream never ends. Resolved against the
//     io package's ReadAll object, so aliased and dot imports cannot
//     smuggle it in.
//
//   - detsource: sampling, internal/core and sampling/estimate must
//     stay deterministic and injectable — no global math/rand draw
//     functions (engines draw from their seeded *rand.Rand; the
//     rand.New* constructors stay legal) and no time.Now calls (the
//     clock comes from WithClock; referencing time.Now as the default
//     clock value is the sanctioned idiom and stays legal).
//
//   - hotalloc: functions annotated //samplelint:hotpath may not call
//     fmt.Sprintf/Sprint/Sprintln, concatenate non-constant strings,
//     box a float64 into an interface, or grow a slice with an
//     uncapped append — the static backup for the AllocsPerRun
//     assertions on the wire codec, the hub offer path and the
//     estimator ticks. fmt.Errorf is exempt: error construction is
//     the cold path. Appends into a parameter (the strconv.Append*
//     idiom), into a reslice (buf[:0]) or into a slice made locally
//     with explicit capacity stay legal.
//
//   - nanwire: an exported struct in the sampling package with a
//     json-tagged plain float64 field must define MarshalJSON — the
//     null-for-NaN wire path — because encoding/json fails on NaN and
//     the engine's moments are legitimately NaN before enough samples
//     arrive. The sanctioned wire form is an unexported shadow struct
//     with *float64 fields filled via jsonNumber.
//
// Run the suite with `go run ./cmd/samplelint ./...`; it is a hard
// gate in the CI lint job. Each analyzer has analysistest-style
// fixtures under testdata/src, including seeded regressions for the
// two false-resolution classes the old string guard got wrong.
package lint
