package lint_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// The meta-tests hold the suite's configuration against the repo
// itself, so neither the analyzer set nor the scope lists can
// silently go stale — the failure mode the retired hotpath_test.go's
// hand-maintained directory list was one refactor away from.

// TestSuiteComplete pins the analyzer set: retiring hotpath_test.go
// is only sound while all five checks exist and every one has a
// scope entry the driver can apply.
func TestSuiteComplete(t *testing.T) {
	want := []string{"batchoffer", "detsource", "hotalloc", "nanwire", "noreadall"}
	var got []string
	for _, a := range lint.Analyzers() {
		got = append(got, a.Name)
		if _, ok := lint.Scopes[a.Name]; !ok {
			t.Errorf("analyzer %s has no scope entry — the driver would never run it", a.Name)
		}
	}
	sort.Strings(got)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("analyzer suite = %v, want %v", got, want)
	}
	for name := range lint.Scopes {
		found := false
		for _, a := range lint.Analyzers() {
			if a.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("scope entry %s names no registered analyzer", name)
		}
	}
}

// TestScopesCoverIngestGraph derives the ingest surface from the
// import graph instead of trusting the config: every package that
// imports the hub is feeding it ticks and must be under batchoffer;
// every importer of the binary wire must be under noreadall or carry
// an explicit, documented exemption.
func TestScopesCoverIngestGraph(t *testing.T) {
	imports := moduleImports(t)

	mustScope := func(analyzer, pkg string) {
		t.Helper()
		for _, p := range lint.Scopes[analyzer] {
			if p == pkg {
				return
			}
		}
		t.Errorf("%s is missing from Scopes[%q] — the config has gone stale", pkg, analyzer)
	}

	mustScope("batchoffer", "repro/sampling/hub")
	for pkg, imps := range imports {
		for _, imp := range imps {
			if imp == "repro/sampling/hub" {
				mustScope("batchoffer", pkg)
			}
		}
	}

	mustScope("noreadall", "repro/sampling/wire")
	for pkg, imps := range imports {
		for _, imp := range imps {
			if imp != "repro/sampling/wire" {
				continue
			}
			if _, exempt := lint.ReadAllExempt[pkg]; exempt {
				continue
			}
			mustScope("noreadall", pkg)
		}
	}
	for pkg := range lint.ReadAllExempt {
		uses := false
		for _, imp := range imports[pkg] {
			if imp == "repro/sampling/wire" {
				uses = true
			}
		}
		if !uses {
			t.Errorf("ReadAllExempt lists %s, which no longer imports repro/sampling/wire — stale exemption", pkg)
		}
	}
}

// TestObsImportersScoped holds the observability package to the same
// derive-from-the-import-graph discipline: obs itself must sit under
// detsource (its instruments take injected clocks), and every package
// that wires obs into a serving path must already be under batchoffer
// — instrumentation goes where ingest happens — or carry a documented
// exemption in ObsExempt.
func TestObsImportersScoped(t *testing.T) {
	const obsPath = "repro/internal/obs"
	imports := moduleImports(t)
	if _, ok := imports[obsPath]; !ok {
		t.Fatalf("%s holds no non-test Go sources", obsPath)
	}

	inScope := func(analyzer, pkg string) bool {
		for _, p := range lint.Scopes[analyzer] {
			if p == pkg {
				return true
			}
		}
		return false
	}
	if !inScope("detsource", obsPath) {
		t.Errorf("%s is missing from Scopes[%q] — its clocks must stay injected", obsPath, "detsource")
	}
	for pkg, imps := range imports {
		for _, imp := range imps {
			if imp != obsPath {
				continue
			}
			if _, exempt := lint.ObsExempt[pkg]; exempt {
				continue
			}
			if !inScope("batchoffer", pkg) {
				t.Errorf("%s imports %s but is neither under Scopes[%q] nor exempted in ObsExempt — instrumented serving paths keep the ingest invariants", pkg, obsPath, "batchoffer")
			}
		}
	}
	for pkg := range lint.ObsExempt {
		uses := false
		for _, imp := range imports[pkg] {
			if imp == obsPath {
				uses = true
			}
		}
		if !uses {
			t.Errorf("ObsExempt lists %s, which no longer imports %s — stale exemption", pkg, obsPath)
		}
	}
}

// TestScopedPackagesExist is the sawSource guard carried over from
// hotpath_test.go: every scoped path must hold non-test sources, so a
// renamed or deleted package fails the gate instead of silently
// shrinking it.
func TestScopedPackagesExist(t *testing.T) {
	imports := moduleImports(t)
	for analyzer, scope := range lint.Scopes {
		for _, pkg := range scope {
			if _, ok := imports[pkg]; !ok {
				t.Errorf("Scopes[%q] names %s, which holds no non-test Go sources — scope list stale", analyzer, pkg)
			}
		}
	}
}

// TestHotPathAnnotationsPresent keeps the hotalloc analyzer honest:
// annotation-driven checks enforce nothing if a refactor drops the
// directives, so the packages whose AllocsPerRun assertions hotalloc
// statically backs must each carry at least one.
func TestHotPathAnnotationsPresent(t *testing.T) {
	root := moduleRoot(t)
	for _, pkg := range []string{"sampling", "sampling/hub", "sampling/wire", "sampling/estimate", "internal/lrd", "internal/obs"} {
		dir := filepath.Join(root, filepath.FromSlash(pkg))
		found := false
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(string(data), lint.Directive) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s carries no %s directive — its hot path lost static allocation coverage", pkg, lint.Directive)
		}
	}
}

// moduleRoot walks up from the working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// moduleImports maps every module package (with non-test sources) to
// the imports of those sources, parsed imports-only.
func moduleImports(t *testing.T) map[string][]string {
	t.Helper()
	root := moduleRoot(t)
	out := make(map[string][]string)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		pkg := "repro"
		if rel != "." {
			pkg = "repro/" + filepath.ToSlash(rel)
		}
		imps := out[pkg]
		for _, imp := range file.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return err
			}
			imps = append(imps, p)
		}
		out[pkg] = imps
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}
