package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Directive marks a function whose body HotAlloc holds to the
// zero-allocation discipline the AllocsPerRun benchmarks assert
// dynamically: the wire codec, the hub offer path and the estimator
// ticks.
const Directive = "//samplelint:hotpath"

// HotAlloc is the static backup for the hot paths' AllocsPerRun
// assertions. Inside a //samplelint:hotpath function it flags the
// allocation shapes a refactor most plausibly introduces:
//
//   - fmt.Sprintf / Sprint / Sprintln (formatting allocates; build
//     bytes with strconv.Append* instead);
//   - non-constant string concatenation;
//   - boxing a float64 into an interface (every conversion of a
//     non-constant float64 to an interface value heap-allocates);
//   - uncapped append — growing a slice that is neither a function
//     parameter (the strconv.Append*-style caller-owned buffer), a
//     reslice like buf[:0] (the pooled-reuse idiom), nor made locally
//     with an explicit capacity.
//
// fmt.Errorf is exempt, as are float64 arguments to any fmt call:
// constructing an error is the cold path by definition, and the
// S-family is already banned outright.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "//samplelint:hotpath functions may not format, concatenate strings, box float64s, or grow slices with uncapped append",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotPathDirective(fd.Doc) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil, nil
}

// hasHotPathDirective reports whether a doc comment carries the
// //samplelint:hotpath directive (alone or with trailing words).
func hasHotPathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	params := paramObjects(pass, fd)
	capped := cappedLocals(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, n, params, capped)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pass, n) && !isConstExpr(pass, n) {
				pass.Reportf(n.OpPos,
					"non-constant string concatenation on a hot path allocates — stage bytes in a reused buffer instead")
			}
		case *ast.AssignStmt:
			checkHotAssign(pass, n)
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, call *ast.CallExpr, params, capped map[types.Object]bool) {
	// Conversions: any(v) and interface-typed conversions box.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && types.IsInterface(tv.Type) && isFloat64Expr(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "boxes a float64 into an interface — the conversion heap-allocates on every tick")
		}
		return
	}
	if id := calleeIdent(call); id != nil {
		switch callee := pass.TypesInfo.Uses[id].(type) {
		case *types.Builtin:
			if callee.Name() == "append" {
				checkHotAppend(pass, call, params, capped)
			}
			return
		case *types.Func:
			if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "fmt" {
				switch callee.Name() {
				case "Sprintf", "Sprint", "Sprintln":
					pass.Reportf(call.Pos(),
						"calls fmt.%s on a hot path — formatting allocates; build bytes with strconv.Append* into a reused buffer",
						callee.Name())
				}
				// Errors are the cold path and the S-family is
				// reported above; skip per-argument boxing for fmt.
				return
			}
		}
	}
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call.Ellipsis.IsValid())
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if isFloat64Expr(pass, arg) {
			pass.Reportf(arg.Pos(), "boxes a float64 into an interface argument — the conversion heap-allocates on every tick")
		}
	}
}

func checkHotAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && isStringExpr(pass, as.Lhs[0]) {
		pass.Reportf(as.TokPos,
			"non-constant string concatenation on a hot path allocates — stage bytes in a reused buffer instead")
		return
	}
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := pass.TypesInfo.TypeOf(lhs)
		if lt == nil || !types.IsInterface(lt) {
			continue
		}
		if isFloat64Expr(pass, as.Rhs[i]) {
			pass.Reportf(as.Rhs[i].Pos(), "boxes a float64 into an interface — the conversion heap-allocates on every tick")
		}
	}
}

func checkHotAppend(pass *analysis.Pass, call *ast.CallExpr, params, capped map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	switch dst := call.Args[0].(type) {
	case *ast.SliceExpr:
		// buf[:0] — the pooled-buffer reuse idiom.
		return
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[dst]
		if params[obj] || capped[obj] {
			// A parameter is the caller-owned Append*-style buffer;
			// a local made with explicit capacity was sized for this.
			return
		}
		pass.Reportf(call.Pos(),
			"grows %s with an uncapped append on a hot path — preallocate with make(len, cap) or reuse a buffer (buf[:0])", dst.Name)
	default:
		pass.Reportf(call.Pos(),
			"uncapped append on a hot path — preallocate with make(len, cap) or reuse a buffer (buf[:0])")
	}
}

// paramObjects collects the receiver's and parameters' objects — the
// caller-owned buffers an Append*-style function may legally grow.
func paramObjects(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	return out
}

// cappedLocals collects locals assigned from a three-argument make —
// slices whose capacity was chosen explicitly.
func cappedLocals(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) != 3 {
			return
		}
		callee, ok := call.Fun.(*ast.Ident)
		if !ok {
			return
		}
		if b, ok := pass.TypesInfo.Uses[callee].(*types.Builtin); !ok || b.Name() != "make" {
			return
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// paramTypeAt returns the static type of the i-th argument slot,
// unwrapping the variadic element type unless the call spreads with
// an explicit ellipsis.
func paramTypeAt(sig *types.Signature, i int, hasEllipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if hasEllipsis {
			return last
		}
		if sl, ok := last.Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func isStringExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isFloat64Expr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil {
		// Constants fold at compile time; only runtime values box per
		// tick.
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

func isConstExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
