// Package loader parses and type-checks the packages of this module
// for the samplelint analyzers. It is the hermetic stand-in for
// golang.org/x/tools/go/packages: module packages ("repro/...") are
// resolved by walking the repository from go.mod, the standard
// library is resolved through the compiler's source importer, and
// everything shares one token.FileSet so diagnostics carry real
// positions. Test files are deliberately excluded — equivalence tests
// drive the per-tick path as the reference and benchmarks slurp
// response bodies, exactly the exemption the retired hotpath_test.go
// granted.
package loader

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked package: its syntax, its resolved
// types, and the directory it was read from.
type Package struct {
	Path  string // import path ("repro/sampling/hub")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader resolves and type-checks packages on demand, memoizing by
// import path so shared dependencies (the sampling package under both
// the hub and the daemon, say) are checked once.
type Loader struct {
	fset    *token.FileSet
	std     types.Importer // source importer for GOROOT packages
	module  string         // module path from go.mod
	root    string         // module root directory
	pkgs    map[string]*Package
	loading map[string]bool
}

// New finds the enclosing module from the working directory and
// returns a loader rooted there.
func New() (*Loader, error) {
	dir, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return NewAt(dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, fmt.Errorf("loader: no go.mod above working directory")
		}
		dir = parent
	}
}

// NewAt returns a loader rooted at the module directory root, which
// must hold a go.mod.
func NewAt(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("loader: %s/go.mod declares no module", root)
	}
	// The source importer type-checks GOROOT packages from source via
	// go/build; with cgo enabled it would try to preprocess net's cgo
	// resolver files. The pure-Go variants type-check identically for
	// analysis purposes, so force them.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		module:  module,
		root:    root,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Module returns the module path from go.mod.
func (l *Loader) Module() string { return l.module }

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// Import resolves one import path for the type checker: module
// packages recurse into the loader, everything else (the standard
// library) goes to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		p, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load resolves patterns — "./...", "./dir/...", "./dir", or plain
// import paths — into type-checked packages, sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	paths := make(map[string]bool)
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == l.module+"/...":
			dirs, err := l.packageDirs(l.root)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				paths[l.pathOf(d)] = true
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dirs, err := l.packageDirs(l.dirOf(base))
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				paths[l.pathOf(d)] = true
			}
		default:
			paths[l.pathOf(l.dirOf(pat))] = true
		}
	}
	out := make([]*Package, 0, len(paths))
	for path := range paths {
		p, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// dirOf maps a pattern base — "./x", "x", or "repro/x" — to its
// directory under the module root.
func (l *Loader) dirOf(base string) string {
	base = strings.TrimPrefix(base, "./")
	base = strings.TrimPrefix(base, l.module+"/")
	if base == "." || base == l.module {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(base))
}

// pathOf maps a directory under the module root to its import path.
func (l *Loader) pathOf(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.module
	}
	return l.module + "/" + filepath.ToSlash(rel)
}

// packageDirs walks root and returns every directory holding at least
// one non-test Go source file, skipping hidden, underscore-prefixed
// and testdata directories — the same set `go build ./...` compiles.
func (l *Loader) packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		files, err := sourceFiles(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// sourceFiles lists the non-test Go sources of dir, sorted.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// loadPath loads a module package by import path.
func (l *Loader) loadPath(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	return l.load(path, filepath.Join(l.root, filepath.FromSlash(rel)))
}

// LoadDir type-checks the package in dir under the given import path
// without requiring it to live inside the module — the analysistest
// fixture hook. Fixtures may import module packages; those resolve
// through the loader as usual.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, dir)
}

// load parses and type-checks one package.
func (l *Loader) load(path, dir string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := sourceFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %s: %w", path, err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: %s holds no non-test Go sources", path)
	}
	var syntax []*ast.File
	for _, f := range files {
		file, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: syntax, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}
