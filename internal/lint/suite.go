package lint

import (
	"repro/internal/lint/analysis"
)

// samplingPath is the package whose Engine/Group types anchor the
// batch-ingest and NaN-wire invariants.
const samplingPath = "repro/sampling"

// Analyzers returns the full samplelint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{BatchOffer, NoReadAll, DetSource, HotAlloc, NanWire}
}

// Scopes maps each analyzer to the package paths it gates when the
// suite runs over the module. A nil entry means every package —
// hotalloc is annotation-driven and applies wherever its directive
// appears. Fixture tests run analyzers unscoped; the meta-test in
// suite_test.go holds these lists against the repo's actual import
// graph so they cannot silently go stale.
var Scopes = map[string][]string{
	"batchoffer": {"repro/sampling/hub", "repro/cmd/sampled", "repro/cmd/sampleload"},
	"noreadall":  {"repro/sampling/wire", "repro/cmd/sampled"},
	"detsource":  {samplingPath, "repro/internal/core", "repro/sampling/estimate", obsPath, "repro/sampling/persist", "repro/sampling/cluster"},
	"hotalloc":   nil,
	"nanwire":    {samplingPath},
}

// obsPath is the observability package: its instruments sit on the
// serving hot path (hotalloc-annotated) and must take clocks by
// injection rather than calling time.Now (detsource), so a test can
// pin every duration it observes.
const obsPath = "repro/internal/obs"

// ObsExempt lists importers of internal/obs that are deliberately
// outside the batch-ingest scope, each with the reason. The meta-test
// requires every importer of obs to be scoped under batchoffer or
// exempted here: a package that instruments the serving path is on
// the serving path, and skipping the ingest invariants there must be
// an explicit, documented decision.
var ObsExempt = map[string]string{}

// ReadAllExempt lists packages on the wire that are deliberately
// outside noreadall's scope, each with the reason — the meta-test
// requires every importer of sampling/wire to be scoped or exempted
// here, so an exemption is always an explicit, documented decision.
var ReadAllExempt = map[string]string{
	"repro/cmd/sampleload": "the load generator slurps small JSON control responses off the measurement path; only the serving side is held to incremental decode",
}

// Applies reports whether the analyzer gates the given package path
// when the suite runs over the module.
func Applies(a *analysis.Analyzer, pkgPath string) bool {
	scope, ok := Scopes[a.Name]
	if !ok {
		return false
	}
	if scope == nil {
		return true
	}
	for _, p := range scope {
		if p == pkgPath {
			return true
		}
	}
	return false
}
