package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// BatchOffer enforces the batch-ingest invariant: the hot ingest
// layers must call Engine.OfferBatch / Group.OfferBatch, never the
// per-tick Offer forms, which pay one lock acquisition per tick. The
// check resolves the selector to the actual method object, so an
// unrelated type with an Offer method passes, and it fires on any
// reference to the method — a method value (f := e.Offer) or method
// expression escapes the same per-tick cost and is flagged too.
var BatchOffer = &analysis.Analyzer{
	Name: "batchoffer",
	Doc:  "ingest packages must use OfferBatch, not the per-tick (*sampling.Engine).Offer / (*sampling.Group).Offer",
	Run:  runBatchOffer,
}

func runBatchOffer(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Name() != "Offer" {
				return true
			}
			named := receiverNamed(fn)
			if named == nil {
				return true
			}
			obj := named.Obj()
			if obj.Pkg() == nil || obj.Pkg().Path() != samplingPath {
				return true
			}
			switch obj.Name() {
			case "Engine", "Group":
				pass.Reportf(sel.Sel.Pos(),
					"ingest path uses (*sampling.%s).Offer — use OfferBatch; Offer is the single-tick convenience form and pays one lock acquisition per tick",
					obj.Name())
			}
			return true
		})
	}
	return nil, nil
}

// receiverNamed unwraps a method's receiver to its named type, or nil
// for package-level functions and methods on unnamed types.
func receiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
