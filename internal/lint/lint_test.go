package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

// Each analyzer runs over its fixture package: every flagged line
// carries a // want expectation, every allowed shape has none, and
// the seeded regressions (the aliased io import, the unrelated Offer
// method) pin the two false-resolution classes the retired
// hotpath_test.go string guard got wrong. Dropping an analyzer from
// the suite fails TestSuiteComplete in suite_test.go; weakening one
// fails its fixture here.

func TestBatchOffer(t *testing.T) {
	analysistest.Run(t, "testdata", lint.BatchOffer, "batchoffer")
}

func TestNoReadAll(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NoReadAll, "noreadall")
}

func TestDetSource(t *testing.T) {
	analysistest.Run(t, "testdata", lint.DetSource, "detsource")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HotAlloc, "hotalloc")
}

func TestNanWire(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NanWire, "nanwire")
}
