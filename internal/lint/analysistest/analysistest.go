// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against // want comments — the hermetic
// stand-in for golang.org/x/tools/go/analysis/analysistest, with the
// same fixture layout (testdata/src/<pkg>/*.go) and expectation
// syntax, so fixtures survive a future migration onto x/tools
// unchanged.
//
// A // want comment holds one or more quoted or backquoted regular
// expressions and binds to its own line: every diagnostic the
// analyzer reports on that line must match one expectation, every
// expectation must be matched by a diagnostic, and any diagnostic on
// a line without expectations fails the test. Fixtures may import
// module packages ("repro/sampling"); they resolve through the
// shared loader.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// sharedLoader memoizes one loader across all fixture tests in the
// process, so the sampling package's dependency tree type-checks once.
var (
	loaderOnce sync.Once
	sharedLd   *loader.Loader
	loaderErr  error
)

func getLoader() (*loader.Loader, error) {
	loaderOnce.Do(func() {
		sharedLd, loaderErr = loader.New()
	})
	return sharedLd, loaderErr
}

// wantToken matches one expectation string: backquoted or quoted.
var wantToken = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg>, applies the analyzer, and holds its
// diagnostics against the fixture's // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	ld, err := getLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	p, err := ld.LoadDir(filepath.Join(testdata, "src", pkg), pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}

	type key struct {
		file string
		line int
	}
	want := make(map[key][]*expectation)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line}
				for _, m := range wantToken.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					pat := m[1]
					if m[2] != "" || pat == "" {
						// Quoted form: undo string escapes before
						// compiling.
						unq, err := strconv.Unquote(`"` + m[2] + `"`)
						if err != nil {
							t.Fatalf("%s: bad want string %q: %v", pos, m[2], err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					want[k] = append(want[k], &expectation{re: re})
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      p.Fset,
		Files:     p.Files,
		Pkg:       p.Types,
		TypesInfo: p.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		k := key{filepath.Base(pos.Filename), pos.Line}
		if !claim(want[k], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", position(pos), d.Message)
		}
	}
	for k, exps := range want {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, e.re)
			}
		}
	}
}

// claim marks the first unmatched expectation whose pattern matches
// the message.
func claim(exps []*expectation, msg string) bool {
	for _, e := range exps {
		if !e.matched && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

func position(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}
