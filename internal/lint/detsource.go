package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// DetSource enforces determinism and clock injection in the sampling
// core: runs are reproducible from a seed, so the estimator packages
// may not draw from math/rand's global source, and summaries carry
// injectable timestamps, so they may not call time.Now directly.
//
// Two shapes stay deliberately legal. The rand.New* constructors
// build the seeded *rand.Rand engines are handed (drawing methods on
// such a value are the sanctioned path), and referencing time.Now
// without calling it is the default-clock idiom — config{clock:
// time.Now} — that WithClock overrides in tests.
var DetSource = &analysis.Analyzer{
	Name: "detsource",
	Doc:  "sampling core must not use global math/rand draws or call time.Now; use the seeded *rand.Rand and the WithClock clock",
	Run:  runDetSource,
}

func runDetSource(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				fn, ok := pass.TypesInfo.Uses[n].(*types.Func)
				if !ok {
					return true
				}
				pkg := fn.Pkg()
				if pkg == nil {
					return true
				}
				switch pkg.Path() {
				case "math/rand", "math/rand/v2":
				default:
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() != nil {
					// Methods on *rand.Rand are the seeded path.
					return true
				}
				if strings.HasPrefix(fn.Name(), "New") {
					// Constructors build the seeded generators.
					return true
				}
				pass.Reportf(n.Pos(),
					"uses global %s.%s — draw from the engine's seeded *rand.Rand so runs stay reproducible from their seed",
					pkg.Path(), fn.Name())
			case *ast.CallExpr:
				callee := calleeIdent(n)
				if callee == nil {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[callee].(*types.Func)
				if !ok || fn.Name() != "Now" {
					return true
				}
				if pkg := fn.Pkg(); pkg == nil || pkg.Path() != "time" {
					return true
				}
				pass.Reportf(callee.Pos(),
					"calls time.Now — take the clock from WithClock (referencing time.Now as the default clock value is fine; calling it mid-path is not injectable)")
			}
			return true
		})
	}
	return nil, nil
}

// calleeIdent returns the identifier naming a call's callee: the Sel
// of a package or method selector, or a bare identifier (dot import).
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel
	case *ast.Ident:
		return fun
	}
	return nil
}
