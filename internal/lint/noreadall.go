package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// NoReadAll keeps io.ReadAll out of the serving side of the wire:
// request bodies decode incrementally through pooled buffers under
// MaxBytesReader bounds, and a session stream never ends, so one
// slurp would undo both the zero-copy decode path and the size
// limits. The check resolves the identifier to the io package's
// ReadAll object, so an aliased import (slurp "io") or a dot import
// cannot smuggle it past — the exact hole the retired string guard
// had — while a local type's own ReadAll method passes.
var NoReadAll = &analysis.Analyzer{
	Name: "noreadall",
	Doc:  "serving-side wire packages must not reference io.ReadAll; decode incrementally through pooled buffers",
	Run:  runNoReadAll,
}

func runNoReadAll(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Name() != "ReadAll" {
				return true
			}
			if pkg := fn.Pkg(); pkg == nil || pkg.Path() != "io" {
				return true
			}
			pass.Reportf(id.Pos(),
				"ingest path references io.ReadAll — decode incrementally through pooled buffers; slurping a body defeats the size bounds and the zero-copy wire")
			return true
		})
	}
	return nil, nil
}
