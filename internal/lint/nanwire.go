package lint

import (
	"go/types"
	"reflect"
	"strings"

	"repro/internal/lint/analysis"
)

// NanWire enforces the null-for-NaN wire convention: an exported
// struct with a json-tagged plain float64 field must define
// MarshalJSON, because encoding/json fails outright on NaN and the
// engine's moments (mean before the first sample, variance below two)
// are legitimately NaN on a live stream. The sanctioned shape is an
// unexported shadow struct with *float64 fields filled via jsonNumber
// — see Summary/HurstSummary/Comparison in sampling/json.go. Fields
// whose own type implements json.Marshaler, pointer fields (nil
// already encodes as null) and fields tagged json:"-" pass.
var NanWire = &analysis.Analyzer{
	Name: "nanwire",
	Doc:  "exported structs with json-tagged float64 fields must marshal through the null-for-NaN path (define MarshalJSON)",
	Run:  runNanWire,
}

func runNanWire(pass *analysis.Pass) (any, error) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if hasMarshalJSON(named) {
			continue
		}
		var bare []string
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			tag, ok := reflect.StructTag(st.Tag(i)).Lookup("json")
			if !ok {
				continue
			}
			if wireName, _, _ := strings.Cut(tag, ","); wireName == "-" && tag == "-" {
				continue
			}
			if !isBareFloat64(f.Type()) {
				continue
			}
			bare = append(bare, f.Name())
		}
		if len(bare) > 0 {
			pass.Reportf(tn.Pos(),
				"exported struct %s has json-tagged float64 field(s) %s but no MarshalJSON — encoding/json fails on NaN; marshal through an unexported wire struct with *float64 fields (the jsonNumber null-for-NaN path)",
				tn.Name(), strings.Join(bare, ", "))
		}
	}
	return nil, nil
}

// hasMarshalJSON reports whether *T (and so T's wire behavior under
// encoding/json) provides a MarshalJSON method.
func hasMarshalJSON(named *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "MarshalJSON" {
			return true
		}
	}
	return false
}

// isBareFloat64 reports whether t encodes as a raw JSON number that
// NaN would break: a plain (possibly named) float64 without its own
// marshaller. Pointer forms pass — nil is the null wire state.
func isBareFloat64(t types.Type) bool {
	if named, ok := t.(*types.Named); ok && hasMarshalJSON(named) {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}
