// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface the samplelint suite
// uses. This repo builds hermetically (no module proxy), so the real
// x/tools cannot be pulled in; the shapes here — Analyzer{Name, Doc,
// Run}, a Pass carrying Fset/Files/Pkg/TypesInfo and a Report hook —
// are kept call-compatible with that subset, so migrating onto
// x/tools if a vendored copy ever lands is a mechanical import swap.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check: a name for diagnostics and
// configuration, a doc string explaining the invariant it enforces,
// and a Run function applied to one type-checked package at a time.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass presents one type-checked package to an analyzer. Files hold
// the package's syntax, Pkg and TypesInfo its resolved types; every
// identifier in Files is resolvable through TypesInfo, which is what
// lets the analyzers see through aliased imports and unrelated
// same-named methods.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
