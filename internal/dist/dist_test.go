package dist

import (
	"math"
	"testing"
)

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	if NewRand(1).Float64() == NewRand(2).Float64() {
		t.Error("different seeds should diverge immediately")
	}
}

func TestParetoValidation(t *testing.T) {
	if _, err := NewPareto(0, 1); err == nil {
		t.Error("expected error for alpha 0")
	}
	if _, err := NewPareto(1.5, 0); err == nil {
		t.Error("expected error for xm 0")
	}
	if _, err := NewPareto(1.5, 2); err != nil {
		t.Error(err)
	}
}

func TestParetoMoments(t *testing.T) {
	p := Pareto{Alpha: 1.5, Xm: 2}
	if got, want := p.Mean(), 1.5*2/0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %g, want %g", got, want)
	}
	if !math.IsInf(Pareto{Alpha: 1, Xm: 1}.Mean(), 1) {
		t.Error("alpha <= 1 must have infinite mean")
	}
	rng := NewRand(5)
	var sum float64
	const n = 2_000_000
	for i := 0; i < n; i++ {
		sum += p.Sample(rng)
	}
	// Heavy-tailed, so the empirical mean converges slowly; 10% is enough
	// to catch an inverse-transform mistake.
	if got := sum / n; math.Abs(got-p.Mean())/p.Mean() > 0.1 {
		t.Errorf("empirical mean %g vs %g", got, p.Mean())
	}
}

func TestParetoQuantileAndCCDF(t *testing.T) {
	p := Pareto{Alpha: 2, Xm: 3}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99} {
		x := p.Quantile(q)
		if x < p.Xm {
			t.Errorf("Quantile(%g) = %g below xm", q, x)
		}
		if got := p.CCDF(x); math.Abs(got-(1-q)) > 1e-12 {
			t.Errorf("CCDF(Quantile(%g)) = %g, want %g", q, got, 1-q)
		}
	}
	if p.CCDF(1) != 1 {
		t.Error("CCDF below xm must be 1")
	}
}

func TestParetoSamplesAreBounded(t *testing.T) {
	p := Pareto{Alpha: 1.2, Xm: 1}
	rng := NewRand(9)
	for i := 0; i < 100000; i++ {
		v := p.Sample(rng)
		if v < p.Xm || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("sample %g outside [xm, inf)", v)
		}
	}
}

func TestFitParetoTailRecoversAlpha(t *testing.T) {
	rng := NewRand(11)
	for _, alpha := range []float64{1.2, 1.5, 1.9} {
		p := Pareto{Alpha: alpha, Xm: 1}
		sample := make([]float64, 50000)
		for i := range sample {
			sample[i] = p.Sample(rng)
		}
		fit, err := FitParetoTail(sample, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Alpha-alpha) > 0.15 {
			t.Errorf("alpha %g: fitted %g", alpha, fit.Alpha)
		}
		if fit.Fit.R2 < 0.95 {
			t.Errorf("alpha %g: R2 %g, want a near-linear log-log CCDF", alpha, fit.Fit.R2)
		}
	}
}

func TestFitParetoTailErrors(t *testing.T) {
	ok := make([]float64, 100)
	for i := range ok {
		ok[i] = float64(i + 1)
	}
	if _, err := FitParetoTail(ok, 0); err == nil {
		t.Error("expected error for frac 0")
	}
	if _, err := FitParetoTail(ok, 1.5); err == nil {
		t.Error("expected error for frac > 1")
	}
	if _, err := FitParetoTail(ok[:5], 1); err == nil {
		t.Error("expected error for too few points")
	}
	neg := []float64{-1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if _, err := FitParetoTail(neg, 1); err == nil {
		t.Error("expected error for nonpositive tail values")
	}
}
