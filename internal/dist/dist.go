// Package dist provides the heavy-tailed distribution machinery the
// paper's traffic models stand on: a deterministic PCG random source,
// the Pareto law (the paper's model for burst durations, per-burst rates
// and the marginal of f(t) itself, Section V-B), and a log-log CCDF tail
// fitter used to measure tail indices from traces (Figures 8-10).
package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/stats"
)

// NewRand returns a deterministic PCG-backed random source. Every
// randomized component of the reproduction takes its randomness from
// here so experiments are replayable from a single seed.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Pareto is the Pareto(alpha, xm) law with CCDF Pr(X > x) = (xm/x)^alpha
// for x >= xm. Alpha in (1, 2) gives the infinite-variance regime that
// induces self-similarity in the ON/OFF construction.
type Pareto struct {
	Alpha float64 // shape (tail index)
	Xm    float64 // scale (minimum value)
}

// NewPareto validates the parameters.
func NewPareto(alpha, xm float64) (Pareto, error) {
	if !(alpha > 0) {
		return Pareto{}, fmt.Errorf("dist: Pareto shape %g must be > 0", alpha)
	}
	if !(xm > 0) {
		return Pareto{}, fmt.Errorf("dist: Pareto scale %g must be > 0", xm)
	}
	return Pareto{Alpha: alpha, Xm: xm}, nil
}

// Sample draws one variate by inverse transform. 1-U lies in (0, 1], so
// the result is finite.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	return p.Xm * math.Pow(1-rng.Float64(), -1/p.Alpha)
}

// Quantile returns the q-quantile, q in [0, 1).
func (p Pareto) Quantile(q float64) float64 {
	return p.Xm * math.Pow(1-q, -1/p.Alpha)
}

// CCDF returns Pr(X > x).
func (p Pareto) CCDF(x float64) float64 {
	if x <= p.Xm {
		return 1
	}
	return math.Pow(p.Xm/x, p.Alpha)
}

// Mean returns alpha*xm/(alpha-1), or +Inf when alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// ParetoTailFit is the result of fitting a Pareto tail to a sample.
type ParetoTailFit struct {
	Alpha float64       // estimated tail index (negated CCDF slope)
	Xm    float64       // smallest value included in the fitted tail
	Fit   stats.LineFit // the underlying log-log CCDF regression
}

// FitParetoTail estimates the tail index of a positive sample by linear
// regression of the empirical log-CCDF against log(x) over the largest
// frac of the observations — the standard log-log complementary-CDF fit
// the paper uses for Figures 8-10. frac must lie in (0, 1]; at least ten
// distinct tail points are required.
func FitParetoTail(sample []float64, frac float64) (ParetoTailFit, error) {
	if !(frac > 0) || frac > 1 {
		return ParetoTailFit{}, fmt.Errorf("dist: tail fraction %g outside (0,1]", frac)
	}
	n := len(sample)
	k := int(frac*float64(n) + 0.5)
	if k < 10 {
		return ParetoTailFit{}, fmt.Errorf("dist: tail fit needs >= 10 points, frac %g of %d gives %d", frac, n, k)
	}
	sorted := make([]float64, n)
	copy(sorted, sample)
	sort.Float64s(sorted)
	// Tail = the k largest values. The empirical CCDF at the i-th order
	// statistic (0-based, ascending) is (n-i-0.5)/n, the midpoint rule that
	// keeps the largest observation on the plot.
	var lx, ly []float64
	for i := n - k; i < n; i++ {
		x := sorted[i]
		if x <= 0 {
			return ParetoTailFit{}, fmt.Errorf("dist: tail fit needs positive values, got %g", x)
		}
		// Collapse ties onto the true CCDF: keep only the last of a run of
		// equal values, whose plotting position is the fraction strictly
		// above it.
		if i+1 < n && sorted[i+1] == x {
			continue
		}
		ccdf := (float64(n-i) - 0.5) / float64(n)
		lx = append(lx, math.Log(x))
		ly = append(ly, math.Log(ccdf))
	}
	if len(lx) < 2 {
		return ParetoTailFit{}, fmt.Errorf("dist: tail has only %d distinct values", len(lx))
	}
	fit, err := stats.FitLine(lx, ly)
	if err != nil {
		return ParetoTailFit{}, fmt.Errorf("dist: tail regression: %w", err)
	}
	return ParetoTailFit{Alpha: -fit.Slope, Xm: sorted[n-k], Fit: fit}, nil
}
