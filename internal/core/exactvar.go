package core

import (
	"fmt"

	"repro/internal/stats"
)

// This file computes the paper's average variance E(V) = E[(Xi - mean)^2]
// *exactly* for each technique, rather than estimating it from a handful
// of sampled instances. Exact evaluation matters on heavy-tailed traffic:
// an instance estimate of E(V) is dominated by whether the drawn instances
// happened to catch the few giant values, so estimated orderings flap even
// with dozens of instances. Every function below is O(len(f)) or
// O(len(f) log ...) total.

// ExactSystematicVariance returns E(Vsy) for sampling interval c: the
// exact average over all c possible offsets of (offset mean - mean)^2.
func ExactSystematicVariance(f []float64, c int, mean float64) (float64, error) {
	if c < 1 || c > len(f) {
		return 0, fmt.Errorf("core: interval %d out of range for series of length %d", c, len(f))
	}
	sums := make([]float64, c)
	counts := make([]int, c)
	for i, v := range f {
		sums[i%c] += v
		counts[i%c]++
	}
	var ev float64
	for o := 0; o < c; o++ {
		if counts[o] == 0 {
			continue
		}
		d := sums[o]/float64(counts[o]) - mean
		ev += d * d
	}
	return ev / float64(c), nil
}

// ExactStratifiedVariance returns E(Vrs) for stratum length c: with one
// uniform pick per full stratum, the instance mean is the average of K
// independent uniform picks, so
//
//	E(V) = Var(instance mean) + (E[instance mean] - mean)^2
//	     = (1/K^2) * sum_s Var_s + bias^2,
//
// where Var_s is the within-stratum population variance.
func ExactStratifiedVariance(f []float64, c int, mean float64) (float64, error) {
	if c < 1 || c > len(f) {
		return 0, fmt.Errorf("core: interval %d out of range for series of length %d", c, len(f))
	}
	k := len(f) / c
	if k == 0 {
		return 0, fmt.Errorf("core: no full stratum of length %d in series of length %d", c, len(f))
	}
	var sumVar, sumMean float64
	for s := 0; s < k; s++ {
		seg := f[s*c : (s+1)*c]
		sumVar += stats.Variance(seg)
		sumMean += stats.Mean(seg)
	}
	kf := float64(k)
	bias := sumMean/kf - mean
	return sumVar/(kf*kf) + bias*bias, nil
}

// ExactSimpleRandomVariance returns E(Vran) for drawing n of the N values
// without replacement: the classic finite-population formula
//
//	E(V) = (S^2/n) * (1 - n/N),  S^2 the population variance with 1/(N-1),
//
// plus the squared bias of the population mean against the supplied mean
// (zero when mean is the population mean).
func ExactSimpleRandomVariance(f []float64, n int, mean float64) (float64, error) {
	bigN := len(f)
	if n < 1 || n > bigN {
		return 0, fmt.Errorf("core: sample size %d out of range for population %d", n, bigN)
	}
	if bigN < 2 {
		return 0, fmt.Errorf("core: population of size %d too small", bigN)
	}
	popMean := stats.Mean(f)
	s2 := stats.SampleVariance(f)
	bias := popMean - mean
	return s2/float64(n)*(1-float64(n)/float64(bigN)) + bias*bias, nil
}

// ExactBSSVariance returns E(V) for BSS with the given configuration,
// averaged exactly over all Interval offsets. BSS is deterministic given
// the offset, so this is an exact expectation like ExactSystematicVariance
// (total cost O(len(f)) across all offsets).
func ExactBSSVariance(f []float64, cfg BSS, mean float64) (float64, error) {
	if cfg.Interval < 1 || cfg.Interval > len(f) {
		return 0, fmt.Errorf("core: interval %d out of range for series of length %d", cfg.Interval, len(f))
	}
	var ev float64
	used := 0
	for o := 0; o < cfg.Interval; o++ {
		c := cfg
		c.Offset = o
		samples, err := c.Sample(f)
		if err != nil {
			return 0, fmt.Errorf("core: BSS offset %d: %w", o, err)
		}
		if len(samples) == 0 {
			continue
		}
		d := MeanOf(samples) - mean
		ev += d * d
		used++
	}
	if used == 0 {
		return 0, fmt.Errorf("core: no BSS offset produced samples")
	}
	return ev / float64(used), nil
}
