package core

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func TestExactSystematicVarianceRamp(t *testing.T) {
	// Linear ramp 0..999, C=10: offset o gives mean 494.5 + o + 0.5... the
	// offset means are mean + (o - 4.5), so E(V) = Var(U{0..9}) = 8.25.
	f := seq(1000)
	mean := stats.Mean(f)
	got, err := ExactSystematicVariance(f, 10, mean)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-8.25) > 1e-9 {
		t.Errorf("E(Vsy) = %g, want 8.25", got)
	}
	if _, err := ExactSystematicVariance(f, 0, mean); err == nil {
		t.Error("expected error for C = 0")
	}
	if _, err := ExactSystematicVariance(f, 2000, mean); err == nil {
		t.Error("expected error for C > len")
	}
}

func TestExactSystematicMatchesAllOffsetInstances(t *testing.T) {
	rng := dist.NewRand(12)
	f := make([]float64, 3000)
	for i := range f {
		f[i] = rng.ExpFloat64() * 10
	}
	mean := stats.Mean(f)
	const c = 30
	exact, err := ExactSystematicVariance(f, c, mean)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over every offset.
	var brute float64
	for o := 0; o < c; o++ {
		smp, err := (Systematic{Interval: c, Offset: o}).Sample(f)
		if err != nil {
			t.Fatal(err)
		}
		d := MeanOf(smp) - mean
		brute += d * d / c
	}
	if math.Abs(exact-brute) > 1e-9*(1+brute) {
		t.Errorf("exact %g vs brute force %g", exact, brute)
	}
}

func TestExactStratifiedVarianceMatchesMonteCarlo(t *testing.T) {
	rng := dist.NewRand(13)
	f := make([]float64, 4000)
	for i := range f {
		f[i] = rng.NormFloat64()*3 + float64(i%7)
	}
	mean := stats.Mean(f)
	const c = 40
	exact, err := ExactStratifiedVariance(f, c, mean)
	if err != nil {
		t.Fatal(err)
	}
	var mc float64
	const trials = 4000
	for i := 0; i < trials; i++ {
		s, err := NewStratified(c, newRand(uint64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		smp, err := s.Sample(f)
		if err != nil {
			t.Fatal(err)
		}
		d := MeanOf(smp) - mean
		mc += d * d / trials
	}
	if math.Abs(exact-mc)/exact > 0.1 {
		t.Errorf("exact %g vs Monte Carlo %g", exact, mc)
	}
	if _, err := ExactStratifiedVariance(f, 0, mean); err == nil {
		t.Error("expected error for C = 0")
	}
	if _, err := ExactStratifiedVariance(f[:10], 40, mean); err == nil {
		t.Error("expected error when no full stratum fits")
	}
}

func TestExactSimpleRandomVarianceMatchesMonteCarlo(t *testing.T) {
	rng := dist.NewRand(14)
	f := make([]float64, 2000)
	for i := range f {
		f[i] = rng.ExpFloat64()
	}
	mean := stats.Mean(f)
	const n = 50
	exact, err := ExactSimpleRandomVariance(f, n, mean)
	if err != nil {
		t.Fatal(err)
	}
	var mc float64
	const trials = 4000
	for i := 0; i < trials; i++ {
		s, err := NewSimpleRandom(n, newRand(uint64(500+i)))
		if err != nil {
			t.Fatal(err)
		}
		smp, err := s.Sample(f)
		if err != nil {
			t.Fatal(err)
		}
		d := MeanOf(smp) - mean
		mc += d * d / trials
	}
	if math.Abs(exact-mc)/exact > 0.1 {
		t.Errorf("exact %g vs Monte Carlo %g", exact, mc)
	}
	if _, err := ExactSimpleRandomVariance(f, 0, mean); err == nil {
		t.Error("expected error for n = 0")
	}
	if _, err := ExactSimpleRandomVariance([]float64{1}, 1, 1); err == nil {
		t.Error("expected error for tiny population")
	}
	// Full census has zero variance (and zero bias against the true mean).
	v, err := ExactSimpleRandomVariance(f, len(f), mean)
	if err != nil {
		t.Fatal(err)
	}
	if v > 1e-12 {
		t.Errorf("census variance = %g, want 0", v)
	}
}

func TestExactBSSVarianceDegenerate(t *testing.T) {
	// With L=0 (or a threshold no value reaches) BSS is systematic, so the
	// exact variances must agree.
	rng := dist.NewRand(15)
	f := make([]float64, 5000)
	for i := range f {
		f[i] = rng.ExpFloat64()
	}
	mean := stats.Mean(f)
	const c = 25
	sys, err := ExactSystematicVariance(f, c, mean)
	if err != nil {
		t.Fatal(err)
	}
	bss, err := ExactBSSVariance(f, BSS{Interval: c, L: 0, Epsilon: 1}, mean)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sys-bss) > 1e-12*(1+sys) {
		t.Errorf("L=0 BSS variance %g != systematic %g", bss, sys)
	}
	if _, err := ExactBSSVariance(f, BSS{Interval: 0, L: 1, Epsilon: 1}, mean); err == nil {
		t.Error("expected error for bad interval")
	}
}

func TestTheorem2OrderingExactOnLRD(t *testing.T) {
	// The exact Theorem 2 check: on LRD traffic with convex ACF,
	// E(Vsy) <= E(Vrs) <= E(Vran) — now deterministic, no sampling noise.
	cfg := traffic.OnOffConfig{
		Sources: 32, AlphaOn: 1.4, AlphaOff: 1.4,
		MeanOn: 10, MeanOff: 30, Rate: 1, Ticks: 1 << 16,
	}
	f, err := traffic.GenerateOnOff(cfg, dist.NewRand(77))
	if err != nil {
		t.Fatal(err)
	}
	mean := stats.Mean(f)
	for _, c := range []int{16, 64, 256, 1024} {
		sy, err := ExactSystematicVariance(f, c, mean)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := ExactStratifiedVariance(f, c, mean)
		if err != nil {
			t.Fatal(err)
		}
		ran, err := ExactSimpleRandomVariance(f, len(f)/c, mean)
		if err != nil {
			t.Fatal(err)
		}
		// Theorem 2 holds in expectation over process realizations; a
		// single realization's exact values can deviate by a few percent
		// where the empirical ACF is locally non-convex.
		if !(sy <= rs*1.05) {
			t.Errorf("C=%d: E(Vsy)=%g > E(Vrs)=%g", c, sy, rs)
		}
		if !(rs <= ran*1.05) {
			t.Errorf("C=%d: E(Vrs)=%g > E(Vran)=%g", c, rs, ran)
		}
		if !(sy <= ran*1.02) {
			t.Errorf("C=%d: E(Vsy)=%g > E(Vran)=%g", c, sy, ran)
		}
	}
}

func BenchmarkExactSystematicVariance(b *testing.B) {
	f := make([]float64, 1<<20)
	for i := range f {
		f[i] = float64(i % 97)
	}
	mean := stats.Mean(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExactSystematicVariance(f, 1000, mean); err != nil {
			b.Fatal(err)
		}
	}
}
