package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestParseSpec(t *testing.T) {
	name, p, err := ParseSpec("bss:rate=1e-3,L=10,eps=1.0")
	if err != nil {
		t.Fatal(err)
	}
	if name != "bss" {
		t.Errorf("name = %q", name)
	}
	if got, _ := p.Float("rate", 0); got != 1e-3 {
		t.Errorf("rate = %g", got)
	}
	if got, _ := p.Int("L", 0); got != 10 {
		t.Errorf("L = %d", got)
	}
	for _, bad := range []string{"", ":", "bss:rate", "bss:rate=", "bss:=3", "bss:a=1,a=2"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): expected error", bad)
		}
	}
	// Bare names and trailing colons are fine.
	for _, ok := range []string{"systematic", "systematic:"} {
		if _, _, err := ParseSpec(ok); err != nil {
			t.Errorf("ParseSpec(%q): %v", ok, err)
		}
	}
}

func TestLookupBuildsEveryTechnique(t *testing.T) {
	f := seq(10000)
	for _, tc := range []struct{ spec, name string }{
		{"systematic:interval=100", "systematic"},
		{"systematic:rate=0.01,offset=3", "systematic"},
		{"stratified:rate=0.01,seed=2", "stratified"},
		{"simple:n=50,seed=3", "simple-random"},
		{"simple-random:rate=0.01", "simple-random"},
		{"bernoulli:rate=0.05,seed=4", "bernoulli"},
		{"bss:rate=0.01,L=5,eps=1.2", "bss"},
		{"bss:interval=100,L=5,ath=2.5", "bss"},
	} {
		s, err := Lookup(tc.spec)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", tc.spec, err)
		}
		if s.Name() != tc.name {
			t.Errorf("Lookup(%q).Name() = %q, want %q", tc.spec, s.Name(), tc.name)
		}
		got, err := s.Sample(f)
		if err != nil {
			t.Fatalf("Lookup(%q).Sample: %v", tc.spec, err)
		}
		if len(got) == 0 {
			t.Errorf("Lookup(%q) kept no samples", tc.spec)
		}
		eng, err := LookupStream(tc.spec)
		if err != nil {
			t.Fatalf("LookupStream(%q): %v", tc.spec, err)
		}
		if eng.Name() == "" {
			t.Errorf("LookupStream(%q): empty name", tc.spec)
		}
	}
}

func TestLookupErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"warp-drive:rate=0.5",            // unregistered
		"systematic",                     // no interval or rate
		"systematic:interval=0",          // invalid config
		"systematic:rate=3",              // rate out of range
		"systematic:interval=10,bogus=1", // unconsumed parameter
		"systematic:interval=ten",        // non-numeric
		"bss:interval=10,placement=sideways",
		"bernoulli:rate=0.5,seed=-1",
	} {
		if _, err := Lookup(bad); err == nil {
			t.Errorf("Lookup(%q): expected error", bad)
		}
	}
	// The unknown-name error should list what is registered.
	_, err := Lookup("warp-drive")
	if err == nil || !strings.Contains(err.Error(), "bss") {
		t.Errorf("unknown-name error should list registered names, got %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register("", func(*Params) (Sampler, error) { return nil, nil }); err == nil {
		t.Error("expected error for empty name")
	}
	if err := Register("has space", func(*Params) (Sampler, error) { return nil, nil }); err == nil {
		t.Error("expected error for name with spec syntax characters")
	}
	if err := Register("nilfactory", nil); err == nil {
		t.Error("expected error for nil factory")
	}
	if err := Register("systematic", func(*Params) (Sampler, error) { return nil, nil }); err == nil {
		t.Error("expected error for duplicate registration")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	want := map[string]bool{
		"systematic": true, "stratified": true, "simple": true,
		"simple-random": true, "bernoulli": true, "bss": true,
	}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) > 0 {
		t.Errorf("Names() missing built-ins: %v (got %v)", want, names)
	}
}

// TestRegistryConcurrent hammers Register/Lookup/Names from many
// goroutines; run with -race to verify the registry's locking.
func TestRegistryConcurrent(t *testing.T) {
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("race-probe-%d", w)
			if err := Register(name, func(p *Params) (Sampler, error) {
				interval, err := specInterval(p)
				if err != nil {
					return nil, err
				}
				return NewSystematic(interval, 0)
			}); err != nil {
				t.Errorf("Register(%s): %v", name, err)
				return
			}
			for i := 0; i < 50; i++ {
				if _, err := Lookup(name + ":interval=10"); err != nil {
					t.Errorf("Lookup(%s): %v", name, err)
					return
				}
				if _, err := Lookup("bss:rate=0.1,L=2"); err != nil {
					t.Errorf("Lookup(bss): %v", err)
					return
				}
				if len(Names()) < 6 {
					t.Error("Names() lost entries")
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
