package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Spec syntax: a sampler is described by "name" or
// "name:key=val,key=val,...", e.g.
//
//	systematic:interval=1000,offset=13
//	bss:rate=1e-3,L=10,eps=1.0
//	simple:rate=1e-2,seed=7
//
// Lookup parses the spec, finds the registered factory for name, builds
// the sampler and rejects any parameter the factory did not consume, so
// typos fail loudly instead of silently using defaults.

// Params carries the parsed key=value parameters of a spec to a Factory.
// Typed accessors record which keys were consumed; Lookup reports keys no
// accessor touched as errors.
type Params struct {
	raw  map[string]string
	used map[string]bool
}

// Float returns the named parameter as a float64, or def when absent.
func (p *Params) Float(key string, def float64) (float64, error) {
	s, ok := p.take(key)
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, &ParamError{Param: key, Value: s, Reason: "not a number"}
	}
	return v, nil
}

// Int returns the named parameter as an int, or def when absent.
func (p *Params) Int(key string, def int) (int, error) {
	s, ok := p.take(key)
	if !ok {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, &ParamError{Param: key, Value: s, Reason: "not an integer"}
	}
	return v, nil
}

// Uint returns the named parameter as a uint64, or def when absent.
func (p *Params) Uint(key string, def uint64) (uint64, error) {
	s, ok := p.take(key)
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, &ParamError{Param: key, Value: s, Reason: "not an unsigned integer"}
	}
	return v, nil
}

// String returns the named parameter verbatim, or def when absent.
func (p *Params) String(key, def string) string {
	if s, ok := p.take(key); ok {
		return s
	}
	return def
}

func (p *Params) take(key string) (string, bool) {
	s, ok := p.raw[key]
	if ok {
		p.used[key] = true
	}
	return s, ok
}

// Map returns a copy of the raw key=value parameters, independent of the
// consumption tracking. The public sampling package uses it to build its
// typed Spec.
func (p *Params) Map() map[string]string {
	out := make(map[string]string, len(p.raw))
	for k, v := range p.raw {
		out[k] = v
	}
	return out
}

func (p *Params) unused() []string {
	var out []string
	for k := range p.raw {
		if !p.used[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// ParseSpec splits a spec string into its technique name and parameters.
// Syntax errors wrap ErrBadSpec.
func ParseSpec(spec string) (string, *Params, error) {
	name, rest, hasParams := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", nil, fmt.Errorf("core: empty sampler spec %q: %w", spec, ErrBadSpec)
	}
	p := &Params{raw: make(map[string]string), used: make(map[string]bool)}
	if hasParams && strings.TrimSpace(rest) != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			if !ok || k == "" || v == "" {
				return "", nil, fmt.Errorf("core: spec parameter %q must be key=value: %w", kv, ErrBadSpec)
			}
			if _, dup := p.raw[k]; dup {
				return "", nil, fmt.Errorf("core: duplicate spec parameter %q: %w", k, ErrBadSpec)
			}
			p.raw[k] = v
		}
	}
	return name, p, nil
}

// Factory builds a sampler from parsed spec parameters. The returned
// Sampler should also implement Streamer so LookupStream can hand it to
// streaming consumers; every built-in factory does.
type Factory func(p *Params) (Sampler, error)

// registry is the process-wide sampler registry. Reads vastly outnumber
// writes (registration happens at init time), hence the RWMutex.
var registry = struct {
	sync.RWMutex
	m map[string]Factory
}{m: make(map[string]Factory)}

// Register adds a sampler factory under the given technique name. It is
// safe for concurrent use and fails on empty names, names containing the
// spec separators ':' ',' '=', nil factories and duplicates.
func Register(name string, f Factory) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("core: cannot register an empty sampler name")
	}
	if strings.ContainsAny(name, ":,= \t\n") {
		return fmt.Errorf("core: sampler name %q contains spec syntax characters", name)
	}
	if f == nil {
		return fmt.Errorf("core: nil factory for sampler %q", name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		return fmt.Errorf("core: sampler %q already registered", name)
	}
	registry.m[name] = f
	return nil
}

// mustRegister registers the built-in techniques at init time.
func mustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// Lookup builds a sampler from a spec string like
// "bss:rate=1e-3,L=10,eps=1.0". Every registered technique name is valid;
// see Names. Failures are typed: syntax errors wrap ErrBadSpec,
// unregistered names wrap ErrUnknownTechnique, and rejected parameters
// surface as a *ParamError in the chain.
func Lookup(spec string) (Sampler, error) {
	name, p, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return build(name, p)
}

// Build builds a sampler from a technique name and raw key=value
// parameters — the typed counterpart of Lookup, for callers that already
// hold structured parameters and should not round-trip them through the
// string syntax. Failure modes match Lookup's.
func Build(name string, kv map[string]string) (Sampler, error) {
	if strings.TrimSpace(name) == "" {
		return nil, fmt.Errorf("core: empty sampler technique name: %w", ErrBadSpec)
	}
	return build(name, NewParams(kv))
}

// NewParams wraps a raw key=value map for factory consumption, copying
// it so the caller's map is never mutated or retained.
func NewParams(kv map[string]string) *Params {
	p := &Params{raw: make(map[string]string, len(kv)), used: make(map[string]bool)}
	for k, v := range kv {
		p.raw[k] = v
	}
	return p
}

// build resolves the factory and runs it, enforcing full parameter
// consumption — the shared tail of Lookup and Build.
func build(name string, p *Params) (Sampler, error) {
	registry.RLock()
	f := registry.m[name]
	registry.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("core: unknown sampler %q (registered: %s): %w",
			name, strings.Join(Names(), ", "), ErrUnknownTechnique)
	}
	s, err := f(p)
	if err != nil {
		var pe *ParamError
		if errors.As(err, &pe) && pe.Technique == "" {
			pe.Technique = name
		}
		return nil, fmt.Errorf("core: building %q: %w", name, err)
	}
	if u := p.unused(); len(u) > 0 {
		return nil, &ParamError{Technique: name, Param: strings.Join(u, ", "), Reason: "not accepted by this technique"}
	}
	return s, nil
}

// LookupStream builds the streaming engine for a spec string.
func LookupStream(spec string) (StreamSampler, error) {
	s, err := Lookup(spec)
	if err != nil {
		return nil, err
	}
	return streamerOf(s)
}

// BuildStream builds the streaming engine from a technique name and raw
// parameters, the typed counterpart of LookupStream.
func BuildStream(name string, kv map[string]string) (StreamSampler, error) {
	s, err := Build(name, kv)
	if err != nil {
		return nil, err
	}
	return streamerOf(s)
}

func streamerOf(s Sampler) (StreamSampler, error) {
	c, ok := s.(Streamer)
	if !ok {
		return nil, fmt.Errorf("core: sampler %q has no streaming form", s.Name())
	}
	return c.Stream()
}

// Names returns the sorted names of every registered technique.
func Names() []string {
	registry.RLock()
	out := make([]string, 0, len(registry.m))
	for name := range registry.m {
		out = append(out, name)
	}
	registry.RUnlock()
	sort.Strings(out)
	return out
}

// specInterval resolves the shared interval/rate parameter pair: an
// explicit interval wins; otherwise a rate r in (0,1] maps to the base
// interval round(1/r).
func specInterval(p *Params) (int, error) {
	interval, err := p.Int("interval", 0)
	if err != nil {
		return 0, err
	}
	rate, err := p.Float("rate", 0)
	if err != nil {
		return 0, err
	}
	if interval != 0 {
		return interval, nil
	}
	if rate == 0 {
		return 0, &ParamError{Param: "interval", Reason: "spec needs interval=N or rate=R"}
	}
	iv, err := IntervalForRate(rate)
	if err != nil {
		return 0, &ParamError{Param: "rate", Value: strconv.FormatFloat(rate, 'g', -1, 64), Reason: "outside (0,1]"}
	}
	return iv, nil
}

func init() {
	mustRegister("systematic", func(p *Params) (Sampler, error) {
		interval, err := specInterval(p)
		if err != nil {
			return nil, err
		}
		offset, err := p.Int("offset", 0)
		if err != nil {
			return nil, err
		}
		return NewSystematic(interval, offset)
	})
	mustRegister("stratified", func(p *Params) (Sampler, error) {
		interval, err := specInterval(p)
		if err != nil {
			return nil, err
		}
		seed, err := p.Uint("seed", 1)
		if err != nil {
			return nil, err
		}
		return NewStratified(interval, newRand(seed))
	})
	simple := func(p *Params) (Sampler, error) {
		n, err := p.Int("n", 0)
		if err != nil {
			return nil, err
		}
		seed, err := p.Uint("seed", 1)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			return NewSimpleRandom(n, newRand(seed))
		}
		rate, err := p.Float("rate", 0)
		if err != nil {
			return nil, err
		}
		return NewSimpleRandomRate(rate, newRand(seed))
	}
	mustRegister("simple", simple)
	mustRegister("simple-random", simple)
	mustRegister("bernoulli", func(p *Params) (Sampler, error) {
		rate, err := p.Float("rate", 0)
		if err != nil {
			return nil, err
		}
		seed, err := p.Uint("seed", 1)
		if err != nil {
			return nil, err
		}
		return NewBernoulli(rate, newRand(seed))
	})
	mustRegister("bss", func(p *Params) (Sampler, error) {
		interval, err := specInterval(p)
		if err != nil {
			return nil, err
		}
		offset, err := p.Int("offset", 0)
		if err != nil {
			return nil, err
		}
		l, err := p.Int("L", 10)
		if err != nil {
			return nil, err
		}
		eps, err := p.Float("eps", 1.0)
		if err != nil {
			return nil, err
		}
		ath, err := p.Float("ath", 0)
		if err != nil {
			return nil, err
		}
		pre, err := p.Int("pre", 0)
		if err != nil {
			return nil, err
		}
		cfg := BSS{Interval: interval, Offset: offset, L: l, Epsilon: eps, Threshold: ath, PreSamples: pre}
		switch placement := p.String("placement", "spread"); placement {
		case "spread":
			cfg.Placement = PlacementSpread
		case "chase":
			cfg.Placement = PlacementChase
		default:
			return nil, fmt.Errorf("core: unknown BSS placement %q (spread or chase)", placement)
		}
		if err := cfg.validate(); err != nil {
			return nil, err
		}
		return cfg, nil
	})
}
