package core

import (
	"testing"

	"repro/internal/dist"
)

// streamTestTrace is a deterministic heavy-tailed trace shared by the
// stream-vs-batch equality tests.
func streamTestTrace(n int) []float64 {
	rng := dist.NewRand(20050608)
	p := dist.Pareto{Alpha: 1.4, Xm: 1}
	f := make([]float64, n)
	for i := range f {
		f[i] = p.Sample(rng)
	}
	return f
}

// TestStreamMatchesBatchAllTechniques is the refactor's core invariant:
// for every registered technique, feeding the streaming engine tick by
// tick produces exactly the []Sample the batch adapter returns. Batch and
// stream are built from the same spec (hence identically seeded random
// sources) but are independent instances.
func TestStreamMatchesBatchAllTechniques(t *testing.T) {
	f := streamTestTrace(30000)
	specs := []string{
		"systematic:interval=37,offset=5",
		"stratified:interval=41,seed=11",
		"simple:n=500,seed=12",
		"simple:rate=0.01,seed=13",
		"bernoulli:rate=0.02,seed=14",
		"bss:interval=40,L=6,eps=1.0",
		"bss:interval=25,L=4,ath=5",
		"bss:interval=100,L=12,eps=1.3,pre=20",
		"bss:interval=50,L=5,eps=1.1,placement=chase",
	}
	for _, spec := range specs {
		batchSampler, err := Lookup(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		batch, err := batchSampler.Sample(f)
		if err != nil {
			t.Fatalf("%s: batch: %v", spec, err)
		}
		eng, err := LookupStream(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		var online []Sample
		for i, v := range f {
			if smp, ok := eng.Offer(i, v); ok {
				online = append(online, smp)
			}
		}
		tail, err := eng.Finish()
		if err != nil {
			t.Fatalf("%s: finish: %v", spec, err)
		}
		online = append(online, tail...)
		if len(online) != len(batch) {
			t.Fatalf("%s: stream kept %d, batch kept %d", spec, len(online), len(batch))
		}
		for i := range batch {
			if online[i] != batch[i] {
				t.Fatalf("%s: sample %d differs: stream %+v vs batch %+v", spec, i, online[i], batch[i])
			}
		}
		if len(batch) == 0 {
			t.Errorf("%s: kept no samples", spec)
		}
	}
}

// TestStreamStratifiedDropsPartialStratum pins the batch rule in the
// streaming engine: a trailing incomplete stratum contributes no sample.
func TestStreamStratifiedDropsPartialStratum(t *testing.T) {
	s, err := NewStratified(10, newRand(3))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Sample(seq(25)) // strata [0,10) [10,20); [20,25) incomplete
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("kept %d samples, want 2", len(got))
	}
	for i, smp := range got {
		if smp.Index < i*10 || smp.Index >= (i+1)*10 {
			t.Errorf("sample %d at index %d outside its stratum", i, smp.Index)
		}
	}
}

// TestStreamSimpleRandomErrors exercises the deferred error path: the
// population check can only happen at Finish.
func TestStreamSimpleRandomErrors(t *testing.T) {
	eng, err := SimpleRandom{N: 10, Rng: newRand(1)}.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Finish(); err == nil {
		t.Error("expected empty-stream error")
	}
	eng2, err := SimpleRandom{N: 10, Rng: newRand(1)}.Stream()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		eng2.Offer(i, 1)
	}
	if _, err := eng2.Finish(); err == nil {
		t.Error("expected n > population error")
	}
}

// TestSimpleRandomRate checks the population-relative size rule
// n = max(1, len(f)/round(1/rate)).
func TestSimpleRandomRate(t *testing.T) {
	s, err := NewSimpleRandomRate(0.01, newRand(9))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Sample(seq(5000))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Errorf("kept %d samples, want 50", len(got))
	}
	if _, err := NewSimpleRandomRate(0, newRand(9)); err == nil {
		t.Error("expected error for rate 0")
	}
	if _, err := NewSimpleRandomRate(1.5, newRand(9)); err == nil {
		t.Error("expected error for rate > 1")
	}
}

// TestCollectEmptySeries pins the adapter's empty-series error.
func TestCollectEmptySeries(t *testing.T) {
	eng, err := Systematic{Interval: 3}.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(eng, nil); err == nil {
		t.Error("expected error for empty series")
	}
}
