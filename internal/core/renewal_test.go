package core

import (
	"math"
	"testing"

	"repro/internal/lrd"
)

func TestSystematicPMF(t *testing.T) {
	if _, err := SystematicPMF(0); err == nil {
		t.Error("expected error for C = 0")
	}
	p, err := SystematicPMF(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.P[5] != 1 {
		t.Errorf("P[5] = %g, want 1", p.P[5])
	}
	if m := p.Mean(); m != 5 {
		t.Errorf("mean = %g, want 5", m)
	}
}

func TestStratifiedPMF(t *testing.T) {
	if _, err := StratifiedPMF(0); err == nil {
		t.Error("expected error for C = 0")
	}
	p, err := StratifiedPMF(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Triangle peaked at the interval C with mean C.
	if m := p.Mean(); math.Abs(m-4) > 1e-12 {
		t.Errorf("mean = %g, want 4", m)
	}
	best := 0
	for k, v := range p.P {
		if v > p.P[best] {
			best = k
		}
	}
	if best != 4 {
		t.Errorf("mode at %d, want 4", best)
	}
	// Symmetry around C.
	for d := 1; d < 4; d++ {
		if math.Abs(p.P[4-d]-p.P[4+d]) > 1e-12 {
			t.Errorf("pmf not symmetric at distance %d", d)
		}
	}
}

func TestBernoulliPMF(t *testing.T) {
	if _, err := BernoulliPMF(0, 1e-12); err == nil {
		t.Error("expected error for r = 0")
	}
	if _, err := BernoulliPMF(1, 1e-12); err == nil {
		t.Error("expected error for r = 1")
	}
	p, err := BernoulliPMF(0.25, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if m := p.Mean(); math.Abs(m-4) > 0.01 {
		t.Errorf("mean gap = %g, want ~4", m)
	}
	// Geometric shape: P[k+1]/P[k] = 1-r.
	for k := 1; k < 20; k++ {
		ratio := p.P[k+1] / p.P[k]
		if math.Abs(ratio-0.75) > 1e-9 {
			t.Errorf("ratio at %d = %g, want 0.75", k, ratio)
		}
	}
	// Invalid tol falls back to the default.
	if _, err := BernoulliPMF(0.5, 5); err != nil {
		t.Errorf("tol fallback failed: %v", err)
	}
}

func TestIntervalPMFValidate(t *testing.T) {
	bad := []IntervalPMF{
		{P: nil},
		{P: []float64{1}},
		{P: []float64{0.5, 0.5}},     // mass at zero
		{P: []float64{0, 0.5}},       // does not sum to 1
		{P: []float64{0, -0.5, 1.5}}, // negative mass
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGapPMF(t *testing.T) {
	// Systematic sampler's empirical gap law is the degenerate pmf.
	p, err := GapPMF(Systematic{Interval: 7}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.P[7]-1) > 1e-12 {
		t.Errorf("P[7] = %g, want 1", p.P[7])
	}
	// Stratified sampler's empirical gap law matches the triangle.
	s, _ := NewStratified(8, newRand(5))
	p, err = GapPMF(s, 400000)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := StratifiedPMF(8)
	for k := 1; k < 16; k++ {
		var w float64
		if k < len(want.P) {
			w = want.P[k]
		}
		var g float64
		if k < len(p.P) {
			g = p.P[k]
		}
		if math.Abs(g-w) > 0.01 {
			t.Errorf("gap %d: empirical %g vs theoretical %g", k, g, w)
		}
	}
	if _, err := GapPMF(Systematic{Interval: 7}, 1); err == nil {
		t.Error("expected error for tiny series")
	}
	if _, err := GapPMF(Systematic{Interval: 7, Offset: 0}, 7); err == nil {
		t.Error("expected error when fewer than 2 samples result")
	}
}

func sncTaus() []int {
	taus := make([]int, 0, 16)
	for tau := 8; tau <= 96; tau += 8 {
		taus = append(taus, tau)
	}
	return taus
}

func TestCheckSNCSystematicExact(t *testing.T) {
	// Systematic sampling: k(u, tau) = delta(u - tau*C), so
	// Rg(tau) = Rf(C*tau) = Const * C^-beta * tau^-beta — the exponent is
	// preserved exactly.
	acf := lrd.PowerLawACF{Const: 1, Beta: 0.4}
	p, _ := SystematicPMF(6)
	res, err := CheckSNC(p, acf, sncTaus())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BetaHat-0.4) > 1e-6 {
		t.Errorf("systematic betaHat = %g, want 0.4 exactly", res.BetaHat)
	}
	if !res.Preserved(0.01) {
		t.Error("systematic sampling should preserve the exponent")
	}
}

func TestCheckSNCStratifiedAndBernoulli(t *testing.T) {
	// The paper's Figure 3: both techniques preserve beta across the LRD
	// range.
	for _, beta := range []float64{0.2, 0.5, 0.8} {
		acf := lrd.PowerLawACF{Const: 1, Beta: beta}
		strat, _ := StratifiedPMF(6)
		res, err := CheckSNC(strat, acf, sncTaus())
		if err != nil {
			t.Fatalf("beta=%g stratified: %v", beta, err)
		}
		if math.Abs(res.BetaHat-beta) > 0.05 {
			t.Errorf("stratified beta=%g: betaHat = %g", beta, res.BetaHat)
		}
		bern, _ := BernoulliPMF(1.0/6, 1e-12)
		res, err = CheckSNC(bern, acf, sncTaus())
		if err != nil {
			t.Fatalf("beta=%g bernoulli: %v", beta, err)
		}
		if math.Abs(res.BetaHat-beta) > 0.05 {
			t.Errorf("bernoulli beta=%g: betaHat = %g", beta, res.BetaHat)
		}
	}
}

func TestCheckSNCErrors(t *testing.T) {
	acf := lrd.PowerLawACF{Const: 1, Beta: 0.5}
	p, _ := SystematicPMF(4)
	if _, err := CheckSNC(IntervalPMF{P: []float64{0.5, 0.5}}, acf, sncTaus()); err == nil {
		t.Error("expected error for invalid pmf")
	}
	if _, err := CheckSNC(p, acf, []int{1, 2}); err == nil {
		t.Error("expected error for too few lags")
	}
	if _, err := CheckSNC(p, acf, []int{0, 1, 2}); err == nil {
		t.Error("expected error for lag 0")
	}
}

func TestCheckSNCDirectMatchesFFT(t *testing.T) {
	acf := lrd.PowerLawACF{Const: 2, Beta: 0.6}
	p, _ := StratifiedPMF(4)
	taus := []int{4, 8, 12, 16, 24, 32}
	fft, err := CheckSNC(p, acf, taus)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := CheckSNCDirect(p, acf, taus)
	if err != nil {
		t.Fatal(err)
	}
	for i := range taus {
		if math.Abs(fft.Rg[i]-direct.Rg[i]) > 1e-9*direct.Rg[i] {
			t.Errorf("tau=%d: FFT %g vs direct %g", taus[i], fft.Rg[i], direct.Rg[i])
		}
	}
	if math.Abs(fft.BetaHat-direct.BetaHat) > 1e-9 {
		t.Errorf("betaHat: FFT %g vs direct %g", fft.BetaHat, direct.BetaHat)
	}
}

func TestNegBinomialRgMatchesSNC(t *testing.T) {
	// Eq. (10) evaluated analytically must agree with the FFT machinery
	// fed the geometric gap law.
	acf := lrd.PowerLawACF{Const: 1, Beta: 0.3}
	rho := 0.25
	p, _ := BernoulliPMF(rho, 1e-14)
	taus := []int{8, 16, 24, 32}
	snc, err := CheckSNC(p, acf, taus)
	if err != nil {
		t.Fatal(err)
	}
	for i, tau := range taus {
		direct, err := NegBinomialRg(acf, rho, tau)
		if err != nil {
			t.Fatal(err)
		}
		// Note: CheckSNC computes gaps from the *previous sample* so the
		// total displacement after tau gaps is tau + NB; NegBinomialRg is
		// the same mixture. They must agree to high accuracy.
		if math.Abs(snc.Rg[i]-direct) > 1e-6*direct {
			t.Errorf("tau=%d: SNC %g vs analytic %g", tau, snc.Rg[i], direct)
		}
	}
}

func TestNegBinomialRgErrors(t *testing.T) {
	acf := lrd.PowerLawACF{Const: 1, Beta: 0.3}
	if _, err := NegBinomialRg(acf, 0, 5); err == nil {
		t.Error("expected error for rho = 0")
	}
	if _, err := NegBinomialRg(acf, 1, 5); err == nil {
		t.Error("expected error for rho = 1")
	}
	if _, err := NegBinomialRg(acf, 0.5, 0); err == nil {
		t.Error("expected error for tau = 0")
	}
}

func TestNegBinomialRgRecoversBeta(t *testing.T) {
	// Figure 2 in miniature: fit the analytic Rg over a tau range and
	// recover beta.
	for _, beta := range []float64{0.1, 0.4, 0.8} {
		acf := lrd.PowerLawACF{Const: 100, Beta: beta}
		var lx, ly []float64
		for tau := 64; tau <= 512; tau *= 2 {
			rg, err := NegBinomialRg(acf, 0.5, tau)
			if err != nil {
				t.Fatal(err)
			}
			lx = append(lx, math.Log(float64(tau)))
			ly = append(ly, math.Log(rg))
		}
		// Manual slope from first/last (3+ points, near-perfect line).
		slope := (ly[len(ly)-1] - ly[0]) / (lx[len(lx)-1] - lx[0])
		if math.Abs(-slope-beta) > 0.03 {
			t.Errorf("beta=%g: fitted %g", beta, -slope)
		}
	}
}

func BenchmarkCheckSNCFFT(b *testing.B) {
	acf := lrd.PowerLawACF{Const: 1, Beta: 0.5}
	p, _ := StratifiedPMF(8)
	taus := sncTaus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CheckSNC(p, acf, taus); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckSNCDirect(b *testing.B) {
	acf := lrd.PowerLawACF{Const: 1, Beta: 0.5}
	p, _ := StratifiedPMF(8)
	taus := sncTaus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CheckSNCDirect(p, acf, taus); err != nil {
			b.Fatal(err)
		}
	}
}
