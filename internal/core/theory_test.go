package core

import (
	"math"
	"testing"
)

func TestNewBSSDesign(t *testing.T) {
	if _, err := NewBSSDesign(1); err == nil {
		t.Error("expected error for alpha = 1")
	}
	if _, err := NewBSSDesign(2.5); err == nil {
		t.Error("expected error for alpha > 2")
	}
	d, err := NewBSSDesign(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.EpsilonFloor(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("EpsilonFloor = %g, want 1/3", got)
	}
}

func TestThresholdRatioAndTrigger(t *testing.T) {
	d := BSSDesign{Alpha: 1.5}
	// eps = floor => c = 1 => every sample "triggers".
	if c := d.ThresholdRatio(d.EpsilonFloor()); math.Abs(c-1) > 1e-12 {
		t.Errorf("c at floor = %g, want 1", c)
	}
	if p := d.TriggerProb(d.EpsilonFloor()); p != 1 {
		t.Errorf("trigger prob at floor = %g, want 1", p)
	}
	// eps = 1 => c = 3 => trigger prob 3^-1.5.
	if p := d.TriggerProb(1); math.Abs(p-math.Pow(3, -1.5)) > 1e-12 {
		t.Errorf("trigger prob = %g", p)
	}
}

func TestQualifiedFraction(t *testing.T) {
	d := BSSDesign{Alpha: 1.3}
	// The paper's Figure 18(b): L = 10, eps ~ 1, alpha = 1.3 gives
	// overhead ~ 0.2.
	got := d.QualifiedFraction(10, 1.0)
	if got < 0.15 || got > 0.3 {
		t.Errorf("overhead = %g, want ~0.2 (paper Figure 18b)", got)
	}
	// Monotonic: decreasing in eps, increasing in L.
	if d.QualifiedFraction(10, 2) >= got {
		t.Error("overhead should fall as eps rises")
	}
	if d.QualifiedFraction(20, 1.0) <= got {
		t.Error("overhead should rise with L")
	}
	// Below the floor it saturates at L.
	if v := d.QualifiedFraction(5, 0.01); v != 5 {
		t.Errorf("sub-floor overhead = %g, want L", v)
	}
}

func TestBiasRatioShape(t *testing.T) {
	d := BSSDesign{Alpha: 1.5}
	const l, eta = 5.0, 0.15
	// xi -> 0 as eps -> 0.
	if xi := d.BiasRatio(l, 1e-6, eta); xi > 0.01 {
		t.Errorf("xi near 0 expected for tiny eps, got %g", xi)
	}
	// xi = 1 exactly at the epsilon floor when eta = 0... actually at the
	// floor c = 1: xi = ((1-eta) + Lq)/(1+Lq) with q = 1, c = 1:
	// ((1-eta)+L)/(1+L) < 1 for eta > 0, = 1 for eta = 0.
	if xi := d.BiasRatio(l, d.EpsilonFloor(), 0); math.Abs(xi-1) > 1e-12 {
		t.Errorf("xi at floor with eta=0 = %g, want 1", xi)
	}
	// xi -> 1 - eta as eps -> infinity.
	if xi := d.BiasRatio(l, 1e9, eta); math.Abs(xi-(1-eta)) > 1e-6 {
		t.Errorf("xi at huge eps = %g, want %g", xi, 1-eta)
	}
	// Unimodal with a peak above 1 for moderate eta.
	_, xiMax := d.XiPeak(l, eta)
	if xiMax <= 1 {
		t.Errorf("xi peak = %g, want > 1", xiMax)
	}
	// Invalid inputs.
	if !math.IsNaN(d.BiasRatio(l, 0, eta)) || !math.IsNaN(d.BiasRatio(-1, 1, eta)) {
		t.Error("invalid inputs should give NaN")
	}
}

func TestLUnbiasedMatchesPaperEq23(t *testing.T) {
	// Eq. (23): L = eta * c^(2 alpha) / (c - 1).
	d := BSSDesign{Alpha: 1.5}
	for _, tc := range []struct{ eps, eta float64 }{
		{1.0, 0.2}, {1.5, 0.35}, {2.0, 0.1},
	} {
		c := d.ThresholdRatio(tc.eps)
		want := tc.eta * math.Pow(c, 2*d.Alpha) / (c - 1)
		got, err := d.LUnbiased(tc.eps, tc.eta)
		if err != nil {
			t.Fatalf("eps=%g eta=%g: %v", tc.eps, tc.eta, err)
		}
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("eps=%g eta=%g: L = %g, want %g", tc.eps, tc.eta, got, want)
		}
		// Consistency: plugging L back gives xi = 1.
		if xi := d.BiasRatio(got, tc.eps, tc.eta); math.Abs(xi-1) > 1e-9 {
			t.Errorf("round trip xi = %g, want 1", xi)
		}
	}
	if _, err := d.LUnbiased(1.0, -0.1); err == nil {
		t.Error("expected error for negative eta")
	}
	if _, err := d.LUnbiased(1.0, 1); err == nil {
		t.Error("expected error for eta = 1")
	}
	if _, err := d.LUnbiased(0.2, 0.2); err == nil {
		t.Error("expected error below the epsilon floor (c <= 1)")
	}
	if _, err := d.LForTarget(0, 0.2, 1); err == nil {
		t.Error("expected error for eps = 0")
	}
}

func TestPaperUnbiasedParameterPairs(t *testing.T) {
	// The paper's Figure 12 uses (L=10, eps=2.55) and (L=8, eps=2.28) for
	// synthetic traces (alpha = 1.5) and calls both "xi = 1"; under our
	// derivation both pairs solve xi = 1 for the same eta (~0.15),
	// confirming the reconstruction. Figure 13's real-trace pairs
	// (alpha = 1.71): (L=10, eps=1.809), (L=8, eps=1.68) at eta ~0.21.
	check := func(alpha float64, pairs [][2]float64, wantEta, tol float64) {
		t.Helper()
		d := BSSDesign{Alpha: alpha}
		etas := make([]float64, len(pairs))
		for i, pr := range pairs {
			l, eps := pr[0], pr[1]
			c := d.ThresholdRatio(eps)
			etas[i] = l * math.Pow(c, -2*alpha) * (c - 1) // solve Eq. 23 for eta
			if math.Abs(etas[i]-wantEta) > tol {
				t.Errorf("alpha=%g pair %v implies eta=%.3f, want ~%.2f", alpha, pr, etas[i], wantEta)
			}
		}
		if math.Abs(etas[0]-etas[1]) > 0.02 {
			t.Errorf("alpha=%g: pairs imply different eta (%.3f vs %.3f) — they should lie on one xi=1 contour", alpha, etas[0], etas[1])
		}
	}
	check(1.5, [][2]float64{{10, 2.55}, {8, 2.28}}, 0.15, 0.02)
	check(1.71, [][2]float64{{10, 1.809}, {8, 1.68}}, 0.21, 0.03)
}

func TestEpsRoots(t *testing.T) {
	d := BSSDesign{Alpha: 1.5}
	const l, eta = 5.0, 0.15
	eps1, eps2, err := d.EpsRoots(l, eta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eps1 >= eps2 {
		t.Fatalf("roots out of order: %g >= %g", eps1, eps2)
	}
	// Both roots give xi = 1.
	for _, e := range []float64{eps1, eps2} {
		if xi := d.BiasRatio(l, e, eta); math.Abs(xi-1) > 1e-6 {
			t.Errorf("xi(%g) = %g, want 1", e, xi)
		}
	}
	// The paper's observation: eps1 is near (alpha-1)/alpha and nearly
	// independent of L.
	if math.Abs(eps1-d.EpsilonFloor()) > 0.15 {
		t.Errorf("eps1 = %g, want near the floor %g", eps1, d.EpsilonFloor())
	}
	_, eps1b, _ := func() (float64, float64, error) { return d.EpsRoots(10, eta, 1) }()
	_ = eps1b
	e1L10, e2L10, err := d.EpsRoots(10, eta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e1L10-eps1) > 0.1 {
		t.Errorf("eps1 moved too much with L: %g vs %g", e1L10, eps1)
	}
	// eps2 increases with L.
	if e2L10 <= eps2 {
		t.Errorf("eps2 should increase with L: L=5 gives %g, L=10 gives %g", eps2, e2L10)
	}
	// Unreachable target errors out.
	if _, _, err := d.EpsRoots(0.01, 0.0, 1.5); err == nil {
		t.Error("expected error for unreachable target")
	}
	if _, _, err := d.EpsRoots(0, eta, 1); err == nil {
		t.Error("expected error for L = 0")
	}
	// EpsForTarget returns the upper branch.
	got, err := d.EpsForTarget(l, eta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-eps2) > 1e-9 {
		t.Errorf("EpsForTarget = %g, want upper root %g", got, eps2)
	}
}

func TestBurstPersistence(t *testing.T) {
	// Eq. (20): monotone increasing to 1 for heavy tails.
	prev := 0.0
	for tau := 1.0; tau <= 1000; tau *= 2 {
		p := BurstPersistence(tau, 1.3)
		if p <= prev || p >= 1 {
			t.Errorf("persistence at tau=%g is %g (prev %g)", tau, p, prev)
		}
		prev = p
	}
	if p := BurstPersistence(1e9, 1.3); p < 0.999 {
		t.Errorf("persistence should approach 1, got %g", p)
	}
	if !math.IsNaN(BurstPersistence(0, 1.3)) {
		t.Error("tau = 0 should give NaN")
	}
	// Eq. (19): constant for light tails, independent of tau by
	// construction.
	if p := BurstPersistenceLight(0.5); math.Abs(p-math.Exp(-0.5)) > 1e-12 {
		t.Errorf("light persistence = %g", p)
	}
	if !math.IsNaN(BurstPersistenceLight(0)) {
		t.Error("c2 = 0 should give NaN")
	}
}

func TestEtaFromRate(t *testing.T) {
	// Eq. (35): eta falls as the rate rises, power 1/alpha - 1. Note the
	// paper's quoted Cs range (0.25-0.35) is incompatible with eta <= 1 at
	// its own rates; Cs is a per-trace calibration constant (~0.01-0.05
	// for our traces, see EXPERIMENTS.md).
	const cs = 0.03
	eta3 := EtaFromRate(1e-3, 1.5, cs)
	eta2 := EtaFromRate(1e-2, 1.5, cs)
	if !(eta3 > eta2) {
		t.Errorf("eta should fall with rate: %g vs %g", eta3, eta2)
	}
	want := cs * math.Pow(1e-2, 1/1.5-1)
	if math.Abs(eta2-want) > 1e-12 {
		t.Errorf("eta(1e-2) = %g, want %g", eta2, want)
	}
	// Far below any plausible rate the law clamps at 0.99.
	if got := EtaFromRate(1e-9, 1.5, cs); got != 0.99 {
		t.Errorf("clamp failed: %g", got)
	}
	for _, bad := range [][3]float64{{0, 1.5, cs}, {1.5, 1.5, cs}, {0.1, 1, cs}, {0.1, 1.5, 0}} {
		if !math.IsNaN(EtaFromRate(bad[0], bad[1], bad[2])) {
			t.Errorf("expected NaN for %v", bad)
		}
	}
}

func TestDesignForRate(t *testing.T) {
	d := BSSDesign{Alpha: 1.3}
	l, eta, err := d.DesignForRate(1e-3, 1.0, 0.3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if eta <= 0 || eta > 0.99 {
		t.Errorf("eta = %g out of range", eta)
	}
	if l < 1 || l > 50 {
		t.Errorf("L = %d outside [1, 50]", l)
	}
	// Lower rate => larger bias => more extra samples (until the clamp).
	lLow, _, err := d.DesignForRate(1e-5, 1.0, 0.3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	lHigh, _, err := d.DesignForRate(1e-1, 1.0, 0.3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if lLow < lHigh {
		t.Errorf("L should not rise with rate: L(1e-5)=%d, L(1e-1)=%d", lLow, lHigh)
	}
	if _, _, err := d.DesignForRate(0, 1.0, 0.3, 50); err == nil {
		t.Error("expected error for rate 0")
	}
	if _, _, err := d.DesignForRate(1e-3, 0.1, 0.3, 50); err == nil {
		t.Error("expected error below the epsilon floor")
	}
}
