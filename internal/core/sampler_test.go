package core

import (
	"math"
	"testing"
	"testing/quick"
)

func seq(n int) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = float64(i)
	}
	return f
}

func TestSystematicValidation(t *testing.T) {
	if _, err := NewSystematic(0, 0); err == nil {
		t.Error("expected error for interval 0")
	}
	if _, err := NewSystematic(4, 4); err == nil {
		t.Error("expected error for offset == interval")
	}
	if _, err := NewSystematic(4, -1); err == nil {
		t.Error("expected error for negative offset")
	}
	s, err := NewSystematic(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "systematic" {
		t.Errorf("name = %q", s.Name())
	}
	if _, err := (Systematic{Interval: 0}).Sample(seq(8)); err == nil {
		t.Error("Sample should re-validate")
	}
	if _, err := s.Sample(nil); err == nil {
		t.Error("expected error for empty series")
	}
}

func TestSystematicIndices(t *testing.T) {
	s := Systematic{Interval: 3, Offset: 1}
	got, err := s.Sample(seq(10))
	if err != nil {
		t.Fatal(err)
	}
	wantIdx := []int{1, 4, 7}
	if len(got) != len(wantIdx) {
		t.Fatalf("got %d samples, want %d", len(got), len(wantIdx))
	}
	for i, w := range wantIdx {
		if got[i].Index != w || got[i].Value != float64(w) || got[i].Qualified {
			t.Errorf("sample %d = %+v, want index %d", i, got[i], w)
		}
	}
}

func TestSystematicDeterministic(t *testing.T) {
	f := seq(100)
	s := Systematic{Interval: 7}
	a, _ := s.Sample(f)
	b, _ := s.Sample(f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("systematic sampling must be deterministic")
		}
	}
}

func TestStratifiedOnePerStratum(t *testing.T) {
	prop := func(seed uint64, cRaw uint8) bool {
		c := int(cRaw%16) + 1
		s, err := NewStratified(c, newRand(seed))
		if err != nil {
			return false
		}
		f := seq(16 * c)
		got, err := s.Sample(f)
		if err != nil {
			return false
		}
		if len(got) != 16 {
			return false
		}
		for i, smp := range got {
			if smp.Index < i*c || smp.Index >= (i+1)*c {
				return false
			}
			if smp.Value != f[smp.Index] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStratifiedValidation(t *testing.T) {
	if _, err := NewStratified(0, newRand(1)); err == nil {
		t.Error("expected error for interval 0")
	}
	if _, err := NewStratified(4, nil); err == nil {
		t.Error("expected error for nil rng")
	}
	s, _ := NewStratified(4, newRand(1))
	if s.Name() != "stratified" {
		t.Errorf("name = %q", s.Name())
	}
	if _, err := s.Sample(nil); err == nil {
		t.Error("expected error for empty series")
	}
	if _, err := (Stratified{Interval: 2}).Sample(seq(8)); err == nil {
		t.Error("expected error for nil rng at sample time")
	}
}

func TestSimpleRandomWithoutReplacement(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		s, err := NewSimpleRandom(n, newRand(seed))
		if err != nil {
			return false
		}
		f := seq(200)
		got, err := s.Sample(f)
		if err != nil || len(got) != n {
			return false
		}
		seen := make(map[int]bool, n)
		last := -1
		for _, smp := range got {
			if seen[smp.Index] || smp.Index <= last || smp.Index >= len(f) {
				return false
			}
			seen[smp.Index] = true
			last = smp.Index
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSimpleRandomValidation(t *testing.T) {
	if _, err := NewSimpleRandom(0, newRand(1)); err == nil {
		t.Error("expected error for n = 0")
	}
	if _, err := NewSimpleRandom(5, nil); err == nil {
		t.Error("expected error for nil rng")
	}
	s, _ := NewSimpleRandom(10, newRand(1))
	if s.Name() != "simple-random" {
		t.Errorf("name = %q", s.Name())
	}
	if _, err := s.Sample(seq(5)); err == nil {
		t.Error("expected error for n > population")
	}
	if _, err := s.Sample(nil); err == nil {
		t.Error("expected error for empty series")
	}
}

func TestSimpleRandomUniformCoverage(t *testing.T) {
	// Every position should be picked roughly equally often.
	const popLen, picks, reps = 50, 10, 4000
	counts := make([]int, popLen)
	f := seq(popLen)
	for r := 0; r < reps; r++ {
		s, _ := NewSimpleRandom(picks, newRand(uint64(r)))
		got, err := s.Sample(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, smp := range got {
			counts[smp.Index]++
		}
	}
	want := float64(picks*reps) / popLen
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.25 {
			t.Errorf("position %d picked %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestBernoulliSampling(t *testing.T) {
	if _, err := NewBernoulli(0, newRand(1)); err == nil {
		t.Error("expected error for rate 0")
	}
	if _, err := NewBernoulli(1.5, newRand(1)); err == nil {
		t.Error("expected error for rate > 1")
	}
	if _, err := NewBernoulli(0.5, nil); err == nil {
		t.Error("expected error for nil rng")
	}
	b, _ := NewBernoulli(0.25, newRand(3))
	if b.Name() != "bernoulli" {
		t.Errorf("name = %q", b.Name())
	}
	f := seq(100000)
	got, err := b.Sample(f)
	if err != nil {
		t.Fatal(err)
	}
	if n := float64(len(got)); math.Abs(n-25000) > 1000 {
		t.Errorf("kept %g samples, want ~25000", n)
	}
	if _, err := b.Sample(nil); err == nil {
		t.Error("expected error for empty series")
	}
	if _, err := (Bernoulli{Rate: 0.5}).Sample(f); err == nil {
		t.Error("expected error for nil rng at sample time")
	}
}

func TestBernoulliGapsAreGeometric(t *testing.T) {
	// Eq. (13): gap law Pr(T=k) = (1-r)^(k-1) r; the mean gap is 1/r.
	b, _ := NewBernoulli(0.2, newRand(9))
	got, err := b.Sample(seq(200000))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 1; i < len(got); i++ {
		sum += float64(got[i].Index - got[i-1].Index)
	}
	meanGap := sum / float64(len(got)-1)
	if math.Abs(meanGap-5) > 0.2 {
		t.Errorf("mean gap %g, want ~5", meanGap)
	}
}

func TestAllSamplersAreUnbiasedOnIID(t *testing.T) {
	// On light-tailed i.i.d. data every technique estimates the mean well —
	// the paper's point is that this breaks for heavy tails, not here.
	rng := newRand(1234)
	f := make([]float64, 100000)
	for i := range f {
		f[i] = rng.Float64() * 10
	}
	trueMean := MeanOf(mustSample(t, Systematic{Interval: 1}, f))
	samplers := []Sampler{
		Systematic{Interval: 100, Offset: 13},
		Stratified{Interval: 100, Rng: newRand(5)},
		SimpleRandom{N: 1000, Rng: newRand(6)},
		Bernoulli{Rate: 0.01, Rng: newRand(7)},
	}
	for _, s := range samplers {
		m := MeanOf(mustSample(t, s, f))
		if math.Abs(m-trueMean) > 0.35 {
			t.Errorf("%s: mean %g vs true %g", s.Name(), m, trueMean)
		}
	}
}

func mustSample(t *testing.T, s Sampler, f []float64) []Sample {
	t.Helper()
	got, err := s.Sample(f)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	return got
}
