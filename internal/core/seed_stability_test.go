package core

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/seed_stability.golden from the current output")

// seedStabilitySpecs pins one representative parameterization per
// technique. The trace length exercises several strata, reservoir
// replacements and Bernoulli skips, but keeps the golden file small.
var seedStabilitySpecs = []string{
	"systematic:interval=256,offset=3",
	"stratified:interval=256,seed=7",
	"simple:n=40,seed=7",
	"simple:rate=0.005,seed=7",
	"bernoulli:rate=0.005,seed=7",
	"bss:interval=256,L=4,eps=1.0",
}

// TestSeedStability is the repo's cross-version determinism anchor:
// under a fixed seed, each technique's kept-index sequence is pinned to
// a committed golden file. A diff here means a code change silently
// moved which ticks get sampled — if that is intended (a new kernel
// with a different draw order), regenerate with
//
//	go test ./internal/core -run TestSeedStability -update
//
// and call the change out in the commit message; if not, it is a
// regression. The golden file was regenerated when the skip-based
// kernels replaced the per-tick draws for simple random and Bernoulli
// sampling (their RNG spend changed; systematic, stratified and BSS
// kept their original sequences byte for byte).
func TestSeedStability(t *testing.T) {
	f := streamTestTrace(8192)
	var buf bytes.Buffer
	for _, spec := range seedStabilitySpecs {
		eng, err := LookupStream(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		samples, err := Collect(eng, f)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		fmt.Fprintf(&buf, "%s:", spec)
		for _, s := range samples {
			fmt.Fprintf(&buf, " %d", s.Index)
		}
		buf.WriteByte('\n')
	}

	path := filepath.Join("testdata", "seed_stability.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to generate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		gotLines := bytes.Split(buf.Bytes(), []byte("\n"))
		wantLines := bytes.Split(want, []byte("\n"))
		for i := range gotLines {
			if i >= len(wantLines) || !bytes.Equal(gotLines[i], wantLines[i]) {
				t.Errorf("kept-index sequence drifted at line %d:\n got: %.120s\nwant: %.120s",
					i+1, gotLines[i], lineOrMissing(wantLines, i))
			}
		}
		t.Fatalf("seed stability broken: regenerate with -update ONLY if the draw-order change is intentional")
	}
}

func lineOrMissing(lines [][]byte, i int) []byte {
	if i < len(lines) {
		return lines[i]
	}
	return []byte("<missing>")
}
