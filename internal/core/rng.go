package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
)

// Rand couples a *rand.Rand with the *rand.PCG source it draws from, so
// the generator's exact position in its stream can be captured and
// restored. rand.Rand itself keeps no state beyond its Source, and PCG
// implements encoding.BinaryMarshaler, which is what makes an exact
// snapshot possible: a restored Rand produces the byte-identical draw
// sequence the original would have continued with.
//
// Rand embeds *rand.Rand, so it is a drop-in replacement at every draw
// site (IntN, Float64, ...). Construct with NewSeededRand; the zero
// value is not usable.
type Rand struct {
	*rand.Rand
	pcg *rand.PCG
}

// ErrStateUnavailable is wrapped by state-capture methods when a
// component carries a random source whose position cannot be exported
// (a nil or foreign Rand).
var ErrStateUnavailable = errors.New("core: random source state unavailable")

// NewSeededRand builds the repo's standard deterministic generator: a
// PCG seeded from one uint64 (the second word is the golden-ratio
// scramble of the first, mirroring dist.NewRand), wrapped so its state
// stays exportable.
func NewSeededRand(seed uint64) *Rand {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &Rand{Rand: rand.New(pcg), pcg: pcg}
}

// appendState appends the generator's marshaled PCG position as a
// length-prefixed blob.
func (r *Rand) appendState(dst []byte) ([]byte, error) {
	if r == nil || r.pcg == nil {
		return nil, fmt.Errorf("core: cannot capture RNG position: %w", ErrStateUnavailable)
	}
	b, err := r.pcg.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("core: marshal PCG state: %w", err)
	}
	return appendBlob(dst, b), nil
}

// restoreState repositions the generator from a blob written by
// appendState.
func (r *Rand) restoreState(b []byte) error {
	if r == nil || r.pcg == nil {
		return fmt.Errorf("core: cannot restore RNG position: %w", ErrStateUnavailable)
	}
	if err := r.pcg.UnmarshalBinary(b); err != nil {
		return fmt.Errorf("core: restore PCG state: %w", err)
	}
	return nil
}
