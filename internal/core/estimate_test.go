package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func TestMeanOf(t *testing.T) {
	if !math.IsNaN(MeanOf(nil)) {
		t.Error("MeanOf(nil) should be NaN")
	}
	s := []Sample{{Value: 2}, {Value: 4}, {Value: 9}}
	if got := MeanOf(s); got != 5 {
		t.Errorf("MeanOf = %g, want 5", got)
	}
}

func TestCountKindsAndOverhead(t *testing.T) {
	s := []Sample{{Qualified: false}, {Qualified: true}, {Qualified: true}, {Qualified: false}}
	base, q := CountKinds(s)
	if base != 2 || q != 2 {
		t.Errorf("CountKinds = (%d, %d), want (2, 2)", base, q)
	}
	if got := Overhead(s); got != 1 {
		t.Errorf("Overhead = %g, want 1", got)
	}
	if !math.IsNaN(Overhead([]Sample{{Qualified: true}})) {
		t.Error("Overhead with no base samples should be NaN")
	}
}

func TestEta(t *testing.T) {
	if got := Eta(8, 10); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Eta = %g, want 0.2", got)
	}
	if got := Eta(12, 10); math.Abs(got+0.2) > 1e-12 {
		t.Errorf("Eta = %g, want -0.2 (overshoot)", got)
	}
	if !math.IsNaN(Eta(5, 0)) {
		t.Error("Eta with zero real mean should be NaN")
	}
}

func TestEfficiency(t *testing.T) {
	// e = (1 - |eta|) / log10(Nt).
	if got := Efficiency(0.2, 1000); math.Abs(got-0.8/3) > 1e-12 {
		t.Errorf("Efficiency = %g, want %g", got, 0.8/3)
	}
	// Overshoot penalized symmetrically.
	if Efficiency(-0.2, 1000) != Efficiency(0.2, 1000) {
		t.Error("efficiency should be symmetric in eta")
	}
	if !math.IsNaN(Efficiency(0.1, 1)) {
		t.Error("efficiency with < 2 samples should be NaN")
	}
}

func TestRunInstancesSystematic(t *testing.T) {
	f := seq(1000)
	realMean := stats.Mean(f)
	const n = 10
	st, err := RunInstances(f, realMean, n, SystematicInstances(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Means) != n {
		t.Fatalf("means = %d, want %d", len(st.Means), n)
	}
	// For a linear ramp, instance i (offset o_i) has mean
	// realMean + (o_i - 4.5); verify against the spread-offset schedule.
	var wantGrand, wantVar float64
	for i := 0; i < n; i++ {
		o := float64(SpreadOffset(i, 10))
		wantGrand += (realMean + o - 4.5) / n
		wantVar += (o - 4.5) * (o - 4.5) / n
	}
	if math.Abs(st.GrandMean-wantGrand) > 1e-9 {
		t.Errorf("grand mean %g, want %g", st.GrandMean, wantGrand)
	}
	if math.Abs(st.AvgVariance-wantVar) > 1e-9 {
		t.Errorf("avg variance %g, want %g", st.AvgVariance, wantVar)
	}
	if st.AvgSamples != 100 {
		t.Errorf("avg samples %g, want 100", st.AvgSamples)
	}
	if st.AvgOverhead != 0 {
		t.Errorf("systematic instances should report zero overhead, got %g", st.AvgOverhead)
	}
}

func TestSpreadOffsetCoverage(t *testing.T) {
	// Offsets stay in range and cover the interval roughly uniformly.
	const interval = 100
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		o := SpreadOffset(i, interval)
		if o < 0 || o >= interval {
			t.Fatalf("offset %d out of range", o)
		}
		seen[o] = true
	}
	if len(seen) < interval/2 {
		t.Errorf("only %d distinct offsets out of %d", len(seen), interval)
	}
}

func TestRunInstancesErrors(t *testing.T) {
	f := seq(100)
	if _, err := RunInstances(f, 0, 0, SystematicInstances(10)); err == nil {
		t.Error("expected error for zero instances")
	}
	if _, err := RunInstances(nil, 0, 2, SystematicInstances(10)); err == nil {
		t.Error("expected error for empty series")
	}
	factoryErr := func(int) (Sampler, error) { return nil, fmt.Errorf("boom") }
	if _, err := RunInstances(f, 0, 2, factoryErr); err == nil {
		t.Error("expected factory error to propagate")
	}
	sampleErr := func(int) (Sampler, error) { return Systematic{Interval: 0}, nil }
	if _, err := RunInstances(f, 0, 2, sampleErr); err == nil {
		t.Error("expected sampling error to propagate")
	}
}

func TestTheorem2OrderingOnLRDTraffic(t *testing.T) {
	// The paper's Theorem 2 + Figure 5: on LRD traffic,
	// E(Vsy) <= E(Vrs) <= E(Vran). Statistical, so allow slack but demand
	// the systematic <= simple-random ordering strictly and stratified in
	// between-ish.
	cfg := traffic.OnOffConfig{
		Sources: 32, AlphaOn: 1.4, AlphaOff: 1.4,
		MeanOn: 10, MeanOff: 30, Rate: 1, Ticks: 1 << 17,
	}
	f, err := traffic.GenerateOnOff(cfg, dist.NewRand(31))
	if err != nil {
		t.Fatal(err)
	}
	realMean := stats.Mean(f)
	const interval = 256
	const instances = 64
	sy, err := RunInstances(f, realMean, instances, SystematicInstances(interval))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunInstances(f, realMean, instances, StratifiedInstances(interval, 1000))
	if err != nil {
		t.Fatal(err)
	}
	ran, err := RunInstances(f, realMean, instances, SimpleRandomInstances(len(f)/interval, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if !(sy.AvgVariance <= ran.AvgVariance*1.05) {
		t.Errorf("E(Vsy)=%g should not exceed E(Vran)=%g", sy.AvgVariance, ran.AvgVariance)
	}
	if !(sy.AvgVariance <= rs.AvgVariance*1.25) {
		t.Errorf("E(Vsy)=%g should be <= E(Vrs)=%g (with slack)", sy.AvgVariance, rs.AvgVariance)
	}
	if !(rs.AvgVariance <= ran.AvgVariance*1.25) {
		t.Errorf("E(Vrs)=%g should be <= E(Vran)=%g (with slack)", rs.AvgVariance, ran.AvgVariance)
	}
}

func TestBSSInstancesFactory(t *testing.T) {
	cfg := BSS{Interval: 10, L: 3, Epsilon: 1}
	factory := BSSInstances(cfg)
	s0, err := factory(0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := factory(1)
	if err != nil {
		t.Fatal(err)
	}
	if s0.(BSS).Offset != SpreadOffset(0, 10) || s1.(BSS).Offset != SpreadOffset(1, 10) {
		t.Errorf("offsets = %d, %d; want spread schedule", s0.(BSS).Offset, s1.(BSS).Offset)
	}
	bad := BSSInstances(BSS{Interval: 10, L: -2, Epsilon: 1})
	if _, err := bad(0); err == nil {
		t.Error("expected invalid config to error")
	}
}

func TestSampledSeries(t *testing.T) {
	s := []Sample{{Index: 3, Value: 7}, {Index: 9, Value: 2}}
	got := SampledSeries(s)
	if len(got) != 2 || got[0] != 7 || got[1] != 2 {
		t.Errorf("SampledSeries = %v", got)
	}
}

func TestSamplersUnderestimateHeavyTailedMean(t *testing.T) {
	// Section V-A: at low rates, the sampled mean of a heavy-tailed series
	// typically under-shoots the real mean, because the rare huge values
	// carry much of the mass. Check the grand mean over instances sits
	// below the real mean for both systematic and simple random sampling.
	rng := dist.NewRand(555)
	p := dist.Pareto{Alpha: 1.2, Xm: 1}
	f := make([]float64, 1<<19)
	for i := range f {
		f[i] = p.Sample(rng)
	}
	realMean := stats.Mean(f)
	const interval = 4096 // rate ~2.4e-4
	const instances = 32
	sy, err := RunInstances(f, realMean, instances, SystematicInstances(interval))
	if err != nil {
		t.Fatal(err)
	}
	ran, err := RunInstances(f, realMean, instances, SimpleRandomInstances(len(f)/interval, 77))
	if err != nil {
		t.Fatal(err)
	}
	// The estimator is unbiased in expectation, but the skew means the
	// *typical* instance under-shoots: most instances miss the rare giant
	// values. Check that a clear majority of instances land below the real
	// mean.
	for _, tc := range []struct {
		name string
		st   InstanceStats
	}{{"systematic", sy}, {"simple-random", ran}} {
		under := 0
		for _, m := range tc.st.Means {
			if m < realMean {
				under++
			}
		}
		if under < instances*6/10 {
			t.Errorf("%s: only %d/%d instances under-estimate; heavy-tail skew should make most undershoot", tc.name, under, instances)
		}
	}
}
