package core

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// MeanOf returns the plain average of the sampled values — the estimator
// of the process mean that the whole paper is about. NaN for no samples.
func MeanOf(samples []Sample) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range samples {
		s += x.Value
	}
	return s / float64(len(samples))
}

// CountKinds returns how many base and qualified samples the slice holds.
func CountKinds(samples []Sample) (base, qualified int) {
	for _, s := range samples {
		if s.Qualified {
			qualified++
		} else {
			base++
		}
	}
	return base, qualified
}

// Eta returns the paper's relative mean bias eta = 1 - sampledMean/realMean
// (Eq. 21). Positive eta means under-estimation.
func Eta(sampledMean, realMean float64) float64 {
	if realMean == 0 {
		return math.NaN()
	}
	return 1 - sampledMean/realMean
}

// Overhead is the paper's BSS cost metric: qualified samples divided by
// base (systematic) samples. Zero for the classic samplers.
func Overhead(samples []Sample) float64 {
	base, qualified := CountKinds(samples)
	if base == 0 {
		return math.NaN()
	}
	return float64(qualified) / float64(base)
}

// Efficiency is the paper's Section VI metric e = (1 - eta) / log10(Nt),
// rewarding accuracy per order of magnitude of samples taken. Nt counts
// every kept sample (base + qualified). We use 1 - |eta| so that
// over-estimation is penalized symmetrically; for the under-estimating
// regimes the paper reports, the two definitions coincide.
func Efficiency(eta float64, totalSamples int) float64 {
	if totalSamples < 2 {
		return math.NaN()
	}
	return (1 - math.Abs(eta)) / math.Log10(float64(totalSamples))
}

// InstanceStats aggregates repeated sampling experiments ("instances" in
// the paper's terminology: different systematic offsets, or different
// random draws at the same rate).
type InstanceStats struct {
	Means       []float64 // per-instance sampled means
	GrandMean   float64   // average of the sampled means
	AvgVariance float64   // E[(Xi - realMean)^2], the paper's E(V)
	AvgEta      float64   // Eta(GrandMean, realMean)
	AvgSamples  float64   // average kept samples per instance
	AvgOverhead float64   // average qualified/base ratio (NaN if no base)
}

// RunInstances executes n independent sampling instances produced by
// factory and reduces them against the known real mean. The factory
// receives the instance number (0..n-1) and typically varies the
// systematic offset or the random seed.
func RunInstances(f []float64, realMean float64, n int, factory func(instance int) (Sampler, error)) (InstanceStats, error) {
	if n < 1 {
		return InstanceStats{}, fmt.Errorf("core: need at least one instance, got %d", n)
	}
	if len(f) == 0 {
		return InstanceStats{}, fmt.Errorf("core: cannot sample an empty series")
	}
	st := InstanceStats{Means: make([]float64, 0, n)}
	var sqErr, samples, overheadSum float64
	overheadN := 0
	for i := 0; i < n; i++ {
		s, err := factory(i)
		if err != nil {
			return InstanceStats{}, fmt.Errorf("core: building instance %d: %w", i, err)
		}
		got, err := s.Sample(f)
		if err != nil {
			return InstanceStats{}, fmt.Errorf("core: sampling instance %d: %w", i, err)
		}
		m := MeanOf(got)
		st.Means = append(st.Means, m)
		d := m - realMean
		sqErr += d * d
		samples += float64(len(got))
		if oh := Overhead(got); !math.IsNaN(oh) {
			overheadSum += oh
			overheadN++
		}
	}
	st.GrandMean = stats.Mean(st.Means)
	st.AvgVariance = sqErr / float64(n)
	st.AvgEta = Eta(st.GrandMean, realMean)
	st.AvgSamples = samples / float64(n)
	if overheadN > 0 {
		st.AvgOverhead = overheadSum / float64(overheadN)
	} else {
		st.AvgOverhead = math.NaN()
	}
	return st, nil
}

// SystematicInstances returns a factory producing systematic samplers
// whose offsets are spread evenly across the sampling interval — the
// paper's notion of distinct systematic instances ("different starting
// sampling points"). Spreading (rather than using adjacent offsets)
// keeps instances decorrelated on bursty traffic, where a burst spanning
// a few ticks would otherwise be caught by several near-identical
// instances at once.
func SystematicInstances(interval int) func(int) (Sampler, error) {
	return func(i int) (Sampler, error) {
		return NewSystematic(interval, SpreadOffset(i, interval))
	}
}

// SpreadOffset maps instance i to an offset in [0, interval) using a
// golden-ratio low-discrepancy sequence, so any number of instances
// covers the interval roughly uniformly without collisions.
func SpreadOffset(i, interval int) int {
	const golden = 0.6180339887498949
	off := int(math.Mod(float64(i)*golden, 1) * float64(interval))
	if off >= interval {
		off = interval - 1
	}
	return off
}

// StratifiedInstances returns a factory seeding one stratified sampler per
// instance.
func StratifiedInstances(interval int, baseSeed uint64) func(int) (Sampler, error) {
	return func(i int) (Sampler, error) {
		return NewStratified(interval, newRand(baseSeed+uint64(i)*0x9e3779b9))
	}
}

// SimpleRandomInstances returns a factory drawing n-sample simple random
// instances.
func SimpleRandomInstances(n int, baseSeed uint64) func(int) (Sampler, error) {
	return func(i int) (Sampler, error) {
		return NewSimpleRandom(n, newRand(baseSeed+uint64(i)*0x9e3779b9))
	}
}

// BSSInstances returns a factory spreading BSS offsets across the
// interval, holding the rest of the configuration fixed.
func BSSInstances(cfg BSS) func(int) (Sampler, error) {
	return func(i int) (Sampler, error) {
		c := cfg
		c.Offset = SpreadOffset(i, cfg.Interval)
		if err := c.validate(); err != nil {
			return nil, err
		}
		return c, nil
	}
}

// SampledSeries extracts the values of the samples in time order, the
// "sampled process" g(t) whose Hurst parameter Sections III and VI
// estimate.
func SampledSeries(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.Value
	}
	return out
}
