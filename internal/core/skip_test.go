package core

import (
	"math"
	"sort"
	"testing"
)

// The skip-based kernels change HOW randomness is spent, never WHAT is
// sampled. Two invariant families pin that:
//
//   - state-machine equivalence: on one instance, any mix of Offer and
//     OfferBatch calls yields exactly the per-tick sample sequence
//     (same RNG spend, same indices, same values);
//   - distributional equality: where the kernels spend randomness
//     differently from the retired per-tick draws (Bernoulli's
//     geometric gaps, simple random's reservoir/Floyd selection), the
//     sampling law itself is unchanged — kept-ratio confidence
//     intervals, mean/variance bias, KS distance on inter-sample gaps,
//     and inclusion uniformity below.

// uniformTrace is a deterministic uniform(0,1) series: finite moments
// (mean 1/2, variance 1/12) so the bias tolerances below are plain CLT
// arithmetic, unlike the heavy-tailed traces elsewhere in the suite.
func uniformTrace(n int, seed uint64) []float64 {
	rng := newRand(seed)
	f := make([]float64, n)
	for i := range f {
		f[i] = rng.Float64()
	}
	return f
}

// batchSpecs names every technique with a BatchStreamer kernel, in both
// parameterizations where the technique has two.
var batchSpecs = []string{
	"systematic:interval=37,offset=5",
	"systematic:interval=1",
	"stratified:interval=41,seed=11",
	"stratified:interval=1,seed=3",
	"simple:n=500,seed=12",
	"simple:rate=0.01,seed=13",
	"bernoulli:rate=0.02,seed=14",
	"bernoulli:rate=1,seed=2",
}

// runTicks drives the per-tick reference form.
func runTicks(t *testing.T, spec string, f []float64) []Sample {
	t.Helper()
	eng, err := LookupStream(spec)
	if err != nil {
		t.Fatalf("%s: %v", spec, err)
	}
	out, err := Collect(eng, f)
	if err != nil {
		t.Fatalf("%s: %v", spec, err)
	}
	return out
}

// runBatches drives the batch kernel over the given chunk sizes,
// cycling through them until the series is consumed.
func runBatches(t *testing.T, spec string, f []float64, sizes []int) []Sample {
	t.Helper()
	eng, err := LookupStream(spec)
	if err != nil {
		t.Fatalf("%s: %v", spec, err)
	}
	bs, ok := eng.(BatchStreamer)
	if !ok {
		t.Fatalf("%s: no BatchStreamer kernel", spec)
	}
	var out []Sample
	for off, c := 0, 0; off < len(f); c++ {
		end := off + sizes[c%len(sizes)]
		if end > len(f) {
			end = len(f)
		}
		out = bs.OfferBatch(off, f[off:end], out)
		off = end
	}
	tail, err := eng.Finish()
	if err != nil {
		t.Fatalf("%s: finish: %v", spec, err)
	}
	return append(out, tail...)
}

// TestBatchKernelMatchesOffer is the tentpole's correctness anchor: for
// every kernel and several adversarial batch shapes (single ticks,
// chunks straddling strata, chunks larger than the skip), the batch
// form emits exactly the per-tick sample sequence.
func TestBatchKernelMatchesOffer(t *testing.T) {
	f := streamTestTrace(30000)
	shapes := [][]int{
		{1},                  // batch form degenerates to per-tick
		{129},                // non-divisor chunks
		{512},                // the serving layer's typical batch
		{1, 7, 41, 513, 129}, // ragged mix
		{30000},              // the whole stream at once
	}
	for _, spec := range batchSpecs {
		want := runTicks(t, spec, f)
		for _, sizes := range shapes {
			got := runBatches(t, spec, f, sizes)
			if len(got) != len(want) {
				t.Fatalf("%s sizes=%v: batch kept %d, tick kept %d", spec, sizes, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s sizes=%v: sample %d differs: batch %+v vs tick %+v",
						spec, sizes, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBatchKernelInterleaved mixes Offer and OfferBatch on one
// instance — the documented contract — against the pure per-tick run.
func TestBatchKernelInterleaved(t *testing.T) {
	f := streamTestTrace(20000)
	for _, spec := range batchSpecs {
		want := runTicks(t, spec, f)
		eng, err := LookupStream(spec)
		if err != nil {
			t.Fatal(err)
		}
		bs := eng.(BatchStreamer)
		var got []Sample
		for off, turn := 0, 0; off < len(f); turn++ {
			if turn%2 == 0 { // a run of single-tick Offers
				end := off + 83
				if end > len(f) {
					end = len(f)
				}
				for ; off < end; off++ {
					if s, ok := eng.Offer(off, f[off]); ok {
						got = append(got, s)
					}
				}
			} else { // then a batch
				end := off + 301
				if end > len(f) {
					end = len(f)
				}
				got = bs.OfferBatch(off, f[off:end], got)
				off = end
			}
		}
		tail, err := eng.Finish()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tail...)
		if len(got) != len(want) {
			t.Fatalf("%s: interleaved kept %d, tick kept %d", spec, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: sample %d differs: interleaved %+v vs tick %+v", spec, i, got[i], want[i])
			}
		}
	}
}

// gapsOf returns the inter-sample index differences d_i =
// index_{i+1} - index_i (so d >= 1).
func gapsOf(samples []Sample) []int {
	gaps := make([]int, 0, len(samples))
	for i := 1; i < len(samples); i++ {
		gaps = append(gaps, samples[i].Index-samples[i-1].Index)
	}
	return gaps
}

// ksDistance is the one-sample Kolmogorov-Smirnov statistic of integer
// observations against a CDF evaluated at integers.
func ksDistance(obs []int, cdf func(int) float64) float64 {
	sorted := append([]int(nil), obs...)
	sort.Ints(sorted)
	n := float64(len(sorted))
	var d float64
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		if diff := math.Abs(float64(j)/n - cdf(sorted[i])); diff > d {
			d = diff
		}
		i = j
	}
	return d
}

// ksTwoSample is the two-sample KS statistic between integer samples.
func ksTwoSample(a, b []int) float64 {
	sa := append([]int(nil), a...)
	sb := append([]int(nil), b...)
	sort.Ints(sa)
	sort.Ints(sb)
	na, nb := float64(len(sa)), float64(len(sb))
	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		v := sa[i]
		if sb[j] < v {
			v = sb[j]
		}
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d
}

// TestBernoulliGapLaw: the skip kernel must reproduce the geometric
// inter-sample gap law of Eq. (13), P(D <= d) = 1 - (1-p)^d, which the
// retired per-tick uniform draws sampled implicitly. One long fixed-seed
// run; the KS threshold is ~1.5x the 5% critical value 1.36/sqrt(m).
func TestBernoulliGapLaw(t *testing.T) {
	const p = 0.01
	f := uniformTrace(400000, 61)
	samples := runTicks(t, "bernoulli:rate=0.01,seed=17", f)

	kept := float64(len(samples))
	sd := math.Sqrt(p * (1 - p) * float64(len(f)))
	if diff := math.Abs(kept - p*float64(len(f))); diff > 4*sd {
		t.Errorf("kept %v samples, want %v +- %v", kept, p*float64(len(f)), 4*sd)
	}

	gaps := gapsOf(samples)
	d := ksDistance(gaps, func(d int) float64 {
		if d < 1 {
			return 0
		}
		return 1 - math.Pow(1-p, float64(d))
	})
	if limit := 2.0 / math.Sqrt(float64(len(gaps))); d > limit {
		t.Errorf("gap KS distance %v exceeds %v over %d gaps", d, limit, len(gaps))
	}

	assertMoments(t, samples, 1.0/2, 1.0/12, 0.02)
}

// assertMoments checks the kept values' mean and variance against the
// uniform(0,1) population moments within tol.
func assertMoments(t *testing.T, samples []Sample, mean, variance, tol float64) {
	t.Helper()
	var sum, sq float64
	for _, s := range samples {
		sum += s.Value
	}
	m := sum / float64(len(samples))
	for _, s := range samples {
		sq += (s.Value - m) * (s.Value - m)
	}
	v := sq / float64(len(samples)-1)
	if math.Abs(m-mean) > tol {
		t.Errorf("kept mean %v, want %v +- %v", m, mean, tol)
	}
	if math.Abs(v-variance) > tol {
		t.Errorf("kept variance %v, want %v +- %v", v, variance, tol)
	}
}

// legacySimpleRandom is the retired implementation kept as the
// distributional reference: buffer everything, partial Fisher-Yates
// over an index array, emit in index order. Exact uniform sampling
// without replacement, like the kernels that replaced it.
func legacySimpleRandom(seed uint64, f []float64, n int) []Sample {
	rng := newRand(seed)
	idx := make([]int, len(f))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		j := i + rng.IntN(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	chosen := append([]int(nil), idx[:n]...)
	sort.Ints(chosen)
	out := make([]Sample, n)
	for i, k := range chosen {
		out[i] = Sample{Index: k, Value: f[k]}
	}
	return out
}

// TestSimpleRandomRateDistribution: rate mode must agree with the
// retired Fisher-Yates draw in law — exact kept count, two-sample KS on
// inter-sample gaps, unbiased moments.
func TestSimpleRandomRateDistribution(t *testing.T) {
	f := uniformTrace(400000, 62)
	samples := runTicks(t, "simple:rate=0.01,seed=21", f)
	if want := len(f) / 100; len(samples) != want {
		t.Fatalf("rate mode kept %d samples, want exactly %d", len(samples), want)
	}
	legacy := legacySimpleRandom(77, f, len(samples))
	d := ksTwoSample(gapsOf(samples), gapsOf(legacy))
	// 5% two-sample critical value is 1.36*sqrt(2/m); allow ~1.5x.
	limit := 2.0 * math.Sqrt(2/float64(len(samples)-1))
	if d > limit {
		t.Errorf("gap KS distance to the legacy draw %v exceeds %v", d, limit)
	}
	assertMoments(t, samples, 1.0/2, 1.0/12, 0.02)
}

// TestReservoirInclusionUniform: the fixed-n Vitter reservoir must give
// every position the same inclusion probability n/N. 300 fixed-seed
// trials, inclusion counted per tenth of the stream; each block must
// sit within 5 standard deviations of the expectation.
func TestReservoirInclusionUniform(t *testing.T) {
	const (
		trials = 300
		n      = 50
		pop    = 5000
		blocks = 10
	)
	f := uniformTrace(pop, 63)
	var meanSum float64
	counts := make([]int, blocks)
	for trial := 0; trial < trials; trial++ {
		eng, err := SimpleRandom{N: n, Rng: newRand(uint64(1000 + trial))}.Stream()
		if err != nil {
			t.Fatal(err)
		}
		bs := eng.(BatchStreamer)
		bs.OfferBatch(0, f, nil)
		got, err := eng.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("trial %d: reservoir returned %d samples, want %d", trial, len(got), n)
		}
		var sum float64
		last := -1
		for _, s := range got {
			if s.Index <= last || s.Index >= pop {
				t.Fatalf("trial %d: bad or unsorted index %d after %d", trial, s.Index, last)
			}
			last = s.Index
			counts[s.Index/(pop/blocks)]++
			sum += s.Value
		}
		meanSum += sum / n
	}
	// Per trial a block holds ~hypergeometric(n/blocks) of the picks;
	// summed over trials the expectation is trials*n/blocks with
	// variance ~trials*n/blocks*(1-1/blocks).
	want := float64(trials*n) / blocks
	sd := math.Sqrt(want * (1 - 1.0/blocks))
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*sd {
			t.Errorf("block %d: %d inclusions, want %v +- %v", b, c, want, 5*sd)
		}
	}
	// The average of per-trial sample means is a CLT-tight estimate of
	// the population mean.
	avg := meanSum / trials
	if tol := 5 * math.Sqrt(1.0/12/n/trials); math.Abs(avg-0.5) > tol {
		t.Errorf("average sample mean %v, want 0.5 +- %v", avg, tol)
	}
}

// TestIntervalForRateBoundaries pins the documented rounding contract:
// interval = nearest integer to 1/r, halves rounding up, floored at 1.
func TestIntervalForRateBoundaries(t *testing.T) {
	cases := []struct {
		rate float64
		want int
	}{
		{1, 1},             // rate 1 keeps every tick
		{0.5, 2},           // exact reciprocal
		{0.4, 3},           // 1/r = 2.5: the half rounds UP, not to even
		{1.0 / 3, 3},       // exact reciprocal of an odd interval
		{0.3339, 3},        // just above 1/3: still nearest 3
		{0.3331, 3},        // just below 1/3: still nearest 3
		{0.2860, 3},        // 1/r ~ 3.497: rounds down to 3
		{0.2853, 4},        // 1/r ~ 3.505: rounds up to 4
		{0.7, 1},           // 1/r ~ 1.43 rounds to 1 — keeps everything
		{0.6, 2},           // 1/r ~ 1.67 rounds to 2
		{0.9999, 1},        // near-1 rates clamp at interval 1
		{0.001, 1000},      // the benchmark operating point
		{1.0 / 1001, 1001}, // non-power-of-ten reciprocal survives the float trip
	}
	for _, c := range cases {
		got, err := IntervalForRate(c.rate)
		if err != nil {
			t.Errorf("IntervalForRate(%v): %v", c.rate, err)
			continue
		}
		if got != c.want {
			t.Errorf("IntervalForRate(%v) = %d, want %d", c.rate, got, c.want)
		}
	}
	for _, bad := range []float64{0, -0.1, 1.0001, 2, math.NaN(), math.Inf(1)} {
		if _, err := IntervalForRate(bad); err == nil {
			t.Errorf("IntervalForRate(%v): expected error", bad)
		}
	}
}
