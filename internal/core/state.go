package core

import (
	"fmt"

	"repro/internal/binenc"
	"repro/internal/stats"
)

// StatefulSampler is a streaming kernel whose exact dynamic state can
// be captured and restored: AppendState on a live kernel followed by
// RestoreState on a fresh kernel built from the same configuration
// yields a kernel that emits the byte-identical sample sequence the
// original would have continued with — including the random draw
// sequence, because the RNG position travels with the state.
//
// The blob is kernel-internal: callers treat it as opaque bytes and are
// expected to frame, version and checksum it themselves (the sampling
// package's engine codec does). RestoreState validates that the blob's
// embedded configuration matches the kernel it is applied to, so a
// state blob cannot silently land on a kernel built from a different
// spec. All five built-in techniques implement this interface.
type StatefulSampler interface {
	StreamSampler
	// AppendState appends the kernel's state to dst and returns the
	// extended slice.
	AppendState(dst []byte) ([]byte, error)
	// RestoreState overwrites the kernel's dynamic state from a blob
	// produced by AppendState on a kernel with the same configuration.
	RestoreState(data []byte) error
}

// Kernel state tags: the first byte of every kernel blob names the
// technique that wrote it, so a blob applied to the wrong kernel type
// fails loudly instead of misparsing.
const (
	stateTagSystematic   = 0x01
	stateTagStratified   = 0x02
	stateTagSimpleRandom = 0x03
	stateTagBernoulli    = 0x04
	stateTagBSS          = 0x05
)

func appendBlob(dst, b []byte) []byte { return binenc.AppendBytes(dst, b) }

func appendAcc(dst []byte, a *stats.Accumulator) []byte {
	st := a.State()
	dst = binenc.AppendI64(dst, int64(st.N))
	dst = binenc.AppendF64(dst, st.Mean)
	dst = binenc.AppendF64(dst, st.M2)
	dst = binenc.AppendF64(dst, st.Sum)
	dst = binenc.AppendF64(dst, st.Min)
	dst = binenc.AppendF64(dst, st.Max)
	return dst
}

func readAcc(r *binenc.Reader) stats.AccumulatorState {
	return stats.AccumulatorState{
		N:    int(r.I64()),
		Mean: r.F64(),
		M2:   r.F64(),
		Sum:  r.F64(),
		Min:  r.F64(),
		Max:  r.F64(),
	}
}

func appendSample(dst []byte, s Sample) []byte {
	dst = binenc.AppendI64(dst, int64(s.Index))
	dst = binenc.AppendF64(dst, s.Value)
	dst = binenc.AppendBool(dst, s.Qualified)
	return dst
}

func readSample(r *binenc.Reader) Sample {
	return Sample{Index: int(r.I64()), Value: r.F64(), Qualified: r.Bool()}
}

// checkTag consumes and verifies the leading technique tag.
func checkTag(r *binenc.Reader, want uint8, name string) error {
	if got := r.U8(); r.Err() == nil && got != want {
		return fmt.Errorf("core: state blob tagged %#02x is not %s state (tag %#02x)", got, name, want)
	}
	return r.Err()
}

// mismatch flags a state blob whose embedded configuration differs from
// the kernel it is being applied to.
func mismatch(name, field string, blob, kernel any) error {
	return fmt.Errorf("core: %s state %s %v does not match kernel %s %v", name, field, blob, field, kernel)
}

// AppendState implements StatefulSampler.
func (p *streamSystematic) AppendState(dst []byte) ([]byte, error) {
	dst = binenc.AppendU8(dst, stateTagSystematic)
	dst = binenc.AppendI64(dst, int64(p.interval))
	dst = binenc.AppendI64(dst, int64(p.next))
	dst = binenc.AppendI64(dst, int64(p.tick))
	return dst, nil
}

// RestoreState implements StatefulSampler.
func (p *streamSystematic) RestoreState(data []byte) error {
	r := binenc.NewReader(data)
	if err := checkTag(r, stateTagSystematic, "systematic"); err != nil {
		return err
	}
	interval, next, tick := int(r.I64()), int(r.I64()), int(r.I64())
	if err := r.Err(); err != nil {
		return err
	}
	if interval != p.interval {
		return mismatch("systematic", "interval", interval, p.interval)
	}
	if tick < 0 || next < tick {
		return fmt.Errorf("core: systematic state next=%d tick=%d violates next >= tick >= 0", next, tick)
	}
	p.next, p.tick = next, tick
	return nil
}

// AppendState implements StatefulSampler.
func (p *streamStratified) AppendState(dst []byte) ([]byte, error) {
	dst = binenc.AppendU8(dst, stateTagStratified)
	dst = binenc.AppendI64(dst, int64(p.interval))
	dst = binenc.AppendI64(dst, int64(p.tick))
	dst = binenc.AppendI64(dst, int64(p.pick))
	dst = appendSample(dst, p.pending)
	return p.rng.appendState(dst)
}

// RestoreState implements StatefulSampler.
func (p *streamStratified) RestoreState(data []byte) error {
	r := binenc.NewReader(data)
	if err := checkTag(r, stateTagStratified, "stratified"); err != nil {
		return err
	}
	interval, tick, pick := int(r.I64()), int(r.I64()), int(r.I64())
	pending := readSample(r)
	rngState := r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	if interval != p.interval {
		return mismatch("stratified", "interval", interval, p.interval)
	}
	if tick < 0 || pick < 0 || pick >= interval {
		return fmt.Errorf("core: stratified state tick=%d pick=%d outside stratum of %d", tick, pick, interval)
	}
	if err := p.rng.restoreState(rngState); err != nil {
		return err
	}
	p.tick, p.pick, p.pending = tick, pick, pending
	return nil
}

// AppendState implements StatefulSampler. Rate mode's candidate buffer
// is written in full — the regime's documented O(stream length) state —
// so a restored rate-mode kernel still owns every candidate tick.
func (p *streamSimpleRandom) AppendState(dst []byte) ([]byte, error) {
	dst = binenc.AppendU8(dst, stateTagSimpleRandom)
	dst = binenc.AppendI64(dst, int64(p.n))
	dst = binenc.AppendF64(dst, p.rate)
	dst = binenc.AppendI64(dst, int64(p.seen))
	dst = binenc.AppendU32(dst, uint32(len(p.res)))
	for _, s := range p.res {
		dst = appendSample(dst, s)
	}
	dst = binenc.AppendF64(dst, p.w)
	dst = binenc.AppendI64(dst, int64(p.skip))
	dst = binenc.AppendF64s(dst, p.buf)
	dst = binenc.AppendI64(dst, int64(p.base))
	return p.rng.appendState(dst)
}

// RestoreState implements StatefulSampler.
func (p *streamSimpleRandom) RestoreState(data []byte) error {
	r := binenc.NewReader(data)
	if err := checkTag(r, stateTagSimpleRandom, "simple-random"); err != nil {
		return err
	}
	n, rate, seen := int(r.I64()), r.F64(), int(r.I64())
	nres := int(r.U32())
	if r.Err() == nil && r.Remaining() < 17*nres { // 17 bytes per encoded sample
		return fmt.Errorf("core: simple-random state declares %d reservoir entries beyond the blob", nres)
	}
	var res []Sample
	if nres > 0 {
		res = make([]Sample, nres)
		for i := range res {
			res[i] = readSample(r)
		}
	}
	w, skip := r.F64(), int(r.I64())
	buf := r.F64s()
	base := int(r.I64())
	rngState := r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	if n != p.n {
		return mismatch("simple-random", "n", n, p.n)
	}
	if rate != p.rate {
		return mismatch("simple-random", "rate", rate, p.rate)
	}
	if seen < 0 || skip < 0 || len(res) > n || (n > 0 && len(buf) > 0) {
		return fmt.Errorf("core: simple-random state inconsistent (seen=%d skip=%d reservoir=%d/%d buffered=%d)",
			seen, skip, len(res), n, len(buf))
	}
	if err := p.rng.restoreState(rngState); err != nil {
		return err
	}
	p.seen, p.res, p.w, p.skip, p.buf, p.base = seen, res, w, skip, buf, base
	return nil
}

// AppendState implements StatefulSampler.
func (p *streamBernoulli) AppendState(dst []byte) ([]byte, error) {
	dst = binenc.AppendU8(dst, stateTagBernoulli)
	dst = binenc.AppendF64(dst, p.rate)
	dst = binenc.AppendI64(dst, int64(p.skip))
	return p.rng.appendState(dst)
}

// RestoreState implements StatefulSampler. logq is a pure function of
// the rate, so only the skip counter and the RNG position travel.
func (p *streamBernoulli) RestoreState(data []byte) error {
	r := binenc.NewReader(data)
	if err := checkTag(r, stateTagBernoulli, "bernoulli"); err != nil {
		return err
	}
	rate, skip := r.F64(), int(r.I64())
	rngState := r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	if rate != p.rate {
		return mismatch("bernoulli", "rate", rate, p.rate)
	}
	if skip < 0 {
		return fmt.Errorf("core: bernoulli state skip %d must be >= 0", skip)
	}
	if err := p.rng.restoreState(rngState); err != nil {
		return err
	}
	p.skip = skip
	return nil
}

// AppendState implements StatefulSampler. BSS draws no randomness; its
// state is the base-sample schedule, the adaptive-threshold accumulator
// and the pending extra-probe ticks.
func (s *StreamBSS) AppendState(dst []byte) ([]byte, error) {
	dst = binenc.AppendU8(dst, stateTagBSS)
	dst = binenc.AppendI64(dst, int64(s.cfg.Interval))
	dst = binenc.AppendI64(dst, int64(s.cfg.L))
	dst = binenc.AppendI64(dst, int64(s.tick))
	dst = binenc.AppendI64(dst, int64(s.nextBase))
	dst = appendAcc(dst, &s.running)
	dst = binenc.AppendI64(dst, int64(s.baseSeen))
	dst = binenc.AppendF64(dst, s.ath)
	dst = binenc.AppendBool(dst, s.armed)
	dst = binenc.AppendU32(dst, uint32(len(s.extras)))
	for _, t := range s.extras {
		dst = binenc.AppendI64(dst, int64(t))
	}
	return dst, nil
}

// RestoreState implements StatefulSampler.
func (s *StreamBSS) RestoreState(data []byte) error {
	r := binenc.NewReader(data)
	if err := checkTag(r, stateTagBSS, "bss"); err != nil {
		return err
	}
	interval, l := int(r.I64()), int(r.I64())
	tick, nextBase := int(r.I64()), int(r.I64())
	accState := readAcc(r)
	baseSeen := int(r.I64())
	ath := r.F64()
	armed := r.Bool()
	nextras := int(r.U32())
	if r.Err() == nil && r.Remaining() < 8*nextras {
		return fmt.Errorf("core: bss state declares %d extra probes beyond the blob", nextras)
	}
	var extras []int
	if nextras > 0 {
		extras = make([]int, nextras)
		for i := range extras {
			extras[i] = int(r.I64())
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	if interval != s.cfg.Interval {
		return mismatch("bss", "interval", interval, s.cfg.Interval)
	}
	if l != s.cfg.L {
		return mismatch("bss", "L", l, s.cfg.L)
	}
	if tick < 0 || baseSeen < 0 || accState.N < 0 {
		return fmt.Errorf("core: bss state counters negative (tick=%d baseSeen=%d accN=%d)", tick, baseSeen, accState.N)
	}
	s.tick, s.nextBase, s.baseSeen, s.ath, s.armed, s.extras = tick, nextBase, baseSeen, ath, armed, extras
	s.running.SetState(accState)
	return nil
}

// Interface compliance checks: every built-in technique exposes state.
var (
	_ StatefulSampler = (*streamSystematic)(nil)
	_ StatefulSampler = (*streamStratified)(nil)
	_ StatefulSampler = (*streamSimpleRandom)(nil)
	_ StatefulSampler = (*streamBernoulli)(nil)
	_ StatefulSampler = (*StreamBSS)(nil)
)
