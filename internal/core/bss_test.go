package core

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/stats"
)

func TestBSSValidation(t *testing.T) {
	if _, err := NewBSS(0, 5, 1); err == nil {
		t.Error("expected error for interval 0")
	}
	if _, err := NewBSS(10, -1, 1); err == nil {
		t.Error("expected error for negative L")
	}
	if _, err := NewBSS(10, 0, 1); err != nil {
		t.Errorf("L = 0 (degenerate to systematic) should be valid: %v", err)
	}
	if _, err := NewBSS(10, 5, 0); err == nil {
		t.Error("expected error for adaptive without epsilon")
	}
	if _, err := NewBSSStatic(10, 5, -1); err == nil {
		t.Error("expected error for negative threshold")
	}
	if _, err := (BSS{Interval: 10, L: 2, Epsilon: 1, Offset: 11}).Sample(seq(100)); err == nil {
		t.Error("expected error for offset >= interval")
	}
	if _, err := (BSS{Interval: 10, L: 2, Epsilon: 1, PreSamples: -1}).Sample(seq(100)); err == nil {
		t.Error("expected error for negative pre-samples")
	}
	b, err := NewBSS(10, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "bss" {
		t.Errorf("name = %q", b.Name())
	}
	if _, err := b.Sample(nil); err == nil {
		t.Error("expected error for empty series")
	}
}

func TestBSSStaticThresholdBehaviour(t *testing.T) {
	// Construct a series where exactly one base sample exceeds the static
	// threshold, with a burst after it.
	f := make([]float64, 40)
	for i := range f {
		f[i] = 1
	}
	// Base samples at 0, 10, 20, 30 (C=10). Put a burst at 10..15.
	for i := 10; i <= 15; i++ {
		f[i] = 100
	}
	b, err := NewBSSStatic(10, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Sample(f)
	if err != nil {
		t.Fatal(err)
	}
	base, qualified := CountKinds(got)
	if base != 4 {
		t.Errorf("base samples = %d, want 4", base)
	}
	// Trigger at index 10; extra probes at 12, 14, 16, 18 (spacing
	// C/(L+1) = 2). Values: f[12]=f[14]=100 qualified, f[16]=f[18]=1 not.
	if qualified != 2 {
		t.Errorf("qualified samples = %d, want 2", qualified)
	}
	for _, s := range got {
		if s.Qualified && s.Value <= 50 {
			t.Errorf("qualified sample %+v below threshold", s)
		}
		if s.Value != f[s.Index] {
			t.Errorf("sample value mismatch at %d", s.Index)
		}
	}
}

func TestBSSIndicesSortedAndUnique(t *testing.T) {
	rng := dist.NewRand(7)
	p := dist.Pareto{Alpha: 1.3, Xm: 1}
	f := make([]float64, 20000)
	for i := range f {
		f[i] = p.Sample(rng)
	}
	b, err := NewBSS(50, 10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Sample(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Index <= got[i-1].Index {
			t.Fatalf("indices not strictly increasing at %d: %d then %d", i, got[i-1].Index, got[i].Index)
		}
	}
}

func TestBSSImprovesHeavyTailedMeanEstimate(t *testing.T) {
	// The headline claim: on heavy-tailed data at a low sampling rate,
	// BSS with parameters designed per Eq. (23) estimates the real mean
	// more accurately than plain systematic sampling with the same base
	// schedule (total absolute error over instances).
	rng := dist.NewRand(2024)
	p := dist.Pareto{Alpha: 1.3, Xm: 1}
	f := make([]float64, 1<<19)
	for i := range f {
		f[i] = p.Sample(rng)
	}
	real := MeanOf(mustSampleB(t, Systematic{Interval: 1}, f))
	const c = 1000
	const instances = 25
	// First measure the typical systematic bias, then design L for it
	// (epsilon = 1) the way the paper's online rule does.
	etas := make([]float64, 0, instances)
	var sysErr float64
	for off := 0; off < instances; off++ {
		sys := Systematic{Interval: c, Offset: off * c / instances}
		e := Eta(MeanOf(mustSampleB(t, sys, f)), real)
		etas = append(etas, e)
		sysErr += math.Abs(e)
	}
	med, err := stats.Median(etas)
	if err != nil {
		t.Fatal(err)
	}
	if med < 0.02 {
		t.Fatalf("median systematic eta = %g; test requires visible under-estimation", med)
	}
	design, err := NewBSSDesign(1.3)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := design.LUnbiased(1.0, med)
	if err != nil {
		t.Fatal(err)
	}
	l := int(lf + 0.5)
	if l < 1 {
		l = 1
	}
	var bssErr float64
	for off := 0; off < instances; off++ {
		b := BSS{Interval: c, Offset: off * c / instances, L: l, Epsilon: 1.0}
		bssErr += math.Abs(Eta(MeanOf(mustSampleB(t, b, f)), real))
	}
	if bssErr >= sysErr {
		t.Errorf("BSS total |eta| %g not better than systematic %g (L=%d)", bssErr, sysErr, l)
	}
}

func TestBSSQualifiedFractionMatchesTheory(t *testing.T) {
	// Overhead L'/N should track L*c^-2alpha for Pareto data with a static
	// threshold.
	alpha := 1.5
	rng := dist.NewRand(99)
	p := dist.Pareto{Alpha: alpha, Xm: 1}
	f := make([]float64, 1<<20)
	for i := range f {
		f[i] = p.Sample(rng)
	}
	eps := 1.2
	mean := p.Mean()
	b, err := NewBSSStatic(100, 10, eps*mean)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Sample(f)
	if err != nil {
		t.Fatal(err)
	}
	design, err := NewBSSDesign(alpha)
	if err != nil {
		t.Fatal(err)
	}
	want := design.QualifiedFraction(10, eps)
	if oh := Overhead(got); math.Abs(oh-want)/want > 0.35 {
		t.Errorf("overhead %g, theory %g", oh, want)
	}
}

func TestBSSAdaptiveWarmup(t *testing.T) {
	// With PreSamples = 5, the first 4 base samples must not trigger even
	// if huge.
	f := make([]float64, 100)
	for i := range f {
		f[i] = 1
	}
	f[0] = 1e9 // base sample 0, during warm-up
	b := BSS{Interval: 10, L: 5, Epsilon: 1, PreSamples: 5}
	got, err := b.Sample(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, qualified := CountKinds(got); qualified != 0 {
		t.Errorf("warm-up trigger produced %d qualified samples", qualified)
	}
}

func TestStreamBSSMatchesBatch(t *testing.T) {
	rng := dist.NewRand(404)
	p := dist.Pareto{Alpha: 1.4, Xm: 1}
	f := make([]float64, 50000)
	for i := range f {
		f[i] = p.Sample(rng)
	}
	for _, cfg := range []BSS{
		{Interval: 40, L: 6, Epsilon: 1.0},
		{Interval: 25, L: 4, Threshold: 5},
		{Interval: 100, L: 12, Epsilon: 1.3, PreSamples: 20},
	} {
		batch, err := cfg.Sample(f)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := NewStreamBSS(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var online []Sample
		for i, v := range f {
			if smp, kept := stream.Offer(i, v); kept {
				online = append(online, smp)
			}
		}
		if len(online) != len(batch) {
			t.Fatalf("cfg %+v: stream kept %d, batch kept %d", cfg, len(online), len(batch))
		}
		for i := range batch {
			if online[i] != batch[i] {
				t.Fatalf("cfg %+v: sample %d differs: %+v vs %+v", cfg, i, online[i], batch[i])
			}
		}
		if stream.Kept() != len(batch) {
			t.Errorf("Kept() = %d, want %d", stream.Kept(), len(batch))
		}
		if math.Abs(stream.Mean()-MeanOf(batch)) > 1e-9 {
			t.Errorf("stream mean %g vs batch %g", stream.Mean(), MeanOf(batch))
		}
	}
}

func TestStreamBSSValidation(t *testing.T) {
	if _, err := NewStreamBSS(BSS{Interval: 0, L: 1, Epsilon: 1}); err == nil {
		t.Error("expected error for invalid config")
	}
	s, err := NewStreamBSS(BSS{Interval: 10, L: 2, Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Threshold() != 0 {
		t.Error("threshold should be 0 before warm-up")
	}
}

func mustSampleB(t *testing.T, s Sampler, f []float64) []Sample {
	t.Helper()
	got, err := s.Sample(f)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	return got
}

func BenchmarkBSSSample1M(b *testing.B) {
	rng := dist.NewRand(1)
	p := dist.Pareto{Alpha: 1.3, Xm: 1}
	f := make([]float64, 1<<20)
	for i := range f {
		f[i] = p.Sample(rng)
	}
	cfg := BSS{Interval: 1000, L: 10, Epsilon: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Sample(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSystematicSample1M(b *testing.B) {
	f := make([]float64, 1<<20)
	s := Systematic{Interval: 1000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sample(f); err != nil {
			b.Fatal(err)
		}
	}
}
