package core

import (
	"fmt"
	"math"
)

// BSSDesign is the analytical model of Section V-C: the traffic marginal
// is Pareto with tail index Alpha (1 < Alpha <= 2) and minimum ell. All
// design quantities below are scale-free — they depend on the threshold
// only through the normalized ratio epsilon = a_th / realMean, so ell
// never appears explicitly.
//
// Derivation (DESIGN.md "Derivation notes"): with c = a_th/ell =
// epsilon*Alpha/(Alpha-1), a base sample exceeds a_th with probability
// c^-Alpha, each triggered interval keeps about L*c^-Alpha qualified
// samples, so the qualified fraction is L' / N = L * c^-2Alpha =: L*q, and
// the expected qualified value is E[X | X > a_th] = c * realMean. If the
// plain systematic estimate under-shoots the real mean by eta, the
// expected BSS estimate relative to the real mean is the bias ratio
//
//	xi(L, eps; alpha, eta) = ((1-eta) + L*q*c) / (1 + L*q).
//
// Solving xi = 1 for L reproduces the paper's Eq. (23) exactly:
// L = eta * c^2Alpha / (c - 1).
type BSSDesign struct {
	Alpha float64
}

// NewBSSDesign validates the tail index.
func NewBSSDesign(alpha float64) (BSSDesign, error) {
	if !(alpha > 1) || alpha > 2 {
		return BSSDesign{}, fmt.Errorf("core: BSS design needs tail index in (1,2], got %g", alpha)
	}
	return BSSDesign{Alpha: alpha}, nil
}

// EpsilonFloor returns (alpha-1)/alpha, the epsilon at which a_th equals
// the distribution minimum ell. This is the paper's observation that the
// lower root epsilon_1 of xi = 1 sits at (alpha-1)/alpha independent of L.
func (d BSSDesign) EpsilonFloor() float64 { return (d.Alpha - 1) / d.Alpha }

// ThresholdRatio returns c = a_th/ell = epsilon*alpha/(alpha-1).
func (d BSSDesign) ThresholdRatio(eps float64) float64 {
	return eps * d.Alpha / (d.Alpha - 1)
}

// epsilonOf inverts ThresholdRatio.
func (d BSSDesign) epsilonOf(c float64) float64 {
	return c * (d.Alpha - 1) / d.Alpha
}

// TriggerProb returns the probability that one base sample exceeds a_th,
// Pr(X > a_th) = c^-alpha.
func (d BSSDesign) TriggerProb(eps float64) float64 {
	c := d.ThresholdRatio(eps)
	if c <= 1 {
		return 1
	}
	return math.Pow(c, -d.Alpha)
}

// QualifiedFraction returns L'/N = L * c^-2alpha, the expected number of
// qualified samples per base sample — the overhead surface of Figure 15.
func (d BSSDesign) QualifiedFraction(l, eps float64) float64 {
	c := d.ThresholdRatio(eps)
	if c <= 1 {
		return l
	}
	return l * math.Pow(c, -2*d.Alpha)
}

// BiasRatio returns xi(L, eps; eta) = ((1-eta) + L*q*c)/(1 + L*q): the
// expected BSS mean estimate divided by the real mean, when the plain
// systematic estimate under-shoots by eta. eta = 0 gives the pure
// theoretical surface (Figures 10, 11, 14 use a representative eta).
func (d BSSDesign) BiasRatio(l, eps, eta float64) float64 {
	if eps <= 0 || l < 0 {
		return math.NaN()
	}
	c := d.ThresholdRatio(eps)
	q := math.Pow(c, -2*d.Alpha)
	return ((1 - eta) + l*q*c) / (1 + l*q)
}

// LForTarget solves xi(L, eps; eta) = xi for L at fixed eps:
// L = (xi - (1-eta)) / (q*(c - xi)). It errors when the target is
// unreachable (c <= xi: qualified samples are not large enough to lift the
// estimate that high) or the solution is negative.
func (d BSSDesign) LForTarget(eps, eta, xi float64) (float64, error) {
	if eps <= 0 {
		return 0, fmt.Errorf("core: epsilon %g must be positive", eps)
	}
	c := d.ThresholdRatio(eps)
	if c <= xi {
		return 0, fmt.Errorf("core: threshold ratio c=%.4g <= target xi=%.4g; raise epsilon", c, xi)
	}
	q := math.Pow(c, -2*d.Alpha)
	l := (xi - (1 - eta)) / (q * (c - xi))
	if l < 0 {
		return 0, fmt.Errorf("core: negative L=%.4g (target xi=%.4g below the base bias)", l, xi)
	}
	return l, nil
}

// LUnbiased is the paper's Eq. (23): the L that exactly cancels a known
// base bias eta at threshold ratio eps, L = eta*c^2alpha/(c-1).
func (d BSSDesign) LUnbiased(eps, eta float64) (float64, error) {
	if eta < 0 || eta >= 1 {
		return 0, fmt.Errorf("core: eta %g outside [0,1)", eta)
	}
	return d.LForTarget(eps, eta, 1)
}

// XiPeak locates the epsilon maximizing xi at fixed L (and the maximum
// value), by golden-section search over the threshold ratio.
func (d BSSDesign) XiPeak(l, eta float64) (epsAtPeak, xiMax float64) {
	// xi is unimodal in c on (0, inf): 0 at c->0, rises through the
	// qualified-dominated regime, decays to 1-eta. Search log-space.
	lo, hi := math.Log(1e-3), math.Log(1e9)
	phi := (math.Sqrt(5) - 1) / 2
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f := func(logc float64) float64 {
		return d.BiasRatio(l, d.epsilonOf(math.Exp(logc)), eta)
	}
	f1, f2 := f(x1), f(x2)
	for i := 0; i < 200 && b-a > 1e-12; i++ {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = f(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = f(x1)
		}
	}
	c := math.Exp((a + b) / 2)
	return d.epsilonOf(c), d.BiasRatio(l, d.epsilonOf(c), eta)
}

// EpsRoots returns the two epsilon solutions of xi(L, eps; eta) = target,
// bracketing the peak of the unimodal xi curve (Figure 11). The paper's
// epsilon_1 (lower root, approximately (alpha-1)/alpha for target 1 and
// small eta) is economically infeasible; epsilon_2 (upper root) is the one
// BSS uses. An error is returned when the target exceeds the peak.
func (d BSSDesign) EpsRoots(l, eta, target float64) (eps1, eps2 float64, err error) {
	if l <= 0 {
		return 0, 0, fmt.Errorf("core: L=%g must be positive", l)
	}
	epsPeak, xiMax := d.XiPeak(l, eta)
	if xiMax < target {
		return 0, 0, fmt.Errorf("core: target xi=%.4g exceeds the maximum %.4g reachable with L=%g (raise L)", target, xiMax, l)
	}
	g := func(eps float64) float64 { return d.BiasRatio(l, eps, eta) - target }
	// Lower root in (tiny, epsPeak]; xi -> 0 as eps -> 0.
	eps1, err = bisect(g, epsPeak*1e-6, epsPeak, 1e-12)
	if err != nil {
		return 0, 0, fmt.Errorf("core: lower epsilon root: %w", err)
	}
	// Upper root in [epsPeak, huge); xi -> 1-eta < target as eps -> inf
	// whenever target > 1-eta, which holds since target <= xiMax and the
	// curve decays below it.
	hi := epsPeak
	for d.BiasRatio(l, hi, eta) > target && hi < 1e12 {
		hi *= 2
	}
	eps2, err = bisect(g, epsPeak, hi, 1e-12)
	if err != nil {
		return 0, 0, fmt.Errorf("core: upper epsilon root: %w", err)
	}
	return eps1, eps2, nil
}

// EpsForTarget returns the economical (upper-branch) epsilon achieving the
// target bias ratio at fixed L. Figure 15's overhead surface shows why the
// upper branch is the right one: qualified-sample cost explodes at small
// epsilon.
func (d BSSDesign) EpsForTarget(l, eta, target float64) (float64, error) {
	_, eps2, err := d.EpsRoots(l, eta, target)
	return eps2, err
}

// bisect finds a sign change of g on [a,b] and refines it to tol.
func bisect(g func(float64) float64, a, b, tol float64) (float64, error) {
	ga, gb := g(a), g(b)
	if math.IsNaN(ga) || math.IsNaN(gb) {
		return 0, fmt.Errorf("core: bisection endpoints not finite")
	}
	if ga == 0 {
		return a, nil
	}
	if gb == 0 {
		return b, nil
	}
	if ga*gb > 0 {
		return 0, fmt.Errorf("core: no sign change on [%g, %g] (g=%g, %g)", a, b, ga, gb)
	}
	for i := 0; i < 200 && b-a > tol*(1+math.Abs(a)); i++ {
		m := (a + b) / 2
		gm := g(m)
		if gm == 0 {
			return m, nil
		}
		if ga*gm < 0 {
			b, gb = m, gm
		} else {
			a, ga = m, gm
		}
	}
	_ = gb
	return (a + b) / 2, nil
}

// BurstPersistence is the paper's Eq. (20): given the 1-burst length B is
// Pareto with index alpha, the probability that the process stays above
// the threshold one more tick after tau consecutive exceedances is
// (tau/(tau+1))^alpha, which tends to 1 — the theoretical licence for
// taking extra samples after a trigger.
func BurstPersistence(tau float64, alpha float64) float64 {
	if tau <= 0 {
		return math.NaN()
	}
	return math.Pow(tau/(tau+1), alpha)
}

// BurstPersistenceLight is the paper's Eq. (19): with an exponential-tailed
// B the same conditional probability is the constant exp(-c2) — no matter
// how long the burst has lasted, so extra samples would buy nothing.
func BurstPersistenceLight(c2 float64) float64 {
	if c2 <= 0 {
		return math.NaN()
	}
	return math.Exp(-c2)
}

// EtaFromRate is the paper's Eq. (35): the alpha-stable central limit
// theorem for heavy-tailed summands gives |Xs - Xr| ~ N^(1/alpha - 1), so
// with N = rate * Nt the expected relative bias of plain systematic
// sampling scales as eta = cs * r^(1/alpha-1). The paper calibrates
// cs in (0.25, 0.35) for its synthetic traces and (0.2, 0.3) for the real
// ones. The result is clamped to [0, 0.99].
func EtaFromRate(rate, alpha, cs float64) float64 {
	if !(rate > 0) || rate > 1 || !(alpha > 1) || cs <= 0 {
		return math.NaN()
	}
	eta := cs * math.Pow(rate, 1/alpha-1)
	if eta > 0.99 {
		eta = 0.99
	}
	return eta
}

// OptimalDesign is the paper's stated future work ("how to optimally set
// these parameters so as to strike a balance between the sampling
// overhead and the accuracy"): among all (L, eps) pairs on the unbiased
// contour xi = 1 for a given eta, minimize the qualified-sample overhead.
//
// On the contour, L(eps) = eta*c^(2 alpha)/(c-1) (Eq. 23) gives overhead
// L*c^(-2 alpha) = eta/(c-1) — strictly decreasing in the threshold. The
// optimum therefore pushes eps as high as the L budget allows: the
// binding constraint is L <= maxL (one cannot probe more finely than the
// base interval permits), and the solution is the eps at which L(eps)
// first hits maxL.
func (d BSSDesign) OptimalDesign(eta float64, maxL int) (l int, eps, overhead float64, err error) {
	if eta <= 0 || eta >= 1 {
		return 0, 0, 0, fmt.Errorf("core: eta %g outside (0,1)", eta)
	}
	if maxL < 1 {
		return 0, 0, 0, fmt.Errorf("core: maxL %d must be >= 1", maxL)
	}
	// L(eps) is increasing for c >= c* = 2alpha/(2alpha-1); search the
	// upper branch for L(eps) = maxL.
	cStar := 2 * d.Alpha / (2*d.Alpha - 1)
	lOf := func(c float64) float64 { return eta * math.Pow(c, 2*d.Alpha) / (c - 1) }
	lo := cStar
	if lOf(lo) > float64(maxL) {
		// Even the cheapest point of the branch needs more than maxL
		// probes: fall back to the smallest-L point of the contour.
		eps = d.epsilonOf(cStar)
		lv := lOf(cStar)
		l = int(math.Ceil(lv))
		if l > maxL {
			return 0, 0, 0, fmt.Errorf("core: bias eta=%.3g needs L=%.1f > maxL=%d at the cheapest threshold; raise maxL", eta, lv, maxL)
		}
		return l, eps, d.QualifiedFraction(float64(l), eps), nil
	}
	hi := cStar
	for lOf(hi) < float64(maxL) && hi < 1e9 {
		hi *= 2
	}
	c, err := bisect(func(c float64) float64 { return lOf(c) - float64(maxL) }, lo, hi, 1e-10)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("core: optimal design: %w", err)
	}
	eps = d.epsilonOf(c)
	l = maxL
	return l, eps, eta / (c - 1), nil
}

// DesignForRate assembles the paper's online parameter rule (Section V-C,
// "Tuning L and a_th without knowledge of eta"): fix epsilon (the paper
// recommends 1.0-1.5), estimate eta from the sampling rate via Eq. (35),
// and solve Eq. (23) for L. The continuous solution is floored to an
// integer — empirical traffic departs from the pure-Pareto model in the
// direction of more qualified samples, so rounding down keeps the
// correction conservative. The result is clamped to [0, maxL]; L = 0
// means the estimated bias is too small to warrant extra samples and BSS
// degenerates to plain systematic sampling.
func (d BSSDesign) DesignForRate(rate, eps, cs float64, maxL int) (l int, eta float64, err error) {
	eta = EtaFromRate(rate, d.Alpha, cs)
	if math.IsNaN(eta) {
		return 0, 0, fmt.Errorf("core: invalid rate %g / cs %g for the eta law", rate, cs)
	}
	lf, err := d.LUnbiased(eps, eta)
	if err != nil {
		return 0, 0, fmt.Errorf("core: designing L for rate %g: %w", rate, err)
	}
	l = int(lf)
	if l < 0 {
		l = 0
	}
	if maxL > 0 && l > maxL {
		l = maxL
	}
	return l, eta, nil
}

// DesignEpsForRate is the dual online rule (the paper's Figure 16(a) /
// 17(a) mode): fix L, estimate eta from the rate, and solve for the
// economical (upper-branch) epsilon. As the estimated bias vanishes the
// returned epsilon grows without bound and BSS smoothly degenerates to
// plain systematic sampling, which makes this the better-behaved mode at
// high sampling rates.
func (d BSSDesign) DesignEpsForRate(rate float64, l int, cs float64) (eps, eta float64, err error) {
	if l < 1 {
		return 0, 0, fmt.Errorf("core: epsilon design needs L >= 1, got %d", l)
	}
	eta = EtaFromRate(rate, d.Alpha, cs)
	if math.IsNaN(eta) {
		return 0, 0, fmt.Errorf("core: invalid rate %g / cs %g for the eta law", rate, cs)
	}
	if eta < 1e-4 {
		eta = 1e-4 // degenerate: essentially unbiased already
	}
	eps, err = d.EpsForTarget(float64(l), eta, 1)
	if err != nil {
		return 0, 0, fmt.Errorf("core: designing epsilon for rate %g: %w", rate, err)
	}
	return eps, eta, nil
}
