package core
