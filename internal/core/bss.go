package core

import (
	"fmt"

	"repro/internal/stats"
)

// BSS is Biased Systematic Sampling (the paper's Section V-C): systematic
// sampling with interval C, except that whenever a base sample exceeds the
// threshold a_th, L extra probes are taken evenly inside the current
// interval (spacing C/(L+1), strictly between this base sample and the
// next) and only the probes exceeding a_th — the "qualified" samples — are
// kept. Because bursts above a_th are heavy-tailed (Section V-B), a sample
// above the threshold predicts more large values right after it, so the
// extra probes recover exactly the mass ordinary sampling misses.
//
// The threshold is either static (Threshold > 0) or adaptive, the paper's
// online rule: a_th = Epsilon * (running mean of every kept sample so
// far), seeded from the first PreSamples base samples and updated only at
// base samples — never while extra probes of the current interval are
// outstanding.
type BSS struct {
	Interval   int     // base sampling interval C >= 1
	Offset     int     // base offset in [0, Interval)
	L          int     // extra probes per triggered interval, >= 0 (0 degenerates to systematic)
	Epsilon    float64 // adaptive threshold multiplier (used when Threshold == 0)
	Threshold  float64 // static a_th; > 0 disables the adaptive rule
	PreSamples int     // warm-up base samples for the adaptive rule (default 10)

	// Placement selects where the L extra probes go; see Placement.
	Placement Placement
}

// Placement is the extra-probe layout within a triggered interval, an
// ablation axis for the design choice the paper leaves implicit.
type Placement int

const (
	// PlacementSpread (the default, the paper's description) spaces the
	// L probes evenly through the interval at C/(L+1).
	PlacementSpread Placement = iota
	// PlacementChase takes the L probes at consecutive ticks right after
	// the trigger — "burst chasing". It qualifies more probes (the burst
	// persistence of Eq. 20 is strongest immediately after a trigger) but
	// over-weights the head of each burst, biasing the estimate upward.
	PlacementChase
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	if p == PlacementChase {
		return "chase"
	}
	return "spread"
}

// NewBSS validates the configuration.
func NewBSS(interval, l int, epsilon float64) (BSS, error) {
	b := BSS{Interval: interval, L: l, Epsilon: epsilon}
	if err := b.validate(); err != nil {
		return BSS{}, err
	}
	return b, nil
}

// NewBSSStatic builds a BSS with a fixed threshold a_th.
func NewBSSStatic(interval, l int, threshold float64) (BSS, error) {
	b := BSS{Interval: interval, L: l, Threshold: threshold}
	if err := b.validate(); err != nil {
		return BSS{}, err
	}
	return b, nil
}

func (b BSS) validate() error {
	switch {
	case b.Interval < 1:
		return fmt.Errorf("core: BSS interval %d must be >= 1", b.Interval)
	case b.Offset < 0 || b.Offset >= b.Interval:
		return fmt.Errorf("core: BSS offset %d outside [0, %d)", b.Offset, b.Interval)
	case b.L < 0:
		return fmt.Errorf("core: BSS extra-sample count L=%d must be >= 0", b.L)
	case b.Threshold < 0:
		return fmt.Errorf("core: BSS threshold %g must be >= 0", b.Threshold)
	case b.Threshold == 0 && !(b.Epsilon > 0):
		return fmt.Errorf("core: adaptive BSS needs Epsilon > 0 (got %g)", b.Epsilon)
	case b.PreSamples < 0:
		return fmt.Errorf("core: BSS pre-sample count %d must be >= 0", b.PreSamples)
	case b.Placement != PlacementSpread && b.Placement != PlacementChase:
		return fmt.Errorf("core: unknown BSS placement %d", b.Placement)
	}
	return nil
}

// probeOffsets appends the extra-probe tick numbers for a trigger at base
// tick i, honoring the placement policy and skipping collisions. The
// stream has no end, so out-of-range probes simply never arrive.
func (b BSS) probeOffsets(i int, dst []int) []int {
	prev := i
	for j := 1; j <= b.L; j++ {
		var idx int
		if b.Placement == PlacementChase {
			idx = i + j
			if idx >= i+b.Interval { // never cross into the next interval
				break
			}
		} else {
			idx = i + j*b.Interval/(b.L+1)
		}
		if idx == prev {
			continue
		}
		prev = idx
		dst = append(dst, idx)
	}
	return dst
}

// Name implements Sampler.
func (b BSS) Name() string { return "bss" }

// Stream implements Streamer.
func (b BSS) Stream() (StreamSampler, error) { return NewStreamBSS(b) }

// Sample implements Sampler. The returned slice holds base samples
// (Qualified=false) and kept extra samples (Qualified=true) in index
// order.
func (b BSS) Sample(f []float64) ([]Sample, error) { return sampleViaStream(b, f) }

// StreamBSS is the online form of BSS for router-style deployment: the
// BSS streaming state machine behind both the batch Sample adapter and
// the pipeline probes. It implements StreamSampler.
//
// The zero value is not usable; construct with NewStreamBSS.
type StreamBSS struct {
	cfg      BSS
	tick     int
	nextBase int
	running  stats.Accumulator
	baseSeen int
	ath      float64
	armed    bool  // adaptive threshold active
	extras   []int // pending extra-probe ticks (ascending)
}

// NewStreamBSS validates cfg and returns a streaming sampler.
func NewStreamBSS(cfg BSS) (*StreamBSS, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.PreSamples == 0 {
		cfg.PreSamples = 10
	}
	return &StreamBSS{cfg: cfg, nextBase: cfg.Offset, ath: cfg.Threshold, armed: cfg.Threshold > 0}, nil
}

// Name implements StreamSampler.
func (s *StreamBSS) Name() string { return "bss" }

// Offer implements StreamSampler. Base samples are emitted
// unconditionally; extra probes are emitted only when they qualify
// (exceed the threshold frozen at the triggering base sample).
func (s *StreamBSS) Offer(index int, value float64) (Sample, bool) {
	t := s.tick
	s.tick++
	if t == s.nextBase {
		s.nextBase += s.cfg.Interval
		s.extras = s.extras[:0]
		s.running.Add(value)
		s.baseSeen++
		if s.cfg.Threshold == 0 {
			if s.baseSeen >= s.cfg.PreSamples {
				s.ath = s.cfg.Epsilon * s.running.Mean()
				s.armed = true
			}
		}
		if s.armed && value > s.ath {
			s.extras = s.cfg.probeOffsets(t, s.extras)
		}
		return Sample{Index: index, Value: value}, true
	}
	if len(s.extras) > 0 && s.extras[0] == t {
		s.extras = s.extras[1:]
		if value > s.ath {
			s.running.Add(value)
			return Sample{Index: index, Value: value, Qualified: true}, true
		}
	}
	return Sample{}, false
}

// Finish implements StreamSampler. Pending extra probes past the end of
// the stream are dropped, matching the batch rule that probes never land
// outside the series.
func (s *StreamBSS) Finish() ([]Sample, error) { return nil, nil }

// Mean returns the running mean over all kept samples, the estimator the
// adaptive threshold is built on.
func (s *StreamBSS) Mean() float64 { return s.running.Mean() }

// Kept returns how many samples have been recorded so far.
func (s *StreamBSS) Kept() int { return s.running.N() }

// Threshold returns the current a_th (0 until the warm-up completes in
// adaptive mode).
func (s *StreamBSS) Threshold() float64 {
	if !s.armed {
		return 0
	}
	return s.ath
}

var (
	_ Sampler       = BSS{}
	_ Streamer      = BSS{}
	_ StreamSampler = (*StreamBSS)(nil)
)
