package core

import (
	"fmt"
	"math"

	"repro/internal/dsp"
	"repro/internal/lrd"
	"repro/internal/stats"
)

// newRand mirrors dist.NewRand without importing it, keeping core's
// dependency surface minimal; the wrapper keeps the PCG position
// exportable for state snapshots (see Rand).
func newRand(seed uint64) *Rand {
	return NewSeededRand(seed)
}

// IntervalPMF is the probability mass function H(x) of the i.i.d. gaps
// T_i = Z_{i+1} - Z_i between consecutive sampling points, the renewal
// description of a sampling technique in the paper's Section III-D.
// P[k] = Pr(T = k); P[0] must be 0 (gaps are at least one tick).
type IntervalPMF struct {
	P []float64
}

// Validate checks that P is a pmf with no mass at zero.
func (p IntervalPMF) Validate() error {
	if len(p.P) < 2 {
		return fmt.Errorf("core: interval pmf needs support beyond gap 0 (len %d)", len(p.P))
	}
	if p.P[0] != 0 {
		return fmt.Errorf("core: interval pmf has mass %g at gap 0", p.P[0])
	}
	var sum float64
	for k, v := range p.P {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("core: interval pmf has invalid mass %g at gap %d", v, k)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("core: interval pmf sums to %g, want 1", sum)
	}
	return nil
}

// Mean returns E[T], the average sampling interval (1/rate).
func (p IntervalPMF) Mean() float64 {
	var m float64
	for k, v := range p.P {
		m += float64(k) * v
	}
	return m
}

// SystematicPMF is the degenerate gap law of systematic sampling:
// Pr(T = C) = 1.
func SystematicPMF(c int) (IntervalPMF, error) {
	if c < 1 {
		return IntervalPMF{}, fmt.Errorf("core: systematic interval %d must be >= 1", c)
	}
	p := make([]float64, c+1)
	p[c] = 1
	return IntervalPMF{P: p}, nil
}

// StratifiedPMF is the triangular gap law of stratified random sampling
// (the paper's Eq. 12): the gap between the uniform picks of two adjacent
// strata of length C is C + U2 - U1 with U1, U2 independent uniform on
// {0..C-1}, giving a discrete triangle on (0, 2C).
func StratifiedPMF(c int) (IntervalPMF, error) {
	if c < 1 {
		return IntervalPMF{}, fmt.Errorf("core: stratified interval %d must be >= 1", c)
	}
	p := make([]float64, 2*c)
	cc := float64(c * c)
	for d := -(c - 1); d <= c-1; d++ {
		gap := c + d
		// Pr(U2 - U1 = d) = (C - |d|)/C^2.
		p[gap] = float64(c-abs(d)) / cc
	}
	return IntervalPMF{P: p}, nil
}

// BernoulliPMF is the geometric gap law of probabilistic 1-in-1/r sampling
// (the paper's Eq. 13), truncated where the remaining tail mass falls
// below tol; the truncated mass is renormalized into the last bin so the
// pmf still sums to one.
func BernoulliPMF(r, tol float64) (IntervalPMF, error) {
	if !(r > 0) || r >= 1 {
		return IntervalPMF{}, fmt.Errorf("core: Bernoulli rate %g outside (0,1)", r)
	}
	if !(tol > 0) || tol >= 1 {
		tol = 1e-12
	}
	// Tail Pr(T > k) = (1-r)^k < tol  =>  k > log(tol)/log(1-r).
	maxGap := int(math.Ceil(math.Log(tol)/math.Log(1-r))) + 1
	if maxGap < 2 {
		maxGap = 2
	}
	p := make([]float64, maxGap+1)
	var sum float64
	for k := 1; k <= maxGap; k++ {
		p[k] = math.Pow(1-r, float64(k-1)) * r
		sum += p[k]
	}
	p[maxGap] += 1 - sum // fold the truncated tail into the last bin
	return IntervalPMF{P: p}, nil
}

// GapPMF estimates the empirical gap law of an arbitrary sampler by
// running it on a dummy series and histogramming the index gaps — the
// bridge that lets Theorem 1 be applied to techniques with no closed-form
// H(x).
func GapPMF(s Sampler, seriesLen int) (IntervalPMF, error) {
	if seriesLen < 2 {
		return IntervalPMF{}, fmt.Errorf("core: series length %d too short to estimate gaps", seriesLen)
	}
	f := make([]float64, seriesLen) // values are irrelevant for gap structure
	samples, err := s.Sample(f)
	if err != nil {
		return IntervalPMF{}, fmt.Errorf("core: estimating gap pmf: %w", err)
	}
	if len(samples) < 2 {
		return IntervalPMF{}, fmt.Errorf("core: sampler yielded %d samples, need >= 2", len(samples))
	}
	maxGap := 0
	for i := 1; i < len(samples); i++ {
		if g := samples[i].Index - samples[i-1].Index; g > maxGap {
			maxGap = g
		}
	}
	p := make([]float64, maxGap+1)
	n := float64(len(samples) - 1)
	for i := 1; i < len(samples); i++ {
		p[samples[i].Index-samples[i-1].Index] += 1 / n
	}
	return IntervalPMF{P: p}, nil
}

// SNCResult reports the numerical Theorem 1 check: the autocorrelation of
// the thinned process computed through the tau-fold convolution of the gap
// law, and the power-law exponent recovered from it.
type SNCResult struct {
	Taus    []int     // lags of the sampled process
	Rg      []float64 // Rg(tau) = sum_u Rf(u) k(u, tau)
	BetaHat float64   // fitted decay exponent of Rg
	Beta    float64   // the original process' exponent
	Fit     stats.LineFit
}

// Preserved reports whether the fitted exponent matches the original
// within tol, i.e. whether the sampling technique satisfies the SNC and
// keeps the Hurst parameter.
func (r SNCResult) Preserved(tol float64) bool {
	return math.Abs(r.BetaHat-r.Beta) <= tol
}

// CheckSNC evaluates Theorem 1 numerically for the sampling technique
// described by gap law p against the LRD model Rf(tau) = Const*tau^-beta:
// it computes k(u, tau) = p^(*tau) with the FFT (steps S1-S3 of the
// paper), forms Rg(tau) = sum_u Rf(u) k(u, tau) for each requested tau,
// and fits log Rg against log tau. The technique preserves second-order
// statistics iff the fitted slope is -beta.
func CheckSNC(p IntervalPMF, acf lrd.PowerLawACF, taus []int) (SNCResult, error) {
	if err := p.Validate(); err != nil {
		return SNCResult{}, err
	}
	if len(taus) < 3 {
		return SNCResult{}, fmt.Errorf("core: need at least 3 lags for the SNC fit, got %d", len(taus))
	}
	res := SNCResult{Taus: taus, Rg: make([]float64, len(taus)), Beta: acf.Beta}
	for i, tau := range taus {
		if tau < 1 {
			return SNCResult{}, fmt.Errorf("core: SNC lag %d must be >= 1", tau)
		}
		k, err := dsp.SelfConvolvePower(p.P, tau)
		if err != nil {
			return SNCResult{}, fmt.Errorf("core: convolving gap pmf to order %d: %w", tau, err)
		}
		var rg float64
		for u, mass := range k {
			if mass > 0 && u > 0 {
				rg += acf.At(float64(u)) * mass
			}
		}
		res.Rg[i] = rg
	}
	lx := make([]float64, len(taus))
	ly := make([]float64, len(taus))
	for i, tau := range taus {
		lx[i] = math.Log(float64(tau))
		if res.Rg[i] <= 0 {
			return SNCResult{}, fmt.Errorf("core: nonpositive Rg(%d) = %g", tau, res.Rg[i])
		}
		ly[i] = math.Log(res.Rg[i])
	}
	fit, err := stats.FitLine(lx, ly)
	if err != nil {
		return SNCResult{}, fmt.Errorf("core: fitting SNC slope: %w", err)
	}
	res.BetaHat = -fit.Slope
	res.Fit = fit
	return res, nil
}

// CheckSNCDirect is CheckSNC with the convolution powers computed by
// repeated direct convolution instead of the FFT. It exists as the
// baseline of the FFT-vs-direct ablation; results are identical up to
// rounding.
func CheckSNCDirect(p IntervalPMF, acf lrd.PowerLawACF, taus []int) (SNCResult, error) {
	if err := p.Validate(); err != nil {
		return SNCResult{}, err
	}
	if len(taus) < 3 {
		return SNCResult{}, fmt.Errorf("core: need at least 3 lags for the SNC fit, got %d", len(taus))
	}
	res := SNCResult{Taus: taus, Rg: make([]float64, len(taus)), Beta: acf.Beta}
	for i, tau := range taus {
		if tau < 1 {
			return SNCResult{}, fmt.Errorf("core: SNC lag %d must be >= 1", tau)
		}
		k, err := dsp.SelfConvolvePowerDirect(p.P, tau)
		if err != nil {
			return SNCResult{}, err
		}
		var rg float64
		for u, mass := range k {
			if mass > 0 && u > 0 {
				rg += acf.At(float64(u)) * mass
			}
		}
		res.Rg[i] = rg
	}
	lx := make([]float64, len(taus))
	ly := make([]float64, len(taus))
	for i, tau := range taus {
		lx[i] = math.Log(float64(tau))
		if res.Rg[i] <= 0 {
			return SNCResult{}, fmt.Errorf("core: nonpositive Rg(%d) = %g", tau, res.Rg[i])
		}
		ly[i] = math.Log(res.Rg[i])
	}
	fit, err := stats.FitLine(lx, ly)
	if err != nil {
		return SNCResult{}, err
	}
	res.BetaHat = -fit.Slope
	res.Fit = fit
	return res, nil
}

// NegBinomialRg evaluates the paper's Eq. (10) for simple random sampling
// analytically: Rg(tau) = E[Rf(tau + I)] with I negative-binomial
// (tau successes, success probability rho). Terms are accumulated in log
// space until the remaining pmf mass drops below 1e-12. This closed-ish
// form cross-validates the FFT pipeline of CheckSNC.
func NegBinomialRg(acf lrd.PowerLawACF, rho float64, tau int) (float64, error) {
	if !(rho > 0) || rho >= 1 {
		return 0, fmt.Errorf("core: rho %g outside (0,1)", rho)
	}
	if tau < 1 {
		return 0, fmt.Errorf("core: tau %d must be >= 1", tau)
	}
	logRho := math.Log(rho)
	log1m := math.Log(1 - rho)
	var sum, mass float64
	// E[I] = tau(1-rho)/rho; sum far past it until mass ~ 1.
	limit := int(float64(tau)*(1-rho)/rho)*8 + 200
	for i := 0; i <= limit; i++ {
		// log NB(i) = log C(tau+i-1, i) + tau log rho + i log(1-rho)
		logPMF := stats.LogChoose(tau+i-1, i) + float64(tau)*logRho + float64(i)*log1m
		p := math.Exp(logPMF)
		sum += acf.At(float64(tau+i)) * p
		mass += p
		if 1-mass < 1e-12 {
			break
		}
	}
	if mass < 0.999 {
		return 0, fmt.Errorf("core: negative-binomial sum truncated with mass %g (tau=%d, rho=%g)", mass, tau, rho)
	}
	return sum, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
