package core

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// StreamSampler is the incremental form of a sampling technique: ticks of
// the traffic process are offered one at a time, in order, and the
// sampler emits each selected observation as soon as it is decidable.
// This is the engine every consumer runs on; the batch Sampler.Sample
// methods are thin adapters over it (see Collect).
//
// Implementations are single-goroutine state machines: they must not be
// offered ticks from multiple goroutines concurrently.
type StreamSampler interface {
	// Name identifies the technique (for reports and experiment tables).
	Name() string
	// Offer presents the next tick. index is recorded in emitted samples
	// and must increase by one per call starting from the first offered
	// tick. It returns the sample finalized by this tick, if any — which
	// may carry an earlier index when the decision was deferred (e.g.
	// stratified sampling emits a stratum's pick only once the stratum is
	// complete).
	Offer(index int, value float64) (Sample, bool)
	// Finish declares the end of the stream and returns any samples that
	// could only be decided with the whole stream seen (e.g. simple random
	// sampling's draw without replacement), or an error when the stream
	// was unusable for the configured technique.
	Finish() ([]Sample, error)
}

// Streamer is a sampler configuration that can produce a fresh streaming
// engine. Every batch sampler in this package implements it; Stream
// validates the configuration.
type Streamer interface {
	Name() string
	Stream() (StreamSampler, error)
}

// Collect runs a streaming sampler over a complete series and gathers its
// output — the bridge from the streaming engine back to the paper's batch
// formulation f -> []Sample.
func Collect(s StreamSampler, f []float64) ([]Sample, error) {
	if len(f) == 0 {
		return nil, fmt.Errorf("core: cannot sample an empty series")
	}
	out := make([]Sample, 0, 16)
	for i, v := range f {
		if smp, ok := s.Offer(i, v); ok {
			out = append(out, smp)
		}
	}
	tail, err := s.Finish()
	if err != nil {
		return nil, err
	}
	return append(out, tail...), nil
}

// sampleViaStream derives batch sampling from the streaming engine.
func sampleViaStream(c Streamer, f []float64) ([]Sample, error) {
	s, err := c.Stream()
	if err != nil {
		return nil, err
	}
	return Collect(s, f)
}

// IntervalForRate maps a sampling rate r in (0,1] to the base interval
// round(1/r), never below 1 — the single conversion rule shared by the
// spec registry, the rate-sized simple random draw and the CLIs.
func IntervalForRate(rate float64) (int, error) {
	if !(rate > 0) || rate > 1 {
		return 0, fmt.Errorf("core: sampling rate %g outside (0,1]", rate)
	}
	interval := int(1/rate + 0.5)
	if interval < 1 {
		interval = 1
	}
	return interval, nil
}

// streamSystematic keeps every interval-th tick starting at offset.
type streamSystematic struct {
	interval int
	next     int // tick count at which the next base sample falls
	tick     int
}

// Name implements StreamSampler.
func (p *streamSystematic) Name() string { return "systematic" }

// Offer implements StreamSampler.
func (p *streamSystematic) Offer(index int, value float64) (Sample, bool) {
	t := p.tick
	p.tick++
	if t != p.next {
		return Sample{}, false
	}
	p.next += p.interval
	return Sample{Index: index, Value: value}, true
}

// Finish implements StreamSampler.
func (p *streamSystematic) Finish() ([]Sample, error) { return nil, nil }

// streamStratified draws one position per stratum. The position is drawn
// when the stratum opens and the pick is emitted when the stratum
// completes, so an incomplete trailing stratum contributes nothing — the
// same rule as the batch formulation.
type streamStratified struct {
	interval int
	rng      *rand.Rand
	tick     int
	pick     int // position within the current stratum
	pending  Sample
}

// Name implements StreamSampler.
func (p *streamStratified) Name() string { return "stratified" }

// Offer implements StreamSampler.
func (p *streamStratified) Offer(index int, value float64) (Sample, bool) {
	pos := p.tick % p.interval
	p.tick++
	if pos == 0 {
		p.pick = p.rng.IntN(p.interval)
	}
	if pos == p.pick {
		p.pending = Sample{Index: index, Value: value}
	}
	if pos == p.interval-1 {
		return p.pending, true
	}
	return Sample{}, false
}

// Finish implements StreamSampler.
func (p *streamStratified) Finish() ([]Sample, error) { return nil, nil }

// streamSimpleRandom buffers the stream and draws at Finish: a uniform
// draw without replacement needs the whole population, so simple random
// sampling is the one technique that is inherently offline. The buffer is
// the machine's state; memory is O(stream length).
type streamSimpleRandom struct {
	n    int     // fixed sample size; 0 defers to rate
	rate float64 // population-relative size when n == 0
	rng  *rand.Rand
	buf  []Sample
}

// Name implements StreamSampler.
func (p *streamSimpleRandom) Name() string { return "simple-random" }

// Offer implements StreamSampler.
func (p *streamSimpleRandom) Offer(index int, value float64) (Sample, bool) {
	p.buf = append(p.buf, Sample{Index: index, Value: value})
	return Sample{}, false
}

// Finish implements StreamSampler. The selection is a partial
// Fisher-Yates over the buffered positions followed by an index sort.
func (p *streamSimpleRandom) Finish() ([]Sample, error) {
	if len(p.buf) == 0 {
		return nil, fmt.Errorf("core: cannot sample an empty series")
	}
	n := p.n
	if n == 0 {
		interval, err := IntervalForRate(p.rate)
		if err != nil {
			return nil, err
		}
		n = len(p.buf) / interval
		if n < 1 {
			n = 1
		}
	}
	if n > len(p.buf) {
		return nil, fmt.Errorf("core: sample size %d exceeds population %d", n, len(p.buf))
	}
	idx := make([]int, len(p.buf))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		j := i + p.rng.IntN(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	chosen := idx[:n]
	sort.Ints(chosen)
	out := make([]Sample, n)
	for i, k := range chosen {
		out[i] = p.buf[k]
	}
	return out, nil
}

// streamBernoulli keeps each tick independently with probability rate.
type streamBernoulli struct {
	rate float64
	rng  *rand.Rand
}

// Name implements StreamSampler.
func (p *streamBernoulli) Name() string { return "bernoulli" }

// Offer implements StreamSampler.
func (p *streamBernoulli) Offer(index int, value float64) (Sample, bool) {
	if p.rng.Float64() < p.rate {
		return Sample{Index: index, Value: value}, true
	}
	return Sample{}, false
}

// Finish implements StreamSampler.
func (p *streamBernoulli) Finish() ([]Sample, error) { return nil, nil }

// Interface compliance checks.
var (
	_ StreamSampler = (*streamSystematic)(nil)
	_ StreamSampler = (*streamStratified)(nil)
	_ StreamSampler = (*streamSimpleRandom)(nil)
	_ StreamSampler = (*streamBernoulli)(nil)
)
