package core

import (
	"fmt"
	"math"
	"sort"
)

// StreamSampler is the incremental form of a sampling technique: ticks of
// the traffic process are offered one at a time, in order, and the
// sampler emits each selected observation as soon as it is decidable.
// This is the engine every consumer runs on; the batch Sampler.Sample
// methods are thin adapters over it (see Collect). Techniques that can
// jump over ticks they will not keep also implement BatchStreamer, the
// skip-based batch fast path the public sampling.Engine dispatches to.
//
// Implementations are single-goroutine state machines: they must not be
// offered ticks from multiple goroutines concurrently.
type StreamSampler interface {
	// Name identifies the technique (for reports and experiment tables).
	Name() string
	// Offer presents the next tick. index is recorded in emitted samples
	// and must increase by one per call starting from the first offered
	// tick. It returns the sample finalized by this tick, if any — which
	// may carry an earlier index when the decision was deferred (e.g.
	// stratified sampling emits a stratum's pick only once the stratum is
	// complete).
	Offer(index int, value float64) (Sample, bool)
	// Finish declares the end of the stream and returns any samples that
	// could only be decided with the whole stream seen (e.g. simple random
	// sampling's draw without replacement), or an error when the stream
	// was unusable for the configured technique.
	Finish() ([]Sample, error)
}

// Streamer is a sampler configuration that can produce a fresh streaming
// engine. Every batch sampler in this package implements it; Stream
// validates the configuration.
type Streamer interface {
	Name() string
	Stream() (StreamSampler, error)
}

// Collect runs a streaming sampler over a complete series and gathers its
// output — the bridge from the streaming engine back to the paper's batch
// formulation f -> []Sample. It deliberately drives the per-tick Offer
// form: Collect is the reference run the batch fast paths are tested
// against.
func Collect(s StreamSampler, f []float64) ([]Sample, error) {
	if len(f) == 0 {
		return nil, fmt.Errorf("core: cannot sample an empty series")
	}
	out := make([]Sample, 0, 16)
	for i, v := range f {
		if smp, ok := s.Offer(i, v); ok {
			out = append(out, smp)
		}
	}
	tail, err := s.Finish()
	if err != nil {
		return nil, err
	}
	return append(out, tail...), nil
}

// sampleViaStream derives batch sampling from the streaming engine.
func sampleViaStream(c Streamer, f []float64) ([]Sample, error) {
	s, err := c.Stream()
	if err != nil {
		return nil, err
	}
	return Collect(s, f)
}

// IntervalForRate maps a sampling rate r in (0,1] to the base interval
// 1/r rounded to the nearest integer — halves round up (away from
// zero), so r = 0.4 gives interval 3, not 2 — and never below 1. This
// is the single conversion rule shared by the spec registry, the
// rate-sized simple random draw and the CLIs; note that for
// non-reciprocal rates the achieved rate 1/interval differs from r by
// up to the rounding error (r = 0.7 keeps every tick, r = 0.6 keeps
// every second one).
func IntervalForRate(rate float64) (int, error) {
	if !(rate > 0) || rate > 1 {
		return 0, fmt.Errorf("core: sampling rate %g outside (0,1]", rate)
	}
	interval := int(1/rate + 0.5)
	if interval < 1 {
		interval = 1
	}
	return interval, nil
}

// streamSystematic keeps every interval-th tick starting at offset.
type streamSystematic struct {
	interval int
	next     int // tick count at which the next base sample falls
	tick     int
}

// Name implements StreamSampler.
func (p *streamSystematic) Name() string { return "systematic" }

// Offer implements StreamSampler.
func (p *streamSystematic) Offer(index int, value float64) (Sample, bool) {
	t := p.tick
	p.tick++
	if t != p.next {
		return Sample{}, false
	}
	p.next += p.interval
	return Sample{Index: index, Value: value}, true
}

// OfferBatch implements BatchStreamer: the selected positions are known
// in advance, so the batch form steps straight from kept tick to kept
// tick — interval-length jumps — instead of counting every tick.
//
//samplelint:hotpath
func (p *streamSystematic) OfferBatch(startIndex int, values []float64, dst []Sample) []Sample {
	// p.next never trails p.tick: Offer only advances it past the
	// current tick, so the batch-relative offset is non-negative.
	off := p.next - p.tick
	for off < len(values) {
		dst = append(dst, Sample{Index: startIndex + off, Value: values[off]})
		off += p.interval
	}
	p.next = p.tick + off
	p.tick += len(values)
	return dst
}

// Finish implements StreamSampler.
func (p *streamSystematic) Finish() ([]Sample, error) { return nil, nil }

// streamStratified draws one position per stratum. The position is drawn
// when the stratum opens and the pick is emitted when the stratum
// completes, so an incomplete trailing stratum contributes nothing — the
// same rule as the batch formulation.
type streamStratified struct {
	interval int
	rng      *Rand
	tick     int
	pick     int // position within the current stratum
	pending  Sample
}

// Name implements StreamSampler.
func (p *streamStratified) Name() string { return "stratified" }

// Offer implements StreamSampler.
func (p *streamStratified) Offer(index int, value float64) (Sample, bool) {
	pos := p.tick % p.interval
	p.tick++
	if pos == 0 {
		p.pick = p.rng.IntN(p.interval)
	}
	if pos == p.pick {
		p.pending = Sample{Index: index, Value: value}
	}
	if pos == p.interval-1 {
		return p.pending, true
	}
	return Sample{}, false
}

// OfferBatch implements BatchStreamer: one draw when a stratum opens —
// exactly the draw sequence of the per-tick form — then a direct index
// computation for the pick and a jump to the stratum boundary, so the
// per-stratum work is O(1) regardless of the interval.
//
//samplelint:hotpath
func (p *streamStratified) OfferBatch(startIndex int, values []float64, dst []Sample) []Sample {
	i, n := 0, len(values)
	for i < n {
		pos := p.tick % p.interval
		if pos == 0 {
			p.pick = p.rng.IntN(p.interval)
		}
		// The batch covers this stratum from pos up to pos+step.
		step := p.interval - pos
		if left := n - i; left < step {
			step = left
		}
		if rel := p.pick - pos; rel >= 0 && rel < step {
			p.pending = Sample{Index: startIndex + i + rel, Value: values[i+rel]}
		}
		p.tick += step
		i += step
		if pos+step == p.interval {
			dst = append(dst, p.pending)
		}
	}
	return dst
}

// Finish implements StreamSampler.
func (p *streamStratified) Finish() ([]Sample, error) { return nil, nil }

// streamSimpleRandom is the uniform draw without replacement, in one of
// two regimes:
//
// Fixed size (n > 0) runs a Vitter-style reservoir with skip counts
// (Algorithm L): the first n ticks fill the reservoir, then a single
// geometric-tailed draw yields how many ticks to pass over before the
// next replacement, so the per-tick work is a counter decrement and
// memory is O(n) instead of the previous whole-stream buffer.
//
// Population-relative size (rate, when n == 0) cannot fix the sample
// size until the stream ends, so it buffers the raw values — O(stream
// length), the one inherently offline regime — and draws the selected
// indices at Finish with Floyd's sampling algorithm: O(n) draws where
// the previous partial Fisher-Yates shuffled an O(stream) index array.
type streamSimpleRandom struct {
	n    int     // fixed sample size; 0 defers to rate
	rate float64 // population-relative size when n == 0
	rng  *Rand

	// Fixed-n reservoir state.
	res  []Sample
	w    float64 // Algorithm L acceptance threshold
	skip int     // ticks to pass over before the next replacement
	seen int

	// Rate-mode buffer state. base records the index of the first
	// offered tick so Finish can reconstruct sample indices.
	buf  []float64
	base int
}

// Name implements StreamSampler.
func (p *streamSimpleRandom) Name() string { return "simple-random" }

// Offer implements StreamSampler.
func (p *streamSimpleRandom) Offer(index int, value float64) (Sample, bool) {
	if p.n == 0 {
		if p.seen == 0 {
			p.base = index
		}
		p.seen++
		p.buf = append(p.buf, value)
		return Sample{}, false
	}
	p.offerReservoir(index, value)
	return Sample{}, false
}

// offerReservoir advances the fixed-n reservoir by one tick.
func (p *streamSimpleRandom) offerReservoir(index int, value float64) {
	p.seen++
	if len(p.res) < p.n {
		p.res = append(p.res, Sample{Index: index, Value: value})
		if len(p.res) == p.n {
			p.w = math.Exp(math.Log(1-p.rng.Float64()) / float64(p.n))
			p.skip = reservoirSkip(p.rng, p.w)
		}
		return
	}
	if p.skip > 0 {
		p.skip--
		return
	}
	p.replace(index, value)
}

// replace admits the current tick into a uniformly chosen reservoir
// slot and draws the skip to the next replacement, tightening the
// Algorithm L threshold on the way.
func (p *streamSimpleRandom) replace(index int, value float64) {
	p.res[p.rng.IntN(p.n)] = Sample{Index: index, Value: value}
	p.w *= math.Exp(math.Log(1-p.rng.Float64()) / float64(p.n))
	p.skip = reservoirSkip(p.rng, p.w)
}

// OfferBatch implements BatchStreamer. Fixed-n mode jumps from
// replacement to replacement; rate mode reduces to one bulk append of
// the raw values (the whole batch is candidate state, nothing is
// decidable before Finish). Neither regime emits mid-stream, so dst is
// returned untouched.
//
//samplelint:hotpath
func (p *streamSimpleRandom) OfferBatch(startIndex int, values []float64, dst []Sample) []Sample {
	if p.n == 0 {
		p.bufferBatch(startIndex, values)
		return dst
	}
	i, n := 0, len(values)
	// Fill phase: at most p.n ticks ever take this path.
	for i < n && len(p.res) < p.n {
		p.offerReservoir(startIndex+i, values[i])
		i++
	}
	for i < n {
		j := i + p.skip
		if j >= n {
			p.skip = j - n
			p.seen += n - i
			return dst
		}
		p.seen += j - i + 1
		p.replace(startIndex+j, values[j])
		i = j + 1
	}
	return dst
}

// bufferBatch grows the rate-mode candidate buffer by a whole batch.
// Deliberately outside the //samplelint:hotpath annotation: buffering
// the stream is this regime's documented O(stream length) state, so
// the append may (and must) allocate as the buffer grows.
func (p *streamSimpleRandom) bufferBatch(startIndex int, values []float64) {
	if p.seen == 0 {
		p.base = startIndex
	}
	p.seen += len(values)
	p.buf = append(p.buf, values...)
}

// Finish implements StreamSampler. Fixed-n mode returns the reservoir
// in index order; rate mode draws n = max(1, N/IntervalForRate(rate))
// distinct positions from the N buffered ticks with Floyd's algorithm
// and returns them in index order.
func (p *streamSimpleRandom) Finish() ([]Sample, error) {
	if p.seen == 0 {
		return nil, fmt.Errorf("core: cannot sample an empty series")
	}
	if p.n > 0 {
		if p.n > p.seen {
			return nil, fmt.Errorf("core: sample size %d exceeds population %d", p.n, p.seen)
		}
		sort.Slice(p.res, func(i, j int) bool { return p.res[i].Index < p.res[j].Index })
		return p.res, nil
	}
	interval, err := IntervalForRate(p.rate)
	if err != nil {
		return nil, err
	}
	n := len(p.buf) / interval
	if n < 1 {
		n = 1
	}
	out := make([]Sample, 0, n)
	for _, k := range floydSample(p.rng, n, len(p.buf)) {
		out = append(out, Sample{Index: p.base + k, Value: p.buf[k]})
	}
	return out, nil
}

// floydSample draws n distinct positions uniformly from [0, pop) with
// Robert Floyd's algorithm — n draws, no shuffle of the population —
// and returns them sorted. Requires n <= pop.
func floydSample(rng *Rand, n, pop int) []int {
	chosen := make(map[int]struct{}, n)
	for j := pop - n; j < pop; j++ {
		t := rng.IntN(j + 1)
		if _, dup := chosen[t]; dup {
			chosen[j] = struct{}{}
		} else {
			chosen[t] = struct{}{}
		}
	}
	out := make([]int, 0, n)
	for k := range chosen {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// streamBernoulli keeps each tick independently with probability rate.
// Instead of one uniform draw per tick, it draws the geometric
// inter-sample gap (Eq. 13) once per kept sample and counts the skipped
// ticks down — the deterministic-arrival regime probabilistic sampling
// collapses to once the gap law is sampled directly.
type streamBernoulli struct {
	rate float64
	rng  *Rand
	logq float64 // log(1-rate), the geometric inverse-transform denominator
	skip int     // ticks to pass over before the next kept one
}

// newStreamBernoulli seeds the gap state: the first skip is drawn at
// construction so Offer and OfferBatch share one well-defined draw
// sequence.
func newStreamBernoulli(rate float64, rng *Rand) *streamBernoulli {
	p := &streamBernoulli{rate: rate, rng: rng, logq: math.Log1p(-rate)}
	p.skip = geometricSkip(rng, p.logq)
	return p
}

// Name implements StreamSampler.
func (p *streamBernoulli) Name() string { return "bernoulli" }

// Offer implements StreamSampler.
func (p *streamBernoulli) Offer(index int, value float64) (Sample, bool) {
	if p.skip > 0 {
		p.skip--
		return Sample{}, false
	}
	p.skip = geometricSkip(p.rng, p.logq)
	return Sample{Index: index, Value: value}, true
}

// OfferBatch implements BatchStreamer: hop from kept tick to kept tick,
// one geometric draw each, carrying the remainder of the final skip
// into the next batch.
//
//samplelint:hotpath
func (p *streamBernoulli) OfferBatch(startIndex int, values []float64, dst []Sample) []Sample {
	i, n := 0, len(values)
	for {
		j := i + p.skip
		if j >= n {
			p.skip = j - n
			return dst
		}
		dst = append(dst, Sample{Index: startIndex + j, Value: values[j]})
		p.skip = geometricSkip(p.rng, p.logq)
		i = j + 1
	}
}

// Finish implements StreamSampler.
func (p *streamBernoulli) Finish() ([]Sample, error) { return nil, nil }

// Interface compliance checks.
var (
	_ BatchStreamer = (*streamSystematic)(nil)
	_ BatchStreamer = (*streamStratified)(nil)
	_ BatchStreamer = (*streamSimpleRandom)(nil)
	_ BatchStreamer = (*streamBernoulli)(nil)
)
