package core

import (
	"math"
)

// BatchStreamer is the batch-ingest fast path of a StreamSampler: a
// technique that can consume a whole contiguous batch of ticks in one
// call, jumping skip-wise to the ticks it keeps instead of visiting
// every element. The kernels below implement it with one RNG draw per
// kept sample (or per stratum) where the per-tick form would branch —
// and the randomized ones would draw — once per tick.
//
// The contract mirrors Offer exactly: values[i] is the tick at index
// startIndex+i, batches must arrive in stream order with contiguous
// indices, and every sample the batch finalizes is appended to dst in
// the order the per-tick form would have emitted it. Interleaving
// Offer and OfferBatch on the same instance is legal and equivalent to
// the pure per-tick run: both forms advance the same state machine and
// consume the random source in the same sequence, which is what the
// engine-level batch-vs-tick equality tests pin.
//
// dst follows the append convention so callers can reuse one buffer
// across batches (the sampling.Engine keeps a per-engine scratch slice
// and passes dst[:0]); implementations never retain it.
type BatchStreamer interface {
	StreamSampler
	OfferBatch(startIndex int, values []float64, dst []Sample) []Sample
}

// maxSkip caps a drawn skip count so degenerate parameters (an
// underflowed acceptance probability, a log ratio rounding to +Inf)
// saturate to "skip effectively forever" instead of overflowing int.
const maxSkip = math.MaxInt64 / 4

// geometricSkip draws the number of ticks passed over before the next
// kept one under independent per-tick keep probability p:
// P(S = s) = (1-p)^s p for s >= 0, the geometric gap law of the
// paper's Eq. (13). logq is log(1-p), precomputed by the caller. A
// single inverse-transform draw replaces the run of per-tick uniform
// draws that would have rejected those s ticks one by one.
func geometricSkip(rng *Rand, logq float64) int {
	// 1-Float64() is uniform on (0,1], so the log is finite and <= 0.
	// For p = 1, logq is -Inf and the quotient is the skip 0 every
	// kept-with-certainty tick wants.
	s := math.Log(1-rng.Float64()) / logq
	if !(s < maxSkip) { // catches NaN (logq == 0 when p underflows to 0)
		return maxSkip
	}
	return int(s)
}

// reservoirSkip draws the Vitter-style skip of Algorithm L: with the
// reservoir's acceptance threshold at w, the number of ticks passed
// over before the next reservoir replacement is geometric with
// parameter w. Guarded like geometricSkip: w == 0 (underflow after
// astronomically many replacements) means "never replace again".
func reservoirSkip(rng *Rand, w float64) int {
	s := math.Log(1-rng.Float64()) / math.Log1p(-w)
	if !(s >= 0 && s < maxSkip) {
		return maxSkip
	}
	return int(s)
}
