package core

import (
	"errors"
	"fmt"
	"strings"
)

// ErrUnknownTechnique reports a spec that names no registered sampling
// technique. Errors returned by Lookup and LookupStream wrap it, so
// callers can branch with errors.Is.
var ErrUnknownTechnique = errors.New("unknown sampling technique")

// ErrBadSpec reports a spec string that does not follow the
// "name:key=val,key=val" syntax (empty name, missing '=', duplicate
// keys). Errors returned by ParseSpec wrap it.
var ErrBadSpec = errors.New("malformed sampler spec")

// ParamError describes a spec parameter the registry rejected: a value
// that does not parse, a missing required parameter, or a key the
// technique's factory did not consume. Lookup fills in Technique before
// returning; extract with errors.As.
type ParamError struct {
	Technique string // technique name; "" while the spec is still being parsed
	Param     string // offending key, or a comma-joined list of keys
	Value     string // raw value; "" when the key itself is the problem
	Reason    string // human-readable cause
}

// Error implements error.
func (e *ParamError) Error() string {
	var b strings.Builder
	b.WriteString("core: ")
	if e.Technique != "" {
		fmt.Fprintf(&b, "sampler %q: ", e.Technique)
	}
	fmt.Fprintf(&b, "parameter %s", e.Param)
	if e.Value != "" {
		fmt.Fprintf(&b, "=%q", e.Value)
	}
	b.WriteString(": ")
	b.WriteString(e.Reason)
	return b.String()
}
