// Package core implements the paper's contribution: the three classic
// traffic-sampling techniques (static systematic, stratified random,
// simple random), the proposed Biased Systematic Sampling (BSS) with
// static, unbiased, biased and online-adaptive parameterizations, the
// renewal-process machinery behind the Sufficient-and-Necessary Condition
// (Theorem 1) for Hurst-parameter preservation, the average-variance
// evaluation of Theorem 2, and the full BSS parameter theory (bias ratio
// xi, extra-sample count L, threshold ratio epsilon, overhead, and the
// eta(r) convergence law).
//
// Samplers operate on a discrete traffic process f(t) represented as a
// []float64 — "the traffic process measured at some fixed time
// granularity" of the paper's Section II — and return the positions and
// values they selected.
package core

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Sample is one selected observation of the parent process.
type Sample struct {
	Index     int     // position in the parent series
	Value     float64 // f(Index)
	Qualified bool    // true when taken as a BSS extra ("qualified") sample
}

// Sampler selects observations from a traffic series.
type Sampler interface {
	// Name identifies the technique (for reports and experiment tables).
	Name() string
	// Sample returns the selected observations in increasing index order.
	Sample(f []float64) ([]Sample, error)
}

// Systematic is static systematic sampling: every Interval-th element is
// selected deterministically, starting at Offset. Different Offsets give
// the different "instances" whose spread Theorem 2 bounds.
type Systematic struct {
	Interval int // C >= 1
	Offset   int // in [0, Interval)
}

// NewSystematic validates the parameters.
func NewSystematic(interval, offset int) (Systematic, error) {
	if interval < 1 {
		return Systematic{}, fmt.Errorf("core: systematic interval %d must be >= 1", interval)
	}
	if offset < 0 || offset >= interval {
		return Systematic{}, fmt.Errorf("core: systematic offset %d outside [0, %d)", offset, interval)
	}
	return Systematic{Interval: interval, Offset: offset}, nil
}

// Name implements Sampler.
func (s Systematic) Name() string { return "systematic" }

// Sample implements Sampler.
func (s Systematic) Sample(f []float64) ([]Sample, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if len(f) == 0 {
		return nil, fmt.Errorf("core: cannot sample an empty series")
	}
	out := make([]Sample, 0, len(f)/s.Interval+1)
	for i := s.Offset; i < len(f); i += s.Interval {
		out = append(out, Sample{Index: i, Value: f[i]})
	}
	return out, nil
}

func (s Systematic) validate() error {
	if s.Interval < 1 {
		return fmt.Errorf("core: systematic interval %d must be >= 1", s.Interval)
	}
	if s.Offset < 0 || s.Offset >= s.Interval {
		return fmt.Errorf("core: systematic offset %d outside [0, %d)", s.Offset, s.Interval)
	}
	return nil
}

// Stratified is stratified random sampling: the time axis is divided into
// strata of length Interval and one position is drawn uniformly inside
// each stratum.
type Stratified struct {
	Interval int
	Rng      *rand.Rand
}

// NewStratified validates the parameters.
func NewStratified(interval int, rng *rand.Rand) (Stratified, error) {
	if interval < 1 {
		return Stratified{}, fmt.Errorf("core: stratified interval %d must be >= 1", interval)
	}
	if rng == nil {
		return Stratified{}, fmt.Errorf("core: stratified sampling needs a random source")
	}
	return Stratified{Interval: interval, Rng: rng}, nil
}

// Name implements Sampler.
func (s Stratified) Name() string { return "stratified" }

// Sample implements Sampler.
func (s Stratified) Sample(f []float64) ([]Sample, error) {
	if s.Interval < 1 {
		return nil, fmt.Errorf("core: stratified interval %d must be >= 1", s.Interval)
	}
	if s.Rng == nil {
		return nil, fmt.Errorf("core: stratified sampling needs a random source")
	}
	if len(f) == 0 {
		return nil, fmt.Errorf("core: cannot sample an empty series")
	}
	out := make([]Sample, 0, len(f)/s.Interval+1)
	for start := 0; start+s.Interval <= len(f); start += s.Interval {
		idx := start + s.Rng.IntN(s.Interval)
		out = append(out, Sample{Index: idx, Value: f[idx]})
	}
	return out, nil
}

// SimpleRandom is simple random sampling: N positions drawn uniformly
// without replacement from the whole series.
type SimpleRandom struct {
	N   int
	Rng *rand.Rand
}

// NewSimpleRandom validates the parameters.
func NewSimpleRandom(n int, rng *rand.Rand) (SimpleRandom, error) {
	if n < 1 {
		return SimpleRandom{}, fmt.Errorf("core: simple random sample size %d must be >= 1", n)
	}
	if rng == nil {
		return SimpleRandom{}, fmt.Errorf("core: simple random sampling needs a random source")
	}
	return SimpleRandom{N: n, Rng: rng}, nil
}

// Name implements Sampler.
func (s SimpleRandom) Name() string { return "simple-random" }

// Sample implements Sampler. Selection uses a partial Fisher-Yates over
// the index set, O(len(f)) memory and O(N) swaps, then sorts the chosen
// indices.
func (s SimpleRandom) Sample(f []float64) ([]Sample, error) {
	if s.N < 1 {
		return nil, fmt.Errorf("core: simple random sample size %d must be >= 1", s.N)
	}
	if s.Rng == nil {
		return nil, fmt.Errorf("core: simple random sampling needs a random source")
	}
	if len(f) == 0 {
		return nil, fmt.Errorf("core: cannot sample an empty series")
	}
	n := s.N
	if n > len(f) {
		return nil, fmt.Errorf("core: sample size %d exceeds population %d", n, len(f))
	}
	idx := make([]int, len(f))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		j := i + s.Rng.IntN(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	chosen := idx[:n]
	sort.Ints(chosen)
	out := make([]Sample, n)
	for i, k := range chosen {
		out[i] = Sample{Index: k, Value: f[k]}
	}
	return out, nil
}

// Bernoulli is probabilistic 1-in-1/Rate sampling: each element is selected
// independently with probability Rate. Its inter-sample gaps follow the
// geometric law of the paper's Eq. (13), making it the event-driven
// counterpart of SimpleRandom.
type Bernoulli struct {
	Rate float64
	Rng  *rand.Rand
}

// NewBernoulli validates the parameters.
func NewBernoulli(rate float64, rng *rand.Rand) (Bernoulli, error) {
	if !(rate > 0) || rate > 1 {
		return Bernoulli{}, fmt.Errorf("core: Bernoulli rate %g outside (0,1]", rate)
	}
	if rng == nil {
		return Bernoulli{}, fmt.Errorf("core: Bernoulli sampling needs a random source")
	}
	return Bernoulli{Rate: rate, Rng: rng}, nil
}

// Name implements Sampler.
func (s Bernoulli) Name() string { return "bernoulli" }

// Sample implements Sampler.
func (s Bernoulli) Sample(f []float64) ([]Sample, error) {
	if !(s.Rate > 0) || s.Rate > 1 {
		return nil, fmt.Errorf("core: Bernoulli rate %g outside (0,1]", s.Rate)
	}
	if s.Rng == nil {
		return nil, fmt.Errorf("core: Bernoulli sampling needs a random source")
	}
	if len(f) == 0 {
		return nil, fmt.Errorf("core: cannot sample an empty series")
	}
	out := make([]Sample, 0, int(float64(len(f))*s.Rate)+1)
	for i, v := range f {
		if s.Rng.Float64() < s.Rate {
			out = append(out, Sample{Index: i, Value: v})
		}
	}
	return out, nil
}

// Interface compliance checks.
var (
	_ Sampler = Systematic{}
	_ Sampler = Stratified{}
	_ Sampler = SimpleRandom{}
	_ Sampler = Bernoulli{}
)
