// Package core implements the paper's contribution: the three classic
// traffic-sampling techniques (static systematic, stratified random,
// simple random), the proposed Biased Systematic Sampling (BSS) with
// static, unbiased, biased and online-adaptive parameterizations, the
// renewal-process machinery behind the Sufficient-and-Necessary Condition
// (Theorem 1) for Hurst-parameter preservation, the average-variance
// evaluation of Theorem 2, and the full BSS parameter theory (bias ratio
// xi, extra-sample count L, threshold ratio epsilon, overhead, and the
// eta(r) convergence law).
//
// Every technique is implemented once, as an incremental StreamSampler
// state machine consuming the traffic process f(t) tick by tick; the
// batch Sampler interface below is a thin adapter over it (Collect). A
// spec-string registry (Register/Lookup/Names) builds either form from
// descriptions like "bss:rate=1e-3,L=10,eps=1.0".
package core

import (
	"fmt"
)

// Sample is one selected observation of the parent process.
type Sample struct {
	Index     int     // position in the parent series
	Value     float64 // f(Index)
	Qualified bool    // true when taken as a BSS extra ("qualified") sample
}

// Sampler selects observations from a traffic series.
type Sampler interface {
	// Name identifies the technique (for reports and experiment tables).
	Name() string
	// Sample returns the selected observations in increasing index order.
	Sample(f []float64) ([]Sample, error)
}

// Systematic is static systematic sampling: every Interval-th element is
// selected deterministically, starting at Offset. Different Offsets give
// the different "instances" whose spread Theorem 2 bounds.
type Systematic struct {
	Interval int // C >= 1
	Offset   int // in [0, Interval)
}

// NewSystematic validates the parameters.
func NewSystematic(interval, offset int) (Systematic, error) {
	s := Systematic{Interval: interval, Offset: offset}
	if err := s.validate(); err != nil {
		return Systematic{}, err
	}
	return s, nil
}

// Name implements Sampler.
func (s Systematic) Name() string { return "systematic" }

// Stream implements Streamer.
func (s Systematic) Stream() (StreamSampler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &streamSystematic{interval: s.Interval, next: s.Offset}, nil
}

// Sample implements Sampler.
func (s Systematic) Sample(f []float64) ([]Sample, error) { return sampleViaStream(s, f) }

func (s Systematic) validate() error {
	if s.Interval < 1 {
		return fmt.Errorf("core: systematic interval %d must be >= 1", s.Interval)
	}
	if s.Offset < 0 || s.Offset >= s.Interval {
		return fmt.Errorf("core: systematic offset %d outside [0, %d)", s.Offset, s.Interval)
	}
	return nil
}

// Stratified is stratified random sampling: the time axis is divided into
// strata of length Interval and one position is drawn uniformly inside
// each stratum.
type Stratified struct {
	Interval int
	Rng      *Rand
}

// NewStratified validates the parameters.
func NewStratified(interval int, rng *Rand) (Stratified, error) {
	s := Stratified{Interval: interval, Rng: rng}
	if err := s.validate(); err != nil {
		return Stratified{}, err
	}
	return s, nil
}

// Name implements Sampler.
func (s Stratified) Name() string { return "stratified" }

// Stream implements Streamer.
func (s Stratified) Stream() (StreamSampler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &streamStratified{interval: s.Interval, rng: s.Rng}, nil
}

// Sample implements Sampler.
func (s Stratified) Sample(f []float64) ([]Sample, error) { return sampleViaStream(s, f) }

func (s Stratified) validate() error {
	if s.Interval < 1 {
		return fmt.Errorf("core: stratified interval %d must be >= 1", s.Interval)
	}
	if s.Rng == nil {
		return fmt.Errorf("core: stratified sampling needs a random source")
	}
	return nil
}

// SimpleRandom is simple random sampling: positions drawn uniformly
// without replacement from the whole series. The size is either fixed (N)
// or population-relative (Rate, used when N == 0): with Rate r the draw
// keeps max(1, len(f)/round(1/r)) positions.
type SimpleRandom struct {
	N    int
	Rate float64
	Rng  *Rand
}

// NewSimpleRandom validates a fixed-size configuration.
func NewSimpleRandom(n int, rng *Rand) (SimpleRandom, error) {
	s := SimpleRandom{N: n, Rng: rng}
	if err := s.validate(); err != nil {
		return SimpleRandom{}, err
	}
	return s, nil
}

// NewSimpleRandomRate validates a population-relative configuration.
func NewSimpleRandomRate(rate float64, rng *Rand) (SimpleRandom, error) {
	s := SimpleRandom{Rate: rate, Rng: rng}
	if err := s.validate(); err != nil {
		return SimpleRandom{}, err
	}
	return s, nil
}

// Name implements Sampler.
func (s SimpleRandom) Name() string { return "simple-random" }

// Stream implements Streamer. The fixed-size form (N > 0) runs a
// skip-based reservoir in O(N) memory; the population-relative form
// buffers the raw values and draws at Finish — a rate-sized draw
// without replacement needs the whole population.
func (s SimpleRandom) Stream() (StreamSampler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &streamSimpleRandom{n: s.N, rate: s.Rate, rng: s.Rng}, nil
}

// Sample implements Sampler.
func (s SimpleRandom) Sample(f []float64) ([]Sample, error) { return sampleViaStream(s, f) }

func (s SimpleRandom) validate() error {
	if s.N < 1 && s.Rate == 0 {
		return fmt.Errorf("core: simple random sample size %d must be >= 1", s.N)
	}
	if s.N < 0 {
		return fmt.Errorf("core: simple random sample size %d must be >= 0", s.N)
	}
	if s.N == 0 && (!(s.Rate > 0) || s.Rate > 1) {
		return fmt.Errorf("core: simple random rate %g outside (0,1]", s.Rate)
	}
	if s.Rng == nil {
		return fmt.Errorf("core: simple random sampling needs a random source")
	}
	return nil
}

// Bernoulli is probabilistic 1-in-1/Rate sampling: each element is selected
// independently with probability Rate. Its inter-sample gaps follow the
// geometric law of the paper's Eq. (13), making it the event-driven
// counterpart of SimpleRandom.
type Bernoulli struct {
	Rate float64
	Rng  *Rand
}

// NewBernoulli validates the parameters.
func NewBernoulli(rate float64, rng *Rand) (Bernoulli, error) {
	b := Bernoulli{Rate: rate, Rng: rng}
	if err := b.validate(); err != nil {
		return Bernoulli{}, err
	}
	return b, nil
}

// Name implements Sampler.
func (s Bernoulli) Name() string { return "bernoulli" }

// Stream implements Streamer.
func (s Bernoulli) Stream() (StreamSampler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return newStreamBernoulli(s.Rate, s.Rng), nil
}

// Sample implements Sampler.
func (s Bernoulli) Sample(f []float64) ([]Sample, error) { return sampleViaStream(s, f) }

func (s Bernoulli) validate() error {
	if !(s.Rate > 0) || s.Rate > 1 {
		return fmt.Errorf("core: Bernoulli rate %g outside (0,1]", s.Rate)
	}
	if s.Rng == nil {
		return fmt.Errorf("core: Bernoulli sampling needs a random source")
	}
	return nil
}

// Interface compliance checks.
var (
	_ Sampler  = Systematic{}
	_ Sampler  = Stratified{}
	_ Sampler  = SimpleRandom{}
	_ Sampler  = Bernoulli{}
	_ Streamer = Systematic{}
	_ Streamer = Stratified{}
	_ Streamer = SimpleRandom{}
	_ Streamer = Bernoulli{}
)
