package core

import (
	"math"
	"testing"

	"repro/internal/dist"
)

func TestPlacementString(t *testing.T) {
	if PlacementSpread.String() != "spread" || PlacementChase.String() != "chase" {
		t.Error("Placement.String broken")
	}
}

func TestPlacementValidation(t *testing.T) {
	b := BSS{Interval: 10, L: 2, Epsilon: 1, Placement: Placement(9)}
	if _, err := b.Sample(seq(100)); err == nil {
		t.Error("expected error for unknown placement")
	}
}

func TestProbeOffsetsSpread(t *testing.T) {
	b := BSS{Interval: 10, L: 4, Epsilon: 1}
	got := b.probeOffsets(100, nil)
	want := []int{102, 104, 106, 108}
	if len(got) != len(want) {
		t.Fatalf("offsets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("offset %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestProbesTruncatedAtSeriesEnd checks that probes scheduled past the
// end of the series simply never happen: the stream ends first.
func TestProbesTruncatedAtSeriesEnd(t *testing.T) {
	f := make([]float64, 105)
	for i := range f {
		f[i] = 1
	}
	for i := 100; i < 105; i++ {
		f[i] = 100 // trigger at base sample 100; burst through the tail
	}
	b, err := NewBSSStatic(10, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Sample(f)
	if err != nil {
		t.Fatal(err)
	}
	// Spread probes for the trigger at 100 fall at 102, 104, 106, 108;
	// only the first two exist.
	if _, qualified := CountKinds(got); qualified != 2 {
		t.Errorf("qualified = %d, want 2 (probes beyond the series end must be dropped)", qualified)
	}
	for _, s := range got {
		if s.Index >= len(f) {
			t.Errorf("sample index %d beyond series end", s.Index)
		}
	}
}

func TestProbeOffsetsChase(t *testing.T) {
	b := BSS{Interval: 10, L: 4, Epsilon: 1, Placement: PlacementChase}
	got := b.probeOffsets(100, nil)
	want := []int{101, 102, 103, 104}
	if len(got) != len(want) {
		t.Fatalf("offsets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("offset %d = %d, want %d", i, got[i], want[i])
		}
	}
	// Chase never crosses into the next interval.
	b.L = 20
	got = b.probeOffsets(100, nil)
	if len(got) != 9 { // 101..109
		t.Errorf("chase with L > C kept %d probes, want 9", len(got))
	}
}

func TestPlacementAblationChaseQualifiesMore(t *testing.T) {
	// On bursty data, chasing qualifies more probes per trigger (burst
	// persistence) but biases the estimate upward relative to spreading.
	rng := dist.NewRand(606)
	// Construct on/off bursts directly: heavy-tailed burst lengths.
	p := dist.Pareto{Alpha: 1.3, Xm: 3}
	f := make([]float64, 1<<17)
	i := 0
	for i < len(f) {
		burst := int(p.Sample(rng))
		level := p.Sample(rng)
		for j := 0; j < burst && i < len(f); j++ {
			f[i] = level
			i++
		}
		gap := int(p.Sample(rng) * 10)
		for j := 0; j < gap && i < len(f); j++ {
			f[i] = 0.5
			i++
		}
	}
	spread := BSS{Interval: 200, L: 8, Epsilon: 1.0}
	chase := spread
	chase.Placement = PlacementChase
	sSamples, err := spread.Sample(f)
	if err != nil {
		t.Fatal(err)
	}
	cSamples, err := chase.Sample(f)
	if err != nil {
		t.Fatal(err)
	}
	_, sq := CountKinds(sSamples)
	_, cq := CountKinds(cSamples)
	if cq <= sq {
		t.Errorf("chase qualified %d probes, spread %d; chasing should qualify more", cq, sq)
	}
	// Both estimates sit above the plain systematic one (qualified samples
	// only add mass above the threshold).
	sys, err := (Systematic{Interval: 200}).Sample(f)
	if err != nil {
		t.Fatal(err)
	}
	if MeanOf(cSamples) <= MeanOf(sys) || MeanOf(sSamples) <= MeanOf(sys) {
		t.Errorf("BSS means (%g chase, %g spread) should exceed systematic %g",
			MeanOf(cSamples), MeanOf(sSamples), MeanOf(sys))
	}
}

func TestOptimalDesign(t *testing.T) {
	d := BSSDesign{Alpha: 1.5}
	l, eps, overhead, err := d.OptimalDesign(0.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if l != 10 {
		t.Errorf("L = %d, want the full budget 10", l)
	}
	// The pair must sit on the xi = 1 contour.
	if xi := d.BiasRatio(float64(l), eps, 0.2); math.Abs(xi-1) > 1e-6 {
		t.Errorf("optimal pair off the unbiased contour: xi = %g", xi)
	}
	// Overhead formula: eta/(c-1).
	c := d.ThresholdRatio(eps)
	if math.Abs(overhead-0.2/(c-1)) > 1e-9 {
		t.Errorf("overhead = %g, want %g", overhead, 0.2/(c-1))
	}
	// A bigger budget buys a higher threshold and less overhead.
	_, eps50, overhead50, err := d.OptimalDesign(0.2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !(eps50 > eps) || !(overhead50 < overhead) {
		t.Errorf("budget 50: eps %g (want > %g), overhead %g (want < %g)", eps50, eps, overhead50, overhead)
	}
	// Errors.
	if _, _, _, err := d.OptimalDesign(0, 10); err == nil {
		t.Error("expected error for eta = 0")
	}
	if _, _, _, err := d.OptimalDesign(0.2, 0); err == nil {
		t.Error("expected error for maxL = 0")
	}
	// A tiny budget at a large bias is infeasible.
	if _, _, _, err := d.OptimalDesign(0.9, 1); err == nil {
		t.Error("expected infeasibility error")
	}
}

func TestOptimalDesignBeatsNaive(t *testing.T) {
	// The optimal pair's overhead never exceeds the eps=1 design's for the
	// same eta when both are feasible.
	d := BSSDesign{Alpha: 1.3}
	const eta = 0.25
	lNaive, err := d.LUnbiased(1.0, eta)
	if err != nil {
		t.Fatal(err)
	}
	naiveOverhead := d.QualifiedFraction(lNaive, 1.0)
	_, _, optOverhead, err := d.OptimalDesign(eta, int(math.Ceil(lNaive)))
	if err != nil {
		t.Fatal(err)
	}
	if optOverhead > naiveOverhead*1.001 {
		t.Errorf("optimal overhead %g exceeds naive %g", optOverhead, naiveOverhead)
	}
}
