// Package trace provides the on-disk formats of the reproduction: a
// compact binary format (checksummed header + fixed-width records) and a
// human-readable CSV format, for both packet traces and binned rate
// series. Readers validate headers and fail loudly on corruption rather
// than returning truncated data.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/traffic"
)

// Magic numbers identifying the two binary formats.
const (
	packetMagic = 0x50545243 // "PTRC"
	seriesMagic = 0x53545243 // "STRC"
	version     = 1
)

// WritePackets serializes a packet trace: header (magic, version, count,
// header CRC) followed by fixed 16-byte records.
func WritePackets(w io.Writer, pkts []traffic.Packet) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, packetMagic, uint64(len(pkts))); err != nil {
		return err
	}
	var rec [16]byte
	for i := range pkts {
		binary.LittleEndian.PutUint64(rec[0:8], math.Float64bits(pkts[i].Time))
		binary.LittleEndian.PutUint16(rec[8:10], pkts[i].Src)
		binary.LittleEndian.PutUint16(rec[10:12], pkts[i].Dst)
		binary.LittleEndian.PutUint32(rec[12:16], pkts[i].Size)
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("trace: writing packet %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flushing packet trace: %w", err)
	}
	return nil
}

// ReadPackets deserializes a packet trace written by WritePackets.
func ReadPackets(r io.Reader) ([]traffic.Packet, error) {
	br := bufio.NewReader(r)
	count, err := readHeader(br, packetMagic)
	if err != nil {
		return nil, err
	}
	if count > 1<<31 {
		return nil, fmt.Errorf("trace: implausible packet count %d", count)
	}
	// Capacity is capped rather than trusted: a header can carry any
	// CRC-consistent count, and allocating gigabytes before the first
	// record is read would let a 20-byte input exhaust memory.
	pkts := make([]traffic.Packet, 0, min(count, 1<<16))
	var rec [16]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: reading packet %d of %d: %w", i, count, err)
		}
		pkts = append(pkts, traffic.Packet{
			Time: math.Float64frombits(binary.LittleEndian.Uint64(rec[0:8])),
			Src:  binary.LittleEndian.Uint16(rec[8:10]),
			Dst:  binary.LittleEndian.Uint16(rec[10:12]),
			Size: binary.LittleEndian.Uint32(rec[12:16]),
		})
	}
	return pkts, nil
}

// WriteSeries serializes a rate series with its granularity (seconds per
// bin).
func WriteSeries(w io.Writer, granularity float64, f []float64) error {
	if granularity <= 0 {
		return fmt.Errorf("trace: granularity %g must be positive", granularity)
	}
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, seriesMagic, uint64(len(f))); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(granularity))
	if _, err := bw.Write(buf[:]); err != nil {
		return fmt.Errorf("trace: writing granularity: %w", err)
	}
	for i, v := range f {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("trace: writing bin %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flushing series: %w", err)
	}
	return nil
}

// ReadSeries deserializes a rate series written by WriteSeries.
func ReadSeries(r io.Reader) (granularity float64, f []float64, err error) {
	br := bufio.NewReader(r)
	count, err := readHeader(br, seriesMagic)
	if err != nil {
		return 0, nil, err
	}
	if count > 1<<31 {
		return 0, nil, fmt.Errorf("trace: implausible series length %d", count)
	}
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return 0, nil, fmt.Errorf("trace: reading granularity: %w", err)
	}
	granularity = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	if granularity <= 0 || math.IsNaN(granularity) || math.IsInf(granularity, 1) {
		return 0, nil, fmt.Errorf("trace: invalid granularity %g in header", granularity)
	}
	// Same allocation cap as ReadPackets: never size a buffer off an
	// unverified header count.
	f = make([]float64, 0, min(count, 1<<16))
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, nil, fmt.Errorf("trace: reading bin %d of %d: %w", i, count, err)
		}
		f = append(f, math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
	}
	return granularity, f, nil
}

// writeHeader emits magic, version, count and a CRC of those fields.
func writeHeader(w io.Writer, magic uint32, count uint64) error {
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], count)
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(hdr[0:16]))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	return nil
}

// readHeader validates magic, version and CRC, returning the record count.
func readHeader(r io.Reader, wantMagic uint32) (uint64, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("trace: reading header: %w", err)
	}
	if got := crc32.ChecksumIEEE(hdr[0:16]); got != binary.LittleEndian.Uint32(hdr[16:20]) {
		return 0, fmt.Errorf("trace: header checksum mismatch (corrupt file?)")
	}
	if magic := binary.LittleEndian.Uint32(hdr[0:4]); magic != wantMagic {
		return 0, fmt.Errorf("trace: bad magic 0x%08x (want 0x%08x)", magic, wantMagic)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != version {
		return 0, fmt.Errorf("trace: unsupported format version %d", v)
	}
	return binary.LittleEndian.Uint64(hdr[8:16]), nil
}

// WritePacketsCSV emits "time,src,dst,size" rows with a header line.
func WritePacketsCSV(w io.Writer, pkts []traffic.Packet) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("time,src,dst,size\n"); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	for i := range pkts {
		line := strconv.FormatFloat(pkts[i].Time, 'g', -1, 64) + "," +
			strconv.FormatUint(uint64(pkts[i].Src), 10) + "," +
			strconv.FormatUint(uint64(pkts[i].Dst), 10) + "," +
			strconv.FormatUint(uint64(pkts[i].Size), 10) + "\n"
		if _, err := bw.WriteString(line); err != nil {
			return fmt.Errorf("trace: writing CSV row %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flushing CSV: %w", err)
	}
	return nil
}

// ReadPacketsCSV parses the format emitted by WritePacketsCSV.
func ReadPacketsCSV(r io.Reader) ([]traffic.Packet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty CSV input")
	}
	if got := strings.TrimSpace(sc.Text()); got != "time,src,dst,size" {
		return nil, fmt.Errorf("trace: unexpected CSV header %q", got)
	}
	var pkts []traffic.Packet
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d has %d fields, want 4", lineNo, len(fields))
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d time: %w", lineNo, err)
		}
		src, err := strconv.ParseUint(fields[1], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d src: %w", lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[2], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d dst: %w", lineNo, err)
		}
		size, err := strconv.ParseUint(fields[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d size: %w", lineNo, err)
		}
		pkts = append(pkts, traffic.Packet{Time: t, Src: uint16(src), Dst: uint16(dst), Size: uint32(size)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scanning CSV: %w", err)
	}
	return pkts, nil
}
