package trace

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"

	"repro/internal/traffic"
)

// header builds an arbitrary (magic, version, count) header with a
// consistent CRC — the seeds must get the fuzzer past the checksum so
// it spends its budget on the interesting validation paths.
func header(magic, version uint32, count uint64) []byte {
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], count)
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(hdr[0:16]))
	return hdr[:]
}

// FuzzReadPackets asserts the packet reader's contract on adversarial
// input: it must never panic or over-allocate, and anything it accepts
// must survive a write/read round trip bit-for-bit.
func FuzzReadPackets(f *testing.F) {
	var valid bytes.Buffer
	if err := WritePackets(&valid, []traffic.Packet{
		{Time: 0.5, Src: 1, Dst: 2, Size: 40},
		{Time: 1.25, Src: 3, Dst: 4, Size: 1500},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:25]) // truncated mid-record

	corrupt := append([]byte(nil), valid.Bytes()...)
	corrupt[17] ^= 0xff // break the header CRC
	f.Add(corrupt)

	f.Add(header(0xdeadbeef, 1, 0))                                   // wrong magic, valid CRC
	f.Add(header(packetMagic, 99, 0))                                 // wrong version, valid CRC
	f.Add(header(packetMagic, 1, 1<<40))                              // implausible count, valid CRC
	f.Add(header(packetMagic, 1, 1<<30))                              // huge but "plausible" count, no body
	f.Add(append(header(packetMagic, 1, 2), valid.Bytes()[20:36]...)) // count beyond body

	f.Fuzz(func(t *testing.T, data []byte) {
		pkts, err := ReadPackets(bytes.NewReader(data))
		if err != nil {
			return // rejected loudly: exactly the contract for corruption
		}
		var out bytes.Buffer
		if err := WritePackets(&out, pkts); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		back, err := ReadPackets(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to read: %v", err)
		}
		if len(back) != len(pkts) {
			t.Fatalf("round trip changed count: %d -> %d", len(pkts), len(back))
		}
		for i := range pkts {
			if math.Float64bits(back[i].Time) != math.Float64bits(pkts[i].Time) ||
				back[i].Src != pkts[i].Src || back[i].Dst != pkts[i].Dst || back[i].Size != pkts[i].Size {
				t.Fatalf("packet %d changed in round trip: %+v -> %+v", i, pkts[i], back[i])
			}
		}
	})
}

// FuzzReadSeries is the same contract for the rate-series format, which
// additionally validates the granularity field.
func FuzzReadSeries(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteSeries(&valid, 0.1, []float64{1, 2.5, 0, 1e9}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:21]) // truncated mid-granularity

	corrupt := append([]byte(nil), valid.Bytes()...)
	corrupt[16] ^= 0x01 // break the header CRC
	f.Add(corrupt)

	nanGran := append([]byte(nil), header(seriesMagic, 1, 1)...)
	nanGran = binary.LittleEndian.AppendUint64(nanGran, math.Float64bits(math.NaN()))
	nanGran = binary.LittleEndian.AppendUint64(nanGran, math.Float64bits(1.0))
	f.Add(nanGran) // NaN granularity, valid CRC

	negGran := append([]byte(nil), header(seriesMagic, 1, 1)...)
	negGran = binary.LittleEndian.AppendUint64(negGran, math.Float64bits(-2.0))
	negGran = binary.LittleEndian.AppendUint64(negGran, math.Float64bits(1.0))
	f.Add(negGran)

	infGran := append([]byte(nil), header(seriesMagic, 1, 1)...)
	infGran = binary.LittleEndian.AppendUint64(infGran, math.Float64bits(math.Inf(1)))
	infGran = binary.LittleEndian.AppendUint64(infGran, math.Float64bits(1.0))
	f.Add(infGran) // +Inf granularity, valid CRC

	f.Add(header(seriesMagic, 1, 1<<30)) // huge count, no body
	f.Add(header(packetMagic, 1, 0))     // the other format's magic

	f.Fuzz(func(t *testing.T, data []byte) {
		gran, series, err := ReadSeries(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !(gran > 0) || math.IsNaN(gran) || math.IsInf(gran, 0) {
			t.Fatalf("accepted invalid granularity %g", gran)
		}
		var out bytes.Buffer
		if err := WriteSeries(&out, gran, series); err != nil {
			t.Fatalf("accepted series failed to re-encode: %v", err)
		}
		gran2, back, err := ReadSeries(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded series failed to read: %v", err)
		}
		if math.Float64bits(gran2) != math.Float64bits(gran) || len(back) != len(series) {
			t.Fatalf("round trip changed shape: gran %g->%g, len %d->%d", gran, gran2, len(series), len(back))
		}
		for i := range series {
			if math.Float64bits(back[i]) != math.Float64bits(series[i]) {
				t.Fatalf("bin %d changed in round trip: %g -> %g", i, series[i], back[i])
			}
		}
	})
}
