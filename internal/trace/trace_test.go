package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/traffic"
)

func randomPackets(seed uint64, n int) []traffic.Packet {
	rng := dist.NewRand(seed)
	pkts := make([]traffic.Packet, n)
	t := 0.0
	for i := range pkts {
		t += rng.ExpFloat64() * 0.01
		pkts[i] = traffic.Packet{
			Time: t,
			Src:  uint16(rng.IntN(100)),
			Dst:  uint16(rng.IntN(100)),
			Size: uint32(rng.IntN(1500) + 1),
		}
	}
	return pkts
}

func TestPacketsBinaryRoundTrip(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		pkts := randomPackets(seed, int(nRaw))
		var buf bytes.Buffer
		if err := WritePackets(&buf, pkts); err != nil {
			return false
		}
		got, err := ReadPackets(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(pkts) {
			return false
		}
		for i := range pkts {
			if got[i] != pkts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPacketsBinaryEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePackets(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPackets(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d packets, want 0", len(got))
	}
}

func TestReadPacketsCorruption(t *testing.T) {
	pkts := randomPackets(1, 10)
	var buf bytes.Buffer
	if err := WritePackets(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Corrupt the magic: CRC must catch it.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := ReadPackets(bytes.NewReader(bad)); err == nil {
		t.Error("expected error for corrupted header")
	}
	// Truncated body.
	if _, err := ReadPackets(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Error("expected error for truncated body")
	}
	// Wrong magic but valid CRC (a series file read as packets).
	var sbuf bytes.Buffer
	if err := WriteSeries(&sbuf, 0.1, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPackets(&sbuf); err == nil {
		t.Error("expected error reading series file as packets")
	}
	// Empty input.
	if _, err := ReadPackets(bytes.NewReader(nil)); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestSeriesRoundTrip(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		rng := dist.NewRand(seed)
		f := make([]float64, int(nRaw)+1)
		for i := range f {
			f[i] = rng.NormFloat64() * 1e6
		}
		var buf bytes.Buffer
		if err := WriteSeries(&buf, 0.01, f); err != nil {
			return false
		}
		g, got, err := ReadSeries(&buf)
		if err != nil || g != 0.01 || len(got) != len(f) {
			return false
		}
		for i := range f {
			if got[i] != f[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSeriesErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeries(&buf, 0, []float64{1}); err == nil {
		t.Error("expected error for zero granularity")
	}
	if err := WriteSeries(&buf, -0.5, []float64{1}); err == nil {
		t.Error("expected error for negative granularity")
	}
	if _, _, err := ReadSeries(bytes.NewReader(nil)); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestPacketsCSVRoundTrip(t *testing.T) {
	pkts := randomPackets(5, 64)
	var buf bytes.Buffer
	if err := WritePacketsCSV(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPacketsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("got %d packets, want %d", len(got), len(pkts))
	}
	for i := range pkts {
		if got[i] != pkts[i] {
			t.Errorf("packet %d: %+v != %+v", i, got[i], pkts[i])
		}
	}
}

func TestReadPacketsCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "a,b,c\n"},
		{"short row", "time,src,dst,size\n1,2,3\n"},
		{"bad time", "time,src,dst,size\nx,2,3,4\n"},
		{"bad src", "time,src,dst,size\n1,x,3,4\n"},
		{"bad dst", "time,src,dst,size\n1,2,x,4\n"},
		{"bad size", "time,src,dst,size\n1,2,3,x\n"},
		{"src overflow", "time,src,dst,size\n1,70000,3,4\n"},
	}
	for _, c := range cases {
		if _, err := ReadPacketsCSV(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Blank lines are tolerated.
	got, err := ReadPacketsCSV(strings.NewReader("time,src,dst,size\n1,2,3,4\n\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("blank line handling: %v, %d packets", err, len(got))
	}
}
