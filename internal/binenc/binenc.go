// Package binenc holds the little-endian binary primitives shared by
// the repository's state codecs (engine snapshots, checkpoint files).
// It deliberately mirrors the conventions of the tick wire format in
// sampling/wire — little-endian fixed-width integers, float64 as raw
// IEEE-754 bits, u32-length-prefixed byte strings — so a reader fluent
// in one codec can read the other.
//
// The Reader latches its first error: once a read fails (truncation, an
// oversized length prefix) every later read returns the zero value and
// Err keeps reporting the original failure, so decode loops can run
// unchecked and validate once at the end. Length prefixes are validated
// against the bytes actually remaining before any allocation, so a
// corrupt or hostile count cannot force a large allocation.
package binenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated is wrapped by Reader errors when the buffer ends before
// the value it should hold.
var ErrTruncated = errors.New("binenc: truncated input")

// AppendU8 appends one byte.
func AppendU8(dst []byte, v uint8) []byte { return append(dst, v) }

// AppendU32 appends a little-endian uint32.
func AppendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }

// AppendU64 appends a little-endian uint64.
func AppendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

// AppendI64 appends a little-endian two's-complement int64.
func AppendI64(dst []byte, v int64) []byte { return AppendU64(dst, uint64(v)) }

// AppendF64 appends a float64 as its raw IEEE-754 bits, little-endian.
func AppendF64(dst []byte, v float64) []byte { return AppendU64(dst, math.Float64bits(v)) }

// AppendBool appends a bool as one byte (0 or 1).
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendBytes appends a u32 length prefix followed by the bytes.
func AppendBytes(dst, b []byte) []byte {
	dst = AppendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

// AppendString appends a u32 length prefix followed by the string bytes.
func AppendString(dst []byte, s string) []byte {
	dst = AppendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// AppendF64s appends a u32 count followed by the raw float64 bits of
// each element.
func AppendF64s(dst []byte, xs []float64) []byte {
	dst = AppendU32(dst, uint32(len(xs)))
	for _, v := range xs {
		dst = AppendF64(dst, v)
	}
	return dst
}

// Reader decodes values written by the Append functions, in order,
// latching the first error.
type Reader struct {
	buf []byte
	err error
}

// NewReader wraps a buffer. The Reader reads views into it; the caller
// must not mutate the buffer while decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns how many undecoded bytes are left.
func (r *Reader) Remaining() int { return len(r.buf) }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.fail(fmt.Errorf("binenc: need %d bytes for %s, have %d: %w", n, what, len(r.buf), ErrTruncated))
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian two's-complement int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 from its raw IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads one byte as a bool; any byte other than 0 or 1 is an error.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(errors.New("binenc: bool byte outside {0,1}"))
		return false
	}
}

// Bytes reads a u32-length-prefixed byte string and returns a view into
// the underlying buffer. The length is validated against the remaining
// bytes before use.
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	return r.take(n, "length-prefixed bytes")
}

// String reads a u32-length-prefixed string (copying out of the buffer).
func (r *Reader) String() string { return string(r.Bytes()) }

// F64s reads a u32-count-prefixed float64 slice. The count is validated
// against the remaining bytes before the slice is allocated.
func (r *Reader) F64s() []float64 {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	if len(r.buf) < 8*n {
		r.fail(fmt.Errorf("binenc: need %d bytes for %d float64s, have %d: %w", 8*n, n, len(r.buf), ErrTruncated))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}
