package binenc

import (
	"errors"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var b []byte
	b = AppendU8(b, 7)
	b = AppendU32(b, 0xdeadbeef)
	b = AppendU64(b, 1<<63|42)
	b = AppendI64(b, -12345)
	b = AppendF64(b, math.Pi)
	b = AppendF64(b, math.NaN())
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendString(b, "stream-id")
	b = AppendF64s(b, []float64{1.5, -2.5, math.Inf(1)})
	b = AppendF64s(b, nil)

	r := NewReader(b)
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<63|42 {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -12345 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsNaN(got) {
		t.Errorf("F64 NaN round-trip = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Errorf("Bool round-trip broken")
	}
	if got := r.Bytes(); string(got) != "\x01\x02\x03" {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.String(); got != "stream-id" {
		t.Errorf("String = %q", got)
	}
	fs := r.F64s()
	if len(fs) != 3 || fs[0] != 1.5 || fs[1] != -2.5 || !math.IsInf(fs[2], 1) {
		t.Errorf("F64s = %v", fs)
	}
	if got := r.F64s(); got != nil {
		t.Errorf("empty F64s = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
}

func TestTruncationLatches(t *testing.T) {
	b := AppendU64(nil, 1)
	r := NewReader(b[:3])
	if got := r.U64(); got != 0 {
		t.Errorf("truncated U64 = %d, want 0", got)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("Err = %v, want ErrTruncated", r.Err())
	}
	// Later reads stay zero and the original error is preserved.
	first := r.Err()
	if got := r.String(); got != "" {
		t.Errorf("read after error = %q", got)
	}
	if r.Err() != first { //nolint:errorlint // identity check is the point
		t.Errorf("error was overwritten: %v", r.Err())
	}
}

func TestOversizedLengthPrefixIsRejected(t *testing.T) {
	// A length prefix claiming 2^32-1 bytes must fail before allocating.
	b := AppendU32(nil, math.MaxUint32)
	r := NewReader(b)
	if got := r.Bytes(); got != nil {
		t.Errorf("oversized Bytes = %v", got)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("Err = %v, want ErrTruncated", r.Err())
	}

	r = NewReader(AppendU32(nil, 1<<28))
	if got := r.F64s(); got != nil {
		t.Errorf("oversized F64s = %v", got)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("F64s Err = %v, want ErrTruncated", r.Err())
	}
}

func TestBadBoolByte(t *testing.T) {
	r := NewReader([]byte{2})
	if r.Bool() {
		t.Errorf("bad bool byte decoded as true")
	}
	if r.Err() == nil {
		t.Fatalf("bad bool byte accepted")
	}
}
