package lrd

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/dsp"
)

func fgnSeries(t testing.TB, h float64, n int, seed uint64) []float64 {
	t.Helper()
	gen, err := NewFGN(h, n, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return gen.Generate(dist.NewRand(seed))
}

// The streaming ladder and the batch estimator share one core, so on a
// complete series with the default level window they must agree exactly
// (same blocks, same variances, same regression).
func TestStreamAggVarMatchesBatchExactly(t *testing.T) {
	for _, h := range []float64{0.6, 0.75, 0.9} {
		x := fgnSeries(t, h, 1<<14, uint64(h*1e4))
		var s StreamAggVar
		for _, v := range x {
			s.Tick(v)
		}
		got, err := s.Estimate()
		if err != nil {
			t.Fatalf("H=%g: stream estimate: %v", h, err)
		}
		want, err := HurstAggVar(x, 1, 0)
		if err != nil {
			t.Fatalf("H=%g: batch estimate: %v", h, err)
		}
		if math.Abs(got.H-want.H) > 1e-9 {
			t.Errorf("H=%g: stream %.6f vs batch %.6f", h, got.H, want.H)
		}
		if got.Fit.N != want.Fit.N {
			t.Errorf("H=%g: stream used %d levels, batch %d", h, got.Fit.N, want.Fit.N)
		}
	}
}

// Aggregation-level bookkeeping: after n ticks level j must have seen
// floor(n / 2^j) completed blocks, and the block means must preserve
// the series mean.
func TestStreamAggVarLevelCounts(t *testing.T) {
	const n = 1000
	var s StreamAggVar
	for i := 0; i < n; i++ {
		s.Tick(float64(i))
	}
	if s.N() != n {
		t.Fatalf("N = %d, want %d", s.N(), n)
	}
	for j, m := 0, 1; m <= n; j, m = j+1, m*2 {
		if got, want := s.accs[j].N(), n/m; got != want {
			t.Errorf("level %d (m=%d): %d blocks, want %d", j, m, got, want)
		}
	}
	// Means of complete dyadic blocks of 0..n-1: level 3 blocks of 8
	// have means 3.5, 11.5, ... -> overall mean of the first 125 blocks.
	if got := s.accs[3].Mean(); math.Abs(got-499.5) > 1e-9 {
		t.Errorf("level-3 block mean = %g, want 499.5", got)
	}
}

// The streaming Haar cascade must reproduce the batch pyramid's octave
// energies when the batch transform uses the same (Haar) wavelet on a
// power-of-two series.
func TestStreamWaveletMatchesBatchHaar(t *testing.T) {
	x := fgnSeries(t, 0.8, 1<<13, 99)
	var s StreamWavelet
	for _, v := range x {
		s.Tick(v)
	}
	got, err := s.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	want, err := HurstWavelet(x, WaveletOptions{Wavelet: dsp.Haar()})
	if err != nil {
		t.Fatal(err)
	}
	// The dsp pyramid and the cascade may window octave boundaries
	// slightly differently; the estimates must still be nearly the same
	// estimator.
	if math.Abs(got.H-want.H) > 0.02 {
		t.Errorf("stream Haar %.4f vs batch Haar %.4f", got.H, want.H)
	}
}

func TestStreamWaveletRecoversH(t *testing.T) {
	for _, h := range []float64{0.6, 0.75, 0.9} {
		x := fgnSeries(t, h, 1<<15, uint64(h*2e4))
		var s StreamWavelet
		for _, v := range x {
			s.Tick(v)
		}
		e, err := s.Estimate()
		if err != nil {
			t.Fatalf("H=%g: %v", h, err)
		}
		if math.Abs(e.H-h) > 0.12 {
			t.Errorf("H=%g: streaming wavelet estimated %.3f", h, e.H)
		}
	}
}

func TestStreamRSWindow(t *testing.T) {
	s := NewStreamRS(256)
	if _, err := s.Estimate(); err == nil {
		t.Error("expected error before the window has 128 ticks")
	}
	x := fgnSeries(t, 0.75, 4096, 7)
	for _, v := range x {
		s.Tick(v)
	}
	if s.N() != 4096 {
		t.Fatalf("N = %d, want 4096", s.N())
	}
	got, err := s.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	// The window holds exactly the last 256 ticks in arrival order.
	want, err := HurstRS(x[len(x)-256:])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.H-want.H) > 1e-12 {
		t.Errorf("windowed %.6f vs batch-on-tail %.6f", got.H, want.H)
	}
}

func TestNewStreamRSClamps(t *testing.T) {
	if got := len(NewStreamRS(0).window); got != 4096 {
		t.Errorf("default window = %d, want 4096", got)
	}
	if got := len(NewStreamRS(5).window); got != 256 {
		t.Errorf("clamped window = %d, want 256", got)
	}
}

// The ladder estimators must not allocate on the tick path — they sit
// inside Engine.Offer at tens of millions of ticks per second.
func TestStreamTickDoesNotAllocate(t *testing.T) {
	var agg StreamAggVar
	var wav StreamWavelet
	rs := NewStreamRS(256)
	probe := func(name string, tick func(float64)) {
		t.Helper()
		if allocs := testing.AllocsPerRun(1000, func() { tick(1.5) }); allocs != 0 {
			t.Errorf("%s.Tick allocates %.1f times per call", name, allocs)
		}
	}
	probe("StreamAggVar", agg.Tick)
	probe("StreamWavelet", wav.Tick)
	probe("StreamRS", rs.Tick)
}

func BenchmarkStreamAggVarTick(b *testing.B) {
	x := fgnSeries(b, 0.8, 1<<16, 3)
	var s StreamAggVar
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick(x[i&(1<<16-1)])
	}
}

func BenchmarkStreamWaveletTick(b *testing.B) {
	x := fgnSeries(b, 0.8, 1<<16, 3)
	var s StreamWavelet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick(x[i&(1<<16-1)])
	}
}
