package lrd

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/stats"
)

func TestConversions(t *testing.T) {
	cases := []struct{ h, beta, alpha float64 }{
		{0.9, 0.2, 1.2},
		{0.75, 0.5, 1.5},
		{0.6, 0.8, 1.8},
	}
	for _, c := range cases {
		if got := BetaFromH(c.h); math.Abs(got-c.beta) > 1e-12 {
			t.Errorf("BetaFromH(%g) = %g, want %g", c.h, got, c.beta)
		}
		if got := HFromBeta(c.beta); math.Abs(got-c.h) > 1e-12 {
			t.Errorf("HFromBeta(%g) = %g, want %g", c.beta, got, c.h)
		}
		if got := AlphaFromH(c.h); math.Abs(got-c.alpha) > 1e-12 {
			t.Errorf("AlphaFromH(%g) = %g, want %g", c.h, got, c.alpha)
		}
		if got := HFromAlpha(c.alpha); math.Abs(got-c.h) > 1e-12 {
			t.Errorf("HFromAlpha(%g) = %g, want %g", c.alpha, got, c.h)
		}
	}
}

func TestFGNAutocovValues(t *testing.T) {
	// H = 0.5 is white noise: gamma(0)=1, gamma(k)=0 for k >= 1.
	g := FGNAutocov(0.5, 4)
	if math.Abs(g[0]-1) > 1e-12 {
		t.Errorf("gamma(0) = %g, want 1", g[0])
	}
	for k := 1; k <= 4; k++ {
		if math.Abs(g[k]) > 1e-12 {
			t.Errorf("H=0.5 gamma(%d) = %g, want 0", k, g[k])
		}
	}
	// For H > 0.5 covariances are positive and decreasing.
	g = FGNAutocov(0.8, 16)
	for k := 1; k < len(g); k++ {
		if g[k] <= 0 {
			t.Errorf("H=0.8 gamma(%d) = %g, want > 0", k, g[k])
		}
		if g[k] >= g[k-1] {
			t.Errorf("gamma not decreasing at %d: %g >= %g", k, g[k], g[k-1])
		}
	}
}

func TestNewFGNValidation(t *testing.T) {
	if _, err := NewFGN(0, 100, 0, 1); err == nil {
		t.Error("expected error for H = 0")
	}
	if _, err := NewFGN(1, 100, 0, 1); err == nil {
		t.Error("expected error for H = 1")
	}
	if _, err := NewFGN(0.7, 1, 0, 1); err == nil {
		t.Error("expected error for n = 1")
	}
	if _, err := NewFGN(0.7, 100, 0, -1); err == nil {
		t.Error("expected error for negative sdev")
	}
}

func TestFGNMatchesTheoreticalAutocov(t *testing.T) {
	const h = 0.8
	gen, err := NewFGN(h, 1<<14, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRand(123)
	// Average the empirical autocovariance over several paths.
	const paths = 6
	maxLag := 4
	avg := make([]float64, maxLag+1)
	for p := 0; p < paths; p++ {
		x := gen.Generate(rng)
		acv, err := stats.Autocovariance(x, maxLag)
		if err != nil {
			t.Fatal(err)
		}
		for i := range avg {
			avg[i] += acv[i] / paths
		}
	}
	want := FGNAutocov(h, maxLag)
	for k := 0; k <= maxLag; k++ {
		if math.Abs(avg[k]-want[k]) > 0.05 {
			t.Errorf("lag %d: empirical %g vs theoretical %g", k, avg[k], want[k])
		}
	}
}

func TestFGNMeanAndScale(t *testing.T) {
	gen, err := NewFGN(0.7, 1<<13, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := gen.Generate(dist.NewRand(9))
	if len(x) != 1<<13 {
		t.Fatalf("length = %d, want %d", len(x), 1<<13)
	}
	if m := stats.Mean(x); math.Abs(m-10) > 1 {
		t.Errorf("mean = %g, want ~10", m)
	}
	if s := stats.StdDev(x); math.Abs(s-2) > 0.5 {
		t.Errorf("stddev = %g, want ~2", s)
	}
	if gen.H() != 0.7 || gen.N() != 1<<13 {
		t.Error("accessors disagree with construction")
	}
}

func TestFBM(t *testing.T) {
	got := FBM([]float64{1, 2, 3})
	want := []float64{1, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("FBM[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestAggregate(t *testing.T) {
	x := []float64{1, 3, 2, 4, 10, 20, 5}
	got, err := Aggregate(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 15}
	if len(got) != len(want) {
		t.Fatalf("Aggregate = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Aggregate[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if _, err := Aggregate(x, 0); err == nil {
		t.Error("expected error for m = 0")
	}
	if _, err := Aggregate([]float64{1}, 5); err == nil {
		t.Error("expected error for m > len")
	}
}

func TestAggregatePreservesMean(t *testing.T) {
	prop := func(seed uint64, mRaw uint8) bool {
		m := int(mRaw%16) + 1
		rng := dist.NewRand(seed)
		x := make([]float64, 64*m)
		for i := range x {
			x[i] = rng.Float64() * 100
		}
		agg, err := Aggregate(x, m)
		if err != nil {
			return false
		}
		return math.Abs(stats.Mean(agg)-stats.Mean(x)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPowerLawACF(t *testing.T) {
	if _, err := NewPowerLawACF(1, 0); err == nil {
		t.Error("expected error for beta = 0")
	}
	if _, err := NewPowerLawACF(1, 1); err == nil {
		t.Error("expected error for beta = 1")
	}
	if _, err := NewPowerLawACF(0, 0.5); err == nil {
		t.Error("expected error for const = 0")
	}
	r, err := NewPowerLawACF(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.At(4); math.Abs(got-1) > 1e-12 {
		t.Errorf("R(4) = %g, want 1", got)
	}
	if got := r.At(0); got != 2 {
		t.Errorf("R(0) = %g, want Const", got)
	}
	if got := r.Hurst(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Hurst = %g, want 0.75", got)
	}
}

func TestDeltaNonnegativeForAllBeta(t *testing.T) {
	// The key hypothesis of Theorem 2 (Figure 4): delta_tau >= 0 across
	// the whole LRD range, checked on the exact fGn ACF.
	for _, beta := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		r, err := NewFGNACF(HFromBeta(beta))
		if err != nil {
			t.Fatal(err)
		}
		ds := r.DeltaSeries(200)
		for i, d := range ds {
			if d < 0 {
				t.Errorf("beta=%g: delta_%d = %g < 0", beta, i+1, d)
			}
		}
		// delta is decreasing in tau (convexity flattens out).
		for i := 1; i < len(ds); i++ {
			if ds[i] > ds[i-1]+1e-12 {
				t.Errorf("beta=%g: delta not decreasing at tau=%d", beta, i+1)
			}
		}
	}
	if !math.IsNaN((FGNACF{H: 0.75}).Delta(0)) {
		t.Error("FGNACF.Delta(0) should be NaN")
	}
	// Power-law model: asymptotic convexity for tau >= 2.
	for _, beta := range []float64{0.1, 0.5, 0.9} {
		r := PowerLawACF{Const: 1, Beta: beta}
		for tau := 2; tau <= 200; tau++ {
			if d := r.Delta(tau); d < 0 {
				t.Errorf("power law beta=%g: delta_%d = %g < 0", beta, tau, d)
			}
		}
		if !math.IsNaN(r.Delta(1)) {
			t.Error("power-law Delta(1) should be NaN")
		}
	}
}

func TestFGNACF(t *testing.T) {
	if _, err := NewFGNACF(0.5); err == nil {
		t.Error("expected error for H = 0.5")
	}
	if _, err := NewFGNACF(1); err == nil {
		t.Error("expected error for H = 1")
	}
	r, err := NewFGNACF(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if r.At(0) != 1 {
		t.Errorf("rho(0) = %g, want 1", r.At(0))
	}
	if r.At(-3) != r.At(3) {
		t.Error("ACF should be symmetric")
	}
	if math.Abs(r.Beta()-0.4) > 1e-12 {
		t.Errorf("Beta() = %g, want 0.4", r.Beta())
	}
	// Asymptotics: rho(k) ~ H(2H-1) k^(2H-2); ratio must approach 1.
	k := 1000
	want := r.H * (2*r.H - 1) * math.Pow(float64(k), 2*r.H-2)
	if got := r.At(k); math.Abs(got/want-1) > 0.01 {
		t.Errorf("rho(%d) = %g, asymptotic %g (ratio %g)", k, got, want, got/want)
	}
	// Matches the unit-variance fGn autocovariance.
	acv := FGNAutocov(0.8, 5)
	for i := 0; i <= 5; i++ {
		if math.Abs(r.At(i)-acv[i]) > 1e-12 {
			t.Errorf("FGNACF.At(%d) = %g, FGNAutocov = %g", i, r.At(i), acv[i])
		}
	}
}

func TestHurstEstimatorsOnFGN(t *testing.T) {
	// Each estimator should recover H within a reasonable tolerance on
	// exact fGn. Wavelet and aggvar are the workhorses of the paper's
	// Figures 2-3 and 21.
	const n = 1 << 15
	for _, h := range []float64{0.6, 0.75, 0.9} {
		gen, err := NewFGN(h, n, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		x := gen.Generate(dist.NewRand(uint64(h * 1e4)))
		type estCase struct {
			name string
			est  func() (HurstEstimate, error)
			tol  float64
		}
		cases := []estCase{
			{"aggvar", func() (HurstEstimate, error) { return HurstAggVar(x, 4, n/32) }, 0.12},
			{"rs", func() (HurstEstimate, error) { return HurstRS(x) }, 0.15},
			{"periodogram", func() (HurstEstimate, error) { return HurstPeriodogram(x, 0.1) }, 0.1},
			{"wavelet", func() (HurstEstimate, error) { return HurstWavelet(x, WaveletOptions{}) }, 0.1},
			{"dfa", func() (HurstEstimate, error) { return HurstDFA(x) }, 0.12},
		}
		for _, c := range cases {
			e, err := c.est()
			if err != nil {
				t.Errorf("H=%g %s: %v", h, c.name, err)
				continue
			}
			if math.Abs(e.H-h) > c.tol {
				t.Errorf("H=%g %s: estimated %.3f (tolerance %g)", h, c.name, e.H, c.tol)
			}
			if math.Abs(e.Beta-BetaFromH(e.H)) > 1e-12 {
				t.Errorf("%s: Beta field inconsistent with H", c.name)
			}
		}
	}
}

func TestHurstWhiteNoiseIsHalf(t *testing.T) {
	rng := dist.NewRand(4242)
	x := make([]float64, 1<<14)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for name, e := range EstimateAll(x) {
		if math.Abs(e.H-0.5) > 0.12 {
			t.Errorf("%s on white noise: H = %.3f, want ~0.5", name, e.H)
		}
	}
}

func TestHurstEstimatorErrors(t *testing.T) {
	short := []float64{1, 2, 3}
	if _, err := HurstAggVar(short, 1, 0); err == nil {
		t.Error("aggvar: expected error for short series")
	}
	if _, err := HurstRS(short); err == nil {
		t.Error("rs: expected error for short series")
	}
	if _, err := HurstPeriodogram(short, 0.1); err == nil {
		t.Error("periodogram: expected error for short series")
	}
	if _, err := HurstPeriodogram(make([]float64, 1024), 0); err == nil {
		t.Error("periodogram: expected error for lowFrac = 0")
	}
	if _, err := HurstWavelet(short, WaveletOptions{}); err == nil {
		t.Error("wavelet: expected error for short series")
	}
	if _, err := HurstDFA(short); err == nil {
		t.Error("dfa: expected error for short series")
	}
}

func TestEstimateAllComplete(t *testing.T) {
	gen, err := NewFGN(0.7, 1<<13, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := gen.Generate(dist.NewRand(55))
	got := EstimateAll(x)
	for _, m := range []string{"aggvar", "rs", "periodogram", "wavelet", "dfa"} {
		if _, ok := got[m]; !ok {
			t.Errorf("EstimateAll missing method %q", m)
		}
	}
}

func BenchmarkFGNGenerate64k(b *testing.B) {
	gen, err := NewFGN(0.8, 1<<16, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := dist.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Generate(rng)
	}
}

func BenchmarkHurstWavelet64k(b *testing.B) {
	gen, _ := NewFGN(0.8, 1<<16, 0, 1)
	x := gen.Generate(dist.NewRand(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HurstWavelet(x, WaveletOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
