package lrd

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// maxStreamLevels bounds the dyadic ladders of the streaming estimators.
// 2^48 ticks is far beyond any stream lifetime, and fixed-size arrays
// keep the per-tick path free of allocations: a streaming estimator
// costs O(log n) memory total and amortized O(1) work per tick.
const maxStreamLevels = 48

// halfBlock is one rung of a dyadic cascade: the sum over an open
// half-block of 2^j ticks, waiting for its sibling.
type halfBlock struct {
	sum float64
	has bool
}

// StreamAggVar is the streaming form of the aggregated-variance
// estimator: a dyadic ladder of block sums where level j accumulates
// the running variance of the means of consecutive 2^j-tick blocks.
// Tick is allocation-free and amortized O(1) (worst case O(log n) on
// power-of-two boundaries); Estimate regresses log Var(X^(m)) on log m
// at any moment, exactly the batch HurstAggVar math over the dyadic
// levels the ladder maintains.
//
// The zero value is ready to use. Not safe for concurrent use; wrap it
// the way sampling.Engine wraps its sampler.
type StreamAggVar struct {
	// MinM is the smallest aggregation level entering the regression
	// (rounded into the dyadic grid); zero means 1.
	MinM int

	n      int64
	halves [maxStreamLevels]halfBlock
	// accs[j] holds the means of completed 2^j-tick blocks; accs[0]
	// sees every raw tick.
	accs [maxStreamLevels]stats.Accumulator
}

// Tick folds the next observation into every aggregation level it
// completes. It never allocates.
//
//samplelint:hotpath
func (s *StreamAggVar) Tick(v float64) {
	s.n++
	s.accs[0].Add(v)
	sum := v
	for j := 0; j < maxStreamLevels-1; j++ {
		h := &s.halves[j]
		if !h.has {
			h.sum, h.has = sum, true
			return
		}
		sum += h.sum
		h.has = false
		// sum now covers 2^(j+1) ticks; record the block mean.
		s.accs[j+1].Add(sum / float64(int64(2)<<j))
	}
}

// N returns the number of ticks consumed.
func (s *StreamAggVar) N() int64 { return s.n }

// Estimate fits the aggregated-variance regression over the levels the
// stream has filled so far: dyadic m >= MinM with at least 16 completed
// blocks — the same cutoff as the batch default maxM = n/16, so on a
// complete series Estimate and HurstAggVar(x, MinM, 0) agree exactly.
// It needs at least three usable levels (n >= 64 or so).
func (s *StreamAggVar) Estimate() (HurstEstimate, error) {
	minM := s.MinM
	if minM < 1 {
		minM = 1
	}
	return s.estimateRange(minM, 0, 16)
}

// estimateRange is the shared regression core: levels with dyadic
// m in [minM, maxM] (maxM <= 0 means unbounded), at least minBlocks
// completed blocks and positive variance enter the log-log fit. The
// batch HurstAggVar drives a ladder over the whole series and calls
// this with its explicit [minM, maxM] window.
func (s *StreamAggVar) estimateRange(minM, maxM, minBlocks int) (HurstEstimate, error) {
	if minBlocks < 8 {
		minBlocks = 8
	}
	var lm, lv []float64
	m := int64(1)
	for j := 0; j < maxStreamLevels; j, m = j+1, m*2 {
		if m < int64(minM) {
			continue
		}
		if maxM > 0 && m > int64(maxM) {
			break
		}
		acc := &s.accs[j]
		if acc.N() < minBlocks {
			break
		}
		v := acc.Variance()
		// Nonpositive variances have no logarithm; infinite ones (value
		// overflow on pathological input) would poison the regression.
		if v <= 0 || math.IsInf(v, 0) {
			continue
		}
		lm = append(lm, math.Log(float64(m)))
		lv = append(lv, math.Log(v))
	}
	if len(lm) < 3 {
		return HurstEstimate{}, fmt.Errorf("lrd: aggregated variance produced only %d usable levels", len(lm))
	}
	fit, err := stats.FitLine(lm, lv)
	if err != nil {
		return HurstEstimate{}, fmt.Errorf("lrd: aggregated variance: %w", err)
	}
	h := 1 + fit.Slope/2
	return HurstEstimate{H: h, Beta: BetaFromH(h), Method: "aggvar", Fit: fit}, nil
}

// StreamWavelet is the streaming Abry-Veitch estimator: a pairwise Haar
// cascade where each tick percolates up a ladder of approximation
// coefficients, emitting one detail coefficient per completed pair. The
// per-octave detail energies feed the same debiased logscale-diagram
// regression as the batch HurstWavelet; the wavelet is Haar (one
// vanishing moment), which suffices for stationary fGn-like input.
// Tick is allocation-free and amortized O(1).
//
// The zero value is ready to use. Not safe for concurrent use.
type StreamWavelet struct {
	// JMin is the first octave entering the regression (1-based);
	// zero means 3, the batch default.
	JMin int

	n      int64
	halves [maxStreamLevels]halfBlock
	// energy[j]/count[j] track the detail coefficients of octave j+1
	// (slot 0 pairs raw ticks — the finest octave).
	energy [maxStreamLevels]float64
	count  [maxStreamLevels]int64
}

// Tick feeds the cascade one observation. It never allocates.
//
//samplelint:hotpath
func (s *StreamWavelet) Tick(v float64) {
	s.n++
	a := v
	for j := 0; j < maxStreamLevels; j++ {
		h := &s.halves[j]
		if !h.has {
			h.sum, h.has = a, true
			return
		}
		d := (h.sum - a) / math.Sqrt2
		s.energy[j] += d * d
		s.count[j]++
		a = (h.sum + a) / math.Sqrt2
		h.has = false
	}
}

// N returns the number of ticks consumed.
func (s *StreamWavelet) N() int64 { return s.n }

// Estimate fits the logscale diagram over every octave with at least 8
// detail coefficients so far — the same regression, bias correction and
// weighting as the batch HurstWavelet.
func (s *StreamWavelet) Estimate() (HurstEstimate, error) {
	jMin := s.JMin
	if jMin < 1 {
		jMin = 3
	}
	var mu []float64
	var counts []int
	for j := 0; j < maxStreamLevels && s.count[j] > 0; j++ {
		mu = append(mu, s.energy[j]/float64(s.count[j]))
		counts = append(counts, int(s.count[j]))
	}
	return fitLogscale(mu, counts, jMin, len(mu))
}

// StreamRS is the windowed rescaled-range fallback: a fixed ring of the
// most recent ticks, re-analyzed on demand with the batch R/S
// estimator. Tick is O(1) and allocation-free; Estimate costs
// O(window log window) and is meant for the observation path, not the
// ingest path. Unlike the ladder estimators it forgets history beyond
// the window — the robust, assumption-light cross-check.
type StreamRS struct {
	window  []float64
	scratch []float64
	n       int64
	pos     int
}

// NewStreamRS builds a windowed R/S estimator over the last window
// ticks; window is clamped to at least 256 (the batch R/S regression
// needs >= 3 block sizes, so 128 ticks alone cannot produce a fit) and
// defaults to 4096 when <= 0.
func NewStreamRS(window int) *StreamRS {
	if window <= 0 {
		window = 4096
	}
	if window < 256 {
		window = 256
	}
	return &StreamRS{window: make([]float64, window), scratch: make([]float64, window)}
}

// Tick records the observation in the ring. It never allocates.
//
//samplelint:hotpath
func (s *StreamRS) Tick(v float64) {
	s.window[s.pos] = v
	s.pos++
	if s.pos == len(s.window) {
		s.pos = 0
	}
	s.n++
}

// N returns the number of ticks consumed.
func (s *StreamRS) N() int64 { return s.n }

// Estimate runs the batch R/S regression over the window contents in
// arrival order (the full ring once filled, the prefix before that).
func (s *StreamRS) Estimate() (HurstEstimate, error) {
	if s.n < int64(len(s.window)) {
		return HurstRS(s.window[:s.n])
	}
	k := copy(s.scratch, s.window[s.pos:])
	copy(s.scratch[k:], s.window[:s.pos])
	return HurstRS(s.scratch)
}
