// Package lrd implements the long-range-dependence substrate of the
// reproduction: exact fractional Gaussian noise generation (Davies-Harte
// circulant embedding), series aggregation, autocorrelation models, the
// convexity quantity delta_tau of Theorem 2, and five Hurst-parameter
// estimators (aggregated variance, R/S, periodogram, Abry-Veitch wavelet,
// and DFA).
package lrd

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/dsp"
)

// HFromBeta converts the ACF decay exponent beta (R(tau) ~ tau^-beta,
// 0 < beta < 1) to the Hurst parameter H = 1 - beta/2.
func HFromBeta(beta float64) float64 { return 1 - beta/2 }

// BetaFromH converts a Hurst parameter to the ACF decay exponent
// beta = 2 - 2H.
func BetaFromH(h float64) float64 { return 2 - 2*h }

// AlphaFromH converts a Hurst parameter to the ON/OFF-period tail index of
// the superposition model, alpha = 3 - 2H (equivalently alpha = beta + 1).
func AlphaFromH(h float64) float64 { return 3 - 2*h }

// HFromAlpha converts an ON/OFF tail index to the aggregate's Hurst
// parameter H = (3 - alpha)/2.
func HFromAlpha(alpha float64) float64 { return (3 - alpha) / 2 }

// FGNAutocov returns the autocovariance gamma(0..n) of unit-variance
// fractional Gaussian noise with Hurst parameter h:
//
//	gamma(k) = ( |k+1|^2H - 2|k|^2H + |k-1|^2H ) / 2.
func FGNAutocov(h float64, n int) []float64 {
	out := make([]float64, n+1)
	twoH := 2 * h
	for k := 0; k <= n; k++ {
		fk := float64(k)
		out[k] = 0.5 * (math.Pow(fk+1, twoH) - 2*math.Pow(fk, twoH) + math.Pow(math.Abs(fk-1), twoH))
	}
	return out
}

// FGN generates exact fractional Gaussian noise via the Davies-Harte
// circulant embedding method. Construction is O(n log n) and the
// eigenvalue decomposition is cached, so repeated Generate calls cost one
// FFT each.
type FGN struct {
	h          float64
	n          int
	sqrtEigen  []float64 // sqrt(lambda_k / (2m)) for m = 2n
	mean, sdev float64
}

// NewFGN prepares a generator of series of length n (rounded up to a power
// of two internally; Generate returns exactly n points) with Hurst
// parameter h in (0, 1). mean and sdev shift/scale the output.
func NewFGN(h float64, n int, mean, sdev float64) (*FGN, error) {
	if h <= 0 || h >= 1 {
		return nil, fmt.Errorf("lrd: Hurst parameter %g outside (0,1)", h)
	}
	if n < 2 {
		return nil, fmt.Errorf("lrd: fGn length %d too short", n)
	}
	if sdev < 0 {
		return nil, fmt.Errorf("lrd: negative standard deviation %g", sdev)
	}
	np := dsp.NextPow2(n)
	m := 2 * np
	gamma := FGNAutocov(h, np)
	// Circulant first row: gamma(0..np), gamma(np-1 .. 1).
	c := make([]complex128, m)
	for k := 0; k <= np; k++ {
		c[k] = complex(gamma[k], 0)
	}
	for k := 1; k < np; k++ {
		c[m-k] = complex(gamma[k], 0)
	}
	eig := dsp.FFT(c)
	sqrtEigen := make([]float64, m)
	for k, v := range eig {
		lam := real(v)
		if lam < 0 {
			// Davies-Harte eigenvalues are provably nonnegative for fGn;
			// tiny negatives are rounding noise.
			if lam < -1e-8 {
				return nil, fmt.Errorf("lrd: circulant embedding failed for H=%g (eigenvalue %g)", h, lam)
			}
			lam = 0
		}
		sqrtEigen[k] = math.Sqrt(lam / float64(m))
	}
	return &FGN{h: h, n: n, sqrtEigen: sqrtEigen, mean: mean, sdev: sdev}, nil
}

// H returns the generator's Hurst parameter.
func (g *FGN) H() float64 { return g.h }

// N returns the length of the generated series.
func (g *FGN) N() int { return g.n }

// Generate draws one fGn sample path of length n.
func (g *FGN) Generate(rng *rand.Rand) []float64 {
	m := len(g.sqrtEigen)
	half := m / 2
	w := make([]complex128, m)
	w[0] = complex(g.sqrtEigen[0]*rng.NormFloat64()*math.Sqrt2, 0)
	w[half] = complex(g.sqrtEigen[half]*rng.NormFloat64()*math.Sqrt2, 0)
	for k := 1; k < half; k++ {
		re := rng.NormFloat64()
		im := rng.NormFloat64()
		w[k] = complex(g.sqrtEigen[k]*re, g.sqrtEigen[k]*im)
		w[m-k] = complex(real(w[k]), -imag(w[k]))
	}
	spec := dsp.FFT(w)
	out := make([]float64, g.n)
	for i := range out {
		out[i] = g.mean + g.sdev*real(spec[i])/math.Sqrt2
	}
	return out
}

// FBM integrates an fGn path into fractional Brownian motion (cumulative
// sums), handy for DFA-style tests.
func FBM(fgn []float64) []float64 {
	out := make([]float64, len(fgn))
	var s float64
	for i, v := range fgn {
		s += v
		out[i] = s
	}
	return out
}
