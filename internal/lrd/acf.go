package lrd

import (
	"fmt"
	"math"
)

// PowerLawACF is the asymptotic autocorrelation model of the paper,
// R(tau) ~ Const * tau^-beta with 0 < beta < 1 (long-range dependence).
type PowerLawACF struct {
	Const float64
	Beta  float64
}

// NewPowerLawACF validates the LRD regime 0 < beta < 1.
func NewPowerLawACF(c, beta float64) (PowerLawACF, error) {
	if beta <= 0 || beta >= 1 {
		return PowerLawACF{}, fmt.Errorf("lrd: beta=%g outside the LRD range (0,1)", beta)
	}
	if c <= 0 {
		return PowerLawACF{}, fmt.Errorf("lrd: ACF constant %g must be positive", c)
	}
	return PowerLawACF{Const: c, Beta: beta}, nil
}

// At returns R(tau); R(0) is defined as Const (the tau -> 0 limit is
// irrelevant for the asymptotic analyses that use this model).
func (r PowerLawACF) At(tau float64) float64 {
	if tau <= 0 {
		return r.Const
	}
	return r.Const * math.Pow(tau, -r.Beta)
}

// Hurst returns the Hurst parameter 1 - beta/2 implied by the decay.
func (r PowerLawACF) Hurst() float64 { return HFromBeta(r.Beta) }

// Delta returns delta_tau = R(tau+1) + R(tau-1) - 2R(tau), the discrete
// convexity of the ACF. The pure power law is an *asymptotic* model, valid
// for tau >= 2 where all three lags sit in its range; Delta returns NaN
// below that. For the exact short-lag behaviour (including tau = 1, which
// needs R(0) = 1) use FGNACF.Delta.
func (r PowerLawACF) Delta(tau int) float64 {
	if tau < 2 {
		return math.NaN()
	}
	return r.At(float64(tau+1)) + r.At(float64(tau-1)) - 2*r.At(float64(tau))
}

// FGNACF is the exact autocorrelation of fractional Gaussian noise with
// Hurst parameter H = 1 - beta/2:
//
//	rho(k) = ( |k+1|^2H - 2|k|^2H + |k-1|^2H ) / 2,  rho(0) = 1.
//
// It agrees with the power law const*tau^-beta asymptotically but is a
// genuine ACF at every lag, which is what Theorem 2's convexity condition
// delta_tau >= 0 must be checked against (the paper's Figure 4).
type FGNACF struct {
	H float64
}

// NewFGNACF validates H in (1/2, 1), the LRD regime.
func NewFGNACF(h float64) (FGNACF, error) {
	if h <= 0.5 || h >= 1 {
		return FGNACF{}, fmt.Errorf("lrd: FGNACF Hurst %g outside the LRD range (0.5,1)", h)
	}
	return FGNACF{H: h}, nil
}

// At returns rho(k) for k >= 0.
func (r FGNACF) At(k int) float64 {
	if k < 0 {
		k = -k
	}
	if k == 0 {
		return 1
	}
	fk := float64(k)
	twoH := 2 * r.H
	return 0.5 * (math.Pow(fk+1, twoH) - 2*math.Pow(fk, twoH) + math.Pow(fk-1, twoH))
}

// Beta returns the implied asymptotic decay exponent 2 - 2H.
func (r FGNACF) Beta() float64 { return BetaFromH(r.H) }

// Delta returns delta_tau = rho(tau+1) + rho(tau-1) - 2*rho(tau) for
// tau >= 1. Theorem 2 (Cochran) orders the sampling variances
// E(Vsy) <= E(Vrs) <= E(Vran) whenever this is nonnegative; Figure 4 of
// the paper verifies that it is, for every beta in (0,1).
func (r FGNACF) Delta(tau int) float64 {
	if tau < 1 {
		return math.NaN()
	}
	return r.At(tau+1) + r.At(tau-1) - 2*r.At(tau)
}

// DeltaSeries returns delta_tau for tau = 1..maxTau.
func (r FGNACF) DeltaSeries(maxTau int) []float64 {
	out := make([]float64, maxTau)
	for tau := 1; tau <= maxTau; tau++ {
		out[tau-1] = r.Delta(tau)
	}
	return out
}

// Aggregate returns the m-aggregated series of the paper's Eq. (1):
//
//	f^(m)(tau) = (1/m) * sum_{i=(tau-1)m+1}^{tau*m} f(i)
//
// i.e. block means over non-overlapping windows of length m. The trailing
// partial block, if any, is dropped.
func Aggregate(x []float64, m int) ([]float64, error) {
	if m < 1 {
		return nil, fmt.Errorf("lrd: aggregation level m=%d must be >= 1", m)
	}
	n := len(x) / m
	if n == 0 {
		return nil, fmt.Errorf("lrd: series of length %d too short for aggregation level %d", len(x), m)
	}
	out := make([]float64, n)
	for b := 0; b < n; b++ {
		var s float64
		base := b * m
		for i := 0; i < m; i++ {
			s += x[base+i]
		}
		out[b] = s / float64(m)
	}
	return out, nil
}
