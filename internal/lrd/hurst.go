package lrd

import (
	"fmt"
	"math"

	"repro/internal/dsp"
	"repro/internal/stats"
)

// HurstEstimate is the output of any Hurst estimator: the estimate itself,
// the implied beta = 2 - 2H, and the regression behind it (estimators in
// this package are all regression-based).
type HurstEstimate struct {
	H      float64
	Beta   float64
	Method string
	Fit    stats.LineFit
}

// HurstAggVar estimates H with the aggregated-variance method: for a
// self-similar series Var(f^(m)) ~ sigma^2 * m^(2H-2), so the slope of
// log Var(f^(m)) against log m is 2H - 2 = -beta. Aggregation levels are
// the dyadic grid m = 2^j clipped to [minM, maxM]; maxM <= 0 means
// len(x)/16. The batch path drives the same dyadic ladder the streaming
// StreamAggVar maintains, so the two share one regression core and agree
// exactly on a complete series.
func HurstAggVar(x []float64, minM, maxM int) (HurstEstimate, error) {
	if minM < 1 {
		minM = 1
	}
	if maxM <= 0 {
		maxM = len(x) / 16
	}
	if maxM <= minM || len(x) < 64 {
		return HurstEstimate{}, fmt.Errorf("lrd: aggregated variance needs len >= 64 and maxM > minM (len=%d, minM=%d, maxM=%d)", len(x), minM, maxM)
	}
	var lad StreamAggVar
	for _, v := range x {
		lad.Tick(v)
	}
	return lad.estimateRange(minM, maxM, 8)
}

// nextLevel advances aggregation levels by a factor ~1.5 so log-spacing is
// roughly uniform.
func nextLevel(m int) int {
	next := m * 3 / 2
	if next == m {
		next = m + 1
	}
	return next
}

// HurstRS estimates H with rescaled-range (R/S) analysis: the average
// rescaled range over blocks of size n grows like n^H.
func HurstRS(x []float64) (HurstEstimate, error) {
	if len(x) < 128 {
		return HurstEstimate{}, fmt.Errorf("lrd: R/S needs at least 128 points, got %d", len(x))
	}
	var ln, lrs []float64
	for n := 16; n <= len(x)/4; n = nextLevel(n) {
		blocks := len(x) / n
		var sum float64
		var used int
		for b := 0; b < blocks; b++ {
			rs, ok := rescaledRange(x[b*n : (b+1)*n])
			if ok {
				sum += rs
				used++
			}
		}
		if used == 0 {
			continue
		}
		ln = append(ln, math.Log(float64(n)))
		lrs = append(lrs, math.Log(sum/float64(used)))
	}
	if len(ln) < 3 {
		return HurstEstimate{}, fmt.Errorf("lrd: R/S produced only %d usable block sizes", len(ln))
	}
	fit, err := stats.FitLine(ln, lrs)
	if err != nil {
		return HurstEstimate{}, fmt.Errorf("lrd: R/S: %w", err)
	}
	h := fit.Slope
	return HurstEstimate{H: h, Beta: BetaFromH(h), Method: "rs", Fit: fit}, nil
}

// rescaledRange computes R/S for one block.
func rescaledRange(block []float64) (float64, bool) {
	m := stats.Mean(block)
	s := stats.StdDev(block)
	if s == 0 {
		return 0, false
	}
	var cum, minC, maxC float64
	for _, v := range block {
		cum += v - m
		if cum < minC {
			minC = cum
		}
		if cum > maxC {
			maxC = cum
		}
	}
	r := maxC - minC
	if r <= 0 {
		return 0, false
	}
	return r / s, true
}

// HurstPeriodogram estimates H from the low-frequency behaviour of the
// periodogram: I(lambda) ~ c |lambda|^(1-2H) as lambda -> 0. Only the
// lowest lowFrac of frequencies enter the regression (0 < lowFrac <= 1;
// the customary value is 0.1).
func HurstPeriodogram(x []float64, lowFrac float64) (HurstEstimate, error) {
	if lowFrac <= 0 || lowFrac > 1 {
		return HurstEstimate{}, fmt.Errorf("lrd: lowFrac %g outside (0,1]", lowFrac)
	}
	freqs, power, err := dsp.Periodogram(x)
	if err != nil {
		return HurstEstimate{}, fmt.Errorf("lrd: periodogram estimator: %w", err)
	}
	k := int(float64(len(freqs)) * lowFrac)
	if k < 4 {
		k = 4
	}
	if k > len(freqs) {
		k = len(freqs)
	}
	var lx, ly []float64
	for i := 0; i < k; i++ {
		if power[i] > 0 {
			lx = append(lx, math.Log(freqs[i]))
			ly = append(ly, math.Log(power[i]))
		}
	}
	if len(lx) < 4 {
		return HurstEstimate{}, fmt.Errorf("lrd: periodogram estimator has only %d usable ordinates", len(lx))
	}
	fit, err := stats.FitLine(lx, ly)
	if err != nil {
		return HurstEstimate{}, fmt.Errorf("lrd: periodogram estimator: %w", err)
	}
	h := (1 - fit.Slope) / 2
	return HurstEstimate{H: h, Beta: BetaFromH(h), Method: "periodogram", Fit: fit}, nil
}

// WaveletOptions configures the Abry-Veitch estimator.
type WaveletOptions struct {
	Wavelet dsp.Wavelet // zero value selects Daubechies4
	JMin    int         // first octave used in the regression (1-based); default 3
	JMax    int         // last octave; default: as deep as >= 8 coefficients remain
}

// HurstWavelet is the Abry-Veitch wavelet estimator (the tool the paper
// cites as [22]): regress the debiased logscale diagram
// y_j = log2 mu_j - g(n_j) on octave j with weights 1/Var(y_j); for an LRD
// process the slope is 2H - 1.
func HurstWavelet(x []float64, opts WaveletOptions) (HurstEstimate, error) {
	w := opts.Wavelet
	if w.Name() == "" {
		w = dsp.Daubechies4()
	}
	// The pyramid transform halves the series per octave and needs even
	// lengths throughout; analyze the largest power-of-two prefix.
	if n := dsp.NextPow2(len(x)); n > len(x) {
		x = x[:n/2]
	}
	dec, err := w.Decompose(x, 0)
	if err != nil {
		return HurstEstimate{}, fmt.Errorf("lrd: wavelet estimator: %w", err)
	}
	mu, counts := dec.OctaveEnergies()
	jMin := opts.JMin
	if jMin < 1 {
		jMin = 3
	}
	jMax := opts.JMax
	if jMax <= 0 || jMax > len(mu) {
		jMax = len(mu)
	}
	return fitLogscale(mu, counts, jMin, jMax)
}

// fitLogscale is the Abry-Veitch regression core shared by the batch
// pyramid estimator and the streaming Haar cascade: debias each octave's
// log2 energy, weight by the inverse logscale variance, and fit
// y_j = log2 mu_j - g(n_j) against j; the slope is 2H - 1. Octaves need
// at least 8 coefficients and positive energy to enter.
func fitLogscale(mu []float64, counts []int, jMin, jMax int) (HurstEstimate, error) {
	if jMax > len(mu) {
		jMax = len(mu)
	}
	var xs, ys, ws []float64
	for j := jMin; j <= jMax; j++ {
		n := counts[j-1]
		// Octaves whose energy is nonpositive (no logarithm) or infinite
		// (overflow on pathological input) cannot enter the fit.
		if n < 8 || mu[j-1] <= 0 || math.IsInf(mu[j-1], 0) {
			continue
		}
		y := math.Log2(mu[j-1]) - stats.LogscaleBiasCorrection(n)
		xs = append(xs, float64(j))
		ys = append(ys, y)
		ws = append(ws, 1/stats.LogscaleVariance(n))
	}
	if len(xs) < 3 {
		return HurstEstimate{}, fmt.Errorf("lrd: wavelet estimator has only %d usable octaves (series too short?)", len(xs))
	}
	fit, err := stats.FitLineWeighted(xs, ys, ws)
	if err != nil {
		return HurstEstimate{}, fmt.Errorf("lrd: wavelet estimator: %w", err)
	}
	h := (fit.Slope + 1) / 2
	return HurstEstimate{H: h, Beta: BetaFromH(h), Method: "wavelet", Fit: fit}, nil
}

// HurstDFA estimates H with detrended fluctuation analysis: integrate the
// series, split into windows of size n, remove a least-squares line per
// window, and regress log F(n) on log n; for fGn-like series the slope is
// H.
func HurstDFA(x []float64) (HurstEstimate, error) {
	if len(x) < 256 {
		return HurstEstimate{}, fmt.Errorf("lrd: DFA needs at least 256 points, got %d", len(x))
	}
	mean := stats.Mean(x)
	profile := make([]float64, len(x))
	var cum float64
	for i, v := range x {
		cum += v - mean
		profile[i] = cum
	}
	var ln, lf []float64
	for n := 8; n <= len(x)/4; n = nextLevel(n) {
		blocks := len(profile) / n
		if blocks < 4 {
			break
		}
		var sse float64
		var cnt int
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i)
		}
		for b := 0; b < blocks; b++ {
			seg := profile[b*n : (b+1)*n]
			fit, err := stats.FitLine(xs, seg)
			if err != nil {
				continue
			}
			for i, v := range seg {
				r := v - fit.Eval(xs[i])
				sse += r * r
			}
			cnt += n
		}
		if cnt == 0 {
			continue
		}
		f := math.Sqrt(sse / float64(cnt))
		if f <= 0 {
			continue
		}
		ln = append(ln, math.Log(float64(n)))
		lf = append(lf, math.Log(f))
	}
	if len(ln) < 3 {
		return HurstEstimate{}, fmt.Errorf("lrd: DFA produced only %d usable window sizes", len(ln))
	}
	fit, err := stats.FitLine(ln, lf)
	if err != nil {
		return HurstEstimate{}, fmt.Errorf("lrd: DFA: %w", err)
	}
	h := fit.Slope
	return HurstEstimate{H: h, Beta: BetaFromH(h), Method: "dfa", Fit: fit}, nil
}

// EstimateAll runs every estimator that succeeds on x and returns the
// results keyed by method name. It never fails outright: callers decide
// what to do when a subset of estimators errors out.
func EstimateAll(x []float64) map[string]HurstEstimate {
	out := make(map[string]HurstEstimate, 5)
	if e, err := HurstAggVar(x, 1, 0); err == nil {
		out[e.Method] = e
	}
	if e, err := HurstRS(x); err == nil {
		out[e.Method] = e
	}
	if e, err := HurstPeriodogram(x, 0.1); err == nil {
		out[e.Method] = e
	}
	if e, err := HurstWavelet(x, WaveletOptions{}); err == nil {
		out[e.Method] = e
	}
	if e, err := HurstDFA(x); err == nil {
		out[e.Method] = e
	}
	return out
}
