package lrd

import (
	"fmt"

	"repro/internal/binenc"
	"repro/internal/stats"
)

// State serialization for the streaming estimators: each estimator can
// append its exact internal state to a byte blob and restore it into a
// fresh instance, so a Hurst ladder survives a process restart with the
// identical dyadic state — every half-block sum, every level
// accumulator — a never-stopped estimator would hold. Only the levels
// the stream has actually touched are written, so a young estimator's
// blob is a few dozen bytes, not maxStreamLevels records.
//
// Blobs are tagged per estimator kind and validated on restore; callers
// frame, version and checksum them (the sampling engine codec does).

const (
	stateTagAggVar  = 0x11
	stateTagWavelet = 0x12
	stateTagRS      = 0x13
)

func checkTag(r *binenc.Reader, want uint8, name string) error {
	if got := r.U8(); r.Err() == nil && got != want {
		return fmt.Errorf("lrd: state blob tagged %#02x is not %s state (tag %#02x)", got, name, want)
	}
	return r.Err()
}

func appendAcc(dst []byte, a *stats.Accumulator) []byte {
	st := a.State()
	dst = binenc.AppendI64(dst, int64(st.N))
	dst = binenc.AppendF64(dst, st.Mean)
	dst = binenc.AppendF64(dst, st.M2)
	dst = binenc.AppendF64(dst, st.Sum)
	dst = binenc.AppendF64(dst, st.Min)
	dst = binenc.AppendF64(dst, st.Max)
	return dst
}

func readAcc(r *binenc.Reader) stats.AccumulatorState {
	return stats.AccumulatorState{
		N:    int(r.I64()),
		Mean: r.F64(),
		M2:   r.F64(),
		Sum:  r.F64(),
		Min:  r.F64(),
		Max:  r.F64(),
	}
}

// activeLevels returns how many leading ladder rungs carry state.
func (s *StreamAggVar) activeLevels() int {
	n := 0
	for j := 0; j < maxStreamLevels; j++ {
		if s.halves[j].has || s.accs[j].N() > 0 {
			n = j + 1
		}
	}
	return n
}

// AppendState appends the ladder's exact state to dst.
func (s *StreamAggVar) AppendState(dst []byte) []byte {
	dst = binenc.AppendU8(dst, stateTagAggVar)
	dst = binenc.AppendI64(dst, int64(s.MinM))
	dst = binenc.AppendI64(dst, s.n)
	levels := s.activeLevels()
	dst = binenc.AppendU8(dst, uint8(levels))
	for j := 0; j < levels; j++ {
		dst = binenc.AppendF64(dst, s.halves[j].sum)
		dst = binenc.AppendBool(dst, s.halves[j].has)
		dst = appendAcc(dst, &s.accs[j])
	}
	return dst
}

// RestoreState overwrites the ladder from a blob written by AppendState.
func (s *StreamAggVar) RestoreState(data []byte) error {
	r := binenc.NewReader(data)
	if err := checkTag(r, stateTagAggVar, "aggvar"); err != nil {
		return err
	}
	minM := int(r.I64())
	n := r.I64()
	levels := int(r.U8())
	if r.Err() == nil && (levels > maxStreamLevels || n < 0) {
		return fmt.Errorf("lrd: aggvar state declares %d levels over %d ticks", levels, n)
	}
	next := StreamAggVar{MinM: minM, n: n}
	for j := 0; j < levels; j++ {
		next.halves[j].sum = r.F64()
		next.halves[j].has = r.Bool()
		next.accs[j].SetState(readAcc(r))
	}
	if err := r.Err(); err != nil {
		return err
	}
	*s = next
	return nil
}

// activeLevels returns how many leading cascade rungs carry state.
func (s *StreamWavelet) activeLevels() int {
	n := 0
	for j := 0; j < maxStreamLevels; j++ {
		if s.halves[j].has || s.count[j] > 0 {
			n = j + 1
		}
	}
	return n
}

// AppendState appends the cascade's exact state to dst.
func (s *StreamWavelet) AppendState(dst []byte) []byte {
	dst = binenc.AppendU8(dst, stateTagWavelet)
	dst = binenc.AppendI64(dst, int64(s.JMin))
	dst = binenc.AppendI64(dst, s.n)
	levels := s.activeLevels()
	dst = binenc.AppendU8(dst, uint8(levels))
	for j := 0; j < levels; j++ {
		dst = binenc.AppendF64(dst, s.halves[j].sum)
		dst = binenc.AppendBool(dst, s.halves[j].has)
		dst = binenc.AppendF64(dst, s.energy[j])
		dst = binenc.AppendI64(dst, s.count[j])
	}
	return dst
}

// RestoreState overwrites the cascade from a blob written by AppendState.
func (s *StreamWavelet) RestoreState(data []byte) error {
	r := binenc.NewReader(data)
	if err := checkTag(r, stateTagWavelet, "wavelet"); err != nil {
		return err
	}
	jMin := int(r.I64())
	n := r.I64()
	levels := int(r.U8())
	if r.Err() == nil && (levels > maxStreamLevels || n < 0) {
		return fmt.Errorf("lrd: wavelet state declares %d levels over %d ticks", levels, n)
	}
	next := StreamWavelet{JMin: jMin, n: n}
	for j := 0; j < levels; j++ {
		next.halves[j].sum = r.F64()
		next.halves[j].has = r.Bool()
		next.energy[j] = r.F64()
		next.count[j] = r.I64()
	}
	if err := r.Err(); err != nil {
		return err
	}
	*s = next
	return nil
}

// AppendState appends the ring's exact state to dst: the window size,
// the tick count, the write position and the raw ring contents.
func (s *StreamRS) AppendState(dst []byte) []byte {
	dst = binenc.AppendU8(dst, stateTagRS)
	dst = binenc.AppendI64(dst, s.n)
	dst = binenc.AppendI64(dst, int64(s.pos))
	dst = binenc.AppendF64s(dst, s.window)
	return dst
}

// RestoreState overwrites the ring from a blob written by AppendState.
// The window is resized to the blob's window, so the restored estimator
// forgets exactly as much history as the original did.
func (s *StreamRS) RestoreState(data []byte) error {
	r := binenc.NewReader(data)
	if err := checkTag(r, stateTagRS, "rs"); err != nil {
		return err
	}
	n := r.I64()
	pos := int(r.I64())
	window := r.F64s()
	if err := r.Err(); err != nil {
		return err
	}
	if len(window) < 256 || n < 0 || pos < 0 || pos >= len(window) {
		return fmt.Errorf("lrd: rs state inconsistent (window=%d n=%d pos=%d)", len(window), n, pos)
	}
	s.window = window
	s.scratch = make([]float64, len(window))
	s.n, s.pos = n, pos
	return nil
}
