package lrd

import (
	"math"
	"testing"
)

// stateTrace is a deterministic mildly bursty series long enough to
// fill several ladder levels.
func stateTrace(n int) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = 1 + math.Sin(float64(i)/7)*math.Cos(float64(i)/101) + float64(i%13)/13
	}
	return f
}

// TestStreamStateRoundTrip: capture mid-stream, restore into a fresh
// instance, finish the stream on both, and require byte-identical
// estimates — the ladder invariant the engine codec builds on. The cut
// point is deliberately off any power-of-two boundary so open
// half-blocks are part of the captured state.
func TestStreamStateRoundTrip(t *testing.T) {
	f := stateTrace(5000)
	cut := 3001

	t.Run("aggvar", func(t *testing.T) {
		var live StreamAggVar
		for _, v := range f[:cut] {
			live.Tick(v)
		}
		var restored StreamAggVar
		if err := restored.RestoreState(live.AppendState(nil)); err != nil {
			t.Fatal(err)
		}
		for _, v := range f[cut:] {
			live.Tick(v)
			restored.Tick(v)
		}
		a, errA := live.Estimate()
		b, errB := restored.Estimate()
		if (errA == nil) != (errB == nil) || a != b {
			t.Fatalf("estimates diverge: %+v (%v) vs %+v (%v)", a, errA, b, errB)
		}
		if live.N() != restored.N() {
			t.Fatalf("tick counts diverge: %d vs %d", live.N(), restored.N())
		}
	})

	t.Run("wavelet", func(t *testing.T) {
		var live StreamWavelet
		for _, v := range f[:cut] {
			live.Tick(v)
		}
		var restored StreamWavelet
		if err := restored.RestoreState(live.AppendState(nil)); err != nil {
			t.Fatal(err)
		}
		for _, v := range f[cut:] {
			live.Tick(v)
			restored.Tick(v)
		}
		a, errA := live.Estimate()
		b, errB := restored.Estimate()
		if (errA == nil) != (errB == nil) || a != b {
			t.Fatalf("estimates diverge: %+v (%v) vs %+v (%v)", a, errA, b, errB)
		}
	})

	t.Run("rs", func(t *testing.T) {
		live := NewStreamRS(512)
		for _, v := range f[:cut] {
			live.Tick(v)
		}
		restored := NewStreamRS(0) // restore must adopt the blob's window size
		if err := restored.RestoreState(live.AppendState(nil)); err != nil {
			t.Fatal(err)
		}
		for _, v := range f[cut:] {
			live.Tick(v)
			restored.Tick(v)
		}
		a, errA := live.Estimate()
		b, errB := restored.Estimate()
		if (errA == nil) != (errB == nil) || a != b {
			t.Fatalf("estimates diverge: %+v (%v) vs %+v (%v)", a, errA, b, errB)
		}
	})
}

// TestStreamStateRejectsWrongKind: a blob from one estimator kind must
// not restore into another.
func TestStreamStateRejectsWrongKind(t *testing.T) {
	var av StreamAggVar
	av.Tick(1)
	blob := av.AppendState(nil)
	var wv StreamWavelet
	if err := wv.RestoreState(blob); err == nil {
		t.Fatal("wavelet accepted an aggvar blob")
	}
	if err := NewStreamRS(0).RestoreState(blob); err == nil {
		t.Fatal("rs accepted an aggvar blob")
	}
	if err := av.RestoreState(blob[:len(blob)-3]); err == nil {
		t.Fatal("aggvar accepted a truncated blob")
	}
}
