package stats

import (
	"fmt"
	"math"
	"sort"
)

// CCDF returns the empirical complementary cumulative distribution function
// of the sample: for each distinct value v in ascending order,
// P(X > v) = (#observations strictly greater than v) / n.
// The final point (the maximum) has probability 0 and is omitted, matching
// the usual log-log tail plots.
func CCDF(sample []float64) (values, prob []float64, err error) {
	n := len(sample)
	if n == 0 {
		return nil, nil, fmt.Errorf("stats: CCDF of empty sample")
	}
	sorted := make([]float64, n)
	copy(sorted, sample)
	sort.Float64s(sorted)
	values = make([]float64, 0, n)
	prob = make([]float64, 0, n)
	for i := 0; i < n; {
		j := i
		for j < n && sorted[j] == sorted[i] {
			j++
		}
		// P(X > sorted[i]) = (n - j) / n.
		if n-j > 0 {
			values = append(values, sorted[i])
			prob = append(prob, float64(n-j)/float64(n))
		}
		i = j
	}
	if len(values) == 0 {
		return nil, nil, fmt.Errorf("stats: CCDF degenerate (all %d observations equal)", n)
	}
	return values, prob, nil
}

// ECDF returns a function evaluating the empirical CDF of the sample.
func ECDF(sample []float64) (func(float64) float64, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("stats: ECDF of empty sample")
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	return func(x float64) float64 {
		idx := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
		return float64(idx) / n
	}, nil
}

// Histogram bins the sample into k equal-width bins over [min, max].
type Histogram struct {
	Edges  []float64 // k+1 bin edges
	Counts []int     // k counts
	N      int       // total observations (including clamped extremes)
}

// NewHistogram builds a histogram with k >= 1 bins spanning the sample
// range. Values exactly at the maximum fall in the last bin.
func NewHistogram(sample []float64, k int) (Histogram, error) {
	if len(sample) == 0 {
		return Histogram{}, fmt.Errorf("stats: histogram of empty sample")
	}
	if k < 1 {
		return Histogram{}, fmt.Errorf("stats: histogram needs k >= 1 bins, got %d", k)
	}
	lo, hi := MinMax(sample)
	if lo == hi {
		hi = lo + 1 // avoid zero-width bins for constant samples
	}
	h := Histogram{
		Edges:  make([]float64, k+1),
		Counts: make([]int, k),
		N:      len(sample),
	}
	width := (hi - lo) / float64(k)
	for i := 0; i <= k; i++ {
		h.Edges[i] = lo + float64(i)*width
	}
	for _, v := range sample {
		idx := int((v - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= k {
			idx = k - 1
		}
		h.Counts[idx]++
	}
	return h, nil
}

// Autocovariance returns gamma(0..maxLag) where
// gamma(tau) = (1/n) sum_{t} (x[t]-mean)(x[t+tau]-mean).
// The biased (1/n) normalization is standard for time series.
func Autocovariance(x []float64, maxLag int) ([]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("stats: autocovariance of empty series")
	}
	if maxLag < 0 || maxLag >= n {
		return nil, fmt.Errorf("stats: maxLag %d out of range for series of length %d", maxLag, n)
	}
	m := Mean(x)
	out := make([]float64, maxLag+1)
	for tau := 0; tau <= maxLag; tau++ {
		var s float64
		for t := 0; t+tau < n; t++ {
			s += (x[t] - m) * (x[t+tau] - m)
		}
		out[tau] = s / float64(n)
	}
	return out, nil
}

// Autocorrelation returns rho(0..maxLag) = gamma(tau)/gamma(0).
func Autocorrelation(x []float64, maxLag int) ([]float64, error) {
	acv, err := Autocovariance(x, maxLag)
	if err != nil {
		return nil, err
	}
	if acv[0] == 0 {
		return nil, fmt.Errorf("stats: autocorrelation undefined for constant series")
	}
	out := make([]float64, len(acv))
	for i, v := range acv {
		out[i] = v / acv[0]
	}
	return out, nil
}
