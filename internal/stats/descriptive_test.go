package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func newRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMeanVariance(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(x); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev(x); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if got := SampleVariance(x); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("SampleVariance = %g, want %g", got, 32.0/7)
	}
	if got := Sum(x); !almostEqual(got, 40, 1e-12) {
		t.Errorf("Sum = %g, want 40", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("Mean/Variance of empty input should be NaN")
	}
	if !math.IsNaN(SampleVariance([]float64{1})) {
		t.Error("SampleVariance of single point should be NaN")
	}
	lo, hi := MinMax(nil)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("MinMax of empty input should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%g, %g), want (-1, 7)", lo, hi)
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Quantile(x, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := Quantile(x, 1.5); err == nil {
		t.Error("expected error for q > 1")
	}
	med, err := Median([]float64{9})
	if err != nil || med != 9 {
		t.Errorf("Median single = %g, %v", med, err)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	prop := func(seed uint64, szRaw uint8) bool {
		n := int(szRaw%100) + 2
		rng := newRand(seed)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		var acc Accumulator
		acc.AddAll(x)
		lo, hi := MinMax(x)
		return acc.N() == n &&
			almostEqual(acc.Mean(), Mean(x), 1e-9) &&
			almostEqual(acc.Variance(), Variance(x), 1e-7) &&
			almostEqual(acc.SampleVariance(), SampleVariance(x), 1e-7) &&
			almostEqual(acc.Min(), lo, 0) &&
			almostEqual(acc.Max(), hi, 0) &&
			almostEqual(acc.Sum(), Sum(x), 1e-7)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorZeroValue(t *testing.T) {
	var acc Accumulator
	if acc.N() != 0 || !math.IsNaN(acc.Mean()) || !math.IsNaN(acc.Variance()) ||
		!math.IsNaN(acc.Min()) || !math.IsNaN(acc.Max()) {
		t.Error("zero-value accumulator should report NaN statistics")
	}
	acc.Add(5)
	if acc.Mean() != 5 || acc.Variance() != 0 || acc.Min() != 5 || acc.Max() != 5 {
		t.Error("single-observation accumulator incorrect")
	}
}

func TestAccumulatorMerge(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := newRand(seed)
		x := make([]float64, 64)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		var whole, left, right Accumulator
		whole.AddAll(x)
		left.AddAll(x[:20])
		right.AddAll(x[20:])
		left.Merge(&right)
		return left.N() == whole.N() &&
			almostEqual(left.Mean(), whole.Mean(), 1e-10) &&
			almostEqual(left.Variance(), whole.Variance(), 1e-9) &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
	// Merging into/from empty accumulators.
	var a, b Accumulator
	b.Add(3)
	a.Merge(&b)
	if a.N() != 1 || a.Mean() != 3 {
		t.Error("merge into empty accumulator failed")
	}
	var empty Accumulator
	a.Merge(&empty)
	if a.N() != 1 {
		t.Error("merge of empty accumulator changed state")
	}
}
