package stats

import "math"

// Digamma returns the logarithmic derivative of the Gamma function,
// psi(x) = d/dx ln Gamma(x), for x > 0. It uses the standard recurrence to
// shift the argument above 6 and then the asymptotic series. Accuracy is
// better than 1e-10 over the range the wavelet estimator uses.
func Digamma(x float64) float64 {
	if math.IsNaN(x) || x <= 0 {
		return math.NaN()
	}
	result := 0.0
	for x < 6 {
		result -= 1 / x
		x++
	}
	// Asymptotic expansion: psi(x) ~ ln x - 1/(2x) - sum B_2n/(2n x^2n).
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv
	result -= inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2/132))))
	return result
}

// LogChoose returns ln C(n, k) for 0 <= k <= n using log-gamma, valid for
// large arguments where the direct binomial overflows.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}

// LogscaleBiasCorrection returns g_j = psi(n/2)/ln 2 - log2(n/2), the
// additive bias of log2 of a chi-square-based energy average over n wavelet
// coefficients (Veitch & Abry). Subtracting it from log2(mu_j) debiases the
// logscale diagram ordinates.
func LogscaleBiasCorrection(n int) float64 {
	if n <= 0 {
		return math.NaN()
	}
	half := float64(n) / 2
	return Digamma(half)/math.Ln2 - math.Log2(half)
}

// LogscaleVariance returns the approximate variance of the debiased
// log2(mu_j) ordinate, zeta(2, n/2)/ln^2 2 ~ 2/(n ln^2 2) for large n.
// It is used as the inverse weight in the Abry-Veitch regression.
func LogscaleVariance(n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	// Hurwitz zeta(2, n/2) via a short series: sum 1/(n/2 + k)^2.
	half := float64(n) / 2
	var s float64
	for k := 0; k < 40; k++ {
		d := half + float64(k)
		s += 1 / (d * d)
	}
	// Tail integral approximation: integral from 40 of (half+t)^-2 dt.
	s += 1 / (half + 39.5)
	return s / (math.Ln2 * math.Ln2)
}
