package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCCDFKnown(t *testing.T) {
	values, prob, err := CCDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	wantV := []float64{1, 2}
	wantP := []float64{0.75, 0.25}
	if len(values) != len(wantV) {
		t.Fatalf("values = %v, want %v", values, wantV)
	}
	for i := range wantV {
		if values[i] != wantV[i] || !almostEqual(prob[i], wantP[i], 1e-12) {
			t.Errorf("point %d = (%g, %g), want (%g, %g)", i, values[i], prob[i], wantV[i], wantP[i])
		}
	}
}

func TestCCDFErrors(t *testing.T) {
	if _, _, err := CCDF(nil); err == nil {
		t.Error("expected error for empty sample")
	}
	if _, _, err := CCDF([]float64{5, 5, 5}); err == nil {
		t.Error("expected error for degenerate sample")
	}
}

func TestCCDFProperties(t *testing.T) {
	prop := func(seed uint64, szRaw uint8) bool {
		n := int(szRaw%200) + 10
		rng := newRand(seed)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.ExpFloat64()
		}
		values, prob, err := CCDF(x)
		if err != nil {
			return false
		}
		// Values strictly increasing, probabilities strictly decreasing in (0,1).
		if !sort.Float64sAreSorted(values) {
			return false
		}
		for i := range prob {
			if prob[i] <= 0 || prob[i] >= 1 {
				return false
			}
			if i > 0 && prob[i] >= prob[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestECDF(t *testing.T) {
	f, err := ECDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := f(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("ECDF(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if _, err := ECDF(nil); err == nil {
		t.Error("expected error for empty sample")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Counts) != 5 || len(h.Edges) != 6 {
		t.Fatalf("histogram shape %d/%d, want 5/6", len(h.Counts), len(h.Edges))
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != h.N || total != 11 {
		t.Errorf("histogram total = %d, want 11", total)
	}
	// Max value goes to the last bin.
	if h.Counts[4] != 3 { // 8, 9, 10
		t.Errorf("last bin = %d, want 3", h.Counts[4])
	}
	if _, err := NewHistogram(nil, 3); err == nil {
		t.Error("expected error for empty sample")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("expected error for zero bins")
	}
	// Constant sample must not divide by zero.
	if _, err := NewHistogram([]float64{2, 2, 2}, 4); err != nil {
		t.Errorf("constant sample: %v", err)
	}
}

func TestAutocovarianceWhiteNoise(t *testing.T) {
	rng := newRand(11)
	x := make([]float64, 20000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	acv, err := Autocovariance(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(acv[0], 1, 0.05) {
		t.Errorf("gamma(0) = %g, want ~1", acv[0])
	}
	for tau := 1; tau <= 5; tau++ {
		if math.Abs(acv[tau]) > 0.05 {
			t.Errorf("gamma(%d) = %g, want ~0", tau, acv[tau])
		}
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with coefficient phi has rho(tau) = phi^tau.
	phi := 0.8
	rng := newRand(12)
	x := make([]float64, 60000)
	for i := 1; i < len(x); i++ {
		x[i] = phi*x[i-1] + rng.NormFloat64()
	}
	rho, err := Autocorrelation(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rho[0] != 1 {
		t.Errorf("rho(0) = %g, want 1", rho[0])
	}
	for tau := 1; tau <= 4; tau++ {
		want := math.Pow(phi, float64(tau))
		if !almostEqual(rho[tau], want, 0.05) {
			t.Errorf("rho(%d) = %g, want ~%g", tau, rho[tau], want)
		}
	}
}

func TestAutocovarianceErrors(t *testing.T) {
	if _, err := Autocovariance(nil, 0); err == nil {
		t.Error("expected error for empty series")
	}
	if _, err := Autocovariance([]float64{1, 2}, 5); err == nil {
		t.Error("expected error for maxLag >= n")
	}
	if _, err := Autocorrelation([]float64{3, 3, 3}, 1); err == nil {
		t.Error("expected error for constant series")
	}
}
