package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitLineExact(t *testing.T) {
	// Points exactly on y = 3 - 2x.
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3 - 2*x[i]
	}
	fit, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, -2, 1e-12) || !almostEqual(fit.Intercept, 3, 1e-12) {
		t.Errorf("fit = %+v, want slope -2 intercept 3", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %g, want 1", fit.R2)
	}
	if fit.Eval(10) != -17 {
		t.Errorf("Eval(10) = %g, want -17", fit.Eval(10))
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{2}); err == nil {
		t.Error("expected error for single point")
	}
	if _, err := FitLine([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("expected error for constant x")
	}
	if _, err := FitLineWeighted([]float64{1, 2}, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected error for weight length mismatch")
	}
	if _, err := FitLineWeighted([]float64{1, 2}, []float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("expected error for all-zero weights")
	}
	if _, err := FitLineWeighted([]float64{1, 2}, []float64{1, 2}, []float64{-1, 1}); err == nil {
		t.Error("expected error for negative weight")
	}
}

func TestFitLineRecoversNoisyLine(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := newRand(seed)
		slope := rng.NormFloat64() * 3
		intercept := rng.NormFloat64() * 5
		n := 200
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i) / 10
			y[i] = intercept + slope*x[i] + rng.NormFloat64()*0.01
		}
		fit, err := FitLine(x, y)
		if err != nil {
			return false
		}
		return almostEqual(fit.Slope, slope, 0.01) && almostEqual(fit.Intercept, intercept, 0.05)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFitLineWeightedIgnoresZeroWeightOutliers(t *testing.T) {
	x := []float64{0, 1, 2, 3, 100}
	y := []float64{0, 1, 2, 3, -500} // outlier at the end
	w := []float64{1, 1, 1, 1, 0}
	fit, err := FitLineWeighted(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 1, 1e-12) || !almostEqual(fit.Intercept, 0, 1e-12) {
		t.Errorf("weighted fit = %+v, want y = x", fit)
	}
}

func TestFitPowerLaw(t *testing.T) {
	// y = 2.5 * x^-0.7 exactly.
	x := []float64{1, 2, 4, 8, 16, 32}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 2.5 * math.Pow(x[i], -0.7)
	}
	p, c, fit, err := FitPowerLaw(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p, -0.7, 1e-10) || !almostEqual(c, 2.5, 1e-9) {
		t.Errorf("power law fit p=%g c=%g, want -0.7, 2.5", p, c)
	}
	if fit.N != len(x) {
		t.Errorf("fit.N = %d, want %d", fit.N, len(x))
	}
}

func TestFitPowerLawSkipsNonpositive(t *testing.T) {
	x := []float64{0, -1, 1, 2, 4}
	y := []float64{5, 5, 1, 2, 4}
	p, _, fit, err := FitPowerLaw(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 3 {
		t.Errorf("fit used %d points, want 3", fit.N)
	}
	if !almostEqual(p, 1, 1e-10) {
		t.Errorf("p = %g, want 1", p)
	}
	if _, _, _, err := FitPowerLaw([]float64{-1, -2}, []float64{1, 1}); err == nil {
		t.Error("expected error when all points are nonpositive")
	}
	if _, _, _, err := FitPowerLaw([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected error for length mismatch")
	}
}

func TestLog2Points(t *testing.T) {
	lx, ly := Log2Points([]float64{1, 2, -3, 4}, []float64{2, 4, 8, 16})
	if len(lx) != 3 || len(ly) != 3 {
		t.Fatalf("kept %d points, want 3", len(lx))
	}
	if !almostEqual(lx[1], 1, 1e-12) || !almostEqual(ly[1], 2, 1e-12) {
		t.Errorf("Log2Points mapped (2,4) to (%g,%g), want (1,2)", lx[1], ly[1])
	}
}
