// Package stats provides the statistical substrate for the reproduction:
// descriptive statistics, streaming (Welford) accumulators, ordinary and
// weighted least-squares regression, empirical distribution functions,
// autocorrelation estimates and the special functions the wavelet Hurst
// estimator needs. All functions are pure and allocation-conscious.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or NaN for empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Sum returns the sum of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Variance returns the population variance (divide by n) of x, or NaN for
// input shorter than 1. A two-pass algorithm keeps it numerically stable.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// SampleVariance returns the unbiased (divide by n-1) variance, or NaN for
// fewer than two observations.
func SampleVariance(x []float64) float64 {
	if len(x) < 2 {
		return math.NaN()
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x)-1)
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// MinMax returns the smallest and largest element of x; NaNs for empty input.
func MinMax(x []float64) (minV, maxV float64) {
	if len(x) == 0 {
		return math.NaN(), math.NaN()
	}
	minV, maxV = x[0], x[0]
	for _, v := range x[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return minV, maxV
}

// Quantile returns the q-th empirical quantile (0 <= q <= 1) of x using
// linear interpolation between order statistics. x need not be sorted.
func Quantile(x []float64, q float64) (float64, error) {
	if len(x) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile level %g outside [0,1]", q)
	}
	sorted := make([]float64, len(x))
	copy(sorted, x)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the empirical median of x.
func Median(x []float64) (float64, error) { return Quantile(x, 0.5) }

// Accumulator is a streaming mean/variance tracker using Welford's
// algorithm. The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	sum  float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(v float64) {
	if a.n == 0 {
		a.min, a.max = v, v
	} else {
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	a.n++
	a.sum += v
	delta := v - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (v - a.mean)
}

// AddAll folds a batch of observations.
func (a *Accumulator) AddAll(xs []float64) {
	for _, v := range xs {
		a.Add(v)
	}
}

// N returns the number of observations seen so far.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (NaN before any observation).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Sum returns the running sum.
func (a *Accumulator) Sum() float64 { return a.sum }

// Variance returns the running population variance (NaN before any
// observation).
func (a *Accumulator) Variance() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.m2 / float64(a.n)
}

// SampleVariance returns the running unbiased variance (NaN below two
// observations).
func (a *Accumulator) SampleVariance() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.m2 / float64(a.n-1)
}

// Min returns the smallest observation seen (NaN before any observation).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest observation seen (NaN before any observation).
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// AccumulatorState is the exported form of an Accumulator's internal
// state, for exact serialization: State followed by SetState reproduces
// the accumulator bit for bit, so a restored stream continues the same
// Welford recursion a never-stopped one would.
type AccumulatorState struct {
	N                       int
	Mean, M2, Sum, Min, Max float64
}

// State captures the accumulator's internal state.
func (a *Accumulator) State() AccumulatorState {
	return AccumulatorState{N: a.n, Mean: a.mean, M2: a.m2, Sum: a.sum, Min: a.min, Max: a.max}
}

// SetState overwrites the accumulator with a previously captured state.
func (a *Accumulator) SetState(s AccumulatorState) {
	a.n, a.mean, a.m2, a.sum, a.min, a.max = s.N, s.Mean, s.M2, s.Sum, s.Min, s.Max
}

// Merge folds another accumulator into a (parallel reduction support).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	mean := a.mean + delta*float64(b.n)/float64(n)
	m2 := a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n, a.mean, a.m2 = n, mean, m2
	a.sum += b.sum
}
