package stats

import (
	"fmt"
	"math"
)

// LineFit is the result of a least-squares straight-line fit y = a + b*x.
type LineFit struct {
	Slope     float64 // b
	Intercept float64 // a
	R2        float64 // coefficient of determination
	SlopeSE   float64 // standard error of the slope (unweighted fits only)
	N         int     // points used
}

// Eval returns the fitted value a + b*x.
func (f LineFit) Eval(x float64) float64 { return f.Intercept + f.Slope*x }

// FitLine computes the ordinary least-squares line through (x[i], y[i]).
// At least two distinct x values are required.
func FitLine(x, y []float64) (LineFit, error) {
	w := make([]float64, len(x))
	for i := range w {
		w[i] = 1
	}
	fit, err := FitLineWeighted(x, y, w)
	if err != nil {
		return LineFit{}, err
	}
	// Standard error of the slope for the unweighted fit.
	if fit.N > 2 {
		mx := Mean(x)
		var sxx, sse float64
		for i := range x {
			dx := x[i] - mx
			sxx += dx * dx
			r := y[i] - fit.Eval(x[i])
			sse += r * r
		}
		if sxx > 0 {
			fit.SlopeSE = math.Sqrt(sse / float64(fit.N-2) / sxx)
		}
	}
	return fit, nil
}

// FitLineWeighted computes the weighted least-squares line minimizing
// sum w[i]*(y[i] - a - b*x[i])^2. Weights must be nonnegative and not all
// zero.
func FitLineWeighted(x, y, w []float64) (LineFit, error) {
	if len(x) != len(y) || len(x) != len(w) {
		return LineFit{}, fmt.Errorf("stats: FitLineWeighted length mismatch (%d, %d, %d)", len(x), len(y), len(w))
	}
	if len(x) < 2 {
		return LineFit{}, fmt.Errorf("stats: need at least 2 points, got %d", len(x))
	}
	var sw, swx, swy float64
	for i := range x {
		if w[i] < 0 || math.IsNaN(w[i]) {
			return LineFit{}, fmt.Errorf("stats: invalid weight %g at index %d", w[i], i)
		}
		sw += w[i]
		swx += w[i] * x[i]
		swy += w[i] * y[i]
	}
	if sw == 0 {
		return LineFit{}, fmt.Errorf("stats: all weights are zero")
	}
	mx, my := swx/sw, swy/sw
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += w[i] * dx * dx
		sxy += w[i] * dx * (y[i] - my)
	}
	if sxx == 0 {
		return LineFit{}, fmt.Errorf("stats: x values are all identical")
	}
	b := sxy / sxx
	a := my - b*mx
	// Weighted R^2.
	var ssRes, ssTot float64
	for i := range x {
		r := y[i] - (a + b*x[i])
		d := y[i] - my
		ssRes += w[i] * r * r
		ssTot += w[i] * d * d
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LineFit{Slope: b, Intercept: a, R2: r2, N: len(x)}, nil
}

// FitPowerLaw fits y = c * x^p by ordinary least squares in log-log space,
// skipping nonpositive points (which have no logarithm). It returns the
// exponent p, the prefactor c and the underlying log-log fit.
func FitPowerLaw(x, y []float64) (p, c float64, fit LineFit, err error) {
	if len(x) != len(y) {
		return 0, 0, LineFit{}, fmt.Errorf("stats: FitPowerLaw length mismatch (%d vs %d)", len(x), len(y))
	}
	lx := make([]float64, 0, len(x))
	ly := make([]float64, 0, len(y))
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	if len(lx) < 2 {
		return 0, 0, LineFit{}, fmt.Errorf("stats: FitPowerLaw needs >= 2 positive points, got %d", len(lx))
	}
	fit, err = FitLine(lx, ly)
	if err != nil {
		return 0, 0, LineFit{}, err
	}
	return fit.Slope, math.Exp(fit.Intercept), fit, nil
}

// Log2Points maps positive (x, y) pairs to (log2 x, log2 y), dropping
// nonpositive entries. Used by the logscale-diagram style plots the paper
// fits lines to.
func Log2Points(x, y []float64) (lx, ly []float64) {
	lx = make([]float64, 0, len(x))
	ly = make([]float64, 0, len(y))
	for i := range x {
		if i < len(y) && x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log2(x[i]))
			ly = append(ly, math.Log2(y[i]))
		}
	}
	return lx, ly
}
