package stats

import (
	"math"
	"testing"
)

// Reference values for psi(x), from Abramowitz & Stegun / high-precision
// computation: psi(1) = -gamma, psi(1/2) = -gamma - 2 ln 2, psi(2) = 1 - gamma.
const eulerGamma = 0.5772156649015329

func TestDigammaKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, -eulerGamma},
		{0.5, -eulerGamma - 2*math.Ln2},
		{2, 1 - eulerGamma},
		{10, 2.2517525890667214},
		{100, 4.600161852738087},
	}
	for _, tc := range cases {
		if got := Digamma(tc.x); math.Abs(got-tc.want) > 1e-10 {
			t.Errorf("Digamma(%g) = %.15g, want %.15g", tc.x, got, tc.want)
		}
	}
}

// The recurrence psi(x+1) = psi(x) + 1/x pins the shift logic against
// the asymptotic series across the range the wavelet estimator uses.
func TestDigammaRecurrence(t *testing.T) {
	for _, x := range []float64{0.1, 0.7, 1.3, 2.5, 5.9, 17, 123.4} {
		lhs := Digamma(x + 1)
		rhs := Digamma(x) + 1/x
		if math.Abs(lhs-rhs) > 1e-9*math.Max(1, math.Abs(rhs)) {
			t.Errorf("recurrence broken at x=%g: psi(x+1)=%.15g, psi(x)+1/x=%.15g", x, lhs, rhs)
		}
	}
}

func TestDigammaInvalid(t *testing.T) {
	for _, x := range []float64{0, -1, -0.5, math.NaN()} {
		if got := Digamma(x); !math.IsNaN(got) {
			t.Errorf("Digamma(%g) = %g, want NaN", x, got)
		}
	}
}

func TestLogChoose(t *testing.T) {
	// Small cases against the exact binomial.
	choose := func(n, k int) float64 {
		c := 1.0
		for i := 0; i < k; i++ {
			c = c * float64(n-i) / float64(i+1)
		}
		return c
	}
	for n := 0; n <= 30; n++ {
		for k := 0; k <= n; k++ {
			want := math.Log(choose(n, k))
			if got := LogChoose(n, k); math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Errorf("LogChoose(%d,%d) = %g, want %g", n, k, got, want)
			}
		}
	}
	// Large arguments where the direct binomial overflows, against the
	// independent log-sum ln C(n,k) = sum ln((n-k+i)/i).
	logSum := func(n, k int) float64 {
		var s float64
		for i := 1; i <= k; i++ {
			s += math.Log(float64(n-k+i)) - math.Log(float64(i))
		}
		return s
	}
	for _, nk := range [][2]int{{1000, 500}, {5000, 137}, {100000, 99999}} {
		got, want := LogChoose(nk[0], nk[1]), logSum(nk[0], nk[1])
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("LogChoose(%d,%d) = %.10f, want %.10f", nk[0], nk[1], got, want)
		}
	}
}

func TestLogChooseEdges(t *testing.T) {
	if got := LogChoose(5, -1); !math.IsInf(got, -1) {
		t.Errorf("LogChoose(5,-1) = %g, want -Inf", got)
	}
	if got := LogChoose(5, 6); !math.IsInf(got, -1) {
		t.Errorf("LogChoose(5,6) = %g, want -Inf", got)
	}
	if got := LogChoose(7, 0); got != 0 {
		t.Errorf("LogChoose(7,0) = %g, want 0", got)
	}
	if got := LogChoose(7, 7); got != 0 {
		t.Errorf("LogChoose(7,7) = %g, want 0", got)
	}
	// Symmetry C(n,k) = C(n,n-k).
	if a, b := LogChoose(40, 13), LogChoose(40, 27); math.Abs(a-b) > 1e-10 {
		t.Errorf("symmetry broken: %g vs %g", a, b)
	}
}

func TestLogscaleBiasCorrection(t *testing.T) {
	// g_j = psi(n/2)/ln2 - log2(n/2) directly from the definition.
	for _, n := range []int{2, 4, 8, 64, 1024} {
		half := float64(n) / 2
		want := Digamma(half)/math.Ln2 - math.Log2(half)
		if got := LogscaleBiasCorrection(n); math.Abs(got-want) > 1e-12 {
			t.Errorf("LogscaleBiasCorrection(%d) = %g, want %g", n, got, want)
		}
	}
	// The bias is negative (log2 of a chi-square average underestimates)
	// and vanishes as n grows: psi(x) - ln x -> 0.
	prev := math.Inf(-1)
	for _, n := range []int{2, 8, 32, 128, 512, 4096} {
		g := LogscaleBiasCorrection(n)
		if g >= 0 {
			t.Errorf("bias at n=%d is %g, want negative", n, g)
		}
		if g <= prev {
			t.Errorf("bias not shrinking: g(%d)=%g after %g", n, g, prev)
		}
		prev = g
	}
	if g := LogscaleBiasCorrection(1 << 20); math.Abs(g) > 1e-5 {
		t.Errorf("bias at n=2^20 is %g, want ~0", g)
	}
	if got := LogscaleBiasCorrection(0); !math.IsNaN(got) {
		t.Errorf("LogscaleBiasCorrection(0) = %g, want NaN", got)
	}
	if got := LogscaleBiasCorrection(-3); !math.IsNaN(got) {
		t.Errorf("LogscaleBiasCorrection(-3) = %g, want NaN", got)
	}
}

func TestLogscaleVariance(t *testing.T) {
	// zeta(2, n/2)/ln^2 2 ~ 2/(n ln^2 2) for large n.
	for _, n := range []int{256, 1024, 4096} {
		want := 2 / (float64(n) * math.Ln2 * math.Ln2)
		got := LogscaleVariance(n)
		if math.Abs(got-want) > 0.02*want {
			t.Errorf("LogscaleVariance(%d) = %g, want ~%g", n, got, want)
		}
	}
	// Exact small case: zeta(2, 1) = pi^2/6 at n = 2.
	want := math.Pi * math.Pi / 6 / (math.Ln2 * math.Ln2)
	if got := LogscaleVariance(2); math.Abs(got-want) > 0.05*want {
		t.Errorf("LogscaleVariance(2) = %g, want ~%g (zeta(2,1)/ln^2 2)", got, want)
	}
	// Monotone decreasing in n: more coefficients, tighter ordinate.
	prev := math.Inf(1)
	for _, n := range []int{2, 4, 16, 64, 256} {
		v := LogscaleVariance(n)
		if v <= 0 || v >= prev {
			t.Errorf("variance not positive-decreasing: v(%d)=%g after %g", n, v, prev)
		}
		prev = v
	}
	if got := LogscaleVariance(0); !math.IsInf(got, 1) {
		t.Errorf("LogscaleVariance(0) = %g, want +Inf", got)
	}
}
