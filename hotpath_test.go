package repro_test

// The batch-ingest guard: Engine.Offer is the documented single-tick
// convenience form of OfferBatch, and the hot ingest layers — the hub,
// the sampled daemon, the sampleload generator — must stay on the batch
// form (one lock acquisition per batch, not per tick). This test parses
// those packages' sources and fails on any call spelled `.Offer(...)`,
// so a refactor that quietly reintroduces per-tick locking on a hot
// path breaks the build gate instead of only the benchmarks.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// hotPathDirs are the ingest layers held to the batch form. Test files
// are exempt: equivalence tests deliberately drive the tick path as the
// reference.
var hotPathDirs = []string{
	"sampling/hub",
	"cmd/sampled",
	"cmd/sampleload",
}

func TestHotPathsUseBatchOffer(t *testing.T) {
	for _, dir := range hotPathDirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		sawSource := false
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			sawSource = true
			path := filepath.Join(dir, name)
			fset := token.NewFileSet()
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Offer" {
					return true
				}
				pos := fset.Position(sel.Sel.Pos())
				t.Errorf("%s:%d: hot path calls .Offer — use OfferBatch (Offer is the single-tick convenience form)",
					path, pos.Line)
				return true
			})
		}
		if !sawSource {
			t.Fatalf("%s holds no non-test Go sources — guard list stale", dir)
		}
	}
}
