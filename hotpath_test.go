package repro_test

// The batch-ingest guard: Engine.Offer is the documented single-tick
// convenience form of OfferBatch, and the hot ingest layers — the hub,
// the sampled daemon, the sampleload generator — must stay on the batch
// form (one lock acquisition per batch, not per tick). This test parses
// those packages' sources and fails on any call spelled `.Offer(...)`,
// so a refactor that quietly reintroduces per-tick locking on a hot
// path breaks the build gate instead of only the benchmarks.
//
// The daemon and the wire codec are additionally held off io.ReadAll:
// binary ingest decodes frames incrementally through pooled buffers,
// and slurping a request body (or a session stream, which never ends)
// into one allocation would undo both the zero-copy decode path and
// the MaxBytesReader size bounds.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// hotPathDirs are the ingest layers under guard. Test files are
// exempt: equivalence tests deliberately drive the tick path as the
// reference, and benchmarks drain response bodies with io.ReadAll.
// banReadAll marks the directories on the serving side of the wire;
// sampleload's response handling legitimately slurps small JSON
// replies.
var hotPathDirs = []struct {
	dir        string
	banReadAll bool
}{
	{"sampling/hub", false},
	{"sampling/wire", true},
	{"cmd/sampled", true},
	{"cmd/sampleload", false},
}

func TestHotPathsUseBatchOffer(t *testing.T) {
	for _, hp := range hotPathDirs {
		entries, err := os.ReadDir(hp.dir)
		if err != nil {
			t.Fatalf("reading %s: %v", hp.dir, err)
		}
		sawSource := false
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			sawSource = true
			path := filepath.Join(hp.dir, name)
			fset := token.NewFileSet()
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pos := fset.Position(sel.Sel.Pos())
				switch {
				case sel.Sel.Name == "Offer":
					t.Errorf("%s:%d: hot path calls .Offer — use OfferBatch (Offer is the single-tick convenience form)",
						path, pos.Line)
				case hp.banReadAll && sel.Sel.Name == "ReadAll" && isPackageIdent(sel.X, "io"):
					t.Errorf("%s:%d: ingest path calls io.ReadAll — decode incrementally through pooled buffers (slurping a body defeats the size bounds and the zero-copy wire)",
						path, pos.Line)
				}
				return true
			})
		}
		if !sawSource {
			t.Fatalf("%s holds no non-test Go sources — guard list stale", hp.dir)
		}
	}
}

// isPackageIdent reports whether expr is the bare identifier name —
// the shape of a package qualifier in a selector like io.ReadAll.
func isPackageIdent(expr ast.Expr, name string) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == name
}
