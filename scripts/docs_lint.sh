#!/usr/bin/env bash
# docs_lint.sh — keep the prose honest.
#
# Two checks over the repo's markdown:
#
#   1. Every fenced ```go block in README.md and ARCHITECTURE.md must
#      parse. Full files (starting with "package") are fed to gofmt
#      as-is; fragments get their import lines hoisted and the rest
#      wrapped in a throwaway func body, so expression- and
#      statement-level snippets are checked without having to compile
#      (undefined identifiers are fine, syntax errors are not).
#
#   2. Every `go run ./cmd/NAME ... -flag` line in a fenced sh/text
#      block must name flags the command actually registers — the drift
#      that creeps in when a flag is renamed but the README keeps the
#      old spelling.
#
# Run from the repo root: ./scripts/docs_lint.sh
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

docs=(README.md ARCHITECTURE.md)
fail=0
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# --- 1. go snippets must parse -------------------------------------------

extract_go_blocks() { # file -> writes numbered snippet files into $tmp
	awk -v out="$tmp/$(basename "$1")" '
		/^```go$/   { in_block = 1; n++; snippet = out "." n ".go"; next }
		/^```/      { in_block = 0; next }
		in_block    { print > snippet }
	' "$1"
}

for doc in "${docs[@]}"; do
	extract_go_blocks "$doc"
done

shopt -s nullglob
for snippet in "$tmp"/*.go; do
	if head -1 "$snippet" | grep -q '^package '; then
		candidate="$snippet"
	else
		# Hoist imports, wrap the rest so statements/expressions parse.
		candidate="$snippet.wrapped"
		{
			echo 'package snippet'
			grep -E '^import ' "$snippet" || true
			echo 'func _() {'
			grep -Ev '^import ' "$snippet"
			echo '}'
		} >"$candidate"
	fi
	if ! err=$(gofmt -e "$candidate" 2>&1 >/dev/null); then
		echo "docs_lint: go snippet does not parse: ${snippet#"$tmp"/}"
		echo "$err" | sed 's/^/  /'
		fail=1
	fi
done

# --- 2. README flags must exist in the named command ---------------------

# Lines like `go run ./cmd/sampled -addr :8080 -ttl 10m` — each -flag
# must appear as a registration ("flagname" string literal) in cmd/NAME.
while read -r line; do
	cmd=$(sed -E 's|.*go run \./cmd/([a-z]+).*|\1|' <<<"$line")
	[ -d "cmd/$cmd" ] || continue
	# Strip flag values so "-d '{...}'" payloads are not mistaken for flags.
	for flag in $(grep -oE ' -[a-zA-Z][a-zA-Z-]*' <<<"$line" | sed 's/^ -//' | sort -u); do
		if ! grep -qr "\"$flag\"" "cmd/$cmd"/*.go; then
			echo "docs_lint: flag -$flag not registered by cmd/$cmd (line: $line)"
			fail=1
		fi
	done
done < <(grep -h 'go run \./cmd/' "${docs[@]}" | grep ' -' | grep -v '^//')

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "docs_lint: ${docs[*]} clean"
