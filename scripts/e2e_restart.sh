#!/usr/bin/env bash
# e2e_restart.sh — end-to-end smoke for the durability layer, in two
# acts.
#
# Part 1, zero-downtime restart: boot sampled with -checkpoint-dir,
# ingest into a fleet of streams (estimator on), SIGTERM it (final
# checkpoint), boot a new process on the same dir and require identical
# counters and a byte-identical Hurst document — the restart is
# invisible to a client reading snapshots.
#
# Part 2, cluster routing: two backends behind a `sampled -route`
# router. Streams created and fed through the router spread over both
# backends; one backend is killed and restarted from its checkpoint,
# and the router's health loop must eject it, readmit it, and hand its
# share of streams back by checkpoint transfer — with every stream's
# counters intact end to end.
#
#   ./scripts/e2e_restart.sh [streams] [ticks]
set -euo pipefail

STREAMS="${1:-6}"
TICKS="${2:-10000}"
PORT="${SAMPLED_PORT:-18090}"
B1_PORT=$((PORT + 1))
B2_PORT=$((PORT + 2))
BASE="http://127.0.0.1:${PORT}"

workdir="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/sampled" ./cmd/sampled
go build -o "$workdir/sampleload" ./cmd/sampleload

# wait_ready polls a base URL's /readyz until it answers 200 — the
# durability layer's own signal that boot restore has finished.
wait_ready() {
    local base="$1" pid="$2"
    for _ in $(seq 1 50); do
        if curl -sf "$base/readyz" > /dev/null 2>&1; then
            return 0
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "e2e-restart: daemon at $base died before ready" >&2
            exit 1
        fi
        sleep 0.1
    done
    curl -sf "$base/readyz" > /dev/null
}

# snapshot_line extracts the counters a restart must preserve.
snapshot_line() {
    curl -sf "$1/v1/streams/$2/snapshot" |
        sed -E 's/.*"seen":([0-9]+).*"kept":([0-9]+).*/seen=\1 kept=\2/'
}

# make_fleet creates $STREAMS persistent streams named "$1-NN" against
# base URL $2 (randomized technique, distinct seeds, estimator on) and
# feeds each one TICKS ticks.
make_fleet() {
    local prefix="$1" base="$2" i id
    for i in $(seq 0 $((STREAMS - 1))); do
        id="$(printf '%s-%02d' "$prefix" "$i")"
        curl -sf -X PUT "$base/v1/streams/$id" \
            -H 'Content-Type: application/json' \
            -d "{\"spec\": \"bernoulli:rate=0.05,seed=$((i + 11))\", \"estimator\": \"aggvar\"}" > /dev/null
        seq 1 "$TICKS" | tr '\n' ' ' |
            curl -sf -X POST "$base/v1/streams/$id/ticks" --data-binary @- > /dev/null
    done
}

# ---------------------------------------------------------------- Part 1

ckpt_dir="$workdir/ckpt"
"$workdir/sampled" -addr "127.0.0.1:${PORT}" \
    -checkpoint-dir "$ckpt_dir" -checkpoint-interval 1s &
daemon_pid=$!
pids+=("$daemon_pid")
wait_ready "$BASE" "$daemon_pid"

# Throughput smoke through the full serving path (sampleload tears its
# own streams down), then the persistent fleet the restart must carry.
"$workdir/sampleload" -addr "127.0.0.1:${PORT}" \
    -streams "$STREAMS" -ticks "$TICKS" -batch 512
make_fleet ck "$BASE"

declare -A before
for i in $(seq 0 $((STREAMS - 1))); do
    id="$(printf 'ck-%02d' "$i")"
    before[$id]="$(snapshot_line "$BASE" "$id")"
done
hurst_before="$(curl -sf "$BASE/v1/streams/ck-00/hurst")"
count_before="$(curl -sf "$BASE/v1/streams" | sed -E 's/.*"count":([0-9]+).*/\1/')"

kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "e2e-restart: sampled did not drain cleanly on SIGTERM" >&2
    exit 1
fi
if [ ! -s "$ckpt_dir/hub.ckpt" ]; then
    echo "e2e-restart: no checkpoint written on shutdown" >&2
    exit 1
fi

"$workdir/sampled" -addr "127.0.0.1:${PORT}" \
    -checkpoint-dir "$ckpt_dir" -checkpoint-interval 1s &
daemon_pid=$!
pids+=("$daemon_pid")
wait_ready "$BASE" "$daemon_pid"

count_after="$(curl -sf "$BASE/v1/streams" | sed -E 's/.*"count":([0-9]+).*/\1/')"
if [ "$count_before" != "$count_after" ]; then
    echo "e2e-restart: stream count changed across restart: $count_before -> $count_after" >&2
    exit 1
fi
for i in $(seq 0 $((STREAMS - 1))); do
    id="$(printf 'ck-%02d' "$i")"
    after="$(snapshot_line "$BASE" "$id")"
    if [ "${before[$id]}" != "$after" ]; then
        echo "e2e-restart: $id counters changed across restart: '${before[$id]}' -> '$after'" >&2
        exit 1
    fi
done
hurst_after="$(curl -sf "$BASE/v1/streams/ck-00/hurst")"
if [ "$hurst_before" != "$hurst_after" ]; then
    echo "e2e-restart: hurst document changed across restart" >&2
    exit 1
fi
# The restored daemon keeps serving: more ticks must land on the
# restored engine, not a fresh one.
seq 1 1000 | tr '\n' ' ' | curl -sf -X POST "$BASE/v1/streams/ck-00/ticks" --data-binary @- > /dev/null
snapshot_line "$BASE" ck-00 | grep -q "seen=$((TICKS + 1000)) "

kill -TERM "$daemon_pid"
wait "$daemon_pid" || true
echo "e2e-restart: part 1 ok ($count_before streams restored byte-identically)"

# ---------------------------------------------------------------- Part 2

B1="http://127.0.0.1:${B1_PORT}"
B2="http://127.0.0.1:${B2_PORT}"
"$workdir/sampled" -addr "127.0.0.1:${B1_PORT}" -checkpoint-dir "$workdir/b1" &
b1_pid=$!
pids+=("$b1_pid")
"$workdir/sampled" -addr "127.0.0.1:${B2_PORT}" -checkpoint-dir "$workdir/b2" &
b2_pid=$!
pids+=("$b2_pid")
wait_ready "$B1" "$b1_pid"
wait_ready "$B2" "$b2_pid"

"$workdir/sampled" -addr "127.0.0.1:${PORT}" \
    -route "127.0.0.1:${B1_PORT},127.0.0.1:${B2_PORT}" \
    -health-interval 200ms &
router_pid=$!
pids+=("$router_pid")
wait_ready "$BASE" "$router_pid"

# Drive load through the router (forwarding smoke over every wire the
# load tool speaks), then the persistent fleet whose placement the
# outage will test.
"$workdir/sampleload" -addr "127.0.0.1:${PORT}" \
    -streams "$STREAMS" -ticks "$TICKS" -batch 512 -wire session
make_fleet fleet "$BASE"

total="$(curl -sf "$BASE/v1/streams" | sed -E 's/.*"count":([0-9]+).*/\1/')"
if [ "$total" != "$STREAMS" ]; then
    echo "e2e-restart: router sees $total streams, want $STREAMS" >&2
    exit 1
fi
n1="$(curl -sf "$B1/v1/streams" | sed -E 's/.*"count":([0-9]+).*/\1/')"
n2="$(curl -sf "$B2/v1/streams" | sed -E 's/.*"count":([0-9]+).*/\1/')"
if [ "$n1" -eq 0 ] || [ "$n2" -eq 0 ]; then
    echo "e2e-restart: degenerate placement ($n1/$n2) over two backends" >&2
    exit 1
fi

# wait_backends polls the router's membership gauge until it reads $1.
wait_backends() {
    local want="$1" up=""
    for _ in $(seq 1 100); do
        up="$(curl -sf "$BASE/metrics" | awk '/^sampled_router_backends_up /{print $2}')"
        if [ "${up%%.*}" = "$want" ]; then
            return 0
        fi
        sleep 0.1
    done
    echo "e2e-restart: router never saw $want backends up (last: ${up:-none})" >&2
    exit 1
}

# Kill backend 2: the router must eject it within a probe round. Its
# streams ride out the outage in its shutdown checkpoint.
kill -TERM "$b2_pid"
wait "$b2_pid" || true
wait_backends 1

# Restart backend 2 from its checkpoint: the router must readmit it and
# rebalance — every stream lands back on its ring owner with counters
# intact, so the cluster-wide view is exactly the pre-outage one.
"$workdir/sampled" -addr "127.0.0.1:${B2_PORT}" -checkpoint-dir "$workdir/b2" &
b2_pid=$!
pids+=("$b2_pid")
wait_ready "$B2" "$b2_pid"
wait_backends 2
# Rebalance runs synchronously inside the probe round, so membership=2
# implies the handoffs are done.
total="$(curl -sf "$BASE/v1/streams" | sed -E 's/.*"count":([0-9]+).*/\1/')"
if [ "$total" != "$STREAMS" ]; then
    echo "e2e-restart: $total streams after backend restart, want $STREAMS" >&2
    exit 1
fi
for i in $(seq 0 $((STREAMS - 1))); do
    id="$(printf 'fleet-%02d' "$i")"
    line="$(snapshot_line "$BASE" "$id")"
    if ! echo "$line" | grep -q "seen=${TICKS} "; then
        echo "e2e-restart: stream $id lost ticks across the outage: $line" >&2
        exit 1
    fi
done
handoffs="$(curl -sf "$BASE/metrics" | awk '/^sampled_router_handoffs_total /{print $2}')"
echo "e2e-restart: part 2 ok ($STREAMS streams, placement $n1/$n2, ${handoffs:-0} handoffs)"

kill -TERM "$router_pid"
wait "$router_pid" || true
kill -TERM "$b1_pid" "$b2_pid"
wait "$b1_pid" || true
wait "$b2_pid" || true
echo "e2e-restart: clean"
