#!/usr/bin/env bash
# e2e_drain.sh — end-to-end smoke for the sampled daemon's serving and
# shutdown paths: boot sampled on a loopback port, hammer it with
# sampleload over HTTP (which also exercises the estimator/hurst
# surface), scrape /metrics and a /hurst document, then SIGTERM the
# daemon and require a clean drain (exit 0). CI runs this; it works the
# same locally:
#
#   ./scripts/e2e_drain.sh [streams] [ticks]
set -euo pipefail

STREAMS="${1:-8}"
TICKS="${2:-20000}"
PORT="${SAMPLED_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"

workdir="$(mktemp -d)"
daemon_pid=""
# A mid-script failure must not leak a daemon holding the port.
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/sampled" ./cmd/sampled
go build -o "$workdir/sampleload" ./cmd/sampleload

# -version must print the build and exit without binding the port.
"$workdir/sampled" -version | grep -q '^sampled '

# -hurst-metrics-every 0 recomputes the sampled_hurst_* aggregate on
# every scrape: this script scrapes /metrics several times and asserts
# gauge values between scrapes, so the default 10s cache would serve
# stale readings. -pprof opts the profiling endpoints in so the script
# can exercise them.
"$workdir/sampled" -addr "127.0.0.1:${PORT}" -hurst-metrics-every 0 -pprof &
daemon_pid=$!

# Wait for the listener (up to ~5s).
for _ in $(seq 1 50); do
    if curl -sf "$BASE/v1/streams" > /dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "e2e: sampled died before accepting connections" >&2
        exit 1
    fi
    sleep 0.1
done
curl -sf "$BASE/v1/streams" > /dev/null

# Drive it: N concurrent streams of fGn with the default aggvar
# estimator, a couple of seconds of ingest on CI hardware.
"$workdir/sampleload" -addr "127.0.0.1:${PORT}" -streams "$STREAMS" -ticks "$TICKS" -batch 512

# The binary wire, in session mode: every stream one long-lived frame
# connection, then check the frame counters it must have moved.
"$workdir/sampleload" -addr "127.0.0.1:${PORT}" -wire session \
    -streams "$STREAMS" -ticks "$TICKS" -batch 512
metrics="$(curl -sf "$BASE/metrics")"
frames="$(echo "$metrics" | awk '/^sampled_ingest_frames_total /{print $2}')"
bytes="$(echo "$metrics" | awk '/^sampled_ingest_bytes_total /{print $2}')"
if [ -z "$frames" ] || [ "$frames" -le 0 ]; then
    echo "e2e: session ingest moved no frames (sampled_ingest_frames_total=${frames:-missing})" >&2
    exit 1
fi
if [ -z "$bytes" ] || [ "$bytes" -le 0 ]; then
    echo "e2e: session ingest moved no bytes (sampled_ingest_bytes_total=${bytes:-missing})" >&2
    exit 1
fi

# The obs subsystem: the registry-rendered exposition must carry the
# per-route duration histogram for the ingest route, the per-wire
# decode histogram for the sessions just driven, and the build-info
# gauge.
echo "$metrics" | grep -qF 'sampled_http_request_duration_seconds_bucket{route="POST /v1/streams/{id}/ticks",le="+Inf"}'
echo "$metrics" | grep -qF 'sampled_ingest_decode_seconds_bucket{wire="session",le="+Inf"}'
echo "$metrics" | grep -qF 'sampled_build_info{version="'
echo "$metrics" | grep -q '^sampled_goroutines '

# The flight recorder has seen the load run's requests. (Capture the
# body before grepping: with pipefail, grep -q quitting at the first
# match would hand curl an EPIPE on any body larger than the pipe
# buffer — and the event ring and the histogram-laden /metrics both
# are.)
events="$(curl -sf "$BASE/debug/events")"
echo "$events" | grep -q '"kind":"request"'

# The opted-in profiling surface: a 1s CPU profile must come back
# non-empty.
curl -sf -o "$workdir/profile.pb" "$BASE/debug/pprof/profile?seconds=1"
if [ ! -s "$workdir/profile.pb" ]; then
    echo "e2e: /debug/pprof/profile returned an empty profile" >&2
    exit 1
fi

# The load tool finishes its streams; create one more so shutdown drains
# a daemon with live state, and check the hurst document on the way.
curl -sf -X PUT "$BASE/v1/streams/drain-check" \
    -H 'Content-Type: application/json' \
    -d '{"spec": "systematic:interval=50", "estimator": "aggvar"}' > /dev/null
seq 1 5000 | tr '\n' ' ' | curl -sf -X POST "$BASE/v1/streams/drain-check/ticks" --data-binary @- > /dev/null
curl -sf "$BASE/v1/streams/drain-check/hurst" | grep -q '"method":"aggvar"'
metrics="$(curl -sf "$BASE/metrics")"
echo "$metrics" | grep -q '^sampled_hurst_streams_estimating 1$'

# The v2 surface: one comparison group over all five techniques on the
# same ticks, its comparison snapshot carrying every member plus the
# fidelity block, and the group metrics counting it.
curl -sf -X PUT "$BASE/v1/groups/compare-check" \
    -H 'Content-Type: application/json' \
    -d '{"specs": ["systematic:interval=50", "stratified:interval=50,seed=3",
                   "simple:n=100,seed=4", "bernoulli:rate=0.02,seed=5",
                   "bss:interval=50,L=5,eps=1.0"],
         "estimator": "aggvar"}' > /dev/null
seq 1 5000 | tr '\n' ' ' | curl -sf -X POST "$BASE/v1/groups/compare-check/ticks" --data-binary @- > /dev/null
comparison="$(curl -sf "$BASE/v1/groups/compare-check")"
echo "$comparison" | grep -q '"seen":5000'
echo "$comparison" | grep -q '"technique":"bss"'
echo "$comparison" | grep -q '"kept_ratio":'
echo "$comparison" | grep -q '"mean_bias":'
metrics="$(curl -sf "$BASE/metrics")"
echo "$metrics" | grep -q '^sampled_groups 1$'
echo "$metrics" | grep -q '^sampled_group_ticks_total 5000$'
curl -sf "$BASE/v1/groups" | grep -q '"groups":\["compare-check"\]'

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "e2e: sampled did not drain cleanly on SIGTERM" >&2
    exit 1
fi
echo "e2e: clean drain"
