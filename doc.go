// Package repro is a from-scratch Go reproduction of "An In-Depth,
// Analytical Study of Sampling Techniques for Self-Similar Internet
// Traffic" (He & Hou, ICDCS 2005).
//
// The supported entry point is the public sampling package (repro/sampling):
// typed sampler specs (sampling.Parse, Spec.String round-trips), live
// streaming engines built with functional options
// (sampling.New(spec, sampling.WithSeed(7), sampling.WithBudget(n))),
// non-destructive mid-stream observation (Engine.Snapshot), typed errors
// (ErrUnknownTechnique, *ParamError), the paper's evaluation metrics, the
// BSS parameter design and the Theorem 1 Hurst-preservation checker.
//
// Above the single-engine API sits the serving layer: sampling/hub is a
// sharded, lock-striped hub multiplexing thousands of named streams
// (create, batched offer, non-destructive snapshot, finish, idle-TTL
// eviction, aggregate stats), cmd/sampled exposes it as an HTTP daemon
// (PUT/POST/GET/DELETE under /v1/streams plus Prometheus-style
// /metrics, with typed errors mapped to statuses and graceful
// shutdown), and cmd/sampleload is the matching load generator, driving
// N concurrent streams of fGn or ON/OFF traffic in-process (-direct) or
// over HTTP and reporting the achieved ticks/sec. Spec and Summary have
// JSON wire forms for exactly this use. For high-rate ingest,
// sampling/wire defines a length-prefixed, CRC-checked binary
// tick-batch framing (content type application/x-tickbatch) that the
// daemon decodes zero-copy through pooled buffers on the same /ticks
// endpoints, plus a persistent session mode (POST /v1/session) that
// streams many frames, routed by embedded stream id, over one
// connection; sampleload selects the encoding with -wire
// {json,text,binary,session}.
//
// Observability for that serving path lives in internal/obs: a
// stdlib-only metrics registry whose counters, gauges and histograms
// are single atomic operations (0 allocs/op) with a Prometheus
// text-exposition writer that renders all of /metrics — the hub's
// aggregate series, per-route request duration/size/status-class
// histograms, per-wire ingest decode histograms, build info and
// runtime health gauges; structured log/slog diagnostics behind
// -log-format/-log-level; a fixed-size flight-recorder ring of recent
// requests and errors on GET /debug/events; and opt-in pprof
// endpoints behind -pprof. sampleload reuses the histogram type for
// client-side per-request latency percentiles.
//
// Engines built with sampling.WithEstimator carry the online
// long-range-dependence subsystem (sampling/estimate): incremental
// Hurst estimators — streaming aggregated variance over a dyadic
// ladder, a pairwise-Haar Abry-Veitch cascade, a windowed R/S fallback
// — consuming ticks in O(log n) memory with zero allocations on the
// tick path, over both the input stream and the kept samples. Snapshot
// then reports a Summary.Hurst block (pre-sampling H, post-sampling H
// and their drift; undetermined values marshal as JSON null), the hub
// aggregates it across streams, and the daemon serves it per stream on
// GET /v1/streams/{id}/hurst.
//
// The implementation lives under internal/: the paper's contribution
// (the three classic sampling techniques, Biased Systematic Sampling,
// the SNC of Theorem 1, the average-variance theory of Theorem 2 and the
// full BSS parameter design) is in internal/core, where every technique
// is a streaming StreamSampler state machine behind a spec-string
// registry and the batch Sampler interface is a thin adapter over it;
// the substrates it stands on — FFT/wavelets (internal/dsp), statistics
// (internal/stats), heavy-tailed distributions (internal/dist),
// long-range dependence and Hurst estimation (internal/lrd), traffic
// models and packet-trace synthesis (internal/traffic), trace I/O
// (internal/trace) and a concurrent router-monitor pipeline with live
// snapshotting probes (internal/pipeline) — are each their own package.
// internal/experiments reproduces every figure of the paper's
// evaluation; cmd/figures regenerates them and bench_test.go benchmarks
// each one.
//
// The invariants the hot path depends on but the compiler cannot see —
// batch-only ingest, no body slurping on the serving wire, seeded
// randomness and injected clocks in the sampling core and in
// internal/obs, zero-allocation //samplelint:hotpath functions,
// null-for-NaN JSON wire structs — are
// machine-enforced by the samplelint analyzer suite (internal/lint, run
// via `go run ./cmd/samplelint ./...`), a hard gate in the CI lint job.
//
// See README.md for a tour (including the skip-based batch kernels
// behind OfferBatch and their before/after numbers) and
// ARCHITECTURE.md for the map: paper concepts to packages, the layer
// diagram, and the life of one binary tick batch from sampleload
// through the daemon to a /v1/groups comparison snapshot.
package repro
