// Command samplelint runs the repo's static-analysis suite: the
// type-resolved checks in internal/lint that enforce the hot-path and
// determinism invariants the compiler cannot see — batch-only ingest,
// no body slurping on the serving wire, seeded randomness and
// injected clocks in the sampling core, the zero-allocation hot-path
// annotation, and the null-for-NaN JSON wire form.
//
// Usage:
//
//	go run ./cmd/samplelint ./...
//	go run ./cmd/samplelint ./sampling/... ./cmd/sampled
//
// Each analyzer applies to the package scope configured in
// internal/lint (hotalloc is annotation-driven and runs everywhere);
// diagnostics print as path:line:col: message (analyzer) and any
// finding exits non-zero, which is how the CI lint job gates on it.
// Test files are exempt, exactly as they were under the retired
// hotpath_test.go: equivalence tests drive the per-tick path as the
// reference and benchmarks drain response bodies.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: samplelint [packages]\n\nRuns the samplelint analyzers (see internal/lint) over the given\npackage patterns (default ./...). Exits 1 on any diagnostic.")
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := run(patterns); err != nil {
		fmt.Fprintln(os.Stderr, "samplelint:", err)
		os.Exit(1)
	}
}

type finding struct {
	file     string
	line     int
	col      int
	message  string
	analyzer string
}

func run(patterns []string) error {
	ld, err := loader.New()
	if err != nil {
		return err
	}
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		return err
	}
	cwd, _ := os.Getwd()
	var findings []finding
	for _, p := range pkgs {
		for _, a := range lint.Analyzers() {
			if !lint.Applies(a, p.Path) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
				Report: func(d analysis.Diagnostic) {
					pos := p.Fset.Position(d.Pos)
					file := pos.Filename
					if rel, err := filepath.Rel(cwd, file); err == nil {
						file = rel
					}
					findings = append(findings, finding{
						file: file, line: pos.Line, col: pos.Column,
						message: d.Message, analyzer: a.Name,
					})
				},
			}
			if _, err := a.Run(pass); err != nil {
				return fmt.Errorf("%s on %s: %w", a.Name, p.Path, err)
			}
		}
	}
	if len(findings) == 0 {
		fmt.Printf("samplelint: %d packages clean\n", len(pkgs))
		return nil
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.col < b.col
	})
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", f.file, f.line, f.col, f.message, f.analyzer)
	}
	return fmt.Errorf("%d finding(s)", len(findings))
}
