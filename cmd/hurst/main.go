// Command hurst estimates the Hurst parameter of a rate series with all
// five estimators in internal/lrd (aggregated variance, R/S, periodogram,
// Abry-Veitch wavelet, DFA) and prints them side by side.
//
// Example:
//
//	tracegen -kind fgn -hurst 0.8 -out fgn.series
//	hurst fgn.series
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/lrd"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hurst:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hurst", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: hurst <series-file>")
	}
	file, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer file.Close()
	gran, f, err := trace.ReadSeries(file)
	if err != nil {
		return err
	}
	fmt.Printf("series: %d points at %g s/bin\n", len(f), gran)
	estimates := lrd.EstimateAll(f)
	if len(estimates) == 0 {
		return fmt.Errorf("no estimator succeeded (series too short?)")
	}
	names := make([]string, 0, len(estimates))
	for name := range estimates {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-12s  %8s  %8s  %8s\n", "method", "H", "beta", "fit R2")
	for _, name := range names {
		e := estimates[name]
		fmt.Printf("%-12s  %8.4f  %8.4f  %8.4f\n", name, e.H, e.Beta, e.Fit.R2)
	}
	return nil
}
