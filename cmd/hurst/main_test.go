package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dist"
	"repro/internal/lrd"
	"repro/internal/trace"
)

func writeSeries(t *testing.T) string {
	t.Helper()
	gen, err := lrd.NewFGN(0.8, 1<<13, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := gen.Generate(dist.NewRand(1))
	path := filepath.Join(t.TempDir(), "s.series")
	file, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	if err := trace.WriteSeries(file, 1, f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEstimates(t *testing.T) {
	if err := run([]string{writeSeries(t)}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("expected usage error")
	}
	if err := run([]string{"/nonexistent/file"}); err == nil {
		t.Error("expected open error")
	}
	// A non-series file fails header validation.
	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, []byte("not a series"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil {
		t.Error("expected format error")
	}
}
