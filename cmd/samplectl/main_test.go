package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dist"
	"repro/internal/trace"
	"repro/internal/traffic"
)

func writeSeries(t *testing.T) string {
	t.Helper()
	cfg := traffic.OnOffConfig{
		Sources: 8, AlphaOn: 1.4, AlphaOff: 1.4,
		MeanOn: 5, MeanOff: 20, Rate: 1, Ticks: 1 << 14,
	}
	f, err := traffic.GenerateOnOff(cfg, dist.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.series")
	file, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	if err := trace.WriteSeries(file, 1, f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEveryTechnique(t *testing.T) {
	path := writeSeries(t)
	for _, technique := range []string{"systematic", "stratified", "simple", "bernoulli", "bss"} {
		if err := run([]string{"-technique", technique, "-rate", "1e-2", path}); err != nil {
			t.Errorf("%s: %v", technique, err)
		}
	}
}

func TestRunAutoBSS(t *testing.T) {
	if err := run([]string{"-technique", "bss", "-rate", "1e-2", "-auto", "-alpha", "1.5", "-cs", "0.02", writeSeries(t)}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeSeries(t)
	if err := run(nil); err == nil {
		t.Error("expected usage error")
	}
	if err := run([]string{"-technique", "nope", path}); err == nil {
		t.Error("expected unknown-technique error")
	}
	if err := run([]string{"-rate", "2", path}); err == nil {
		t.Error("expected rate range error")
	}
	if err := run([]string{"/nonexistent"}); err == nil {
		t.Error("expected open error")
	}
}

func TestRunWithLiveSnapshots(t *testing.T) {
	path := writeSeries(t)
	if err := run([]string{"-spec", "bss:rate=1e-2,L=5,eps=1.1", "-snapshots", "1000", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-technique", "simple", "-rate", "1e-2", "-snapshots", "4096", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpec(t *testing.T) {
	path := writeSeries(t)
	if err := run([]string{"-spec", "bss:rate=1e-2,L=5,eps=1.1", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", "bss:rate=1e-2,bogus=1", path}); err == nil {
		t.Error("expected unknown-parameter error")
	}
	if err := run([]string{"-spec", "stratified:interval=50,seed=4", path}); err != nil {
		t.Fatal(err)
	}
}
