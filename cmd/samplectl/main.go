// Command samplectl runs a sampling technique over a stored rate series
// and reports the estimated mean, the bias eta against the true series
// mean, the overhead and the efficiency — the paper's evaluation metrics
// for a single run.
//
// The sampler is built through the core registry: either from the
// -technique/-rate/... flags (which are assembled into a spec string) or
// directly from a -spec string, the same syntax the pipeline probes use.
//
// Examples:
//
//	samplectl -technique systematic -rate 1e-3 series.bin
//	samplectl -technique bss -rate 1e-3 -L 10 -eps 1.0 series.bin
//	samplectl -technique bss -rate 1e-3 -auto -alpha 1.5 -cs 0.02 series.bin
//	samplectl -spec "bss:rate=1e-3,L=10,eps=1.0" series.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "samplectl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("samplectl", flag.ContinueOnError)
	var (
		technique = fs.String("technique", "systematic", "one of: "+strings.Join(core.Names(), " | "))
		spec      = fs.String("spec", "", `full sampler spec, e.g. "bss:rate=1e-3,L=10,eps=1.0" (overrides the other sampler flags)`)
		rate      = fs.Float64("rate", 1e-3, "sampling rate (base samples per tick)")
		seed      = fs.Uint64("seed", 1, "random seed for the randomized techniques")
		offset    = fs.Int("offset", 0, "systematic/BSS starting offset")
		l         = fs.Int("L", 10, "BSS extra samples per triggered interval")
		eps       = fs.Float64("eps", 1.0, "BSS threshold multiplier")
		auto      = fs.Bool("auto", false, "BSS: derive L from the rate via Eq. (35)/(23)")
		alpha     = fs.Float64("alpha", 1.5, "traffic tail index for -auto")
		cs        = fs.Float64("cs", 0.02, "Cs constant of the eta(r) law for -auto")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: samplectl [flags] <series-file>")
	}
	file, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer file.Close()
	_, f, err := trace.ReadSeries(file)
	if err != nil {
		return err
	}
	if *rate <= 0 || *rate > 1 {
		return fmt.Errorf("rate %g outside (0,1]", *rate)
	}
	interval, err := core.IntervalForRate(*rate)
	if err != nil {
		return err
	}
	realMean := stats.Mean(f)

	samplerSpec := *spec
	if samplerSpec == "" {
		switch *technique {
		case "systematic":
			samplerSpec = fmt.Sprintf("systematic:interval=%d,offset=%d", interval, *offset%interval)
		case "stratified":
			samplerSpec = fmt.Sprintf("stratified:interval=%d,seed=%d", interval, *seed)
		case "simple", "simple-random":
			samplerSpec = fmt.Sprintf("%s:rate=%g,seed=%d", *technique, *rate, *seed)
		case "bernoulli":
			samplerSpec = fmt.Sprintf("bernoulli:rate=%g,seed=%d", *rate, *seed)
		case "bss":
			bssL := *l
			if *auto {
				design, derr := core.NewBSSDesign(*alpha)
				if derr != nil {
					return derr
				}
				autoL, eta, derr := design.DesignForRate(*rate, *eps, *cs, 100)
				if derr != nil {
					return derr
				}
				bssL = autoL
				fmt.Printf("auto design: eta(r)=%.3f -> L=%d (eps=%.2f)\n", eta, autoL, *eps)
			}
			samplerSpec = fmt.Sprintf("bss:interval=%d,offset=%d,L=%d,eps=%g", interval, *offset%interval, bssL, *eps)
		default:
			// The flags above only map onto the built-in techniques; a
			// registered extension needs its parameters spelled out rather
			// than silently dropped.
			return fmt.Errorf("unknown technique %q: use -spec for registered samplers (%s)",
				*technique, strings.Join(core.Names(), ", "))
		}
	}
	sampler, err := core.Lookup(samplerSpec)
	if err != nil {
		return err
	}
	samples, err := sampler.Sample(f)
	if err != nil {
		return err
	}
	sampledMean := core.MeanOf(samples)
	eta := core.Eta(sampledMean, realMean)
	base, qualified := core.CountKinds(samples)
	fmt.Printf("technique:     %s\n", sampler.Name())
	fmt.Printf("spec:          %s\n", samplerSpec)
	fmt.Printf("series:        %d ticks, real mean %.6g\n", len(f), realMean)
	fmt.Printf("samples:       %d (base %d, qualified %d)\n", len(samples), base, qualified)
	fmt.Printf("sampled mean:  %.6g\n", sampledMean)
	fmt.Printf("eta:           %.4f\n", eta)
	if qualified > 0 {
		fmt.Printf("overhead:      %.4f\n", core.Overhead(samples))
	}
	fmt.Printf("efficiency:    %.4f\n", core.Efficiency(eta, len(samples)))
	return nil
}
