// Command samplectl runs a sampling technique over a stored rate series
// and reports the estimated mean, the bias eta against the true series
// mean, the overhead and the efficiency — the paper's evaluation metrics
// for a single run.
//
// The sampler is built through the public sampling API: either from the
// -technique/-rate/... flags (which are assembled into a spec string) or
// directly from a -spec string, the same syntax the pipeline probes use.
// With -snapshots N, a live summary (kept/seen, running mean, 95% CI) is
// printed to stderr every N ticks while the run is in flight —
// the engine's non-destructive Snapshot in action.
//
// Examples:
//
//	samplectl -technique systematic -rate 1e-3 series.bin
//	samplectl -technique bss -rate 1e-3 -L 10 -eps 1.0 series.bin
//	samplectl -technique bss -rate 1e-3 -auto -alpha 1.5 -cs 0.02 series.bin
//	samplectl -spec "bss:rate=1e-3,L=10,eps=1.0" series.bin
//	samplectl -spec "bss:rate=1e-3,L=10,eps=1.0" -snapshots 100000 series.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/stats"
	"repro/internal/trace"
	"repro/sampling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "samplectl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("samplectl", flag.ContinueOnError)
	var (
		technique = fs.String("technique", "systematic", "one of: "+strings.Join(sampling.Techniques(), " | "))
		spec      = fs.String("spec", "", `full sampler spec, e.g. "bss:rate=1e-3,L=10,eps=1.0" (overrides the other sampler flags)`)
		rate      = fs.Float64("rate", 1e-3, "sampling rate (base samples per tick)")
		seed      = fs.Uint64("seed", 1, "random seed for the randomized techniques")
		offset    = fs.Int("offset", 0, "systematic/BSS starting offset")
		l         = fs.Int("L", 10, "BSS extra samples per triggered interval")
		eps       = fs.Float64("eps", 1.0, "BSS threshold multiplier")
		auto      = fs.Bool("auto", false, "BSS: derive L from the rate via Eq. (35)/(23)")
		alpha     = fs.Float64("alpha", 1.5, "traffic tail index for -auto")
		cs        = fs.Float64("cs", 0.02, "Cs constant of the eta(r) law for -auto")
		watch     = fs.Int("snapshots", 0, "print a live engine snapshot to stderr every N ticks (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: samplectl [flags] <series-file>")
	}
	file, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer file.Close()
	_, f, err := trace.ReadSeries(file)
	if err != nil {
		return err
	}
	if *rate <= 0 || *rate > 1 {
		return fmt.Errorf("rate %g outside (0,1]", *rate)
	}
	interval, err := sampling.IntervalForRate(*rate)
	if err != nil {
		return err
	}
	realMean := stats.Mean(f)

	samplerSpec := *spec
	if samplerSpec == "" {
		switch *technique {
		case "systematic":
			samplerSpec = fmt.Sprintf("systematic:interval=%d,offset=%d", interval, *offset%interval)
		case "stratified":
			samplerSpec = fmt.Sprintf("stratified:interval=%d,seed=%d", interval, *seed)
		case "simple", "simple-random":
			samplerSpec = fmt.Sprintf("%s:rate=%g,seed=%d", *technique, *rate, *seed)
		case "bernoulli":
			samplerSpec = fmt.Sprintf("bernoulli:rate=%g,seed=%d", *rate, *seed)
		case "bss":
			bssL := *l
			if *auto {
				design, derr := sampling.NewBSSDesign(*alpha)
				if derr != nil {
					return derr
				}
				autoL, eta, derr := design.DesignForRate(*rate, *eps, *cs, 100)
				if derr != nil {
					return derr
				}
				bssL = autoL
				fmt.Printf("auto design: eta(r)=%.3f -> L=%d (eps=%.2f)\n", eta, autoL, *eps)
			}
			samplerSpec = fmt.Sprintf("bss:interval=%d,offset=%d,L=%d,eps=%g", interval, *offset%interval, bssL, *eps)
		default:
			// The flags above only map onto the built-in techniques; a
			// registered extension needs its parameters spelled out rather
			// than silently dropped.
			return fmt.Errorf("unknown technique %q: use -spec for registered samplers (%s)",
				*technique, strings.Join(sampling.Techniques(), ", "))
		}
	}
	parsed, err := sampling.Parse(samplerSpec)
	if err != nil {
		return err
	}
	eng, err := sampling.New(parsed)
	if err != nil {
		return err
	}
	samples, err := sampleWatched(eng, f, *watch)
	if err != nil {
		return err
	}
	sampledMean := sampling.MeanOf(samples)
	eta := sampling.Eta(sampledMean, realMean)
	base, qualified := sampling.CountKinds(samples)
	fmt.Printf("technique:     %s\n", eng.Technique())
	fmt.Printf("spec:          %s\n", samplerSpec)
	fmt.Printf("series:        %d ticks, real mean %.6g\n", len(f), realMean)
	fmt.Printf("samples:       %d (base %d, qualified %d)\n", len(samples), base, qualified)
	fmt.Printf("sampled mean:  %.6g\n", sampledMean)
	fmt.Printf("eta:           %.4f\n", eta)
	if qualified > 0 {
		fmt.Printf("overhead:      %.4f\n", sampling.Overhead(samples))
	}
	fmt.Printf("efficiency:    %.4f\n", sampling.Efficiency(eta, len(samples)))
	return nil
}

// sampleWatched runs the engine over the whole series. With every <= 0
// it is the plain batch run; otherwise it offers ticks one by one and
// prints a live snapshot to stderr every N ticks, demonstrating
// mid-stream observation without disturbing the result.
func sampleWatched(eng *sampling.Engine, f []float64, every int) ([]sampling.Sample, error) {
	if every <= 0 {
		return eng.Sample(f)
	}
	samples := make([]sampling.Sample, 0, 64)
	for i, v := range f {
		if s, ok := eng.Offer(v); ok {
			samples = append(samples, s)
		}
		if (i+1)%every == 0 {
			sum := eng.Snapshot()
			fmt.Fprintf(os.Stderr, "samplectl: tick %d: kept %d/%d, mean %.6g, 95%% CI [%.6g, %.6g]\n",
				i+1, sum.Kept, sum.Seen, sum.Mean, sum.CILow, sum.CIHigh)
		}
	}
	tail, err := eng.Finish()
	if err != nil {
		return nil, err
	}
	return append(samples, tail...), nil
}
