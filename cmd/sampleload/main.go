// Command sampleload drives a sampling service with self-similar
// traffic and reports the achieved ingest rate — the measuring stick
// for the hot path. It creates N concurrent streams, feeds each a
// long-range-dependent series (exact fGn or a heavy-tailed ON/OFF
// superposition) in batches, and prints the aggregate ticks/sec.
//
// Two targets:
//
//	sampleload -direct                      # in-process against a sampling/hub.Hub
//	sampleload -addr localhost:8080         # over HTTP against a running sampled daemon
//
// The traffic is generated once (a base series shared by all streams,
// phase-rotated per stream so streams do not tick in lockstep) and the
// ingest phase alone is timed, so the report measures the service, not
// the generator. Every offer also lands in a client-side latency
// histogram, and the report includes per-request p50/p95/p99 for the
// wire driven; -log-format/-log-level control structured diagnostics.
//
// With an online estimator attached (-estimator, default aggvar) every
// stream also tracks the Hurst parameter of the traffic it ingests and
// of the samples its technique keeps, and the run reports the aggregate
// pre- vs post-sampling H and their drift — the paper's preservation
// analysis as a live measurement. -estimator off disables it (and the
// per-tick estimation cost) for pure throughput runs.
//
// With -compare, every stream becomes a comparison group: the
// ';'-separated specs all consume the same traffic side by side and the
// run reports a per-technique fidelity table (kept ratio, mean and
// variance bias against the unsampled input, Hurst drift) instead of a
// single-technique drift block — the paper's cross-technique comparison
// as a load test.
//
// Examples:
//
//	sampleload -direct -streams 256 -ticks 100000 -spec "bss:interval=100,L=5"
//	sampleload -addr localhost:8080 -streams 32 -ticks 20000 -traffic onoff
//	sampleload -direct -streams 64 -spec "systematic:interval=100" -estimator wavelet
//	sampleload -direct -streams 8 -compare "systematic:interval=100;bss:interval=100,L=5,eps=1.0"
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/lrd"
	"repro/internal/obs"
	"repro/internal/traffic"
	"repro/sampling"
	"repro/sampling/estimate"
	"repro/sampling/hub"
	"repro/sampling/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sampleload:", err)
		os.Exit(1)
	}
}

// loadConfig parameterizes one load run.
type loadConfig struct {
	direct    bool
	addr      string
	streams   int
	ticks     int // per stream
	batch     int
	workers   int
	spec      string
	compare   string // ";"-separated specs; non-empty switches to comparison groups
	wire      string // HTTP ingest encoding: json, text, binary or session ("" = json)
	traffic   string // "fgn" or "onoff"
	hurst     float64
	seed      uint64
	estimator string // online Hurst estimator method; "" or "off" disables

	// logger carries the run's structured diagnostics (milestones at
	// debug, failures at warn). nil silences them.
	logger *slog.Logger
}

// log returns the config's logger, substituting a discard logger so
// call sites never nil-check.
func (c loadConfig) log() *slog.Logger {
	if c.logger == nil {
		return slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c.logger
}

// wireName resolves the config's wire selection, defaulting to json so
// zero-value configs (and -direct runs, where the wire is moot) behave
// as before.
func (c loadConfig) wireName() string {
	if c.wire == "" {
		return "json"
	}
	return c.wire
}

// wireLabel names the transport for the latency report: the HTTP wire,
// or "direct" for in-process runs where no wire is involved.
func (c loadConfig) wireLabel() string {
	if c.direct {
		return "direct"
	}
	return c.wireName()
}

// checkWire rejects wire selections that cannot work before any stream
// exists.
func (c loadConfig) checkWire() error {
	switch c.wireName() {
	case "json", "text", "binary", "session":
	default:
		return fmt.Errorf("unknown wire %q (json, text, binary or session)", c.wire)
	}
	if c.direct && c.wire != "" && c.wire != "json" {
		return fmt.Errorf("-wire %s selects an HTTP encoding; it has no meaning with -direct", c.wire)
	}
	if c.compare != "" && c.wireName() == "session" {
		return fmt.Errorf("-wire session routes frames by stream id; comparison groups are not addressable in a session (use json, text or binary)")
	}
	return nil
}

// estimatorMethod resolves the config's estimator selection: the method
// to attach, or "" when estimation is off.
func (c loadConfig) estimatorMethod() estimate.Method {
	if c.estimator == "" || c.estimator == "off" {
		return ""
	}
	return estimate.Method(c.estimator)
}

// driftReport aggregates the per-stream Hurst blocks of one run: the
// mean pre-sampling (input) H, the mean post-sampling (kept) H, and the
// mean drift between them, each over the streams where the estimate
// resolved.
type driftReport struct {
	method                estimate.Method
	inputN, keptN, driftN int
	inputH, keptH, driftH float64
}

// loadResult is what a run achieved.
type loadResult struct {
	ticks   int64
	kept    int64
	elapsed time.Duration
	drift   *driftReport   // nil when the run had no estimator
	lat     *obs.Histogram // client-side per-request (per-offer) latency
}

// latencyBuckets spans 1µs..64s exponentially — wide enough for both
// in-process offers and HTTP round trips.
func latencyBuckets() []float64 { return obs.ExpBuckets(1e-6, 2, 26) }

// timedOffer wraps a driver's offer with the client-side latency
// histogram: one observation per request (or per in-process batch).
func timedOffer(lat *obs.Histogram, offer func(string, []float64) (int, error)) func(string, []float64) (int, error) {
	return func(id string, batch []float64) (int, error) {
		start := time.Now()
		kept, err := offer(id, batch)
		lat.Observe(time.Since(start).Seconds())
		return kept, err
	}
}

// latencyLine renders the p50/p95/p99 report for one run's histogram,
// or "" when nothing was observed.
func latencyLine(lat *obs.Histogram, wire string) string {
	if lat == nil || lat.Count() == 0 {
		return ""
	}
	q := func(p float64) time.Duration {
		return time.Duration(lat.Quantile(p) * float64(time.Second)).Round(time.Microsecond)
	}
	return fmt.Sprintf("latency:  p50 %v  p95 %v  p99 %v per request (%s wire, %d requests)",
		q(0.50), q(0.95), q(0.99), wire, lat.Count())
}

func (r loadResult) ticksPerSec() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.ticks) / r.elapsed.Seconds()
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sampleload", flag.ContinueOnError)
	cfg := loadConfig{}
	fs.BoolVar(&cfg.direct, "direct", false, "drive an in-process hub instead of a daemon")
	fs.StringVar(&cfg.addr, "addr", "localhost:8080", "sampled daemon address (ignored with -direct)")
	fs.IntVar(&cfg.streams, "streams", 64, "concurrent streams")
	fs.IntVar(&cfg.ticks, "ticks", 100000, "ticks per stream")
	fs.IntVar(&cfg.batch, "batch", 512, "ticks per ingest batch")
	fs.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "ingest goroutines")
	fs.StringVar(&cfg.spec, "spec", "systematic:interval=100", "sampler spec for every stream")
	fs.StringVar(&cfg.compare, "compare", "",
		`";"-separated sampler specs: drive comparison groups instead of single-technique streams and report a per-technique fidelity table (e.g. "systematic:interval=100;bss:interval=100,L=5,eps=1.0")`)
	fs.StringVar(&cfg.wire, "wire", "json",
		"HTTP ingest encoding: json, text, binary (one tick-batch frame per POST) or session (one long-lived frame stream per sampling stream)")
	fs.StringVar(&cfg.traffic, "traffic", "fgn", "traffic model: fgn or onoff")
	fs.Float64Var(&cfg.hurst, "hurst", 0.8, "Hurst parameter of the generated traffic")
	fs.Uint64Var(&cfg.seed, "seed", 1, "traffic generator seed")
	fs.StringVar(&cfg.estimator, "estimator", "aggvar",
		"per-stream online Hurst estimator (aggvar, wavelet, rs) or off")
	logFormat := fs.String("log-format", "text", "diagnostic log format: text or json")
	logLevel := fs.String("log-level", "warn", "minimum diagnostic log level: debug, info, warn or error (run milestones are debug)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	cfg.logger = logger
	if err := cfg.checkWire(); err != nil {
		return err
	}
	if cfg.compare != "" {
		return runCompare(cfg, out)
	}
	res, err := runLoad(cfg, out)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ingest:   %d ticks in %v -> %.3g ticks/s aggregate\n",
		res.ticks, res.elapsed.Round(time.Millisecond), res.ticksPerSec())
	fmt.Fprintf(out, "kept:     %d samples (%.3g%% of ticks)\n",
		res.kept, 100*float64(res.kept)/float64(res.ticks))
	if line := latencyLine(res.lat, cfg.wireLabel()); line != "" {
		fmt.Fprintln(out, line)
	}
	if dr := res.drift; dr != nil {
		fmt.Fprintf(out, "hurst:    %s estimator, generated H %.2f\n", dr.method, cfg.hurst)
		if dr.inputN > 0 {
			fmt.Fprintf(out, "          input  H %.3f (%d/%d streams resolved)\n", dr.inputH, dr.inputN, cfg.streams)
		} else {
			fmt.Fprintf(out, "          input  H unresolved (stream too short to regress; raise -ticks)\n")
		}
		if dr.keptN > 0 {
			fmt.Fprintf(out, "          kept   H %.3f (%d/%d streams resolved)\n", dr.keptH, dr.keptN, cfg.streams)
			fmt.Fprintf(out, "          drift  %+.3f (post minus pre, %d streams)\n", dr.driftH, dr.driftN)
		} else {
			fmt.Fprintf(out, "          kept   H unresolved (too few kept samples; raise -ticks or the sampling rate)\n")
		}
	}
	return nil
}

// driver abstracts the two targets: the in-process hub and the HTTP
// daemon. Per-stream call order matters (ticks must stay sequential);
// different streams are driven fully in parallel. The group methods
// mirror the stream ones for -compare mode. drain flushes transport
// state after the ingest phase — the session wire closes its
// long-lived connections there and folds their kept totals in; every
// other target is a no-op.
type driver interface {
	create(id string, spec sampling.Spec, estimator estimate.Method) error
	offer(id string, batch []float64) (kept int, err error)
	hurst(id string) (*sampling.HurstSummary, error)
	finish(id string) error
	drain() (kept int64, err error)

	createGroup(id string, specs []sampling.Spec, estimator estimate.Method) error
	offerGroup(id string, batch []float64) (kept int, err error)
	comparison(id string) (sampling.Comparison, error)
	finishGroup(id string) error
}

type directDriver struct{ hub *hub.Hub }

func (d directDriver) create(id string, spec sampling.Spec, estimator estimate.Method) error {
	if estimator != "" {
		return d.hub.Create(id, spec, sampling.WithEstimator(estimator))
	}
	return d.hub.Create(id, spec)
}
func (d directDriver) offer(id string, batch []float64) (int, error) {
	return d.hub.OfferBatch(id, batch)
}
func (d directDriver) hurst(id string) (*sampling.HurstSummary, error) {
	sum, err := d.hub.Snapshot(id)
	if err != nil {
		return nil, err
	}
	return sum.Hurst, nil
}
func (d directDriver) drain() (int64, error) { return 0, nil }
func (d directDriver) finish(id string) error {
	// A deferred engine error (e.g. a fixed-size draw over a shorter
	// stream) is a property of the workload, not a harness failure —
	// the daemon's DELETE tolerates it the same way. Only a missing
	// stream means the run itself went wrong.
	_, _, err := d.hub.Finish(id)
	if errors.Is(err, hub.ErrStreamNotFound) {
		return err
	}
	return nil
}

func (d directDriver) createGroup(id string, specs []sampling.Spec, estimator estimate.Method) error {
	if estimator != "" {
		return d.hub.CreateGroup(id, specs, sampling.WithEstimator(estimator))
	}
	return d.hub.CreateGroup(id, specs)
}
func (d directDriver) offerGroup(id string, batch []float64) (int, error) {
	return d.hub.OfferGroupBatch(id, batch)
}
func (d directDriver) comparison(id string) (sampling.Comparison, error) {
	return d.hub.GroupSnapshot(id)
}
func (d directDriver) finishGroup(id string) error {
	_, _, err := d.hub.FinishGroup(id)
	if errors.Is(err, hub.ErrStreamNotFound) {
		return err
	}
	return nil
}

type httpDriver struct {
	base   string
	client *http.Client
	wire   string

	// Ingest encoders reuse buffers: bufs pools the per-batch encode
	// buffers of the text and binary wires, sessions holds one
	// long-lived frame stream per sampling stream for the session wire
	// (opened lazily on first offer, closed and harvested by drain).
	// sessClient has no timeout — a session lives as long as its
	// stream's ingest does.
	bufs       sync.Pool
	sessMu     sync.Mutex
	sessions   map[string]*wireSession
	sessClient *http.Client
}

// wireSession is one live session-mode connection: frames go into the
// pipe (the in-flight POST body), and the response — total kept, or
// the daemon's error — arrives on done once the writer side closes.
type wireSession struct {
	pw   *io.PipeWriter
	enc  *wire.Encoder
	done chan sessionResult
}

type sessionResult struct {
	kept int64
	err  error
}

func (d *httpDriver) do(method, url string, ctype string, body []byte) ([]byte, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", ctype)
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("%s %s: %s: %s", method, url, resp.Status, strings.TrimSpace(string(data)))
	}
	return data, nil
}

func (d *httpDriver) doJSON(method, url string, body []byte) ([]byte, error) {
	return d.do(method, url, "application/json", body)
}

// encodeBatch renders one tick batch under the configured wire into
// buf — reused across calls, so steady-state ingest encodes without
// allocating — and returns the bytes plus the content type to send
// them under. Per-POST binary frames leave the id empty: the URL
// already routes them, and the server accepts an empty embedded id.
func (d *httpDriver) encodeBatch(buf []byte, batch []float64) ([]byte, string, error) {
	switch d.wire {
	case "text":
		for i, v := range batch {
			if i > 0 {
				buf = append(buf, ' ')
			}
			buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		}
		return buf, "text/plain", nil
	case "binary":
		buf, err := wire.AppendFrame(buf, "", batch)
		return buf, wire.ContentType, err
	default: // json
		buf = append(buf, '[')
		for i, v := range batch {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		}
		buf = append(buf, ']')
		return buf, "application/json", nil
	}
}

// postBatch sends one encoded batch to url and returns the response
// body. The encode buffer comes from (and returns to) the pool; it is
// free for reuse once do returns because the request body has been
// fully written by then.
func (d *httpDriver) postBatch(url string, batch []float64) ([]byte, error) {
	bp := d.bufs.Get().(*[]byte)
	defer d.bufs.Put(bp)
	buf, ctype, err := d.encodeBatch((*bp)[:0], batch)
	if err != nil {
		return nil, err
	}
	*bp = buf
	return d.do(http.MethodPost, url, ctype, buf)
}

func parseKept(data []byte) (int, error) {
	var resp struct {
		Kept int `json:"kept"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		return 0, err
	}
	return resp.Kept, nil
}

func (d *httpDriver) create(id string, spec sampling.Spec, estimator estimate.Method) error {
	req := map[string]any{"spec": spec}
	if estimator != "" {
		req["estimator"] = string(estimator)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	_, err = d.doJSON(http.MethodPut, d.base+"/v1/streams/"+id, body)
	return err
}

func (d *httpDriver) hurst(id string) (*sampling.HurstSummary, error) {
	data, err := d.doJSON(http.MethodGet, d.base+"/v1/streams/"+id+"/hurst", nil)
	if err != nil {
		return nil, err
	}
	var hs sampling.HurstSummary
	if err := json.Unmarshal(data, &hs); err != nil {
		return nil, err
	}
	return &hs, nil
}

func (d *httpDriver) offer(id string, batch []float64) (int, error) {
	if d.wire == "session" {
		return d.offerSession(id, batch)
	}
	data, err := d.postBatch(d.base+"/v1/streams/"+id+"/ticks", batch)
	if err != nil {
		return 0, err
	}
	return parseKept(data)
}

// offerSession writes one frame into the stream's long-lived session
// connection. Kept counts are only known when the session closes, so
// every offer reports 0 and drain folds the daemon's total in.
func (d *httpDriver) offerSession(id string, batch []float64) (int, error) {
	s, err := d.session(id)
	if err != nil {
		return 0, err
	}
	if err := s.enc.Encode(id, batch); err != nil {
		// A broken pipe here usually means the daemon already answered
		// (an error response closes the body mid-stream) — surface its
		// verdict rather than the bare pipe error when it has arrived.
		select {
		case res := <-s.done:
			if res.err != nil {
				return 0, res.err
			}
		default:
		}
		return 0, err
	}
	return 0, nil
}

// session returns the live session for id, opening it on first use: a
// POST /v1/session whose body is the write end of a pipe, with a
// goroutine waiting on the daemon's end-of-stream response. hammer
// guarantees a single writer per id, so the encoder needs no lock;
// the map does.
func (d *httpDriver) session(id string) (*wireSession, error) {
	d.sessMu.Lock()
	defer d.sessMu.Unlock()
	if s, ok := d.sessions[id]; ok {
		return s, nil
	}
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, d.base+"/v1/session", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", wire.ContentType)
	s := &wireSession{pw: pw, enc: wire.NewEncoder(pw), done: make(chan sessionResult, 1)}
	go func() {
		resp, err := d.sessClient.Do(req)
		if err != nil {
			pr.CloseWithError(err) // unblock any in-flight Encode
			s.done <- sessionResult{err: err}
			return
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			s.done <- sessionResult{err: err}
			return
		}
		if resp.StatusCode/100 != 2 {
			s.done <- sessionResult{err: fmt.Errorf("POST %s/v1/session: %s: %s",
				d.base, resp.Status, strings.TrimSpace(string(data)))}
			return
		}
		var body struct {
			Kept int64 `json:"kept"`
		}
		if err := json.Unmarshal(data, &body); err != nil {
			s.done <- sessionResult{err: err}
			return
		}
		s.done <- sessionResult{kept: body.Kept}
	}()
	d.sessions[id] = s
	return s, nil
}

// drain closes every live session and folds the daemon's totals in. A
// no-op for every other wire (and for runs that never offered).
func (d *httpDriver) drain() (int64, error) {
	d.sessMu.Lock()
	sessions := d.sessions
	d.sessions = map[string]*wireSession{}
	d.sessMu.Unlock()
	var kept int64
	var errs []error
	for id, s := range sessions {
		s.pw.Close()
		res := <-s.done
		if res.err != nil {
			errs = append(errs, fmt.Errorf("session %s: %w", id, res.err))
			continue
		}
		kept += res.kept
	}
	return kept, errors.Join(errs...)
}

func (d *httpDriver) finish(id string) error {
	_, err := d.doJSON(http.MethodDelete, d.base+"/v1/streams/"+id, nil)
	return err
}

func (d *httpDriver) createGroup(id string, specs []sampling.Spec, estimator estimate.Method) error {
	req := map[string]any{"specs": specs}
	if estimator != "" {
		req["estimator"] = string(estimator)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	_, err = d.doJSON(http.MethodPut, d.base+"/v1/groups/"+id, body)
	return err
}

func (d *httpDriver) offerGroup(id string, batch []float64) (int, error) {
	data, err := d.postBatch(d.base+"/v1/groups/"+id+"/ticks", batch)
	if err != nil {
		return 0, err
	}
	return parseKept(data)
}

func (d *httpDriver) comparison(id string) (sampling.Comparison, error) {
	data, err := d.doJSON(http.MethodGet, d.base+"/v1/groups/"+id, nil)
	if err != nil {
		return sampling.Comparison{}, err
	}
	var cmp sampling.Comparison
	if err := json.Unmarshal(data, &cmp); err != nil {
		return sampling.Comparison{}, err
	}
	return cmp, nil
}

func (d *httpDriver) finishGroup(id string) error {
	_, err := d.doJSON(http.MethodDelete, d.base+"/v1/groups/"+id, nil)
	return err
}

// baseSeries generates the shared traffic series. Length is capped at
// 2^18 ticks; longer streams replay it cyclically — the load generator
// measures ingest, and 262k ticks of exact fGn is plenty of burstiness
// per revolution.
func baseSeries(cfg loadConfig) ([]float64, error) {
	n := cfg.ticks
	if n > 1<<18 {
		n = 1 << 18
	}
	if n < 16 {
		n = 16
	}
	rng := dist.NewRand(cfg.seed)
	switch cfg.traffic {
	case "fgn":
		gen, err := lrd.NewFGN(cfg.hurst, n, 10, 2)
		if err != nil {
			return nil, err
		}
		return gen.Generate(rng), nil
	case "onoff":
		alpha := lrd.AlphaFromH(cfg.hurst)
		return traffic.GenerateOnOff(traffic.OnOffConfig{
			Sources:  32,
			AlphaOn:  alpha,
			AlphaOff: alpha,
			MeanOn:   10,
			MeanOff:  20,
			Rate:     1,
			Ticks:    n,
		}, rng)
	default:
		return nil, fmt.Errorf("unknown traffic model %q (fgn or onoff)", cfg.traffic)
	}
}

// specAcceptsSeed probes whether the spec's technique takes a seed
// parameter, by building a throwaway engine with one: randomized
// techniques accept it, deterministic ones reject it with a
// *sampling.ParamError.
func specAcceptsSeed(spec sampling.Spec) bool {
	_, err := sampling.New(spec.With("seed", "1"))
	var pe *sampling.ParamError
	return !(errors.As(err, &pe) && strings.Contains(pe.Param, "seed"))
}

// runLoad creates the streams, hammers the target from cfg.workers
// goroutines, finishes every stream and returns what the ingest phase
// (creation and teardown excluded) achieved.
func runLoad(cfg loadConfig, out io.Writer) (loadResult, error) {
	if cfg.streams < 1 || cfg.ticks < 1 || cfg.batch < 1 || cfg.workers < 1 {
		return loadResult{}, fmt.Errorf("streams, ticks, batch and workers must all be >= 1")
	}
	spec, err := sampling.Parse(cfg.spec)
	if err != nil {
		return loadResult{}, err
	}
	method := cfg.estimatorMethod()
	if method != "" {
		// Fail on a typo'd method before any stream exists.
		if _, err := estimate.New(method); err != nil {
			return loadResult{}, err
		}
	}
	base, err := baseSeries(cfg)
	if err != nil {
		return loadResult{}, err
	}

	d, mode := newDriver(cfg)
	fmt.Fprintf(out, "target:   %s, %d streams x %d ticks, batch %d, %d workers, spec %s\n",
		mode, cfg.streams, cfg.ticks, cfg.batch, cfg.workers, spec)
	fmt.Fprintf(out, "traffic:  %s (H=%.2f), base series %d ticks\n", cfg.traffic, cfg.hurst, len(base))

	seedable := specAcceptsSeed(spec)
	ids := make([]string, cfg.streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("load-%05d", i)
		// Randomized techniques get a distinct seed per stream — without
		// one, N copies of the default seed would keep/drop in lockstep
		// and the load would be degenerate. Seedless techniques (which
		// reject the parameter) keep the spec as-is.
		s := spec
		if seedable {
			s = spec.With("seed", fmt.Sprint(cfg.seed+uint64(i)))
		}
		if err := d.create(ids[i], s, method); err != nil {
			return loadResult{}, fmt.Errorf("creating %s: %w", ids[i], err)
		}
	}
	cfg.log().Debug("streams created", "count", len(ids), "wire", cfg.wireLabel())

	lat := obs.NewBareHistogram(latencyBuckets())
	ticks, kept, elapsed, err := hammer(cfg, ids, base, timedOffer(lat, d.offer))
	if err != nil {
		return loadResult{}, err
	}
	// The session wire only reports kept totals when its connections
	// close; drain inside the timed window so ticks/s pays the full
	// transport cost, end of stream included.
	dstart := time.Now()
	dkept, err := d.drain()
	if err != nil {
		return loadResult{}, err
	}
	kept += dkept
	elapsed += time.Since(dstart)
	cfg.log().Debug("ingest done", "ticks", ticks, "kept", kept, "elapsed", elapsed)
	// Read the Hurst blocks before teardown: Finish removes the streams.
	var dr *driftReport
	if method != "" {
		dr = &driftReport{method: method}
		for _, id := range ids {
			hs, err := d.hurst(id)
			if err != nil {
				return loadResult{}, fmt.Errorf("hurst %s: %w", id, err)
			}
			if hs == nil {
				continue
			}
			if hs.Input.OK {
				dr.inputN++
				dr.inputH += hs.Input.H
			}
			if hs.Kept.OK {
				dr.keptN++
				dr.keptH += hs.Kept.H
			}
			if !math.IsNaN(hs.Drift) {
				dr.driftN++
				dr.driftH += hs.Drift
			}
		}
		if dr.inputN > 0 {
			dr.inputH /= float64(dr.inputN)
		}
		if dr.keptN > 0 {
			dr.keptH /= float64(dr.keptN)
		}
		if dr.driftN > 0 {
			dr.driftH /= float64(dr.driftN)
		}
	}
	for _, id := range ids {
		if err := d.finish(id); err != nil {
			return loadResult{}, fmt.Errorf("finishing %s: %w", id, err)
		}
	}
	return loadResult{ticks: ticks, kept: kept, elapsed: elapsed, drift: dr, lat: lat}, nil
}

// newDriver builds the run's target from the config: the in-process
// hub, or an HTTP client against a running daemon.
func newDriver(cfg loadConfig) (driver, string) {
	if cfg.direct {
		return directDriver{hub: hub.New()}, "direct"
	}
	addr := cfg.addr
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	d := &httpDriver{
		base:     addr,
		client:   &http.Client{Timeout: 30 * time.Second},
		wire:     cfg.wireName(),
		sessions: map[string]*wireSession{},
		// Sessions outlive any per-request deadline by design: one
		// connection carries a whole run's frames.
		sessClient: &http.Client{},
	}
	d.bufs.New = func() any { return new([]byte) }
	return d, addr + " (" + d.wire + " wire)"
}

// runCompare is -compare mode: every "stream" becomes a comparison
// group fanning the same traffic out to each of the given specs, and
// the report is a per-technique fidelity table — kept ratio, mean and
// variance bias against the unsampled input, and (with an estimator)
// the pre- vs post-sampling Hurst drift — aggregated over the groups.
func runCompare(cfg loadConfig, out io.Writer) error {
	if cfg.streams < 1 || cfg.ticks < 1 || cfg.batch < 1 || cfg.workers < 1 {
		return fmt.Errorf("streams, ticks, batch and workers must all be >= 1")
	}
	var specs []sampling.Spec
	for _, s := range strings.Split(cfg.compare, ";") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		spec, err := sampling.Parse(s)
		if err != nil {
			return fmt.Errorf("-compare: %w", err)
		}
		specs = append(specs, spec)
	}
	if len(specs) < 2 {
		return fmt.Errorf("-compare needs at least two ';'-separated specs, got %d", len(specs))
	}
	method := cfg.estimatorMethod()
	if method != "" {
		if _, err := estimate.New(method); err != nil {
			return err
		}
	}
	base, err := baseSeries(cfg)
	if err != nil {
		return err
	}
	d, mode := newDriver(cfg)
	fmt.Fprintf(out, "target:   %s, %d groups x %d ticks x %d techniques, batch %d, %d workers\n",
		mode, cfg.streams, cfg.ticks, len(specs), cfg.batch, cfg.workers)
	fmt.Fprintf(out, "traffic:  %s (H=%.2f), base series %d ticks\n", cfg.traffic, cfg.hurst, len(base))

	seedable := make([]bool, len(specs))
	for i, spec := range specs {
		seedable[i] = specAcceptsSeed(spec)
	}
	ids := make([]string, cfg.streams)
	for g := range ids {
		ids[g] = fmt.Sprintf("cmp-%05d", g)
		members := make([]sampling.Spec, len(specs))
		for i, spec := range specs {
			members[i] = spec
			// Distinct seeds per group and member, as in single-spec
			// mode, so randomized members never keep/drop in lockstep.
			if seedable[i] {
				members[i] = spec.With("seed", fmt.Sprint(cfg.seed+uint64(g*len(specs)+i)))
			}
		}
		if err := d.createGroup(ids[g], members, method); err != nil {
			return fmt.Errorf("creating %s: %w", ids[g], err)
		}
	}
	cfg.log().Debug("groups created", "count", len(ids), "techniques", len(specs), "wire", cfg.wireLabel())
	lat := obs.NewBareHistogram(latencyBuckets())
	ticks, kept, elapsed, err := hammer(cfg, ids, base, timedOffer(lat, d.offerGroup))
	if err != nil {
		return err
	}
	dstart := time.Now()
	dkept, err := d.drain()
	if err != nil {
		return err
	}
	kept += dkept
	elapsed += time.Since(dstart)
	cfg.log().Debug("ingest done", "ticks", ticks, "kept", kept, "elapsed", elapsed)

	// Fold the per-group fidelity blocks into one row per technique
	// before teardown: means over the groups where each score resolved.
	type agg struct {
		kept                int64
		mbSum, vbSum, hdSum float64
		mbN, vbN, hdN       int
	}
	aggs := make([]agg, len(specs))
	var inputSeen int64
	for _, id := range ids {
		cmp, err := d.comparison(id)
		if err != nil {
			return fmt.Errorf("comparison %s: %w", id, err)
		}
		if len(cmp.Members) != len(specs) {
			return fmt.Errorf("comparison %s has %d members, want %d", id, len(cmp.Members), len(specs))
		}
		inputSeen += int64(cmp.Seen)
		for i, m := range cmp.Members {
			a := &aggs[i]
			a.kept += int64(m.Summary.Kept)
			if v := m.Fidelity.MeanBias; !math.IsNaN(v) {
				a.mbSum += v
				a.mbN++
			}
			if v := m.Fidelity.VarianceBias; !math.IsNaN(v) {
				a.vbSum += v
				a.vbN++
			}
			if v := m.Fidelity.HurstDrift; !math.IsNaN(v) {
				a.hdSum += v
				a.hdN++
			}
		}
	}
	for _, id := range ids {
		if err := d.finishGroup(id); err != nil {
			return fmt.Errorf("finishing %s: %w", id, err)
		}
	}

	rate := 0.0
	if elapsed > 0 {
		rate = float64(ticks) / elapsed.Seconds()
	}
	fmt.Fprintf(out, "ingest:   %d input ticks in %v -> %.3g ticks/s (x%d fan-out: %.3g engine ticks/s)\n",
		ticks, elapsed.Round(time.Millisecond), rate, len(specs), rate*float64(len(specs)))
	fmt.Fprintf(out, "kept:     %d samples across all techniques\n", kept)
	if line := latencyLine(lat, cfg.wireLabel()); line != "" {
		fmt.Fprintln(out, line)
	}
	cell := func(sum float64, n int) string {
		if n == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.4f", sum/float64(n))
	}
	fmt.Fprintf(out, "\n%-36s %8s %11s %11s %9s\n", "technique", "kept%", "mean-bias", "var-bias", "h-drift")
	for i, spec := range specs {
		a := aggs[i]
		keptPct := math.NaN()
		if inputSeen > 0 {
			keptPct = 100 * float64(a.kept) / float64(inputSeen)
		}
		fmt.Fprintf(out, "%-36s %7.3f%% %11s %11s %9s\n",
			spec.String(), keptPct, cell(a.mbSum, a.mbN), cell(a.vbSum, a.vbN), cell(a.hdSum, a.hdN))
	}
	if method == "" {
		fmt.Fprintln(out, "(h-drift needs an estimator; it was disabled for this run)")
	}
	return nil
}

// hammer drives batches at the target from cfg.workers goroutines and
// returns the ingest totals. offer is the per-batch call — stream or
// group ingest. Each worker owns a disjoint set of ids (single writer
// per stream/group) and round-robins batches across them, phase-rotated
// so concurrent ids replay different parts of the base series at any
// instant.
func hammer(cfg loadConfig, ids []string, base []float64, offer func(id string, batch []float64) (int, error)) (ticks, kept int64, elapsed time.Duration, err error) {
	var totalKept, totalTicks atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			type cursor struct {
				id        string
				pos, left int
			}
			var mine []cursor
			for i := w; i < len(ids); i += cfg.workers {
				mine = append(mine, cursor{id: ids[i], pos: (i * 7919) % len(base), left: cfg.ticks})
			}
			for live := len(mine); live > 0; {
				live = 0
				for j := range mine {
					c := &mine[j]
					if c.left == 0 {
						continue
					}
					n := cfg.batch
					if n > c.left {
						n = c.left
					}
					if n > len(base)-c.pos {
						n = len(base) - c.pos
					}
					kept, err := offer(c.id, base[c.pos:c.pos+n])
					if err != nil {
						fail(err)
						return
					}
					totalKept.Add(int64(kept))
					totalTicks.Add(int64(n))
					c.left -= n
					c.pos = (c.pos + n) % len(base)
					if c.left > 0 {
						live++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed = time.Since(start)
	if firstErr != nil {
		return 0, 0, 0, firstErr
	}
	return totalTicks.Load(), totalKept.Load(), elapsed, nil
}
