package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/sampling"
	"repro/sampling/estimate"
	"repro/sampling/hub"
	"repro/sampling/wire"
)

func TestDirectLoad(t *testing.T) {
	cfg := loadConfig{
		direct:  true,
		streams: 128,
		ticks:   2000,
		batch:   256,
		workers: 8,
		spec:    "systematic:interval=100",
		traffic: "fgn",
		hurst:   0.8,
		seed:    1,
	}
	var buf bytes.Buffer
	res, err := runLoad(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(cfg.streams * cfg.ticks); res.ticks != want {
		t.Errorf("ingested %d ticks, want %d", res.ticks, want)
	}
	// interval=100 keeps 20 of every stream's 2000 ticks exactly.
	if want := int64(cfg.streams * cfg.ticks / 100); res.kept != want {
		t.Errorf("kept %d samples, want %d", res.kept, want)
	}
	// The roadmap's floor is 1M ticks/s aggregate; log, don't assert —
	// CI machines are not benchmarking rigs.
	t.Logf("direct mode: %.3g ticks/s aggregate over %d streams", res.ticksPerSec(), cfg.streams)
}

func TestDirectLoadOnOffAndSeeds(t *testing.T) {
	cfg := loadConfig{
		direct:  true,
		streams: 8,
		ticks:   1000,
		batch:   128,
		workers: 4,
		spec:    "bernoulli:rate=0.05,seed=3",
		traffic: "onoff",
		hurst:   0.75,
		seed:    7,
	}
	var buf bytes.Buffer
	res, err := runLoad(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(cfg.streams * cfg.ticks); res.ticks != want {
		t.Errorf("ingested %d ticks, want %d", res.ticks, want)
	}
	if res.kept == 0 {
		t.Error("bernoulli kept nothing")
	}
}

// fakeReadTicks parses the three single-POST batch encodings the
// driver can send — JSON, whitespace text and one binary frame — just
// enough protocol fidelity for the wire tests.
func fakeReadTicks(r *http.Request) ([]float64, error) {
	switch ct := r.Header.Get("Content-Type"); {
	case strings.HasPrefix(ct, wire.ContentType):
		_, values, err := wire.NewDecoder(r.Body, 0).ReadFrame()
		return values, err
	case strings.HasPrefix(ct, "text/plain"):
		data, err := io.ReadAll(r.Body)
		if err != nil {
			return nil, err
		}
		var values []float64
		for _, field := range strings.Fields(string(data)) {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, err
			}
			values = append(values, v)
		}
		return values, nil
	default:
		var values []float64
		err := json.NewDecoder(r.Body).Decode(&values)
		return values, err
	}
}

// fakeDaemon mirrors the sampled daemon's v1 surface over a hub — just
// enough protocol for the HTTP driver to run against a loopback port.
func fakeDaemon(h *hub.Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/streams/{id}", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Spec      sampling.Spec `json:"spec"`
			Estimator string        `json:"estimator"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var opts []sampling.Option
		if req.Estimator != "" {
			opts = append(opts, sampling.WithEstimator(estimate.Method(req.Estimator)))
		}
		if err := h.Create(r.PathValue("id"), req.Spec, opts...); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("GET /v1/streams/{id}/hurst", func(w http.ResponseWriter, r *http.Request) {
		sum, err := h.Snapshot(r.PathValue("id"))
		if err != nil || sum.Hurst == nil {
			http.Error(w, "no estimator", http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(sum.Hurst)
	})
	mux.HandleFunc("POST /v1/streams/{id}/ticks", func(w http.ResponseWriter, r *http.Request) {
		values, err := fakeReadTicks(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		kept, err := h.OfferBatch(r.PathValue("id"), values)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(map[string]int{"accepted": len(values), "kept": kept})
	})
	mux.HandleFunc("POST /v1/session", func(w http.ResponseWriter, r *http.Request) {
		dec := wire.NewDecoder(r.Body, 0)
		var kept int64
		for {
			id, values, err := dec.ReadFrame()
			if err == io.EOF {
				break
			}
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			k, err := h.OfferBatch(id, values)
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			kept += int64(k)
		}
		json.NewEncoder(w).Encode(map[string]int64{"kept": kept})
	})
	mux.HandleFunc("DELETE /v1/streams/{id}", func(w http.ResponseWriter, r *http.Request) {
		if _, _, err := h.Finish(r.PathValue("id")); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Write([]byte("{}"))
	})
	return mux
}

func TestHTTPLoad(t *testing.T) {
	h := hub.New()
	srv := httptest.NewServer(fakeDaemon(h))
	defer srv.Close()

	cfg := loadConfig{
		addr:    srv.URL,
		streams: 16,
		ticks:   1000,
		batch:   250,
		workers: 4,
		spec:    "systematic:interval=50",
		traffic: "fgn",
		hurst:   0.8,
		seed:    1,
	}
	var buf bytes.Buffer
	res, err := runLoad(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(cfg.streams * cfg.ticks); res.ticks != want {
		t.Errorf("ingested %d ticks, want %d", res.ticks, want)
	}
	if want := int64(cfg.streams * cfg.ticks / 50); res.kept != want {
		t.Errorf("kept %d samples, want %d", res.kept, want)
	}
	if h.Len() != 0 {
		t.Errorf("%d streams left behind on the daemon", h.Len())
	}
	t.Logf("http mode: %.3g ticks/s aggregate", res.ticksPerSec())
}

// TestHTTPLoadWires drives the same workload through each alternate
// HTTP encoding: the totals must not depend on the wire.
func TestHTTPLoadWires(t *testing.T) {
	for _, w := range []string{"text", "binary", "session"} {
		t.Run(w, func(t *testing.T) {
			h := hub.New()
			srv := httptest.NewServer(fakeDaemon(h))
			defer srv.Close()
			cfg := loadConfig{
				addr:    srv.URL,
				streams: 4,
				ticks:   1000,
				batch:   250,
				workers: 2,
				wire:    w,
				spec:    "systematic:interval=50",
				traffic: "fgn",
				hurst:   0.8,
				seed:    1,
			}
			var buf bytes.Buffer
			res, err := runLoad(cfg, &buf)
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(cfg.streams * cfg.ticks); res.ticks != want {
				t.Errorf("ingested %d ticks, want %d", res.ticks, want)
			}
			if want := int64(cfg.streams * cfg.ticks / 50); res.kept != want {
				t.Errorf("kept %d samples, want %d", res.kept, want)
			}
			if h.Len() != 0 {
				t.Errorf("%d streams left behind on the daemon", h.Len())
			}
			if !strings.Contains(buf.String(), "("+w+" wire)") {
				t.Errorf("run output does not name the wire:\n%s", buf.String())
			}
		})
	}
}

func TestCheckWire(t *testing.T) {
	if got := (loadConfig{}).wireName(); got != "json" {
		t.Errorf("zero-value wire resolves to %q, want json", got)
	}
	for _, ok := range []loadConfig{
		{wire: "json"},
		{wire: "text"},
		{wire: "binary"},
		{wire: "session"},
		{direct: true},
		{direct: true, wire: "json"},
		{compare: "a;b", wire: "binary"},
	} {
		if err := ok.checkWire(); err != nil {
			t.Errorf("checkWire(%+v) = %v, want nil", ok, err)
		}
	}
	for name, bad := range map[string]loadConfig{
		"unknown wire":         {wire: "carrier-pigeon"},
		"direct with binary":   {direct: true, wire: "binary"},
		"compare with session": {compare: "a;b", wire: "session"},
	} {
		if err := bad.checkWire(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// The flag path surfaces the same rejection.
	var buf bytes.Buffer
	if err := run([]string{"-direct", "-wire", "binary"}, &buf); err == nil {
		t.Error("run accepted -direct -wire binary")
	}
}

func TestRunFlagsAndOutput(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-direct", "-streams", "4", "-ticks", "500", "-batch", "100",
		"-workers", "2", "-spec", "systematic:interval=10"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ticks/s aggregate", "kept:", "traffic:  fgn"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestDirectLoadToleratesFinishErrors: a workload whose engines cannot
// finalize (a 5000-sample draw over 1000 ticks) must still report its
// ingest measurement — finish errors are workload properties, and the
// HTTP daemon's DELETE tolerates them identically.
func TestDirectLoadToleratesFinishErrors(t *testing.T) {
	var buf bytes.Buffer
	res, err := runLoad(loadConfig{direct: true, streams: 4, ticks: 1000, batch: 250, workers: 2,
		spec: "simple:n=5000", traffic: "fgn", hurst: 0.8, seed: 1}, &buf)
	if err != nil {
		t.Fatalf("deferred finish error aborted the run: %v", err)
	}
	if res.ticks != 4000 {
		t.Errorf("ingested %d ticks, want 4000", res.ticks)
	}
}

func TestSpecAcceptsSeed(t *testing.T) {
	cases := []struct {
		spec string
		want bool
	}{
		{"bernoulli:rate=0.2", true}, // randomized, seed omitted: must get per-stream seeds
		{"stratified:interval=10", true},
		{"simple:n=5", true},
		{"systematic:interval=10", false},
		{"bss:interval=10,L=3", false},
	}
	for _, tc := range cases {
		if got := specAcceptsSeed(sampling.MustParse(tc.spec)); got != tc.want {
			t.Errorf("specAcceptsSeed(%q) = %v, want %v", tc.spec, got, tc.want)
		}
	}
}

func TestBadConfig(t *testing.T) {
	var buf bytes.Buffer
	if _, err := runLoad(loadConfig{direct: true, streams: 1, ticks: 1, batch: 1, workers: 1,
		spec: "systematic:interval=10", traffic: "tachyon"}, &buf); err == nil {
		t.Error("unknown traffic model accepted")
	}
	if _, err := runLoad(loadConfig{direct: true, streams: 0, ticks: 1, batch: 1, workers: 1,
		spec: "systematic:interval=10", traffic: "fgn", hurst: 0.8}, &buf); err == nil {
		t.Error("zero streams accepted")
	}
	if _, err := runLoad(loadConfig{direct: true, streams: 1, ticks: 1, batch: 1, workers: 1,
		spec: ":bad", traffic: "fgn", hurst: 0.8}, &buf); err == nil {
		t.Error("bad spec accepted")
	}
}

// BenchmarkDirectLoad is the CI-tracked number for the whole direct
// path: stream creation, concurrent batched ingest of fGn traffic
// across 64 streams, teardown. The ticks/s metric is the aggregate
// ingest rate of the timed phase.
func BenchmarkDirectLoad(b *testing.B) {
	cfg := loadConfig{
		direct:  true,
		streams: 64,
		ticks:   20000,
		batch:   512,
		workers: 8,
		spec:    "systematic:interval=100",
		traffic: "fgn",
		hurst:   0.8,
		seed:    1,
	}
	var rate float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		res, err := runLoad(cfg, &buf)
		if err != nil {
			b.Fatal(err)
		}
		rate = res.ticksPerSec()
	}
	b.ReportMetric(rate, "ticks/s")
}

// TestDirectLoadReportsDrift: with an estimator attached the run
// resolves a pre-sampling H close to the generator's and reports a
// finite drift — the paper's preservation readout from the load tool.
func TestDirectLoadReportsDrift(t *testing.T) {
	cfg := loadConfig{
		direct:    true,
		streams:   4,
		ticks:     1 << 15,
		batch:     1024,
		workers:   2,
		spec:      "systematic:interval=10",
		traffic:   "fgn",
		hurst:     0.8,
		seed:      1,
		estimator: "aggvar",
	}
	var buf bytes.Buffer
	res, err := runLoad(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	dr := res.drift
	if dr == nil {
		t.Fatal("no drift report despite estimator")
	}
	if dr.inputN != cfg.streams || dr.keptN != cfg.streams || dr.driftN != cfg.streams {
		t.Fatalf("resolved counts (%d, %d, %d), want all %d", dr.inputN, dr.keptN, dr.driftN, cfg.streams)
	}
	if math.Abs(dr.inputH-cfg.hurst) > 0.15 {
		t.Errorf("input H = %.3f, want ~%.2f", dr.inputH, cfg.hurst)
	}
	if math.Abs(dr.driftH-(dr.keptH-dr.inputH)) > 1e-9 {
		t.Errorf("drift %.4f inconsistent with kept-input %.4f", dr.driftH, dr.keptH-dr.inputH)
	}
}

// TestHTTPLoadReportsDrift drives the drift path over the wire,
// including the GET /hurst round trip.
func TestHTTPLoadReportsDrift(t *testing.T) {
	h := hub.New()
	srv := httptest.NewServer(fakeDaemon(h))
	defer srv.Close()
	cfg := loadConfig{
		addr:      srv.URL,
		streams:   2,
		ticks:     1 << 14,
		batch:     1024,
		workers:   2,
		spec:      "systematic:interval=10",
		traffic:   "fgn",
		hurst:     0.75,
		seed:      3,
		estimator: "wavelet",
	}
	var buf bytes.Buffer
	res, err := runLoad(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.drift == nil || res.drift.inputN != cfg.streams {
		t.Fatalf("drift not resolved over HTTP: %+v", res.drift)
	}
}

func TestRunOutputIncludesHurst(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-direct", "-streams", "2", "-ticks", "32768", "-batch", "1024",
		"-workers", "2", "-spec", "systematic:interval=10"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"hurst:", "aggvar estimator", "input  H", "drift"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// And -estimator off silences the block.
	buf.Reset()
	err = run([]string{"-direct", "-streams", "2", "-ticks", "1000", "-batch", "500",
		"-workers", "1", "-spec", "systematic:interval=10", "-estimator", "off"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "hurst:") {
		t.Errorf("-estimator off still printed a hurst block:\n%s", buf.String())
	}
}

func TestBadEstimatorRejected(t *testing.T) {
	var buf bytes.Buffer
	if _, err := runLoad(loadConfig{direct: true, streams: 1, ticks: 64, batch: 64, workers: 1,
		spec: "systematic:interval=10", traffic: "fgn", hurst: 0.8, estimator: "psychic"}, &buf); err == nil {
		t.Error("unknown estimator accepted")
	}
}

// groupFakeDaemon extends fakeDaemon with the v2 group surface, enough
// for the HTTP driver's -compare mode.
func groupFakeDaemon(h *hub.Hub) http.Handler {
	mux := fakeDaemon(h).(*http.ServeMux)
	mux.HandleFunc("PUT /v1/groups/{id}", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Specs     []sampling.Spec `json:"specs"`
			Estimator string          `json:"estimator"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var opts []sampling.Option
		if req.Estimator != "" {
			opts = append(opts, sampling.WithEstimator(estimate.Method(req.Estimator)))
		}
		if err := h.CreateGroup(r.PathValue("id"), req.Specs, opts...); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("POST /v1/groups/{id}/ticks", func(w http.ResponseWriter, r *http.Request) {
		var values []float64
		if err := json.NewDecoder(r.Body).Decode(&values); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		kept, err := h.OfferGroupBatch(r.PathValue("id"), values)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(map[string]int{"accepted": len(values), "kept": kept})
	})
	mux.HandleFunc("GET /v1/groups/{id}", func(w http.ResponseWriter, r *http.Request) {
		cmp, err := h.GroupSnapshot(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(cmp)
	})
	mux.HandleFunc("DELETE /v1/groups/{id}", func(w http.ResponseWriter, r *http.Request) {
		if _, _, err := h.FinishGroup(r.PathValue("id")); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Write([]byte("{}"))
	})
	return mux
}

// TestCompareDirect: -compare mode over the in-process hub produces one
// fidelity row per technique, with the deterministic technique's kept
// ratio exact.
func TestCompareDirect(t *testing.T) {
	cfg := loadConfig{
		direct:    true,
		streams:   4,
		ticks:     20000, // a multiple of the systematic interval, so kept% is exact
		batch:     512,
		workers:   2,
		compare:   "systematic:interval=100;bernoulli:rate=0.01;bss:interval=100,L=5,eps=1.0",
		traffic:   "fgn",
		hurst:     0.8,
		seed:      1,
		estimator: "aggvar",
	}
	var buf bytes.Buffer
	if err := runCompare(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"3 techniques", "mean-bias", "h-drift",
		"systematic:interval=100", "bernoulli:rate=0.01", "bss:L=5,eps=1.0,interval=100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// interval=100 keeps exactly 1% of every group's input.
	if !strings.Contains(out, "systematic:interval=100                1.000%") {
		t.Errorf("systematic kept%% row wrong:\n%s", out)
	}
	// The aggvar estimator resolves on 20k fGn ticks: the drift column
	// must carry numbers, not n/a.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "systematic:interval=100") && strings.Contains(line, "n/a") {
			t.Errorf("systematic fidelity unresolved:\n%s", out)
		}
	}
}

// TestCompareHTTP drives -compare over the wire, including the
// comparison-document round trip.
func TestCompareHTTP(t *testing.T) {
	h := hub.New()
	srv := httptest.NewServer(groupFakeDaemon(h))
	defer srv.Close()
	cfg := loadConfig{
		addr:      srv.URL,
		streams:   2,
		ticks:     4000,
		batch:     500,
		workers:   2,
		compare:   "systematic:interval=50;stratified:interval=50",
		traffic:   "fgn",
		hurst:     0.8,
		seed:      3,
		estimator: "off",
	}
	var buf bytes.Buffer
	if err := runCompare(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.Groups != 0 || st.GroupsCreated != 2 {
		t.Errorf("groups not torn down: %+v", st)
	}
	if !strings.Contains(buf.String(), "(h-drift needs an estimator") {
		t.Errorf("estimator-off note missing:\n%s", buf.String())
	}
}

func TestCompareBadFlags(t *testing.T) {
	var buf bytes.Buffer
	base := loadConfig{direct: true, streams: 1, ticks: 64, batch: 64, workers: 1,
		traffic: "fgn", hurst: 0.8}
	one := base
	one.compare = "systematic:interval=10"
	if err := runCompare(one, &buf); err == nil {
		t.Error("single-spec compare accepted")
	}
	bad := base
	bad.compare = "systematic:interval=10;:broken"
	if err := runCompare(bad, &buf); err == nil {
		t.Error("bad compare spec accepted")
	}
}
