package main

import (
	"bytes"
	"io"
	"os"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOneFigureSmall(t *testing.T) {
	// fig04 and fig09 are pure analytics — instant even in tests.
	if err := run([]string{"-small", "-fig", "fig04,fig09"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-fig", "fig99"}); err == nil {
		t.Error("expected unknown-figure error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("expected flag parse error")
	}
	if err := run([]string{"-fig", "fig04", "-parallel", "0"}); err != nil {
		t.Errorf("parallel < 1 should clamp to serial, got %v", err)
	}
}

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.Bytes()
	}()
	ferr := fn()
	w.Close()
	out := <-done
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

// TestParallelOutputMatchesSerial is the acceptance check for the worker
// pool: figure tables on stdout must be byte-identical no matter how many
// workers run. The chosen figures exercise deterministic analytics and
// trace-backed experiments.
func TestParallelOutputMatchesSerial(t *testing.T) {
	args := func(parallel string) []string {
		return []string{"-small", "-parallel", parallel, "-fig", "fig04,fig09,fig05,fig02"}
	}
	serial := capture(t, func() error { return run(args("1")) })
	parallel := capture(t, func() error { return run(args("4")) })
	if len(serial) == 0 {
		t.Fatal("serial run printed nothing")
	}
	if !bytes.Equal(serial, parallel) {
		t.Errorf("parallel stdout differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}
