package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOneFigureSmall(t *testing.T) {
	// fig04 and fig09 are pure analytics — instant even in tests.
	if err := run([]string{"-small", "-fig", "fig04,fig09"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-fig", "fig99"}); err == nil {
		t.Error("expected unknown-figure error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("expected flag parse error")
	}
}
