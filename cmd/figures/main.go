// Command figures regenerates the paper's evaluation artefacts
// (Figures 2-22). Without flags it runs every figure at full scale and
// prints the tables; -fig selects specific figures and -small switches to
// the reduced test scale.
//
// Examples:
//
//	figures                 # all figures, paper scale
//	figures -fig fig06      # one figure
//	figures -fig fig05,fig22 -small
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		figs  = fs.String("fig", "", "comma-separated figure ids (default: all); e.g. fig06,fig18")
		small = fs.Bool("small", false, "run at the reduced test scale instead of paper scale")
		list  = fs.Bool("list", false, "list available figure ids and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	registry := experiments.Registry()
	if *list {
		for _, id := range experiments.FigureIDs() {
			fmt.Println(id)
		}
		return nil
	}
	scale := experiments.ScaleFull
	if *small {
		scale = experiments.ScaleSmall
	}
	ids := experiments.FigureIDs()
	if *figs != "" {
		ids = strings.Split(*figs, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := registry[id]
		if !ok {
			return fmt.Errorf("unknown figure %q (use -list)", id)
		}
		start := time.Now()
		result, err := runner(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("=== %s (%s scale, %.1fs) ===\n%s\n", id, scale, time.Since(start).Seconds(), result.Render())
	}
	return nil
}
