// Command figures regenerates the paper's evaluation artefacts
// (Figures 2-22). Without flags it runs every figure at full scale and
// prints the tables; -fig selects specific figures, -small switches to
// the reduced test scale and -parallel bounds how many figures run
// concurrently (default: GOMAXPROCS).
//
// Figure tables go to stdout in figure-id order regardless of
// completion order, so the output is byte-identical between serial and
// parallel runs; per-figure timing goes to stderr.
//
// Examples:
//
//	figures                 # all figures, paper scale, parallel
//	figures -parallel 1     # the serial run (same stdout bytes)
//	figures -fig fig06      # one figure
//	figures -fig fig05,fig22 -small
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// figResult is one finished figure, handed from a worker to the in-order
// printer.
type figResult struct {
	rendered string
	elapsed  time.Duration
	err      error
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		figs     = fs.String("fig", "", "comma-separated figure ids (default: all); e.g. fig06,fig18")
		small    = fs.Bool("small", false, "run at the reduced test scale instead of paper scale")
		list     = fs.Bool("list", false, "list available figure ids and exit")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "max figures running concurrently (1 = serial)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.Names() {
			fmt.Println(id)
		}
		return nil
	}
	scale := experiments.ScaleFull
	if *small {
		scale = experiments.ScaleSmall
	}
	ids := experiments.Names()
	if *figs != "" {
		ids = strings.Split(*figs, ",")
		for i, id := range ids {
			ids[i] = strings.TrimSpace(id)
		}
	}
	runners := make([]experiments.Runner, len(ids))
	for i, id := range ids {
		runner, ok := experiments.Lookup(id)
		if !ok {
			return fmt.Errorf("unknown figure %q (use -list)", id)
		}
		runners[i] = runner
	}
	workers := *parallel
	if workers < 1 {
		workers = 1
	}

	// Worker pool: each figure runs independently under a semaphore; the
	// main goroutine commits results strictly in figure order.
	results := make([]chan figResult, len(ids))
	sem := make(chan struct{}, workers)
	for i := range ids {
		results[i] = make(chan figResult, 1)
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			r, err := runners[i](scale)
			res := figResult{elapsed: time.Since(start), err: err}
			if err == nil {
				res.rendered = r.Render()
			}
			results[i] <- res
		}(i)
	}
	for i, id := range ids {
		res := <-results[i]
		if res.err != nil {
			return fmt.Errorf("%s: %w", id, res.err)
		}
		fmt.Fprintf(os.Stderr, "figures: %s finished in %.1fs\n", id, res.elapsed.Seconds())
		fmt.Printf("=== %s (%s scale) ===\n%s\n", id, scale, res.rendered)
	}
	return nil
}
