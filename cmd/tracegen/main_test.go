package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestRunOnOff(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.series")
	if err := run([]string{"-kind", "onoff", "-ticks", "4096", "-hurst", "0.8", "-out", out}); err != nil {
		t.Fatal(err)
	}
	file, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	_, f, err := trace.ReadSeries(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 4096 {
		t.Errorf("series length %d, want 4096", len(f))
	}
}

func TestRunFGN(t *testing.T) {
	out := filepath.Join(t.TempDir(), "f.series")
	if err := run([]string{"-kind", "fgn", "-ticks", "2048", "-hurst", "0.7", "-mean", "5", "-out", out}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPackets(t *testing.T) {
	out := filepath.Join(t.TempDir(), "p.pkts")
	if err := run([]string{"-kind", "packets", "-duration", "20", "-pairs", "5", "-out", out}); err != nil {
		t.Fatal(err)
	}
	file, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	pkts, err := trace.ReadPackets(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) == 0 {
		t.Error("no packets written")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-kind", "onoff"}); err == nil {
		t.Error("expected error for missing -out")
	}
	if err := run([]string{"-kind", "nope", "-out", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("expected error for unknown kind")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("expected flag parse error")
	}
}
