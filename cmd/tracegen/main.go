// Command tracegen generates synthetic self-similar traffic traces: a
// superposed ON/OFF aggregate series, an fGn series, or an OD-flow packet
// trace, written in the repository's binary or CSV formats.
//
// Examples:
//
//	tracegen -kind onoff -ticks 1048576 -hurst 0.85 -out onoff.series
//	tracegen -kind fgn -ticks 65536 -hurst 0.8 -mean 10 -sdev 2 -out fgn.series
//	tracegen -kind packets -duration 600 -pairs 200 -out bell.pkts -csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dist"
	"repro/internal/lrd"
	"repro/internal/trace"
	"repro/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		kind     = fs.String("kind", "onoff", "trace kind: onoff | fgn | packets")
		out      = fs.String("out", "", "output file (required)")
		seed     = fs.Uint64("seed", 1, "random seed")
		csv      = fs.Bool("csv", false, "write CSV instead of binary (packets only)")
		ticks    = fs.Int("ticks", 1<<18, "series length in ticks (onoff, fgn)")
		hurst    = fs.Float64("hurst", 0.8, "target Hurst parameter")
		mean     = fs.Float64("mean", 0, "fgn mean (fgn only)")
		sdev     = fs.Float64("sdev", 1, "fgn standard deviation (fgn only)")
		sources  = fs.Int("sources", 12, "ON/OFF sources (onoff only)")
		rateA    = fs.Float64("ratealpha", 1.5, "per-burst rate tail index, 0 = constant")
		gran     = fs.Float64("granularity", 1, "seconds per bin recorded in series files")
		pairs    = fs.Int("pairs", 200, "OD pairs (packets only)")
		duration = fs.Float64("duration", 600, "trace duration in seconds (packets only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("missing -out")
	}
	rng := dist.NewRand(*seed)
	file, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer file.Close()

	switch *kind {
	case "onoff":
		alpha := lrd.AlphaFromH(*hurst)
		cfg := traffic.OnOffConfig{
			Sources: *sources, AlphaOn: alpha, AlphaOff: alpha,
			MeanOn: 10, MeanOff: 90, Rate: 1, RateAlpha: *rateA, Ticks: *ticks,
		}
		f, err := traffic.GenerateOnOff(cfg, rng)
		if err != nil {
			return err
		}
		if err := trace.WriteSeries(file, *gran, f); err != nil {
			return err
		}
		fmt.Printf("wrote %d-tick ON/OFF series (design H=%.2f) to %s\n", len(f), cfg.Hurst(), *out)
	case "fgn":
		gen, err := lrd.NewFGN(*hurst, *ticks, *mean, *sdev)
		if err != nil {
			return err
		}
		f := gen.Generate(rng)
		if err := trace.WriteSeries(file, *gran, f); err != nil {
			return err
		}
		fmt.Printf("wrote %d-tick fGn series (H=%.2f) to %s\n", len(f), *hurst, *out)
	case "packets":
		cfg := traffic.SynthConfig{
			Pairs: *pairs, Duration: *duration,
			AlphaOn: 3 - 2**hurst, MeanOn: 0.5, MeanOff: 120,
			MeanRate: 5e5, RateAlpha: *rateA,
		}
		pkts, err := traffic.SynthesizeTrace(cfg, rng)
		if err != nil {
			return err
		}
		if *csv {
			err = trace.WritePacketsCSV(file, pkts)
		} else {
			err = trace.WritePackets(file, pkts)
		}
		if err != nil {
			return err
		}
		st := traffic.Stats(pkts)
		fmt.Printf("wrote %d packets (%.3g bytes/s over %.0fs, %d pairs) to %s\n",
			st.Packets, st.MeanRate, st.Duration, st.HostPairs, *out)
	default:
		return fmt.Errorf("unknown kind %q (want onoff, fgn or packets)", *kind)
	}
	return nil
}
